// Command rwload is the load generator for rwlockd: it fans out many
// concurrent simulated clients across a choice of workload mixes, with
// client-side retry (exponential backoff + jitter), reconnect-on-failure,
// and an optional seeded chaos transport and crash injection. It reports
// throughput, latency percentiles, per-shard fairness stats, and a
// write-passage ledger: every server-side write grant must be either
// client-observed (a unique fencing token) or lease-revoked. Duplicated
// or lost passages are a hard failure (exit 1).
//
// Mixes:
//
//	read-heavy  5% writes, uniform keys
//	write-heavy 30% writes, uniform keys
//	bursty      10% writes, workers alternate on/off phases
//	skewed      10% writes, half the traffic hammers one hot key
//
// With -server-bin, rwload also supervises the server under test: it
// spawns rwlockd itself, kill -9s it at -server-crash-rate while the load
// runs, restarts it against the same data directory, and requires the
// scraped server epochs to be strictly increasing across restarts. The
// ledger must still reconcile to zero lost and zero duplicated write
// passages — server crashes included.
//
// Usage:
//
//	rwload -addr 127.0.0.1:7911 [-clients 64] [-keys 16] [-mix read-heavy]
//	       [-dur 5s] [-wait 500ms] [-hold 0] [-ttl 1s] [-seed 1]
//	       [-crash-rate 0] [-max-backoff 250ms] [-chaos-seed 0] [-drop 0]
//	       [-dup 0] [-delay 0] [-max-delay 20ms] [-disconnect 0]
//	       [-server-bin ./rwlockd] [-server-flags "-addr ... -data-dir ..."]
//	       [-server-crash-rate 0]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cliutil"
	"repro/internal/lockd"
	"repro/internal/lockd/wire"
)

type mixSpec struct {
	writeFrac float64
	bursty    bool
	skewed    bool
}

var mixes = map[string]mixSpec{
	"read-heavy":  {writeFrac: 0.05},
	"write-heavy": {writeFrac: 0.30},
	"bursty":      {writeFrac: 0.10, bursty: true},
	"skewed":      {writeFrac: 0.10, skewed: true},
}

type config struct {
	addr    string
	clients int
	keys    int
	mix     string
	dur     time.Duration
	wait    time.Duration
	hold    time.Duration
	ttl     time.Duration
	seed    int64

	crashRate  float64
	maxBackoff time.Duration
	chaos      lockd.ChaosConfig

	// Server supervision (-server-bin spawns rwlockd; -server-crash-rate
	// kill -9s it at that mean rate per second while the load runs).
	serverBin       string
	serverFlags     string
	serverCrashRate float64
}

// ledger tracks every observed write passage token per key. A token seen
// twice is a duplicated passage — an at-most-once violation.
type ledger struct {
	mu     sync.Mutex
	tokens map[string]map[uint64]int
	dups   int
}

func (l *ledger) recordWrite(key string, token uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.tokens[key] == nil {
		l.tokens[key] = map[uint64]int{}
	}
	l.tokens[key][token]++
	if l.tokens[key][token] > 1 {
		l.dups++
	}
}

func (l *ledger) unique() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n uint64
	for _, m := range l.tokens {
		n += uint64(len(m))
	}
	return n
}

// counters aggregates worker outcomes; latencies are per-op acquire
// latencies for successful grants.
type counters struct {
	mu         sync.Mutex
	reads      uint64
	writes     uint64
	timeouts   uint64
	sheds      uint64
	revoked    uint64
	fenced     uint64
	recovering uint64
	reconnects uint64
	crashes    uint64
	draining   bool
	latencies  []time.Duration

	// Backoff accounting, kept separate from op latencies: time a worker
	// spent deliberately sleeping between retries is not service time.
	backoffEvents uint64
	backoffTotal  time.Duration

	// epochMax is the highest server epoch any worker's hello observed.
	epochMax uint64
}

func (s *counters) grant(mode string, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if mode == lockd.ModeWrite {
		s.writes++
	} else {
		s.reads++
	}
	s.latencies = append(s.latencies, d)
}

func (s *counters) bump(f func(*counters)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f(s)
}

func (s *counters) observeEpoch(e uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e > s.epochMax {
		s.epochMax = e
	}
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:7911", "rwlockd address")
	flag.IntVar(&cfg.clients, "clients", 64, "concurrent simulated clients")
	flag.IntVar(&cfg.keys, "keys", 16, "distinct lock keys")
	flag.StringVar(&cfg.mix, "mix", "read-heavy", "workload mix: read-heavy, write-heavy, bursty, skewed")
	flag.DurationVar(&cfg.dur, "dur", 5*time.Second, "run duration")
	flag.DurationVar(&cfg.wait, "wait", 500*time.Millisecond, "server-side acquire wait budget")
	flag.DurationVar(&cfg.hold, "hold", 0, "time to sit on each granted lock")
	flag.DurationVar(&cfg.ttl, "ttl", time.Second, "session lease TTL")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload randomness seed")
	flag.Float64Var(&cfg.crashRate, "crash-rate", 0, "probability a client abandons (kill -9) after a grant")
	flag.DurationVar(&cfg.maxBackoff, "max-backoff", 250*time.Millisecond, "cap on the exponential retry/reconnect backoff")
	flag.StringVar(&cfg.serverBin, "server-bin", "", "rwlockd binary to spawn and supervise (empty: connect to an external server)")
	flag.StringVar(&cfg.serverFlags, "server-flags", "", "flags for the supervised server (space-separated; should pin -addr and -data-dir)")
	flag.Float64Var(&cfg.serverCrashRate, "server-crash-rate", 0, "mean kill -9s per second against the supervised server while the load runs")
	flag.Int64Var(&cfg.chaos.Seed, "chaos-seed", 0, "chaos transport seed")
	flag.Float64Var(&cfg.chaos.Drop, "drop", 0, "chaos: per-message drop probability")
	flag.Float64Var(&cfg.chaos.Dup, "dup", 0, "chaos: per-message duplicate probability")
	flag.Float64Var(&cfg.chaos.Delay, "delay", 0, "chaos: per-message delay probability")
	flag.DurationVar(&cfg.chaos.MaxDelay, "max-delay", 20*time.Millisecond, "chaos: max injected delay")
	flag.Float64Var(&cfg.chaos.Disconnect, "disconnect", 0, "chaos: per-message disconnect probability")
	flag.Parse()
	cliutil.NoArgs(flag.CommandLine)

	code, err := run(cfg, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rwload:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func run(cfg config, out io.Writer) (int, error) {
	mix, ok := mixes[cfg.mix]
	if !ok {
		return 2, fmt.Errorf("unknown mix %q (want read-heavy, write-heavy, bursty, or skewed)", cfg.mix)
	}
	if cfg.clients <= 0 || cfg.keys <= 0 {
		return 2, fmt.Errorf("-clients and -keys must be positive")
	}
	if cfg.serverCrashRate > 0 && cfg.serverBin == "" {
		return 2, fmt.Errorf("-server-crash-rate needs -server-bin (rwload must own the process it kills)")
	}

	led := &ledger{tokens: map[string]map[uint64]int{}}
	cnt := &counters{}
	deadline := time.Now().Add(cfg.dur)

	var sup *supervisor
	if cfg.serverBin != "" {
		sup = newSupervisor(cfg.serverBin, strings.Fields(cfg.serverFlags), out)
		if err := sup.start(); err != nil {
			return 1, err
		}
		defer sup.shutdown()
		if cfg.serverCrashRate > 0 {
			go sup.crashLoop(cfg.serverCrashRate, deadline, rand.New(rand.NewSource(cfg.seed^0x5eed)))
		}
	}

	// Baseline the server's grant counters before any load: a durable
	// server restarted on a reused -data-dir carries cumulative totals
	// from previous runs, and the ledger below must reconcile only the
	// passages granted during this run.
	var baseGrants, baseRevokedW uint64
	if base := serverStats(cfg, 0); base != nil {
		for _, sh := range base.Shards {
			baseGrants += sh.WriteGrants
			baseRevokedW += sh.RevokedWrite
		}
	} else {
		return 1, fmt.Errorf("server unreachable for ledger baseline")
	}

	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			runWorker(id, cfg, mix, deadline, led, cnt)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	cnt.mu.Lock()
	reads, writes := cnt.reads, cnt.writes
	timeouts, sheds, revoked := cnt.timeouts, cnt.sheds, cnt.revoked
	fenced, recovering := cnt.fenced, cnt.recovering
	reconnects, crashes := cnt.reconnects, cnt.crashes
	backoffEvents, backoffTotal := cnt.backoffEvents, cnt.backoffTotal
	epochMax := cnt.epochMax
	draining := cnt.draining
	lats := append([]time.Duration(nil), cnt.latencies...)
	cnt.mu.Unlock()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })

	ops := reads + writes
	fmt.Fprintf(out, "rwload: mix=%s clients=%d keys=%d dur=%v addr=%s\n",
		cfg.mix, cfg.clients, cfg.keys, cfg.dur, cfg.addr)
	fmt.Fprintf(out, "rwload: ops=%d (reads=%d writes=%d) throughput=%.1f ops/s\n",
		ops, reads, writes, float64(ops)/elapsed.Seconds())
	fmt.Fprintf(out, "rwload: errors: timeouts=%d sheds=%d revoked=%d fenced=%d recovering=%d reconnects=%d crashes=%d draining=%v\n",
		timeouts, sheds, revoked, fenced, recovering, reconnects, crashes, draining)
	fmt.Fprintf(out, "rwload: latency: p50=%v p90=%v p99=%v max=%v\n",
		percentile(lats, 0.50), percentile(lats, 0.90), percentile(lats, 0.99), percentile(lats, 1.0))
	fmt.Fprintf(out, "rwload: backoff: events=%d total=%v (%.1f%% of %d client-seconds)\n",
		backoffEvents, backoffTotal.Round(time.Millisecond),
		100*backoffTotal.Seconds()/(elapsed.Seconds()*float64(cfg.clients)), cfg.clients)

	if sup != nil {
		serverCrashes, epochs, monotonic := sup.summary()
		fmt.Fprintf(out, "rwload: server: crashes=%d epochs=%v monotonic=%v client-epoch-max=%d\n",
			serverCrashes, epochs, monotonic, epochMax)
		if !monotonic {
			fmt.Fprintf(out, "rwload: EPOCH VIOLATION: server epochs did not strictly increase across restarts\n")
			return 1, nil
		}
	}

	if led.dups > 0 {
		fmt.Fprintf(out, "rwload: LEDGER VIOLATION: %d duplicated write passages\n", led.dups)
		return 1, nil
	}

	// Reconcile the passage ledger against the server over a clean
	// connection. Give in-flight lease revocations time to settle first.
	// If the server is already gone (drained away under us), the
	// client-side dup check above is the best we can do.
	st := serverStats(cfg, 2*cfg.ttl)
	if st == nil {
		if !draining {
			return 1, fmt.Errorf("server unreachable for final ledger reconciliation")
		}
		fmt.Fprintf(out, "rwload: server drained away; ledger dup-check only (dup=0)\n")
		return 0, nil
	}
	var grants, revokedW uint64
	var maxRB, maxWB int
	for _, sh := range st.Shards {
		grants += sh.WriteGrants
		revokedW += sh.RevokedWrite
		if sh.MaxReaderBypass > maxRB {
			maxRB = sh.MaxReaderBypass
		}
		if sh.MaxWriterBypass > maxWB {
			maxWB = sh.MaxWriterBypass
		}
	}
	grants -= baseGrants
	revokedW -= baseRevokedW
	observed := led.unique()
	lost := int64(grants) - int64(observed) - int64(revokedW)
	if lost < 0 {
		lost = 0 // a revoked hold whose token we also observed counts twice
	}
	fmt.Fprintf(out, "rwload: ledger: unique-write-passages=%d dup=0 server-grants=%d revoked-write=%d lost=%d\n",
		observed, grants, revokedW, lost)
	fmt.Fprintf(out, "rwload: fairness: max-reader-bypass=%d max-writer-bypass=%d shards=%d\n",
		maxRB, maxWB, len(st.Shards))
	for i, sh := range st.Shards {
		if sh.ReadGrants == 0 && sh.WriteGrants == 0 {
			continue
		}
		fmt.Fprintf(out, "rwload:   shard %d: locks=%d read-grants=%d write-grants=%d sheds=%d timeouts=%d revoked=%d max-bypass=r%d/w%d\n",
			i, sh.Locks, sh.ReadGrants, sh.WriteGrants, sh.Sheds, sh.Timeouts, sh.Revoked, sh.MaxReaderBypass, sh.MaxWriterBypass)
	}
	if lost > 0 {
		fmt.Fprintf(out, "rwload: LEDGER VIOLATION: %d lost write passages\n", lost)
		return 1, nil
	}
	if ops == 0 {
		return 1, fmt.Errorf("no passages completed")
	}
	return 0, nil
}

// runWorker is one simulated client: dial, run passages until the
// deadline, retry with exponential backoff + jitter on contention, and
// reconnect (a fresh session) on connection or lease loss.
func runWorker(id int, cfg config, mix mixSpec, deadline time.Time, led *ledger, cnt *counters) {
	rng := rand.New(rand.NewSource(cfg.seed + int64(id)))
	opts := lockd.Options{TTL: cfg.ttl}
	if cfg.chaos.Enabled() {
		opts.Dialer = lockd.ChaosDialer(cfg.chaos, nil)
		opts.RetransmitAfter = 30 * time.Millisecond
	}

	var c *lockd.Client
	defer func() {
		if c != nil {
			c.Close()
		}
	}()
	backoff := 5 * time.Millisecond
	maxBackoff := cfg.maxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 250 * time.Millisecond
	}
	// sleepBackoff sleeps one jittered backoff step and accounts the time
	// separately from op latencies (the report's time-in-backoff line).
	sleepBackoff := func() {
		d := jitter(rng, backoff)
		cnt.bump(func(s *counters) { s.backoffEvents++; s.backoffTotal += d })
		time.Sleep(d)
		backoff = nextBackoff(backoff, maxBackoff)
	}

	for time.Now().Before(deadline) {
		if mix.bursty {
			// Workers alternate 100ms-on / 100ms-off phases, offset by id,
			// so load arrives in synchronized waves.
			phase := (time.Now().UnixMilli()/100 + int64(id)) % 2
			if phase == 1 {
				time.Sleep(5 * time.Millisecond)
				continue
			}
		}
		if c == nil {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			nc, err := lockd.Dial(ctx, cfg.addr, opts)
			cancel()
			if err != nil {
				if errors.Is(err, lockd.ErrRecovering) {
					cnt.bump(func(s *counters) { s.recovering++ })
				}
				sleepBackoff()
				continue
			}
			c = nc
			cnt.observeEpoch(c.Epoch())
			backoff = 5 * time.Millisecond
		}

		key := fmt.Sprintf("k%02d", rng.Intn(cfg.keys))
		if mix.skewed && rng.Float64() < 0.5 {
			key = "k00" // hot key
		}
		mode := lockd.ModeRead
		if rng.Float64() < mix.writeFrac {
			mode = lockd.ModeWrite
		}

		ctx, cancel := context.WithTimeout(context.Background(), cfg.wait+3*time.Second)
		t0 := time.Now()
		h, err := c.Acquire(ctx, key, mode, cfg.wait)
		if err == nil {
			cnt.grant(mode, time.Since(t0))
			if mode == lockd.ModeWrite {
				led.recordWrite(key, h.Passage)
			}
			if cfg.hold > 0 {
				time.Sleep(cfg.hold)
			}
			if cfg.crashRate > 0 && rng.Float64() < cfg.crashRate {
				// Simulated kill -9: no release, no goodbye. The lease
				// sweeper must clean this hold up.
				c.Abandon()
				c = nil
				cnt.bump(func(s *counters) { s.crashes++ })
			} else if rerr := h.Release(ctx); rerr != nil && errors.Is(rerr, lockd.ErrEpochFenced) {
				// The server restarted between grant and release: the hold
				// was fenced out, so surrender it — nothing to release.
				// (Other release failures are cleaned up by lease expiry.)
				cnt.bump(func(s *counters) { s.fenced++ })
			}
			cancel()
			backoff = 5 * time.Millisecond
			continue
		}
		cancel()

		switch {
		case errors.Is(err, lockd.ErrDraining):
			cnt.bump(func(s *counters) { s.draining = true })
			return
		case errors.Is(err, lockd.ErrRecovering):
			cnt.bump(func(s *counters) { s.recovering++ })
			sleepBackoff()
		case errors.Is(err, lockd.ErrDisconnected), errors.Is(err, lockd.ErrSessionExpired):
			c.Abandon()
			c = nil
			cnt.bump(func(s *counters) { s.reconnects++ })
			sleepBackoff()
		case errors.Is(err, lockd.ErrTimeout):
			cnt.bump(func(s *counters) { s.timeouts++ })
			sleepBackoff()
		case errors.Is(err, lockd.ErrShed):
			cnt.bump(func(s *counters) { s.sheds++ })
			sleepBackoff()
		case errors.Is(err, lockd.ErrRevoked):
			cnt.bump(func(s *counters) { s.revoked++ })
		default:
			// Unknown failure: drop the connection and start over.
			c.Abandon()
			c = nil
			cnt.bump(func(s *counters) { s.reconnects++ })
			sleepBackoff()
		}
	}
}

func nextBackoff(cur, max time.Duration) time.Duration {
	cur *= 2
	if cur > max {
		return max
	}
	return cur
}

// jitter returns a uniformly random duration in [d/2, d), decorrelating
// retry storms across workers.
func jitter(rng *rand.Rand, d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rng.Int63n(int64(d/2)))
}

// finalStats fetches a server snapshot over a clean (chaos-free)
// connection, after letting in-flight lease revocations settle. It
// retries for a few seconds — a supervised server may still be replaying
// its WAL from the last kill -9. Returns nil when the server stays
// unreachable.
func serverStats(cfg config, settle time.Duration) *wire.Stats {
	time.Sleep(settle)
	deadline := time.Now().Add(10 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		c, err := lockd.Dial(ctx, cfg.addr, lockd.Options{})
		if err == nil {
			st, serr := c.Stats(ctx)
			c.Close()
			cancel()
			if serr == nil {
				return st
			}
		} else {
			cancel()
		}
		if !time.Now().Before(deadline) {
			return nil
		}
		time.Sleep(200 * time.Millisecond)
	}
}
