// Server supervision: with -server-bin, rwload owns the rwlockd process
// under test — it spawns it, kill -9s it at -server-crash-rate while the
// load runs, restarts it against the same -data-dir, and tears it down
// with SIGTERM after the final ledger reconciliation. The supervisor
// scrapes the server's "serving epoch N" lines, so the report can assert
// that every restart strictly increased the epoch.
package main

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os/exec"
	"regexp"
	"strconv"
	"sync"
	"syscall"
	"time"
)

var epochRe = regexp.MustCompile(`serving epoch (\d+)`)

type supervisor struct {
	bin  string
	args []string
	out  io.Writer

	mu       sync.Mutex
	cmd      *exec.Cmd
	scanDone chan struct{}
	stopped  bool
	crashes  int
	epochs   []uint64 // every "serving epoch" value scraped, in order
}

func newSupervisor(bin string, args []string, out io.Writer) *supervisor {
	return &supervisor{bin: bin, args: args, out: out}
}

// start launches one server instance, forwarding its output through the
// epoch scraper.
func (sv *supervisor) start() error {
	cmd := exec.Command(sv.bin, sv.args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return fmt.Errorf("server stdout: %w", err)
	}
	cmd.Stderr = cmd.Stdout // interleave; the scraper only needs stdout's epoch line
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start %s: %w", sv.bin, err)
	}
	done := make(chan struct{})
	go sv.scan(stdout, done)
	sv.mu.Lock()
	sv.cmd, sv.scanDone = cmd, done
	sv.mu.Unlock()
	return nil
}

func (sv *supervisor) scan(r io.Reader, done chan struct{}) {
	defer close(done)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if m := epochRe.FindStringSubmatch(line); m != nil {
			if e, err := strconv.ParseUint(m[1], 10, 64); err == nil {
				sv.mu.Lock()
				sv.epochs = append(sv.epochs, e)
				sv.mu.Unlock()
			}
		}
		fmt.Fprintln(sv.out, line)
	}
}

// crashLoop kill -9s and restarts the server at a mean of rate kills per
// second (exponential inter-kill intervals) until the deadline.
func (sv *supervisor) crashLoop(rate float64, deadline time.Time, rng *rand.Rand) {
	for {
		d := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		if time.Now().Add(d).After(deadline) {
			return
		}
		time.Sleep(d)
		if !sv.kill9() {
			return
		}
		if err := sv.start(); err != nil {
			fmt.Fprintf(sv.out, "rwload: server restart failed: %v\n", err)
			return
		}
	}
}

// kill9 SIGKILLs the current instance and reaps it; false once shutdown
// began.
func (sv *supervisor) kill9() bool {
	sv.mu.Lock()
	if sv.stopped || sv.cmd == nil {
		sv.mu.Unlock()
		return false
	}
	cmd, done := sv.cmd, sv.scanDone
	sv.cmd = nil
	sv.crashes++
	sv.mu.Unlock()
	cmd.Process.Kill() //nolint:errcheck // the Wait below reaps either way
	cmd.Wait()         //nolint:errcheck // SIGKILL exit status is expected
	<-done
	return true
}

// shutdown SIGTERMs the last instance (clean drain) and reaps it.
func (sv *supervisor) shutdown() {
	sv.mu.Lock()
	sv.stopped = true
	cmd, done := sv.cmd, sv.scanDone
	sv.cmd = nil
	sv.mu.Unlock()
	if cmd == nil {
		return
	}
	cmd.Process.Signal(syscall.SIGTERM) //nolint:errcheck // fall through to Kill on failure
	waited := make(chan struct{})
	go func() { cmd.Wait(); close(waited) }() //nolint:errcheck // exit status irrelevant here
	select {
	case <-waited:
	case <-time.After(15 * time.Second):
		cmd.Process.Kill() //nolint:errcheck // last resort
		<-waited
	}
	<-done
}

// summary returns the crash count, the scraped epochs in observation
// order, and whether they were strictly increasing (every restart must
// bump the epoch; a repeat would mean fencing tokens can collide).
func (sv *supervisor) summary() (crashes int, epochs []uint64, monotonic bool) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	monotonic = true
	for i := 1; i < len(sv.epochs); i++ {
		if sv.epochs[i] <= sv.epochs[i-1] {
			monotonic = false
		}
	}
	return sv.crashes, append([]uint64(nil), sv.epochs...), monotonic
}
