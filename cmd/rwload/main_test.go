package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/lockd"
)

func startServer(t *testing.T, cfg lockd.Config) *lockd.Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	if cfg.SweepInterval == 0 {
		cfg.SweepInterval = 10 * time.Millisecond
	}
	if cfg.MinTTL == 0 {
		cfg.MinTTL = 50 * time.Millisecond
	}
	srv, err := lockd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve() //nolint:errcheck // Close makes Serve return
	t.Cleanup(func() { srv.Close() })
	return srv
}

func loadCfg(addr string) config {
	return config{
		addr:    addr,
		clients: 8,
		keys:    4,
		mix:     "read-heavy",
		dur:     500 * time.Millisecond,
		wait:    300 * time.Millisecond,
		ttl:     200 * time.Millisecond,
		seed:    1,
	}
}

func TestMixesRunClean(t *testing.T) {
	for _, mix := range []string{"read-heavy", "write-heavy", "bursty", "skewed"} {
		t.Run(mix, func(t *testing.T) {
			// Fresh server per mix: the ledger reconciles this run's tokens
			// against the server's cumulative grant counters.
			srv := startServer(t, lockd.Config{})
			cfg := loadCfg(srv.Addr().String())
			cfg.mix = mix
			var out bytes.Buffer
			code, err := run(cfg, &out)
			if err != nil || code != 0 {
				t.Fatalf("run: code=%d err=%v\n%s", code, err, out.String())
			}
			for _, want := range []string{"throughput=", "latency: p50=", "dup=0", "lost=0", "fairness: max-reader-bypass="} {
				if !strings.Contains(out.String(), want) {
					t.Fatalf("report missing %q:\n%s", want, out.String())
				}
			}
		})
	}
}

func TestCrashInjectionStillZeroLost(t *testing.T) {
	srv := startServer(t, lockd.Config{})
	cfg := loadCfg(srv.Addr().String())
	cfg.mix = "write-heavy"
	cfg.crashRate = 0.2
	cfg.dur = time.Second
	var out bytes.Buffer
	code, err := run(cfg, &out)
	if err != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "crashes=") || strings.Contains(out.String(), "crashes=0 ") {
		t.Fatalf("crash injection never fired:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "lost=0") {
		t.Fatalf("crashed holds not reconciled:\n%s", out.String())
	}
}

func TestChaosTransportStillClean(t *testing.T) {
	srv := startServer(t, lockd.Config{})
	cfg := loadCfg(srv.Addr().String())
	cfg.mix = "write-heavy"
	cfg.dur = time.Second
	cfg.chaos = lockd.ChaosConfig{Seed: 9, Drop: 0.05, Dup: 0.05, Delay: 0.05, MaxDelay: 10 * time.Millisecond}
	var out bytes.Buffer
	code, err := run(cfg, &out)
	if err != nil || code != 0 {
		t.Fatalf("run under chaos: code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "dup=0") || !strings.Contains(out.String(), "lost=0") {
		t.Fatalf("chaos run not clean:\n%s", out.String())
	}
}

func TestStopsOnDrain(t *testing.T) {
	srv := startServer(t, lockd.Config{})
	cfg := loadCfg(srv.Addr().String())
	cfg.dur = 5 * time.Second // would run long; the drain must cut it short

	done := make(chan struct{})
	var out bytes.Buffer
	var code int
	var err error
	go func() {
		defer close(done)
		code, err = run(cfg, &out)
	}()
	time.Sleep(300 * time.Millisecond)
	if leaked := srv.Drain(5 * time.Second); len(leaked) != 0 {
		t.Fatalf("drain leaked %d holds", len(leaked))
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("rwload did not stop on drain")
	}
	if err != nil || code != 0 {
		t.Fatalf("drained run: code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "draining=true") {
		t.Fatalf("drain not observed in report:\n%s", out.String())
	}
}

func TestUnknownMixRejected(t *testing.T) {
	cfg := loadCfg("127.0.0.1:1")
	cfg.mix = "nope"
	var out bytes.Buffer
	code, err := run(cfg, &out)
	if code != 2 || err == nil {
		t.Fatalf("unknown mix: code=%d err=%v", code, err)
	}
}
