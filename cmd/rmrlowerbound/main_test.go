package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	errRun := fn()
	w.Close()
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), errRun
}

func TestRunSmall(t *testing.T) {
	out, err := capture(t, func() error { return run("4,9", "wt") })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E2:", "af-1", "flag-array", "r (iters)", "lemma1 viol"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunWriteBack(t *testing.T) {
	if _, err := capture(t, func() error { return run("4", "wb") }); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadInputs(t *testing.T) {
	if _, err := capture(t, func() error { return run("", "wt") }); err == nil {
		t.Error("empty n accepted")
	}
	if _, err := capture(t, func() error { return run("4", "nope") }); err == nil {
		t.Error("bad protocol accepted")
	}
}
