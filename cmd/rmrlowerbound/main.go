// Command rmrlowerbound regenerates experiment E2: the adversarial
// execution construction of Theorem 5 (the paper's Figure 1), run against
// the A_f family and the concurrent-reading baselines. For each algorithm
// and reader count it reports the iteration count r (predicted
// Omega(log3(n/f(n)))), the worst reader-exit expanding-step and RMR
// counts, the writer's entry cost, Lemma 4's awareness check and Lemma 2's
// per-round growth bound.
//
// Usage:
//
//	rmrlowerbound [-n 9,27,81,243] [-protocol wt|wb]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/experiments"
)

func main() {
	nFlag := flag.String("n", "9,27,81,243", "comma-separated reader counts")
	protoFlag := flag.String("protocol", "wt", "coherence protocol: wt or wb")
	value := flag.Bool("value", false, "also print the adversary-vs-random comparison (E11)")
	flag.Parse()
	cliutil.NoArgs(flag.CommandLine)

	if *value {
		ns, err := cliutil.ParseInts(*nFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rmrlowerbound:", err)
			os.Exit(1)
		}
		fmt.Println("E11: worst reader exit RMR, adversarial vs uniform-random schedules")
		_, table, err := experiments.E11AdversaryValue(ns, []int64{1, 2, 3, 4, 5, 6, 7, 8})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rmrlowerbound:", err)
			os.Exit(1)
		}
		fmt.Println(table)
	}

	if err := run(*nFlag, *protoFlag); err != nil {
		fmt.Fprintln(os.Stderr, "rmrlowerbound:", err)
		os.Exit(1)
	}
}

func run(nList, protocol string) error {
	ns, err := cliutil.ParseInts(nList)
	if err != nil {
		return err
	}
	proto, err := cliutil.ParseProtocol(protocol)
	if err != nil {
		return err
	}
	fmt.Printf("E2: Theorem-5 adversarial construction (%s), single writer\n", proto)
	fmt.Println("    r = expanding-step iterations in E2; Lemma 2 bounds growth by 3x for")
	fmt.Println("    read/write/CAS algorithms (the FAA baseline legitimately exceeds it).")
	_, table, err := experiments.E2LowerBound(ns, proto)
	if err != nil {
		return err
	}
	fmt.Println(table)
	return nil
}
