// Command rwtrace runs a reader-writer lock scenario on the CC simulator
// and dumps the execution as a lane-per-process timeline plus per-process
// RMR accounts — the debugging view for any of the repository's
// algorithms.
//
// Usage:
//
//	rwtrace [-alg af-log] [-n 3] [-m 1] [-rp 1] [-wp 1] [-seed 7]
//	        [-protocol wt|wb|dsm] [-events 80] [-hide-sections]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/tablefmt"
	"repro/internal/trace"
	"repro/internal/tracefmt"
)

func main() {
	algFlag := flag.String("alg", "af-log", "algorithm name")
	n := flag.Int("n", 3, "readers")
	m := flag.Int("m", 1, "writers")
	rp := flag.Int("rp", 1, "passages per reader")
	wp := flag.Int("wp", 1, "passages per writer")
	seed := flag.Int64("seed", 7, "random scheduler seed")
	protoFlag := flag.String("protocol", "wt", "wt, wb or dsm")
	events := flag.Int("events", 80, "max events to print (tail kept)")
	hideSections := flag.Bool("hide-sections", false, "omit section transitions")
	flag.Parse()
	cliutil.NoArgs(flag.CommandLine)

	if err := run(*algFlag, *n, *m, *rp, *wp, *seed, *protoFlag, *events, *hideSections); err != nil {
		fmt.Fprintln(os.Stderr, "rwtrace:", err)
		os.Exit(1)
	}
}

func parseProtocol(s string) (sim.Protocol, error) {
	switch strings.ToLower(s) {
	case "wt":
		return sim.WriteThrough, nil
	case "wb":
		return sim.WriteBack, nil
	case "dsm":
		return sim.DSM, nil
	default:
		return 0, fmt.Errorf("unknown protocol %q", s)
	}
}

func run(alg string, n, m, rp, wp int, seed int64, protocol string, maxEvents int, hideSections bool) error {
	var fac *experiments.Factory
	for _, f := range experiments.ExtendedFactories() {
		if f.Name == alg {
			f := f
			fac = &f
			break
		}
	}
	if fac == nil {
		return fmt.Errorf("unknown algorithm %q", alg)
	}
	proto, err := parseProtocol(protocol)
	if err != nil {
		return err
	}

	var rec trace.Recorder
	rep := spec.Run(fac.New(), spec.Scenario{
		NReaders: n, NWriters: m,
		ReaderPassages: rp, WriterPassages: wp,
		Protocol:  proto,
		Scheduler: sched.NewRandom(seed),
		Observer:  rec.Observe,
	})
	fmt.Printf("%s: %s — %d steps", rep.Algorithm, rep.Scenario, rep.Steps)
	if rep.OK() {
		fmt.Println(", no violations")
	} else {
		fmt.Printf("\nPROBLEMS:\n%s", rep.Failures())
	}

	table := tablefmt.New("process", "role", "total RMR", "steps", "worst passage RMR")
	for rid, acct := range rep.ReaderAccounts {
		mx := acct.MaxPassage()
		table.AddRow(fmt.Sprintf("p%d", rid), "reader",
			tablefmt.Itoa(acct.TotalRMR), tablefmt.Itoa(acct.TotalSteps),
			tablefmt.Itoa(mx.EntryRMR+mx.CSRMR+mx.ExitRMR))
	}
	for wid, acct := range rep.WriterAccounts {
		mx := acct.MaxPassage()
		table.AddRow(fmt.Sprintf("p%d", n+wid), "writer",
			tablefmt.Itoa(acct.TotalRMR), tablefmt.Itoa(acct.TotalSteps),
			tablefmt.Itoa(mx.EntryRMR+mx.CSRMR+mx.ExitRMR))
	}
	fmt.Println(table)

	fmt.Println(tracefmt.Render(rec.Events(), tracefmt.Options{
		NumProcs:     n + m,
		MaxEvents:    maxEvents,
		HideSections: hideSections,
		VarName: func(v memmodel.Var) string {
			if int(v) < len(rep.VarNames) {
				return rep.VarNames[v]
			}
			return fmt.Sprintf("v%d", v)
		},
		ValueFormat: func(v memmodel.Var, val uint64) string {
			name := ""
			if int(v) < len(rep.VarNames) {
				name = rep.VarNames[v]
			}
			switch {
			case strings.HasPrefix(name, "C[") || strings.HasPrefix(name, "W["):
				return fmt.Sprintf("%d", memmodel.VerSumSum(val))
			case name == "RSIG" || strings.HasPrefix(name, "WSIG"):
				seq, op := memmodel.UnpackSig(val)
				return fmt.Sprintf("<%d,%d>", seq, op)
			default:
				return fmt.Sprintf("%d", val)
			}
		},
	}))
	return nil
}
