package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	errRun := fn()
	w.Close()
	buf := make([]byte, 1<<20)
	var out []byte
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			break
		}
	}
	return string(out), errRun
}

func TestRunTimeline(t *testing.T) {
	out, err := capture(t, func() error {
		return run("af-log", 2, 1, 1, 1, 7, "wt", 40, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"no violations", "worst passage RMR", "RSIG", "p0", "p2"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunDSM(t *testing.T) {
	if _, err := capture(t, func() error {
		return run("flag-array", 2, 1, 1, 1, 3, "dsm", 20, true)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadInputs(t *testing.T) {
	if _, err := capture(t, func() error { return run("nope", 1, 1, 1, 1, 1, "wt", 10, false) }); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := capture(t, func() error { return run("af-log", 1, 1, 1, 1, 1, "zzz", 10, false) }); err == nil {
		t.Error("bad protocol accepted")
	}
}
