package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	errRun := fn()
	w.Close()
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), errRun
}

func TestRunExhaustsTinyTree(t *testing.T) {
	out, err := capture(t, func() error { return run("faa-phasefair", 1, 1, 1, 1, 100000, false) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "exhausted the schedule tree") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunCap(t *testing.T) {
	out, err := capture(t, func() error { return run("af-log", 1, 1, 1, 1, 7, false) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cap reached") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunUnknownAlg(t *testing.T) {
	if _, err := capture(t, func() error { return run("nope", 1, 1, 1, 1, 10, false) }); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
