// Command rwexplore model-checks a reader-writer lock by exhaustively
// enumerating every schedule of a small scenario in the CC simulator and
// checking mutual exclusion and progress on each. With the default tiny
// scenario (one reader, one writer, one passage each) the schedule tree is
// fully exhausted; larger scenarios explore until the run cap.
//
// Large explorations are crash-safe: with -checkpoint FILE completed root
// subtrees are recorded durably, SIGINT/SIGTERM stops the exploration
// cooperatively (exit status 3), and -resume recomputes only the subtrees
// the interrupted run did not finish.
//
// Usage:
//
//	rwexplore [-alg af-log] [-n 1] [-m 1] [-rp 1] [-wp 1] [-max 1000000] [-parallel N]
//	          [-checkpoint FILE [-resume]] [-row-timeout D]
//	          [-cpuprofile FILE] [-memprofile FILE]
//	rwexplore -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/explore"
	"repro/internal/spec"
	"repro/internal/tracefmt"
)

func main() {
	algFlag := flag.String("alg", "af-log", "algorithm name (see -list)")
	list := flag.Bool("list", false, "list available algorithms")
	n := flag.Int("n", 1, "readers")
	m := flag.Int("m", 1, "writers")
	rp := flag.Int("rp", 1, "passages per reader")
	wp := flag.Int("wp", 1, "passages per writer")
	maxRuns := flag.Int("max", 1_000_000, "run cap")
	traceFlag := flag.Bool("trace", false, "on violation, replay and print the schedule as a timeline")
	applyParallel := cliutil.ParallelFlag()
	applyRobust := cliutil.RobustFlags()
	applyProfile := cliutil.ProfileFlags()
	flag.Parse()
	cliutil.NoArgs(flag.CommandLine)
	applyParallel()
	if err := applyRobust(); err != nil {
		fmt.Fprintln(os.Stderr, "rwexplore:", err)
		cliutil.Exit(1)
	}
	if err := applyProfile(); err != nil {
		fmt.Fprintln(os.Stderr, "rwexplore:", err)
		cliutil.Exit(1)
	}

	if *list {
		for _, fac := range experiments.ExtendedFactories() {
			fmt.Println(fac.Name)
		}
		cliutil.Exit(0)
	}
	if err := run(*algFlag, *n, *m, *rp, *wp, *maxRuns, *traceFlag); err != nil {
		cliutil.Fail("rwexplore", err)
	}
	cliutil.Exit(0)
}

func run(alg string, n, m, rp, wp, maxRuns int, dumpTrace bool) error {
	var fac *experiments.Factory
	for _, f := range experiments.ExtendedFactories() {
		if f.Name == alg {
			f := f
			fac = &f
			break
		}
	}
	if fac == nil {
		return fmt.Errorf("unknown algorithm %q (use -list)", alg)
	}

	sc := spec.Scenario{NReaders: n, NWriters: m, ReaderPassages: rp, WriterPassages: wp}
	fmt.Printf("model-checking %s: n=%d m=%d rp=%d wp=%d (cap %d runs)\n", alg, n, m, rp, wp, maxRuns)
	res, err := explore.Algorithm(fac.New, sc, explore.Config{MaxRuns: maxRuns})
	if err != nil {
		return err
	}
	if res.Violation != "" {
		fmt.Printf("VIOLATION after %d runs, reproduction path %v:\n%s\n",
			res.Runs, res.ViolationPath, res.Violation)
		if dumpTrace {
			_, events := explore.Replay(fac.New, sc, res.ViolationPath)
			fmt.Println(tracefmt.Render(events, tracefmt.Options{MaxEvents: 120}))
		}
		cliutil.Exit(1)
	}
	if res.Complete {
		fmt.Printf("exhausted the schedule tree: %d schedules, max depth %d, no violations\n",
			res.Runs, res.MaxDepth)
	} else {
		fmt.Printf("explored %d schedules (cap reached), max depth %d, no violations\n",
			res.Runs, res.MaxDepth)
	}
	return nil
}
