package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	errRun := fn()
	w.Close()
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), errRun
}

func TestRunSmall(t *testing.T) {
	out, err := capture(t, func() error { return run(4, 1, "1", "wt") })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E4:", "af-log", "centralized", "faa-phasefair", "mutex-rw"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunBadInputs(t *testing.T) {
	if _, err := capture(t, func() error { return run(0, 1, "1", "wt") }); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := capture(t, func() error { return run(4, 1, "zzz", "wt") }); err == nil {
		t.Error("bad seeds accepted")
	}
	if _, err := capture(t, func() error { return run(4, 1, "1", "x") }); err == nil {
		t.Error("bad protocol accepted")
	}
}
