// Command rmrcompare regenerates experiment E4: the cross-algorithm
// comparison over workload mixes. Every algorithm (the A_f family plus the
// Section-6 baselines) runs the same seeded random-schedule workloads on
// the CC simulator; the table reports per-passage reader/writer RMR means,
// reader tail cost, and total coherence traffic.
//
// Usage:
//
//	rmrcompare [-n 16] [-m 2] [-seeds 1,2,3] [-protocol wt|wb]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/experiments"
)

func main() {
	nFlag := flag.Int("n", 16, "number of readers")
	mFlag := flag.Int("m", 2, "number of writers")
	seedsFlag := flag.String("seeds", "1,2,3", "comma-separated scheduler seeds")
	protoFlag := flag.String("protocol", "wt", "coherence protocol: wt or wb")
	flag.Parse()
	cliutil.NoArgs(flag.CommandLine)

	if err := run(*nFlag, *mFlag, *seedsFlag, *protoFlag); err != nil {
		fmt.Fprintln(os.Stderr, "rmrcompare:", err)
		os.Exit(1)
	}
}

func run(n, m int, seedList, protocol string) error {
	if n < 1 || m < 1 {
		return fmt.Errorf("need n >= 1 and m >= 1, got n=%d m=%d", n, m)
	}
	seeds, err := cliutil.ParseSeeds(seedList)
	if err != nil {
		return err
	}
	proto, err := cliutil.ParseProtocol(protocol)
	if err != nil {
		return err
	}
	fmt.Printf("E4: algorithm comparison, n=%d m=%d, %s, %d seeds, random schedules\n",
		n, m, proto, len(seeds))
	_, table, err := experiments.E4Baselines(n, m, seeds, proto)
	if err != nil {
		return err
	}
	fmt.Println(table)
	return nil
}
