package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// badFixture is a package with known violations of every analyzer that
// applies to algorithm code.
const badFixture = "../../internal/lint/testdata/src/spinloop/a"

// TestRunModuleClean is the merge gate: the whole module must lint clean.
func TestRunModuleClean(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"./..."}, false, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("rwlint ./... exit %d:\n%s", code, out.String())
	}
}

// TestRunBadFixture checks the driver reports and exits non-zero on a
// known-bad package.
func TestRunBadFixture(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{badFixture}, false, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out.String())
	}
	for _, want := range []string{"[spinloop]", "busy-wait", "suggested fix"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunVerboseShowsSuppressions checks -v surfaces the escape-hatch
// justifications.
func TestRunVerboseShowsSuppressions(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{badFixture}, true, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "suppressed: deliberate raw poll") {
		t.Errorf("verbose output missing suppression justification:\n%s", out.String())
	}
}

// TestRunUnknownPattern checks load failures exit through the error path.
func TestRunUnknownPattern(t *testing.T) {
	var out bytes.Buffer
	if _, err := run([]string{"./no/such/dir"}, false, &out); err == nil {
		t.Fatal("expected an error for a nonexistent package")
	}
}

// TestBinarySmoke builds the real binary and runs it over the known-bad
// fixture: exit code 1 and diagnostics on stdout.
func TestBinarySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping go build subprocess")
	}
	bin := filepath.Join(t.TempDir(), "rwlint")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, badFixture)
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("rwlint exit = %v, want exit status 1\n%s", err, out)
	}
	if !strings.Contains(string(out), "[spinloop]") {
		t.Errorf("binary output missing diagnostics:\n%s", out)
	}
}
