package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// badFixture is a package with known violations of every analyzer that
// applies to algorithm code.
const badFixture = "../../internal/lint/testdata/src/spinloop/a"

// lockguardFixture has known violations of the service-layer lockguard
// analyzer.
const lockguardFixture = "../../internal/lint/testdata/src/lockguard/a"

// strictFixture has one live and one dead rwlint:ignore directive.
const strictFixture = "../../internal/lint/testdata/src/strictignores/a"

// TestRunModuleClean is the merge gate: the whole module must lint clean,
// including under -strict-ignores (every suppression in real code must
// still be earning its keep).
func TestRunModuleClean(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"./..."}, options{strict: true}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("rwlint -strict-ignores ./... exit %d:\n%s", code, out.String())
	}
}

// TestRunBadFixture checks the driver reports and exits non-zero on a
// known-bad package.
func TestRunBadFixture(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{badFixture}, options{}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out.String())
	}
	for _, want := range []string{"[spinloop]", "busy-wait", "suggested fix"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunVerboseShowsSuppressions checks -v surfaces the escape-hatch
// justifications.
func TestRunVerboseShowsSuppressions(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{badFixture}, options{verbose: true}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "suppressed: deliberate raw poll") {
		t.Errorf("verbose output missing suppression justification:\n%s", out.String())
	}
}

// TestRunStrictIgnores pins both halves of the dead-suppression gate: the
// fixture passes a plain run (the dead directive is legal) and fails a
// strict one, attributing the finding to the driver itself.
func TestRunStrictIgnores(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{strictFixture}, options{}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("plain run exit %d, want 0:\n%s", code, out.String())
	}

	out.Reset()
	code, err = run([]string{strictFixture}, options{strict: true}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("strict run exit %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "[rwlint]") || !strings.Contains(out.String(), "suppresses nothing") {
		t.Errorf("strict output missing dead-directive finding:\n%s", out.String())
	}
	// Exactly one: the live directive must not be flagged.
	if n := strings.Count(out.String(), "suppresses nothing"); n != 1 {
		t.Errorf("strict run flagged %d directives, want 1:\n%s", n, out.String())
	}
}

// TestRunJSON checks the machine-readable report: structure, counts, and
// the unchanged exit-code contract.
func TestRunJSON(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{badFixture}, options{jsonOut: true}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out.String())
	}
	var rep jsonReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Unresolved == 0 || rep.Packages != 1 {
		t.Fatalf("report counts unresolved=%d packages=%d, want >0 and 1", rep.Unresolved, rep.Packages)
	}
	if rep.Suppressed == 0 {
		t.Error("report lost the suppressed finding the fixture carries")
	}
	sawSpin, sawReason := false, false
	for _, f := range rep.Findings {
		if f.Analyzer == "spinloop" && f.File != "" && f.Line > 0 && f.Col > 0 {
			sawSpin = true
		}
		if f.Suppressed && f.Reason != "" {
			sawReason = true
		}
	}
	if !sawSpin {
		t.Errorf("no positioned spinloop finding in JSON report:\n%s", out.String())
	}
	if !sawReason {
		t.Errorf("suppressed finding lacks its justification in JSON report:\n%s", out.String())
	}
}

// TestRunJSONClean checks a clean run emits a well-formed empty report
// and exit 0 (CI uploads this artifact from passing runs too).
func TestRunJSONClean(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{strictFixture}, options{jsonOut: true}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit %d, want 0:\n%s", code, out.String())
	}
	var rep jsonReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Unresolved != 0 || rep.Findings == nil {
		t.Fatalf("clean report unresolved=%d findings=%v, want 0 and non-nil", rep.Unresolved, rep.Findings)
	}
}

// TestRunUnknownPattern checks load failures exit through the error path.
func TestRunUnknownPattern(t *testing.T) {
	var out bytes.Buffer
	if _, err := run([]string{"./no/such/dir"}, options{}, &out); err == nil {
		t.Fatal("expected an error for a nonexistent package")
	}
}

// TestBinarySmoke builds the real binary and drives the full flag surface
// against fixtures and the real module: exit 1 with diagnostics on the
// known-bad packages (simulator-side and service-side), exit 0 on the
// module itself in CI's exact configuration.
func TestBinarySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping go build subprocess")
	}
	bin := filepath.Join(t.TempDir(), "rwlint")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	wantExit1 := func(args []string, needle string) {
		t.Helper()
		out, err := exec.Command(bin, args...).CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 1 {
			t.Fatalf("rwlint %v exit = %v, want exit status 1\n%s", args, err, out)
		}
		if !strings.Contains(string(out), needle) {
			t.Errorf("rwlint %v output missing %q:\n%s", args, needle, out)
		}
	}
	wantExit1([]string{badFixture}, "[spinloop]")
	wantExit1([]string{lockguardFixture}, "[lockguard]")
	wantExit1([]string{"-json", lockguardFixture}, `"analyzer": "lockguard"`)
	wantExit1([]string{"-strict-ignores", strictFixture}, "suppresses nothing")

	// CI's exact invocation over the real module must pass.
	out, err := exec.Command(bin, "-strict-ignores", "-json", "./...").CombinedOutput()
	if err != nil {
		t.Fatalf("rwlint -strict-ignores -json ./... : %v\n%s", err, out)
	}
	var rep jsonReport
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatalf("module report is not valid JSON: %v\n%s", err, out)
	}
	if rep.Unresolved != 0 {
		t.Fatalf("module has %d unresolved findings:\n%s", rep.Unresolved, out)
	}
}
