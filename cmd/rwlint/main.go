// Command rwlint is the multichecker for the repo's static disciplines:
// it runs the internal/lint analyzer suite over the module and exits
// non-zero on any unsuppressed diagnostic. Four analyzers (memdiscipline,
// purepred, spinloop, verdictswitch) keep algorithm code honest against
// memmodel.Proc — the invariant all RMR measurements, coherence sweeps
// and fault-model verdicts rest on. Three more (lockguard, durdiscipline,
// errdiscipline) guard the lock service: //rwguard-annotated fields only
// touched under their mutex, durable state only mutated through the WAL
// apply path, and sentinel errors only matched with errors.Is/As.
//
// Packages are loaded and type-checked from source with the standard
// library only, so rwlint works in the offline build container. The
// pattern "./..." denotes the whole module regardless of the working
// directory; explicit directories (including testdata fixtures) are
// linted as given. Algorithm-only analyzers (memdiscipline, spinloop)
// apply to the packages listed in lint.AlgorithmPackages; the rest apply
// everywhere.
//
// Deliberate violations are suppressed in source with a justified
//
//	//rwlint:ignore <analyzer>[,<analyzer>] <reason>
//
// on the offending line or the line above; rwlint -v prints what was
// suppressed and why. -strict-ignores (on in CI) additionally fails the
// run when a directive suppresses nothing — a dead suppression is a
// latent review bypass.
//
// -json replaces the text report with a single JSON object on stdout
// (findings plus counts), for CI artifact upload and tooling; the exit
// code contract is unchanged.
//
// Usage:
//
//	rwlint [-v] [-json] [-strict-ignores] [packages]
//
// Exit codes: 0 clean, 1 unsuppressed findings, 2 load or run error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
	"repro/internal/lint/load"
)

func main() {
	verbose := flag.Bool("v", false, "also print suppressed findings with their justifications")
	jsonOut := flag.Bool("json", false, "emit one JSON report object instead of text")
	strict := flag.Bool("strict-ignores", false, "fail on rwlint:ignore directives that suppress nothing")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	code, err := run(patterns, options{verbose: *verbose, jsonOut: *jsonOut, strict: *strict}, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rwlint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// options carries the CLI flags into run.
type options struct {
	verbose bool
	jsonOut bool
	strict  bool
}

// jsonFinding is one finding in -json output. Positions are 1-based;
// suppressed findings appear with Suppressed=true and their justification
// so the artifact records the full suppression inventory, not only the
// failures.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

// jsonReport is the single object -json writes to stdout.
type jsonReport struct {
	Findings   []jsonFinding `json:"findings"`
	Unresolved int           `json:"unresolved"`
	Suppressed int           `json:"suppressed"`
	Packages   int           `json:"packages"`
}

// run loads the patterns, applies the suite, prints findings and returns
// the exit code: 0 clean, 1 unsuppressed findings.
func run(patterns []string, opts options, w io.Writer) (int, error) {
	loader, err := load.NewLoader("")
	if err != nil {
		return 0, err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return 0, err
	}
	if len(pkgs) == 0 {
		return 0, fmt.Errorf("no packages matched %v", patterns)
	}
	findings, err := lint.RunOpts(pkgs, lint.Analyzers(), lint.Options{
		Scope:         lint.DefaultScope,
		StrictIgnores: opts.strict,
	})
	if err != nil {
		return 0, err
	}

	if opts.jsonOut {
		return reportJSON(findings, len(pkgs), w)
	}

	bad, suppressed := 0, 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
			if opts.verbose {
				fmt.Fprintf(w, "%s\n\tsuppressed: %s\n", f, f.Reason)
			}
			continue
		}
		bad++
		fmt.Fprintln(w, f)
		for _, fix := range f.Diagnostic.SuggestedFixes {
			fmt.Fprintf(w, "\tsuggested fix (%s):\n", fix.Message)
			for _, e := range fix.TextEdits {
				fmt.Fprintf(w, "\t\t%s\n", e.NewText)
			}
		}
	}
	if opts.verbose && suppressed > 0 {
		fmt.Fprintf(w, "rwlint: %d suppressed finding(s)\n", suppressed)
	}
	if bad > 0 {
		fmt.Fprintf(w, "rwlint: %d finding(s) in %d package(s)\n", bad, len(pkgs))
		return 1, nil
	}
	return 0, nil
}

// reportJSON writes the machine-readable report and returns the same exit
// code the text path would.
func reportJSON(findings []lint.Finding, packages int, w io.Writer) (int, error) {
	rep := jsonReport{Findings: []jsonFinding{}, Packages: packages}
	for _, f := range findings {
		rep.Findings = append(rep.Findings, jsonFinding{
			File:       f.Pos.Filename,
			Line:       f.Pos.Line,
			Col:        f.Pos.Column,
			Analyzer:   f.Analyzer,
			Message:    f.Diagnostic.Message,
			Suppressed: f.Suppressed,
			Reason:     f.Reason,
		})
		if f.Suppressed {
			rep.Suppressed++
		} else {
			rep.Unresolved++
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return 0, err
	}
	if rep.Unresolved > 0 {
		return 1, nil
	}
	return 0, nil
}
