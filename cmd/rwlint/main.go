// Command rwlint is the multichecker for the repo's simulated
// shared-memory discipline: it runs the internal/lint analyzer suite
// (memdiscipline, purepred, spinloop, verdictswitch) over the module and
// exits non-zero on any unsuppressed diagnostic. It is the CI gate that
// keeps algorithm code honest against memmodel.Proc — the invariant all
// RMR measurements, coherence sweeps and fault-model verdicts rest on.
//
// Packages are loaded and type-checked from source with the standard
// library only, so rwlint works in the offline build container. The
// pattern "./..." denotes the whole module regardless of the working
// directory; explicit directories (including testdata fixtures) are
// linted as given. Algorithm-only analyzers (memdiscipline, spinloop)
// apply to the packages listed in lint.AlgorithmPackages; purepred and
// verdictswitch apply everywhere.
//
// Deliberate violations are suppressed in source with a justified
//
//	//rwlint:ignore <analyzer>[,<analyzer>] <reason>
//
// on the offending line or the line above; rwlint -v prints what was
// suppressed and why.
//
// Usage:
//
//	rwlint [-v] [packages]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
	"repro/internal/lint/load"
)

func main() {
	verbose := flag.Bool("v", false, "also print suppressed findings with their justifications")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	code, err := run(patterns, *verbose, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rwlint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run loads the patterns, applies the suite, prints findings and returns
// the exit code: 0 clean, 1 unsuppressed findings.
func run(patterns []string, verbose bool, w io.Writer) (int, error) {
	loader, err := load.NewLoader("")
	if err != nil {
		return 0, err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return 0, err
	}
	if len(pkgs) == 0 {
		return 0, fmt.Errorf("no packages matched %v", patterns)
	}
	findings, err := lint.Run(pkgs, lint.Analyzers(), lint.DefaultScope)
	if err != nil {
		return 0, err
	}

	bad, suppressed := 0, 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
			if verbose {
				fmt.Fprintf(w, "%s\n\tsuppressed: %s\n", f, f.Reason)
			}
			continue
		}
		bad++
		fmt.Fprintln(w, f)
		for _, fix := range f.Diagnostic.SuggestedFixes {
			fmt.Fprintf(w, "\tsuggested fix (%s):\n", fix.Message)
			for _, e := range fix.TextEdits {
				fmt.Fprintf(w, "\t\t%s\n", e.NewText)
			}
		}
	}
	if verbose && suppressed > 0 {
		fmt.Fprintf(w, "rwlint: %d suppressed finding(s)\n", suppressed)
	}
	if bad > 0 {
		fmt.Fprintf(w, "rwlint: %d finding(s) in %d package(s)\n", bad, len(pkgs))
		return 1, nil
	}
	return 0, nil
}
