package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeReport marshals a minimal -sweeps artifact with the given serial
// costs per workload name.
func writeReport(t *testing.T, path string, serial map[string]SweepCost) {
	t.Helper()
	rep := SweepReport{}
	for name, c := range serial {
		rep.Experiments = append(rep.Experiments, SweepResult{Name: name, Serial: c})
	}
	buf, err := json.Marshal(&rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCompareWithinBudget(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeReport(t, oldPath, map[string]SweepCost{
		"A": {NsPerOp: 1000, AllocsPerOp: 100},
		"B": {NsPerOp: 2000, AllocsPerOp: 0},
	})
	writeReport(t, newPath, map[string]SweepCost{
		"A": {NsPerOp: 1200, AllocsPerOp: 105}, // 1.2x ns, 1.05x allocs
		"B": {NsPerOp: 1900, AllocsPerOp: 0},
		"C": {NsPerOp: 5, AllocsPerOp: 5}, // new workload: reported, never fails
	})
	out, code, err := captureCompare(t, oldPath, newPath, 1.25, 1.10)
	if err != nil || code != 0 {
		t.Fatalf("within-budget compare: code %d, err %v\n%s", code, err, out)
	}
	if !strings.Contains(out, "PASS") || !strings.Contains(out, "new") {
		t.Errorf("output missing PASS verdict or new-workload row:\n%s", out)
	}
}

func TestCompareRegressionFails(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeReport(t, oldPath, map[string]SweepCost{
		"A": {NsPerOp: 1000, AllocsPerOp: 100},
		"B": {NsPerOp: 1000, AllocsPerOp: 100},
		"G": {NsPerOp: 1000, AllocsPerOp: 100},
	})
	writeReport(t, newPath, map[string]SweepCost{
		"A": {NsPerOp: 1000, AllocsPerOp: 150}, // allocs blown
		"B": {NsPerOp: 9000, AllocsPerOp: 100}, // ns blown
		// G missing: a baseline workload disappeared
	})
	out, code, err := captureCompare(t, oldPath, newPath, 1.25, 1.10)
	if err != nil || code != 1 {
		t.Fatalf("regressed compare: code %d, err %v\n%s", code, err, out)
	}
	for _, want := range []string{"FAIL (allocs/op)", "FAIL (ns/op)", "FAIL (missing)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Disabling the ns axis forgives B but not A or the missing G.
	out, code, err = captureCompare(t, oldPath, newPath, 0, 1.10)
	if err != nil || code != 1 {
		t.Fatalf("ns-disabled compare: code %d, err %v\n%s", code, err, out)
	}
	if strings.Contains(out, "FAIL (ns/op)") {
		t.Errorf("ns axis still enforced while disabled:\n%s", out)
	}
}

func TestCompareRejectsNonArtifacts(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	writeReport(t, good, map[string]SweepCost{"A": {NsPerOp: 1}})
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := captureCompare(t, empty, good, 1.25, 1.10); err == nil {
		t.Error("artifact with no experiments accepted as baseline")
	}
	if _, _, err := captureCompare(t, good, filepath.Join(dir, "missing.json"), 1.25, 1.10); err == nil {
		t.Error("missing new artifact accepted")
	}
}

func captureCompare(t *testing.T, oldPath, newPath string, maxNs, maxAlloc float64) (string, int, error) {
	return captureCompareHost(t, oldPath, newPath, maxNs, maxAlloc, false)
}

func captureCompareHost(t *testing.T, oldPath, newPath string, maxNs, maxAlloc float64, requireSameHost bool) (string, int, error) {
	t.Helper()
	var code int
	var errRun error
	out, _ := capture(t, func() error {
		code, errRun = runCompare(oldPath, newPath, maxNs, maxAlloc, requireSameHost)
		return nil
	})
	return out, code, errRun
}

// writeHostReport is writeReport with an explicit Host block.
func writeHostReport(t *testing.T, path string, serial map[string]SweepCost, goos string, numCPU int) {
	t.Helper()
	rep := SweepReport{}
	rep.Host.GOOS = goos
	rep.Host.GOARCH = "amd64"
	rep.Host.NumCPU = numCPU
	rep.Host.GOMAXPROCS = numCPU
	for name, c := range serial {
		rep.Experiments = append(rep.Experiments, SweepResult{Name: name, Serial: c})
	}
	buf, err := json.Marshal(&rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCompareHostMismatch(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	serial := map[string]SweepCost{"A": {NsPerOp: 1000, AllocsPerOp: 100}}
	writeHostReport(t, oldPath, serial, "linux", 64)
	writeHostReport(t, newPath, serial, "darwin", 8)

	// Default: loud warning, but the comparison still runs and passes.
	out, code, err := captureCompare(t, oldPath, newPath, 1.25, 1.10)
	if err != nil || code != 0 {
		t.Fatalf("host-mismatch warn-only compare: code %d, err %v\n%s", code, err, out)
	}
	for _, want := range []string{"WARNING", "different hosts", `goos "linux" vs "darwin"`, "num_cpu 64 vs 8", "PASS"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// -require-same-host upgrades the mismatch to a hard failure.
	out, code, err = captureCompareHost(t, oldPath, newPath, 1.25, 1.10, true)
	if err != nil || code != 1 {
		t.Fatalf("require-same-host compare: code %d, err %v\n%s", code, err, out)
	}
	if !strings.Contains(out, "FAIL: -require-same-host") {
		t.Errorf("hard host failure missing from output:\n%s", out)
	}

	// Same host: no warning, flag or not.
	writeHostReport(t, newPath, serial, "linux", 64)
	out, code, err = captureCompareHost(t, oldPath, newPath, 1.25, 1.10, true)
	if err != nil || code != 0 {
		t.Fatalf("same-host compare: code %d, err %v\n%s", code, err, out)
	}
	if strings.Contains(out, "WARNING") {
		t.Errorf("spurious host warning:\n%s", out)
	}
}
