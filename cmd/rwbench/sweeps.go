// The -sweeps mode benchmarks the simulator-side sweep workloads that the
// parallel execution engine (internal/parwork) accelerates, at one worker
// and at GOMAXPROCS workers, verifies the two produce byte-identical
// results, and writes the numbers as machine-readable JSON
// (BENCH_sweeps.json). The file also embeds the recorded pre-overhaul
// serial baseline so speedups against the old hot path stay reviewable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/memmodel"
	"repro/internal/parwork"
	"repro/internal/sim"
	"repro/internal/spec"
)

// SweepCost is one measured configuration of a sweep workload.
type SweepCost struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// SweepResult is one sweep workload measured serially and in parallel.
type SweepResult struct {
	Name     string    `json:"name"`
	Serial   SweepCost `json:"serial"`
	Parallel SweepCost `json:"parallel"`
	// Speedup is serial ns/op over parallel ns/op.
	Speedup float64 `json:"speedup"`
	// Identical records the determinism check: the parallel run's rendered
	// results were byte-identical to the serial run's.
	Identical bool `json:"identical"`
}

// SweepReport is the schema of BENCH_sweeps.json.
type SweepReport struct {
	Host struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
	} `json:"host"`
	// ParallelWorkers is the worker count of the parallel measurements.
	ParallelWorkers int           `json:"parallel_workers"`
	Experiments     []SweepResult `json:"experiments"`
	SeedBaseline    struct {
		Note        string               `json:"note"`
		Experiments map[string]SweepCost `json:"experiments"`
	} `json:"seed_baseline"`
}

// seedBaseline is the serial cost of each sweep workload measured at the
// commit before the simulator hot-path overhaul (flattened coherence
// bitsets, alloc-free requests, Runner.Reset buffer reuse) on the
// development container (Intel Xeon @ 2.10GHz). It is embedded so the
// JSON artifact carries its own before/after story.
func seedBaseline() map[string]SweepCost {
	return map[string]SweepCost{
		"E2LowerBound":    {NsPerOp: 448040006, BytesPerOp: 106587688, AllocsPerOp: 686819},
		"CrashSweepAFLog": {NsPerOp: 22922978, BytesPerOp: 1379498, AllocsPerOp: 48358},
		"StallSweepAFLog": {NsPerOp: 50084448, BytesPerOp: 2914040, AllocsPerOp: 104391},
	}
}

// sweepWorkloads returns the benchmarked sweeps. Each function runs the
// full workload and returns a rendering of every result, so serial and
// parallel runs can be compared byte-for-byte. The configurations mirror
// bench_test.go (E2) and the E13/E15 sweep scenario, keeping the numbers
// comparable across artifacts.
func sweepWorkloads() []struct {
	Name string
	Run  func() (string, error)
} {
	afLog := func() memmodel.Algorithm { return core.New(core.FLog) }
	sweepSc := spec.Scenario{NReaders: 2, NWriters: 2, ReaderPassages: 2, WriterPassages: 2, CSReads: 1}
	return []struct {
		Name string
		Run  func() (string, error)
	}{
		{"E2LowerBound", func() (string, error) {
			rows, _, err := experiments.E2LowerBound([]int{9, 27, 81, 243}, sim.WriteThrough)
			return fmt.Sprintf("%+v", rows), err
		}},
		{"CrashSweepAFLog", func() (string, error) {
			outs, err := spec.CrashSweep(afLog, sweepSc, 0, nil)
			return fmt.Sprintf("%+v", outs), err
		}},
		{"StallSweepAFLog", func() (string, error) {
			outs, err := spec.StallSweep(afLog, sweepSc, 0, nil)
			return fmt.Sprintf("%+v", outs), err
		}},
	}
}

// runSweeps measures every sweep workload at 1 worker and at GOMAXPROCS
// workers for benchtime each and writes the JSON report to outPath.
func runSweeps(outPath string, benchtime time.Duration) error {
	// Checkpointing cannot coexist with measurement: the loops re-run the
	// same sweep many times, and restored rows would turn later iterations
	// into no-ops. Any robust default installed by the shared flags is
	// dropped for the duration of the benchmarks.
	if spec.DefaultRobust() != nil {
		fmt.Fprintln(os.Stderr, "rwbench: -sweeps ignores the robust-sweep flags (measurement must recompute every row)")
		spec.SetDefaultRobust(nil)
	}
	// testing.Benchmark sizes b.N from the test.benchtime flag, which only
	// exists after testing.Init; registering it post-Parse is fine because
	// it is set programmatically, never from the command line.
	testing.Init()
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		return err
	}
	workers := runtime.GOMAXPROCS(0)
	rep := SweepReport{}
	rep.Host.GOOS = runtime.GOOS
	rep.Host.GOARCH = runtime.GOARCH
	rep.Host.NumCPU = runtime.NumCPU()
	rep.Host.GOMAXPROCS = workers
	rep.ParallelWorkers = workers
	rep.SeedBaseline.Note = "serial cost at the commit before the simulator hot-path overhaul " +
		"(pointer-chased coherence bitsets, per-op request allocations, fresh runner per execution), " +
		"measured on the development container; same workload configurations as `experiments`"
	rep.SeedBaseline.Experiments = seedBaseline()

	for _, w := range sweepWorkloads() {
		res := SweepResult{Name: w.Name}

		parwork.SetDefault(1)
		serialFP, err := w.Run()
		if err != nil {
			return fmt.Errorf("%s (serial): %w", w.Name, err)
		}
		res.Serial = measureSweep(w.Run)

		parwork.SetDefault(workers)
		parFP, err := w.Run()
		if err != nil {
			return fmt.Errorf("%s (parallel): %w", w.Name, err)
		}
		res.Parallel = measureSweep(w.Run)
		parwork.SetDefault(0)

		res.Identical = serialFP == parFP
		if !res.Identical {
			return fmt.Errorf("%s: parallel results diverged from serial", w.Name)
		}
		if res.Parallel.NsPerOp > 0 {
			res.Speedup = float64(res.Serial.NsPerOp) / float64(res.Parallel.NsPerOp)
		}
		fmt.Printf("%-16s serial %12d ns/op %8d allocs/op | parallel(%d) %12d ns/op | speedup %.2fx identical=%v\n",
			w.Name, res.Serial.NsPerOp, res.Serial.AllocsPerOp, workers,
			res.Parallel.NsPerOp, res.Speedup, res.Identical)
		rep.Experiments = append(rep.Experiments, res)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", outPath)
	return nil
}

// measureSweep times fn with the testing harness (-benchtime per
// configuration) and extracts per-op costs.
func measureSweep(fn func() (string, error)) SweepCost {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fn(); err != nil {
				b.Fatal(err)
			}
		}
	})
	return SweepCost{
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}
