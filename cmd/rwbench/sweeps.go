// The -sweeps mode benchmarks the simulator-side sweep workloads that the
// parallel execution engine (internal/parwork) accelerates, at one worker
// and at GOMAXPROCS workers, verifies the two produce byte-identical
// results, and writes the numbers as machine-readable JSON
// (BENCH_sweeps.json). The file also embeds the recorded pre-overhaul
// serial baseline so speedups against the old hot path stay reviewable.
// With -scaling each workload is additionally measured across the
// 1/2/4/NumCPU worker axis, recording speedup, parallel efficiency and
// the work-stealing scheduler counters per point.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/memmodel"
	"repro/internal/parwork"
	"repro/internal/sim"
	"repro/internal/spec"
)

// SweepCost is one measured configuration of a sweep workload.
type SweepCost struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// ScalingPoint is one worker count on a workload's scaling curve
// (-scaling mode).
type ScalingPoint struct {
	Workers     int   `json:"workers"`
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Speedup is serial (1-worker) ns/op over this point's ns/op;
	// Efficiency is Speedup/Workers (1.0 = perfect linear scaling).
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
	// Identical records the determinism check against the serial run.
	Identical bool `json:"identical"`
	// Sched is the parwork scheduler-counter delta (chunks built, local
	// claims, steals, failed steal probes) over one run of the workload at
	// this worker count — the work-stealing story behind the ns/op.
	Sched parwork.Stats `json:"sched"`
}

// SweepResult is one sweep workload measured serially and in parallel.
type SweepResult struct {
	Name     string    `json:"name"`
	Serial   SweepCost `json:"serial"`
	Parallel SweepCost `json:"parallel"`
	// Speedup is serial ns/op over parallel ns/op.
	Speedup float64 `json:"speedup"`
	// Identical records the determinism check: the parallel run's rendered
	// results were byte-identical to the serial run's.
	Identical bool `json:"identical"`
	// Scaling is the worker-count scaling curve (-scaling mode only).
	Scaling []ScalingPoint `json:"scaling,omitempty"`
}

// SweepReport is the schema of BENCH_sweeps.json.
type SweepReport struct {
	Host struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
	} `json:"host"`
	// ParallelWorkers is the worker count of the parallel measurements.
	ParallelWorkers int           `json:"parallel_workers"`
	Experiments     []SweepResult `json:"experiments"`
	SeedBaseline    struct {
		Note        string               `json:"note"`
		Experiments map[string]SweepCost `json:"experiments"`
	} `json:"seed_baseline"`
}

// seedBaseline is the serial cost of each sweep workload measured at the
// commit before the simulator hot-path overhaul (flattened coherence
// bitsets, alloc-free requests, Runner.Reset buffer reuse) on the
// development container (Intel Xeon @ 2.10GHz). It is embedded so the
// JSON artifact carries its own before/after story.
func seedBaseline() map[string]SweepCost {
	return map[string]SweepCost{
		"E2LowerBound":    {NsPerOp: 448040006, BytesPerOp: 106587688, AllocsPerOp: 686819},
		"CrashSweepAFLog": {NsPerOp: 22922978, BytesPerOp: 1379498, AllocsPerOp: 48358},
		"StallSweepAFLog": {NsPerOp: 50084448, BytesPerOp: 2914040, AllocsPerOp: 104391},
	}
}

// sweepWorkloads returns the benchmarked sweeps. Each function runs the
// full workload and returns a rendering of every result, so serial and
// parallel runs can be compared byte-for-byte. The configurations mirror
// bench_test.go (E2) and the E13/E15 sweep scenario, keeping the numbers
// comparable across artifacts.
func sweepWorkloads() []struct {
	Name string
	Run  func() (string, error)
} {
	afLog := func() memmodel.Algorithm { return core.New(core.FLog) }
	sweepSc := spec.Scenario{NReaders: 2, NWriters: 2, ReaderPassages: 2, WriterPassages: 2, CSReads: 1}
	return []struct {
		Name string
		Run  func() (string, error)
	}{
		{"E2LowerBound", func() (string, error) {
			rows, _, err := experiments.E2LowerBound([]int{9, 27, 81, 243}, sim.WriteThrough)
			return fmt.Sprintf("%+v", rows), err
		}},
		{"CrashSweepAFLog", func() (string, error) {
			outs, err := spec.CrashSweep(afLog, sweepSc, 0, nil)
			return fmt.Sprintf("%+v", outs), err
		}},
		{"StallSweepAFLog", func() (string, error) {
			outs, err := spec.StallSweep(afLog, sweepSc, 0, nil)
			return fmt.Sprintf("%+v", outs), err
		}},
	}
}

// scalingWorkerCounts is the -scaling worker-count axis: 1, 2, 4 and
// NumCPU, deduplicated and capped at NumCPU (measuring 4 workers on a
// 2-core host would only report scheduler overhead as if it were the
// algorithm's fault).
func scalingWorkerCounts() []int {
	ncpu := runtime.NumCPU()
	var out []int
	for _, w := range []int{1, 2, 4, ncpu} {
		if w > ncpu {
			continue
		}
		dup := false
		for _, seen := range out {
			dup = dup || seen == w
		}
		if !dup {
			out = append(out, w)
		}
	}
	return out
}

// runSweeps measures every sweep workload at 1 worker and at GOMAXPROCS
// workers for benchtime each and writes the JSON report to outPath. With
// scaling it additionally measures each workload across the
// scalingWorkerCounts axis — ns/op, speedup, parallel efficiency and the
// parwork steal/claim counters per point — and minSpeedup2 > 0 turns the
// 2-worker speedup into a gate (skipped on single-CPU hosts, where there
// is no 2-worker point to measure).
func runSweeps(outPath string, benchtime time.Duration, scaling bool, minSpeedup2 float64) error {
	// Checkpointing cannot coexist with measurement: the loops re-run the
	// same sweep many times, and restored rows would turn later iterations
	// into no-ops. Any robust default installed by the shared flags is
	// dropped for the duration of the benchmarks.
	if spec.DefaultRobust() != nil {
		fmt.Fprintln(os.Stderr, "rwbench: -sweeps ignores the robust-sweep flags (measurement must recompute every row)")
		spec.SetDefaultRobust(nil)
	}
	// testing.Benchmark sizes b.N from the test.benchtime flag, which only
	// exists after testing.Init; registering it post-Parse is fine because
	// it is set programmatically, never from the command line.
	testing.Init()
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		return err
	}
	workers := runtime.GOMAXPROCS(0)
	rep := SweepReport{}
	rep.Host.GOOS = runtime.GOOS
	rep.Host.GOARCH = runtime.GOARCH
	rep.Host.NumCPU = runtime.NumCPU()
	rep.Host.GOMAXPROCS = workers
	rep.ParallelWorkers = workers
	rep.SeedBaseline.Note = "serial cost at the commit before the simulator hot-path overhaul " +
		"(pointer-chased coherence bitsets, per-op request allocations, fresh runner per execution), " +
		"measured on the development container; same workload configurations as `experiments`"
	rep.SeedBaseline.Experiments = seedBaseline()

	for _, w := range sweepWorkloads() {
		res := SweepResult{Name: w.Name}

		parwork.SetDefault(1)
		serialFP, err := w.Run()
		if err != nil {
			return fmt.Errorf("%s (serial): %w", w.Name, err)
		}
		res.Serial = measureSweep(w.Run)

		parwork.SetDefault(workers)
		parFP, err := w.Run()
		if err != nil {
			return fmt.Errorf("%s (parallel): %w", w.Name, err)
		}
		res.Parallel = measureSweep(w.Run)
		parwork.SetDefault(0)

		res.Identical = serialFP == parFP
		if !res.Identical {
			return fmt.Errorf("%s: parallel results diverged from serial", w.Name)
		}
		if res.Parallel.NsPerOp > 0 {
			res.Speedup = float64(res.Serial.NsPerOp) / float64(res.Parallel.NsPerOp)
		}
		fmt.Printf("%-16s serial %12d ns/op %8d allocs/op | parallel(%d) %12d ns/op | speedup %.2fx identical=%v\n",
			w.Name, res.Serial.NsPerOp, res.Serial.AllocsPerOp, workers,
			res.Parallel.NsPerOp, res.Speedup, res.Identical)

		if scaling {
			pts, err := measureScaling(w.Name, w.Run, serialFP)
			if err != nil {
				return err
			}
			res.Scaling = pts
		}
		rep.Experiments = append(rep.Experiments, res)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", outPath)

	// The gate runs after the artifact is written so a failing run still
	// leaves the numbers behind for inspection.
	if scaling && minSpeedup2 > 0 {
		if code := checkSpeedup2(rep.Experiments, minSpeedup2); code != 0 {
			return fmt.Errorf("scaling gate failed: 2-worker speedup below %.2fx", minSpeedup2)
		}
	}
	return nil
}

// measureScaling measures one workload across the scaling worker-count
// axis. Per point it runs the workload once outside the timing loop to
// (a) re-verify byte-identity against the serial fingerprint under this
// worker count and (b) capture the parwork scheduler-counter delta for
// exactly one run, then times it with the benchmark harness. Speedups are
// relative to the curve's own 1-worker point so the curve is internally
// consistent whatever the harness's iteration choices.
func measureScaling(name string, run func() (string, error), serialFP string) ([]ScalingPoint, error) {
	counts := scalingWorkerCounts()
	pts := make([]ScalingPoint, 0, len(counts))
	var baseNs int64
	for _, wkr := range counts {
		parwork.SetDefault(wkr)
		before := parwork.ReadStats()
		fp, err := run()
		if err != nil {
			parwork.SetDefault(0)
			return nil, fmt.Errorf("%s (scaling, %d workers): %w", name, wkr, err)
		}
		pt := ScalingPoint{
			Workers:   wkr,
			Identical: fp == serialFP,
			Sched:     parwork.ReadStats().Sub(before),
		}
		if !pt.Identical {
			parwork.SetDefault(0)
			return nil, fmt.Errorf("%s: results at %d workers diverged from serial", name, wkr)
		}
		c := measureSweep(run)
		parwork.SetDefault(0)
		pt.NsPerOp, pt.BytesPerOp, pt.AllocsPerOp = c.NsPerOp, c.BytesPerOp, c.AllocsPerOp
		if wkr == 1 {
			baseNs = c.NsPerOp
		}
		if baseNs > 0 && c.NsPerOp > 0 {
			pt.Speedup = float64(baseNs) / float64(c.NsPerOp)
			pt.Efficiency = pt.Speedup / float64(wkr)
		}
		fmt.Printf("%-16s workers=%-2d %12d ns/op %8d allocs/op | speedup %.2fx efficiency %.2f | steals=%d local=%d chunks=%d\n",
			name, wkr, pt.NsPerOp, pt.AllocsPerOp, pt.Speedup, pt.Efficiency,
			pt.Sched.Steals, pt.Sched.LocalClaims, pt.Sched.Chunks)
		pts = append(pts, pt)
	}
	return pts, nil
}

// checkSpeedup2 enforces the CI scaling gate: every workload's 2-worker
// point must reach minSpeedup. Returns 0 when the gate passes or is
// skipped (single-CPU host: no 2-worker point exists), 1 otherwise.
func checkSpeedup2(results []SweepResult, minSpeedup float64) int {
	if runtime.NumCPU() < 2 {
		fmt.Printf("scaling gate: skipped (NumCPU=%d, no 2-worker point)\n", runtime.NumCPU())
		return 0
	}
	code := 0
	for _, res := range results {
		for _, pt := range res.Scaling {
			if pt.Workers != 2 {
				continue
			}
			if pt.Speedup < minSpeedup {
				fmt.Printf("scaling gate: FAIL %s speedup at 2 workers %.2fx < %.2fx\n",
					res.Name, pt.Speedup, minSpeedup)
				code = 1
			} else {
				fmt.Printf("scaling gate: ok %s speedup at 2 workers %.2fx >= %.2fx\n",
					res.Name, pt.Speedup, minSpeedup)
			}
		}
	}
	return code
}

// measureSweep times fn with the testing harness (-benchtime per
// configuration) and extracts per-op costs.
func measureSweep(fn func() (string, error)) SweepCost {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fn(); err != nil {
				b.Fatal(err)
			}
		}
	})
	return SweepCost{
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}
