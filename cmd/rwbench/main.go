// Command rwbench regenerates experiment E7: native (real goroutines,
// sync/atomic) throughput of the A_f family, the baselines, and the
// standard library's sync.RWMutex across workload mixes. Absolute numbers
// depend on the host; the shape to look for is that read-mostly workloads
// scale for locks with reader parallelism and collapse for the serializing
// ones.
//
// With -sweeps it instead benchmarks the simulator-side sweep workloads
// serially and at -parallel workers, checks the two produce byte-identical
// results, and writes machine-readable numbers (ns/op, allocs/op, speedup)
// to a JSON file. Adding -scaling extends the artifact with a worker-count
// scaling curve (1, 2, 4, NumCPU; ns/op, speedup, parallel efficiency and
// the work-stealing scheduler counters per point); -min-speedup2 turns the
// 2-worker speedup into a pass/fail gate on multicore hosts.
//
// With -compare it instead diffs two -sweeps JSON artifacts and enforces
// regression budgets on the serial measurements: the run fails if new
// ns/op or allocs/op exceed the baseline by more than the configured
// ratios. CI runs it against the committed BENCH_sweeps.json.
//
// Usage:
//
//	rwbench [-readers 8] [-writers 2] [-dur 200ms] [-parallel N]
//	rwbench -sweeps [-scaling [-min-speedup2 1.2]] [-out BENCH_sweeps.json] [-benchtime 1s]
//	rwbench -compare [-max-ns-ratio 1.25] [-max-alloc-ratio 1.10] old.json new.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/native"
	"repro/internal/tablefmt"
	"repro/internal/workload"
)

// locker is the common face of reader handles, writer handles and
// sync.RWMutex views.
type locker interface {
	Lock()
	Unlock()
}

func main() {
	readers := flag.Int("readers", 8, "reader goroutines")
	writers := flag.Int("writers", 2, "writer goroutines")
	dur := flag.Duration("dur", 200*time.Millisecond, "measurement duration per cell")
	sweeps := flag.Bool("sweeps", false, "benchmark the simulator sweep workloads (serial vs parallel) and write JSON")
	out := flag.String("out", "BENCH_sweeps.json", "output path for -sweeps")
	benchtime := flag.Duration("benchtime", time.Second, "measurement time per sweep configuration in -sweeps mode")
	scaling := flag.Bool("scaling", false, "-sweeps: also measure the worker-count scaling curve (1/2/4/NumCPU) with scheduler counters")
	minSpeedup2 := flag.Float64("min-speedup2", 0, "-scaling: fail unless every workload reaches this speedup at 2 workers (0 disables; skipped when NumCPU < 2)")
	compare := flag.Bool("compare", false, "compare two -sweeps JSON files (old new) and fail on perf regressions")
	maxNsRatio := flag.Float64("max-ns-ratio", 1.25, "-compare: max allowed new/old serial ns/op ratio (0 disables the axis)")
	maxAllocRatio := flag.Float64("max-alloc-ratio", 1.10, "-compare: max allowed new/old serial allocs/op ratio (0 disables the axis)")
	requireSameHost := flag.Bool("require-same-host", false, "-compare: fail when the two artifacts' Host blocks differ instead of just warning")
	applyParallel := cliutil.ParallelFlag()
	applyRobust := cliutil.RobustFlags()
	applyProfile := cliutil.ProfileFlags()
	flag.Parse()
	if !*compare {
		cliutil.NoArgs(flag.CommandLine)
	}
	applyParallel()
	if err := applyRobust(); err != nil {
		fmt.Fprintln(os.Stderr, "rwbench:", err)
		cliutil.Exit(1)
	}
	if err := applyProfile(); err != nil {
		fmt.Fprintln(os.Stderr, "rwbench:", err)
		cliutil.Exit(1)
	}
	// Profiles flush only through cliutil.Exit (os.Exit would drop them);
	// every exit below, including the fall-through success path, uses it.
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "rwbench: -compare takes exactly two arguments: old.json new.json")
			cliutil.Exit(2)
		}
		code, err := runCompare(flag.Arg(0), flag.Arg(1), *maxNsRatio, *maxAllocRatio, *requireSameHost)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rwbench:", err)
			cliutil.Exit(1)
		}
		cliutil.Exit(code)
	}
	if *sweeps {
		if err := runSweeps(*out, *benchtime, *scaling, *minSpeedup2); err != nil {
			fmt.Fprintln(os.Stderr, "rwbench:", err)
			cliutil.Exit(1)
		}
		cliutil.Exit(0)
	}
	if err := run(*readers, *writers, *dur); err != nil {
		fmt.Fprintln(os.Stderr, "rwbench:", err)
		cliutil.Exit(1)
	}
	cliutil.Exit(0)
}

func run(nReaders, nWriters int, dur time.Duration) error {
	if nReaders < 1 || nWriters < 1 {
		return fmt.Errorf("need at least one reader and one writer")
	}
	fmt.Printf("E7: native throughput, %d readers + %d writers, %v per cell (passages/sec, higher is better)\n",
		nReaders, nWriters, dur)

	mixes := []workload.Mix{workload.ReadHeavy, workload.ReadMostly, workload.Balanced}
	headers := []string{"algorithm"}
	for _, mix := range mixes {
		headers = append(headers, mix.Name)
	}
	table := tablefmt.New(headers...)

	for _, fac := range experiments.AllFactories() {
		lock, err := native.NewLock(fac.New(), nReaders, nWriters)
		if err != nil {
			return err
		}
		cells := []string{fac.Name}
		for _, mix := range mixes {
			rls := make([]locker, nReaders)
			wls := make([]locker, nWriters)
			for i := range rls {
				rls[i] = lock.Reader(i)
			}
			for i := range wls {
				wls[i] = lock.Writer(i)
			}
			ops := measure(rls, wls, mix, dur)
			cells = append(cells, fmt.Sprintf("%.0f", float64(ops)/dur.Seconds()))
		}
		table.AddRow(cells...)
	}

	// sync.RWMutex reference.
	var mu sync.RWMutex
	cells := []string{"sync.RWMutex"}
	for _, mix := range mixes {
		rls := make([]locker, nReaders)
		wls := make([]locker, nWriters)
		for i := range rls {
			rls[i] = mu.RLocker()
		}
		for i := range wls {
			wls[i] = &mu
		}
		ops := measure(rls, wls, mix, dur)
		cells = append(cells, fmt.Sprintf("%.0f", float64(ops)/dur.Seconds()))
	}
	table.AddRow(cells...)

	fmt.Println(table)
	return nil
}

// measure runs reader and writer goroutines against their handles until
// the deadline and returns the total number of completed passages. Writers
// throttle themselves to approximate the mix's write share.
func measure(readers, writers []locker, mix workload.Mix, dur time.Duration) int64 {
	var stop atomic.Bool
	var total atomic.Int64
	var wg sync.WaitGroup

	// Convert the mix into a writer duty cycle: per writer passage,
	// readers collectively complete about readShare/writeShare passages;
	// writers emulate this by spinning on a local counter between
	// passages.
	writeShare := 1 - mix.ReadFraction
	pauseIters := int(mix.ReadFraction / writeShare * float64(len(readers)) * 4)

	for _, h := range readers {
		h := h
		wg.Add(1)
		go func() {
			defer wg.Done()
			ops := int64(0)
			for !stop.Load() {
				h.Lock()
				h.Unlock()
				ops++
			}
			total.Add(ops)
		}()
	}
	for _, h := range writers {
		h := h
		wg.Add(1)
		go func() {
			defer wg.Done()
			ops := int64(0)
			sink := 0
			for !stop.Load() {
				h.Lock()
				sink++
				h.Unlock()
				ops++
				for i := 0; i < pauseIters && !stop.Load(); i++ {
					sink += i // spin between write passages
				}
			}
			_ = sink
			total.Add(ops)
		}()
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	return total.Load()
}
