// The -compare mode turns the committed BENCH_sweeps.json baseline into
// an enforced budget: it diffs two -sweeps artifacts and fails when a
// workload's serial cost regressed past the configured ratios. Serial
// numbers are the comparison axis because they are independent of the
// host's core count; ns/op still varies with host speed (CI disables that
// axis and relies on allocs/op, which is host-independent).
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/tablefmt"
)

// loadSweepReport parses a -sweeps JSON artifact.
func loadSweepReport(path string) (*SweepReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep SweepReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Experiments) == 0 {
		return nil, fmt.Errorf("%s: no experiments (not a -sweeps artifact?)", path)
	}
	return &rep, nil
}

// hostMismatch lists the Host fields on which two artifacts disagree.
// ns/op comparisons across different hosts are noise, so a mismatch is
// always surfaced; -require-same-host upgrades it to a hard failure.
func hostMismatch(a, b *SweepReport) []string {
	var diffs []string
	if a.Host.GOOS != b.Host.GOOS {
		diffs = append(diffs, fmt.Sprintf("goos %q vs %q", a.Host.GOOS, b.Host.GOOS))
	}
	if a.Host.GOARCH != b.Host.GOARCH {
		diffs = append(diffs, fmt.Sprintf("goarch %q vs %q", a.Host.GOARCH, b.Host.GOARCH))
	}
	if a.Host.NumCPU != b.Host.NumCPU {
		diffs = append(diffs, fmt.Sprintf("num_cpu %d vs %d", a.Host.NumCPU, b.Host.NumCPU))
	}
	if a.Host.GOMAXPROCS != b.Host.GOMAXPROCS {
		diffs = append(diffs, fmt.Sprintf("gomaxprocs %d vs %d", a.Host.GOMAXPROCS, b.Host.GOMAXPROCS))
	}
	return diffs
}

// runCompare diffs oldPath (the baseline) against newPath and returns the
// process exit code: 0 when every baseline workload is present in the new
// artifact and within budget, 1 otherwise. A ratio limit of 0 disables
// that axis; workloads only present in the new artifact are reported but
// never fail (they have no baseline yet). Artifacts from different hosts
// draw a loud warning (the ns/op axis is meaningless across hosts) and,
// with requireSameHost, fail outright.
func runCompare(oldPath, newPath string, maxNsRatio, maxAllocRatio float64, requireSameHost bool) (int, error) {
	oldRep, err := loadSweepReport(oldPath)
	if err != nil {
		return 1, err
	}
	newRep, err := loadSweepReport(newPath)
	if err != nil {
		return 1, err
	}
	// Provenance up front: speedup and scaling claims in an artifact are
	// only as good as the host that recorded it, so the core counts are
	// printed on every compare, not just on mismatch.
	fmt.Printf("baseline %s: %s/%s num_cpu=%d gomaxprocs=%d parallel_workers=%d\n",
		oldPath, oldRep.Host.GOOS, oldRep.Host.GOARCH,
		oldRep.Host.NumCPU, oldRep.Host.GOMAXPROCS, oldRep.ParallelWorkers)
	fmt.Printf("new      %s: %s/%s num_cpu=%d gomaxprocs=%d parallel_workers=%d\n",
		newPath, newRep.Host.GOOS, newRep.Host.GOARCH,
		newRep.Host.NumCPU, newRep.Host.GOMAXPROCS, newRep.ParallelWorkers)
	if oldRep.Host.NumCPU == 1 {
		fmt.Println("WARNING: baseline was recorded on a single-CPU host (num_cpu=1) — its parallel numbers and speedups " +
			"measure scheduler overhead, not scaling; re-baseline on a multicore host before trusting them")
	}
	hostDiffs := hostMismatch(oldRep, newRep)
	for _, d := range hostDiffs {
		fmt.Printf("WARNING: artifacts come from different hosts: %s — ns/op ratios are not comparable\n", d)
	}
	if requireSameHost && len(hostDiffs) > 0 {
		fmt.Println("FAIL: -require-same-host set and the Host blocks differ")
		return 1, nil
	}
	newByName := map[string]SweepCost{}
	for _, e := range newRep.Experiments {
		newByName[e.Name] = e.Serial
	}

	fmt.Printf("comparing serial sweep costs: %s (baseline) vs %s\n", oldPath, newPath)
	fmt.Printf("budgets: ns/op ratio <= %s, allocs/op ratio <= %s\n",
		ratioLimit(maxNsRatio), ratioLimit(maxAllocRatio))
	table := tablefmt.New("workload", "ns/op old", "ns/op new", "ratio", "allocs old", "allocs new", "ratio", "status")
	failed := false
	for _, e := range oldRep.Experiments {
		nc, ok := newByName[e.Name]
		if !ok {
			table.AddRow(e.Name, fmt.Sprint(e.Serial.NsPerOp), "-", "-",
				fmt.Sprint(e.Serial.AllocsPerOp), "-", "-", "FAIL (missing)")
			failed = true
			continue
		}
		delete(newByName, e.Name)
		nsRatio := ratio(nc.NsPerOp, e.Serial.NsPerOp)
		allocRatio := ratio(nc.AllocsPerOp, e.Serial.AllocsPerOp)
		status := "ok"
		if maxNsRatio > 0 && nsRatio > maxNsRatio {
			status = "FAIL (ns/op)"
			failed = true
		}
		if maxAllocRatio > 0 && allocRatio > maxAllocRatio {
			if status != "ok" {
				status = "FAIL (ns/op, allocs/op)"
			} else {
				status = "FAIL (allocs/op)"
			}
			failed = true
		}
		table.AddRow(e.Name,
			fmt.Sprint(e.Serial.NsPerOp), fmt.Sprint(nc.NsPerOp), fmt.Sprintf("%.3f", nsRatio),
			fmt.Sprint(e.Serial.AllocsPerOp), fmt.Sprint(nc.AllocsPerOp), fmt.Sprintf("%.3f", allocRatio),
			status)
	}
	for name, nc := range newByName {
		table.AddRow(name, "-", fmt.Sprint(nc.NsPerOp), "-", "-", fmt.Sprint(nc.AllocsPerOp), "-", "new")
	}
	fmt.Println(table)
	if failed {
		fmt.Println("FAIL: sweep cost regressed past the budget (or a baseline workload disappeared)")
		return 1, nil
	}
	fmt.Println("PASS: all sweep costs within budget")
	return 0, nil
}

// ratio returns new/old, treating a zero baseline as exactly met (1.0) so
// a workload that allocated nothing before and still allocates nothing
// passes, while any growth from zero trips the budget.
func ratio(newV, oldV int64) float64 {
	if oldV == 0 {
		if newV == 0 {
			return 1
		}
		return 1e9
	}
	return float64(newV) / float64(oldV)
}

// ratioLimit renders a threshold, showing disabled axes explicitly.
func ratioLimit(v float64) string {
	if v <= 0 {
		return "disabled"
	}
	return fmt.Sprintf("%.2f", v)
}
