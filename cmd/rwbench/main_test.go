package main

import (
	"os"
	"strings"
	"testing"
	"time"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	errRun := fn()
	w.Close()
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), errRun
}

func TestRunTinyDuration(t *testing.T) {
	out, err := capture(t, func() error { return run(2, 1, 5*time.Millisecond) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E7:", "af-log", "sync.RWMutex", "read-heavy"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunBadPopulation(t *testing.T) {
	if _, err := capture(t, func() error { return run(0, 1, time.Millisecond) }); err == nil {
		t.Error("zero readers accepted")
	}
}
