package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/lockd"
)

// startRun launches run with an injected signal channel and waits for the
// server to come up, returning its address, the signal channel, the exit
// code channel, and the output buffers.
func startRun(t *testing.T, args []string) (string, chan os.Signal, chan int, *bytes.Buffer, *bytes.Buffer) {
	t.Helper()
	sig := make(chan os.Signal, 2)
	ready := make(chan string, 1)
	code := make(chan int, 1)
	var out, errOut bytes.Buffer
	go func() {
		code <- run(args, sig, func(addr string) { ready <- addr }, &out, &errOut)
	}()
	select {
	case addr := <-ready:
		return addr, sig, code, &out, &errOut
	case c := <-code:
		t.Fatalf("run exited early with %d\nstdout: %s\nstderr: %s", c, out.String(), errOut.String())
		return "", nil, nil, nil, nil
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
		return "", nil, nil, nil, nil
	}
}

func waitExit(t *testing.T, code chan int) int {
	t.Helper()
	select {
	case c := <-code:
		return c
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit")
		return -1
	}
}

func TestServeAndCleanDrain(t *testing.T) {
	addr, sig, code, out, _ := startRun(t, []string{"-addr", "127.0.0.1:0", "-quiet"})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := lockd.Dial(ctx, addr, lockd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Acquire(ctx, "svc", lockd.ModeWrite, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Release(ctx); err != nil {
		t.Fatal(err)
	}
	c.Close()

	sig <- syscall.SIGTERM
	if c := waitExit(t, code); c != 0 {
		t.Fatalf("clean drain exited %d, want 0\nstdout: %s", c, out.String())
	}
	if !strings.Contains(out.String(), "drain complete, 0 leaked holds") {
		t.Fatalf("missing drain report in output:\n%s", out.String())
	}
}

func TestDrainRefusesNewAcquires(t *testing.T) {
	addr, sig, code, _, _ := startRun(t, []string{"-addr", "127.0.0.1:0", "-quiet", "-drain-timeout", "2s"})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := lockd.Dial(ctx, addr, lockd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Abandon()
	// Keep a hold alive so the drain waits instead of finishing instantly.
	h, err := c.Acquire(ctx, "held", lockd.ModeWrite, time.Second)
	if err != nil {
		t.Fatal(err)
	}

	sig <- syscall.SIGTERM
	// The drain refuses new acquires while it waits for the holder.
	var acqErr error
	for i := 0; i < 50; i++ {
		_, acqErr = c.TryAcquire(ctx, "late", lockd.ModeRead)
		if errors.Is(acqErr, lockd.ErrDraining) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !errors.Is(acqErr, lockd.ErrDraining) {
		t.Fatalf("acquire during drain: got %v, want ErrDraining", acqErr)
	}
	if err := h.Release(ctx); err != nil {
		t.Fatal(err)
	}
	if c := waitExit(t, code); c != 0 {
		t.Fatalf("drain after holder released exited %d, want 0", c)
	}
}

func TestDrainReportsLeakedHolds(t *testing.T) {
	addr, sig, code, _, errOut := startRun(t, []string{
		"-addr", "127.0.0.1:0", "-quiet", "-drain-timeout", "300ms", "-max-ttl", "60s",
	})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// A healthy client (heartbeating, so its lease never lapses) that sits
	// on a write hold past the drain deadline is a leak.
	c, err := lockd.Dial(ctx, addr, lockd.Options{TTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Abandon()
	if _, err := c.Acquire(ctx, "stuck", lockd.ModeWrite, time.Second); err != nil {
		t.Fatal(err)
	}

	sig <- syscall.SIGTERM
	if c := waitExit(t, code); c != 1 {
		t.Fatalf("drain with a stuck hold exited %d, want 1\nstderr: %s", c, errOut.String())
	}
	if !strings.Contains(errOut.String(), "leaked holds") || !strings.Contains(errOut.String(), "stuck/w") {
		t.Fatalf("leak report missing from stderr:\n%s", errOut.String())
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	var out, errOut bytes.Buffer
	if c := run([]string{"-no-such-flag"}, make(chan os.Signal), nil, &out, &errOut); c != 2 {
		t.Fatalf("bad flag exited %d, want 2", c)
	}
}
