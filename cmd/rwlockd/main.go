// Command rwlockd is the long-running reader-writer lock service: sharded
// named RW-lock namespaces over TCP with session leases, deadline-bounded
// acquires, bounded wait queues, and graceful drain.
//
// Failure model (the service-side mirror of the simulator's, see
// DESIGN.md): a client that stops heartbeating — killed, partitioned, or
// wedged — has its session lease expire, which revokes all its holds and
// queued waiters; a kill -9'd client can therefore never wedge a lock.
// On SIGTERM (or SIGINT) the server drains: new acquires are refused,
// queued waiters are cancelled, holders get -drain-timeout to finish, and
// any hold still outstanding at the deadline is reported as leaked with a
// nonzero exit. A second signal aborts immediately.
//
// With -data-dir the server is durable: service state is written to a WAL
// plus periodic snapshots under the directory, and a restart — including
// after kill -9 — replays them, bumps the server epoch (fencing every
// pre-crash hold: their tokens are strictly dominated by every token the
// new epoch mints, so nothing is ever double-granted), re-arms lease
// sweeping from the persisted deadlines, and answers "recovering" until
// the replayed state is installed.
//
// Usage:
//
//	rwlockd [-addr 127.0.0.1:7911] [-shards 8] [-ttl 5s] [-min-ttl 50ms]
//	        [-max-ttl 60s] [-max-queue 128] [-max-wait 30s]
//	        [-sweep-interval 25ms] [-drain-timeout 10s] [-quiet]
//	        [-data-dir DIR] [-fsync interval] [-snapshot-every 4096]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/lockd"
)

func main() {
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], sig, nil, os.Stdout, os.Stderr))
}

// run is the testable body of main: it parses args, serves until a signal
// arrives on sig, drains, and returns the process exit code (0 clean
// drain, 1 leaked holds or serve error, 2 flag errors). onReady, when
// non-nil, receives the bound address once the server is listening.
func run(args []string, sig <-chan os.Signal, onReady func(addr string), out, errOut io.Writer) int {
	fs := flag.NewFlagSet("rwlockd", flag.ContinueOnError)
	fs.SetOutput(errOut)
	addr := fs.String("addr", "127.0.0.1:7911", "TCP listen address")
	shards := fs.Int("shards", 8, "lock namespace shard count")
	ttl := fs.Duration("ttl", 5*time.Second, "default session lease TTL")
	minTTL := fs.Duration("min-ttl", 50*time.Millisecond, "smallest grantable lease TTL")
	maxTTL := fs.Duration("max-ttl", 60*time.Second, "largest grantable lease TTL")
	maxQueue := fs.Int("max-queue", 128, "bounded wait queue per named lock (beyond it acquires are shed)")
	maxWait := fs.Duration("max-wait", 30*time.Second, "cap on a single acquire's server-side wait")
	sweep := fs.Duration("sweep-interval", 25*time.Millisecond, "lease-expiry scan period")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "grace period for holders on SIGTERM before holds count as leaked")
	quiet := fs.Bool("quiet", false, "suppress per-event logs (revocations)")
	dataDir := fs.String("data-dir", "", "durability directory (WAL + snapshots); empty runs in-memory")
	fsyncPolicy := fs.String("fsync", "interval", "WAL sync policy: always, interval, or never")
	snapshotEvery := fs.Int("snapshot-every", 4096, "WAL records between snapshot rotations")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cliutil.NoArgs(fs)

	logf := func(format string, args ...any) {
		fmt.Fprintf(errOut, "rwlockd: "+format+"\n", args...)
	}
	cfg := lockd.Config{
		Addr:          *addr,
		Shards:        *shards,
		DefaultTTL:    *ttl,
		MinTTL:        *minTTL,
		MaxTTL:        *maxTTL,
		MaxQueue:      *maxQueue,
		MaxWait:       *maxWait,
		SweepInterval: *sweep,
		DataDir:       *dataDir,
		Fsync:         *fsyncPolicy,
		SnapshotEvery: *snapshotEvery,
	}
	if !*quiet {
		cfg.Logf = logf
	}
	srv, err := lockd.New(cfg)
	if err != nil {
		fmt.Fprintln(errOut, "rwlockd:", err)
		return 1
	}
	fmt.Fprintf(out, "rwlockd: listening on %s (shards=%d default-ttl=%v max-queue=%d)\n",
		srv.Addr(), *shards, *ttl, *maxQueue)
	if info := srv.RecoveryInfo(); info != nil {
		fmt.Fprintf(out, "rwlockd: recovery: snapshot=%v replayed=%d records, %d sessions, %d holds, %d queued\n",
			info.SnapshotLoaded, info.Replayed, info.Sessions, info.Holds, info.Queued)
		if info.TornBytes > 0 {
			fmt.Fprintf(errOut, "rwlockd: recovery: truncated %d torn WAL bytes (%v)\n",
				info.TornBytes, info.TornReason)
		}
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	// The ready gate closes once recovery install (epoch bump + state
	// restore) finishes — immediately, for an in-memory server. Announce
	// the serving epoch before reporting ready so supervisors that scrape
	// the line see the post-bump value.
	select {
	case <-srv.Ready():
		fmt.Fprintf(out, "rwlockd: serving epoch %d\n", srv.Epoch())
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintln(errOut, "rwlockd:", err)
			return 1
		}
		return 0
	}
	if onReady != nil {
		onReady(srv.Addr().String())
	}

	select {
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintln(errOut, "rwlockd:", err)
			return 1
		}
		return 0
	case s := <-sig:
		fmt.Fprintf(out, "rwlockd: %v: draining (refusing new acquires, holders have %v)\n", s, *drainTimeout)
	}

	// A second signal aborts without waiting for the drain.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-sig:
			fmt.Fprintln(errOut, "rwlockd: second signal, aborting")
			os.Exit(130)
		case <-done:
		}
	}()

	leaked := srv.Drain(*drainTimeout)
	srv.Close()
	if err := <-serveErr; err != nil {
		fmt.Fprintln(errOut, "rwlockd:", err)
		return 1
	}
	if len(leaked) > 0 {
		fmt.Fprintf(errOut, "rwlockd: drain deadline passed with %d leaked holds:\n", len(leaked))
		for _, h := range leaked {
			fmt.Fprintf(errOut, "rwlockd:   %s/%s held by session %s\n", h.Key, h.Mode, h.Session)
		}
		return 1
	}
	fmt.Fprintln(out, "rwlockd: drain complete, 0 leaked holds")
	return 0
}
