package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() (int, error)) (string, int, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	code, errRun := fn()
	w.Close()
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), code, errRun
}

func TestRunPasses(t *testing.T) {
	out, code, err := capture(t, func() (int, error) { return run("1,2", false, false, false) })
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, out)
	}
	for _, want := range []string{"E6:", "mutual exclusion", "all claimed properties hold"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunBadSeeds(t *testing.T) {
	_, code, err := capture(t, func() (int, error) { return run("nope", false, false, false) })
	if err == nil || code == 0 {
		t.Error("bad seeds accepted")
	}
}

// TestRunCrashSweep exercises the full -crash path: the E13 tables must
// print and every robustness gate must pass.
func TestRunCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep is a full exhaustive enumeration")
	}
	out, code, err := capture(t, func() (int, error) { return run("1", true, false, false) })
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, out)
	}
	for _, want := range []string{
		"E13: crash-stop sweep", "crash section",
		"E13: abort cost", "reader abort rmr",
		"all claimed properties hold",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("crash sweep reported failures:\n%s", out)
	}
}

// TestRunRecoverSweep exercises the full -recover path: the E14 table must
// print and the crash-recovery gate must pass.
func TestRunRecoverSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery sweep is a full exhaustive enumeration")
	}
	out, code, err := capture(t, func() (int, error) { return run("1", false, true, false) })
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, out)
	}
	for _, want := range []string{
		"E14: crash-recovery sweep", "crash section", "resumed cs",
		"crash-recovery sweep: all incarnations safe, all passages completed",
		"all claimed properties hold",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("recovery sweep reported failures:\n%s", out)
	}
}

// TestRunStallSweep exercises the full -stall path: the E15 tables must
// print, the liveness gates must pass, and the negative control must be
// confirmed.
func TestRunStallSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("stall sweep is a full exhaustive enumeration")
	}
	out, code, err := capture(t, func() (int, error) { return run("1", false, false, true) })
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, out)
	}
	for _, want := range []string{
		"E15: fail-slow stall sweep", "stall section", "max rd byp",
		"E15: reader liveness", "doomed readers",
		"negative control confirmed",
		"E15: sampled crash+stall mixed sweep",
		"fail-slow sweep: every delay safe, every wedge attributed, bypass within budget",
		"all claimed properties hold",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("stall sweep reported failures:\n%s", out)
	}
}
