// Command rwverify regenerates experiment E6: the property matrix. It runs
// every algorithm through seeded random-schedule workloads on the CC
// simulator and reports, per algorithm, whether Mutual Exclusion, progress
// (deadlock freedom / non-starvation on finite workloads), reader overlap
// (Concurrent Entering evidence) and Bounded Exit held. It exits non-zero
// if any algorithm violates a property it claims.
//
// Usage:
//
//	rwverify [-seeds 1,2,3,4,5]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/experiments"
)

func main() {
	seedsFlag := flag.String("seeds", "1,2,3,4,5", "comma-separated scheduler seeds")
	flag.Parse()

	code, err := run(*seedsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rwverify:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(seedList string) (int, error) {
	seeds, err := cliutil.ParseSeeds(seedList)
	if err != nil {
		return 1, err
	}
	fmt.Printf("E6: property matrix over %d random-schedule seeds (n=6, m=2)\n", len(seeds))
	rows, table, err := experiments.E6Properties(seeds)
	if err != nil {
		return 1, err
	}
	fmt.Println(table)

	failed := false
	for _, r := range rows {
		if !r.MutualExclusion || !r.Progress || !r.BoundedExit || r.ReaderOverlap != r.ExpectOverlap {
			fmt.Printf("FAIL: %s violated a claimed property\n", r.Alg)
			failed = true
		}
	}
	if failed {
		return 1, nil
	}
	fmt.Println("all claimed properties hold")
	return 0, nil
}
