// Command rwverify regenerates experiment E6: the property matrix. It runs
// every algorithm through seeded random-schedule workloads on the CC
// simulator and reports, per algorithm, whether Mutual Exclusion, progress
// (deadlock freedom / non-starvation on finite workloads), reader overlap
// (Concurrent Entering evidence) and Bounded Exit held. It exits non-zero
// if any algorithm violates a property it claims.
//
// With -crash it additionally runs experiment E13: the exhaustive
// crash-stop sweep (kill one reader / one writer at every step boundary,
// requiring Mutual Exclusion to survive every crash and every hang to be
// caught deterministically by the watchdog) and the bounded-abort cost
// table for the TryEnter implementations.
//
// With -recover it additionally runs experiment E14: the crash-recovery
// sweep over the recoverable algorithms (exhaustive single-crash and
// re-crashed-recovery sweeps on the recoverable centralized lock, sampled
// sweeps on recoverable A_f), requiring zero Mutual Exclusion violations,
// zero step-budget hits, and 100% passage completion — survivors and
// restarted incarnations alike — including at least one configuration
// that crashes a recovery section itself.
//
// With -stall it additionally runs experiment E15: the exhaustive
// fail-slow sweep (pause one reader / one writer at every step boundary,
// finitely and forever), the readers-only Concurrent-Entering liveness
// axis with its mutex-rw negative control, and the sampled crash+stall
// mixed sweep. It fails on any liveness-contract violation, watchdog
// misattribution, or bypass-budget breach.
//
// Long sweeps are crash-safe: with -checkpoint FILE completed rows are
// recorded durably, SIGINT/SIGTERM stops the sweep cooperatively (exit
// status 3), and -resume picks up where the interrupted run stopped with
// byte-identical final output. See also -keep-going and -row-timeout.
//
// Usage:
//
//	rwverify [-seeds 1,2,3,4,5] [-crash] [-recover] [-stall] [-parallel N]
//	         [-checkpoint FILE [-resume]] [-keep-going] [-row-timeout D]
//	         [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/experiments"
)

func main() {
	seedsFlag := flag.String("seeds", "1,2,3,4,5", "comma-separated scheduler seeds")
	crashFlag := flag.Bool("crash", false, "also run the E13 crash-stop sweep and abort-cost tables")
	recoverFlag := flag.Bool("recover", false, "also run the E14 crash-recovery sweep")
	stallFlag := flag.Bool("stall", false, "also run the E15 fail-slow (stall) sweeps")
	applyParallel := cliutil.ParallelFlag()
	applyRobust := cliutil.RobustFlags()
	applyProfile := cliutil.ProfileFlags()
	flag.Parse()
	cliutil.NoArgs(flag.CommandLine)
	applyParallel()
	if err := applyRobust(); err != nil {
		fmt.Fprintln(os.Stderr, "rwverify:", err)
		cliutil.Exit(1)
	}
	if err := applyProfile(); err != nil {
		fmt.Fprintln(os.Stderr, "rwverify:", err)
		cliutil.Exit(1)
	}

	code, err := run(*seedsFlag, *crashFlag, *recoverFlag, *stallFlag)
	if err != nil {
		cliutil.Fail("rwverify", err)
	}
	cliutil.Exit(code)
}

func run(seedList string, crash, recovery, stall bool) (int, error) {
	seeds, err := cliutil.ParseSeeds(seedList)
	if err != nil {
		return 1, err
	}
	fmt.Printf("E6: property matrix over %d random-schedule seeds (n=6, m=2)\n", len(seeds))
	rows, table, err := experiments.E6Properties(seeds)
	if err != nil {
		return 1, err
	}
	fmt.Println(table)

	failed := false
	for _, r := range rows {
		if !r.MutualExclusion || !r.Progress || !r.BoundedExit || r.ReaderOverlap != r.ExpectOverlap {
			fmt.Printf("FAIL: %s violated a claimed property\n", r.Alg)
			failed = true
		}
	}
	if crash {
		if bad, err := runCrash(); err != nil {
			return 1, err
		} else if bad {
			failed = true
		}
	}
	if recovery {
		if bad, err := runRecover(); err != nil {
			return 1, err
		} else if bad {
			failed = true
		}
	}
	if stall {
		if bad, err := runStall(); err != nil {
			return 1, err
		} else if bad {
			failed = true
		}
	}
	if failed {
		return 1, nil
	}
	fmt.Println("all claimed properties hold")
	return 0, nil
}

// runCrash prints the E13 tables and returns whether any robustness
// property failed: a Mutual Exclusion violation under any crash, a hang
// that only the step budget caught (watchdog miss), or an abort attempt
// that did not abort where staged to fail.
func runCrash() (failed bool, err error) {
	fmt.Println("E13: crash-stop sweep (n=2, m=2, 2 passages, round-robin; one victim per run)")
	crashRows, crashTable, err := experiments.E13CrashSweep()
	if err != nil {
		return false, err
	}
	fmt.Println(crashTable)
	for _, r := range crashRows {
		if r.MEViol > 0 {
			fmt.Printf("FAIL: %s: crash of %s in %s broke mutual exclusion (%d violations)\n",
				r.Alg, r.Victim, r.Section, r.MEViol)
			failed = true
		}
		if r.Budget > 0 {
			fmt.Printf("FAIL: %s: %d hangs escaped the watchdog (step-budget timeout)\n", r.Alg, r.Budget)
			failed = true
		}
		if r.Section == "remainder" && r.Live != r.Points {
			fmt.Printf("FAIL: %s: remainder-section crash of %s wedged survivors (%d/%d live)\n",
				r.Alg, r.Victim, r.Live, r.Points)
			failed = true
		}
	}

	fmt.Println("E13: abort cost of one failing try attempt (opposing class holds the CS)")
	abortRows, abortTable, err := experiments.E13AbortCost([]int{2, 4, 16, 64})
	if err != nil {
		return false, err
	}
	fmt.Println(abortTable)
	// Constancy claims: reader aborts at f(n)=n and writer aborts at
	// f(n)=1 are O(1); the centralized lock is O(1) on both sides.
	first := map[string]experiments.E13AbortRow{}
	for _, r := range abortRows {
		if !r.Aborted {
			fmt.Printf("FAIL: %s n=%d: staged try attempt did not abort\n", r.Alg, r.N)
			failed = true
		}
		f, seen := first[r.Alg]
		if !seen {
			first[r.Alg] = r
			continue
		}
		constReader := r.Alg == "af-n" || r.Alg == "centralized"
		constWriter := r.Alg == "af-1" || r.Alg == "centralized"
		if constReader && r.ReaderRMR != f.ReaderRMR {
			fmt.Printf("FAIL: %s: reader abort cost grew with n (%d at n=%d vs %d at n=%d)\n",
				r.Alg, f.ReaderRMR, f.N, r.ReaderRMR, r.N)
			failed = true
		}
		if constWriter && r.WriterRMR != f.WriterRMR {
			fmt.Printf("FAIL: %s: writer abort cost grew with n (%d at n=%d vs %d at n=%d)\n",
				r.Alg, f.WriterRMR, f.N, r.WriterRMR, r.N)
			failed = true
		}
	}
	return failed, nil
}

// runRecover prints the E14 table and returns whether the crash-recovery
// gate failed. E14RecoverySweep itself enforces the pass/fail axes (zero
// ME violations, zero budget hits, zero hangs, full passage completion,
// and at least one crashed recovery section), so any violation surfaces as
// an error; the per-row re-check below guards against the aggregation
// going stale.
func runRecover() (failed bool, err error) {
	fmt.Println("E14: crash-recovery sweep (n=2, m=2, 2 passages; restart after every crash)")
	rows, table, err := experiments.E14RecoverySweep()
	if err != nil {
		return false, err
	}
	fmt.Println(table)
	for _, r := range rows {
		if r.MEViol > 0 {
			fmt.Printf("FAIL: %s: crash of %s in %s broke mutual exclusion across incarnations (%d violations)\n",
				r.Alg, r.Victim, r.Section, r.MEViol)
			failed = true
		}
		if r.Budget > 0 {
			fmt.Printf("FAIL: %s: %d runs hit the step budget\n", r.Alg, r.Budget)
			failed = true
		}
		if r.OK != r.Points {
			fmt.Printf("FAIL: %s: crash of %s in %s left passages incomplete (%d/%d ok)\n",
				r.Alg, r.Victim, r.Section, r.OK, r.Points)
			failed = true
		}
	}
	if !failed {
		fmt.Println("crash-recovery sweep: all incarnations safe, all passages completed")
	}
	return failed, nil
}

// runStall prints the E15 tables and returns whether the fail-slow gate
// failed. The experiments themselves enforce the hard axes (the
// section-sensitive liveness contract, the bypass budget, the
// Concurrent-Entering claims and the mutex-rw negative control), so a
// violation surfaces as an error; the per-row re-checks below guard
// against the aggregation going stale.
func runStall() (failed bool, err error) {
	fmt.Println("E15: fail-slow stall sweep (n=2, m=2, 2 passages, round-robin; every boundary, finite + forever)")
	rows, table, err := experiments.E15StallSweep()
	if err != nil {
		return false, err
	}
	fmt.Println(table)
	for _, r := range rows {
		if r.MEViol > 0 {
			fmt.Printf("FAIL: %s: stall of %s in %s broke mutual exclusion (%d violations)\n",
				r.Alg, r.Victim, r.Section, r.MEViol)
			failed = true
		}
		if r.Budget > 0 {
			fmt.Printf("FAIL: %s: %d hangs escaped the watchdog (step-budget timeout)\n", r.Alg, r.Budget)
			failed = true
		}
		if r.Misclass > 0 {
			fmt.Printf("FAIL: %s: %d watchdog misattributions under stalls of %s in %s\n",
				r.Alg, r.Misclass, r.Victim, r.Section)
			failed = true
		}
		if r.FinOK != r.FinPoints {
			fmt.Printf("FAIL: %s: finite stall of %s in %s wedged the execution (%d/%d complete)\n",
				r.Alg, r.Victim, r.Section, r.FinOK, r.FinPoints)
			failed = true
		}
		if r.Section == "remainder" && r.SurvLive != r.InfPoints {
			fmt.Printf("FAIL: %s: remainder-section stall of %s wedged survivors (%d/%d live)\n",
				r.Alg, r.Victim, r.SurvLive, r.InfPoints)
			failed = true
		}
	}

	fmt.Println("E15: reader liveness under an in-CS reader stall (readers-only; mutex-rw is the negative control)")
	readerRows, readerTable, err := experiments.E15ReaderLiveness()
	if err != nil {
		return false, err
	}
	fmt.Println(readerTable)
	for _, r := range readerRows {
		if r.ClaimsCE && r.SiblingsLive != r.InCSPoints {
			fmt.Printf("FAIL: %s: claims Concurrent Entering but %d/%d in-CS stalls doomed sibling readers\n",
				r.Alg, r.DoomedReaders, r.InCSPoints)
			failed = true
		}
		if r.Alg == "mutex-rw" && r.DoomedReaders == 0 {
			fmt.Println("FAIL: mutex-rw negative control doomed no readers; the gate cannot detect busy-waiting on a stalled victim")
			failed = true
		}
	}
	fmt.Println("negative control confirmed: mutex-rw readers wedge behind a stalled in-CS holder; all Concurrent-Entering claimants stay live")

	fmt.Println("E15: sampled crash+stall mixed sweep (one crash victim + one stall victim per run)")
	mixedRows, mixedTable, err := experiments.E15MixedSweep()
	if err != nil {
		return false, err
	}
	fmt.Println(mixedTable)
	for _, r := range mixedRows {
		if r.MEViol > 0 || r.Budget > 0 || r.Misclass > 0 {
			fmt.Printf("FAIL: %s: mixed sweep me=%d budget=%d misclass=%d\n", r.Alg, r.MEViol, r.Budget, r.Misclass)
			failed = true
		}
	}
	if !failed {
		fmt.Println("fail-slow sweep: every delay safe, every wedge attributed, bypass within budget")
	}
	return failed, nil
}
