package main

import (
	"os"
	"strings"
	"testing"
)

// capture redirects stdout around fn and returns what was printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	errRun := fn()
	w.Close()
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), errRun
}

func TestRunE1(t *testing.T) {
	out, err := capture(t, func() error { return run("4,8", "1,2", "wt", false) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E1:", "af-1", "af-n", "writer entry RMR"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunBothProtocols(t *testing.T) {
	out, err := capture(t, func() error { return run("4,8", "1", "both", false) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "E5:") || !strings.Contains(out, "WB") {
		t.Errorf("E5 table missing:\n%s", out)
	}
}

func TestRunCorollary(t *testing.T) {
	out, err := capture(t, func() error { return run("4,8", "1,2", "wb", true) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "E3a") || !strings.Contains(out, "E3b") {
		t.Errorf("corollary tables missing:\n%s", out)
	}
}

func TestRunBadInputs(t *testing.T) {
	if _, err := capture(t, func() error { return run("x", "1", "wt", false) }); err == nil {
		t.Error("bad n accepted")
	}
	if _, err := capture(t, func() error { return run("4", "1", "bogus", false) }); err == nil {
		t.Error("bad protocol accepted")
	}
	if _, err := capture(t, func() error { return run("4", "y", "wt", true) }); err == nil {
		t.Error("bad m accepted")
	}
}
