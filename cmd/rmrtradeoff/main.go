// Command rmrtradeoff regenerates the Theorem-18 tradeoff tables
// (experiments E1, E3 and E5 from DESIGN.md): worst-case per-passage RMR
// counts of the A_f family measured on the CC simulator, swept over n and
// the tradeoff parameter f.
//
// Usage:
//
//	rmrtradeoff [-n 8,32,128,512] [-protocol wt|wb|both] [-corollary] [-m 1,4,16,64] [-parallel N]
//
// With -protocol both it prints the E5 write-through vs write-back
// comparison; with -corollary it additionally prints the Corollary 6/7
// tables (E3).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	nFlag := flag.String("n", "8,32,128,512", "comma-separated reader counts")
	mFlag := flag.String("m", "1,4,16,64", "comma-separated writer counts for -corollary")
	protoFlag := flag.String("protocol", "wt", "coherence protocol: wt, wb or both")
	corollary := flag.Bool("corollary", false, "also print the Corollary 6/7 tables (E3)")
	dsm := flag.Bool("dsm", false, "also print the CC vs DSM model contrast (E8)")
	wl := flag.Bool("wl", false, "also print the WL mutex substrate comparison (E10)")
	fit := flag.Bool("fit", false, "also print least-squares shape fits over the grid (E12)")
	applyParallel := cliutil.ParallelFlag()
	flag.Parse()
	cliutil.NoArgs(flag.CommandLine)
	applyParallel()

	if *fit {
		ns, err := cliutil.ParseInts(*nFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rmrtradeoff:", err)
			os.Exit(1)
		}
		fmt.Println("E12: Theorem-18 shapes as least-squares fits over the E1 grid")
		_, table, err := experiments.E12ShapeFits(ns, sim.WriteThrough)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rmrtradeoff:", err)
			os.Exit(1)
		}
		fmt.Println(table)
	}

	if *wl {
		ms, err := cliutil.ParseInts(*mFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rmrtradeoff:", err)
			os.Exit(1)
		}
		fmt.Println("E10: A_f writer costs across WL substrates (writers-only workload)")
		_, table, err := experiments.E10MutexSubstrates(ms)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rmrtradeoff:", err)
			os.Exit(1)
		}
		fmt.Println(table)
	}

	if *dsm {
		ns, err := cliutil.ParseInts(*nFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rmrtradeoff:", err)
			os.Exit(1)
		}
		fmt.Println("E8: CC (write-through) vs DSM per-passage RMRs")
		_, table, err := experiments.E8ModelContrast(ns)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rmrtradeoff:", err)
			os.Exit(1)
		}
		fmt.Println(table)
	}

	if err := run(*nFlag, *mFlag, *protoFlag, *corollary); err != nil {
		fmt.Fprintln(os.Stderr, "rmrtradeoff:", err)
		os.Exit(1)
	}
}

func run(nList, mList, protocol string, corollary bool) error {
	ns, err := cliutil.ParseInts(nList)
	if err != nil {
		return err
	}

	if protocol == "both" {
		fmt.Println("E5: A_f tradeoff under write-through vs write-back (max per-passage RMRs)")
		_, table, err := experiments.E5Protocols(ns)
		if err != nil {
			return err
		}
		fmt.Println(table)
	} else {
		proto, err := cliutil.ParseProtocol(protocol)
		if err != nil {
			return err
		}
		fmt.Printf("E1: A_f tradeoff (Theorem 18), %s, single writer, max per-passage RMRs\n", proto)
		_, table, err := experiments.E1Tradeoff(ns, proto)
		if err != nil {
			return err
		}
		fmt.Println(table)
	}

	if corollary {
		fmt.Println("E3a: Corollary 6 — max(writer entry, reader exit) RMR vs log2 n (adversarial)")
		_, nTable, err := experiments.E3MaxBound(ns)
		if err != nil {
			return err
		}
		fmt.Println(nTable)

		ms, err := cliutil.ParseInts(mList)
		if err != nil {
			return err
		}
		fmt.Println("E3b: Corollary 7 — writer passage RMR vs log2 m (writers only)")
		_, mTable, err := experiments.E3WriterMutex(ms)
		if err != nil {
			return err
		}
		fmt.Println(mTable)
	}
	return nil
}
