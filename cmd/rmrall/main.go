// Command rmrall regenerates every simulator experiment table in one run —
// the one-stop reproduction of EXPERIMENTS.md (native throughput, E7, has
// its own binary: rwbench).
//
// Usage:
//
//	rmrall [-quick]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	quick := flag.Bool("quick", false, "smaller grids (faster)")
	flag.Parse()
	cliutil.NoArgs(flag.CommandLine)
	if err := run(*quick); err != nil {
		fmt.Fprintln(os.Stderr, "rmrall:", err)
		os.Exit(1)
	}
}

func run(quick bool) error {
	ns := []int{8, 32, 128, 512}
	ns3 := []int{9, 27, 81, 243}
	ms := []int{1, 4, 16, 64}
	seeds := []int64{1, 2, 3}
	if quick {
		ns = []int{8, 32}
		ns3 = []int{9, 27}
		ms = []int{1, 16}
		seeds = []int64{1}
	}

	type section struct {
		title string
		gen   func() (fmt.Stringer, error)
	}
	sections := []section{
		{"E1: A_f tradeoff (Theorem 18), write-through", func() (fmt.Stringer, error) {
			_, t, err := experiments.E1Tradeoff(ns, sim.WriteThrough)
			return t, err
		}},
		{"E2: Theorem-5 adversarial construction", func() (fmt.Stringer, error) {
			_, t, err := experiments.E2LowerBound(ns3, sim.WriteThrough)
			return t, err
		}},
		{"E3a: Corollary 6 (max side vs log2 n)", func() (fmt.Stringer, error) {
			_, t, err := experiments.E3MaxBound(ns[:len(ns)-1])
			return t, err
		}},
		{"E3b: Corollary 7 (writer RMR vs log2 m)", func() (fmt.Stringer, error) {
			_, t, err := experiments.E3WriterMutex(ms)
			return t, err
		}},
		{"E4: algorithm comparison across mixes", func() (fmt.Stringer, error) {
			_, t, err := experiments.E4Baselines(16, 2, seeds, sim.WriteThrough)
			return t, err
		}},
		{"E5: write-through vs write-back", func() (fmt.Stringer, error) {
			_, t, err := experiments.E5Protocols(ns[:len(ns)-1])
			return t, err
		}},
		{"E6: property matrix", func() (fmt.Stringer, error) {
			_, t, err := experiments.E6Properties(seeds)
			return t, err
		}},
		{"E8: CC vs DSM", func() (fmt.Stringer, error) {
			_, t, err := experiments.E8ModelContrast(ns[:len(ns)-1])
			return t, err
		}},
		{"E9: counter ablation", func() (fmt.Stringer, error) {
			_, t, err := experiments.E9CounterAblation(ms[:len(ms)-1])
			return t, err
		}},
		{"E10: WL substrate ablation", func() (fmt.Stringer, error) {
			_, t, err := experiments.E10MutexSubstrates(ms)
			return t, err
		}},
		{"E11: adversary vs random sampling", func() (fmt.Stringer, error) {
			_, t, err := experiments.E11AdversaryValue(ns3[:2], []int64{1, 2, 3, 4})
			return t, err
		}},
		{"E12: Theorem-18 shape fits", func() (fmt.Stringer, error) {
			_, t, err := experiments.E12ShapeFits(ns, sim.WriteThrough)
			return t, err
		}},
	}
	for _, s := range sections {
		fmt.Println("=== " + s.title)
		table, err := s.gen()
		if err != nil {
			return fmt.Errorf("%s: %w", s.title, err)
		}
		fmt.Println(table)
	}
	return nil
}
