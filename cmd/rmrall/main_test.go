package main

import (
	"os"
	"strings"
	"testing"
)

func TestRunQuick(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(true)
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	var out []byte
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			break
		}
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	for _, want := range []string{"E1:", "E2:", "E4:", "E6:", "E12:"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q", want)
		}
	}
}
