package repro

// bench_test.go regenerates every experiment from DESIGN.md as a testing.B
// target. The simulator experiments (E1-E6) are deterministic: the "bench"
// aspect times one full table regeneration, and with -v each run prints the
// table it produced (the same tables the cmd/ binaries print). E7 measures
// native lock throughput with real goroutines.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkE2 -v          # print the lower-bound table

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/native"
	"repro/internal/sim"
)

// trimShort drops the largest grid size under -short so the CI benchmark
// smoke job (-bench=. -benchtime=1x -short) stays a compile-and-run check
// rather than a full table regeneration.
func trimShort(sizes []int) []int {
	if testing.Short() && len(sizes) > 1 {
		return sizes[:len(sizes)-1]
	}
	return sizes
}

// report prints the regenerated table when -v is set.
func report(b *testing.B, title, table string) {
	b.Helper()
	if testing.Verbose() {
		b.Logf("%s\n%s", title, table)
	}
}

// BenchmarkE1Tradeoff regenerates the Theorem-18 tradeoff grid (writer
// Theta(f(n)) vs reader Theta(log(n/f(n)))).
func BenchmarkE1Tradeoff(b *testing.B) {
	ns := trimShort([]int{8, 32, 128, 512})
	for i := 0; i < b.N; i++ {
		_, table, err := experiments.E1Tradeoff(ns, sim.WriteThrough)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, "E1: A_f tradeoff (write-through)", table.String())
		}
	}
}

// BenchmarkE2LowerBound regenerates the Theorem-5 adversarial construction
// table (iterations r vs log3(n/f(n)), Lemmas 1/2/4 checks).
func BenchmarkE2LowerBound(b *testing.B) {
	ns := trimShort([]int{9, 27, 81, 243})
	for i := 0; i < b.N; i++ {
		_, table, err := experiments.E2LowerBound(ns, sim.WriteThrough)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, "E2: Theorem-5 adversary", table.String())
		}
	}
}

// BenchmarkE3MaxBound regenerates the Corollary 6/7 tables: the
// max(writer-entry, reader-exit) = Omega(log n) bound and the Omega(log m)
// writers-only bound.
func BenchmarkE3MaxBound(b *testing.B) {
	ns := []int{8, 32, 128}
	ms := []int{1, 4, 16, 64}
	for i := 0; i < b.N; i++ {
		_, nTable, err := experiments.E3MaxBound(ns)
		if err != nil {
			b.Fatal(err)
		}
		_, mTable, err := experiments.E3WriterMutex(ms)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, "E3a: Corollary 6", nTable.String())
			report(b, "E3b: Corollary 7 (log m)", mTable.String())
		}
	}
}

// BenchmarkE4Baselines regenerates the cross-algorithm workload-mix
// comparison.
func BenchmarkE4Baselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, table, err := experiments.E4Baselines(16, 2, []int64{1, 2, 3}, sim.WriteThrough)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, "E4: algorithm comparison (n=16, m=2)", table.String())
		}
	}
}

// BenchmarkE5Protocols regenerates the write-through vs write-back
// comparison.
func BenchmarkE5Protocols(b *testing.B) {
	ns := []int{8, 32, 128}
	for i := 0; i < b.N; i++ {
		_, table, err := experiments.E5Protocols(ns)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, "E5: write-through vs write-back", table.String())
		}
	}
}

// BenchmarkE6Properties regenerates the property matrix.
func BenchmarkE6Properties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, table, err := experiments.E6Properties([]int64{1, 2, 3})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.MutualExclusion || !r.Progress {
				b.Fatalf("%s violated properties", r.Alg)
			}
		}
		if i == 0 {
			report(b, "E6: property matrix", table.String())
		}
	}
}

// BenchmarkE8ModelContrast regenerates the CC vs DSM comparison.
func BenchmarkE8ModelContrast(b *testing.B) {
	ns := []int{8, 32, 128}
	for i := 0; i < b.N; i++ {
		_, table, err := experiments.E8ModelContrast(ns)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, "E8: CC vs DSM", table.String())
		}
	}
}

// benchNativeLock measures native read-passage latency: b.N read passages
// spread across reader goroutines with one background writer.
func benchNativeLock(b *testing.B, alg string, f core.F, nReaders int) {
	b.Helper()
	lock, err := native.NewLock(core.New(f), nReaders, 1)
	if err != nil {
		b.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	// Background writer at ~low duty.
	w := lock.Writer(0)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			w.Lock()
			w.Unlock() //nolint:staticcheck // empty critical section is the point
			for i := 0; i < 2000 && !stop.Load(); i++ {
				_ = i
			}
		}
	}()

	perReader := b.N / nReaders
	b.ResetTimer()
	var rwg sync.WaitGroup
	for rid := 0; rid < nReaders; rid++ {
		h := lock.Reader(rid)
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for i := 0; i < perReader; i++ {
				h.Lock()
				h.Unlock()
			}
		}()
	}
	rwg.Wait()
	b.StopTimer()
	stop.Store(true)
	wg.Wait()
	_ = alg
}

// BenchmarkE7NativeAF1 measures af-1 (cheapest writer, log-n readers).
func BenchmarkE7NativeAF1(b *testing.B) { benchNativeLock(b, "af-1", core.FOne, 4) }

// BenchmarkE7NativeAFLog measures af-log (balanced tradeoff point).
func BenchmarkE7NativeAFLog(b *testing.B) { benchNativeLock(b, "af-log", core.FLog, 4) }

// BenchmarkE7NativeAFN measures af-n (constant-RMR readers).
func BenchmarkE7NativeAFN(b *testing.B) { benchNativeLock(b, "af-n", core.FLinear, 4) }

// BenchmarkE7NativeSyncRWMutex is the stdlib reference point.
func BenchmarkE7NativeSyncRWMutex(b *testing.B) {
	var mu sync.RWMutex
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			mu.Lock()
			mu.Unlock() //nolint:staticcheck // empty critical section is the point
			for i := 0; i < 2000 && !stop.Load(); i++ {
				_ = i
			}
		}
	}()
	const nReaders = 4
	perReader := b.N / nReaders
	b.ResetTimer()
	var rwg sync.WaitGroup
	for rid := 0; rid < nReaders; rid++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for i := 0; i < perReader; i++ {
				mu.RLock()
				mu.RUnlock()
			}
		}()
	}
	rwg.Wait()
	b.StopTimer()
	stop.Store(true)
	wg.Wait()
}

// BenchmarkE9CounterAblation regenerates the f-array vs CAS-word counter
// ablation (the tree is what caps contended reader cost).
func BenchmarkE9CounterAblation(b *testing.B) {
	ns := []int{4, 16, 64}
	for i := 0; i < b.N; i++ {
		_, table, err := experiments.E9CounterAblation(ns)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, "E9: counter ablation", table.String())
		}
	}
}

// BenchmarkE10MutexSubstrates regenerates the WL substrate comparison
// (tournament vs CLH vs ticket inside A_f).
func BenchmarkE10MutexSubstrates(b *testing.B) {
	ms := []int{1, 4, 16, 64}
	for i := 0; i < b.N; i++ {
		_, table, err := experiments.E10MutexSubstrates(ms)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, "E10: WL substrates", table.String())
		}
	}
}

// BenchmarkE11AdversaryValue regenerates the adversary-vs-random
// comparison (how much worst case random sampling misses).
func BenchmarkE11AdversaryValue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, table, err := experiments.E11AdversaryValue([]int{27, 81}, []int64{1, 2, 3, 4})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, "E11: adversary vs random", table.String())
		}
	}
}

// BenchmarkE12ShapeFits regenerates the least-squares shape-fit table
// (Theorem 18's Theta claims as measured slopes).
func BenchmarkE12ShapeFits(b *testing.B) {
	ns := trimShort([]int{8, 32, 128, 512})
	for i := 0; i < b.N; i++ {
		_, table, err := experiments.E12ShapeFits(ns, sim.WriteThrough)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, "E12: shape fits", table.String())
		}
	}
}
