#!/usr/bin/env bash
# Durable restart smoke test (CI job restart-smoke; also runs standalone).
# Phase 1: rwload supervises its own rwlockd on a durable data dir and
# kill -9s it repeatedly mid-load; the run must exit 0 with a clean
# passage ledger (zero duplicated, zero lost write passages) and strictly
# increasing server epochs across every restart.
# Phase 2: explicit kill -9 / restart on one data dir through the real
# binary: the restarted server must come back on the same directory with
# a strictly larger epoch and serve another clean ledger run.
set -euo pipefail

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/rwlockd" ./cmd/rwlockd
go build -o "$work/rwload" ./cmd/rwload

# --- Phase 1: supervised kill -9 chaos ---------------------------------
addr="127.0.0.1:7913"
"$work/rwload" -addr "$addr" -clients 32 -keys 8 -mix write-heavy \
    -dur 12s -ttl 500ms -wait 1s \
    -server-bin "$work/rwlockd" \
    -server-flags "-addr $addr -ttl 500ms -quiet -data-dir $work/data1 -fsync never" \
    -server-crash-rate 0.5 >"$work/load1.out" || {
    echo "FAIL: supervised chaos run failed:" >&2
    cat "$work/load1.out" >&2
    exit 1
}
grep -q "dup=0" "$work/load1.out" && grep -q "lost=0" "$work/load1.out" || {
    echo "FAIL: chaos run ledger not clean:" >&2
    cat "$work/load1.out" >&2
    exit 1
}
grep -q "monotonic=true" "$work/load1.out" || {
    echo "FAIL: server epochs not strictly increasing:" >&2
    cat "$work/load1.out" >&2
    exit 1
}
crashes="$(grep -o 'server: crashes=[0-9]*' "$work/load1.out" | grep -o '[0-9]*')"
if [ -z "$crashes" ] || [ "$crashes" -lt 1 ]; then
    echo "FAIL: supervisor recorded ${crashes:-no} server crashes; the chaos phase tested nothing:" >&2
    cat "$work/load1.out" >&2
    exit 1
fi

# --- Phase 2: explicit kill -9 + restart on one data dir ----------------
addr2="127.0.0.1:7914"
data="$work/data2"

start_server() {
    local log="$1"
    "$work/rwlockd" -addr "$addr2" -ttl 500ms -quiet \
        -data-dir "$data" -fsync never >"$log" 2>&1 &
    server_pid=$!
    for i in $(seq 1 50); do
        if grep -q "serving epoch" "$log" 2>/dev/null; then return 0; fi
        if ! kill -0 "$server_pid" 2>/dev/null; then
            echo "FAIL: rwlockd died on startup:" >&2
            cat "$log" >&2
            exit 1
        fi
        sleep 0.1
    done
    echo "FAIL: rwlockd never reported a serving epoch:" >&2
    cat "$log" >&2
    exit 1
}
scrape_epoch() {
    grep -o 'serving epoch [0-9]*' "$1" | tail -1 | grep -o '[0-9]*'
}

start_server "$work/server1.out"
epoch1="$(scrape_epoch "$work/server1.out")"

"$work/rwload" -addr "$addr2" -clients 16 -keys 8 -mix write-heavy \
    -dur 2s -ttl 500ms >"$work/load2.out" || {
    echo "FAIL: pre-restart rwload run failed:" >&2
    cat "$work/load2.out" >&2
    exit 1
}
grep -q "dup=0" "$work/load2.out" && grep -q "lost=0" "$work/load2.out" || {
    echo "FAIL: pre-restart ledger not clean:" >&2
    cat "$work/load2.out" >&2
    exit 1
}

kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

start_server "$work/server2.out"
epoch2="$(scrape_epoch "$work/server2.out")"
if [ "$epoch2" -le "$epoch1" ]; then
    echo "FAIL: restart epoch $epoch2 did not increase past $epoch1:" >&2
    cat "$work/server2.out" >&2
    exit 1
fi

"$work/rwload" -addr "$addr2" -clients 16 -keys 8 -mix write-heavy \
    -dur 2s -ttl 500ms >"$work/load3.out" || {
    echo "FAIL: post-restart rwload run failed:" >&2
    cat "$work/load3.out" >&2
    exit 1
}
grep -q "dup=0" "$work/load3.out" && grep -q "lost=0" "$work/load3.out" || {
    echo "FAIL: post-restart ledger not clean:" >&2
    cat "$work/load3.out" >&2
    exit 1
}

kill -TERM "$server_pid"
wait "$server_pid" || true
server_pid=""

echo "restart smoke: $crashes supervised kill -9s with clean ledger and monotonic epochs; explicit restart bumped epoch $epoch1 -> $epoch2 with clean ledgers"
