#!/usr/bin/env bash
# Kill-and-resume smoke test for the crash-safe sweep machinery (CI job
# resume-smoke; also runs standalone). It starts the E15 fail-slow sweeps
# with a checkpoint, interrupts them mid-run, resumes from the checkpoint,
# and requires the resumed run's report to be byte-identical to an
# uninterrupted serial run — the end-to-end version of the
# TestCheckpointResumeDeterminism gate, through the real binary, real
# checkpoint file, and real exit-status plumbing.
set -euo pipefail

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

go build -o "$work/rwverify" ./cmd/rwverify

# Interrupted run: -interrupt-after trips the same cooperative-stop path a
# SIGINT would (the signal itself is racy to time from a script; the hook
# stops deterministically mid-sweep). Expect the resumable exit status 3.
status=0
"$work/rwverify" -stall -parallel 2 \
    -checkpoint "$work/ck.json" -interrupt-after 25 \
    >"$work/interrupted.out" 2>"$work/interrupted.err" || status=$?
if [ "$status" -ne 3 ]; then
    echo "FAIL: interrupted run exited $status, want 3" >&2
    cat "$work/interrupted.err" >&2
    exit 1
fi
grep -q "resumable, rerun with -resume" "$work/interrupted.err" || {
    echo "FAIL: interrupted run did not advertise resumability:" >&2
    cat "$work/interrupted.err" >&2
    exit 1
}
[ -s "$work/ck.json" ] || { echo "FAIL: no checkpoint was flushed" >&2; exit 1; }

# Resume, then an independent uninterrupted serial run; their full reports
# must match byte for byte.
"$work/rwverify" -stall -parallel 2 -checkpoint "$work/ck.json" -resume \
    >"$work/resumed.out"
"$work/rwverify" -stall -parallel 1 >"$work/serial.out"
if ! diff -u "$work/serial.out" "$work/resumed.out"; then
    echo "FAIL: resumed run diverged from the uninterrupted serial run" >&2
    exit 1
fi

# A damaged checkpoint must be rejected up front, not silently merged or
# half-restored. (Configuration-mismatch rejection is covered at the unit
# level; the CLI cannot reconfigure the fixed E15 scenario.)
head -c 100 "$work/ck.json" >"$work/truncated.json"
status=0
"$work/rwverify" -stall -checkpoint "$work/truncated.json" -resume \
    >/dev/null 2>"$work/corrupt.err" || status=$?
if [ "$status" -eq 0 ] || ! grep -q "checkpoint" "$work/corrupt.err"; then
    echo "FAIL: corrupt checkpoint was not rejected (exit $status):" >&2
    cat "$work/corrupt.err" >&2
    exit 1
fi

echo "resume smoke: interrupt resumable, resume byte-identical, corrupt checkpoint rejected"
