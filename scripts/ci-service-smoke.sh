#!/usr/bin/env bash
# Lock service smoke test (CI job service-smoke; also runs standalone).
# Phase 1: a clean rwload run against a live rwlockd must exit 0 with a
# clean passage ledger (zero duplicated, zero lost write passages).
# Phase 2: SIGTERM the server while a second rwload run is mid-flight;
# the server must drain gracefully — exit 0, zero leaked holds — and the
# load generator must stop on the drain signal and still exit 0.
set -euo pipefail

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/rwlockd" ./cmd/rwlockd
go build -o "$work/rwload" ./cmd/rwload

addr="127.0.0.1:7911"
"$work/rwlockd" -addr "$addr" -ttl 500ms -quiet \
    >"$work/server.out" 2>"$work/server.err" &
server_pid=$!

# Wait for the listener.
for i in $(seq 1 50); do
    if grep -q "listening on" "$work/server.out" 2>/dev/null; then break; fi
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "FAIL: rwlockd died on startup:" >&2
        cat "$work/server.err" >&2
        exit 1
    fi
    sleep 0.1
done

# Phase 1: a short clean mix. Exit 0 requires dup=0 and lost=0.
"$work/rwload" -addr "$addr" -clients 32 -keys 8 -mix write-heavy \
    -dur 3s -ttl 500ms >"$work/load1.out" || {
    echo "FAIL: clean rwload run failed:" >&2
    cat "$work/load1.out" >&2
    exit 1
}
grep -q "dup=0" "$work/load1.out" && grep -q "lost=0" "$work/load1.out" || {
    echo "FAIL: clean run ledger not clean:" >&2
    cat "$work/load1.out" >&2
    exit 1
}

# Phase 2: SIGTERM mid-run. The load generator would run 30s; the drain
# must cut it short and both processes must exit 0.
"$work/rwload" -addr "$addr" -clients 32 -keys 8 -mix read-heavy \
    -dur 30s -ttl 500ms >"$work/load2.out" &
load_pid=$!
sleep 2
kill -TERM "$server_pid"

server_status=0
wait "$server_pid" || server_status=$?
load_status=0
wait "$load_pid" || load_status=$?
server_pid=""

if [ "$server_status" -ne 0 ]; then
    echo "FAIL: rwlockd drain exited $server_status, want 0:" >&2
    cat "$work/server.out" "$work/server.err" >&2
    exit 1
fi
grep -q "drain complete, 0 leaked holds" "$work/server.out" || {
    echo "FAIL: drain did not report zero leaked holds:" >&2
    cat "$work/server.out" "$work/server.err" >&2
    exit 1
}
if [ "$load_status" -ne 0 ]; then
    echo "FAIL: rwload exited $load_status across the drain, want 0:" >&2
    cat "$work/load2.out" >&2
    exit 1
fi
grep -q "draining=true" "$work/load2.out" || {
    echo "FAIL: rwload never observed the drain:" >&2
    cat "$work/load2.out" >&2
    exit 1
}

echo "service smoke: clean ledger, graceful drain with 0 leaked holds, clean client exit"
