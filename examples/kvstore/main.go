// kvstore: a read-mostly key-value store benchmarked across the A_f
// tradeoff points on real goroutines.
//
// This is the workload the paper's introduction motivates: many readers,
// few writers. The example runs the same store under every A_f
// parameterization plus sync.RWMutex and prints passages/second — on a
// read-mostly mix the reader-cheap end of the tradeoff (f = n) tends to
// win natively, mirroring the simulator's RMR tables.
//
// Run with: go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/native"
)

const (
	nReaders = 6
	nWriters = 1
	runFor   = 150 * time.Millisecond
	nKeys    = 64
)

type store struct {
	data map[int]string
}

func run(f core.F) (float64, error) {
	lock, err := native.NewLock(core.New(f), nReaders, nWriters)
	if err != nil {
		return 0, err
	}
	st := &store{data: make(map[int]string, nKeys)}
	for k := 0; k < nKeys; k++ {
		st.data[k] = "v0"
	}

	var stop atomic.Bool
	var ops atomic.Int64
	var wg sync.WaitGroup

	for rid := 0; rid < nReaders; rid++ {
		rid := rid
		h := lock.Reader(rid)
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for k := rid; !stop.Load(); k++ {
				h.Lock()
				_ = st.data[k%nKeys]
				h.Unlock()
				local++
			}
			ops.Add(local)
		}()
	}
	h := lock.Writer(0)
	wg.Add(1)
	go func() {
		defer wg.Done()
		local := int64(0)
		for k := 0; !stop.Load(); k++ {
			h.Lock()
			st.data[k%nKeys] = fmt.Sprintf("v%d", k)
			h.Unlock()
			local++
			// Keep writes rare: ~1% of traffic.
			for i := 0; i < 100*nReaders && !stop.Load(); i++ {
				_ = i
			}
		}
		ops.Add(local)
	}()

	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()
	return float64(ops.Load()) / runFor.Seconds(), nil
}

func main() {
	fmt.Printf("kvstore: %d readers, %d writer, %v per configuration\n\n", nReaders, nWriters, runFor)
	fmt.Printf("%-10s %-28s %s\n", "lock", "tradeoff point", "passages/sec")
	for _, f := range core.StandardFs {
		rate, err := run(f)
		if err != nil {
			log.Fatal(err)
		}
		point := fmt.Sprintf("writer ~%d, reader ~log %d", f.Groups(nReaders), f.GroupSize(nReaders))
		fmt.Printf("af-%-7s %-28s %12.0f\n", f.Name, point, rate)
	}

	// sync.RWMutex reference.
	rate := runSyncRWMutex()
	fmt.Printf("%-10s %-28s %12.0f\n", "sync", "stdlib sync.RWMutex", rate)
}

func runSyncRWMutex() float64 {
	var mu sync.RWMutex
	st := &store{data: make(map[int]string, nKeys)}
	for k := 0; k < nKeys; k++ {
		st.data[k] = "v0"
	}
	var stop atomic.Bool
	var ops atomic.Int64
	var wg sync.WaitGroup
	for rid := 0; rid < nReaders; rid++ {
		rid := rid
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for k := rid; !stop.Load(); k++ {
				mu.RLock()
				_ = st.data[k%nKeys]
				mu.RUnlock()
				local++
			}
			ops.Add(local)
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		local := int64(0)
		for k := 0; !stop.Load(); k++ {
			mu.Lock()
			st.data[k%nKeys] = "w"
			mu.Unlock()
			local++
			for i := 0; i < 100*nReaders && !stop.Load(); i++ {
				_ = i
			}
		}
		ops.Add(local)
	}()
	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()
	return float64(ops.Load()) / runFor.Seconds()
}
