// simulate: run a reader-writer lock inside the cache-coherent simulator
// and print the exact per-process RMR accounting — the measurement the
// paper's theorems are about and that native execution cannot observe.
//
// The example runs af-log with 4 readers and 1 writer under a seeded
// random schedule and prints, per process, the RMRs attributed to each
// passage section.
//
// Run with: go run ./examples/simulate
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/tablefmt"
	"repro/internal/trace"
	"repro/internal/tracefmt"
)

func main() {
	const (
		nReaders = 4
		nWriters = 1
		passages = 3
		seed     = 7
	)

	alg := core.New(core.FLog)
	var rec trace.Recorder
	r := sim.New(sim.Config{
		Protocol:  sim.WriteThrough,
		Scheduler: sched.NewRandom(seed),
		Observer:  rec.Observe,
	})
	defer r.Close()

	if err := alg.Init(r, nReaders, nWriters); err != nil {
		log.Fatalf("init: %v", err)
	}

	for rid := 0; rid < nReaders; rid++ {
		rid := rid
		r.AddProc(func(p sim.Proc) {
			for i := 0; i < passages; i++ {
				p.Section(memmodel.SecEntry)
				alg.ReaderEnter(p, rid)
				p.Section(memmodel.SecCS)
				p.Section(memmodel.SecExit)
				alg.ReaderExit(p, rid)
				p.Section(memmodel.SecRemainder)
			}
		})
	}
	r.AddProc(func(p sim.Proc) {
		for i := 0; i < passages; i++ {
			p.Section(memmodel.SecEntry)
			alg.WriterEnter(p, 0)
			p.Section(memmodel.SecCS)
			p.Section(memmodel.SecExit)
			alg.WriterExit(p, 0)
			p.Section(memmodel.SecRemainder)
		}
	})

	if err := r.Start(); err != nil {
		log.Fatalf("start: %v", err)
	}
	if err := r.Run(); err != nil {
		log.Fatalf("run: %v", err)
	}

	fmt.Printf("af-log, n=%d m=%d, %d passages each, random schedule (seed %d), %s\n",
		nReaders, nWriters, passages, seed, r.Protocol())
	fmt.Printf("f(n)=%d groups of K=%d readers; %d shared variables; %d total steps\n\n",
		alg.Groups(), alg.GroupSize(), r.NumVars(), r.StepCount())

	table := tablefmt.New("process", "role", "total RMR", "total steps",
		"worst entry RMR", "worst exit RMR", "worst passage RMR")
	for id := 0; id < nReaders+nWriters; id++ {
		role := "reader"
		if id >= nReaders {
			role = "writer"
		}
		acct := r.Account(id)
		mx := acct.MaxPassage()
		table.AddRow(fmt.Sprintf("p%d", id), role,
			tablefmt.Itoa(acct.TotalRMR), tablefmt.Itoa(acct.TotalSteps),
			tablefmt.Itoa(mx.EntryRMR), tablefmt.Itoa(mx.ExitRMR),
			tablefmt.Itoa(mx.EntryRMR+mx.CSRMR+mx.ExitRMR))
	}
	fmt.Println(table)

	fmt.Println("Theorem 18 predicts: writer entry ~Theta(f(n)) =",
		alg.Groups(), "and reader passage ~Theta(log K) =", alg.GroupSize(), "group size.")

	fmt.Println("\nFirst steps of the execution as a timeline (R read, W write,")
	fmt.Println("CAS!/CAS~ success/failure, aw await re-check, * = RMR):")
	events := rec.Events()
	if len(events) > 30 {
		events = events[:30]
	}
	fmt.Println(tracefmt.Render(events, tracefmt.Options{
		NumProcs: nReaders + nWriters,
		VarName:  func(v memmodel.Var) string { return r.VarName(v) },
		ValueFormat: func(v memmodel.Var, val uint64) string {
			name := r.VarName(v)
			switch {
			case strings.HasPrefix(name, "C[") || strings.HasPrefix(name, "W["):
				return fmt.Sprintf("%d", memmodel.VerSumSum(val)) // packed <ver, sum>
			case name == "RSIG" || strings.HasPrefix(name, "WSIG"):
				seq, op := memmodel.UnpackSig(val)
				return fmt.Sprintf("<%d,%d>", seq, op)
			default:
				return fmt.Sprintf("%d", val)
			}
		},
	}))
}
