// configstore: a hot-reloadable configuration store built on the
// writer-priority composition (internal/fairness), the repository's
// implementation of the paper's future-work direction.
//
// The scenario: many request-serving goroutines read configuration on
// every request; an operator occasionally pushes an update and wants it
// visible *promptly* even under relentless read traffic. Plain A_f lets
// the update writer starve behind reader churn (the paper acknowledges
// this in Section 6); the writer-priority gate bounds how long an update
// can be delayed, at the cost of briefly stalling new readers while the
// update is pending.
//
// The example measures update latency under heavy read load with and
// without the wrapper.
//
// Run with: go run ./examples/configstore
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/memmodel"
	"repro/internal/native"
)

const (
	nReaders = 6
	nUpdates = 50
)

type config struct {
	version int
	limits  map[string]int
}

// run measures mean/max update latency and total read throughput for one
// lock choice.
func run(alg memmodel.Algorithm) (mean, maxLat time.Duration, reads int64, err error) {
	lock, err := native.NewLock(alg, nReaders, 1)
	if err != nil {
		return 0, 0, 0, err
	}
	current := &config{version: 0, limits: map[string]int{"rps": 100}}

	var stop atomic.Bool
	var totalReads atomic.Int64
	var wg sync.WaitGroup

	for rid := 0; rid < nReaders; rid++ {
		h := lock.Reader(rid)
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for !stop.Load() {
				h.Lock()
				_ = current.limits["rps"] // serve a request with the config
				h.Unlock()
				local++
			}
			totalReads.Add(local)
		}()
	}

	// The operator pushes updates and measures how long each takes to
	// land (lock acquisition dominates under reader pressure).
	w := lock.Writer(0)
	var total, worst time.Duration
	for i := 1; i <= nUpdates; i++ {
		start := time.Now()
		w.Lock()
		current.version = i
		current.limits["rps"] = 100 + i
		w.Unlock()
		lat := time.Since(start)
		total += lat
		if lat > worst {
			worst = lat
		}
		time.Sleep(200 * time.Microsecond) // updates are occasional
	}
	stop.Store(true)
	wg.Wait()

	if current.version != nUpdates {
		return 0, 0, 0, fmt.Errorf("lost update: version %d", current.version)
	}
	return total / nUpdates, worst, totalReads.Load(), nil
}

func main() {
	fmt.Printf("configstore: %d reader goroutines, %d config updates\n\n", nReaders, nUpdates)
	fmt.Printf("%-22s %12s %12s %14s\n", "lock", "mean update", "max update", "reads served")

	plain := core.New(core.FLog)
	meanP, maxP, readsP, err := run(plain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %12v %12v %14d\n", "af-log (plain)", meanP, maxP, readsP)

	wrapped := fairness.New(core.New(core.FLog))
	meanW, maxW, readsW, err := run(wrapped)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %12v %12v %14d\n", "af-log + writer-prio", meanW, maxW, readsW)

	fmt.Println("\nThe wrapped lock trades a slice of read throughput for bounded")
	fmt.Println("update latency under read pressure (the paper's Section-6 trade).")
}
