// lowerbound: drive the paper's Theorem-5 adversary (Figure 1) against the
// A_f family and watch the lower bound bind.
//
// The adversary builds the execution E1 E2 E3: all n readers enter the CS,
// then exit under a schedule that releases "expanding" steps in controlled
// batches, then the writer enters. The number of batches r is the paper's
// lower-bound witness: r = Omega(log3(n/f(n))), and each batch costs some
// reader one RMR in its exit section (Lemma 1).
//
// Run with: go run ./examples/lowerbound
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/tablefmt"
)

func main() {
	ns := []int{9, 27, 81, 243}

	fmt.Println("Theorem-5 adversary against A_f: r vs the log3(n/f(n)) bound")
	fmt.Println()
	table := tablefmt.New("f", "n", "f(n)", "r", "log3(n/f)",
		"reader exit RMR (max)", "writer entry RMR", "writer aware of")
	for _, f := range []core.F{core.FOne, core.FLog, core.FLinear} {
		for _, n := range ns {
			res, err := lowerbound.Run(core.New(f), n, lowerbound.Config{})
			if err != nil {
				log.Fatalf("af-%s n=%d: %v", f.Name, n, err)
			}
			groups := f.Groups(n)
			table.AddRow("af-"+f.Name, tablefmt.Itoa(n), tablefmt.Itoa(groups),
				tablefmt.Itoa(res.R), tablefmt.F1(lowerbound.Log3Bound(n, groups)),
				tablefmt.Itoa(res.MaxReaderExitRMR),
				tablefmt.Itoa(res.WriterEntryRMR),
				fmt.Sprintf("%d/%d", res.WriterAwareReaders, n))
		}
		table.AddRule()
	}
	fmt.Println(table)

	fmt.Println("Reading the table:")
	fmt.Println("  - af-1 (f=1): r grows with log n — the reader exit pays the bound.")
	fmt.Println("  - af-n (f=n): r = 0 but the writer's entry RMRs grow linearly in n.")
	fmt.Println("  - Lemma 4 holds throughout: the writer ends aware of all n readers.")
}
