// Quickstart: protect a plain map with an A_f reader-writer lock on real
// goroutines.
//
// The paper's locks are identity-based: each participating goroutine owns a
// reader or writer slot fixed at construction time. Pick a parameterization
// f to choose your point on the tradeoff curve — writers pay Theta(f(n))
// remote memory references, readers pay Theta(log(n/f(n))). FLog balances
// both at Theta(log n).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/core"
	"repro/internal/native"
)

func main() {
	const nReaders, nWriters = 3, 1

	lock, err := native.NewLock(core.New(core.FLog), nReaders, nWriters)
	if err != nil {
		log.Fatalf("creating lock: %v", err)
	}

	// The protected state: a plain (non-atomic) map.
	inventory := map[string]int{}

	var wg sync.WaitGroup

	// One writer goroutine restocks items.
	writer := lock.Writer(0)
	wg.Add(1)
	go func() {
		defer wg.Done()
		items := []string{"bolts", "nuts", "washers"}
		for i := 0; i < 300; i++ {
			writer.Lock()
			inventory[items[i%len(items)]]++
			writer.Unlock()
		}
	}()

	// Reader goroutines take consistent snapshots concurrently.
	reads := make([]int, nReaders)
	for rid := 0; rid < nReaders; rid++ {
		rid := rid
		handle := lock.Reader(rid)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				handle.Lock()
				total := 0
				for _, count := range inventory {
					total += count
				}
				handle.Unlock()
				reads[rid] = total
			}
		}()
	}

	wg.Wait()

	writerHandle := lock.Writer(0)
	writerHandle.Lock()
	total := 0
	for item, count := range inventory {
		fmt.Printf("%-8s %d\n", item, count)
		total += count
	}
	writerHandle.Unlock()

	fmt.Printf("total restocks: %d (want 300)\n", total)
	fmt.Printf("last reader snapshots: %v\n", reads)
	if total != 300 {
		log.Fatal("lost updates: the lock failed")
	}
}
