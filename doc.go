// Package repro is a full reproduction of Danny Hendler's "On the
// Complexity of Reader-Writer Locks" (PODC 2016): the A_f reader-writer
// lock family, the remote-memory-reference (RMR) lower-bound machinery and
// its adversarial execution construction, the substrate objects the paper
// builds on (Jayanti-style f-array counters, a tournament mutex), the
// Section-6 baselines, a deterministic cache-coherent simulator that counts
// RMRs exactly as the paper's model prescribes, and a native sync/atomic
// backend for real-hardware runs.
//
// Start with DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record. The public entry points live under internal/:
//
//   - internal/core: the A_f algorithm family (the paper's contribution)
//   - internal/sim: the CC-model simulator (write-through and write-back)
//   - internal/lowerbound: the Theorem-5 adversary
//   - internal/native: real-atomics backend and lock handles
//   - internal/experiments: the E1-E7 reproduction experiments
//
// The benchmarks in bench_test.go regenerate every experiment table:
//
//	go test -bench=. -benchmem
package repro
