package mutex

import (
	"testing"

	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/sim"
)

// checkMutualExclusion runs m processes doing passages that perform a
// non-atomic read-modify-write on a shared cell inside the CS; any mutual
// exclusion violation loses an update, which the final total detects. It
// also serves as a progress check: the run completing at all means no
// deadlock and no starvation within the step budget.
func checkMutualExclusion(t *testing.T, build func(a memmodel.Allocator, m int) Lock, m, passages int, s sched.Scheduler, protocol sim.Protocol) {
	t.Helper()
	r := sim.New(sim.Config{Protocol: protocol, Scheduler: s})
	lock := build(r, m)
	cell := r.Alloc("cell", 0)
	for slot := 0; slot < m; slot++ {
		slot := slot
		r.AddProc(func(p sim.Proc) {
			for i := 0; i < passages; i++ {
				p.Section(memmodel.SecEntry)
				lock.Enter(p, slot)
				p.Section(memmodel.SecCS)
				x := p.Read(cell)
				p.Write(cell, x+1)
				p.Section(memmodel.SecExit)
				lock.Exit(p, slot)
				p.Section(memmodel.SecRemainder)
			}
		})
	}
	if err := r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer r.Close()
	if err := r.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := uint64(m * passages)
	if got := r.Value(cell); got != want {
		t.Errorf("cell = %d, want %d (mutual exclusion violated: lost updates)", got, want)
	}
}

func buildTournament(a memmodel.Allocator, m int) Lock { return NewTournament(a, "WL", m) }
func buildTAS(a memmodel.Allocator, m int) Lock        { return NewTAS(a, "TAS") }

func TestTournamentMutualExclusion(t *testing.T) {
	for _, m := range []int{1, 2, 3, 4, 5, 8} {
		for _, seed := range []int64{1, 2, 3} {
			checkMutualExclusion(t, buildTournament, m, 4, sched.NewRandom(seed), sim.WriteThrough)
		}
	}
}

func TestTournamentMutualExclusionWriteBack(t *testing.T) {
	for _, m := range []int{2, 4, 7} {
		checkMutualExclusion(t, buildTournament, m, 3, sched.NewRandom(42), sim.WriteBack)
	}
}

func TestTournamentRoundRobinAndSticky(t *testing.T) {
	checkMutualExclusion(t, buildTournament, 4, 5, sched.NewRoundRobin(), sim.WriteThrough)
	checkMutualExclusion(t, buildTournament, 4, 5, sched.NewSticky(), sim.WriteThrough)
	checkMutualExclusion(t, buildTournament, 4, 5, sched.HighestFirst{}, sim.WriteThrough)
}

func TestTASMutualExclusion(t *testing.T) {
	for _, m := range []int{1, 2, 4, 6} {
		checkMutualExclusion(t, buildTAS, m, 4, sched.NewRandom(7), sim.WriteThrough)
	}
}

// TestTournamentSoloRMRLogarithmic verifies the O(log m) solo passage cost:
// an uncontended passage performs Theta(levels) steps.
func TestTournamentSoloRMRLogarithmic(t *testing.T) {
	for _, m := range []int{1, 2, 4, 16, 64, 256} {
		r := sim.New(sim.Config{Protocol: sim.WriteThrough})
		lock := NewTournament(r, "WL", m)
		r.AddProc(func(p sim.Proc) {
			p.Section(memmodel.SecEntry)
			lock.Enter(p, 0)
			p.Section(memmodel.SecCS)
			p.Section(memmodel.SecExit)
			lock.Exit(p, 0)
			p.Section(memmodel.SecRemainder)
		})
		if err := r.Start(); err != nil {
			t.Fatalf("Start: %v", err)
		}
		if err := r.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		levels := lock.Levels()
		pass := r.Account(0).Passages[0]
		// Entry: 2 writes + 2 await reads per level; exit: 1 write per
		// level.
		if limit := 4*levels + 1; pass.EntrySteps > limit {
			t.Errorf("m=%d: entry steps %d > %d", m, pass.EntrySteps, limit)
		}
		if pass.ExitSteps != levels {
			t.Errorf("m=%d: exit steps %d, want %d", m, pass.ExitSteps, levels)
		}
		r.Close()
	}
}

// TestTournamentBoundedExit confirms the exit section never waits: exit
// step count is exactly Levels() even under contention.
func TestTournamentBoundedExit(t *testing.T) {
	const m = 8
	r := sim.New(sim.Config{Scheduler: sched.NewRandom(3)})
	lock := NewTournament(r, "WL", m)
	for slot := 0; slot < m; slot++ {
		slot := slot
		r.AddProc(func(p sim.Proc) {
			for i := 0; i < 3; i++ {
				p.Section(memmodel.SecEntry)
				lock.Enter(p, slot)
				p.Section(memmodel.SecCS)
				p.Section(memmodel.SecExit)
				lock.Exit(p, slot)
				p.Section(memmodel.SecRemainder)
			}
		})
	}
	if err := r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer r.Close()
	if err := r.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for slot := 0; slot < m; slot++ {
		for _, pass := range r.Account(slot).Passages {
			if pass.ExitSteps != lock.Levels() {
				t.Errorf("slot %d: exit steps %d, want exactly %d", slot, pass.ExitSteps, lock.Levels())
			}
		}
	}
}

// TestTournamentContendedRMRAmortized checks the CC local-spin claim: with
// heavy contention, per-passage RMRs stay O(log m) on average rather than
// exploding with spin time.
func TestTournamentContendedRMRAmortized(t *testing.T) {
	const m, passages = 8, 5
	r := sim.New(sim.Config{Protocol: sim.WriteThrough, Scheduler: sched.NewRandom(17)})
	lock := NewTournament(r, "WL", m)
	for slot := 0; slot < m; slot++ {
		slot := slot
		r.AddProc(func(p sim.Proc) {
			for i := 0; i < passages; i++ {
				p.Section(memmodel.SecEntry)
				lock.Enter(p, slot)
				p.Section(memmodel.SecCS)
				p.Section(memmodel.SecExit)
				lock.Exit(p, slot)
				p.Section(memmodel.SecRemainder)
			}
		})
	}
	if err := r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer r.Close()
	if err := r.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	totalRMR := 0
	for slot := 0; slot < m; slot++ {
		totalRMR += r.Account(slot).TotalRMR
	}
	perPassage := float64(totalRMR) / float64(m*passages)
	// Peterson tree: a passage loses at each of log2(m)=3 levels to a
	// bounded number of rival turnovers. Allow a generous constant.
	if limit := 20.0 * float64(lock.Levels()+1); perPassage > limit {
		t.Errorf("amortized RMR per passage = %.1f, want <= %.1f", perPassage, limit)
	}
}

func TestTournamentM1Trivial(t *testing.T) {
	r := sim.New(sim.Config{})
	lock := NewTournament(r, "WL", 1)
	r.AddProc(func(p sim.Proc) {
		lock.Enter(p, 0)
		lock.Exit(p, 0)
	})
	if err := r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer r.Close()
	if err := r.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := r.Account(0).TotalSteps; got != 0 {
		t.Errorf("m=1 passage took %d steps, want 0", got)
	}
}

func TestNewTournamentPanicsOnBadM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTournament(m=0) did not panic")
		}
	}()
	r := sim.New(sim.Config{})
	NewTournament(r, "WL", 0)
}

func TestSlotRangeChecked(t *testing.T) {
	r := sim.New(sim.Config{})
	lock := NewTournament(r, "WL", 2)
	for _, slot := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Enter(slot=%d) did not panic", slot)
				}
			}()
			lock.Enter(nil, slot)
		}()
	}
}
