// Package mutex provides the m-process mutual exclusion locks the paper's
// A_f algorithm builds on. Writers serialize on WL, which the paper
// requires to be a starvation-free read/write mutex with Bounded Exit and
// O(log m) RMR complexity per passage in the CC model (the paper cites
// Yang-Anderson-style algorithms [21]).
//
// Tournament implements that requirement as the standard binary arbitration
// tree of 2-process Peterson locks: each process climbs its leaf-to-root
// path, winning a Peterson instance at every level. Spinning is local in
// the CC model: while a process waits at a node, only its current rival
// writes the node's variables, and Peterson's turn-taking bounds the number
// of such writes (and hence invalidation-triggered re-reads) per rival
// passage, so each level contributes O(1) RMRs and a passage costs
// O(log m).
//
// TAS is a simple test-and-set lock (CAS + local-spin backoff) used as a
// contrast baseline and in tests; it is deadlock-free but not
// starvation-free.
package mutex

import (
	"fmt"

	"repro/internal/memmodel"
)

// Lock is an m-process mutual exclusion lock; each process owns a distinct
// slot in [0, m).
type Lock interface {
	// Enter executes the entry section for slot; on return the caller
	// holds the lock.
	Enter(p memmodel.Proc, slot int)
	// Exit executes the exit section for slot, releasing the lock. It
	// completes in a bounded number of steps (Bounded Exit).
	Exit(p memmodel.Proc, slot int)
}

// TryEnterer is the optional extension for locks with a bounded abortable
// entry. It backs the abortable writer entry of A_f (memmodel.TryAlgorithm).
type TryEnterer interface {
	// TryEnter makes one bounded attempt to acquire the lock for slot:
	// true means the caller holds it (release with Exit); false means the
	// attempt was rolled back without ever waiting on another process.
	TryEnter(p memmodel.Proc, slot int) bool
}

// Tournament is the Peterson arbitration tree. See the package comment.
type Tournament struct {
	m      int
	levels int
	// Heap-numbered internal nodes 1..2^levels-1 (node 1 is the root).
	// Index 0 is unused padding so parent(i) == i/2.
	flag0 []memmodel.Var // side-0 competing flags
	flag1 []memmodel.Var // side-1 competing flags
	turn  []memmodel.Var
}

var _ Lock = (*Tournament)(nil)

// NewTournament allocates a tournament lock for m slots. m must be
// positive; m == 1 yields a trivial lock with empty entry and exit
// sections.
func NewTournament(a memmodel.Allocator, name string, m int) *Tournament {
	if m <= 0 {
		panic(fmt.Sprintf("mutex: m must be positive, got %d", m))
	}
	levels := 0
	for 1<<levels < m {
		levels++
	}
	nNodes := 1 << levels // internal nodes + 1 for the unused index 0
	return &Tournament{
		m:      m,
		levels: levels,
		flag0:  a.AllocN(name+".f0", nNodes, 0),
		flag1:  a.AllocN(name+".f1", nNodes, 0),
		turn:   a.AllocN(name+".turn", nNodes, 0),
	}
}

// Slots returns the number of slots the lock was allocated for.
func (t *Tournament) Slots() int { return t.m }

// Levels returns the height of the arbitration tree.
func (t *Tournament) Levels() int { return t.levels }

// Enter implements Lock: climb the leaf-to-root path, winning the Peterson
// instance at each node.
func (t *Tournament) Enter(p memmodel.Proc, slot int) {
	t.checkSlot(slot)
	for node := (1 << t.levels) + slot; node > 1; node /= 2 {
		parent := node / 2
		side := node & 1
		t.petersonEnter(p, parent, side)
	}
}

// Exit implements Lock: release the path nodes top-down (root first), the
// reverse of acquisition order. The exit section performs exactly
// Levels() writes and no waiting, satisfying Bounded Exit.
func (t *Tournament) Exit(p memmodel.Proc, slot int) {
	t.checkSlot(slot)
	// Recompute the leaf-to-root path, then release in reverse.
	var path [64]int // node/side pairs packed as node<<1|side
	n := 0
	for node := (1 << t.levels) + slot; node > 1; node /= 2 {
		path[n] = node
		n++
	}
	for i := n - 1; i >= 0; i-- {
		node := path[i]
		t.petersonExit(p, node/2, node&1)
	}
}

// TryEnter implements TryEnterer: climb the path winning each Peterson
// instance only if it can be won without waiting. On the first contended
// node the climb withdraws (abortable Peterson: clearing the competing
// flag before ever being seen as the winner releases any rival spinning on
// it) and the already-won nodes are released in Exit order. The attempt
// costs O(1) steps per level — O(log m) total — and never blocks.
func (t *Tournament) TryEnter(p memmodel.Proc, slot int) bool {
	t.checkSlot(slot)
	var won [64]int
	n := 0
	for node := (1 << t.levels) + slot; node > 1; node /= 2 {
		if !t.petersonTryEnter(p, node/2, node&1) {
			for i := n - 1; i >= 0; i-- {
				t.petersonExit(p, won[i]/2, won[i]&1)
			}
			return false
		}
		won[n] = node
		n++
	}
	return true
}

func (t *Tournament) petersonEnter(p memmodel.Proc, node, side int) {
	my, rival := t.flag0[node], t.flag1[node]
	if side == 1 {
		my, rival = rival, my
	}
	p.Write(my, 1)
	p.Write(t.turn[node], uint64(side))
	p.AwaitMulti([]memmodel.Var{rival, t.turn[node]}, func(vs []uint64) bool {
		return vs[0] == 0 || vs[1] != uint64(side)
	})
}

// petersonTryEnter plays one Peterson instance without waiting: after the
// usual flag and turn writes, a single check of the rival's state decides.
// Losing withdraws by clearing the competing flag — the rival's spin
// predicate (rival flag == 0) is satisfied by that write, so the
// withdrawal cannot strand anyone.
func (t *Tournament) petersonTryEnter(p memmodel.Proc, node, side int) bool {
	my, rival := t.flag0[node], t.flag1[node]
	if side == 1 {
		my, rival = rival, my
	}
	p.Write(my, 1)
	p.Write(t.turn[node], uint64(side))
	if p.Read(rival) == 0 || p.Read(t.turn[node]) != uint64(side) {
		return true
	}
	p.Write(my, 0)
	return false
}

func (t *Tournament) petersonExit(p memmodel.Proc, node, side int) {
	my := t.flag0[node]
	if side == 1 {
		my = t.flag1[node]
	}
	p.Write(my, 0)
}

func (t *Tournament) checkSlot(slot int) {
	if slot < 0 || slot >= t.m {
		panic(fmt.Sprintf("mutex: slot %d out of range [0,%d)", slot, t.m))
	}
}

// TAS is a test-and-set spin lock built from CAS with local-spin waiting.
type TAS struct {
	l memmodel.Var
}

var _ Lock = (*TAS)(nil)

// NewTAS allocates a test-and-set lock.
func NewTAS(a memmodel.Allocator, name string) *TAS {
	return &TAS{l: a.Alloc(name, 0)}
}

// Enter implements Lock; the slot is ignored.
func (t *TAS) Enter(p memmodel.Proc, _ int) {
	for {
		if _, ok := p.CAS(t.l, 0, 1); ok {
			return
		}
		p.Await(t.l, func(x uint64) bool { return x == 0 })
	}
}

// TryEnter implements TryEnterer: a single CAS attempt.
func (t *TAS) TryEnter(p memmodel.Proc, _ int) bool {
	_, ok := p.CAS(t.l, 0, 1)
	return ok
}

// Exit implements Lock.
func (t *TAS) Exit(p memmodel.Proc, _ int) {
	p.Write(t.l, 0)
}

var (
	_ TryEnterer = (*Tournament)(nil)
	_ TryEnterer = (*TAS)(nil)
)
