package mutex

import (
	"fmt"

	"repro/internal/memmodel"
)

// RTournament progress-word encoding. The word is single-writer (only its
// slot's owner writes it), so plain reads and writes suffice.
const (
	rtIdle uint64 = 0 // no passage in progress
	rtHeld uint64 = 1 // lock held: the owner won every instance on its path
	// Other values encode inst<<2|stage, where inst is the heap number of a
	// Peterson instance on the owner's path and stage is one of:
	rtStageWin  = 1 // competing at inst; instances deeper on the path are won
	rtStageExit = 2 // releasing inst; shallower instances already released
)

func rtEnc(inst, stage int) uint64 { return uint64(inst<<2 | stage) }

// RTournament is a recoverable variant of Tournament for the crash-recovery
// failure model: each slot keeps a progress word recording how far along
// its passage is, and Recover uses it to repair the tree after a crash.
//
// The progress word is written before the action it announces (win a node,
// clear a node), so after a crash it is a conservative frontier: everything
// deeper than the recorded instance is in the announced state, the recorded
// instance itself may be half-done. Recovery never re-evaluates a Peterson
// predicate — a crash can land between the flag and turn writes, after
// which re-checking could admit two winners. It only ever *withdraws*
// (clears the owner's flags from the frontier down, the abortable-Peterson
// withdrawal, which cannot strand a rival because the rival's spin
// predicate is satisfied by the cleared flag) or *completes an exit* (the
// same flag-clearing walk). Both are bounded, idempotent, and re-runnable,
// so a crash inside Recover itself just resumes from the re-written
// frontier.
//
// Releases walk top-down (root first): a same-subtree rival is blocked
// below the frontier by the owner's still-set deeper flags until the walk
// reaches them, so the owner's flag at a shared (instance, side) position
// is always its own when cleared.
type RTournament struct {
	t *Tournament
	// prog[slot] is slot's progress word.
	prog []memmodel.Var
}

var _ Lock = (*RTournament)(nil)

// NewRTournament allocates a recoverable tournament lock for m slots.
func NewRTournament(a memmodel.Allocator, name string, m int) *RTournament {
	return &RTournament{
		t:    NewTournament(a, name, m),
		prog: a.AllocN(name+".prog", m, rtIdle),
	}
}

// Slots returns the number of slots the lock was allocated for.
func (r *RTournament) Slots() int { return r.t.m }

// Levels returns the height of the arbitration tree.
func (r *RTournament) Levels() int { return r.t.levels }

// path fills buf with the heap node numbers on slot's leaf-to-root path,
// deepest first, and returns the count.
func (r *RTournament) path(slot int, buf *[64]int) int {
	n := 0
	for node := (1 << r.t.levels) + slot; node > 1; node /= 2 {
		buf[n] = node
		n++
	}
	return n
}

// Enter implements Lock: Tournament.Enter with a progress-word write ahead
// of each instance. One extra write per level keeps the O(log m) bound.
func (r *RTournament) Enter(p memmodel.Proc, slot int) {
	r.t.checkSlot(slot)
	for node := (1 << r.t.levels) + slot; node > 1; node /= 2 {
		inst, side := node/2, node&1
		p.Write(r.prog[slot], rtEnc(inst, rtStageWin))
		r.t.petersonEnter(p, inst, side)
	}
	p.Write(r.prog[slot], rtHeld)
}

// Exit implements Lock: release the path top-down, marking each instance
// before clearing it.
func (r *RTournament) Exit(p memmodel.Proc, slot int) {
	r.t.checkSlot(slot)
	var buf [64]int
	n := r.path(slot, &buf)
	r.releaseFrom(p, slot, buf[:n], n-1)
}

// releaseFrom clears the owner's flags at path positions pos..0 (shallowest
// first), re-writing the exit marker before each clear so a crash inside
// the walk resumes exactly where it stopped, then marks the slot idle.
func (r *RTournament) releaseFrom(p memmodel.Proc, slot int, path []int, pos int) {
	for i := pos; i >= 0; i-- {
		inst, side := path[i]/2, path[i]&1
		p.Write(r.prog[slot], rtEnc(inst, rtStageExit))
		r.t.petersonExit(p, inst, side)
	}
	p.Write(r.prog[slot], rtIdle)
}

// Recover repairs the tree on behalf of slot's restarted incarnation and
// reports whether the slot holds the lock. It must be called before the new
// incarnation uses the lock again. The outcomes:
//
//   - idle: the dead incarnation held nothing — nothing to repair.
//   - held: the dead incarnation owned the lock; the caller is its
//     successor in the critical section and must eventually Exit.
//   - competing (crash inside Enter): withdraw — clear the frontier
//     instance's flag and release every instance won below it. The passage
//     never happened; the caller may re-Enter from scratch. A crash after
//     winning the final instance but before the held mark also withdraws:
//     equivalent to acquiring and immediately releasing.
//   - releasing (crash inside Exit): complete the exit from the frontier
//     down. The lock is no longer held.
//
// Recovery is bounded (O(log m) steps, no waiting) and idempotent: if the
// recovering incarnation crashes too, the next one's Recover resumes from
// the frontier the walk last wrote.
func (r *RTournament) Recover(p memmodel.Proc, slot int) bool {
	r.t.checkSlot(slot)
	w := p.Read(r.prog[slot])
	switch w {
	case rtIdle:
		return false
	case rtHeld:
		return true
	}
	inst, stage := int(w>>2), int(w&3)
	var buf [64]int
	n := r.path(slot, &buf)
	pos := -1
	for i := 0; i < n; i++ {
		if buf[i]/2 == inst {
			pos = i
			break
		}
	}
	if pos < 0 || (stage != rtStageWin && stage != rtStageExit) {
		panic(fmt.Sprintf("mutex: slot %d has corrupt progress word %d", slot, w))
	}
	r.releaseFrom(p, slot, buf[:n], pos)
	return false
}
