package mutex

import (
	"fmt"

	"repro/internal/memmodel"
)

// CLH is the Craig / Landin-Hagersten queue lock: waiters form an implicit
// queue through a tail pointer and each spins locally on its predecessor's
// node. With a hardware swap it is O(1) RMR per passage in the CC model;
// our model has no swap, so the enqueue emulates it with a CAS retry loop
// (retries are bounded by concurrent arrivals). It is FIFO, hence
// starvation-free, and its exit section is a single write: Bounded Exit.
//
// Node recycling follows the classic scheme: a releasing process adopts
// its predecessor's node for its next passage, so m+1 node variables
// suffice for m processes. Each process tracks the index of "its" node in
// local state.
type CLH struct {
	m int
	// nodes[i] == 1 while the owner of node i holds or waits for the
	// lock; 0 once released. m+1 nodes.
	nodes []memmodel.Var
	// tail holds the index+1 of the most recent waiter's node (0 = free,
	// with nodes[initTail] initialized released).
	tail memmodel.Var
	// mine[slot] / pred[slot] are per-process local node indices.
	mine []int
	pred []int
}

var _ Lock = (*CLH)(nil)

// NewCLH allocates a CLH lock for m slots.
func NewCLH(a memmodel.Allocator, name string, m int) *CLH {
	if m <= 0 {
		panic(fmt.Sprintf("mutex: m must be positive, got %d", m))
	}
	c := &CLH{
		m:     m,
		nodes: a.AllocN(name+".node", m+1, 0),
		// tail initially points at node m, which is released (0).
		tail: a.Alloc(name+".tail", uint64(m)),
		mine: make([]int, m),
		pred: make([]int, m),
	}
	for slot := range c.mine {
		c.mine[slot] = slot // node m is the initial dummy
	}
	return c
}

// Enter implements Lock.
func (c *CLH) Enter(p memmodel.Proc, slot int) {
	c.checkSlot(slot)
	my := c.mine[slot]
	p.Write(c.nodes[my], 1)
	// Swap tail -> my, fetching the predecessor (CAS-emulated).
	var predIdx uint64
	for {
		cur := p.Read(c.tail)
		if _, ok := p.CAS(c.tail, cur, uint64(my)); ok {
			predIdx = cur
			break
		}
	}
	//rwlint:ignore memdiscipline pred[slot] is slot's private node-recycling bookkeeping (classic CLH local state); only slot's owner touches it
	c.pred[slot] = int(predIdx)
	p.Await(c.nodes[predIdx], func(x uint64) bool { return x == 0 })
}

// Exit implements Lock: one write, then adopt the predecessor's node.
func (c *CLH) Exit(p memmodel.Proc, slot int) {
	c.checkSlot(slot)
	p.Write(c.nodes[c.mine[slot]], 0)
	//rwlint:ignore memdiscipline mine[slot] is slot's private node-recycling bookkeeping; only slot's owner touches it
	c.mine[slot] = c.pred[slot]
}

func (c *CLH) checkSlot(slot int) {
	if slot < 0 || slot >= c.m {
		panic(fmt.Sprintf("mutex: slot %d out of range [0,%d)", slot, c.m))
	}
}

// Ticket is the fetch-and-add ticket lock: FIFO and O(1) steps per
// passage, but every waiter spins on the single serving word, so each
// release invalidates all waiters — Theta(#waiters) coherence traffic per
// passage in the CC model. It exists as a contrast point for the WL
// substrate comparison; note it needs FAA, stepping outside the paper's
// read/write/CAS operation set.
type Ticket struct {
	next    memmodel.Var
	serving memmodel.Var
}

var _ Lock = (*Ticket)(nil)

// NewTicket allocates a ticket lock.
func NewTicket(a memmodel.Allocator, name string) *Ticket {
	return &Ticket{
		next:    a.Alloc(name+".next", 0),
		serving: a.Alloc(name+".serving", 0),
	}
}

// Enter implements Lock; the slot is ignored.
func (t *Ticket) Enter(p memmodel.Proc, _ int) {
	ticket := p.FetchAdd(t.next, 1)
	p.Await(t.serving, func(x uint64) bool { return x == ticket })
}

// Exit implements Lock.
func (t *Ticket) Exit(p memmodel.Proc, _ int) {
	// Only the holder writes serving, so a plain read-increment-write is
	// atomic enough.
	cur := p.Read(t.serving)
	p.Write(t.serving, cur+1)
}
