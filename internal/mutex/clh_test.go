package mutex

import (
	"testing"

	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

func buildCLH(a memmodel.Allocator, m int) Lock    { return NewCLH(a, "L", m) }
func buildTicket(a memmodel.Allocator, m int) Lock { return NewTicket(a, "L") }

func TestCLHMutualExclusion(t *testing.T) {
	for _, m := range []int{1, 2, 3, 4, 6} {
		for _, seed := range []int64{1, 2, 3} {
			checkMutualExclusion(t, buildCLH, m, 4, sched.NewRandom(seed), sim.WriteThrough)
		}
	}
	checkMutualExclusion(t, buildCLH, 4, 4, sched.NewRoundRobin(), sim.WriteBack)
	checkMutualExclusion(t, buildCLH, 4, 4, sched.HighestFirst{}, sim.WriteThrough)
}

func TestTicketMutualExclusion(t *testing.T) {
	for _, m := range []int{1, 2, 4, 6} {
		for _, seed := range []int64{4, 5} {
			checkMutualExclusion(t, buildTicket, m, 4, sched.NewRandom(seed), sim.WriteThrough)
		}
	}
	checkMutualExclusion(t, buildTicket, 4, 4, sched.NewSticky(), sim.WriteBack)
}

// TestCLHSoloConstant: an uncontended CLH passage is O(1) steps.
func TestCLHSoloConstant(t *testing.T) {
	for _, m := range []int{1, 8, 64} {
		r := sim.New(sim.Config{Protocol: sim.WriteThrough})
		lock := NewCLH(r, "L", m)
		r.AddProc(func(p sim.Proc) {
			for i := 0; i < 3; i++ {
				lock.Enter(p, 0)
				lock.Exit(p, 0)
			}
		})
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
		// Per passage: node write + tail read + CAS + await check + exit
		// write = 5 steps, independent of m.
		if got := r.Account(0).TotalSteps; got != 15 {
			t.Errorf("m=%d: 3 solo passages took %d steps, want 15", m, got)
		}
		r.Close()
	}
}

// TestCLHFIFO: under a scheduler that admits both processes' enqueues
// before any release, the lock is granted in arrival order.
func TestCLHFIFO(t *testing.T) {
	r := sim.New(sim.Config{Scheduler: sched.NewRoundRobin()})
	lock := NewCLH(r, "L", 3)
	order := r.Alloc("order", 0)
	grab := func(slot int) sim.Program {
		return func(p sim.Proc) {
			lock.Enter(p, slot)
			// Record acquisition order: order = order*8 + (slot+1).
			cur := p.Read(order)
			p.Write(order, cur*8+uint64(slot+1))
			lock.Exit(p, slot)
		}
	}
	r.AddProc(grab(0))
	r.AddProc(grab(1))
	r.AddProc(grab(2))
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	got := r.Value(order)
	// Round-robin admits p0, p1, p2 in order; FIFO must grant 1, 2, 3.
	if got != (1*8+2)*8+3 {
		t.Errorf("acquisition order code = %o (octal), want 123", got)
	}
}

// TestCLHNodeRecycling: many passages per process must not corrupt the
// node rotation.
func TestCLHNodeRecycling(t *testing.T) {
	checkMutualExclusion(t, buildCLH, 3, 12, sched.NewRandom(9), sim.WriteThrough)
}

// TestTicketFIFO: tickets are served in issue order.
func TestTicketFIFO(t *testing.T) {
	r := sim.New(sim.Config{Scheduler: sched.NewRoundRobin()})
	lock := NewTicket(r, "L")
	order := r.Alloc("order", 0)
	grab := func(slot int) sim.Program {
		return func(p sim.Proc) {
			lock.Enter(p, slot)
			cur := p.Read(order)
			p.Write(order, cur*8+uint64(slot+1))
			lock.Exit(p, slot)
		}
	}
	for s := 0; s < 3; s++ {
		r.AddProc(grab(s))
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.Value(order); got != (1*8+2)*8+3 {
		t.Errorf("acquisition order code = %o (octal), want 123", got)
	}
}

// TestTicketInvalidationStorm pins the known weakness of spinning on one
// word: with w waiters, every release of the ticket lock invalidates and
// wakes all of them (w await re-check RMRs), so waiting-phase RMRs grow
// quadratically in the waiter count, while CLH waiters spin on distinct
// predecessor nodes and wake exactly once each. (Total RMRs are a wash
// here because our CLH emulates swap with a CAS retry loop, which has its
// own arrival-time storm — an honest cost of the model's CAS-only swap.)
func TestTicketInvalidationStorm(t *testing.T) {
	awaitRMRs := func(build func(a memmodel.Allocator, m int) Lock, m int) int {
		count := 0
		r := sim.New(sim.Config{
			Protocol:  sim.WriteThrough,
			Scheduler: sched.NewRoundRobin(),
			Observer: func(e trace.Event) {
				if !e.SectionChange && e.Kind == memmodel.OpAwait && e.RMR {
					count++
				}
			},
		})
		lock := build(r, m)
		for slot := 0; slot < m; slot++ {
			slot := slot
			r.AddProc(func(p sim.Proc) {
				lock.Enter(p, slot)
				lock.Exit(p, slot)
			})
		}
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
		return count
	}
	const m = 12
	ticket := awaitRMRs(buildTicket, m)
	clh := awaitRMRs(buildCLH, m)
	if ticket < 3*clh {
		t.Errorf("ticket waiting RMRs (%d) should dwarf CLH's (%d) under %d-way contention", ticket, clh, m)
	}
	// CLH waiters wake at most a couple of times each.
	if clh > 3*m {
		t.Errorf("CLH waiting RMRs (%d) not linear in m=%d", clh, m)
	}
}

func TestCLHSlotChecks(t *testing.T) {
	r := sim.New(sim.Config{})
	lock := NewCLH(r, "L", 2)
	for _, slot := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Enter(slot=%d) did not panic", slot)
				}
			}()
			lock.Enter(nil, slot)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("NewCLH(0) did not panic")
		}
	}()
	NewCLH(r, "L2", 0)
}
