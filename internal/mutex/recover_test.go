package mutex

import (
	"testing"

	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/sim"
)

func buildRTournament(a memmodel.Allocator, m int) Lock { return NewRTournament(a, "RWL", m) }

// TestRTournamentMutualExclusion: without crashes the recoverable tree is
// just a (slightly costlier) tournament lock.
func TestRTournamentMutualExclusion(t *testing.T) {
	for _, m := range []int{1, 2, 3, 4, 5, 8} {
		for _, seed := range []int64{1, 2, 3} {
			checkMutualExclusion(t, buildRTournament, m, 4, sched.NewRandom(seed), sim.WriteThrough)
		}
	}
}

// rtCrashConfig is one crash-recovery execution of the RTournament sweep.
type rtCrashConfig struct {
	m, passages int
	seed        int64
	crashStep   int // crash the victim after this many global steps
	// secondCrashAfter, if >= 0, crashes the restarted victim again after
	// this many further global steps (testing re-crashed recovery).
	secondCrashAfter int
}

// rtCrashRun executes one config: m processes do occupancy-checked passages
// over an RTournament; process 0 is crashed at crashStep and restarted with
// a recovery program (Recover, then finish the interrupted passage if held,
// then the remaining passages). It reports ME violations, whether every
// process completed all its passages, and the section the (first) crash
// landed in. applied is false if the victim finished before crashStep.
func rtCrashRun(t *testing.T, cfg rtCrashConfig) (violations int, complete, applied bool, crashSec memmodel.Section) {
	t.Helper()
	r := sim.New(sim.Config{Scheduler: sched.NewRandom(cfg.seed)})
	lock := NewRTournament(r, "RWL", cfg.m)
	inCS := r.Alloc("inCS", 0)
	counts := make([]int, cfg.m)
	passage := func(p sim.Proc, slot int) {
		p.Section(memmodel.SecEntry)
		lock.Enter(p, slot)
		p.Section(memmodel.SecCS)
		if p.Read(inCS) != 0 {
			violations++
		}
		p.Write(inCS, 1)
		p.Write(inCS, 0)
		p.Section(memmodel.SecExit)
		lock.Exit(p, slot)
		p.Section(memmodel.SecRemainder)
		counts[slot]++
	}
	for slot := 0; slot < cfg.m; slot++ {
		slot := slot
		r.AddProc(func(p sim.Proc) {
			for counts[slot] < cfg.passages {
				passage(p, slot)
			}
		})
	}
	recoverProg := func(p sim.Proc) {
		p.Section(memmodel.SecRecover)
		if lock.Recover(p, 0) {
			// The dead incarnation held the lock: finish its passage.
			p.Section(memmodel.SecCS)
			p.Write(inCS, 0)
			p.Section(memmodel.SecExit)
			lock.Exit(p, 0)
			p.Section(memmodel.SecRemainder)
			counts[0]++
		} else {
			p.Section(memmodel.SecRemainder)
		}
		for counts[0] < cfg.passages {
			passage(p, 0)
		}
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	crashAndRestart := func(after int) bool {
		for i := 0; i < after; i++ {
			progressed, err := r.Step()
			if err != nil {
				t.Fatalf("Step: %v", err)
			}
			if !progressed {
				break
			}
		}
		if !r.Alive(0) {
			return false
		}
		crashSec = r.Account(0).Section()
		if err := r.Crash(0); err != nil {
			t.Fatalf("Crash: %v", err)
		}
		if err := r.Restart(0, recoverProg); err != nil {
			t.Fatalf("Restart: %v", err)
		}
		return true
	}
	if !crashAndRestart(cfg.crashStep) {
		return violations, false, false, crashSec
	}
	if cfg.secondCrashAfter >= 0 {
		crashAndRestart(cfg.secondCrashAfter)
	}
	if err := r.Run(); err != nil {
		t.Fatalf("Run (crashStep=%d, second=%d): %v", cfg.crashStep, cfg.secondCrashAfter, err)
	}
	complete = true
	for slot := 0; slot < cfg.m; slot++ {
		if counts[slot] != cfg.passages {
			complete = false
		}
	}
	return violations, complete, true, crashSec
}

// TestRTournamentCrashRecoverySweep crashes one process at every global
// step of the execution: mutual exclusion must hold across incarnations
// and every process — survivor or restarted — must complete all passages.
func TestRTournamentCrashRecoverySweep(t *testing.T) {
	const m, passages = 3, 2
	const seed = int64(11)
	// Reference run for the step count.
	ref := rtCrashConfig{m: m, passages: passages, seed: seed, crashStep: 1 << 30, secondCrashAfter: -1}
	_, _, applied, _ := rtCrashRun(t, ref)
	if applied {
		t.Fatal("reference run should finish without the crash applying")
	}
	refSteps := referenceSteps(t, m, passages, seed)
	applies := 0
	for k := 0; k <= refSteps; k++ {
		violations, complete, applied, _ := rtCrashRun(t, rtCrashConfig{
			m: m, passages: passages, seed: seed, crashStep: k, secondCrashAfter: -1,
		})
		if !applied {
			continue
		}
		applies++
		if violations != 0 {
			t.Errorf("crashStep=%d: %d mutual exclusion violations", k, violations)
		}
		if !complete {
			t.Errorf("crashStep=%d: not all passages completed", k)
		}
	}
	if applies == 0 {
		t.Fatal("sweep never applied a crash")
	}
}

// TestRTournamentRecoveryRecrash crashes the victim a second time shortly
// after its restart, so some configurations kill the recovery section
// itself; the second incarnation's Recover must resume the repair.
func TestRTournamentRecoveryRecrash(t *testing.T) {
	const m, passages = 3, 2
	const seed = int64(11)
	refSteps := referenceSteps(t, m, passages, seed)
	inRecover := 0
	for k := 0; k <= refSteps; k += 3 {
		for j := 0; j <= 4; j++ {
			violations, complete, applied, _ := rtCrashRun(t, rtCrashConfig{
				m: m, passages: passages, seed: seed, crashStep: k, secondCrashAfter: j,
			})
			if !applied {
				continue
			}
			if violations != 0 {
				t.Errorf("crashStep=%d second=%d: %d ME violations", k, j, violations)
			}
			if !complete {
				t.Errorf("crashStep=%d second=%d: incomplete passages", k, j)
			}
		}
	}
	// Separately verify at least one double-crash config kills the victim
	// inside its recovery section (the sweep above records only the first
	// crash's section, so probe directly).
	for k := 0; k <= refSteps && inRecover == 0; k++ {
		r := sim.New(sim.Config{Scheduler: sched.NewRandom(seed)})
		lock := NewRTournament(r, "RWL", m)
		inCS := r.Alloc("inCS", 0)
		counts := make([]int, m)
		for slot := 0; slot < m; slot++ {
			slot := slot
			r.AddProc(func(p sim.Proc) {
				for counts[slot] < passages {
					p.Section(memmodel.SecEntry)
					lock.Enter(p, slot)
					p.Section(memmodel.SecCS)
					p.Read(inCS)
					p.Section(memmodel.SecExit)
					lock.Exit(p, slot)
					p.Section(memmodel.SecRemainder)
					counts[slot]++
				}
			})
		}
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			if progressed, err := r.Step(); err != nil || !progressed {
				break
			}
		}
		if r.Alive(0) {
			_ = r.Crash(0)
			_ = r.Restart(0, func(p sim.Proc) {
				p.Section(memmodel.SecRecover)
				lock.Recover(p, 0)
				p.Section(memmodel.SecRemainder)
			})
			// Step once: the restarted process's first recovery step.
			_, _ = r.Step()
			if r.Alive(0) && r.Account(0).Section() == memmodel.SecRecover {
				inRecover++
			}
		}
		r.Close()
	}
	if inRecover == 0 {
		t.Error("no configuration crashed the victim inside its recovery section")
	}
}

// referenceSteps runs the crash-free execution and returns its step count.
func referenceSteps(t *testing.T, m, passages int, seed int64) int {
	t.Helper()
	r := sim.New(sim.Config{Scheduler: sched.NewRandom(seed)})
	lock := NewRTournament(r, "RWL", m)
	inCS := r.Alloc("inCS", 0)
	for slot := 0; slot < m; slot++ {
		slot := slot
		r.AddProc(func(p sim.Proc) {
			for i := 0; i < passages; i++ {
				p.Section(memmodel.SecEntry)
				lock.Enter(p, slot)
				p.Section(memmodel.SecCS)
				p.Read(inCS)
				p.Write(inCS, 1)
				p.Write(inCS, 0)
				p.Section(memmodel.SecExit)
				lock.Exit(p, slot)
				p.Section(memmodel.SecRemainder)
			}
		})
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	return r.StepCount()
}

// TestRTournamentRecoverIdleAndHeld covers the trivial recovery outcomes.
func TestRTournamentRecoverIdleAndHeld(t *testing.T) {
	r := sim.New(sim.Config{})
	lock := NewRTournament(r, "RWL", 2)
	r.AddProc(func(p sim.Proc) {
		if lock.Recover(p, 0) {
			t.Error("Recover on idle slot reported held")
		}
		lock.Enter(p, 0)
		if !lock.Recover(p, 0) {
			t.Error("Recover after Enter did not report held")
		}
		lock.Exit(p, 0)
		if lock.Recover(p, 0) {
			t.Error("Recover after Exit reported held")
		}
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
}
