package mutex

import (
	"testing"

	"repro/internal/memmodel"
	"repro/internal/sim"
)

// checkTryEnter stages the three TryEnter cases on the simulator: success
// on a free lock, bounded failure against a holder (with the arbitration
// state rolled back so the lock stays usable), and mixed try/blocking
// mutual exclusion.
func checkTryEnter(t *testing.T, build func(a memmodel.Allocator, m int) Lock, m int) {
	t.Helper()
	r := sim.New(sim.Config{})
	defer r.Close()
	lock := build(r, m)
	tl, ok := lock.(TryEnterer)
	if !ok {
		t.Fatalf("%T does not implement TryEnterer", lock)
	}
	cell := r.Alloc("cell", 0)

	// Proc 0 (slot 0): try on the free lock — must win — then holds the
	// CS at a barrier, retries while still holding is not allowed, so it
	// exits after release.
	var got0, got1, got1Retry bool
	r.AddProc(func(p sim.Proc) {
		got0 = tl.TryEnter(p, 0)
		if !got0 {
			return
		}
		x := p.Read(cell)
		p.Write(cell, x+1)
		p.Barrier()
		lock.Exit(p, 0)
	})
	// Proc 1 (slot m-1): try while proc 0 holds — must fail without
	// blocking — then a blocking Enter must still work after the release.
	r.AddProc(func(p sim.Proc) {
		p.Barrier()
		got1 = tl.TryEnter(p, m-1)
		if got1 {
			lock.Exit(p, m-1)
			return
		}
		p.Barrier()
		lock.Enter(p, m-1) // proves the failed try rolled back cleanly
		x := p.Read(cell)
		p.Write(cell, x+1)
		lock.Exit(p, m-1)
		got1Retry = true
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	drive := func() {
		t.Helper()
		for {
			progressed, err := r.Step()
			if err != nil {
				t.Fatal(err)
			}
			if !progressed {
				return
			}
		}
	}
	drive() // proc 0 acquires and parks in the CS
	if !got0 {
		t.Fatal("TryEnter on a free lock failed")
	}
	if err := r.ReleaseBarrier(1); err != nil {
		t.Fatal(err)
	}
	drive() // proc 1's try fails against the holder
	if got1 {
		t.Fatal("TryEnter succeeded while slot 0 held the lock")
	}
	if err := r.ReleaseBarrier(0); err != nil { // holder exits
		t.Fatal(err)
	}
	drive()
	if err := r.ReleaseBarrier(1); err != nil { // blocked retry proceeds
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if !got1Retry {
		t.Error("blocking Enter after a failed try never completed")
	}
	if got := r.Value(cell); got != 2 {
		t.Errorf("cell = %d, want 2", got)
	}
}

func TestTournamentTryEnter(t *testing.T) {
	for _, m := range []int{1, 2, 3, 4, 8} {
		if m == 1 {
			// Trivial tree: TryEnter always wins; only the success path
			// applies, covered by the m>1 runs' proc-0 leg.
			continue
		}
		checkTryEnter(t, buildTournament, m)
	}
}

func TestTASTryEnter(t *testing.T) {
	checkTryEnter(t, buildTAS, 2)
}

// TestTournamentTryEnterSingleSlot pins the degenerate m=1 tree: an empty
// arbitration path always wins.
func TestTournamentTryEnterSingleSlot(t *testing.T) {
	r := sim.New(sim.Config{})
	defer r.Close()
	lock := NewTournament(r, "WL", 1)
	var got bool
	r.AddProc(func(p sim.Proc) {
		got = lock.TryEnter(p, 0)
		if got {
			lock.Exit(p, 0)
		}
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("TryEnter on the trivial single-slot tree failed")
	}
}
