package tablefmt

import (
	"strings"
	"testing"
)

func TestBasicRender(t *testing.T) {
	tb := New("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "12.5")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header line %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("rule line %q", lines[1])
	}
	// Numeric column right-aligned: "1" should be padded left.
	if !strings.Contains(lines[2], "    1") {
		t.Errorf("numeric cell not right-aligned: %q", lines[2])
	}
}

func TestMissingCellsRenderEmpty(t *testing.T) {
	tb := New("a", "b", "c")
	tb.AddRow("x")
	out := tb.String()
	if !strings.Contains(out, "x") {
		t.Errorf("missing cell handling broke row: %q", out)
	}
	if tb.NumRows() != 1 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTooManyCellsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for extra cells")
		}
	}()
	New("a").AddRow("1", "2")
}

func TestRuleAfterRow(t *testing.T) {
	tb := New("a")
	tb.AddRow("1")
	tb.AddRule()
	tb.AddRow("2")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header, rule, row, rule, row
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	isRule := func(s string) bool { return strings.Trim(s, "-") == "" && s != "" }
	if !isRule(lines[1]) || !isRule(lines[3]) {
		t.Errorf("missing rules:\n%s", out)
	}
}

func TestColumnAlignmentStable(t *testing.T) {
	tb := New("col")
	tb.AddRow("short")
	tb.AddRow("a-much-longer-cell")
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	// All data lines padded to the same width... left-aligned strings are
	// trimmed at line end, so just check render doesn't fail and contains
	// both rows.
	if !strings.Contains(lines[2], "short") || !strings.Contains(lines[3], "a-much-longer-cell") {
		t.Errorf("rows missing:\n%s", tb.String())
	}
}

func TestIsNumericHelpers(t *testing.T) {
	cases := []struct {
		s    string
		want bool
	}{
		{"12", true}, {"-3.5", true}, {"2.0x", true}, {"95%", true},
		{"abc", false}, {"", false}, {"x", false},
	}
	for _, c := range cases {
		if got := isNumeric(c.s); got != c.want {
			t.Errorf("isNumeric(%q) = %v", c.s, got)
		}
	}
	if Itoa(42) != "42" || F1(1.25) != "1.2" && F1(1.25) != "1.3" || F2(1.256) != "1.26" {
		t.Error("format helpers wrong")
	}
}
