// Package tablefmt renders the fixed-width text tables the experiment
// binaries and EXPERIMENTS.md use. It intentionally supports exactly what
// the harness needs: left- or right-aligned columns, a header rule, and
// optional section rules between row groups.
package tablefmt

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	headers []string
	rows    [][]string
	rules   map[int]bool // row indices after which to draw a rule
}

// New returns a table with the given column headers.
func New(headers ...string) *Table {
	return &Table{headers: headers, rules: make(map[int]bool)}
}

// AddRow appends one row. Missing cells render empty; extra cells panic,
// since that always indicates a bug in the experiment code.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.headers) {
		panic(fmt.Sprintf("tablefmt: row has %d cells, table has %d columns", len(cells), len(t.headers)))
	}
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRule draws a horizontal rule after the last added row (used to group
// parameter sweeps).
func (t *Table) AddRule() {
	t.rules[len(t.rows)-1] = true
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Fprint renders the table to w.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			// Right-align numeric-looking cells, left-align the rest.
			if isNumeric(c) {
				parts[i] = fmt.Sprintf("%*s", widths[i], c)
			} else {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.headers)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for i, row := range t.rows {
		printRow(row)
		if t.rules[i] {
			fmt.Fprintln(w, strings.Repeat("-", total))
		}
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// isNumeric reports whether the cell looks like a number (possibly with a
// decimal point, sign, or trailing x/%).
func isNumeric(s string) bool {
	s = strings.TrimSuffix(strings.TrimSuffix(s, "x"), "%")
	if s == "" {
		return false
	}
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}

// Itoa is a convenience alias so experiment code doesn't import strconv
// everywhere.
func Itoa(v int) string { return strconv.Itoa(v) }

// F1 formats a float with one decimal.
func F1(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

// F2 formats a float with two decimals.
func F2(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
