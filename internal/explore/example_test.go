package explore_test

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/spec"
)

// Example exhaustively model-checks the FAA phase-fair lock with one
// reader and one writer: every schedule of the tiny scenario is enumerated
// and checked for mutual exclusion and completion.
func Example() {
	res, err := explore.Algorithm(
		func() memmodel.Algorithm { return baseline.NewPhaseFair() },
		spec.Scenario{NReaders: 1, NWriters: 1, ReaderPassages: 1, WriterPassages: 1},
		explore.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("schedules: %d, complete: %v, violations: %q\n", res.Runs, res.Complete, res.Violation)
	// Output:
	// schedules: 30, complete: true, violations: ""
}
