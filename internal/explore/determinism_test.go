package explore

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/memmodel"
	"repro/internal/spec"
)

// TestExploreDeterminism is the determinism gate for the parallel
// exploration: the merged Result — runs, completeness, max depth, first
// violation and its path — must be byte-identical at every worker count,
// including when the run cap cuts the DFS mid-subtree. Run under -race in
// CI.
func TestExploreDeterminism(t *testing.T) {
	newAlg := func() memmodel.Algorithm { return core.New(core.FOne) }
	sc := spec.Scenario{NReaders: 1, NWriters: 1, ReaderPassages: 1, WriterPassages: 1}

	for _, maxRuns := range []int{0, 100, 7} {
		t.Run(fmt.Sprintf("cap=%d", maxRuns), func(t *testing.T) {
			ref, err := Algorithm(newAlg, sc, Config{MaxRuns: maxRuns, Parallel: 1})
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			want := fmt.Sprintf("%+v", *ref)
			for _, workers := range []int{2, runtime.NumCPU()} {
				res, err := Algorithm(newAlg, sc, Config{MaxRuns: maxRuns, Parallel: workers})
				if err != nil {
					t.Fatalf("parallel=%d: %v", workers, err)
				}
				if got := fmt.Sprintf("%+v", *res); got != want {
					t.Errorf("parallel=%d diverged:\n got: %s\nwant: %s", workers, got, want)
				}
			}
		})
	}
}
