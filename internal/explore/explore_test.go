package explore

import (
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/memmodel"
	"repro/internal/mutex"
	"repro/internal/spec"
)

// tinyScenario is the smallest interesting workload: one reader and one
// writer, one passage each.
func tinyScenario() spec.Scenario {
	return spec.Scenario{
		NReaders: 1, NWriters: 1,
		ReaderPassages: 1, WriterPassages: 1,
	}
}

// TestExhaustiveAF11 model-checks A_f at n=1, m=1 for every f: every
// schedule of one reader passage against one writer passage satisfies
// mutual exclusion and completes.
func TestExhaustiveAF11(t *testing.T) {
	for _, f := range []core.F{core.FOne, core.FLinear} {
		f := f
		res, err := Algorithm(func() memmodel.Algorithm { return core.New(f) }, tinyScenario(), Config{})
		if err != nil {
			t.Fatalf("af-%s: %v", f.Name, err)
		}
		if res.Violation != "" {
			t.Fatalf("af-%s: violation on path %v:\n%s", f.Name, res.ViolationPath, res.Violation)
		}
		if !res.Complete {
			t.Fatalf("af-%s: tree not exhausted in %d runs", f.Name, res.Runs)
		}
		t.Logf("af-%s: exhausted %d schedules (max depth %d)", f.Name, res.Runs, res.MaxDepth)
		if res.Runs < 10 {
			t.Errorf("af-%s: suspiciously few schedules (%d)", f.Name, res.Runs)
		}
	}
}

// TestExhaustiveBaselines11 model-checks the baselines at n=1, m=1.
func TestExhaustiveBaselines11(t *testing.T) {
	factories := []func() memmodel.Algorithm{
		func() memmodel.Algorithm { return baseline.NewCentralized() },
		func() memmodel.Algorithm { return baseline.NewFlagArray() },
		func() memmodel.Algorithm { return baseline.NewPhaseFair() },
		func() memmodel.Algorithm { return baseline.NewMutexRW() },
	}
	for _, mk := range factories {
		name := mk().Name()
		res, err := Algorithm(mk, tinyScenario(), Config{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Violation != "" {
			t.Fatalf("%s: violation on path %v:\n%s", name, res.ViolationPath, res.Violation)
		}
		if !res.Complete {
			t.Fatalf("%s: not exhausted in %d runs", name, res.Runs)
		}
		t.Logf("%s: exhausted %d schedules", name, res.Runs)
	}
}

// TestExhaustiveCentralized21 pushes to 2 readers + 1 writer for the
// compact centralized lock (small step counts keep the tree tractable).
func TestExhaustiveCentralized21(t *testing.T) {
	cap := 40_000
	if testing.Short() {
		cap = 5_000
	}
	sc := spec.Scenario{NReaders: 2, NWriters: 1, ReaderPassages: 1, WriterPassages: 1}
	res, err := Algorithm(func() memmodel.Algorithm { return baseline.NewCentralized() }, sc, Config{MaxRuns: cap})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != "" {
		t.Fatalf("violation on path %v:\n%s", res.ViolationPath, res.Violation)
	}
	if !res.Complete {
		t.Logf("capped after %d runs (still no violation)", res.Runs)
	} else {
		t.Logf("exhausted %d schedules", res.Runs)
	}
}

// mutexAsRW adapts a plain mutex.Lock to the Algorithm interface so the
// explorer can model-check the Peterson tournament substrate directly.
type mutexAsRW struct {
	n int
	l *mutex.Tournament
}

func (m *mutexAsRW) Name() string { return "peterson" }
func (m *mutexAsRW) Init(a memmodel.Allocator, n, mw int) error {
	m.n = n
	m.l = mutex.NewTournament(a, "L", max(n+mw, 1))
	return nil
}
func (m *mutexAsRW) ReaderEnter(p memmodel.Proc, rid int) { m.l.Enter(p, rid) }
func (m *mutexAsRW) ReaderExit(p memmodel.Proc, rid int)  { m.l.Exit(p, rid) }
func (m *mutexAsRW) WriterEnter(p memmodel.Proc, wid int) { m.l.Enter(p, m.n+wid) }
func (m *mutexAsRW) WriterExit(p memmodel.Proc, wid int)  { m.l.Exit(p, m.n+wid) }
func (m *mutexAsRW) Props() memmodel.Props                { return memmodel.Props{} }

// TestExhaustivePeterson model-checks the 2-process Peterson node (the WL
// substrate) completely, and a 4-process tournament with two passages each
// under a run cap.
func TestExhaustivePeterson(t *testing.T) {
	// 2 processes (1 "reader" + 1 "writer" both taking the mutex), one
	// passage each: fully exhaustive.
	res, err := Algorithm(func() memmodel.Algorithm { return &mutexAsRW{} }, tinyScenario(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != "" {
		t.Fatalf("peterson 2p: violation on path %v:\n%s", res.ViolationPath, res.Violation)
	}
	if !res.Complete {
		t.Fatalf("peterson 2p: not exhausted in %d runs", res.Runs)
	}
	t.Logf("peterson 2p: exhausted %d schedules", res.Runs)

	// Two passages each widen the tree; still exhaustible.
	sc := spec.Scenario{NReaders: 1, NWriters: 1, ReaderPassages: 2, WriterPassages: 2}
	res, err = Algorithm(func() memmodel.Algorithm { return &mutexAsRW{} }, sc, Config{MaxRuns: 500_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != "" {
		t.Fatalf("peterson 2p x2: violation:\n%s", res.Violation)
	}
	t.Logf("peterson 2p x2: %d runs, complete=%v", res.Runs, res.Complete)
}

// brokenAlg lets everyone into the CS; the explorer must find the
// violation and report a replayable path.
type brokenAlg struct{ v memmodel.Var }

func (b *brokenAlg) Name() string { return "broken" }
func (b *brokenAlg) Init(a memmodel.Allocator, _, _ int) error {
	b.v = a.Alloc("x", 0)
	return nil
}
func (b *brokenAlg) ReaderEnter(p memmodel.Proc, _ int) { p.Read(b.v) }
func (b *brokenAlg) ReaderExit(p memmodel.Proc, _ int)  { p.Read(b.v) }
func (b *brokenAlg) WriterEnter(p memmodel.Proc, _ int) { p.Read(b.v) }
func (b *brokenAlg) WriterExit(p memmodel.Proc, _ int)  { p.Read(b.v) }
func (b *brokenAlg) Props() memmodel.Props              { return memmodel.Props{} }

func TestExplorerFindsPlantedViolation(t *testing.T) {
	sc := tinyScenario()
	sc.CSReads = 1
	res, err := Algorithm(func() memmodel.Algorithm { return &brokenAlg{} }, sc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == "" {
		t.Fatal("explorer missed the planted mutual-exclusion violation")
	}
	if !strings.Contains(res.Violation, "entered CS") {
		t.Errorf("violation text %q", res.Violation)
	}
	if len(res.ViolationPath) == 0 {
		t.Error("no reproduction path recorded")
	}
}

// TestRunCapRespected: a cap smaller than the tree must stop exploration
// with Complete == false.
func TestRunCapRespected(t *testing.T) {
	res, err := Algorithm(func() memmodel.Algorithm { return core.New(core.FOne) }, tinyScenario(), Config{MaxRuns: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete || res.Runs != 5 {
		t.Errorf("cap not respected: %+v", res)
	}
}

// TestReplayReproducesViolation: re-running the recorded choice path must
// reproduce the identical violation and yield the trace.
func TestReplayReproducesViolation(t *testing.T) {
	sc := tinyScenario()
	sc.CSReads = 1
	mk := func() memmodel.Algorithm { return &brokenAlg{} }
	res, err := Algorithm(mk, sc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == "" {
		t.Fatal("no violation found")
	}
	rep, events := Replay(mk, sc, res.ViolationPath)
	if rep.OK() {
		t.Fatal("replay did not reproduce the violation")
	}
	if rep.Failures() != res.Violation {
		t.Errorf("replay violation differs:\noriginal: %q\nreplay:   %q", res.Violation, rep.Failures())
	}
	if len(events) == 0 {
		t.Error("replay produced no trace events")
	}
}
