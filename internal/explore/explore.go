// Package explore performs bounded model checking of lock algorithms: it
// enumerates EVERY schedule of a (small) scenario by replaying executions
// through the deterministic simulator with a backtracking scheduler, and
// checks each execution with the spec harness. For tiny populations and
// passage counts the schedule tree is finite and small enough to exhaust,
// upgrading "no violation across N random seeds" to "no violation in ANY
// schedule" — the strongest evidence short of a mechanized proof that this
// implementation of Algorithm 1 satisfies Mutual Exclusion and progress.
//
// The approach relies on two properties of the simulator: executions are a
// pure function of the scheduler's choice sequence, and the set of poised
// processes presented at each step is deterministic for a fixed prefix.
// The explorer therefore walks the tree in DFS order: each run replays a
// prefix of choices and extends it with first choices; backtracking
// increments the deepest choice that still has unexplored siblings.
package explore

import (
	"fmt"

	"repro/internal/memmodel"
	"repro/internal/spec"
	"repro/internal/trace"
)

// Config bounds an exploration.
type Config struct {
	// MaxRuns caps the number of executions (default 1,000,000). If the
	// cap is hit the Result reports Complete = false.
	MaxRuns int
}

// Result summarizes an exploration.
type Result struct {
	// Runs is the number of executions performed.
	Runs int
	// Complete reports whether the entire schedule tree was exhausted.
	Complete bool
	// MaxDepth is the longest execution (in scheduled steps) seen.
	MaxDepth int
	// Violation holds the first property violation found, with the
	// choice path that produced it; empty if none.
	Violation string
	// ViolationPath is the choice sequence reproducing the violation.
	ViolationPath []int
}

// replay is the backtracking scheduler: it follows path for the prefix and
// picks index 0 (extending path) beyond it, recording the branching factor
// at every depth.
type replay struct {
	path   []int
	counts []int
	depth  int
}

func (r *replay) Name() string { return "explore-replay" }

func (r *replay) Next(_ int, poised []int) int {
	if r.depth == len(r.path) {
		r.path = append(r.path, 0)
		r.counts = append(r.counts, 0)
	}
	if r.depth >= len(r.counts) {
		r.counts = append(r.counts, 0)
	}
	r.counts[r.depth] = len(poised)
	idx := r.path[r.depth]
	if idx >= len(poised) {
		// The tree shape changed under a fixed prefix: determinism broke.
		panic(fmt.Sprintf("explore: choice %d out of %d poised at depth %d (nondeterministic execution?)",
			idx, len(poised), r.depth))
	}
	r.depth++
	return poised[idx]
}

// reset prepares the scheduler for the next run over the current path.
func (r *replay) reset() { r.depth = 0 }

// backtrack advances to the next unexplored sibling, trimming exhausted
// suffixes. It returns false when the whole tree has been explored.
func (r *replay) backtrack() bool {
	for i := len(r.path) - 1; i >= 0; i-- {
		if r.path[i]+1 < r.counts[i] {
			r.path[i]++
			r.path = r.path[:i+1]
			r.counts = r.counts[:i+1]
			return true
		}
	}
	return false
}

// Replay re-executes the schedule identified by a choice path (e.g. a
// Result's ViolationPath) and returns the spec report together with the
// recorded trace, for rendering with internal/tracefmt.
func Replay(newAlg func() memmodel.Algorithm, sc spec.Scenario, path []int) (*spec.Report, []trace.Event) {
	rs := &replay{path: append([]int(nil), path...)}
	var rec trace.Recorder
	sc.Scheduler = rs
	sc.Observer = rec.Observe
	rep := spec.Run(newAlg(), sc)
	return rep, rec.Events()
}

// Algorithm exhaustively explores the scenario's schedule tree for the
// algorithm produced by newAlg (fresh instance per run). The scenario's
// Scheduler field is ignored (the explorer installs its own).
func Algorithm(newAlg func() memmodel.Algorithm, sc spec.Scenario, cfg Config) (*Result, error) {
	if cfg.MaxRuns == 0 {
		cfg.MaxRuns = 1_000_000
	}
	rs := &replay{}
	res := &Result{}
	for {
		rs.reset()
		sc.Scheduler = rs
		rep := spec.Run(newAlg(), sc)
		res.Runs++
		if rs.depth > res.MaxDepth {
			res.MaxDepth = rs.depth
		}
		if !rep.OK() {
			res.Violation = rep.Failures()
			res.ViolationPath = append([]int(nil), rs.path[:rs.depth]...)
			return res, nil
		}
		if !rs.backtrack() {
			res.Complete = true
			return res, nil
		}
		if res.Runs >= cfg.MaxRuns {
			return res, nil
		}
	}
}
