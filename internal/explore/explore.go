// Package explore performs bounded model checking of lock algorithms: it
// enumerates EVERY schedule of a (small) scenario by replaying executions
// through the deterministic simulator with a backtracking scheduler, and
// checks each execution with the spec harness. For tiny populations and
// passage counts the schedule tree is finite and small enough to exhaust,
// upgrading "no violation across N random seeds" to "no violation in ANY
// schedule" — the strongest evidence short of a mechanized proof that this
// implementation of Algorithm 1 satisfies Mutual Exclusion and progress.
//
// The approach relies on two properties of the simulator: executions are a
// pure function of the scheduler's choice sequence, and the set of poised
// processes presented at each step is deterministic for a fixed prefix.
// The explorer therefore walks the tree in DFS order: each run replays a
// prefix of choices and extends it with first choices; backtracking
// increments the deepest choice that still has unexplored siblings.
package explore

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/memmodel"
	"repro/internal/parwork"
	"repro/internal/spec"
	"repro/internal/trace"
)

// Config bounds an exploration.
type Config struct {
	// MaxRuns caps the number of executions (default 1,000,000). If the
	// cap is hit the Result reports Complete = false.
	MaxRuns int
	// Parallel is the worker count the exploration fans the root subtrees
	// across: the schedule tree is split at its first choice and each
	// subtree is a self-contained serial DFS, merged back in canonical
	// (serial DFS) order. 0 selects the process default (parwork.Default),
	// 1 forces a serial exploration. The Result is byte-identical at every
	// worker count. A scenario with a non-nil Observer forces 1 (the shared
	// closure must not be called concurrently).
	Parallel int
}

// Result summarizes an exploration.
type Result struct {
	// Runs is the number of executions performed.
	Runs int
	// Complete reports whether the entire schedule tree was exhausted.
	Complete bool
	// MaxDepth is the longest execution (in scheduled steps) seen.
	MaxDepth int
	// Violation holds the first property violation found, with the
	// choice path that produced it; empty if none.
	Violation string
	// ViolationPath is the choice sequence reproducing the violation.
	ViolationPath []int
}

// replay is the backtracking scheduler: it follows path for the prefix and
// picks index 0 (extending path) beyond it, recording the branching factor
// at every depth.
type replay struct {
	path   []int
	counts []int
	depth  int
	// floor is the shallowest depth backtrack may advance; subtree
	// explorations pin their root choice by setting it to 1.
	floor int
}

func (r *replay) Name() string { return "explore-replay" }

func (r *replay) Next(_ int, poised []int) int {
	if r.depth == len(r.path) {
		r.path = append(r.path, 0)
		r.counts = append(r.counts, 0)
	}
	if r.depth >= len(r.counts) {
		r.counts = append(r.counts, 0)
	}
	r.counts[r.depth] = len(poised)
	idx := r.path[r.depth]
	if idx >= len(poised) {
		// The tree shape changed under a fixed prefix: determinism broke.
		panic(fmt.Sprintf("explore: choice %d out of %d poised at depth %d (nondeterministic execution?)",
			idx, len(poised), r.depth))
	}
	r.depth++
	return poised[idx]
}

// reset prepares the scheduler for the next run over the current path.
func (r *replay) reset() { r.depth = 0 }

// backtrack advances to the next unexplored sibling, trimming exhausted
// suffixes. It returns false when the whole tree has been explored.
func (r *replay) backtrack() bool {
	for i := len(r.path) - 1; i >= r.floor; i-- {
		if r.path[i]+1 < r.counts[i] {
			r.path[i]++
			r.path = r.path[:i+1]
			r.counts = r.counts[:i+1]
			return true
		}
	}
	return false
}

// Replay re-executes the schedule identified by a choice path (e.g. a
// Result's ViolationPath) and returns the spec report together with the
// recorded trace, for rendering with internal/tracefmt.
func Replay(newAlg func() memmodel.Algorithm, sc spec.Scenario, path []int) (*spec.Report, []trace.Event) {
	rs := &replay{path: append([]int(nil), path...)}
	var rec trace.Recorder
	sc.Scheduler = rs
	sc.Observer = rec.Observe
	rep := spec.Run(newAlg(), sc)
	return rep, rec.Events()
}

// Algorithm exhaustively explores the scenario's schedule tree for the
// algorithm produced by newAlg (fresh instance per run). The scenario's
// Scheduler field is ignored (the explorer installs its own). The tree is
// split at its root choice and the subtrees fan out across cfg.Parallel
// workers (see Config.Parallel); the merged Result is byte-identical to a
// serial DFS. With more than one worker, newAlg is called concurrently and
// must be a pure constructor.
func Algorithm(newAlg func() memmodel.Algorithm, sc spec.Scenario, cfg Config) (*Result, error) {
	if cfg.MaxRuns == 0 {
		cfg.MaxRuns = 1_000_000
	}
	// Probe run: all-first choices. It discovers the branching factor at
	// the root (the initially poised set is deterministic), and doubles as
	// the whole exploration when the tree makes no choices at all.
	probe := &replay{}
	run := sc
	run.Scheduler = probe
	rep := spec.Run(newAlg(), run)
	if len(probe.counts) == 0 {
		res := &Result{Runs: 1, Complete: true, MaxDepth: probe.depth}
		if !rep.OK() {
			res.Violation = rep.Failures()
			res.ViolationPath = append([]int(nil), probe.path[:probe.depth]...)
			res.Complete = false
		}
		return res, nil
	}

	workers := parwork.Workers(cfg.Parallel)
	if sc.Observer != nil {
		workers = 1
	}
	// Each root subtree is a self-contained serial DFS, capped at the
	// global budget (a deeper cut is reconstructed during the merge). The
	// probe run is re-run as subtree 0's first execution so every subtree
	// result is position-independent.
	subs, err := exploreSubtrees(newAlg, sc, cfg, workers, probe.counts[0])
	if err != nil {
		return nil, err
	}

	// Canonical merge: accumulate subtree results in root-choice order,
	// reproducing exactly where the serial DFS would have stopped — at the
	// first violation, or once the run budget is exhausted. A subtree the
	// serial DFS would have entered with a smaller remaining budget than
	// the worker used is re-explored with that exact budget.
	res := &Result{Complete: true}
	budget := cfg.MaxRuns
	for k, s := range subs {
		if budget <= 0 {
			res.Complete = false
			break
		}
		if s.Runs > budget {
			s = exploreSubtree(newAlg, sc, k, budget)
		}
		res.Runs += s.Runs
		res.MaxDepth = max(res.MaxDepth, s.MaxDepth)
		budget -= s.Runs
		if s.Violation != "" {
			res.Violation = s.Violation
			res.ViolationPath = s.ViolationPath
			res.Complete = false
			break
		}
		if !s.Complete {
			res.Complete = false
			break
		}
	}
	return res, nil
}

// exploreSubtrees fans the root subtrees out across the worker pool. With
// no robust options in play (spec.EffectiveRobust over the scenario) it is
// a plain parwork.Do; with options active the subtrees run through the
// checkpointed path, so an interrupted exploration resumes its unfinished
// subtrees instead of restarting. KeepGoing is never honored here: the
// canonical merge needs every subtree's real result, so row-failure
// isolation would only corrupt the budget accounting. Result round-trips
// through the checkpoint verbatim (ints, bool, string, []int).
//
// No cost hint: a subtree's size is the very thing exploration discovers
// (a root choice may prune immediately or dominate the whole search), so
// there is no known shape to seed LPT with. Work stealing is the whole
// story here — a worker that drains its cheap subtrees steals from the
// worker stuck under the heavy one.
func exploreSubtrees(newAlg func() memmodel.Algorithm, sc spec.Scenario, cfg Config, workers, roots int) ([]*Result, error) {
	ro := spec.EffectiveRobust(sc)
	job := func(k int) *Result { return exploreSubtree(newAlg, sc, k, cfg.MaxRuns) }
	if ro == nil || (ro.Store == nil && ro.RowTimeout <= 0 && ro.Stop == nil && ro.AfterRow == nil) {
		return parwork.Do(workers, roots, job), nil
	}
	opt := parwork.Options{
		Workers:    workers,
		RowTimeout: ro.RowTimeout,
		Stop:       ro.Stop,
		AfterRow:   ro.AfterRow,
		RowInfo:    func(k int) string { return fmt.Sprintf("root subtree %d", k) },
	}
	if ro.Store != nil {
		algName := newAlg().Name()
		fp := checkpoint.Fingerprint("explore", algName, sc.String(),
			fmt.Sprintf("csreads=%d maxsteps=%d maxruns=%d roots=%d",
				sc.CSReads, sc.MaxSteps, cfg.MaxRuns, roots))
		sec, err := ro.Store.Section("explore/"+algName, fp, roots)
		if err != nil {
			return nil, err
		}
		opt.Sink = sec
	}
	outs, _, err := parwork.DoRobust(opt, roots, parwork.JSONCodec[*Result](),
		func() struct{} { return struct{}{} }, func(struct{}) {},
		func(_ struct{}, k int) *Result { return job(k) }, nil)
	return outs, err
}

// exploreSubtree is the serial DFS restricted to the subtree under root
// choice k: it stops at the subtree's first violation or after maxRuns
// executions, whichever comes first, mirroring the serial loop's
// check order (violation, then exhaustion, then budget).
func exploreSubtree(newAlg func() memmodel.Algorithm, sc spec.Scenario, k, maxRuns int) *Result {
	rs := &replay{path: []int{k}, counts: []int{0}, floor: 1}
	res := &Result{}
	for {
		rs.reset()
		run := sc
		run.Scheduler = rs
		rep := spec.Run(newAlg(), run)
		res.Runs++
		if rs.depth > res.MaxDepth {
			res.MaxDepth = rs.depth
		}
		if !rep.OK() {
			res.Violation = rep.Failures()
			res.ViolationPath = append([]int(nil), rs.path[:rs.depth]...)
			return res
		}
		if !rs.backtrack() {
			res.Complete = true
			return res
		}
		if res.Runs >= maxRuns {
			return res
		}
	}
}
