package recoverable

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/memmodel"
	"repro/internal/mutex"
)

// Signal opcodes, mirroring internal/core's Algorithm 1 encoding (they are
// protocol constants of the paper, restated here because the recoverable
// variant reimplements the passage sections with announcement writes
// interleaved).
const (
	opNOP      = 0 // RSIG: no writer holds WL
	opPreentry = 1 // RSIG: writer verifying no readers are waiting
	opWait     = 2 // RSIG: readers must wait for the current writer passage

	wsBottom  = 0 // WSIG[i]: initial state for the current passage
	wsProceed = 1 // WSIG[i]: group drained during PREENTRY
	wsWait    = 2 // WSIG[i]: writer armed the group
	wsCS      = 3 // WSIG[i]: group quiescent or waiting
)

// Reader announcement phases, packed as PackSig(aux, phase). For the
// counter phases (rpCIn, rpWIn, rpWOut, rpCOut) aux holds the f-array leaf
// version the interrupted Add was about to install, so recovery can decide
// from the leaf's current version whether the Add's leaf write applied
// (version reached aux: repair the propagation) or not (version is aux-1:
// redo or abandon the Add). The leaf is single-writer, so exactly those two
// values are possible.
const (
	rpIdle    = 0 // no passage in progress
	rpCIn     = 1 // C[i] increment in flight (entry line 31)
	rpWIn     = 2 // W[i] increment in flight (entry line 34)
	rpWait    = 3 // helping / waiting for the writer (entry lines 35-36)
	rpWOut    = 4 // W[i] decrement in flight (entry line 37)
	rpInCS    = 5 // entry complete: in (or entitled to) the CS
	rpCOut    = 6 // C[i] decrement in flight (exit line 40)
	rpExitSig = 7 // exit signaling in flight (exit lines 41-48)
)

// Writer announcement phases, packed as PackSig(seq, phase) where seq is
// the passage's WSEQ value (phWL predates it and packs 0).
const (
	phIdle    = 0 // no passage in progress
	phWL      = 1 // acquiring WL
	phEntry   = 2 // signaling rounds of the entry section (lines 7-23)
	phCS      = 3 // entry complete: in the CS
	phExitSeq = 4 // publishing WSEQ+1 and <seq+1, NOP> (exit lines 25-26)
	phExitWL  = 5 // releasing WL (exit line 27)
)

// AF is a recoverable member of the A_f family. It is the paper's
// Algorithm 1 (as implemented by internal/core) restructured for the
// crash-recovery failure model:
//
//   - every process announces, in a single-writer announcement word, which
//     passage step is in flight before taking that step's first shared
//     write, so a restarted incarnation can locate the frontier;
//   - group counters are f-arrays whose leaf version tags make "did my Add
//     apply?" decidable after a crash, with counter.FArray.Repair
//     re-propagating an orphaned leaf update;
//   - the writers' mutex is the recoverable tournament
//     (mutex.RTournament), whose progress word repairs the arbitration
//     tree;
//   - no Go-local state crosses passage sections: the writer re-reads WSEQ
//     (stable while it holds WL) instead of carrying a local copy, so a
//     crash loses nothing recovery cannot reconstruct.
//
// The delicate case is a writer crash inside the entry signaling rounds
// (phEntry). Re-running the signaling with the same sequence number is
// unsound: the crashed round may already have published <seq, WAIT> and
// collected helpWCS CASes, and a re-run would reissue <seq, PREENTRY> after
// readers observed <seq, WAIT> — the per-seq opcode monotonicity the safety
// argument rests on would break, and a stale <seq, wsCS> could admit a
// reader alongside the writer. Recovery instead abandons the round exactly
// like the abortable writer entry does: advance WSEQ and publish
// <seq+1, NOP> (waking any readers parked on <seq, WAIT>), then run a fresh
// signaling round with seq+1 while still holding WL. Each re-crash of the
// recovery abandons again, so no sequence number is ever signaled twice.
type AF struct {
	f core.F

	n, m   int
	groups int
	k      int

	c    []*counter.FArray  // C[i]: group-i readers in a passage
	w    []*counter.FArray  // W[i]: group-i readers waiting
	wl   *mutex.RTournament // WL: writers' recoverable mutex
	wseq memmodel.Var       // WSEQ: writer passage sequence number
	wsig []memmodel.Var     // WSIG[i]: <seq, opcode> group i -> writer
	rsig memmodel.Var       // RSIG: <seq, opcode> writer -> readers
	rann []memmodel.Var     // rann[rid]: reader announcement
	wann []memmodel.Var     // wann[wid]: writer announcement

	inited bool
}

var _ memmodel.RecoverableAlgorithm = (*AF)(nil)

// NewAF returns an uninitialized recoverable A_f instance for
// parameterization f. Only the paper's substrates are supported: f-array
// counters (the repair path needs the leaf version tags) and the
// tournament WL (the repair path needs the progress word).
func NewAF(f core.F) *AF { return &AF{f: f} }

// Name implements memmodel.Algorithm.
func (a *AF) Name() string { return "r-af-" + a.f.Name }

// Groups returns f(n) after Init.
func (a *AF) Groups() int { return a.groups }

// Init implements memmodel.Algorithm.
func (a *AF) Init(alloc memmodel.Allocator, nReaders, nWriters int) error {
	if a.inited {
		return fmt.Errorf("recoverable: %s: Init called twice", a.Name())
	}
	if nReaders < 0 || nWriters < 0 {
		return fmt.Errorf("recoverable: negative population %d/%d", nReaders, nWriters)
	}
	a.inited = true
	a.n, a.m = nReaders, nWriters
	a.groups = a.f.Groups(nReaders)
	a.k = a.f.GroupSize(nReaders)

	a.c = make([]*counter.FArray, a.groups)
	a.w = make([]*counter.FArray, a.groups)
	for i := 0; i < a.groups; i++ {
		a.c[i] = counter.NewFArray(alloc, fmt.Sprintf("C[%d]", i), a.k)
		a.w[i] = counter.NewFArray(alloc, fmt.Sprintf("W[%d]", i), a.k)
	}
	a.wl = mutex.NewRTournament(alloc, "WL", max(nWriters, 1))
	a.wseq = alloc.Alloc("WSEQ", 0)
	a.wsig = alloc.AllocN("WSIG", a.groups, memmodel.PackSig(0, wsBottom))
	a.rsig = alloc.Alloc("RSIG", memmodel.PackSig(0, opNOP))
	a.rann = alloc.AllocN("RANN", max(nReaders, 1), memmodel.PackSig(0, rpIdle))
	a.wann = alloc.AllocN("WANN", max(nWriters, 1), memmodel.PackSig(0, phIdle))
	return nil
}

// group returns reader rid's group index and in-group counter slot.
func (a *AF) group(rid int) (int, int) { return rid / a.k, rid % a.k }

// leafVer reads the current version tag of slot's leaf in counter c.
func leafVer(p memmodel.Proc, c *counter.FArray, slot int) uint32 {
	ver, _ := memmodel.UnpackVerSum(p.Read(c.Leaf(slot)))
	return ver
}

// countAdd performs c.Add(delta) for slot with the announcement protocol:
// it announces phase with the leaf version the Add will install, so a
// restarted incarnation can decide whether the Add applied.
func (a *AF) countAdd(p memmodel.Proc, rid int, c *counter.FArray, slot int, delta int32, phase uint8) {
	target := leafVer(p, c, slot) + 1
	p.Write(a.rann[rid], memmodel.PackSig(uint64(target), phase))
	c.Add(p, slot, delta)
}

// addApplied decides, from the announced target version, whether the
// interrupted Add's leaf write applied. The leaf is single-writer, so its
// version is either target (applied) or target-1 (not applied).
func addApplied(p memmodel.Proc, c *counter.FArray, slot int, target uint32) bool {
	switch ver := leafVer(p, c, slot); ver {
	case target:
		return true
	case target - 1:
		return false
	default:
		panic(fmt.Sprintf("recoverable: leaf version %d outside {%d, %d}", ver, target-1, target))
	}
}

// ReaderEnter implements lines 31-38 of Algorithm 1 with announcements.
func (a *AF) ReaderEnter(p memmodel.Proc, rid int) {
	i, slot := a.group(rid)
	a.countAdd(p, rid, a.c[i], slot, 1, rpCIn) // line 31
	a.readerEnterFromSignal(p, rid, i, slot)
}

// readerEnterFromSignal is the entry tail after the C[i] increment: the
// RSIG check and, if a writer passage is in progress, the waiting protocol
// (lines 32-37). Recovery re-enters here after repairing the C increment.
func (a *AF) readerEnterFromSignal(p memmodel.Proc, rid, i, slot int) {
	seq, op := memmodel.UnpackSig(p.Read(a.rsig)) // line 32
	if op == opWait {                             // line 33
		a.countAdd(p, rid, a.w[i], slot, 1, rpWIn) // line 34
		a.readerWait(p, rid, i, slot, seq)
	}
	p.Write(a.rann[rid], memmodel.PackSig(0, rpInCS))
}

// readerWait is the waiting protocol after the W[i] increment: help, park,
// deregister (lines 35-37). seq is the sequence number under which the
// reader observed <seq, WAIT>; recovery passes the freshly re-read value.
func (a *AF) readerWait(p memmodel.Proc, rid, i, slot int, seq uint64) {
	p.Write(a.rann[rid], memmodel.PackSig(seq, rpWait))
	a.helpWCS(p, i, seq) // line 35
	waitWord := memmodel.PackSig(seq, opWait)
	p.Await(a.rsig, func(x uint64) bool { return x != waitWord }) // line 36
	a.countAdd(p, rid, a.w[i], slot, -1, rpWOut)                  // line 37
}

// ReaderExit implements lines 40-48 of Algorithm 1 with announcements.
func (a *AF) ReaderExit(p memmodel.Proc, rid int) {
	i, slot := a.group(rid)
	a.countAdd(p, rid, a.c[i], slot, -1, rpCOut) // line 40
	p.Write(a.rann[rid], memmodel.PackSig(0, rpExitSig))
	a.readerExitSignal(p, i)
	p.Write(a.rann[rid], memmodel.PackSig(0, rpIdle))
}

// readerExitSignal is the exit signaling (lines 41-48). It reads RSIG
// fresh, so re-running it after a crash behaves exactly like a reader
// exiting at that moment — both its CASes carry the observed sequence
// number in their expected value and fail harmlessly if stale or already
// applied.
func (a *AF) readerExitSignal(p memmodel.Proc, i int) {
	seq, op := memmodel.UnpackSig(p.Read(a.rsig)) // line 41
	switch op {
	case opPreentry: // line 42
		if a.c[i].Read(p) == 0 { // line 43
			p.CAS(a.wsig[i], memmodel.PackSig(seq, wsBottom), memmodel.PackSig(seq, wsProceed)) // line 45
		}
	case opWait: // line 47
		a.helpWCS(p, i, seq) // line 48
	}
}

// helpWCS implements lines 50-54, with internal/core's W-before-C read
// order (see core.AF's type comment for why that order is load-bearing).
func (a *AF) helpWCS(p memmodel.Proc, i int, seq uint64) {
	waiting := a.w[i].Read(p)
	inPassage := a.c[i].Read(p)
	if waiting == inPassage { // line 51
		p.CAS(a.wsig[i], memmodel.PackSig(seq, wsWait), memmodel.PackSig(seq, wsCS)) // line 52
	}
}

// ReaderRecover implements memmodel.RecoverableAlgorithm. The announcement
// phase locates the frontier; the counter phases additionally consult the
// announced leaf version target to decide redo vs repair. Every path either
// rolls the passage back to nothing (RecoverAbort: only possible while the
// C increment had not applied) or completes the interrupted section.
func (a *AF) ReaderRecover(p memmodel.Proc, rid int) memmodel.Recovery {
	i, slot := a.group(rid)
	aux, phase := memmodel.UnpackSig(p.Read(a.rann[rid]))
	switch phase {
	case rpIdle:
		return memmodel.RecoverAbort

	case rpCIn:
		if !addApplied(p, a.c[i], slot, uint32(aux)) {
			// The passage never became visible: roll back.
			p.Write(a.rann[rid], memmodel.PackSig(0, rpIdle))
			return memmodel.RecoverAbort
		}
		a.c[i].Repair(p, slot) // finish the interrupted propagation
		a.readerEnterFromSignal(p, rid, i, slot)
		return memmodel.RecoverCS

	case rpWIn:
		if addApplied(p, a.w[i], slot, uint32(aux)) {
			a.w[i].Repair(p, slot)
			a.recoverWaitPhase(p, rid, i, slot)
		} else {
			// The W increment never applied; the reader is registered in
			// C only. Re-check RSIG and redo the waiting protocol if a
			// writer passage is (still) in progress, exactly as a fresh
			// arrival at line 32 would.
			if seq, op := memmodel.UnpackSig(p.Read(a.rsig)); op == opWait {
				a.countAdd(p, rid, a.w[i], slot, 1, rpWIn)
				a.readerWait(p, rid, i, slot, seq)
			}
		}
		p.Write(a.rann[rid], memmodel.PackSig(0, rpInCS))
		return memmodel.RecoverCS

	case rpWait:
		a.recoverWaitPhase(p, rid, i, slot)
		p.Write(a.rann[rid], memmodel.PackSig(0, rpInCS))
		return memmodel.RecoverCS

	case rpWOut:
		if addApplied(p, a.w[i], slot, uint32(aux)) {
			a.w[i].Repair(p, slot)
		} else {
			a.w[i].Add(p, slot, -1) // redo the decrement
		}
		p.Write(a.rann[rid], memmodel.PackSig(0, rpInCS))
		return memmodel.RecoverCS

	case rpInCS:
		return memmodel.RecoverCS

	case rpCOut:
		if addApplied(p, a.c[i], slot, uint32(aux)) {
			a.c[i].Repair(p, slot)
		} else {
			a.c[i].Add(p, slot, -1) // redo the decrement
		}
		p.Write(a.rann[rid], memmodel.PackSig(0, rpExitSig))
		a.readerExitSignal(p, i)
		p.Write(a.rann[rid], memmodel.PackSig(0, rpIdle))
		return memmodel.RecoverDone

	case rpExitSig:
		a.readerExitSignal(p, i)
		p.Write(a.rann[rid], memmodel.PackSig(0, rpIdle))
		return memmodel.RecoverDone

	default:
		panic(fmt.Sprintf("recoverable: reader %d has corrupt announcement phase %d", rid, phase))
	}
}

// recoverWaitPhase resumes a reader that crashed while registered in both
// C[i] and W[i] (anywhere between the W increment's completion and the W
// decrement's announcement). It re-reads RSIG fresh: if a writer passage is
// in WAIT — the original one or a later one — it redoes the help-and-park
// protocol under that sequence number, which is precisely what a registered
// waiting reader owes the writer; otherwise the parked wait is over and
// only the W deregistration remains.
func (a *AF) recoverWaitPhase(p memmodel.Proc, rid, i, slot int) {
	if seq, op := memmodel.UnpackSig(p.Read(a.rsig)); op == opWait {
		p.Write(a.rann[rid], memmodel.PackSig(seq, rpWait))
		a.helpWCS(p, i, seq)
		waitWord := memmodel.PackSig(seq, opWait)
		p.Await(a.rsig, func(x uint64) bool { return x != waitWord })
	}
	a.countAdd(p, rid, a.w[i], slot, -1, rpWOut)
}

// writerSignal runs the entry signaling rounds (lines 7-23) under seq.
func (a *AF) writerSignal(p memmodel.Proc, seq uint64) {
	for i := 0; i < a.groups; i++ { // lines 7-9
		p.Write(a.wsig[i], memmodel.PackSig(seq, wsBottom))
	}
	p.Write(a.rsig, memmodel.PackSig(seq, opPreentry)) // line 11

	for i := 0; i < a.groups; i++ { // lines 12-17
		if a.c[i].Read(p) > 0 { // line 13
			proceed := memmodel.PackSig(seq, wsProceed)
			p.Await(a.wsig[i], func(x uint64) bool { return x == proceed }) // line 14
		}
		p.Write(a.wsig[i], memmodel.PackSig(seq, wsWait)) // line 16
	}

	p.Write(a.rsig, memmodel.PackSig(seq, opWait)) // line 18

	for i := 0; i < a.groups; i++ { // lines 19-23
		if a.c[i].Read(p) > 0 { // line 20
			cs := memmodel.PackSig(seq, wsCS)
			p.Await(a.wsig[i], func(x uint64) bool { return x == cs }) // line 21
		}
	}
}

// WriterEnter implements lines 6-23 of Algorithm 1 with announcements.
func (a *AF) WriterEnter(p memmodel.Proc, wid int) {
	p.Write(a.wann[wid], memmodel.PackSig(0, phWL))
	a.wl.Enter(p, wid)    // line 6
	seq := p.Read(a.wseq) // the passage's sequence number
	p.Write(a.wann[wid], memmodel.PackSig(seq, phEntry))
	a.writerSignal(p, seq)
	p.Write(a.wann[wid], memmodel.PackSig(seq, phCS))
}

// WriterExit implements lines 25-27 of Algorithm 1 with announcements.
// WSEQ is re-read instead of carried in a Go-local (it is stable while WL
// is held and only its holder writes it).
func (a *AF) WriterExit(p memmodel.Proc, wid int) {
	seq := p.Read(a.wseq)
	p.Write(a.wann[wid], memmodel.PackSig(seq, phExitSeq))
	p.Write(a.wseq, seq+1)                          // line 25
	p.Write(a.rsig, memmodel.PackSig(seq+1, opNOP)) // line 26
	p.Write(a.wann[wid], memmodel.PackSig(seq, phExitWL))
	a.wl.Exit(p, wid) // line 27
	p.Write(a.wann[wid], memmodel.PackSig(0, phIdle))
}

// writerAbandonAndResignal abandons the sequence number whose signaling
// round the crash interrupted and runs a fresh round: advance WSEQ, publish
// <seq+1, NOP> (waking readers parked on <seq, WAIT>), then signal under
// seq+1 — the abortable-entry rollback, executed while still holding WL.
// See the type comment for why re-signaling under the old seq is unsound.
func (a *AF) writerAbandonAndResignal(p memmodel.Proc, wid int) {
	seq := p.Read(a.wseq)
	p.Write(a.wseq, seq+1)
	p.Write(a.rsig, memmodel.PackSig(seq+1, opNOP))
	p.Write(a.wann[wid], memmodel.PackSig(seq+1, phEntry))
	a.writerSignal(p, seq+1)
	p.Write(a.wann[wid], memmodel.PackSig(seq+1, phCS))
}

// WriterRecover implements memmodel.RecoverableAlgorithm.
func (a *AF) WriterRecover(p memmodel.Proc, wid int) memmodel.Recovery {
	_, phase := memmodel.UnpackSig(p.Read(a.wann[wid]))
	switch phase {
	case phIdle:
		return memmodel.RecoverAbort

	case phWL:
		// Crashed inside (or just after) the WL acquisition, before any
		// signaling. The tournament's progress word decides.
		if !a.wl.Recover(p, wid) {
			p.Write(a.wann[wid], memmodel.PackSig(0, phIdle))
			return memmodel.RecoverAbort
		}
		// WL is held and no signal of ours is out yet: run the entry
		// signaling under the current sequence number.
		seq := p.Read(a.wseq)
		p.Write(a.wann[wid], memmodel.PackSig(seq, phEntry))
		a.writerSignal(p, seq)
		p.Write(a.wann[wid], memmodel.PackSig(seq, phCS))
		return memmodel.RecoverCS

	case phEntry:
		a.writerAbandonAndResignal(p, wid)
		return memmodel.RecoverCS

	case phCS:
		return memmodel.RecoverCS

	case phExitSeq:
		// Crashed between the exit's marker and the WL release marker: the
		// WSEQ advance and NOP publication may each have happened or not.
		// Both writes are idempotent redone under the announced seq.
		seq, _ := memmodel.UnpackSig(p.Read(a.wann[wid]))
		p.Write(a.wseq, seq+1)
		p.Write(a.rsig, memmodel.PackSig(seq+1, opNOP))
		p.Write(a.wann[wid], memmodel.PackSig(seq, phExitWL))
		a.wl.Exit(p, wid)
		p.Write(a.wann[wid], memmodel.PackSig(0, phIdle))
		return memmodel.RecoverDone

	case phExitWL:
		// Crashed inside the WL release; finish it (Recover reports held
		// if the release had not taken its first step).
		if a.wl.Recover(p, wid) {
			a.wl.Exit(p, wid)
		}
		p.Write(a.wann[wid], memmodel.PackSig(0, phIdle))
		return memmodel.RecoverDone

	default:
		panic(fmt.Sprintf("recoverable: writer %d has corrupt announcement phase %d", wid, phase))
	}
}

// Props implements memmodel.Algorithm.
func (a *AF) Props() memmodel.Props {
	f := a.f
	return memmodel.Props{
		UsesCAS:              true,
		ConcurrentEntering:   true,
		ReaderStarvationFree: true,
		PredictedReaderRMR: func(n, _ int) float64 {
			return math.Log2(float64(f.GroupSize(n))) + 1
		},
		PredictedWriterRMR: func(n, m int) float64 {
			return float64(f.Groups(n)) + math.Log2(float64(max(m, 2)))
		},
	}
}
