package recoverable

import (
	"testing"

	"repro/internal/core"
	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/sim"
)

// recHarness drives a recoverable algorithm population (readers pid
// 0..nR-1, writers pid nR..nR+nW-1) with a Go-side occupancy monitor: each
// process marks itself in-CS around a single CS read step, and checks the
// marks of every conflicting process on CS entry. Go-side state is updated
// only at step boundaries, so the marks are crash-consistent: a crash in
// the CS leaves the mark set, and the RecoverCS path resumes it.
type recHarness struct {
	alg        memmodel.RecoverableAlgorithm
	nR, nW     int
	passages   int
	r          *sim.Runner
	scratch    memmodel.Var
	inCS       []bool
	counts     []int
	violations int
}

func newRecHarness(t *testing.T, alg memmodel.RecoverableAlgorithm, nR, nW, passages int, seed int64) *recHarness {
	t.Helper()
	h := &recHarness{
		alg: alg, nR: nR, nW: nW, passages: passages,
		r:      sim.New(sim.Config{Scheduler: sched.NewRandom(seed), MaxSteps: 500_000}),
		inCS:   make([]bool, nR+nW),
		counts: make([]int, nR+nW),
	}
	if err := alg.Init(h.r, nR, nW); err != nil {
		t.Fatalf("Init: %v", err)
	}
	h.scratch = h.r.Alloc("scratch", 0)
	for pid := 0; pid < nR+nW; pid++ {
		pid := pid
		h.r.AddProc(func(p sim.Proc) {
			for h.counts[pid] < passages {
				h.passage(p, pid)
			}
		})
	}
	if err := h.r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return h
}

func (h *recHarness) enter(p sim.Proc, pid int) {
	if pid < h.nR {
		h.alg.ReaderEnter(p, pid)
	} else {
		h.alg.WriterEnter(p, pid-h.nR)
	}
}

func (h *recHarness) exit(p sim.Proc, pid int) {
	if pid < h.nR {
		h.alg.ReaderExit(p, pid)
	} else {
		h.alg.WriterExit(p, pid-h.nR)
	}
}

// check records a violation if any conflicting process is marked in-CS.
func (h *recHarness) check(pid int) {
	writer := pid >= h.nR
	for q := range h.inCS {
		if q == pid || !h.inCS[q] {
			continue
		}
		if writer || q >= h.nR {
			h.violations++
		}
	}
}

// csBody is the critical section: occupancy check, mark, one shared step,
// unmark. The single step gives crashes a landing point inside the CS.
func (h *recHarness) csBody(p sim.Proc, pid int) {
	h.check(pid)
	h.inCS[pid] = true
	p.Read(h.scratch)
	h.inCS[pid] = false
}

func (h *recHarness) passage(p sim.Proc, pid int) {
	p.Section(memmodel.SecEntry)
	h.enter(p, pid)
	p.Section(memmodel.SecCS)
	h.csBody(p, pid)
	p.Section(memmodel.SecExit)
	h.exit(p, pid)
	p.Section(memmodel.SecRemainder)
	h.counts[pid]++
}

// recoveryProg is the program a restarted incarnation of pid runs: recovery
// section, then the continuation the verdict prescribes, then the remaining
// passages.
func (h *recHarness) recoveryProg(pid int) sim.Program {
	return func(p sim.Proc) {
		p.Section(memmodel.SecRecover)
		var rec memmodel.Recovery
		if pid < h.nR {
			rec = h.alg.ReaderRecover(p, pid)
		} else {
			rec = h.alg.WriterRecover(p, pid-h.nR)
		}
		switch rec {
		case memmodel.RecoverCS:
			p.Section(memmodel.SecCS)
			h.csBody(p, pid)
			p.Section(memmodel.SecExit)
			h.exit(p, pid)
			p.Section(memmodel.SecRemainder)
			h.counts[pid]++
		case memmodel.RecoverDone:
			p.Section(memmodel.SecRemainder)
			h.counts[pid]++
		case memmodel.RecoverAbort:
			p.Section(memmodel.SecRemainder)
		}
		for h.counts[pid] < h.passages {
			h.passage(p, pid)
		}
	}
}

// complete reports whether every process finished all its passages.
func (h *recHarness) complete() bool {
	for _, c := range h.counts {
		if c != h.passages {
			return false
		}
	}
	return true
}

// crashRestart steps `after` times, then crashes victim and immediately
// restarts it with the recovery program. It reports false if the victim
// finished first.
func (h *recHarness) crashRestart(t *testing.T, victim, after int) bool {
	t.Helper()
	for i := 0; i < after; i++ {
		progressed, err := h.r.Step()
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if !progressed {
			break
		}
	}
	if !h.r.Alive(victim) {
		return false
	}
	if err := h.r.Crash(victim); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	// A crash in the CS leaves the victim's mark set for its successor.
	if err := h.r.Restart(victim, h.recoveryProg(victim)); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	return true
}

// referenceSteps runs the crash-free execution to completion and returns
// its step count.
func referenceSteps(t *testing.T, build func() memmodel.RecoverableAlgorithm, nR, nW, passages int, seed int64) int {
	t.Helper()
	h := newRecHarness(t, build(), nR, nW, passages, seed)
	defer h.r.Close()
	if err := h.r.Run(); err != nil {
		t.Fatalf("reference Run: %v", err)
	}
	if h.violations != 0 || !h.complete() {
		t.Fatalf("reference run broken: %d violations, complete=%v", h.violations, h.complete())
	}
	return h.r.StepCount()
}

// sweepRecoverable crashes `victim` at every `stride`-th step of the
// execution (plus optionally a second crash of the same victim shortly
// after its restart) and requires zero ME violations and full passage
// completion in every configuration.
func sweepRecoverable(t *testing.T, build func() memmodel.RecoverableAlgorithm, nR, nW, passages int, seed int64, victim, stride int, recrash bool) {
	t.Helper()
	steps := referenceSteps(t, build, nR, nW, passages, seed)
	applied := 0
	for k := 0; k <= steps; k += stride {
		seconds := []int{-1}
		if recrash {
			seconds = []int{0, 1, 2, 3}
		}
		for _, j := range seconds {
			h := newRecHarness(t, build(), nR, nW, passages, seed)
			if !h.crashRestart(t, victim, k) {
				h.r.Close()
				continue
			}
			if j >= 0 {
				h.crashRestart(t, victim, j)
			}
			if err := h.r.Run(); err != nil {
				t.Fatalf("victim=%d crash=%d second=%d: Run: %v", victim, k, j, err)
			}
			if h.violations != 0 {
				t.Errorf("victim=%d crash=%d second=%d: %d ME violations", victim, k, j, h.violations)
			}
			if !h.complete() {
				t.Errorf("victim=%d crash=%d second=%d: incomplete passages %v", victim, k, j, h.counts)
			}
			applied++
			h.r.Close()
		}
	}
	if applied == 0 {
		t.Fatal("sweep never applied a crash")
	}
}

func buildCentralized() memmodel.RecoverableAlgorithm { return NewCentralized() }
func buildAFLog() memmodel.RecoverableAlgorithm       { return NewAF(core.FLog) }
func buildAFOne() memmodel.RecoverableAlgorithm       { return NewAF(core.FOne) }

func TestCentralizedNoCrash(t *testing.T) {
	for _, seed := range []int64{1, 5, 9} {
		h := newRecHarness(t, NewCentralized(), 3, 2, 3, seed)
		if err := h.r.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if h.violations != 0 || !h.complete() {
			t.Errorf("seed %d: %d violations, complete=%v", seed, h.violations, h.complete())
		}
		h.r.Close()
	}
}

func TestAFNoCrash(t *testing.T) {
	for _, build := range []func() memmodel.RecoverableAlgorithm{buildAFLog, buildAFOne} {
		for _, seed := range []int64{2, 7} {
			h := newRecHarness(t, build(), 4, 2, 2, seed)
			if err := h.r.Run(); err != nil {
				t.Fatalf("%s seed %d: Run: %v", h.alg.Name(), seed, err)
			}
			if h.violations != 0 || !h.complete() {
				t.Errorf("%s seed %d: %d violations, complete=%v", h.alg.Name(), seed, h.violations, h.complete())
			}
			h.r.Close()
		}
	}
}

func TestCentralizedCrashSweepReader(t *testing.T) {
	sweepRecoverable(t, buildCentralized, 2, 1, 2, 3, 0, 1, false)
}

func TestCentralizedCrashSweepWriter(t *testing.T) {
	sweepRecoverable(t, buildCentralized, 2, 2, 2, 3, 2, 1, false)
}

func TestCentralizedRecrashRecovery(t *testing.T) {
	sweepRecoverable(t, buildCentralized, 2, 2, 2, 3, 2, 2, true)
}

func TestAFCrashSweepReader(t *testing.T) {
	sweepRecoverable(t, buildAFLog, 3, 1, 2, 11, 0, 3, false)
}

func TestAFCrashSweepWriter(t *testing.T) {
	sweepRecoverable(t, buildAFLog, 3, 2, 2, 11, 3, 3, false)
}

func TestAFRecrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("quadratic sweep")
	}
	sweepRecoverable(t, buildAFLog, 2, 2, 2, 11, 2, 5, true)
	sweepRecoverable(t, buildAFOne, 2, 2, 2, 11, 0, 5, true)
}

func TestCentralizedInitLimits(t *testing.T) {
	r := sim.New(sim.Config{})
	if err := NewCentralized().Init(r, 49, 1); err == nil {
		t.Error("Init with 49 readers did not error")
	}
	r2 := sim.New(sim.Config{})
	if err := NewCentralized().Init(r2, 1, 40000); err == nil {
		t.Error("Init with 40000 writers did not error")
	}
}

func TestAFInitTwice(t *testing.T) {
	r := sim.New(sim.Config{})
	a := NewAF(core.FLog)
	if err := a.Init(r, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.Init(r, 2, 1); err == nil {
		t.Error("second Init did not error")
	}
}

// TestNames pins the registry-facing names.
func TestNames(t *testing.T) {
	if got := NewCentralized().Name(); got != "r-centralized" {
		t.Errorf("Name = %q", got)
	}
	if got := NewAF(core.FLog).Name(); got != "r-af-log" {
		t.Errorf("Name = %q", got)
	}
}
