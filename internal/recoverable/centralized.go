// Package recoverable implements reader-writer locks for the
// crash-recovery failure model (memmodel.RecoverableAlgorithm): a process
// may crash anywhere in a passage, lose all local state, and restart as a
// fresh incarnation whose recovery section inspects per-process
// announcement variables in shared memory and either completes the
// interrupted passage or rolls it back — the Golab–Ramaraju recoverable
// mutual exclusion structure the RME literature builds on (Chan–Woelfel).
//
// Two locks are provided:
//
//   - Centralized: a recoverable version of the folklore single-word lock.
//     The state word gives every reader its own presence bit and writers a
//     CAS-claimed owner field, so a restarted incarnation can decide "was I
//     in?" from one read. The per-process announcement slot records which
//     passage stage the process was executing.
//   - AF: a recoverable member of the paper's A_f family, with repair
//     paths for the group counters (f-array leaf version tags decide
//     whether an interrupted Add applied), the writer signal words (an
//     interrupted signaling round is abandoned by advancing WSEQ, exactly
//     like the abortable writer entry), and the writer tournament
//     (mutex.RTournament's progress-word repair).
package recoverable

import (
	"fmt"

	"repro/internal/memmodel"
)

// Centralized state-word layout: readers 0..47 own presence bits 0..47;
// bits 48..62 hold the writer owner field (wid+1, 0 = no writer).
const (
	centralReaderBits = 48
	centralReaderMask = (uint64(1) << centralReaderBits) - 1
	centralOwnerShift = centralReaderBits
	centralOwnerMask  = uint64(1<<15-1) << centralOwnerShift
)

// Announcement stages for the centralized lock. Announcement slots are
// single-writer (only the owning process writes its slot), so plain reads
// and writes suffice.
const (
	annIdle     = 0 // no passage in progress
	annEntering = 1 // registering: the presence bit / owner claim is in flight
	annInCS     = 2 // registered; in (or entitled to) the critical section
	annExiting  = 3 // deregistering: the release CAS is in flight
)

// Centralized is the recoverable single-word reader-writer lock. See the
// package comment. Populations are capped by the word layout: at most 48
// readers and 32766 writers.
type Centralized struct {
	state memmodel.Var
	rann  []memmodel.Var // rann[rid]: reader rid's announcement slot
	wann  []memmodel.Var // wann[wid]: writer wid's announcement slot
}

var _ memmodel.RecoverableAlgorithm = (*Centralized)(nil)

// NewCentralized returns an uninitialized recoverable centralized lock.
func NewCentralized() *Centralized { return &Centralized{} }

// Name implements memmodel.Algorithm.
func (c *Centralized) Name() string { return "r-centralized" }

// Init implements memmodel.Algorithm.
func (c *Centralized) Init(a memmodel.Allocator, nReaders, nWriters int) error {
	if nReaders > centralReaderBits {
		return fmt.Errorf("recoverable: centralized supports at most %d readers, got %d", centralReaderBits, nReaders)
	}
	if lim := int(centralOwnerMask >> centralOwnerShift); nWriters >= lim {
		return fmt.Errorf("recoverable: centralized supports at most %d writers, got %d", lim-1, nWriters)
	}
	c.state = a.Alloc("state", 0)
	c.rann = a.AllocN("RANN", max(nReaders, 1), annIdle)
	c.wann = a.AllocN("WANN", max(nWriters, 1), annIdle)
	return nil
}

func (c *Centralized) readerBit(rid int) uint64 { return uint64(1) << rid }
func (c *Centralized) ownerWord(wid int) uint64 {
	return uint64(wid+1) << centralOwnerShift
}

// ReaderEnter announces, then spins until no writer owns the lock and
// registers the reader's presence bit with a CAS. The announcement is
// written before the first shared step of the registration, so after a
// crash the bit's value alone decides whether the entry took effect.
func (c *Centralized) ReaderEnter(p memmodel.Proc, rid int) {
	p.Write(c.rann[rid], annEntering)
	bit := c.readerBit(rid)
	for {
		s := p.Await(c.state, func(x uint64) bool { return x&centralOwnerMask == 0 })
		if _, ok := p.CAS(c.state, s, s|bit); ok {
			break
		}
	}
	p.Write(c.rann[rid], annInCS)
}

// ReaderExit clears the presence bit with a CAS retry loop.
func (c *Centralized) ReaderExit(p memmodel.Proc, rid int) {
	p.Write(c.rann[rid], annExiting)
	c.readerClear(p, rid)
	p.Write(c.rann[rid], annIdle)
}

func (c *Centralized) readerClear(p memmodel.Proc, rid int) {
	bit := c.readerBit(rid)
	for {
		s := p.Read(c.state)
		if s&bit == 0 {
			return // already clear (a re-run after a crash mid-exit)
		}
		if _, ok := p.CAS(c.state, s, s&^bit); ok {
			return
		}
	}
}

// WriterEnter claims the owner field with a CAS, then drains readers.
func (c *Centralized) WriterEnter(p memmodel.Proc, wid int) {
	p.Write(c.wann[wid], annEntering)
	own := c.ownerWord(wid)
	for {
		s := p.Await(c.state, func(x uint64) bool { return x&centralOwnerMask == 0 })
		if _, ok := p.CAS(c.state, s, s|own); ok {
			break
		}
	}
	// Drain: readers cannot register while the owner field is set, so the
	// reader bits only fall.
	p.Await(c.state, func(x uint64) bool { return x&centralReaderMask == 0 })
	p.Write(c.wann[wid], annInCS)
}

// WriterExit releases the owner field.
func (c *Centralized) WriterExit(p memmodel.Proc, wid int) {
	p.Write(c.wann[wid], annExiting)
	// No readers are registered and no other writer can claim while the
	// field holds our id, so a single CAS releases; a failed CAS means a
	// crashed predecessor already released (re-run during recovery).
	p.CAS(c.state, c.ownerWord(wid), 0)
	p.Write(c.wann[wid], annIdle)
}

// ReaderRecover implements memmodel.RecoverableAlgorithm. One read of the
// state word decides every case: the announcement stage says which step was
// in flight, the presence bit says whether it took effect.
func (c *Centralized) ReaderRecover(p memmodel.Proc, rid int) memmodel.Recovery {
	bit := c.readerBit(rid)
	switch ann := p.Read(c.rann[rid]); ann {
	case annIdle:
		return memmodel.RecoverAbort
	case annEntering:
		if p.Read(c.state)&bit != 0 {
			// The registration CAS applied: the dead incarnation was in.
			p.Write(c.rann[rid], annInCS)
			return memmodel.RecoverCS
		}
		p.Write(c.rann[rid], annIdle)
		return memmodel.RecoverAbort
	case annInCS:
		if p.Read(c.state)&bit != 0 {
			return memmodel.RecoverCS
		}
		// Unreachable in a correct history (the bit persists until exit);
		// tolerate by rolling back.
		p.Write(c.rann[rid], annIdle)
		return memmodel.RecoverAbort
	case annExiting:
		c.readerClear(p, rid) // finish the interrupted deregistration
		p.Write(c.rann[rid], annIdle)
		return memmodel.RecoverDone
	default:
		panic(fmt.Sprintf("recoverable: reader %d has corrupt announcement %d", rid, ann))
	}
}

// WriterRecover implements memmodel.RecoverableAlgorithm.
func (c *Centralized) WriterRecover(p memmodel.Proc, wid int) memmodel.Recovery {
	own := c.ownerWord(wid)
	switch ann := p.Read(c.wann[wid]); ann {
	case annIdle:
		return memmodel.RecoverAbort
	case annEntering:
		if p.Read(c.state)&centralOwnerMask == own {
			// The claim CAS applied: finish the entry (drain readers).
			p.Await(c.state, func(x uint64) bool { return x&centralReaderMask == 0 })
			p.Write(c.wann[wid], annInCS)
			return memmodel.RecoverCS
		}
		p.Write(c.wann[wid], annIdle)
		return memmodel.RecoverAbort
	case annInCS:
		if p.Read(c.state)&centralOwnerMask == own {
			return memmodel.RecoverCS
		}
		p.Write(c.wann[wid], annIdle)
		return memmodel.RecoverAbort
	case annExiting:
		// Redo the release; a no-op if the dead incarnation's CAS applied
		// (the field is 0 or already claimed by another writer).
		p.CAS(c.state, own, 0)
		p.Write(c.wann[wid], annIdle)
		return memmodel.RecoverDone
	default:
		panic(fmt.Sprintf("recoverable: writer %d has corrupt announcement %d", wid, ann))
	}
}

// Props implements memmodel.Algorithm.
func (c *Centralized) Props() memmodel.Props {
	return memmodel.Props{
		UsesCAS:            true,
		ConcurrentEntering: true,
		PredictedReaderRMR: func(n, _ int) float64 { return float64(n) },
		PredictedWriterRMR: func(n, m int) float64 { return float64(n + m) },
	}
}
