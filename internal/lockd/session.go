package lockd

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"sync"
	"time"

	"repro/internal/lockd/durable"
	"repro/internal/lockd/wire"
)

// responseCacheCap bounds the per-session at-most-once response cache. A
// retransmit older than the cache window re-executes its operation; with
// monotonically increasing client seqs and clients that give up on a
// request long before 512 newer ones complete, that window is never hit in
// practice.
const responseCacheCap = 512

// holdKey identifies one hold of a session: a (lock name, mode) pair. A
// session holds a given key in a given mode at most once.
type holdKey struct {
	key  string
	mode string
}

// session is the server-side state of one client connection's lease. A
// session is created by hello, renewed by every subsequent request, and
// torn down either by a clean bye or by the lease sweeper once its TTL
// passes without renewal — at which point all its holds are revoked and
// all its queued waiters cancelled, so a crashed client can never wedge a
// lock (crash-stop ↔ lease expiry).
//
// Lock ordering: shard.mu may be held when taking session.mu, never the
// reverse. The sweeper therefore snapshots holds and waiters under
// session.mu first, releases it, and then revokes through the shards.
type session struct {
	id   string
	slot int // stable small index used by the shard fairness monitors

	mu      sync.Mutex
	ttl     time.Duration        // immutable after create/restore
	expiry  time.Time            //rwguard:mu
	expired bool                 //rwguard:mu
	holds   map[holdKey]struct{} //rwguard:mu
	waiters map[*waiter]struct{} //rwguard:mu

	// At-most-once bookkeeping: responses caches completed requests by
	// seq so a retransmit is answered without re-executing; inflight
	// tracks seqs still being processed so their retransmits are dropped.
	// maxSeq is the highest seq ever begun — a resuming client continues
	// its numbering above it, so a fresh request can never collide with a
	// cached or in-flight seq from before the reconnect.
	inflight  map[uint64]struct{}       //rwguard:mu
	responses map[uint64]*wire.Response //rwguard:mu
	order     []uint64                  //rwguard:mu FIFO of cached seqs, for eviction
	maxSeq    uint64                    //rwguard:mu

	// durableExpiry is the lease deadline last written to the WAL; renew
	// records are coalesced to one per TTL/4 of advance, so a replayed
	// deadline is stale by at most a quarter lease.
	durableExpiry time.Time //rwguard:mu
}

// renew extends the lease by its TTL; it fails once the session expired.
// The second result asks the caller to append a durable renew record: it
// fires when the deadline advanced at least TTL/4 past the last one
// logged, bounding WAL traffic to four renew records per lease period no
// matter how chatty the client is.
func (s *session) renew(now time.Time) (ok, logRenew bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.expired {
		return false, false
	}
	s.expiry = now.Add(s.ttl)
	if s.expiry.Sub(s.durableExpiry) >= s.ttl/4 {
		s.durableExpiry = s.expiry
		return true, true
	}
	return true, false
}

// expiryUnixNano returns the current lease deadline for durable records.
func (s *session) expiryUnixNano() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.expiry.UnixNano()
}

// addHold records a hold; it fails if the session already expired (the
// caller must then not grant) or already holds key in that mode.
func (s *session) addHold(h holdKey) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.expired {
		return false
	}
	if _, dup := s.holds[h]; dup {
		return false
	}
	s.holds[h] = struct{}{}
	return true
}

func (s *session) removeHold(h holdKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.holds, h)
}

func (s *session) holdsKey(h holdKey) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.holds[h]
	return ok
}

// addWaiter registers a queued waiter; it fails once the session expired.
func (s *session) addWaiter(w *waiter) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.expired {
		return false
	}
	s.waiters[w] = struct{}{}
	return true
}

func (s *session) removeWaiter(w *waiter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.waiters, w)
}

// begin starts processing seq. It returns the cached response when seq
// already completed (resend it), drop when seq is still in flight (the
// original will answer), and process when the request is new.
func (s *session) begin(seq uint64) (cached *wire.Response, drop, process bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq > s.maxSeq {
		s.maxSeq = seq
	}
	if resp, ok := s.responses[seq]; ok {
		return resp, false, false
	}
	if _, ok := s.inflight[seq]; ok {
		return nil, true, false
	}
	s.inflight[seq] = struct{}{}
	return nil, false, true
}

// seqHighWater returns the highest seq the session ever began (resume
// handshake).
func (s *session) seqHighWater() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxSeq
}

// finish completes seq with resp, entering it into the bounded response
// cache.
func (s *session) finish(seq uint64, resp *wire.Response) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.inflight, seq)
	s.responses[seq] = resp
	s.order = append(s.order, seq)
	for len(s.order) > responseCacheCap {
		delete(s.responses, s.order[0])
		s.order = s.order[1:]
	}
}

// snapshotForRevoke marks the session expired and returns its holds and
// waiters at that instant. After it returns, addHold/addWaiter/renew all
// fail, so no new state can attach to the session while the sweeper
// revokes the snapshot through the shards.
func (s *session) snapshotForRevoke() (holds []holdKey, waiters []*waiter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expired = true
	for h := range s.holds {
		holds = append(holds, h)
	}
	for w := range s.waiters {
		waiters = append(waiters, w)
	}
	return holds, waiters
}

func (s *session) isExpired() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.expired
}

// sessionTable holds every live session and drives lease expiry.
type sessionTable struct {
	mu       sync.Mutex
	byID     map[string]*session //rwguard:mu
	nextSlot int                 //rwguard:mu
}

func newSessionTable() *sessionTable {
	return &sessionTable{byID: map[string]*session{}}
}

// create mints a session with the given (already clamped) TTL.
func (t *sessionTable) create(ttl time.Duration, now time.Time) *session {
	id := make([]byte, 8)
	if _, err := rand.Read(id); err != nil {
		panic("lockd: session id entropy unavailable: " + err.Error())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &session{
		id:        hex.EncodeToString(id),
		slot:      t.nextSlot,
		ttl:       ttl,
		expiry:    now.Add(ttl),
		holds:     map[holdKey]struct{}{},
		waiters:   map[*waiter]struct{}{},
		inflight:  map[uint64]struct{}{},
		responses: map[uint64]*wire.Response{},
	}
	s.durableExpiry = s.expiry
	t.nextSlot++
	t.byID[s.id] = s
	return s
}

// lookup returns the live session with the given id, if any (hello
// resume).
func (t *sessionTable) lookup(id string) *session {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.byID[id]
}

// restore rebuilds the table from recovered durable state. Holds and
// queued entries were already fenced by the epoch bump; what survives a
// restart is the lease itself (with its persisted absolute expiry, so the
// sweeper re-arms exactly where it left off), the fairness slot, and the
// at-most-once response cache.
func (t *sessionTable) restore(st *durable.State) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if st.NextSlot > t.nextSlot {
		t.nextSlot = st.NextSlot
	}
	for _, id := range st.SessionIDs() {
		ss := st.Sessions[id]
		s := &session{
			id:        id,
			slot:      ss.Slot,
			ttl:       time.Duration(ss.TTLMS) * time.Millisecond,
			expiry:    time.Unix(0, ss.Expiry),
			holds:     map[holdKey]struct{}{},
			waiters:   map[*waiter]struct{}{},
			inflight:  map[uint64]struct{}{},
			responses: map[uint64]*wire.Response{},
			maxSeq:    ss.MaxSeq,
		}
		s.durableExpiry = s.expiry
		for _, cr := range ss.Resps {
			var resp wire.Response
			if err := json.Unmarshal(cr.Resp, &resp); err != nil {
				continue // an unreadable cached response degrades to re-execution
			}
			s.responses[cr.Seq] = &resp
			s.order = append(s.order, cr.Seq)
		}
		t.byID[id] = s
	}
}

// remove deletes a session (clean bye).
func (t *sessionTable) remove(s *session) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.byID, s.id)
}

func (t *sessionTable) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byID)
}

// expire removes and returns every session whose lease deadline passed.
// The returned sessions are already marked expired; the caller revokes
// their holds and waiters through the shards.
func (t *sessionTable) expire(now time.Time) []*session {
	t.mu.Lock()
	var out []*session
	for _, s := range t.byID {
		s.mu.Lock()
		dead := !s.expired && now.After(s.expiry)
		if dead {
			// Mark immediately so a late renewal cannot slip in between
			// the scan and the revocation pass.
			s.expired = true
		}
		s.mu.Unlock()
		if dead {
			out = append(out, s)
			delete(t.byID, s.id)
		}
	}
	t.mu.Unlock()
	return out
}
