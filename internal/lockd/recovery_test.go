package lockd

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/lockd/durable"
)

// startDurable builds and serves a durable server on addr, waiting for
// recovery install (the epoch bump) to finish.
func startDurable(t *testing.T, addr, dir string) *Server {
	t.Helper()
	srv, err := New(Config{
		Addr:          addr,
		DataDir:       dir,
		Fsync:         "never", // kill -9 safety does not depend on fsync; keep the test fast
		Shards:        4,
		KeysPerShard:  64,
		DefaultTTL:    400 * time.Millisecond,
		MinTTL:        50 * time.Millisecond,
		SweepInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	go srv.Serve() //nolint:errcheck // exercised paths close cleanly or crash on purpose
	select {
	case <-srv.Ready():
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	return srv
}

// TestRecoveringStateServed holds recovery install at the gate and checks
// that the server answers (typed) instead of hanging, then serves once
// install completes.
func TestRecoveringStateServed(t *testing.T) {
	srv, err := New(Config{Addr: "127.0.0.1:0", DataDir: t.TempDir(), Fsync: "never"})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	srv.installGate = gate
	go srv.Serve() //nolint:errcheck // closed at test end
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err = Dial(ctx, srv.Addr().String(), Options{})
	if !errors.Is(err, ErrRecovering) {
		t.Fatalf("dial during recovery: got %v, want ErrRecovering", err)
	}

	close(gate)
	select {
	case <-srv.Ready():
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready after gate opened")
	}
	c, err := Dial(context.Background(), srv.Addr().String(), Options{})
	if err != nil {
		t.Fatalf("dial after recovery: %v", err)
	}
	defer c.Close()
	if c.Epoch() != 1 {
		t.Fatalf("fresh data dir epoch = %d, want 1", c.Epoch())
	}
}

// TestEpochFencingAcrossRestart is the core no-double-grant story: a
// write hold granted before a kill -9 is fenced by the restart — the
// resumed session keeps its lease and seq numbering but not the hold, a
// release quoting the stale token gets ErrEpochFenced, and the
// re-acquired grant's token strictly dominates the old one.
func TestEpochFencingAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	srv := startDurable(t, "127.0.0.1:0", dir)
	addr := srv.Addr().String()

	c, err := Dial(context.Background(), addr, Options{TTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Abandon()
	if c.Epoch() != 1 {
		t.Fatalf("first-boot epoch = %d, want 1", c.Epoch())
	}
	h, err := c.Acquire(context.Background(), "k", ModeWrite, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	oldTok := h.Passage
	if durable.TokenEpoch(oldTok) != 1 {
		t.Fatalf("pre-crash token epoch = %d, want 1", durable.TokenEpoch(oldTok))
	}
	oldSession := c.SessionID()

	srv.Crash()
	srv2 := startDurable(t, addr, dir)
	defer srv2.Close()
	if srv2.Epoch() != 2 {
		t.Fatalf("post-restart epoch = %d, want 2", srv2.Epoch())
	}

	c2, err := Dial(context.Background(), addr, Options{ResumeSession: oldSession})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if !c2.Resumed() {
		t.Fatal("session did not resume across the restart")
	}
	if c2.SessionID() != oldSession {
		t.Fatalf("resumed session id %s, want %s", c2.SessionID(), oldSession)
	}
	if c2.Epoch() != 2 {
		t.Fatalf("resumed client epoch = %d, want 2", c2.Epoch())
	}

	// The stale holder must be fenced, not silently accepted.
	err = c2.Release(context.Background(), "k", ModeWrite, oldTok)
	if !errors.Is(err, ErrEpochFenced) {
		t.Fatalf("stale-token release: got %v, want ErrEpochFenced", err)
	}

	// The hold is gone server-side, so the same key grants again — with a
	// strictly dominating token.
	h2, err := c2.Acquire(context.Background(), "k", ModeWrite, time.Second)
	if err != nil {
		t.Fatalf("re-acquire after fencing: %v", err)
	}
	if h2.Passage <= oldTok {
		t.Fatalf("post-restart token %#x does not dominate pre-crash token %#x", h2.Passage, oldTok)
	}
	if durable.TokenEpoch(h2.Passage) != 2 {
		t.Fatalf("post-restart token epoch = %d, want 2", durable.TokenEpoch(h2.Passage))
	}
	if err := h2.Release(context.Background()); err != nil {
		t.Fatalf("fresh release: %v", err)
	}

	// Fencing shows up in the ledger counters.
	st := srv2.Stats()
	var fencedW uint64
	for _, sh := range st.Shards {
		fencedW += sh.FencedWrite
	}
	if fencedW != 1 {
		t.Fatalf("fenced-write counter = %d, want 1", fencedW)
	}
	if st.Epoch != 2 {
		t.Fatalf("stats epoch = %d, want 2", st.Epoch)
	}
}

// TestResumeContinuesSeqNumbering: the resumed session's MaxSeq keeps a
// reconnecting client's seqs above everything it used before the crash,
// so the restored at-most-once response cache can never answer a fresh
// request.
func TestResumeContinuesSeqNumbering(t *testing.T) {
	dir := t.TempDir()
	srv := startDurable(t, "127.0.0.1:0", dir)
	addr := srv.Addr().String()

	c, err := Dial(context.Background(), addr, Options{TTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Abandon()
	var lastSeq uint64
	for i := 0; i < 5; i++ {
		h, aerr := c.Acquire(context.Background(), fmt.Sprintf("k%d", i), ModeWrite, time.Second)
		if aerr != nil {
			t.Fatal(aerr)
		}
		if rerr := h.Release(context.Background()); rerr != nil {
			t.Fatal(rerr)
		}
	}
	lastSeq = c.seq.Load()
	sid := c.SessionID()

	srv.Crash()
	srv2 := startDurable(t, addr, dir)
	defer srv2.Close()

	c2, err := Dial(context.Background(), addr, Options{ResumeSession: sid})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if !c2.Resumed() {
		t.Fatal("session did not resume")
	}
	if got := c2.seq.Load(); got < lastSeq {
		t.Fatalf("resumed client seq %d below pre-crash high water %d", got, lastSeq)
	}
	// And the resumed session still works end to end.
	h, err := c2.Acquire(context.Background(), "fresh", ModeWrite, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Release(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestLedgerAcrossServerCrashes is the chaos gate: concurrent write
// traffic through three kill -9 / restart cycles on one data directory.
// Required invariants: every observed fencing token is globally unique
// per key (zero duplicated passages), the reconciled ledger loses nothing
// (every server-side write grant is observed or revoked/fenced), and the
// epoch increases by exactly one per restart.
func TestLedgerAcrossServerCrashes(t *testing.T) {
	dir := t.TempDir()
	srv := startDurable(t, "127.0.0.1:0", dir)
	addr := srv.Addr().String()

	var (
		mu       sync.Mutex
		tokens   = map[string]map[uint64]int{}
		dups     int
		observed uint64
	)
	record := func(key string, tok uint64) {
		mu.Lock()
		defer mu.Unlock()
		if tokens[key] == nil {
			tokens[key] = map[uint64]int{}
		}
		tokens[key][tok]++
		if tokens[key][tok] > 1 {
			dups++
		}
		observed++
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	const workers = 8
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", id%4)
			var c *Client
			defer func() {
				if c != nil {
					c.Abandon()
				}
			}()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if c == nil {
					ctx, cancel := context.WithTimeout(context.Background(), time.Second)
					nc, err := Dial(ctx, addr, Options{TTL: 300 * time.Millisecond})
					cancel()
					if err != nil {
						time.Sleep(10 * time.Millisecond)
						continue
					}
					c = nc
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				h, err := c.Acquire(ctx, key, ModeWrite, 200*time.Millisecond)
				if err == nil {
					record(key, h.Passage)
					h.Release(ctx) //nolint:errcheck // lost acks are revoked by lease expiry
					cancel()
					continue
				}
				cancel()
				if errors.Is(err, ErrDisconnected) || errors.Is(err, ErrSessionExpired) || errors.Is(err, ErrRecovering) {
					c.Abandon()
					c = nil
					time.Sleep(10 * time.Millisecond)
				}
			}
		}(i)
	}

	const crashes = 3
	for i := 0; i < crashes; i++ {
		time.Sleep(250 * time.Millisecond)
		srv.Crash()
		srv = startDurable(t, addr, dir)
		want := uint64(2 + i)
		if got := srv.Epoch(); got != want {
			t.Errorf("epoch after crash %d = %d, want %d", i+1, got, want)
		}
	}
	time.Sleep(250 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Let in-flight lease revocations settle before reconciling.
	time.Sleep(600 * time.Millisecond)
	st := srv.Stats()
	srv.Close()

	var grants, revokedW, fencedW uint64
	for _, sh := range st.Shards {
		grants += sh.WriteGrants
		revokedW += sh.RevokedWrite
		fencedW += sh.FencedWrite
	}
	mu.Lock()
	defer mu.Unlock()
	if dups != 0 {
		t.Fatalf("%d duplicated write passages across %d crashes", dups, crashes)
	}
	var unique uint64
	for _, m := range tokens {
		unique += uint64(len(m))
	}
	lost := int64(grants) - int64(unique) - int64(revokedW)
	if lost > 0 {
		t.Fatalf("ledger lost %d write passages (grants=%d observed-unique=%d revoked-write=%d fenced-write=%d)",
			lost, grants, unique, revokedW, fencedW)
	}
	if observed == 0 {
		t.Fatal("no passages completed under chaos")
	}
	if st.Epoch != uint64(1+crashes) {
		t.Fatalf("final epoch = %d, want %d", st.Epoch, 1+crashes)
	}
	t.Logf("chaos gate: grants=%d unique-observed=%d revoked-write=%d fenced-write=%d epoch=%d",
		grants, unique, revokedW, fencedW, st.Epoch)
}
