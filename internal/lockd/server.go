// Package lockd implements rwlockd: a fault-tolerant named reader-writer
// lock service and its client. The failure model mirrors the simulator's
// (see DESIGN.md): a crash-stopped client is a session whose lease
// expires, a fail-slow client is one whose heartbeats arrive late, and
// recovery is reconnect-and-reacquire under a fresh session. Locks are
// sharded namespaces of grant tables; per-key write-passage counters live
// on the native memmodel backend so every write grant carries a fencing
// token, and per-key fairness is measured live by
// fairness.LockedBypassMonitor.
package lockd

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lockd/durable"
	"repro/internal/lockd/wire"
)

// Config parameterizes a Server. Zero values select the defaults.
type Config struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for an ephemeral
	// test port).
	Addr string
	// Shards is the number of lock-namespace partitions (default 8).
	Shards int
	// KeysPerShard sizes each shard's native-backend passage-counter
	// arena (default 512). Keys hash onto the arena; sharing a word
	// preserves per-key token uniqueness.
	KeysPerShard int
	// DefaultTTL is the session lease granted when hello does not request
	// one; MinTTL/MaxTTL clamp requested TTLs (defaults 5s, 50ms, 60s).
	DefaultTTL, MinTTL, MaxTTL time.Duration
	// SweepInterval is the lease-expiry scan period (default 25ms).
	SweepInterval time.Duration
	// MaxQueue bounds each named lock's wait queue; an acquire beyond it
	// is shed with ErrShed instead of queued (default 128).
	MaxQueue int
	// MaxWait clamps the server-side acquire deadline (default 30s).
	MaxWait time.Duration
	// DataDir, when set, makes the server durable: service state (leases,
	// holds, fencing counters, response caches) is logged to a WAL plus
	// periodic snapshots under this directory, and a restart replays them,
	// bumps the server epoch, and fences every pre-crash hold. Empty means
	// in-memory only (epoch pinned at 1).
	DataDir string
	// Fsync selects the WAL sync policy for a durable server: "always",
	// "interval" (default), or "never"; FsyncInterval is the background
	// sync period under "interval" (default 5ms).
	Fsync         string
	FsyncInterval time.Duration
	// SnapshotEvery is the number of WAL records between snapshot
	// rotations (default 4096).
	SnapshotEvery int
	// Logf, when set, receives server event logs.
	Logf func(format string, args ...any)
}

func (c *Config) applyDefaults() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.KeysPerShard <= 0 {
		c.KeysPerShard = 512
	}
	if c.DefaultTTL <= 0 {
		c.DefaultTTL = 5 * time.Second
	}
	if c.MinTTL <= 0 {
		c.MinTTL = 50 * time.Millisecond
	}
	if c.MaxTTL <= 0 {
		c.MaxTTL = 60 * time.Second
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = 25 * time.Millisecond
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 128
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Server is the rwlockd service.
type Server struct {
	cfg      Config
	ln       net.Listener
	shards   []*shard
	sessions *sessionTable
	draining atomic.Bool
	closed   atomic.Bool

	// Durability. store is nil for an in-memory server. epoch is the
	// server epoch folded into every fencing token; it is 1 in-memory and
	// bumped-on-every-restart for a durable server. ready gates request
	// service: until recovery install completes, every request is answered
	// CodeRecovering. readyCh closes when ready flips. installGate, when
	// non-nil, stalls the install goroutine until it is closed (test hook
	// for observing the recovering state).
	store       *durable.Store
	recovery    *durable.RecoveryInfo
	epoch       atomic.Uint64
	ready       atomic.Bool
	readyCh     chan struct{}
	installGate chan struct{}
	installErr  atomic.Pointer[error]

	wg        sync.WaitGroup // conn handlers + sweeper
	sweepStop chan struct{}

	connMu sync.Mutex
	conns  map[net.Conn]struct{} //rwguard:connMu
}

// New opens the data directory (when durable), binds the listener, and
// builds the shard tables; call Serve to start accepting. For a durable
// server, the WAL replay already ran when New returns (RecoveryInfo has
// the summary) but the recovered state is installed — and the epoch
// bumped — by Serve; until then requests are answered CodeRecovering.
func New(cfg Config) (*Server, error) {
	cfg.applyDefaults()
	s := &Server{
		cfg:       cfg,
		sessions:  newSessionTable(),
		sweepStop: make(chan struct{}),
		readyCh:   make(chan struct{}),
		conns:     map[net.Conn]struct{}{},
	}
	if cfg.DataDir != "" {
		pol := durable.FsyncPolicy("")
		if cfg.Fsync != "" {
			var err error
			if pol, err = durable.ParseFsyncPolicy(cfg.Fsync); err != nil {
				return nil, err
			}
		}
		store, info, err := durable.Open(cfg.DataDir, durable.Options{
			Fsync:         pol,
			FsyncInterval: cfg.FsyncInterval,
			SnapshotEvery: cfg.SnapshotEvery,
			Shards:        cfg.Shards,
			WordsPerShard: cfg.KeysPerShard,
		})
		if err != nil {
			return nil, err
		}
		s.store, s.recovery = store, info
	} else {
		s.epoch.Store(1)
		s.ready.Store(true)
		close(s.readyCh)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		if s.store != nil {
			s.store.Close() //nolint:errcheck // listener failure is the error that matters
		}
		return nil, fmt.Errorf("lockd: listen %s: %w", cfg.Addr, err)
	}
	s.ln = ln
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = newShard(s, i, cfg.KeysPerShard)
	}
	return s, nil
}

// RecoveryInfo returns the durable-recovery summary (nil for an in-memory
// server).
func (s *Server) RecoveryInfo() *durable.RecoveryInfo { return s.recovery }

// Epoch returns the server epoch. It is meaningful once Ready() closed
// (always, for an in-memory server).
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// Ready returns a channel that closes once the server is serving: for a
// durable server, after recovery install (epoch bump + state restore).
func (s *Server) Ready() <-chan struct{} { return s.readyCh }

// logAppend records one WAL record when the server is durable. An append
// failure (disk full, I/O error) is logged loudly and serving continues:
// availability wins, and safety survives the degradation — the next
// restart's epoch bump dominates any token whose grant record was lost.
func (s *Server) logAppend(rec *durable.Record) {
	if s.store == nil {
		return
	}
	if err := s.store.Append(rec); err != nil {
		s.cfg.Logf("WAL append failed (durability degraded): %v", err)
	}
}

// install finishes durable recovery: it durably bumps the epoch (fencing
// every replayed hold — the shadow apply clears them and counts them
// revoked+fenced), installs the post-bump state into the session table and
// shards, and flips ready. It runs once, from Serve.
func (s *Server) install() {
	if gate := s.installGate; gate != nil {
		<-gate
	}
	epoch, err := s.store.BumpEpoch()
	if err != nil {
		err = fmt.Errorf("lockd: recovery epoch bump: %w", err)
		s.installErr.Store(&err)
		s.cfg.Logf("%v", err)
		s.Close() //nolint:errcheck // the install error is the one reported
		return
	}
	st := s.store.State()
	s.sessions.restore(st)
	for i, sh := range s.shards {
		if i < len(st.Shards) {
			sh.restore(st.Shards[i])
		}
	}
	s.epoch.Store(epoch)
	s.ready.Store(true)
	close(s.readyCh)
	s.cfg.Logf("recovery complete: %d sessions restored, serving epoch %d", len(st.Sessions), epoch)
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// shardFor maps a key to its shard.
func (s *Server) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return s.shards[int(h.Sum32())%len(s.shards)]
}

// Serve runs the lease sweeper and the accept loop until Close. For a
// durable server it also kicks off recovery install; until that finishes,
// connections are accepted but every request is answered CodeRecovering.
// It returns nil on a clean shutdown, or the install error if recovery
// failed.
func (s *Server) Serve() error {
	if s.store != nil && !s.ready.Load() {
		// Outside the WaitGroup: a gated install must not deadlock Close.
		go s.install()
	}
	s.wg.Add(1)
	go s.sweepLoop()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			if s.closed.Load() {
				if ep := s.installErr.Load(); ep != nil {
					return *ep
				}
				return nil
			}
			return fmt.Errorf("lockd: accept: %w", err)
		}
		s.connMu.Lock()
		s.conns[c] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go s.handleConn(c)
	}
}

// sweepLoop periodically expires sessions whose lease lapsed, revoking
// their holds and cancelling their queued waiters. The interval is
// jittered ±25% per tick: after a restart every restored lease shares
// roughly the same deadline, and a fixed-phase sweeper would revoke them
// all in one burst — the jitter (and the per-session deadlines themselves)
// smears that revocation storm across sweeps.
func (s *Server) sweepLoop() {
	defer s.wg.Done()
	select {
	case <-s.sweepStop:
		return
	case <-s.readyCh:
		// No sweeping before recovery install: the table is empty until
		// restore, and restored leases must get their full remaining TTL.
	}
	for {
		d := time.Duration((0.75 + 0.5*rand.Float64()) * float64(s.cfg.SweepInterval))
		timer := time.NewTimer(d)
		select {
		case <-s.sweepStop:
			timer.Stop()
			return
		case now := <-timer.C:
			for _, sess := range s.sessions.expire(now) {
				s.revokeSession(sess, "lease expired")
			}
		}
	}
}

// revokeSession tears down an expired session: queued waiters get
// ErrRevoked, holds are released and their queues promoted. The expire
// record is logged first, so a crash mid-revocation replays as a
// completed expiry rather than a half-revoked session.
func (s *Server) revokeSession(sess *session, why string) {
	s.logAppend(&durable.Record{Type: durable.RecExpire, Session: sess.id})
	holds, waiters := sess.snapshotForRevoke()
	for _, w := range waiters {
		s.shardFor(w.ls.key).cancelWaiter(w, ErrRevoked)
	}
	for _, h := range holds {
		s.shardFor(h.key).revokeHold(sess, h.key, h.mode)
	}
	if len(holds) > 0 || len(waiters) > 0 {
		s.cfg.Logf("session %s: %s; revoked %d holds, %d waiters",
			sess.id, why, len(holds), len(waiters))
	}
}

// clampTTL applies the configured lease bounds to a requested TTL.
func (s *Server) clampTTL(ms int64) time.Duration {
	ttl := s.cfg.DefaultTTL
	if ms > 0 {
		ttl = time.Duration(ms) * time.Millisecond
	}
	if ttl < s.cfg.MinTTL {
		ttl = s.cfg.MinTTL
	}
	if ttl > s.cfg.MaxTTL {
		ttl = s.cfg.MaxTTL
	}
	return ttl
}

// connWriter serializes response writes on a connection. Write errors are
// swallowed: the read loop notices a dead peer, and an undelivered
// response is exactly what the at-most-once retransmit machinery exists
// for.
type connWriter struct {
	mu  sync.Mutex
	c   net.Conn
	buf []byte //rwguard:mu
}

func (w *connWriter) send(resp *wire.Response) {
	w.mu.Lock()
	defer w.mu.Unlock()
	buf, err := wire.Append(w.buf[:0], resp)
	if err != nil {
		return
	}
	w.buf = buf[:0]
	// Bound the write so a wedged peer cannot pin response goroutines
	// forever; on timeout the conn is killed and the client reconnects.
	w.c.SetWriteDeadline(time.Now().Add(10 * time.Second))
	if _, err := w.c.Write(buf); err != nil {
		w.c.Close()
	}
}

// handleConn runs one connection: hello, then a request loop. Fast
// operations are handled inline; blocking acquires get their own
// goroutine so heartbeats keep flowing on the same connection.
func (s *Server) handleConn(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, c)
		s.connMu.Unlock()
		c.Close()
	}()

	w := &connWriter{c: c}
	sc := wire.NewScanner(c)
	var sess *session
	for sc.Scan() {
		req, err := wire.DecodeRequest(sc.Bytes())
		if err != nil {
			w.send(&wire.Response{Code: wire.CodeBadRequest, Err: err.Error()})
			return
		}
		if !s.ready.Load() {
			// Recovery install still running: answer rather than hang, so
			// the client backs off and retries instead of timing out.
			w.send(&wire.Response{Seq: req.Seq, Code: wire.CodeRecovering, Err: "server recovering"})
			continue
		}
		now := time.Now()
		if sess == nil {
			if req.Op != wire.OpHello {
				w.send(&wire.Response{Seq: req.Seq, Code: wire.CodeBadRequest, Err: "first request must be hello"})
				return
			}
			if req.Session != "" {
				if prev := s.sessions.lookup(req.Session); prev != nil {
					if ok, logRenew := prev.renew(now); ok {
						sess = prev
						if logRenew {
							s.logAppend(&durable.Record{Type: durable.RecRenew,
								Session: sess.id, Expiry: sess.expiryUnixNano()})
						}
						w.send(&wire.Response{Seq: req.Seq, OK: true, Session: sess.id,
							TTLMS: sess.ttl.Milliseconds(), Resumed: true,
							MaxSeq: sess.seqHighWater(), Epoch: s.epoch.Load()})
						continue
					}
				}
				// Unknown or expired session: fall through to a fresh one;
				// Resumed stays false so the client knows its old state
				// (and seq numbering) is gone.
			}
			ttl := s.clampTTL(req.TTLMS)
			sess = s.sessions.create(ttl, now)
			s.logAppend(&durable.Record{Type: durable.RecHello, Session: sess.id,
				Slot: sess.slot, TTLMS: ttl.Milliseconds(), Expiry: sess.expiryUnixNano()})
			w.send(&wire.Response{Seq: req.Seq, OK: true, Session: sess.id,
				TTLMS: ttl.Milliseconds(), Epoch: s.epoch.Load()})
			continue
		}
		ok, logRenew := sess.renew(now)
		if !ok {
			// The lease lapsed: every hold is gone; the client must
			// reconnect under a fresh session and reacquire.
			w.send(&wire.Response{Seq: req.Seq, Code: wire.CodeExpired, Err: "session lease expired"})
			continue
		}
		if logRenew {
			s.logAppend(&durable.Record{Type: durable.RecRenew,
				Session: sess.id, Expiry: sess.expiryUnixNano()})
		}
		cached, drop, process := sess.begin(req.Seq)
		if cached != nil {
			w.send(cached)
			continue
		}
		if drop || !process {
			continue
		}
		if req.Op == wire.OpBye {
			s.finishBye(sess, req.Seq, w)
			return
		}
		if req.Op == wire.OpAcquire && req.WaitMS > 0 {
			s.wg.Add(1)
			go func(req wire.Request) {
				defer s.wg.Done()
				s.dispatch(sess, &req, w)
			}(*req)
			continue
		}
		s.dispatch(sess, req, w)
	}
	// Connection gone without bye: the session (and its holds) lives on
	// until the lease expires — a killed client never wedges a lock, and
	// a merely-partitioned one can still lose its holds only via TTL.
}

// dispatch executes one deduplicated request and sends+caches the
// response.
func (s *Server) dispatch(sess *session, req *wire.Request, w *connWriter) {
	var resp *wire.Response
	switch req.Op {
	case wire.OpHeartbeat:
		resp = &wire.Response{Seq: req.Seq, OK: true}
	case wire.OpStats:
		st := s.Stats()
		resp = &wire.Response{Seq: req.Seq, OK: true, Stats: &st}
	case wire.OpAcquire:
		resp = s.doAcquire(sess, req)
	case wire.OpRelease:
		resp = s.doRelease(sess, req)
	case wire.OpHello:
		resp = &wire.Response{Seq: req.Seq, Code: wire.CodeBadRequest, Err: "duplicate hello"}
	default:
		resp = &wire.Response{Seq: req.Seq, Code: wire.CodeBadRequest, Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
	sess.finish(req.Seq, resp)
	// Only acquire/release responses are made durable: they carry effects
	// (grants, fencing tokens) that at-most-once must preserve across a
	// restart. Heartbeats and stats are idempotent, and logging them would
	// swamp the WAL.
	if req.Op == wire.OpAcquire || req.Op == wire.OpRelease {
		if b, err := json.Marshal(resp); err == nil {
			s.logAppend(&durable.Record{Type: durable.RecResp,
				Session: sess.id, Seq: req.Seq, Resp: b})
		}
	}
	w.send(resp)
}

func validKeyMode(req *wire.Request) error {
	if req.Key == "" {
		return errors.New("empty key")
	}
	if req.Mode != wire.ModeRead && req.Mode != wire.ModeWrite {
		return fmt.Errorf("bad mode %q", req.Mode)
	}
	return nil
}

func (s *Server) doAcquire(sess *session, req *wire.Request) *wire.Response {
	if err := validKeyMode(req); err != nil {
		return &wire.Response{Seq: req.Seq, Code: wire.CodeBadRequest, Err: err.Error()}
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait > s.cfg.MaxWait {
		wait = s.cfg.MaxWait
	}
	tok, err := s.shardFor(req.Key).acquire(sess, req.Key, req.Mode, wait)
	if err != nil {
		return &wire.Response{Seq: req.Seq, Code: errCode(err), Err: err.Error()}
	}
	return &wire.Response{Seq: req.Seq, OK: true, Passage: tok}
}

func (s *Server) doRelease(sess *session, req *wire.Request) *wire.Response {
	if err := validKeyMode(req); err != nil {
		return &wire.Response{Seq: req.Seq, Code: wire.CodeBadRequest, Err: err.Error()}
	}
	// Fencing check: a release quoting a token from an earlier epoch refers
	// to a hold that did not survive the restart — it was fenced during
	// recovery. Tell the client so, in a typed way, so it surrenders the
	// hold instead of treating the release as an ordinary failure.
	if req.Passage != 0 && durable.TokenEpoch(req.Passage) < s.epoch.Load() {
		err := fmt.Errorf("%w: token epoch %d, server epoch %d",
			ErrEpochFenced, durable.TokenEpoch(req.Passage), s.epoch.Load())
		return &wire.Response{Seq: req.Seq, Code: errCode(err), Err: err.Error()}
	}
	if err := s.shardFor(req.Key).release(sess, req.Key, req.Mode); err != nil {
		return &wire.Response{Seq: req.Seq, Code: errCode(err), Err: err.Error()}
	}
	return &wire.Response{Seq: req.Seq, OK: true}
}

// finishBye releases everything the session owns, removes it, and
// acknowledges; the caller closes the connection.
func (s *Server) finishBye(sess *session, seq uint64, w *connWriter) {
	holds, waiters := sess.snapshotForRevoke()
	for _, wt := range waiters {
		s.shardFor(wt.ls.key).cancelWaiter(wt, ErrRevoked)
	}
	for _, h := range holds {
		// A clean goodbye is a release, not a revocation.
		if err := s.shardFor(h.key).release(sess, h.key, h.mode); err != nil {
			s.cfg.Logf("bye: release %q/%s: %v", h.key, h.mode, err)
		}
	}
	s.sessions.remove(sess)
	s.logAppend(&durable.Record{Type: durable.RecBye, Session: sess.id})
	w.send(&wire.Response{Seq: seq, OK: true})
}

// Stats snapshots server state.
func (s *Server) Stats() wire.Stats {
	st := wire.Stats{
		Draining: s.draining.Load(),
		Sessions: s.sessions.count(),
		Epoch:    s.epoch.Load(),
	}
	for _, sh := range s.shards {
		st.Shards = append(st.Shards, sh.snapshotStats())
	}
	return st
}

// holdCount totals outstanding holds across shards.
func (s *Server) holdCount() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.holdCount()
	}
	return n
}

// Drain performs a graceful shutdown of the lock namespaces: new acquires
// fail with ErrDraining, queued waiters are cancelled with ErrDraining,
// and holders get until the deadline to release. The lease sweeper keeps
// running, so holds of already-dead clients still expire during the
// drain. It returns the holds still outstanding at the deadline — the
// leaked holds; an empty result is a clean drain.
func (s *Server) Drain(timeout time.Duration) []HoldInfo {
	s.draining.Store(true)
	for _, sh := range s.shards {
		sh.cancelAllWaiters(ErrDraining)
	}
	deadline := time.Now().Add(timeout)
	for {
		if s.holdCount() == 0 {
			return nil
		}
		if !time.Now().Before(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	var leaked []HoldInfo
	for _, sh := range s.shards {
		leaked = append(leaked, sh.leakedHolds()...)
	}
	return leaked
}

// Close stops the accept loop and the sweeper, closes every connection,
// and waits for all handler goroutines. A durable store gets a tidy
// shutdown: final WAL sync plus a snapshot, so the next open replays from
// a compact state.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := s.ln.Close()
	close(s.sweepStop)
	s.connMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	if s.store != nil {
		if cerr := s.store.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Crash simulates kill -9 for recovery tests: the listener, connections,
// and sweeper stop immediately — no drain, no final WAL sync, no
// snapshot. Whatever the WAL already absorbed (every acknowledged
// operation: appends happen before responses are sent) is what the next
// open replays, which is exactly what a real SIGKILL leaves behind.
func (s *Server) Crash() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.ln.Close() //nolint:errcheck // crash semantics
	close(s.sweepStop)
	if s.store != nil {
		// Stop the store first so in-flight handlers cannot slip appends
		// in after the "crash" instant.
		s.store.Crash()
	}
	s.connMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	// Unblock queued acquires so their handler goroutines exit without
	// waiting out their deadlines; the store is already down, so none of
	// this teardown reaches the WAL (as with a real kill -9).
	for _, sh := range s.shards {
		sh.cancelAllWaiters(ErrDisconnected)
	}
	s.wg.Wait()
}
