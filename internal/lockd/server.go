// Package lockd implements rwlockd: a fault-tolerant named reader-writer
// lock service and its client. The failure model mirrors the simulator's
// (see DESIGN.md): a crash-stopped client is a session whose lease
// expires, a fail-slow client is one whose heartbeats arrive late, and
// recovery is reconnect-and-reacquire under a fresh session. Locks are
// sharded namespaces of grant tables; per-key write-passage counters live
// on the native memmodel backend so every write grant carries a fencing
// token, and per-key fairness is measured live by
// fairness.LockedBypassMonitor.
package lockd

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lockd/wire"
)

// Config parameterizes a Server. Zero values select the defaults.
type Config struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for an ephemeral
	// test port).
	Addr string
	// Shards is the number of lock-namespace partitions (default 8).
	Shards int
	// KeysPerShard sizes each shard's native-backend passage-counter
	// arena (default 512). Keys hash onto the arena; sharing a word
	// preserves per-key token uniqueness.
	KeysPerShard int
	// DefaultTTL is the session lease granted when hello does not request
	// one; MinTTL/MaxTTL clamp requested TTLs (defaults 5s, 50ms, 60s).
	DefaultTTL, MinTTL, MaxTTL time.Duration
	// SweepInterval is the lease-expiry scan period (default 25ms).
	SweepInterval time.Duration
	// MaxQueue bounds each named lock's wait queue; an acquire beyond it
	// is shed with ErrShed instead of queued (default 128).
	MaxQueue int
	// MaxWait clamps the server-side acquire deadline (default 30s).
	MaxWait time.Duration
	// Logf, when set, receives server event logs.
	Logf func(format string, args ...any)
}

func (c *Config) applyDefaults() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.KeysPerShard <= 0 {
		c.KeysPerShard = 512
	}
	if c.DefaultTTL <= 0 {
		c.DefaultTTL = 5 * time.Second
	}
	if c.MinTTL <= 0 {
		c.MinTTL = 50 * time.Millisecond
	}
	if c.MaxTTL <= 0 {
		c.MaxTTL = 60 * time.Second
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = 25 * time.Millisecond
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 128
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Server is the rwlockd service.
type Server struct {
	cfg      Config
	ln       net.Listener
	shards   []*shard
	sessions *sessionTable
	draining atomic.Bool
	closed   atomic.Bool

	wg        sync.WaitGroup // conn handlers + sweeper
	sweepStop chan struct{}

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// New binds the listener and builds the shard tables; call Serve to start
// accepting.
func New(cfg Config) (*Server, error) {
	cfg.applyDefaults()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("lockd: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		cfg:       cfg,
		ln:        ln,
		sessions:  newSessionTable(),
		sweepStop: make(chan struct{}),
		conns:     map[net.Conn]struct{}{},
	}
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = newShard(s, i, cfg.KeysPerShard)
	}
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// shardFor maps a key to its shard.
func (s *Server) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return s.shards[int(h.Sum32())%len(s.shards)]
}

// Serve runs the lease sweeper and the accept loop until Close. It
// returns nil on a clean shutdown.
func (s *Server) Serve() error {
	s.wg.Add(1)
	go s.sweepLoop()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return fmt.Errorf("lockd: accept: %w", err)
		}
		s.connMu.Lock()
		s.conns[c] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go s.handleConn(c)
	}
}

// sweepLoop periodically expires sessions whose lease lapsed, revoking
// their holds and cancelling their queued waiters.
func (s *Server) sweepLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case now := <-t.C:
			for _, sess := range s.sessions.expire(now) {
				s.revokeSession(sess, "lease expired")
			}
		}
	}
}

// revokeSession tears down an expired session: queued waiters get
// ErrRevoked, holds are released and their queues promoted.
func (s *Server) revokeSession(sess *session, why string) {
	holds, waiters := sess.snapshotForRevoke()
	for _, w := range waiters {
		s.shardFor(w.ls.key).cancelWaiter(w, ErrRevoked)
	}
	for _, h := range holds {
		s.shardFor(h.key).revokeHold(sess, h.key, h.mode)
	}
	if len(holds) > 0 || len(waiters) > 0 {
		s.cfg.Logf("session %s: %s; revoked %d holds, %d waiters",
			sess.id, why, len(holds), len(waiters))
	}
}

// clampTTL applies the configured lease bounds to a requested TTL.
func (s *Server) clampTTL(ms int64) time.Duration {
	ttl := s.cfg.DefaultTTL
	if ms > 0 {
		ttl = time.Duration(ms) * time.Millisecond
	}
	if ttl < s.cfg.MinTTL {
		ttl = s.cfg.MinTTL
	}
	if ttl > s.cfg.MaxTTL {
		ttl = s.cfg.MaxTTL
	}
	return ttl
}

// connWriter serializes response writes on a connection. Write errors are
// swallowed: the read loop notices a dead peer, and an undelivered
// response is exactly what the at-most-once retransmit machinery exists
// for.
type connWriter struct {
	mu  sync.Mutex
	c   net.Conn
	buf []byte
}

func (w *connWriter) send(resp *wire.Response) {
	w.mu.Lock()
	defer w.mu.Unlock()
	buf, err := wire.Append(w.buf[:0], resp)
	if err != nil {
		return
	}
	w.buf = buf[:0]
	// Bound the write so a wedged peer cannot pin response goroutines
	// forever; on timeout the conn is killed and the client reconnects.
	w.c.SetWriteDeadline(time.Now().Add(10 * time.Second))
	if _, err := w.c.Write(buf); err != nil {
		w.c.Close()
	}
}

// handleConn runs one connection: hello, then a request loop. Fast
// operations are handled inline; blocking acquires get their own
// goroutine so heartbeats keep flowing on the same connection.
func (s *Server) handleConn(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, c)
		s.connMu.Unlock()
		c.Close()
	}()

	w := &connWriter{c: c}
	sc := wire.NewScanner(c)
	var sess *session
	for sc.Scan() {
		var req wire.Request
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			w.send(&wire.Response{Seq: req.Seq, Code: wire.CodeBadRequest, Err: "malformed request"})
			return
		}
		now := time.Now()
		if sess == nil {
			if req.Op != wire.OpHello {
				w.send(&wire.Response{Seq: req.Seq, Code: wire.CodeBadRequest, Err: "first request must be hello"})
				return
			}
			ttl := s.clampTTL(req.TTLMS)
			sess = s.sessions.create(ttl, now)
			w.send(&wire.Response{Seq: req.Seq, OK: true, Session: sess.id, TTLMS: ttl.Milliseconds()})
			continue
		}
		if !sess.renew(now) {
			// The lease lapsed: every hold is gone; the client must
			// reconnect under a fresh session and reacquire.
			w.send(&wire.Response{Seq: req.Seq, Code: wire.CodeExpired, Err: "session lease expired"})
			continue
		}
		cached, drop, process := sess.begin(req.Seq)
		if cached != nil {
			w.send(cached)
			continue
		}
		if drop || !process {
			continue
		}
		if req.Op == wire.OpBye {
			s.finishBye(sess, req.Seq, w)
			return
		}
		if req.Op == wire.OpAcquire && req.WaitMS > 0 {
			s.wg.Add(1)
			go func(req wire.Request) {
				defer s.wg.Done()
				s.dispatch(sess, &req, w)
			}(req)
			continue
		}
		s.dispatch(sess, &req, w)
	}
	// Connection gone without bye: the session (and its holds) lives on
	// until the lease expires — a killed client never wedges a lock, and
	// a merely-partitioned one can still lose its holds only via TTL.
}

// dispatch executes one deduplicated request and sends+caches the
// response.
func (s *Server) dispatch(sess *session, req *wire.Request, w *connWriter) {
	var resp *wire.Response
	switch req.Op {
	case wire.OpHeartbeat:
		resp = &wire.Response{Seq: req.Seq, OK: true}
	case wire.OpStats:
		st := s.Stats()
		resp = &wire.Response{Seq: req.Seq, OK: true, Stats: &st}
	case wire.OpAcquire:
		resp = s.doAcquire(sess, req)
	case wire.OpRelease:
		resp = s.doRelease(sess, req)
	case wire.OpHello:
		resp = &wire.Response{Seq: req.Seq, Code: wire.CodeBadRequest, Err: "duplicate hello"}
	default:
		resp = &wire.Response{Seq: req.Seq, Code: wire.CodeBadRequest, Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
	sess.finish(req.Seq, resp)
	w.send(resp)
}

func validKeyMode(req *wire.Request) error {
	if req.Key == "" {
		return errors.New("empty key")
	}
	if req.Mode != wire.ModeRead && req.Mode != wire.ModeWrite {
		return fmt.Errorf("bad mode %q", req.Mode)
	}
	return nil
}

func (s *Server) doAcquire(sess *session, req *wire.Request) *wire.Response {
	if err := validKeyMode(req); err != nil {
		return &wire.Response{Seq: req.Seq, Code: wire.CodeBadRequest, Err: err.Error()}
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait > s.cfg.MaxWait {
		wait = s.cfg.MaxWait
	}
	tok, err := s.shardFor(req.Key).acquire(sess, req.Key, req.Mode, wait)
	if err != nil {
		return &wire.Response{Seq: req.Seq, Code: errCode(err), Err: err.Error()}
	}
	return &wire.Response{Seq: req.Seq, OK: true, Passage: tok}
}

func (s *Server) doRelease(sess *session, req *wire.Request) *wire.Response {
	if err := validKeyMode(req); err != nil {
		return &wire.Response{Seq: req.Seq, Code: wire.CodeBadRequest, Err: err.Error()}
	}
	if err := s.shardFor(req.Key).release(sess, req.Key, req.Mode); err != nil {
		return &wire.Response{Seq: req.Seq, Code: errCode(err), Err: err.Error()}
	}
	return &wire.Response{Seq: req.Seq, OK: true}
}

// finishBye releases everything the session owns, removes it, and
// acknowledges; the caller closes the connection.
func (s *Server) finishBye(sess *session, seq uint64, w *connWriter) {
	holds, waiters := sess.snapshotForRevoke()
	for _, wt := range waiters {
		s.shardFor(wt.ls.key).cancelWaiter(wt, ErrRevoked)
	}
	for _, h := range holds {
		// A clean goodbye is a release, not a revocation.
		if err := s.shardFor(h.key).release(sess, h.key, h.mode); err != nil {
			s.cfg.Logf("bye: release %q/%s: %v", h.key, h.mode, err)
		}
	}
	s.sessions.remove(sess)
	w.send(&wire.Response{Seq: seq, OK: true})
}

// Stats snapshots server state.
func (s *Server) Stats() wire.Stats {
	st := wire.Stats{
		Draining: s.draining.Load(),
		Sessions: s.sessions.count(),
	}
	for _, sh := range s.shards {
		st.Shards = append(st.Shards, sh.snapshotStats())
	}
	return st
}

// holdCount totals outstanding holds across shards.
func (s *Server) holdCount() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.holdCount()
	}
	return n
}

// Drain performs a graceful shutdown of the lock namespaces: new acquires
// fail with ErrDraining, queued waiters are cancelled with ErrDraining,
// and holders get until the deadline to release. The lease sweeper keeps
// running, so holds of already-dead clients still expire during the
// drain. It returns the holds still outstanding at the deadline — the
// leaked holds; an empty result is a clean drain.
func (s *Server) Drain(timeout time.Duration) []HoldInfo {
	s.draining.Store(true)
	for _, sh := range s.shards {
		sh.cancelAllWaiters(ErrDraining)
	}
	deadline := time.Now().Add(timeout)
	for {
		if s.holdCount() == 0 {
			return nil
		}
		if !time.Now().Before(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	var leaked []HoldInfo
	for _, sh := range s.shards {
		leaked = append(leaked, sh.leakedHolds()...)
	}
	return leaked
}

// Close stops the accept loop and the sweeper, closes every connection,
// and waits for all handler goroutines.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := s.ln.Close()
	close(s.sweepStop)
	s.connMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return err
}
