package wire

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestAppendRoundTrip(t *testing.T) {
	req := &Request{Seq: 7, Op: OpAcquire, Key: "k", Mode: ModeWrite, WaitMS: 250}
	buf, err := Append(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if buf[len(buf)-1] != '\n' {
		t.Fatal("message not newline-terminated")
	}
	var got Request
	if err := json.Unmarshal(buf[:len(buf)-1], &got); err != nil {
		t.Fatal(err)
	}
	if got != *req {
		t.Fatalf("round trip: %+v != %+v", got, *req)
	}

	// Append extends, preserving earlier messages (batched writes).
	buf2, err := Append(buf, &Response{Seq: 7, OK: true, Passage: 3})
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScanner(strings.NewReader(string(buf2)))
	lines := 0
	for sc.Scan() {
		lines++
	}
	if lines != 2 || sc.Err() != nil {
		t.Fatalf("scanner saw %d lines (err %v), want 2", lines, sc.Err())
	}
}

func TestAppendRejectsOversizedMessage(t *testing.T) {
	if _, err := Append(nil, &Request{Op: OpAcquire, Key: strings.Repeat("k", MaxLine)}); err == nil {
		t.Fatal("oversized message accepted")
	}
}
