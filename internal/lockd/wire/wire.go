// Package wire defines the rwlockd client/server protocol: newline-
// delimited JSON messages over a byte stream, one Request or Response per
// line. The framing is deliberately trivial — every message fits in one
// Write call, which is what lets the chaos transport (internal/lockd)
// drop, delay, duplicate, or reorder whole messages without having to
// understand a binary format.
//
// Reliability model: the transport between client and server is assumed
// lossy (the chaos layer makes it so on purpose). Every request carries a
// client-chosen sequence number; the server keeps, per session, a bounded
// cache of recent responses and answers a retransmitted seq from the cache
// instead of re-executing the operation. Acquire/release are therefore
// at-most-once: a retried acquire whose original response was lost returns
// the original grant (same passage token), never a second grant.
package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Ops. The first request on a connection must be OpHello, which creates
// the connection's session and lease; every subsequent request implicitly
// renews the lease.
const (
	OpHello     = "hello"
	OpHeartbeat = "heartbeat"
	OpAcquire   = "acquire"
	OpRelease   = "release"
	OpStats     = "stats"
	OpBye       = "bye"
)

// Lock modes.
const (
	ModeRead  = "r"
	ModeWrite = "w"
)

// Error codes carried in Response.Code. internal/lockd maps each to a
// typed sentinel error on the client side.
const (
	CodeTimeout    = "timeout"     // deadline passed (or tryacquire found the lock busy)
	CodeShed       = "shed"        // bounded wait queue full, load shed
	CodeRevoked    = "revoked"     // session lease expired while waiting
	CodeDraining   = "draining"    // server is draining, no new acquires
	CodeExpired    = "expired"     // session lease already expired
	CodeBadRequest = "bad-request" // malformed or semantically invalid request
)

// Request is one client->server message.
type Request struct {
	// Seq is the client-chosen sequence number, strictly increasing per
	// connection. Retransmits of the same logical request reuse the seq so
	// the server can deduplicate.
	Seq uint64 `json:"seq"`
	Op  string `json:"op"`
	// Key names the lock for acquire/release.
	Key string `json:"key,omitempty"`
	// Mode is ModeRead or ModeWrite for acquire/release.
	Mode string `json:"mode,omitempty"`
	// WaitMS bounds how long an acquire may block server-side before
	// failing with CodeTimeout. Zero means tryacquire: fail immediately
	// when the lock is not grantable.
	WaitMS int64 `json:"wait_ms,omitempty"`
	// TTLMS is the requested session lease TTL (hello only); the server
	// clamps it to its configured bounds and returns the granted value.
	TTLMS int64 `json:"ttl_ms,omitempty"`
}

// Response is one server->client message, matched to its request by Seq.
type Response struct {
	Seq uint64 `json:"seq"`
	OK  bool   `json:"ok"`
	// Code classifies a failure (OK == false); Err is the human-readable
	// detail.
	Code string `json:"code,omitempty"`
	Err  string `json:"err,omitempty"`
	// Session and TTLMS answer a hello.
	Session string `json:"session,omitempty"`
	TTLMS   int64  `json:"ttl_ms,omitempty"`
	// Passage is the fencing token of a granted acquire: for write grants
	// it is unique and strictly increasing per key, so duplicated or
	// replayed grants are detectable; for read grants it is the key's
	// current write-passage count.
	Passage uint64 `json:"passage,omitempty"`
	// Stats answers an OpStats request.
	Stats *Stats `json:"stats,omitempty"`
}

// Stats is the server-state snapshot returned by OpStats.
type Stats struct {
	Draining bool         `json:"draining"`
	Sessions int          `json:"sessions"`
	Shards   []ShardStats `json:"shards"`
}

// ShardStats aggregates one shard's counters and fairness readings.
type ShardStats struct {
	Locks  int `json:"locks"`  // named locks ever touched
	Held   int `json:"held"`   // holds currently outstanding
	Queued int `json:"queued"` // waiters currently queued

	ReadGrants  uint64 `json:"read_grants"`
	WriteGrants uint64 `json:"write_grants"`
	Releases    uint64 `json:"releases"`
	// Revoked counts holds torn down by lease expiry; RevokedWrite is the
	// write-mode subset (the passage-ledger term in rwload).
	Revoked      uint64 `json:"revoked"`
	RevokedWrite uint64 `json:"revoked_write"`
	Sheds        uint64 `json:"sheds"`
	Timeouts     uint64 `json:"timeouts"`

	// Bypass readings from the shard's fairness monitors: the worst
	// single-wait overtake count any reader/writer suffered on any lock in
	// this shard.
	MaxReaderBypass int `json:"max_reader_bypass"`
	MaxWriterBypass int `json:"max_writer_bypass"`
}

// MaxLine bounds one encoded message; a line longer than this is a
// protocol violation and kills the connection.
const MaxLine = 1 << 20

// Append marshals msg and appends it plus the newline terminator to buf,
// returning the extended buffer. Callers hand the result to a single
// Write so every message is one write call (the chaos layer depends on
// this framing).
func Append(buf []byte, msg any) ([]byte, error) {
	b, err := json.Marshal(msg)
	if err != nil {
		return buf, err
	}
	if len(b)+1 > MaxLine {
		return buf, fmt.Errorf("wire: message exceeds %d bytes", MaxLine)
	}
	return append(append(buf, b...), '\n'), nil
}

// NewScanner returns a line scanner over r sized for protocol messages.
func NewScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), MaxLine)
	return sc
}
