// Package wire defines the rwlockd client/server protocol: newline-
// delimited JSON messages over a byte stream, one Request or Response per
// line. The framing is deliberately trivial — every message fits in one
// Write call, which is what lets the chaos transport (internal/lockd)
// drop, delay, duplicate, or reorder whole messages without having to
// understand a binary format.
//
// Reliability model: the transport between client and server is assumed
// lossy (the chaos layer makes it so on purpose). Every request carries a
// client-chosen sequence number; the server keeps, per session, a bounded
// cache of recent responses and answers a retransmitted seq from the cache
// instead of re-executing the operation. Acquire/release are therefore
// at-most-once: a retried acquire whose original response was lost returns
// the original grant (same passage token), never a second grant.
package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Ops. The first request on a connection must be OpHello, which creates
// the connection's session and lease; every subsequent request implicitly
// renews the lease.
const (
	OpHello     = "hello"
	OpHeartbeat = "heartbeat"
	OpAcquire   = "acquire"
	OpRelease   = "release"
	OpStats     = "stats"
	OpBye       = "bye"
)

// Lock modes.
const (
	ModeRead  = "r"
	ModeWrite = "w"
)

// Error codes carried in Response.Code. internal/lockd maps each to a
// typed sentinel error on the client side.
const (
	CodeTimeout    = "timeout"     // deadline passed (or tryacquire found the lock busy)
	CodeShed       = "shed"        // bounded wait queue full, load shed
	CodeRevoked    = "revoked"     // session lease expired while waiting
	CodeDraining   = "draining"    // server is draining, no new acquires
	CodeExpired    = "expired"     // session lease already expired
	CodeBadRequest = "bad-request" // malformed or semantically invalid request
	// CodeRecovering: the server is replaying its WAL after a restart and
	// not yet serving; retry after a reconnect backoff.
	CodeRecovering = "recovering"
	// CodeEpochFenced: the request carried a fencing token minted under
	// an earlier server epoch. The hold it refers to did not survive the
	// restart — the client must surrender it and reacquire.
	CodeEpochFenced = "epoch-fenced"
)

// Request is one client->server message.
type Request struct {
	// Seq is the client-chosen sequence number, strictly increasing per
	// connection. Retransmits of the same logical request reuse the seq so
	// the server can deduplicate.
	Seq uint64 `json:"seq"`
	Op  string `json:"op"`
	// Key names the lock for acquire/release.
	Key string `json:"key,omitempty"`
	// Mode is ModeRead or ModeWrite for acquire/release.
	Mode string `json:"mode,omitempty"`
	// WaitMS bounds how long an acquire may block server-side before
	// failing with CodeTimeout. Zero means tryacquire: fail immediately
	// when the lock is not grantable.
	WaitMS int64 `json:"wait_ms,omitempty"`
	// TTLMS is the requested session lease TTL (hello only); the server
	// clamps it to its configured bounds and returns the granted value.
	TTLMS int64 `json:"ttl_ms,omitempty"`
	// Session, on hello, asks to resume an existing session after a
	// reconnect (its lease, holds, and response cache survive a server
	// restart via the WAL). If the session is unknown or expired the
	// server mints a fresh one; Response.Resumed says which happened.
	Session string `json:"session,omitempty"`
	// Passage, on release, is the hold's fencing token. A token minted
	// under an earlier server epoch is answered with CodeEpochFenced:
	// the hold was fenced out during restart recovery and the client
	// must surrender it. Zero skips the check (legacy clients).
	Passage uint64 `json:"passage,omitempty"`
}

// Response is one server->client message, matched to its request by Seq.
type Response struct {
	Seq uint64 `json:"seq"`
	OK  bool   `json:"ok"`
	// Code classifies a failure (OK == false); Err is the human-readable
	// detail.
	Code string `json:"code,omitempty"`
	Err  string `json:"err,omitempty"`
	// Session and TTLMS answer a hello. Resumed reports that the hello
	// re-attached to the requested existing session; MaxSeq is then the
	// highest request seq that session has ever begun — the client must
	// continue its numbering above it so a stale cached response can
	// never answer a fresh request.
	Session string `json:"session,omitempty"`
	TTLMS   int64  `json:"ttl_ms,omitempty"`
	Resumed bool   `json:"resumed,omitempty"`
	MaxSeq  uint64 `json:"max_seq,omitempty"`
	// Epoch is the server epoch (hello and stats responses). It bumps on
	// every restart; fencing tokens fold it into their high bits.
	Epoch uint64 `json:"server_epoch,omitempty"`
	// Passage is the fencing token of a granted acquire: for write grants
	// it is unique and strictly increasing per key, so duplicated or
	// replayed grants are detectable; for read grants it is the key's
	// current write-passage count.
	Passage uint64 `json:"passage,omitempty"`
	// Stats answers an OpStats request.
	Stats *Stats `json:"stats,omitempty"`
}

// Stats is the server-state snapshot returned by OpStats.
type Stats struct {
	Draining bool `json:"draining"`
	Sessions int  `json:"sessions"`
	// Epoch is the server epoch (bumped on every restart of a durable
	// server; always 1 for an in-memory server).
	Epoch  uint64       `json:"epoch"`
	Shards []ShardStats `json:"shards"`
}

// ShardStats aggregates one shard's counters and fairness readings.
type ShardStats struct {
	Locks  int `json:"locks"`  // named locks ever touched
	Held   int `json:"held"`   // holds currently outstanding
	Queued int `json:"queued"` // waiters currently queued

	ReadGrants  uint64 `json:"read_grants"`
	WriteGrants uint64 `json:"write_grants"`
	Releases    uint64 `json:"releases"`
	// Revoked counts holds torn down by lease expiry or restart fencing;
	// RevokedWrite is the write-mode subset (the passage-ledger term in
	// rwload). Fenced/FencedWrite are the restart-fencing subset of
	// those: holds cleared because an epoch bump invalidated them.
	Revoked      uint64 `json:"revoked"`
	RevokedWrite uint64 `json:"revoked_write"`
	Fenced       uint64 `json:"fenced"`
	FencedWrite  uint64 `json:"fenced_write"`
	Sheds        uint64 `json:"sheds"`
	Timeouts     uint64 `json:"timeouts"`

	// Bypass readings from the shard's fairness monitors: the worst
	// single-wait overtake count any reader/writer suffered on any lock in
	// this shard.
	MaxReaderBypass int `json:"max_reader_bypass"`
	MaxWriterBypass int `json:"max_writer_bypass"`
}

// MaxLine bounds one encoded message; a line longer than this is a
// protocol violation and kills the connection.
const MaxLine = 1 << 20

// Append marshals msg and appends it plus the newline terminator to buf,
// returning the extended buffer. Callers hand the result to a single
// Write so every message is one write call (the chaos layer depends on
// this framing).
func Append(buf []byte, msg any) ([]byte, error) {
	b, err := json.Marshal(msg)
	if err != nil {
		return buf, err
	}
	if len(b)+1 > MaxLine {
		return buf, fmt.Errorf("wire: message exceeds %d bytes", MaxLine)
	}
	return append(append(buf, b...), '\n'), nil
}

// NewScanner returns a line scanner over r sized for protocol messages.
func NewScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), MaxLine)
	return sc
}

// DecodeError reports a message that could not be parsed: truncated,
// bit-flipped, or not JSON at all. Both protocol ends return it typed —
// a malformed message is a protocol verdict, never a panic or a silent
// zero-value misparse.
type DecodeError struct {
	// What is "request" or "response".
	What string
	Err  error
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("wire: malformed %s: %v", e.What, e.Err)
}

func (e *DecodeError) Unwrap() error { return e.Err }

// DecodeRequest parses one request line. A request without an op is
// rejected: it cannot be dispatched, and treating it as a zero-value
// request would silently misparse garbage that happens to be valid JSON.
func DecodeRequest(b []byte) (*Request, error) {
	var req Request
	if err := json.Unmarshal(b, &req); err != nil {
		return nil, &DecodeError{What: "request", Err: err}
	}
	if req.Op == "" {
		return nil, &DecodeError{What: "request", Err: fmt.Errorf("missing op")}
	}
	return &req, nil
}

// DecodeResponse parses one response line. A response with neither OK nor
// a failure code is rejected for the same reason.
func DecodeResponse(b []byte) (*Response, error) {
	var resp Response
	if err := json.Unmarshal(b, &resp); err != nil {
		return nil, &DecodeError{What: "response", Err: err}
	}
	if !resp.OK && resp.Code == "" {
		return nil, &DecodeError{What: "response", Err: fmt.Errorf("failure without code")}
	}
	return &resp, nil
}
