package wire

import (
	"errors"
	"testing"
)

// FuzzDecodeRequest: any byte string is either a valid request or a typed
// *DecodeError — never a panic, and never a zero-value misparse (a
// request without an op cannot dispatch and must be rejected).
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{"seq":1,"op":"hello","ttl_ms":500}`))
	f.Add([]byte(`{"seq":2,"op":"acquire","key":"k","mode":"w","wait_ms":100}`))
	f.Add([]byte(`{"seq":3,"op":"release","key":"k","mode":"w","passage":281474976710657}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"seq":4}`))
	f.Add([]byte(`garbage`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, b []byte) {
		req, err := DecodeRequest(b)
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("untyped error %T: %v", err, err)
			}
			if req != nil {
				t.Fatal("request returned alongside error")
			}
			return
		}
		if req.Op == "" {
			t.Fatal("decoded request with empty op")
		}
		// Round trip: a decoded request must re-encode and re-decode.
		buf, aerr := Append(nil, req)
		if aerr != nil {
			t.Fatalf("re-encode: %v", aerr)
		}
		req2, derr := DecodeRequest(buf[:len(buf)-1])
		if derr != nil {
			t.Fatalf("re-decode: %v", derr)
		}
		if req2.Seq != req.Seq || req2.Op != req.Op || req2.Key != req.Key ||
			req2.Mode != req.Mode || req2.Passage != req.Passage || req2.Session != req.Session {
			t.Fatalf("round trip mismatch: %+v vs %+v", req, req2)
		}
	})
}

// FuzzDecodeResponse mirrors FuzzDecodeRequest for the server->client
// direction: failures without a code are rejected rather than silently
// treated as generic errors.
func FuzzDecodeResponse(f *testing.F) {
	f.Add([]byte(`{"seq":1,"ok":true,"session":"abc","ttl_ms":500,"server_epoch":3}`))
	f.Add([]byte(`{"seq":2,"ok":false,"code":"timeout","err":"waited too long"}`))
	f.Add([]byte(`{"seq":3,"ok":true,"resumed":true,"max_seq":17,"passage":9}`))
	f.Add([]byte(`{"seq":4,"ok":false}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, b []byte) {
		resp, err := DecodeResponse(b)
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("untyped error %T: %v", err, err)
			}
			if resp != nil {
				t.Fatal("response returned alongside error")
			}
			return
		}
		if !resp.OK && resp.Code == "" {
			t.Fatal("decoded failure response without a code")
		}
		buf, aerr := Append(nil, resp)
		if aerr != nil {
			t.Fatalf("re-encode: %v", aerr)
		}
		resp2, derr := DecodeResponse(buf[:len(buf)-1])
		if derr != nil {
			t.Fatalf("re-decode: %v", derr)
		}
		if resp2.Seq != resp.Seq || resp2.OK != resp.OK || resp2.Code != resp.Code ||
			resp2.Passage != resp.Passage || resp2.Epoch != resp.Epoch || resp2.MaxSeq != resp.MaxSeq {
			t.Fatalf("round trip mismatch: %+v vs %+v", resp, resp2)
		}
	})
}
