package lockd

import (
	"errors"
	"fmt"

	"repro/internal/lockd/wire"
)

// Typed protocol errors. Server-side code returns them from acquire paths;
// the client maps wire error codes back onto the same sentinels, so both
// sides of the protocol test with errors.Is against one vocabulary.
var (
	// ErrTimeout: the acquire deadline passed (or a tryacquire found the
	// lock busy).
	ErrTimeout = errors.New("lockd: acquire deadline exceeded")
	// ErrShed: the lock's bounded wait queue was full and the request was
	// load-shed instead of queued.
	ErrShed = errors.New("lockd: wait queue full, request shed")
	// ErrRevoked: the session's lease expired while the request waited, so
	// the request (and every hold of the session) was revoked.
	ErrRevoked = errors.New("lockd: session lease expired, request revoked")
	// ErrDraining: the server is draining and refuses new acquires.
	ErrDraining = errors.New("lockd: server draining")
	// ErrSessionExpired: the session's lease had already expired when the
	// request arrived; the client must reconnect and reacquire.
	ErrSessionExpired = errors.New("lockd: session expired")
	// ErrBadRequest: the request was malformed or semantically invalid
	// (e.g. releasing a lock the session does not hold).
	ErrBadRequest = errors.New("lockd: bad request")
	// ErrDisconnected: the client lost its connection before a response
	// arrived; the outcome of the in-flight request is unknown (a granted
	// hold will be reclaimed by lease expiry).
	ErrDisconnected = errors.New("lockd: connection lost")
	// ErrRecovering: the server is replaying its WAL after a restart and
	// not yet serving requests; retry after a reconnect backoff.
	ErrRecovering = errors.New("lockd: server recovering")
	// ErrEpochFenced: the request used a fencing token minted under an
	// earlier server epoch. The hold did not survive the server restart —
	// it was fenced out during recovery — so the client must surrender it
	// and reacquire.
	ErrEpochFenced = errors.New("lockd: fencing token from an earlier server epoch")
)

// errCode maps a server-side error to its wire code.
func errCode(err error) string {
	switch {
	case errors.Is(err, ErrTimeout):
		return wire.CodeTimeout
	case errors.Is(err, ErrShed):
		return wire.CodeShed
	case errors.Is(err, ErrRevoked):
		return wire.CodeRevoked
	case errors.Is(err, ErrDraining):
		return wire.CodeDraining
	case errors.Is(err, ErrSessionExpired):
		return wire.CodeExpired
	case errors.Is(err, ErrRecovering):
		return wire.CodeRecovering
	case errors.Is(err, ErrEpochFenced):
		return wire.CodeEpochFenced
	default:
		return wire.CodeBadRequest
	}
}

// codeErr maps a wire error code back to the typed sentinel, wrapping the
// human-readable detail so errors.Is keeps working through the transport.
func codeErr(code, detail string) error {
	var base error
	switch code {
	case wire.CodeTimeout:
		base = ErrTimeout
	case wire.CodeShed:
		base = ErrShed
	case wire.CodeRevoked:
		base = ErrRevoked
	case wire.CodeDraining:
		base = ErrDraining
	case wire.CodeExpired:
		base = ErrSessionExpired
	case wire.CodeRecovering:
		base = ErrRecovering
	case wire.CodeEpochFenced:
		base = ErrEpochFenced
	default:
		base = ErrBadRequest
	}
	if detail == "" {
		return base
	}
	return fmt.Errorf("%w: %s", base, detail)
}
