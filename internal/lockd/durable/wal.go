package durable

import (
	"fmt"
	"os"
	"sync"
	"time"
)

// FsyncPolicy selects when WAL appends reach stable storage.
type FsyncPolicy string

const (
	// FsyncAlways syncs after every append: no committed grant can be
	// lost to a power failure, at one fsync per operation.
	FsyncAlways FsyncPolicy = "always"
	// FsyncInterval syncs on a background timer (the default): a power
	// failure can lose the last interval of records, which is safe — the
	// epoch bump keeps lost grants' tokens dominated — but costs one
	// fsync per interval instead of per operation. A plain kill -9 loses
	// nothing under any policy: appends are unbuffered write syscalls,
	// and the page cache survives process death.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncNever leaves syncing to the OS entirely.
	FsyncNever FsyncPolicy = "never"
)

// ParseFsyncPolicy validates a policy string (flag plumbing).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case FsyncAlways, FsyncInterval, FsyncNever:
		return FsyncPolicy(s), nil
	}
	return "", fmt.Errorf("durable: unknown fsync policy %q (want always, interval, or never)", s)
}

// walMagic opens every WAL file; a file that does not start with it is
// rejected as corrupt rather than misparsed as frames.
const walMagic = "rwlockd-wal\x01\n"

// wal is the append side of the log: one file, direct (unbuffered)
// writes, fsync per policy.
type wal struct {
	mu       sync.Mutex
	f        *os.File //rwguard:mu
	policy   FsyncPolicy
	buf      []byte //rwguard:mu
	stop     chan struct{}
	syncDone chan struct{}
	syncErr  error //rwguard:mu sticky first background-sync failure
}

// openWAL opens (creating if needed) the log at path for appending. A
// fresh or truncated-to-empty file gets the magic header. interval is the
// background sync period for FsyncInterval.
func openWAL(path string, policy FsyncPolicy, interval time.Duration) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: open WAL: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: stat WAL: %w", err)
	}
	w := &wal{f: f, policy: policy, stop: make(chan struct{}), syncDone: make(chan struct{})}
	if fi.Size() == 0 {
		if _, err := f.WriteString(walMagic); err != nil {
			f.Close()
			return nil, fmt.Errorf("durable: write WAL header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("durable: sync WAL header: %w", err)
		}
	}
	if policy == FsyncInterval {
		if interval <= 0 {
			interval = 5 * time.Millisecond
		}
		go w.syncLoop(interval)
	} else {
		close(w.syncDone)
	}
	return w, nil
}

func (w *wal) syncLoop(interval time.Duration) {
	defer close(w.syncDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.mu.Lock()
			if w.syncErr == nil {
				w.syncErr = w.f.Sync()
			}
			w.mu.Unlock()
		}
	}
}

// append frames rec and writes it in one write call, syncing per policy.
// sync forces a sync regardless of policy (epoch bumps use it: the epoch
// record is the safety linchpin and is never allowed to be lost).
func (w *wal) append(rec *Record, sync bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.syncErr != nil {
		return fmt.Errorf("durable: WAL sync failed earlier: %w", w.syncErr)
	}
	buf, err := AppendFrame(w.buf[:0], rec)
	if err != nil {
		return err
	}
	w.buf = buf[:0]
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("durable: WAL append: %w", err)
	}
	if sync || w.policy == FsyncAlways {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("durable: WAL sync: %w", err)
		}
	}
	return nil
}

// reset truncates the log to empty (post-snapshot rotation) and rewrites
// the magic header.
func (w *wal) reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("durable: WAL truncate: %w", err)
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		return fmt.Errorf("durable: WAL seek: %w", err)
	}
	if _, err := w.f.WriteString(walMagic); err != nil {
		return fmt.Errorf("durable: WAL header: %w", err)
	}
	return w.f.Sync()
}

// close stops the sync loop; final is true for a tidy shutdown (one last
// sync) and false for a simulated crash (no flush beyond what already
// reached the file).
func (w *wal) close(final bool) error {
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	<-w.syncDone
	w.mu.Lock()
	defer w.mu.Unlock()
	var err error
	if final {
		err = w.f.Sync()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// replayWAL reads the log at path, applying torn-tail truncation: the
// file is cut back to its longest valid prefix. It returns the decoded
// records, the truncated byte count, and the typed reason when bytes were
// dropped. A missing file is an empty log. A file too short to hold the
// magic is a torn first write (truncated to empty); a file with the wrong
// magic is corrupt — refusing to serve beats silently ignoring a log that
// was probably damaged wholesale.
func replayWAL(path string) (recs []*Record, torn int64, tornReason error, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil, nil
		}
		return nil, 0, nil, fmt.Errorf("durable: read WAL: %w", err)
	}
	if len(buf) < len(walMagic) {
		if err := os.Truncate(path, 0); err != nil {
			return nil, 0, nil, fmt.Errorf("durable: truncate torn WAL header: %w", err)
		}
		return nil, int64(len(buf)), &ShortError{Offset: 0, Need: len(walMagic), Have: len(buf)}, nil
	}
	if string(buf[:len(walMagic)]) != walMagic {
		return nil, 0, nil, &CorruptError{Offset: 0, Reason: "magic",
			Err: fmt.Errorf("%s is not an rwlockd WAL", path)}
	}
	body := buf[len(walMagic):]
	recs, valid, scanErr := ReadLog(body)
	if scanErr != nil {
		torn = int64(len(body)) - valid
		if err := os.Truncate(path, int64(len(walMagic))+valid); err != nil {
			return nil, 0, nil, fmt.Errorf("durable: truncate torn WAL tail: %w", err)
		}
	}
	return recs, torn, scanErr, nil
}
