package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Options parameterizes a Store. Zero values select the defaults.
type Options struct {
	// Fsync is the WAL sync policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncInterval is the background sync period under FsyncInterval
	// (default 5ms).
	FsyncInterval time.Duration
	// SnapshotEvery is the number of appended records between snapshots
	// (default 4096). Each snapshot rotates (truncates) the WAL.
	SnapshotEvery int
	// Shards / WordsPerShard pin the geometry; a snapshot from a
	// different geometry is rejected with a *MismatchError.
	Shards, WordsPerShard int
}

func (o *Options) applyDefaults() {
	if o.Fsync == "" {
		o.Fsync = FsyncInterval
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 5 * time.Millisecond
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 4096
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.WordsPerShard <= 0 {
		o.WordsPerShard = 1
	}
}

// RecoveryInfo summarizes what Open found, for the server's recovery log.
type RecoveryInfo struct {
	// SnapshotLoaded reports whether a snapshot file existed.
	SnapshotLoaded bool
	// Replayed is the number of WAL records applied on top of the
	// snapshot (records at or below the snapshot's LastLSN are skipped).
	Replayed int
	// TornBytes is the size of the WAL tail dropped by torn-tail
	// truncation; TornReason is the typed cause (a *ShortError for an
	// ordinary torn write, a *CorruptError for a CRC/decode failure).
	TornBytes  int64
	TornReason error
	// Epoch is the recovered (pre-bump) epoch; Sessions/Holds/Queued
	// count the recovered state before fencing.
	Epoch    uint64
	Sessions int
	Holds    int
	Queued   int
}

// Store is the durable side of one rwlockd data directory: the WAL, the
// snapshot, and a shadow State kept current by applying every appended
// record. Safe for concurrent use.
type Store struct {
	dir  string
	opts Options
	fp   string

	mu        sync.Mutex
	wal       *wal   //rwguard:mu
	st        *State //rwguard:mu
	lsn       uint64 //rwguard:mu
	sinceSnap int    //rwguard:mu
	closed    bool   //rwguard:mu
}

func (s *Store) snapPath() string { return filepath.Join(s.dir, "snapshot.json") }
func (s *Store) walPath() string  { return filepath.Join(s.dir, "wal.log") }

// Open opens (creating if needed) the data directory, loads the snapshot,
// and replays the WAL on top, truncating a torn tail. It returns the
// store positioned for appends plus a recovery summary. Typed failures:
// *MismatchError for a snapshot from a different geometry or format
// version, *CorruptError for an unreadable snapshot or a WAL that is not
// a WAL at all (torn or bit-flipped WAL tails are truncated, not fatal).
func Open(dir string, opts Options) (*Store, *RecoveryInfo, error) {
	opts.applyDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: data dir: %w", err)
	}
	s := &Store{dir: dir, opts: opts, fp: GeometryFingerprint(opts.Shards, opts.WordsPerShard)}

	st, lastLSN, err := loadSnapshot(s.snapPath(), s.fp)
	if err != nil {
		return nil, nil, err
	}
	info := &RecoveryInfo{SnapshotLoaded: st != nil}
	if st == nil {
		st = NewState(opts.Shards, opts.WordsPerShard)
	}

	recs, torn, tornReason, err := replayWAL(s.walPath())
	if err != nil {
		return nil, nil, err
	}
	info.TornBytes, info.TornReason = torn, tornReason
	s.lsn = lastLSN
	for _, rec := range recs {
		if rec.LSN <= lastLSN {
			continue // already folded into the snapshot
		}
		st.Apply(rec)
		if rec.LSN > s.lsn {
			s.lsn = rec.LSN
		}
		info.Replayed++
	}
	s.st = st
	info.Epoch = st.Epoch
	info.Sessions = len(st.Sessions)
	info.Holds, info.Queued = st.HoldCount()

	w, err := openWAL(s.walPath(), opts.Fsync, opts.FsyncInterval)
	if err != nil {
		return nil, nil, err
	}
	s.wal = w
	return s, info, nil
}

// State returns a deep copy of the shadow state.
func (s *Store) State() *State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Clone()
}

// Epoch returns the shadow's current epoch.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Epoch
}

// Append assigns the next LSN to rec, writes it to the WAL (syncing per
// policy), folds it into the shadow, and snapshots when the rotation
// threshold is reached. The record is durable per the fsync policy when
// Append returns; callers send responses only after that return, so a
// response the client observed always corresponds to a logged operation.
func (s *Store) Append(rec *Record) error {
	return s.append(rec, false)
}

func (s *Store) append(rec *Record, sync bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: store closed")
	}
	s.lsn++
	rec.LSN = s.lsn
	if err := s.wal.append(rec, sync); err != nil {
		return err
	}
	s.st.Apply(rec)
	s.sinceSnap++
	if s.sinceSnap >= s.opts.SnapshotEvery {
		if err := s.snapshotLocked(); err != nil {
			// A failed rotation is not fatal to the append — the record
			// is in the WAL; the log just keeps growing until a rotation
			// succeeds.
			return nil
		}
	}
	return nil
}

// BumpEpoch appends an epoch record for epoch+1 with an unconditional
// fsync (the bump is the no-double-grant linchpin: it must be durable
// before the first post-restart grant) and returns the new epoch. The
// shadow apply fences every restored hold and queued entry.
func (s *Store) BumpEpoch() (uint64, error) {
	s.mu.Lock()
	next := s.st.Epoch + 1
	s.mu.Unlock()
	if err := s.append(&Record{Type: RecEpoch, Epoch: next}, true); err != nil {
		return 0, err
	}
	return next, nil
}

// Snapshot forces a snapshot + WAL rotation (tests and tidy shutdown).
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: store closed")
	}
	return s.snapshotLocked()
}

// snapshotLocked writes the shadow to the snapshot file and truncates the
// WAL. Crash windows are covered in both orders: before the rename the
// old snapshot + full WAL replay to the same state; after the rename but
// before the truncate, replay skips the WAL records the snapshot already
// folded in (LSN <= LastLSN).
//
//rwguard:holds mu
func (s *Store) snapshotLocked() error {
	if err := writeSnapshot(s.snapPath(), s.fp, s.lsn, s.st); err != nil {
		return err
	}
	if err := s.wal.reset(); err != nil {
		return err
	}
	s.sinceSnap = 0
	return nil
}

// Close shuts the store down tidily: final WAL sync, then a snapshot so
// the next open replays from a compact state.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.snapshotLocked()
	if cerr := s.wal.close(true); err == nil {
		err = cerr
	}
	return err
}

// Crash simulates kill -9 for tests: the store stops accepting appends
// and the WAL file is closed without any final sync or snapshot. Data
// already written by appends survives (they are unbuffered write calls),
// which is exactly what a real kill -9 leaves behind.
func (s *Store) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.wal.close(false) //nolint:errcheck // crash semantics: outcome deliberately ignored
}
