package durable

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func TestTokenRoundTrip(t *testing.T) {
	cases := []struct{ epoch, counter uint64 }{
		{0, 0}, {1, 1}, {1, 0}, {7, 123456789}, {65535, counterMask},
	}
	for _, c := range cases {
		tok := MakeToken(c.epoch, c.counter)
		if TokenEpoch(tok) != c.epoch {
			t.Errorf("MakeToken(%d,%d): epoch %d", c.epoch, c.counter, TokenEpoch(tok))
		}
		if TokenCounter(tok) != c.counter {
			t.Errorf("MakeToken(%d,%d): counter %d", c.epoch, c.counter, TokenCounter(tok))
		}
	}
	// Epoch dominance: any token of epoch e+1 exceeds any token of epoch e.
	if MakeToken(2, 0) <= MakeToken(1, counterMask) {
		t.Fatal("epoch 2 token does not dominate epoch 1 max token")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	recs := []*Record{
		{LSN: 1, Type: RecHello, Session: "s1", Slot: 3, TTLMS: 500, Expiry: 12345},
		{LSN: 2, Type: RecGrant, Session: "s1", Key: "k", Mode: "w", Shard: 2, Word: 7, Token: MakeToken(1, 9)},
		{LSN: 3, Type: RecEpoch, Epoch: 2},
	}
	var buf []byte
	for _, r := range recs {
		var err error
		if buf, err = AppendFrame(buf, r); err != nil {
			t.Fatal(err)
		}
	}
	got, valid, err := ReadLog(buf)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if valid != int64(len(buf)) {
		t.Fatalf("valid prefix %d, want %d", valid, len(buf))
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		if !reflect.DeepEqual(r, recs[i]) {
			t.Errorf("record %d: got %+v want %+v", i, r, recs[i])
		}
	}
}

func TestReadLogTornTail(t *testing.T) {
	var buf []byte
	for i := 1; i <= 3; i++ {
		var err error
		if buf, err = AppendFrame(buf, &Record{LSN: uint64(i), Type: RecRenew, Session: "s"}); err != nil {
			t.Fatal(err)
		}
	}
	full := int64(len(buf))
	// Chop the log at every possible byte boundary: the valid prefix must
	// always be a whole number of frames and the tail error typed.
	for cut := 0; cut < len(buf); cut++ {
		recs, valid, err := ReadLog(buf[:cut])
		if valid > int64(cut) {
			t.Fatalf("cut %d: valid prefix %d past end", cut, valid)
		}
		if int64(cut) < full && err == nil && valid != int64(cut) {
			t.Fatalf("cut %d: clean scan ended at %d", cut, valid)
		}
		if err != nil {
			var se *ShortError
			if !errors.As(err, &se) {
				t.Fatalf("cut %d: want *ShortError, got %T %v", cut, err, err)
			}
		}
		for i, r := range recs {
			if r.LSN != uint64(i+1) {
				t.Fatalf("cut %d: record %d has LSN %d", cut, i, r.LSN)
			}
		}
	}
}

func TestReadLogBitFlip(t *testing.T) {
	var buf []byte
	var err error
	if buf, err = AppendFrame(buf, &Record{LSN: 1, Type: RecHello, Session: "s"}); err != nil {
		t.Fatal(err)
	}
	one := len(buf)
	if buf, err = AppendFrame(buf, &Record{LSN: 2, Type: RecBye, Session: "s"}); err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit in the second frame: CRC must catch it, the
	// first frame must survive, and the error must be typed corruption.
	buf[one+frameHeader+2] ^= 0x40
	recs, valid, scanErr := ReadLog(buf)
	var ce *CorruptError
	if !errors.As(scanErr, &ce) || ce.Reason != "crc" {
		t.Fatalf("want *CorruptError(crc), got %T %v", scanErr, scanErr)
	}
	if len(recs) != 1 || valid != int64(one) {
		t.Fatalf("valid prefix: %d records / %d bytes, want 1 / %d", len(recs), valid, one)
	}
	// An implausible length field is corruption too, not a huge ShortError.
	binary.LittleEndian.PutUint32(buf[one:], MaxFrame+1)
	_, _, scanErr = ReadLog(buf)
	if !errors.As(scanErr, &ce) || ce.Reason != "length" {
		t.Fatalf("want *CorruptError(length), got %T %v", scanErr, scanErr)
	}
}

func TestApplyLifecycleAndLedger(t *testing.T) {
	st := NewState(2, 4)
	st.Apply(&Record{Type: RecHello, Session: "a", Slot: 0, TTLMS: 100, Expiry: 50})
	st.Apply(&Record{Type: RecHello, Session: "b", Slot: 1, TTLMS: 100, Expiry: 60})
	st.Apply(&Record{Type: RecGrant, Session: "a", Key: "k", Mode: "w", Shard: 1, Word: 2, Token: MakeToken(1, 5)})
	st.Apply(&Record{Type: RecEnqueue, Session: "b", Key: "k", Mode: "w", Shard: 1})
	if st.NextSlot != 2 {
		t.Fatalf("NextSlot = %d", st.NextSlot)
	}
	if got := st.Shards[1].Words[2]; got != 5 {
		t.Fatalf("word counter = %d, want 5", got)
	}
	holds, queued := st.HoldCount()
	if holds != 1 || queued != 1 {
		t.Fatalf("holds=%d queued=%d", holds, queued)
	}

	// Release + dequeue drain cleanly.
	st.Apply(&Record{Type: RecRelease, Session: "a", Key: "k", Mode: "w", Shard: 1})
	st.Apply(&Record{Type: RecDequeue, Session: "b", Key: "k", Mode: "w", Shard: 1})
	if h, q := st.HoldCount(); h != 0 || q != 0 {
		t.Fatalf("after release: holds=%d queued=%d", h, q)
	}
	if st.Shards[1].Counters.Releases != 1 {
		t.Fatalf("releases = %d", st.Shards[1].Counters.Releases)
	}

	// A ghost grant (session already expired out of the log) still lands
	// in the ledger as an immediately revoked passage.
	st.Apply(&Record{Type: RecExpire, Session: "a"})
	st.Apply(&Record{Type: RecGrant, Session: "a", Key: "k2", Mode: "w", Shard: 0, Word: 0, Token: MakeToken(1, 1)})
	c := st.Shards[0].Counters
	if c.WriteGrants != 1 || c.Revoked != 1 || c.RevokedWrite != 1 {
		t.Fatalf("ghost grant counters: %+v", c)
	}

	// Epoch bump fences the remaining holds.
	st.Apply(&Record{Type: RecGrant, Session: "b", Key: "k3", Mode: "r", Shard: 0, Word: 1, Token: MakeToken(1, 0)})
	st.Apply(&Record{Type: RecEpoch, Epoch: 2})
	if st.Epoch != 2 {
		t.Fatalf("epoch = %d", st.Epoch)
	}
	if h, q := st.HoldCount(); h != 0 || q != 0 {
		t.Fatalf("after epoch bump: holds=%d queued=%d", h, q)
	}
	if st.Shards[0].Counters.Fenced != 1 {
		t.Fatalf("fenced = %d", st.Shards[0].Counters.Fenced)
	}
	// Sessions themselves survive the bump (leases persist; holds do not).
	if _, ok := st.Sessions["b"]; !ok {
		t.Fatal("session b did not survive the epoch bump")
	}
}

func TestApplyRespCacheCapAndMaxSeq(t *testing.T) {
	st := NewState(1, 1)
	st.Apply(&Record{Type: RecHello, Session: "s", Slot: 0})
	for i := 1; i <= respCacheCapDefault+10; i++ {
		st.Apply(&Record{Type: RecResp, Session: "s", Seq: uint64(i), Resp: []byte(`{"ok":true}`)})
	}
	s := st.Sessions["s"]
	if len(s.Resps) != respCacheCapDefault {
		t.Fatalf("cache size %d, want %d", len(s.Resps), respCacheCapDefault)
	}
	if s.MaxSeq != uint64(respCacheCapDefault+10) {
		t.Fatalf("MaxSeq = %d", s.MaxSeq)
	}
	if s.Resps[0].Seq != 11 {
		t.Fatalf("oldest cached seq %d, want 11 (FIFO eviction)", s.Resps[0].Seq)
	}
}

func TestStoreReopenReplaysAndBumpsEpoch(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 2, WordsPerShard: 4, Fsync: FsyncNever}
	s, info, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if info.SnapshotLoaded || info.Replayed != 0 {
		t.Fatalf("fresh dir recovery: %+v", info)
	}
	if _, err := s.BumpEpoch(); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, &Record{Type: RecHello, Session: "s", Slot: 0, TTLMS: 1000, Expiry: time.Now().Add(time.Hour).UnixNano()})
	mustAppend(t, s, &Record{Type: RecGrant, Session: "s", Key: "k", Mode: "w", Shard: 1, Word: 3, Token: MakeToken(1, 42)})
	s.Crash() // kill -9: no snapshot, no final sync

	s2, info2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if info2.Replayed == 0 || info2.Sessions != 1 || info2.Holds != 1 {
		t.Fatalf("reopen recovery: %+v", info2)
	}
	if info2.Epoch != 1 {
		t.Fatalf("recovered epoch %d, want 1", info2.Epoch)
	}
	ep, err := s2.BumpEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if ep != 2 {
		t.Fatalf("bumped epoch %d, want 2", ep)
	}
	st := s2.State()
	if h, q := st.HoldCount(); h != 0 || q != 0 {
		t.Fatalf("post-bump holds=%d queued=%d", h, q)
	}
	if got := st.Shards[1].Words[3]; got != 42 {
		t.Fatalf("restored word counter %d, want 42", got)
	}
	if st.Shards[0].Counters.Fenced+st.Shards[1].Counters.Fenced != 1 {
		t.Fatalf("fenced counters: %+v %+v", st.Shards[0].Counters, st.Shards[1].Counters)
	}
}

func TestStoreSnapshotRotationAndTornTail(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 1, WordsPerShard: 2, Fsync: FsyncNever, SnapshotEvery: 8}
	s, _, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, &Record{Type: RecHello, Session: "s", Slot: 0})
	for i := 0; i < 40; i++ {
		mustAppend(t, s, &Record{Type: RecRenew, Session: "s", Expiry: int64(i)})
	}
	// Rotation must have happened: the WAL holds fewer frames than were
	// appended.
	wal, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	recs, _, scanErr := ReadLog(wal[len(walMagic):])
	if scanErr != nil {
		t.Fatal(scanErr)
	}
	if len(recs) >= 41 {
		t.Fatalf("WAL holds %d records; snapshot rotation never truncated it", len(recs))
	}
	s.Crash()

	// Tear the WAL tail mid-frame; reopen must truncate and still recover
	// the session.
	if len(wal) > 3 {
		if err := os.Truncate(filepath.Join(dir, "wal.log"), int64(len(wal)-3)); err != nil {
			t.Fatal(err)
		}
	}
	s2, info, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if info.Sessions != 1 {
		t.Fatalf("sessions after torn reopen = %d", info.Sessions)
	}
	if len(wal) > int(3+int64(len(walMagic))) && info.TornBytes == 0 {
		t.Fatalf("expected torn bytes, got %+v", info)
	}
}

func TestSnapshotGeometryMismatch(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{Shards: 2, WordsPerShard: 4, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, &Record{Type: RecHello, Session: "s", Slot: 0})
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, Options{Shards: 4, WordsPerShard: 4, Fsync: FsyncNever})
	var me *MismatchError
	if !errors.As(err, &me) {
		t.Fatalf("resharded open: want *MismatchError, got %T %v", err, err)
	}
}

func TestOpenRejectsForeignWAL(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), []byte("definitely not a WAL file......."), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(dir, Options{Shards: 1, WordsPerShard: 1})
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Reason != "magic" {
		t.Fatalf("want *CorruptError(magic), got %T %v", err, err)
	}
}

func mustAppend(t *testing.T, s *Store, rec *Record) {
	t.Helper()
	if err := s.Append(rec); err != nil {
		t.Fatal(err)
	}
}
