package durable

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/checkpoint"
)

// SnapshotVersion is the snapshot file format version; a file written by
// a different version is rejected with a *MismatchError.
const SnapshotVersion = 1

// MismatchError reports a snapshot written for a different configuration
// than the server opening it: a format-version bump, or a changed shard
// geometry (resharding a data directory would scramble the key->shard
// mapping, so it must be an explicit migration, never a silent restart).
type MismatchError struct {
	Path  string
	Field string // "version" or "fingerprint"
	Want  string
	Got   string
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("durable: %s was written for a different configuration: %s is %s, this server needs %s (wipe the data directory or restore the old configuration)",
		e.Path, e.Field, e.Got, e.Want)
}

// snapshotFile is the on-disk snapshot schema.
type snapshotFile struct {
	Version int `json:"version"`
	// Fingerprint pins the shard geometry (checkpoint.Fingerprint over
	// shard and word counts) so a snapshot can never be replayed into a
	// server with a different key->shard mapping.
	Fingerprint string `json:"fingerprint"`
	// LastLSN is the log sequence number of the last record folded into
	// State; replay skips WAL records at or below it, which is what makes
	// the snapshot-then-truncate rotation crash-safe in both orders.
	LastLSN uint64 `json:"last_lsn"`
	State   *State `json:"state"`
}

// GeometryFingerprint condenses the parts of the server configuration
// that determine the durable state's shape. It reuses the checkpoint
// fingerprint machinery (length-prefixed SHA-256) so the hygiene is
// shared: everything that shapes the state, nothing execution-dependent.
func GeometryFingerprint(shards, wordsPerShard int) string {
	return checkpoint.Fingerprint("lockd-durable", fmt.Sprint(shards), fmt.Sprint(wordsPerShard))
}

// writeSnapshot persists st atomically via the checkpoint temp-file+
// rename primitive: a crash mid-snapshot leaves the previous snapshot
// intact, never a torn file.
func writeSnapshot(path, fingerprint string, lastLSN uint64, st *State) error {
	buf, err := json.Marshal(&snapshotFile{
		Version: SnapshotVersion, Fingerprint: fingerprint, LastLSN: lastLSN, State: st,
	})
	if err != nil {
		return fmt.Errorf("durable: marshal snapshot: %w", err)
	}
	buf = append(buf, '\n')
	if err := checkpoint.WriteAtomic(path, buf); err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	return nil
}

// loadSnapshot reads the snapshot at path. A missing file yields a nil
// state (fresh directory); an unparsable file is a typed *CorruptError;
// a version or geometry mismatch is a typed *MismatchError.
func loadSnapshot(path, fingerprint string) (*State, uint64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, &CorruptError{Reason: "payload", Err: err}
	}
	var f snapshotFile
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, 0, &CorruptError{Reason: "payload", Err: fmt.Errorf("snapshot %s: %w", path, err)}
	}
	if f.Version != SnapshotVersion {
		return nil, 0, &MismatchError{Path: path, Field: "version",
			Want: fmt.Sprint(SnapshotVersion), Got: fmt.Sprint(f.Version)}
	}
	if f.Fingerprint != fingerprint {
		return nil, 0, &MismatchError{Path: path, Field: "fingerprint",
			Want: fingerprint, Got: f.Fingerprint}
	}
	if f.State == nil {
		f.State = &State{}
	}
	if f.State.Sessions == nil {
		f.State.Sessions = map[string]*SessionState{}
	}
	return f.State, f.LastLSN, nil
}
