package durable

import (
	"encoding/binary"
	"errors"
	"os"
	"testing"
)

// FuzzDecodeFrame feeds arbitrary bytes to the frame decoder: any input
// must yield a record, a *ShortError, or a *CorruptError — never a panic
// and never an untyped failure. Torn writes, truncated tails, and bit
// flips are all just byte strings here.
func FuzzDecodeFrame(f *testing.F) {
	good, _ := AppendFrame(nil, &Record{LSN: 1, Type: RecGrant, Session: "s", Key: "k", Mode: "w", Token: MakeToken(1, 7)})
	f.Add(good)
	f.Add(good[:len(good)-1])                         // torn tail
	f.Add([]byte{})                                   // empty
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length
	flipped := append([]byte(nil), good...)
	flipped[frameHeader+1] ^= 0x01
	f.Add(flipped) // bit flip in payload
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, err := DecodeFrame(b, 0)
		switch {
		case err == nil:
			if rec == nil || n <= 0 || n > len(b) {
				t.Fatalf("clean decode with rec=%v n=%d len=%d", rec, n, len(b))
			}
			// A decoded frame must re-encode and decode to the same bytes'
			// worth of record (round-trip stability).
			re, rerr := AppendFrame(nil, rec)
			if rerr != nil {
				t.Fatalf("re-encode of decoded record failed: %v", rerr)
			}
			rec2, _, rerr2 := DecodeFrame(re, 0)
			if rerr2 != nil {
				t.Fatalf("re-decode failed: %v", rerr2)
			}
			if rec2.LSN != rec.LSN || rec2.Type != rec.Type || rec2.Token != rec.Token {
				t.Fatalf("round trip mismatch: %+v vs %+v", rec, rec2)
			}
		default:
			var se *ShortError
			var ce *CorruptError
			if !errors.As(err, &se) && !errors.As(err, &ce) {
				t.Fatalf("untyped decode error %T: %v", err, err)
			}
			if rec != nil {
				t.Fatal("record returned alongside error")
			}
		}
	})
}

// FuzzReadLog checks the whole-log scan: the valid prefix must be exactly
// decodable, the tail error typed, and truncation-to-prefix idempotent
// (scanning the prefix again is clean) — the property torn-tail recovery
// relies on.
func FuzzReadLog(f *testing.F) {
	var log []byte
	for i := 1; i <= 3; i++ {
		log, _ = AppendFrame(log, &Record{LSN: uint64(i), Type: RecRenew, Session: "s", Expiry: int64(i)})
	}
	f.Add(log)
	f.Add(log[:len(log)-5])
	corrupt := append([]byte(nil), log...)
	corrupt[len(corrupt)/2] ^= 0x80
	f.Add(corrupt)
	var lenBomb [frameHeader]byte
	binary.LittleEndian.PutUint32(lenBomb[0:4], MaxFrame+1)
	f.Add(append(append([]byte(nil), log...), lenBomb[:]...))
	f.Fuzz(func(t *testing.T, b []byte) {
		recs, valid, err := ReadLog(b)
		if valid < 0 || valid > int64(len(b)) {
			t.Fatalf("valid prefix %d out of range [0,%d]", valid, len(b))
		}
		if err != nil {
			var se *ShortError
			var ce *CorruptError
			if !errors.As(err, &se) && !errors.As(err, &ce) {
				t.Fatalf("untyped scan error %T: %v", err, err)
			}
		} else if valid != int64(len(b)) {
			t.Fatalf("clean scan stopped at %d of %d", valid, len(b))
		}
		recs2, valid2, err2 := ReadLog(b[:valid])
		if err2 != nil || valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("prefix rescan: %d recs / %d bytes / %v, want %d / %d / nil",
				len(recs2), valid2, err2, len(recs), valid)
		}
		// Applying any decoded sequence must never panic (apply is total).
		st := NewState(1, 1)
		for _, r := range recs {
			st.Apply(r)
		}
	})
}

// FuzzWALFileReplay drives replayWAL through arbitrary file contents:
// every outcome is either a typed fatal (wrong magic) or a truncate-to-
// valid-prefix recovery whose second replay is clean and torn-free.
func FuzzWALFileReplay(f *testing.F) {
	var log []byte
	log = append(log, walMagic...)
	log, _ = AppendFrame(log, &Record{LSN: 1, Type: RecHello, Session: "s"})
	f.Add(log)
	f.Add(log[:len(log)-2])
	f.Add([]byte("not a wal"))
	f.Fuzz(func(t *testing.T, b []byte) {
		path := t.TempDir() + "/wal.log"
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Skip()
		}
		recs, torn, tornReason, err := replayWAL(path)
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("untyped replay error %T: %v", err, err)
			}
			return
		}
		if torn > 0 && tornReason == nil {
			t.Fatal("torn bytes without a typed reason")
		}
		recs2, torn2, _, err2 := replayWAL(path)
		if err2 != nil || torn2 != 0 || len(recs2) != len(recs) {
			t.Fatalf("second replay not clean: %d recs torn=%d err=%v", len(recs2), torn2, err2)
		}
	})
}
