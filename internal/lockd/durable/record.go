// Package durable makes rwlockd's service state survive a server crash:
// a length-prefixed, CRC-framed append-only write-ahead log plus periodic
// snapshots of a shadow state, both under one data directory. On restart
// the Store replays snapshot+WAL (truncating a torn tail), and the server
// bumps a persisted epoch that is folded into every fencing token it
// mints — so tokens granted before a crash are strictly dominated by
// every post-restart token and a stale holder can be fenced out, never
// double-granted, even if the WAL lost its final records.
//
// The durable state is the service's bookkeeping, not the lock algorithms:
// session leases (with absolute expiry deadlines, so the lease sweeper
// re-arms after a restart), held and queued lock entries, per-word
// fencing counters, and the per-session at-most-once response caches.
// Everything here is real concurrency (files, mutexes) by design and is
// pinned outside the rwlint memdiscipline scope, like the rest of
// internal/lockd.
package durable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// RecordType enumerates WAL record kinds.
type RecordType string

// WAL record kinds. Replay applies them in append order; apply is total —
// a record referencing state that no longer exists (a grant racing a
// lease expiry into the log, say) is accounted for but never panics.
const (
	// RecHello creates a session (id, slot, ttl, absolute expiry).
	RecHello RecordType = "hello"
	// RecRenew advances a session's absolute expiry deadline. Renewals
	// are coalesced by the server (one record per TTL/4 of advance), so
	// a replayed deadline is stale by at most a quarter lease.
	RecRenew RecordType = "renew"
	// RecBye removes a session cleanly (its holds were released first).
	RecBye RecordType = "bye"
	// RecExpire removes a session whose lease lapsed, revoking its holds
	// and queued entries.
	RecExpire RecordType = "expire"
	// RecGrant installs a hold and, for writes, advances the shard word's
	// fencing counter to the token's counter part.
	RecGrant RecordType = "grant"
	// RecRelease removes a hold.
	RecRelease RecordType = "release"
	// RecEnqueue / RecDequeue track queued waiters; replayed queue
	// entries are cancelled by the next epoch bump (their connections
	// did not survive the crash).
	RecEnqueue RecordType = "enqueue"
	RecDequeue RecordType = "dequeue"
	// RecResp caches a completed request's response for at-most-once
	// replay across a restart.
	RecResp RecordType = "resp"
	// RecEpoch persists an epoch bump. Applying it fences every held and
	// queued entry (counted as revoked), which is exactly the restart
	// semantics: holds never cross an epoch boundary.
	RecEpoch RecordType = "epoch"
)

// Record is one WAL entry. Field usage depends on Type; unused fields
// stay zero and are omitted from the encoding.
type Record struct {
	// LSN is the record's log sequence number, strictly increasing over
	// the life of a data directory (it survives snapshot rotation).
	// Replay skips records at or below the snapshot's LastLSN.
	LSN  uint64     `json:"lsn"`
	Type RecordType `json:"t"`

	Session string `json:"sess,omitempty"`
	Slot    int    `json:"slot,omitempty"`
	TTLMS   int64  `json:"ttl_ms,omitempty"`
	// Expiry is the session lease deadline in unix nanoseconds —
	// absolute on purpose, so a restarted sweeper re-arms from it.
	Expiry int64 `json:"exp,omitempty"`

	Key   string `json:"key,omitempty"`
	Mode  string `json:"mode,omitempty"`
	Shard int    `json:"shard,omitempty"`
	Word  int    `json:"word,omitempty"`
	// Token is the epoch-qualified fencing token of a write grant.
	Token uint64 `json:"tok,omitempty"`

	Seq  uint64          `json:"seq,omitempty"`
	Resp json.RawMessage `json:"resp,omitempty"`

	Epoch uint64 `json:"epoch,omitempty"`
}

// CorruptError reports a WAL frame that could not be decoded: a CRC
// mismatch (bit flip), an implausible length, or undecodable payload.
// The frame codec returns it typed and never panics; Open's replay
// applies the torn-tail truncation policy on top.
type CorruptError struct {
	// Offset is the byte offset of the bad frame within the log.
	Offset int64
	// Reason is "magic", "length", "crc" or "payload".
	Reason string
	Err    error
}

func (e *CorruptError) Error() string {
	msg := fmt.Sprintf("durable: corrupt WAL frame at offset %d (%s)", e.Offset, e.Reason)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *CorruptError) Unwrap() error { return e.Err }

// ShortError reports a frame whose header or payload extends past the end
// of the log — the signature of a torn final write, which replay truncates.
type ShortError struct {
	Offset     int64
	Need, Have int
}

func (e *ShortError) Error() string {
	return fmt.Sprintf("durable: torn WAL frame at offset %d: need %d bytes, have %d", e.Offset, e.Need, e.Have)
}

// Frame layout: 4-byte little-endian payload length, 4-byte CRC-32C of
// the payload, then the JSON payload. MaxFrame bounds a single payload; a
// length field beyond it is treated as corruption (a bit flip in the
// length would otherwise send the reader chasing gigabytes).
const (
	frameHeader = 8
	MaxFrame    = 1 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame encodes rec and appends its frame to buf, returning the
// extended buffer.
func AppendFrame(buf []byte, rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return buf, fmt.Errorf("durable: marshal record: %w", err)
	}
	if len(payload) > MaxFrame {
		return buf, fmt.Errorf("durable: record exceeds %d bytes", MaxFrame)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...), nil
}

// DecodeFrame decodes the frame starting at b[off:], returning the record
// and the number of bytes consumed. It returns a *ShortError when the
// frame runs past the end of b and a *CorruptError when the frame is
// complete but unreadable; it never panics on any input.
func DecodeFrame(b []byte, off int64) (*Record, int, error) {
	rest := b[off:]
	if len(rest) < frameHeader {
		return nil, 0, &ShortError{Offset: off, Need: frameHeader, Have: len(rest)}
	}
	n := int(binary.LittleEndian.Uint32(rest[0:4]))
	if n > MaxFrame {
		return nil, 0, &CorruptError{Offset: off, Reason: "length",
			Err: fmt.Errorf("payload length %d exceeds %d", n, MaxFrame)}
	}
	if len(rest) < frameHeader+n {
		return nil, 0, &ShortError{Offset: off, Need: frameHeader + n, Have: len(rest)}
	}
	payload := rest[frameHeader : frameHeader+n]
	want := binary.LittleEndian.Uint32(rest[4:8])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, 0, &CorruptError{Offset: off, Reason: "crc",
			Err: fmt.Errorf("checksum %08x, frame claims %08x", got, want)}
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, 0, &CorruptError{Offset: off, Reason: "payload", Err: err}
	}
	return &rec, frameHeader + n, nil
}

// ReadLog decodes every frame in b (the log body, after the file magic).
// It returns the decoded records, the byte length of the valid prefix,
// and the error that ended the scan: nil for a clean end, a *ShortError
// for a torn tail, or a *CorruptError for a bit flip / garbage frame.
// Replay truncates the log to the valid prefix in either error case —
// framing cannot resynchronize past a bad frame — but the typed error
// lets the caller log a CRC failure louder than an ordinary torn write.
func ReadLog(b []byte) ([]*Record, int64, error) {
	var recs []*Record
	var off int64
	for off < int64(len(b)) {
		rec, n, err := DecodeFrame(b, off)
		if err != nil {
			return recs, off, err
		}
		recs = append(recs, rec)
		off += int64(n)
	}
	return recs, off, nil
}
