package durable

import (
	"encoding/json"
	"sort"
)

// Fencing tokens fold the server epoch into their high bits: any token
// minted in epoch e+1 is numerically greater than every token minted in
// epoch e, regardless of the per-key counters. That dominance is what
// makes replay safe even under a lossy fsync policy — if the WAL lost the
// final pre-crash grants, the restored counters may lag tokens already
// handed out, but the bumped epoch keeps every new token strictly above
// every old one, so a replayed server can never re-mint a token a client
// already observed.
const (
	// EpochBits is the width of the epoch field (high bits); the counter
	// takes the rest. 16 bits of epoch is 65535 restarts per data
	// directory; 48 bits of counter is ~2.8e14 write passages per key.
	EpochBits   = 16
	counterBits = 64 - EpochBits
	counterMask = (uint64(1) << counterBits) - 1
)

// MakeToken folds an epoch and a per-key counter into one fencing token.
func MakeToken(epoch, counter uint64) uint64 {
	return epoch<<counterBits | counter&counterMask
}

// TokenEpoch extracts the epoch a token was minted under.
func TokenEpoch(tok uint64) uint64 { return tok >> counterBits }

// TokenCounter extracts a token's per-key counter part.
func TokenCounter(tok uint64) uint64 { return tok & counterMask }

// HoldState is one held or queued lock entry.
type HoldState struct {
	Key  string `json:"key"`
	Mode string `json:"mode"`
}

// CachedResp is one entry of a session's at-most-once response cache, in
// completion order.
type CachedResp struct {
	Seq  uint64          `json:"seq"`
	Resp json.RawMessage `json:"resp"`
}

// SessionState is one session lease with everything needed to restore it:
// the fairness slot, the lease geometry (TTL plus the absolute expiry the
// sweeper re-arms from), holds, queued entries, and the response cache.
type SessionState struct {
	Slot   int          `json:"slot"`
	TTLMS  int64        `json:"ttl_ms"`
	Expiry int64        `json:"expiry"` // unix nanoseconds
	Holds  []HoldState  `json:"holds,omitempty"`
	Queued []HoldState  `json:"queued,omitempty"`
	Resps  []CachedResp `json:"resps,omitempty"`
	// MaxSeq is the highest request seq the session ever began; a
	// resuming client continues its numbering above it so stale cache
	// entries can never answer a fresh request.
	MaxSeq uint64 `json:"max_seq,omitempty"`
}

// Counters are the ledger-relevant shard counters. They are durable
// because rwload's zero-lost/zero-dup reconciliation compares them to
// client observations across server crashes; volatile counters (sheds,
// timeouts) stay in the server and reset on restart.
type Counters struct {
	ReadGrants   uint64 `json:"read_grants"`
	WriteGrants  uint64 `json:"write_grants"`
	Releases     uint64 `json:"releases"`
	Revoked      uint64 `json:"revoked"`
	RevokedWrite uint64 `json:"revoked_write"`
	// Fenced / FencedWrite are the subset of Revoked torn down by epoch
	// bumps (restart fencing) rather than lease expiry.
	Fenced      uint64 `json:"fenced"`
	FencedWrite uint64 `json:"fenced_write"`
}

// ShardState is one shard's durable state: the per-word write-passage
// counters and the ledger counters.
type ShardState struct {
	Words    []uint64 `json:"words"`
	Counters Counters `json:"counters"`
}

// State is the full durable service state. The Store maintains it as a
// shadow (applying every appended record), snapshots marshal it, and
// replay rebuilds it; sharing one apply function between the shadow and
// replay guarantees they agree.
type State struct {
	Epoch    uint64                   `json:"epoch"`
	NextSlot int                      `json:"next_slot"`
	Sessions map[string]*SessionState `json:"sessions"`
	Shards   []*ShardState            `json:"shards"`
}

// NewState returns an empty state with the given shard geometry.
func NewState(shards, wordsPerShard int) *State {
	st := &State{Sessions: map[string]*SessionState{}, Shards: make([]*ShardState, shards)}
	for i := range st.Shards {
		st.Shards[i] = &ShardState{Words: make([]uint64, wordsPerShard)}
	}
	return st
}

// Clone deep-copies the state (the server installs from a clone so the
// shadow can keep mutating).
func (st *State) Clone() *State {
	out := &State{Epoch: st.Epoch, NextSlot: st.NextSlot, Sessions: map[string]*SessionState{}}
	for id, s := range st.Sessions {
		cp := *s
		cp.Holds = append([]HoldState(nil), s.Holds...)
		cp.Queued = append([]HoldState(nil), s.Queued...)
		cp.Resps = make([]CachedResp, len(s.Resps))
		for i, r := range s.Resps {
			cp.Resps[i] = CachedResp{Seq: r.Seq, Resp: append(json.RawMessage(nil), r.Resp...)}
		}
		out.Sessions[id] = &cp
	}
	out.Shards = make([]*ShardState, len(st.Shards))
	for i, sh := range st.Shards {
		out.Shards[i] = &ShardState{Words: append([]uint64(nil), sh.Words...), Counters: sh.Counters}
	}
	return out
}

// HoldCount totals held entries across sessions.
func (st *State) HoldCount() (holds, queued int) {
	for _, s := range st.Sessions {
		holds += len(s.Holds)
		queued += len(s.Queued)
	}
	return holds, queued
}

// SessionIDs returns the session ids in sorted order (deterministic
// restore and logging).
func (st *State) SessionIDs() []string {
	ids := make([]string, 0, len(st.Sessions))
	for id := range st.Sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// shard returns the shard state for idx, growing the slice defensively so
// apply is total even on a log written under a different geometry (Open
// rejects those via the fingerprint; this guard keeps raw replay — and
// the fuzz targets — panic-free regardless).
func (st *State) shard(idx int) *ShardState {
	if idx < 0 {
		idx = 0
	}
	for idx >= len(st.Shards) {
		st.Shards = append(st.Shards, &ShardState{})
	}
	return st.Shards[idx]
}

func (sh *ShardState) bumpWord(word int, counter uint64) {
	if word < 0 {
		return
	}
	for word >= len(sh.Words) {
		sh.Words = append(sh.Words, 0)
	}
	if counter > sh.Words[word] {
		sh.Words[word] = counter
	}
}

func removeHold(list []HoldState, key, mode string) ([]HoldState, bool) {
	for i, h := range list {
		if h.Key == key && h.Mode == mode {
			return append(list[:i], list[i+1:]...), true
		}
	}
	return list, false
}

func (c *Counters) countRevoked(mode string, fenced bool) {
	c.Revoked++
	if mode == "w" {
		c.RevokedWrite++
	}
	if fenced {
		c.Fenced++
		if mode == "w" {
			c.FencedWrite++
		}
	}
}

// Apply folds one record into the state. It is shared by replay and the
// Store's shadow, is total (any record sequence yields some state, never
// a panic), and is idempotent where replay needs it to be: word counters
// advance by max, duplicate holds are not double-inserted, and records
// referencing missing sessions are accounted as revocations rather than
// dropped — a grant that raced a lease expiry into the log must still
// show up in the ledger counters.
func (st *State) Apply(rec *Record) {
	if rec == nil {
		return
	}
	respCap := respCacheCapDefault
	switch rec.Type {
	case RecHello:
		st.Sessions[rec.Session] = &SessionState{Slot: rec.Slot, TTLMS: rec.TTLMS, Expiry: rec.Expiry}
		if rec.Slot+1 > st.NextSlot {
			st.NextSlot = rec.Slot + 1
		}
	case RecRenew:
		if s := st.Sessions[rec.Session]; s != nil && rec.Expiry > s.Expiry {
			s.Expiry = rec.Expiry
		}
	case RecBye:
		// A clean goodbye released its holds first (each with its own
		// record); leftovers mean the bye raced teardown — count them as
		// releases, the clean-path accounting.
		if s := st.Sessions[rec.Session]; s != nil {
			st.shard(rec.Shard).Counters.Releases += uint64(len(s.Holds))
		}
		delete(st.Sessions, rec.Session)
	case RecExpire:
		if s := st.Sessions[rec.Session]; s != nil {
			for _, h := range s.Holds {
				st.shard(shardOf(rec, h)).Counters.countRevoked(h.Mode, false)
			}
		}
		delete(st.Sessions, rec.Session)
	case RecGrant:
		sh := st.shard(rec.Shard)
		if rec.Mode == "w" {
			sh.Counters.WriteGrants++
			sh.bumpWord(rec.Word, TokenCounter(rec.Token))
		} else {
			sh.Counters.ReadGrants++
		}
		s := st.Sessions[rec.Session]
		if s == nil {
			// Ghost grant: the session's expiry record won the append
			// race. The grant still happened — ledger-wise it is an
			// immediately revoked passage.
			sh.Counters.countRevoked(rec.Mode, false)
			return
		}
		if _, dup := findHold(s.Holds, rec.Key, rec.Mode); !dup {
			s.Holds = append(s.Holds, HoldState{Key: rec.Key, Mode: rec.Mode})
		}
	case RecRelease:
		if s := st.Sessions[rec.Session]; s != nil {
			var ok bool
			if s.Holds, ok = removeHold(s.Holds, rec.Key, rec.Mode); ok {
				st.shard(rec.Shard).Counters.Releases++
			}
		}
	case RecEnqueue:
		if s := st.Sessions[rec.Session]; s != nil {
			s.Queued = append(s.Queued, HoldState{Key: rec.Key, Mode: rec.Mode})
		}
	case RecDequeue:
		if s := st.Sessions[rec.Session]; s != nil {
			s.Queued, _ = removeHold(s.Queued, rec.Key, rec.Mode)
		}
	case RecResp:
		if s := st.Sessions[rec.Session]; s != nil {
			s.Resps = append(s.Resps, CachedResp{Seq: rec.Seq, Resp: rec.Resp})
			for len(s.Resps) > respCap {
				s.Resps = s.Resps[1:]
			}
			if rec.Seq > s.MaxSeq {
				s.MaxSeq = rec.Seq
			}
		}
	case RecEpoch:
		if rec.Epoch > st.Epoch {
			st.Epoch = rec.Epoch
		}
		// An epoch bump fences every held and queued entry: holds never
		// cross an epoch boundary (this is the no-double-grant argument —
		// a pre-crash hold is revoked here, and its token's epoch is
		// strictly dominated by every token the new epoch mints).
		for _, id := range st.SessionIDs() {
			s := st.Sessions[id]
			for _, h := range s.Holds {
				st.shard(0).Counters.countRevoked(h.Mode, true)
			}
			s.Holds = nil
			s.Queued = nil
		}
	}
}

// shardOf resolves the shard index for a hold inside a session-level
// record. Expire records carry no per-hold shard index; the counters are
// aggregated across shards by every consumer, so attributing them to the
// record's (zero) shard index keeps totals exact.
func shardOf(rec *Record, _ HoldState) int { return rec.Shard }

func findHold(list []HoldState, key, mode string) (int, bool) {
	for i, h := range list {
		if h.Key == key && h.Mode == mode {
			return i, true
		}
	}
	return -1, false
}

// respCacheCapDefault mirrors lockd's per-session response cache bound; the
// shadow enforces it so a snapshot cannot grow without bound.
const respCacheCapDefault = 512
