package lockd

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/fairness"
	"repro/internal/lockd/durable"
	"repro/internal/lockd/wire"
	"repro/internal/memmodel"
	"repro/internal/native"
	"repro/internal/trace"
)

// Fairness-monitor geometry: each named lock carries a LockedBypassMonitor
// with monReaderSlots reader procs and monWriterSlots writer procs. A
// session's stable slot maps onto that space modulo the slot count, so
// with more than monReaderSlots concurrent sessions distinct sessions can
// share a monitor proc — the bypass readings then blur together but never
// under-report the worst wait.
const (
	monReaderSlots = 32
	monWriterSlots = 32
)

// monProc maps a session slot and mode onto the monitor's proc numbering
// (readers first, then writers).
func monProc(mode string, slot int) int {
	if mode == wire.ModeWrite {
		return monReaderSlots + slot%monWriterSlots
	}
	return slot % monReaderSlots
}

// sectionEvent synthesizes the section-transition pseudo-event the monitor
// consumes; the service has no simulator steps, only transitions.
func sectionEvent(proc int, sec memmodel.Section) trace.Event {
	return trace.Event{Proc: proc, Section: sec, SectionChange: true}
}

// waiter is one queued acquire.
type waiter struct {
	sess *session
	ls   *lockState
	mode string
	// ch delivers the grant (or a typed cancellation error); buffered so
	// the shard never blocks delivering under its mutex.
	ch chan grantResult
	// delivered flips once a result was sent.
	delivered bool //rwguard:shard.mu
}

type grantResult struct {
	passage uint64
	err     error
}

// lockState is one named lock's grant table.
type lockState struct {
	key string
	// word is the lock's passage counter on the shard's native backend;
	// write grants FetchAdd it, so every write passage carries a fencing
	// token unique for the key (words are assigned by key hash and may be
	// shared between keys, which preserves per-key uniqueness). wordIdx
	// is the word's index in the shard arena, recorded in WAL grant
	// records so replay can restore the counter.
	word    memmodel.Var
	wordIdx int
	readers map[*session]struct{} //rwguard:shard.mu
	writer  *session              //rwguard:shard.mu
	queue   []*waiter             //rwguard:shard.mu
	mon     *fairness.LockedBypassMonitor
}

//rwguard:holds shard.mu
func (ls *lockState) holders() int {
	n := len(ls.readers)
	if ls.writer != nil {
		n++
	}
	return n
}

// shardCounters aggregates a shard's lifetime statistics (under shard.mu).
// The ledger-relevant subset (grants, releases, revocations, fencing) is
// restored from durable state on recovery, so it is cumulative over the
// life of a data directory; sheds and timeouts are volatile and reset on
// restart.
type shardCounters struct {
	readGrants   uint64
	writeGrants  uint64
	releases     uint64
	revoked      uint64
	revokedWrite uint64
	fenced       uint64
	fencedWrite  uint64
	sheds        uint64
	timeouts     uint64
}

// shard is one lock-namespace partition: a map of named grant tables
// serialized by one mutex, with the passage counters living on a native
// memmodel backend so write grants are stamped through the same Proc
// interface the algorithm packages use.
type shard struct {
	srv *Server
	idx int

	mu    sync.Mutex
	locks map[string]*lockState //rwguard:mu
	stats shardCounters         //rwguard:mu
	proc  memmodel.Proc         //rwguard:mu single proc, serialized by the shard lock
	words []memmodel.Var
}

func newShard(srv *Server, idx, nWords int) *shard {
	b := native.NewBackend()
	words := b.AllocN(fmt.Sprintf("shard%d.passage", idx), nWords, 0)
	b.Seal()
	return &shard{
		srv:   srv,
		idx:   idx,
		locks: map[string]*lockState{},
		proc:  b.Proc(0),
		words: words,
	}
}

// restore installs recovered durable state: the per-word passage counters
// (so post-restart counters continue above every replayed grant) and the
// cumulative ledger counters.
func (sh *shard) restore(ss *durable.ShardState) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i, v := range ss.Words {
		if i < len(sh.words) && v > 0 {
			sh.proc.Write(sh.words[i], v)
		}
	}
	c := ss.Counters
	sh.stats.readGrants = c.ReadGrants
	sh.stats.writeGrants = c.WriteGrants
	sh.stats.releases = c.Releases
	sh.stats.revoked = c.Revoked
	sh.stats.revokedWrite = c.RevokedWrite
	sh.stats.fenced = c.Fenced
	sh.stats.fencedWrite = c.FencedWrite
}

// logAppend forwards one WAL record to the server's durable store.
func (sh *shard) logAppend(rec *durable.Record) { sh.srv.logAppend(rec) }

// lockStateLocked returns (creating if needed) the grant table for key.
//
//rwguard:holds mu
func (sh *shard) lockStateLocked(key string) *lockState {
	ls := sh.locks[key]
	if ls == nil {
		h := fnv.New32a()
		h.Write([]byte(key))
		wordIdx := int(h.Sum32()) % len(sh.words)
		ls = &lockState{
			key:     key,
			word:    sh.words[wordIdx],
			wordIdx: wordIdx,
			readers: map[*session]struct{}{},
			mon:     fairness.NewLockedBypassMonitor(monReaderSlots+monWriterSlots, monReaderSlots),
		}
		sh.locks[key] = ls
	}
	return ls
}

// grantableLocked reports whether a fresh request could be granted now.
// Strict FIFO: any queued waiter blocks newcomers, so a stream of readers
// cannot starve a queued writer.
//
//rwguard:holds shard.mu
func grantableLocked(ls *lockState, mode string) bool {
	if len(ls.queue) > 0 {
		return false
	}
	if mode == wire.ModeWrite {
		return ls.writer == nil && len(ls.readers) == 0
	}
	return ls.writer == nil
}

// grantLocked installs sess as a holder and returns the passage token,
// folded with the server epoch (tokens from before a restart are strictly
// dominated). Write grants advance the key's fencing counter and are
// WAL-logged before the caller can send the response, so a token a client
// observed always corresponds to a logged grant (per the fsync policy).
//
//rwguard:holds mu
func (sh *shard) grantLocked(ls *lockState, sess *session, mode string) uint64 {
	var tok uint64
	if mode == wire.ModeWrite {
		ls.writer = sess
		sh.stats.writeGrants++
		tok = durable.MakeToken(sh.srv.epoch.Load(), sh.proc.FetchAdd(ls.word, 1)+1)
	} else {
		ls.readers[sess] = struct{}{}
		sh.stats.readGrants++
		tok = durable.MakeToken(sh.srv.epoch.Load(), sh.proc.Read(ls.word))
	}
	sh.logAppend(&durable.Record{Type: durable.RecGrant, Session: sess.id,
		Key: ls.key, Mode: mode, Shard: sh.idx, Word: ls.wordIdx, Token: tok})
	return tok
}

// acquire is the full acquire path: instant grant, tryacquire failure,
// shed, or queue-and-wait with a server-side deadline.
func (sh *shard) acquire(sess *session, key, mode string, wait time.Duration) (uint64, error) {
	sh.mu.Lock()
	if sh.srv.draining.Load() {
		sh.mu.Unlock()
		return 0, ErrDraining
	}
	ls := sh.lockStateLocked(key)
	if grantableLocked(ls, mode) {
		if !sess.addHold(holdKey{key, mode}) {
			sh.mu.Unlock()
			if sess.isExpired() {
				return 0, ErrSessionExpired
			}
			return 0, fmt.Errorf("%w: session already holds %q/%s", ErrBadRequest, key, mode)
		}
		proc := monProc(mode, sess.slot)
		ls.mon.Observe(sectionEvent(proc, memmodel.SecEntry))
		tok := sh.grantLocked(ls, sess, mode)
		ls.mon.Observe(sectionEvent(proc, memmodel.SecCS))
		sh.mu.Unlock()
		return tok, nil
	}
	if sess.holdsKey(holdKey{key, mode}) {
		sh.mu.Unlock()
		return 0, fmt.Errorf("%w: session already holds %q/%s", ErrBadRequest, key, mode)
	}
	if wait <= 0 {
		sh.stats.timeouts++
		sh.mu.Unlock()
		return 0, fmt.Errorf("%w: %q is busy", ErrTimeout, key)
	}
	if len(ls.queue) >= sh.srv.cfg.MaxQueue {
		sh.stats.sheds++
		sh.mu.Unlock()
		return 0, fmt.Errorf("%w: %q has %d waiters", ErrShed, key, sh.srv.cfg.MaxQueue)
	}
	w := &waiter{sess: sess, ls: ls, mode: mode, ch: make(chan grantResult, 1)}
	if !sess.addWaiter(w) {
		sh.mu.Unlock()
		return 0, ErrSessionExpired
	}
	ls.queue = append(ls.queue, w)
	sh.logAppend(&durable.Record{Type: durable.RecEnqueue, Session: sess.id,
		Key: ls.key, Mode: mode, Shard: sh.idx})
	ls.mon.Observe(sectionEvent(monProc(mode, sess.slot), memmodel.SecEntry))
	sh.mu.Unlock()

	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case g := <-w.ch:
		return g.passage, g.err
	case <-timer.C:
		if sh.cancelWaiter(w, nil) {
			sh.mu.Lock()
			sh.stats.timeouts++
			sh.mu.Unlock()
			return 0, fmt.Errorf("%w: waited %v for %q", ErrTimeout, wait, key)
		}
		// The grant (or a revocation) raced the deadline; honor whatever
		// was delivered — the deadline is a bound on queueing, not a
		// guarantee the grant is unused.
		g := <-w.ch
		return g.passage, g.err
	}
}

// cancelWaiter removes w from its queue if no result was delivered yet,
// reporting whether it did. A non-nil err is delivered to the waiter
// (revocation, drain); a nil err means the caller handles the outcome
// (deadline timeout).
func (sh *shard) cancelWaiter(w *waiter, err error) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if w.delivered {
		return false
	}
	w.delivered = true
	q := w.ls.queue
	for i, qw := range q {
		if qw == w {
			w.ls.queue = append(q[:i], q[i+1:]...)
			break
		}
	}
	w.sess.removeWaiter(w)
	sh.logAppend(&durable.Record{Type: durable.RecDequeue, Session: w.sess.id,
		Key: w.ls.key, Mode: w.mode, Shard: sh.idx})
	// Close the monitor's open entry wait: the waiter leaves without
	// entering the CS.
	w.ls.mon.Observe(sectionEvent(monProc(w.mode, w.sess.slot), memmodel.SecRemainder))
	if err != nil {
		w.ch <- grantResult{err: err}
	}
	// Removing a waiter can unblock the queue behind it (e.g. a timed-out
	// head writer with readers holding).
	sh.promoteLocked(w.ls)
	return true
}

// promoteLocked grants queued waiters in FIFO order as far as the lock
// state admits.
//
//rwguard:holds mu
func (sh *shard) promoteLocked(ls *lockState) {
	for len(ls.queue) > 0 {
		w := ls.queue[0]
		if w.mode == wire.ModeWrite {
			if ls.writer != nil || len(ls.readers) > 0 {
				return
			}
		} else if ls.writer != nil {
			return
		}
		ls.queue = ls.queue[1:]
		w.delivered = true
		w.sess.removeWaiter(w)
		sh.logAppend(&durable.Record{Type: durable.RecDequeue, Session: w.sess.id,
			Key: ls.key, Mode: w.mode, Shard: sh.idx})
		if !w.sess.addHold(holdKey{ls.key, w.mode}) {
			// The session expired (or double-holds) while queued: it can
			// no longer receive the grant.
			ls.mon.Observe(sectionEvent(monProc(w.mode, w.sess.slot), memmodel.SecRemainder))
			w.ch <- grantResult{err: ErrRevoked}
			continue
		}
		tok := sh.grantLocked(ls, w.sess, w.mode)
		ls.mon.Observe(sectionEvent(monProc(w.mode, w.sess.slot), memmodel.SecCS))
		w.ch <- grantResult{passage: tok}
	}
}

// release removes sess's hold on key/mode and promotes the queue.
func (sh *shard) release(sess *session, key, mode string) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ls := sh.locks[key]
	if ls == nil {
		return fmt.Errorf("%w: release of unknown lock %q", ErrBadRequest, key)
	}
	if mode == wire.ModeWrite {
		if ls.writer != sess {
			return fmt.Errorf("%w: session does not hold %q/%s", ErrBadRequest, key, mode)
		}
		ls.writer = nil
	} else {
		if _, ok := ls.readers[sess]; !ok {
			return fmt.Errorf("%w: session does not hold %q/%s", ErrBadRequest, key, mode)
		}
		delete(ls.readers, sess)
	}
	sess.removeHold(holdKey{key, mode})
	sh.stats.releases++
	sh.logAppend(&durable.Record{Type: durable.RecRelease, Session: sess.id,
		Key: key, Mode: mode, Shard: sh.idx})
	sh.promoteLocked(ls)
	return nil
}

// revokeHold tears down one hold of an expired session (lease expiry).
func (sh *shard) revokeHold(sess *session, key, mode string) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ls := sh.locks[key]
	if ls == nil {
		return
	}
	switch {
	case mode == wire.ModeWrite && ls.writer == sess:
		ls.writer = nil
	case mode == wire.ModeRead:
		if _, ok := ls.readers[sess]; !ok {
			return
		}
		delete(ls.readers, sess)
	default:
		return
	}
	sess.removeHold(holdKey{key, mode})
	sh.stats.revoked++
	if mode == wire.ModeWrite {
		sh.stats.revokedWrite++
	}
	sh.promoteLocked(ls)
}

// cancelAllWaiters cancels every queued waiter with err (drain).
func (sh *shard) cancelAllWaiters(err error) {
	sh.mu.Lock()
	var all []*waiter
	for _, ls := range sh.locks {
		all = append(all, ls.queue...)
	}
	sh.mu.Unlock()
	for _, w := range all {
		sh.cancelWaiter(w, err)
	}
}

// holdCount returns the number of outstanding holds in the shard.
func (sh *shard) holdCount() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n := 0
	for _, ls := range sh.locks {
		n += ls.holders()
	}
	return n
}

// HoldInfo describes one outstanding hold (drain leak reporting).
type HoldInfo struct {
	Key     string
	Mode    string
	Session string
}

// leakedHolds lists the shard's outstanding holds.
func (sh *shard) leakedHolds() []HoldInfo {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var out []HoldInfo
	for _, ls := range sh.locks {
		if ls.writer != nil {
			out = append(out, HoldInfo{Key: ls.key, Mode: wire.ModeWrite, Session: ls.writer.id})
		}
		for r := range ls.readers {
			out = append(out, HoldInfo{Key: ls.key, Mode: wire.ModeRead, Session: r.id})
		}
	}
	return out
}

// snapshotStats renders the shard's counters and fairness readings.
func (sh *shard) snapshotStats() wire.ShardStats {
	sh.mu.Lock()
	st := wire.ShardStats{
		Locks:        len(sh.locks),
		ReadGrants:   sh.stats.readGrants,
		WriteGrants:  sh.stats.writeGrants,
		Releases:     sh.stats.releases,
		Revoked:      sh.stats.revoked,
		RevokedWrite: sh.stats.revokedWrite,
		Fenced:       sh.stats.fenced,
		FencedWrite:  sh.stats.fencedWrite,
		Sheds:        sh.stats.sheds,
		Timeouts:     sh.stats.timeouts,
	}
	mons := make([]*fairness.LockedBypassMonitor, 0, len(sh.locks))
	for _, ls := range sh.locks {
		st.Held += ls.holders()
		st.Queued += len(ls.queue)
		mons = append(mons, ls.mon)
	}
	sh.mu.Unlock()
	// The monitors are queried outside shard.mu — that concurrency safety
	// is exactly what LockedBypassMonitor exists for.
	for _, m := range mons {
		if v := m.MaxReaderBypass(); v > st.MaxReaderBypass {
			st.MaxReaderBypass = v
		}
		if v := m.MaxWriterBypass(); v > st.MaxWriterBypass {
			st.MaxWriterBypass = v
		}
	}
	return st
}
