package lockd

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/lockd/wire"
)

// ChaosConfig is the seeded fault-injection layer between client and
// server. It operates on whole protocol messages (both sides write one
// message per Write call and messages are newline-framed), in both
// directions, with independent per-message faults:
//
//   - Drop: the message silently vanishes (lost request or response);
//   - Dup: the message is delivered twice (retransmission storm);
//   - Delay: delivery is postponed by up to MaxDelay, which can reorder
//     messages (fail-slow link);
//   - Disconnect: the connection is cut (crash of the link or peer).
//
// All randomness derives from Seed, so a chaos test's fault pattern is
// reproducible given the same schedule of messages.
type ChaosConfig struct {
	Seed       int64
	Drop       float64
	Dup        float64
	Delay      float64
	Disconnect float64
	// MaxDelay bounds a delayed message's extra latency (default 20ms).
	MaxDelay time.Duration
}

// Enabled reports whether any fault has nonzero probability.
func (c ChaosConfig) Enabled() bool {
	return c.Drop > 0 || c.Dup > 0 || c.Delay > 0 || c.Disconnect > 0
}

// chaosRand is the shared, locked fault source for one dialer.
type chaosRand struct {
	mu  sync.Mutex
	rng *rand.Rand //rwguard:mu
}

func (r *chaosRand) roll() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Float64()
}

func (r *chaosRand) delay(max time.Duration) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return time.Duration(r.rng.Int63n(int64(max)))
}

// ChaosDialer wraps dial (nil for plain TCP) so every connection it
// produces injects cfg's faults on both directions.
func ChaosDialer(cfg ChaosConfig, dial func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 20 * time.Millisecond
	}
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	cr := &chaosRand{rng: rand.New(rand.NewSource(cfg.Seed))}
	return func(addr string) (net.Conn, error) {
		c, err := dial(addr)
		if err != nil {
			return nil, err
		}
		return newChaosConn(c, cfg, cr), nil
	}
}

// chaosConn injects faults around an underlying conn. The write path
// (client->server) treats each Write as one message; the read path
// (server->client) reframes the inbound byte stream into messages through
// a pump goroutine and delivers them via an in-process pipe.
type chaosConn struct {
	net.Conn
	cfg ChaosConfig
	cr  *chaosRand

	wmu sync.Mutex // serializes underlying writes (delayed ones included)

	pr *io.PipeReader
	pw *io.PipeWriter

	closeOnce sync.Once
}

func newChaosConn(c net.Conn, cfg ChaosConfig, cr *chaosRand) *chaosConn {
	pr, pw := io.Pipe()
	cc := &chaosConn{Conn: c, cfg: cfg, cr: cr, pr: pr, pw: pw}
	go cc.readPump()
	return cc
}

// apply runs the fault schedule for one message, invoking deliver zero
// (drop), one, or two (dup) times; deliveries may be pushed onto delayed
// goroutines. It reports false when the fault was a disconnect.
func (cc *chaosConn) apply(deliver func()) bool {
	if cc.cfg.Disconnect > 0 && cc.cr.roll() < cc.cfg.Disconnect {
		cc.Close()
		return false
	}
	if cc.cfg.Drop > 0 && cc.cr.roll() < cc.cfg.Drop {
		return true
	}
	n := 1
	if cc.cfg.Dup > 0 && cc.cr.roll() < cc.cfg.Dup {
		n = 2
	}
	for i := 0; i < n; i++ {
		if cc.cfg.Delay > 0 && cc.cr.roll() < cc.cfg.Delay {
			d := cc.cr.delay(cc.cfg.MaxDelay)
			go func() {
				time.Sleep(d)
				deliver()
			}()
			continue
		}
		deliver()
	}
	return true
}

// Write handles one outbound message.
func (cc *chaosConn) Write(b []byte) (int, error) {
	msg := append([]byte(nil), b...) // deliveries may outlive the caller's buffer
	ok := cc.apply(func() {
		cc.wmu.Lock()
		defer cc.wmu.Unlock()
		cc.Conn.Write(msg) // errors surface via the read path
	})
	if !ok {
		return 0, io.ErrClosedPipe
	}
	return len(b), nil
}

// readPump reframes the inbound stream and injects faults per message.
func (cc *chaosConn) readPump() {
	sc := wire.NewScanner(cc.Conn)
	for sc.Scan() {
		msg := append(append([]byte(nil), sc.Bytes()...), '\n')
		if !cc.apply(func() {
			cc.pw.Write(msg) // pipe writes are internally serialized
		}) {
			return
		}
	}
	err := sc.Err()
	if err == nil {
		err = io.EOF
	}
	cc.pw.CloseWithError(err)
}

// Read delivers fault-processed inbound messages.
func (cc *chaosConn) Read(b []byte) (int, error) { return cc.pr.Read(b) }

// Close tears down both the underlying conn and the pipe.
func (cc *chaosConn) Close() error {
	var err error
	cc.closeOnce.Do(func() {
		err = cc.Conn.Close()
		cc.pw.CloseWithError(io.ErrClosedPipe)
		cc.pr.Close()
	})
	return err
}
