package lockd

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/lockd/wire"
)

// startServer spins up a server on an ephemeral port and returns it with
// a cleanup-registered shutdown.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv
}

func dialT(t *testing.T, srv *Server, opts Options) *Client {
	t.Helper()
	c, err := Dial(context.Background(), srv.Addr().String(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func ctxT(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestAcquireReleaseBasics(t *testing.T) {
	srv := startServer(t, Config{})
	c := dialT(t, srv, Options{})
	ctx := ctxT(t)

	// Two concurrent read holds, write excluded meanwhile.
	c2 := dialT(t, srv, Options{})
	r1, err := c.Acquire(ctx, "k", ModeRead, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c2.Acquire(ctx, "k", ModeRead, time.Second)
	if err != nil {
		t.Fatalf("second reader blocked: %v", err)
	}
	if _, err := c.TryAcquire(ctx, "k", ModeWrite); !errors.Is(err, ErrTimeout) {
		t.Fatalf("tryacquire write under readers: %v, want ErrTimeout", err)
	}
	if err := r1.Release(ctx); err != nil {
		t.Fatal(err)
	}
	if err := r2.Release(ctx); err != nil {
		t.Fatal(err)
	}

	// Write tokens are strictly increasing per key.
	var last uint64
	for i := 0; i < 3; i++ {
		w, err := c.Acquire(ctx, "k", ModeWrite, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if w.Passage <= last {
			t.Fatalf("write passage %d not increasing past %d", w.Passage, last)
		}
		last = w.Passage
		if err := w.Release(ctx); err != nil {
			t.Fatal(err)
		}
	}

	// Releasing something not held is a typed bad request.
	h := &Hold{c: c, Key: "k", Mode: ModeWrite}
	if err := h.Release(ctx); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("release of unheld lock: %v, want ErrBadRequest", err)
	}
}

func TestAcquireDeadlineAndQueue(t *testing.T) {
	srv := startServer(t, Config{})
	holder := dialT(t, srv, Options{})
	waiterC := dialT(t, srv, Options{})
	ctx := ctxT(t)

	w, err := holder.Acquire(ctx, "q", ModeWrite, time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// Deadline-bounded acquire under contention times out with the typed
	// error.
	start := time.Now()
	if _, err := waiterC.Acquire(ctx, "q", ModeWrite, 80*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("deadline acquire: %v, want ErrTimeout", err)
	}
	if el := time.Since(start); el < 60*time.Millisecond {
		t.Fatalf("timed out after %v, before the deadline", el)
	}

	// A queued waiter is granted when the holder releases.
	grantCh := make(chan error, 1)
	go func() {
		h, err := waiterC.Acquire(ctx, "q", ModeRead, 5*time.Second)
		if err == nil {
			err = h.Release(ctx)
		}
		grantCh <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the waiter enqueue
	if err := w.Release(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-grantCh; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
}

func TestBoundedQueueSheds(t *testing.T) {
	srv := startServer(t, Config{MaxQueue: 2})
	holder := dialT(t, srv, Options{})
	ctx := ctxT(t)

	w, err := holder.Acquire(ctx, "s", ModeWrite, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Release(ctx)

	// Fill the queue with two waiters, then the third acquire must shed.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		c := dialT(t, srv, Options{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Acquire(ctx, "s", ModeWrite, 2*time.Second) //nolint:errcheck // cancelled by release below
		}()
	}
	waitFor(t, time.Second, func() bool { return queuedTotal(srv) == 2 })

	c3 := dialT(t, srv, Options{})
	if _, err := c3.Acquire(ctx, "s", ModeWrite, time.Second); !errors.Is(err, ErrShed) {
		t.Fatalf("over-full queue: %v, want ErrShed", err)
	}
	w.Release(ctx)
	wg.Wait()
}

// TestWriterNotStarved: a queued writer is granted even under a stream of
// later readers (strict FIFO admission).
func TestWriterNotStarved(t *testing.T) {
	srv := startServer(t, Config{})
	ctx := ctxT(t)
	reader := dialT(t, srv, Options{})
	writer := dialT(t, srv, Options{})
	late := dialT(t, srv, Options{})

	r, err := reader.Acquire(ctx, "f", ModeRead, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	wCh := make(chan error, 1)
	go func() {
		h, err := writer.Acquire(ctx, "f", ModeWrite, 5*time.Second)
		if err == nil {
			defer h.Release(ctx)
		}
		wCh <- err
	}()
	waitFor(t, time.Second, func() bool { return queuedTotal(srv) == 1 })

	// A reader arriving behind the queued writer must queue, not jump it.
	lateCh := make(chan error, 1)
	go func() {
		h, err := late.Acquire(ctx, "f", ModeRead, 5*time.Second)
		if err == nil {
			defer h.Release(ctx)
		}
		lateCh <- err
	}()
	waitFor(t, time.Second, func() bool { return queuedTotal(srv) == 2 })

	if err := r.Release(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-wCh; err != nil {
		t.Fatalf("queued writer: %v", err)
	}
	if err := <-lateCh; err != nil {
		t.Fatalf("late reader: %v", err)
	}
}

func TestLeaseExpiryRevokesHoldsAndWaiters(t *testing.T) {
	srv := startServer(t, Config{MinTTL: 50 * time.Millisecond, SweepInterval: 10 * time.Millisecond})
	ctx := ctxT(t)

	// Victim holds the write lock, then is killed without a goodbye.
	victim := dialT(t, srv, Options{TTL: 100 * time.Millisecond})
	vh, err := victim.Acquire(ctx, "lease", ModeWrite, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	firstToken := vh.Passage

	// A second session queued behind the victim's expired lease must also
	// be revoked when it, too, stops heartbeating... first verify the
	// *happy* path: the waiter outlives the victim and gets the grant.
	waiter := dialT(t, srv, Options{TTL: 2 * time.Second})
	grantCh := make(chan *Hold, 1)
	errCh := make(chan error, 1)
	go func() {
		h, err := waiter.Acquire(ctx, "lease", ModeWrite, 5*time.Second)
		if err != nil {
			errCh <- err
			return
		}
		grantCh <- h
	}()
	time.Sleep(30 * time.Millisecond) // waiter enqueues behind the victim

	start := time.Now()
	victim.Abandon() // kill -9: no release, no heartbeats

	select {
	case h := <-grantCh:
		if el := time.Since(start); el > time.Second {
			t.Fatalf("re-grant took %v, far past the 100ms TTL", el)
		}
		if h.Passage <= firstToken {
			t.Fatalf("re-grant token %d not past the revoked holder's %d", h.Passage, firstToken)
		}
		h.Release(ctx)
	case err := <-errCh:
		t.Fatalf("waiter failed: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("lock never re-granted after lease expiry")
	}

	st := srv.Stats()
	if got := sumRevoked(st); got != 1 {
		t.Fatalf("revoked holds = %d, want 1", got)
	}

	// Queued-waiter revocation: hold with one session, queue another, let
	// the queued one's lease lapse.
	holder := dialT(t, srv, Options{TTL: 5 * time.Second})
	h2, err := holder.Acquire(ctx, "lease2", ModeWrite, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	doomed := dialT(t, srv, Options{TTL: 100 * time.Millisecond})
	doomedCh := make(chan error, 1)
	go func() {
		_, err := doomed.Acquire(ctx, "lease2", ModeWrite, 10*time.Second)
		doomedCh <- err
	}()
	time.Sleep(30 * time.Millisecond)
	doomed.Abandon()
	select {
	case err := <-doomedCh:
		if !errors.Is(err, ErrRevoked) && !errors.Is(err, ErrDisconnected) {
			t.Fatalf("abandoned waiter: %v, want ErrRevoked or ErrDisconnected", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned waiter never cancelled")
	}
	waitFor(t, time.Second, func() bool { return queuedTotal(srv) == 0 })
	h2.Release(ctx)
}

func TestHeartbeatKeepsSessionAlive(t *testing.T) {
	srv := startServer(t, Config{MinTTL: 80 * time.Millisecond, SweepInterval: 10 * time.Millisecond})
	ctx := ctxT(t)
	c := dialT(t, srv, Options{TTL: 80 * time.Millisecond})
	h, err := c.Acquire(ctx, "hb", ModeWrite, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Survive several TTLs thanks to heartbeats.
	time.Sleep(400 * time.Millisecond)
	if err := h.Release(ctx); err != nil {
		t.Fatalf("hold did not survive heartbeated TTLs: %v", err)
	}
	if got := sumRevoked(srv.Stats()); got != 0 {
		t.Fatalf("revocations = %d, want 0", got)
	}
}

func TestDrain(t *testing.T) {
	srv := startServer(t, Config{})
	ctx := ctxT(t)
	c := dialT(t, srv, Options{})
	h, err := c.Acquire(ctx, "d", ModeWrite, time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// A queued waiter at drain time is cancelled with ErrDraining.
	qc := dialT(t, srv, Options{})
	qCh := make(chan error, 1)
	go func() {
		_, err := qc.Acquire(ctx, "d", ModeWrite, 10*time.Second)
		qCh <- err
	}()
	waitFor(t, time.Second, func() bool { return queuedTotal(srv) == 1 })

	// Drain in the background; release the hold shortly after.
	leakCh := make(chan []HoldInfo, 1)
	go func() { leakCh <- srv.Drain(5 * time.Second) }()
	if err := <-qCh; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued waiter at drain: %v, want ErrDraining", err)
	}

	// New acquires are refused while draining.
	if _, err := c.Acquire(ctx, "other", ModeRead, time.Second); !errors.Is(err, ErrDraining) {
		t.Fatalf("acquire during drain: %v, want ErrDraining", err)
	}

	time.Sleep(50 * time.Millisecond)
	if err := h.Release(ctx); err != nil {
		t.Fatal(err)
	}
	if leaked := <-leakCh; len(leaked) != 0 {
		t.Fatalf("leaked holds after clean drain: %v", leaked)
	}
}

func TestDrainReportsLeakedHolds(t *testing.T) {
	srv := startServer(t, Config{})
	ctx := ctxT(t)
	c := dialT(t, srv, Options{})
	if _, err := c.Acquire(ctx, "leak", ModeWrite, time.Second); err != nil {
		t.Fatal(err)
	}
	leaked := srv.Drain(100 * time.Millisecond)
	if len(leaked) != 1 || leaked[0].Key != "leak" || leaked[0].Mode != ModeWrite {
		t.Fatalf("leaked = %+v, want the write hold on %q", leaked, "leak")
	}
}

func TestStatsAndFairnessCounters(t *testing.T) {
	srv := startServer(t, Config{})
	ctx := ctxT(t)
	c := dialT(t, srv, Options{})
	c2 := dialT(t, srv, Options{})

	h, err := c.Acquire(ctx, "st", ModeWrite, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// c2 waits, so the monitor records at least one overtake when c
	// re-enters... keep it simple: contend a little.
	done := make(chan struct{})
	go func() {
		defer close(done)
		h2, err := c2.Acquire(ctx, "st", ModeWrite, 5*time.Second)
		if err == nil {
			h2.Release(ctx)
		}
	}()
	time.Sleep(30 * time.Millisecond)
	h.Release(ctx)
	<-done

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions < 2 {
		t.Errorf("sessions = %d, want >= 2", st.Sessions)
	}
	var grants, releases uint64
	for _, sh := range st.Shards {
		grants += sh.WriteGrants
		releases += sh.Releases
	}
	if grants != 2 || releases != 2 {
		t.Errorf("write grants/releases = %d/%d, want 2/2", grants, releases)
	}
}

// TestAtMostOnceDedup drives the server through a raw connection and
// verifies a retransmitted acquire seq returns the original grant rather
// than a second one.
func TestAtMostOnceDedup(t *testing.T) {
	srv := startServer(t, Config{})
	raw := rawDial(t, srv)

	hello := raw.roundTrip(t, &wire.Request{Seq: 1, Op: wire.OpHello})
	if !hello.OK {
		t.Fatalf("hello: %+v", hello)
	}
	first := raw.roundTrip(t, &wire.Request{Seq: 2, Op: wire.OpAcquire, Key: "dup", Mode: wire.ModeWrite, WaitMS: 1000})
	if !first.OK {
		t.Fatalf("acquire: %+v", first)
	}
	retrans := raw.roundTrip(t, &wire.Request{Seq: 2, Op: wire.OpAcquire, Key: "dup", Mode: wire.ModeWrite, WaitMS: 1000})
	if !retrans.OK || retrans.Passage != first.Passage {
		t.Fatalf("retransmit got %+v, want the original grant %+v", retrans, first)
	}
	st := srv.Stats()
	var grants uint64
	for _, sh := range st.Shards {
		grants += sh.WriteGrants
	}
	if grants != 1 {
		t.Fatalf("write grants = %d after retransmit, want 1 (at-most-once)", grants)
	}
}

func TestProtocolErrors(t *testing.T) {
	srv := startServer(t, Config{})
	raw := rawDial(t, srv)

	// First request must be hello.
	resp := raw.roundTrip(t, &wire.Request{Seq: 1, Op: wire.OpAcquire, Key: "x", Mode: "r"})
	if resp.OK || resp.Code != wire.CodeBadRequest {
		t.Fatalf("pre-hello acquire: %+v", resp)
	}

	raw2 := rawDial(t, srv)
	if resp := raw2.roundTrip(t, &wire.Request{Seq: 1, Op: wire.OpHello}); !resp.OK {
		t.Fatalf("hello: %+v", resp)
	}
	for _, bad := range []*wire.Request{
		{Seq: 2, Op: wire.OpAcquire, Key: "", Mode: "r"},
		{Seq: 3, Op: wire.OpAcquire, Key: "x", Mode: "rw"},
		{Seq: 4, Op: "frobnicate"},
		{Seq: 5, Op: wire.OpHello},
	} {
		if resp := raw2.roundTrip(t, bad); resp.OK || resp.Code != wire.CodeBadRequest {
			t.Errorf("%q: %+v, want bad-request", bad.Op, resp)
		}
	}
}

// --- helpers ---

func queuedTotal(srv *Server) int {
	n := 0
	for _, sh := range srv.Stats().Shards {
		n += sh.Queued
	}
	return n
}

func sumRevoked(st wire.Stats) uint64 {
	var n uint64
	for _, sh := range st.Shards {
		n += sh.Revoked
	}
	return n
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// raw drives the wire protocol directly (no Client retry machinery), for
// testing server-side dedup and protocol validation.
type raw struct {
	conn net.Conn
	sc   *bufio.Scanner
}

func rawDial(t *testing.T, srv *Server) *raw {
	t.Helper()
	c, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &raw{conn: c, sc: wire.NewScanner(c)}
}

func (r *raw) roundTrip(t *testing.T, req *wire.Request) *wire.Response {
	t.Helper()
	buf, err := wire.Append(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	r.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if !r.sc.Scan() {
		t.Fatalf("no response: %v", r.sc.Err())
	}
	var resp wire.Response
	if err := json.Unmarshal(r.sc.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return &resp
}
