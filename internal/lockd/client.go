package lockd

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lockd/wire"
)

// Lock modes, re-exported so callers need not import the wire package.
const (
	ModeRead  = wire.ModeRead
	ModeWrite = wire.ModeWrite
)

// Options parameterizes a client connection. Zero values select defaults.
type Options struct {
	// TTL is the requested session lease; the server clamps it and the
	// granted value is available as Client.TTL (default: server default).
	TTL time.Duration
	// HeartbeatEvery overrides the heartbeat period (default: granted
	// TTL / 3).
	HeartbeatEvery time.Duration
	// RetransmitAfter is the initial response timeout before a request is
	// retransmitted with the same seq; it doubles per retry up to 8x
	// (default 100ms).
	RetransmitAfter time.Duration
	// ResumeSession, when set, asks hello to re-attach to an existing
	// session after a reconnect (its lease and response cache survive a
	// server restart via the WAL). If the server no longer knows the
	// session a fresh one is minted; Client.Resumed reports which
	// happened.
	ResumeSession string
	// Dialer overrides the TCP dial — the chaos transport hooks in here.
	Dialer func(addr string) (net.Conn, error)
}

// Client is one rwlockd session. All methods are safe for concurrent use;
// a client whose connection (or lease) dies fails every call with
// ErrDisconnected or ErrSessionExpired and must be replaced by a fresh
// Dial — reconnection is reacquisition, by design (recovery ↔
// reconnect-and-reacquire).
type Client struct {
	opts Options
	conn net.Conn

	wmu  sync.Mutex
	wbuf []byte //rwguard:wmu

	seq atomic.Uint64

	pmu     sync.Mutex
	pending map[uint64]chan *wire.Response //rwguard:pmu
	deadErr error                          //rwguard:pmu set once, before deadCh closes

	deadCh chan struct{}
	hbStop chan struct{}

	closeOnce sync.Once
	session   string
	ttl       time.Duration
	epoch     uint64 // server epoch reported by hello
	resumed   bool   // hello re-attached to ResumeSession
}

// Dial connects, performs the hello handshake, and starts the heartbeat.
func Dial(ctx context.Context, addr string, opts Options) (*Client, error) {
	if opts.RetransmitAfter <= 0 {
		opts.RetransmitAfter = 100 * time.Millisecond
	}
	dial := opts.Dialer
	if dial == nil {
		dial = func(addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	conn, err := dial(addr)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrDisconnected, addr, err)
	}
	c := &Client{
		opts:    opts,
		conn:    conn,
		pending: map[uint64]chan *wire.Response{},
		deadCh:  make(chan struct{}),
		hbStop:  make(chan struct{}),
	}
	go c.readLoop()

	hctx := ctx
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		hctx, cancel = context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
	}
	resp, err := c.call(hctx, &wire.Request{Op: wire.OpHello,
		TTLMS: opts.TTL.Milliseconds(), Session: opts.ResumeSession})
	if err != nil {
		c.Abandon()
		return nil, fmt.Errorf("hello: %w", err)
	}
	if !resp.OK {
		c.Abandon()
		return nil, fmt.Errorf("hello: %w", codeErr(resp.Code, resp.Err))
	}
	c.session = resp.Session
	c.ttl = time.Duration(resp.TTLMS) * time.Millisecond
	c.epoch = resp.Epoch
	c.resumed = resp.Resumed
	if resp.Resumed {
		// Continue the seq numbering above everything the resumed session
		// ever began, so a fresh request can never collide with a cached
		// or in-flight seq from before the reconnect.
		for {
			cur := c.seq.Load()
			if cur >= resp.MaxSeq || c.seq.CompareAndSwap(cur, resp.MaxSeq) {
				break
			}
		}
	}
	hb := opts.HeartbeatEvery
	if hb <= 0 {
		hb = c.ttl / 3
	}
	if hb <= 0 {
		hb = time.Second
	}
	go c.heartbeatLoop(hb)
	return c, nil
}

// SessionID returns the server-assigned session id.
func (c *Client) SessionID() string { return c.session }

// TTL returns the granted lease TTL.
func (c *Client) TTL() time.Duration { return c.ttl }

// Epoch returns the server epoch reported by hello. It bumps on every
// restart of a durable server; a jump between reconnects tells the client
// its pre-crash holds were fenced.
func (c *Client) Epoch() uint64 { return c.epoch }

// Resumed reports whether hello re-attached to Options.ResumeSession.
func (c *Client) Resumed() bool { return c.resumed }

// markDead records the terminal error (first writer wins) and wakes every
// in-flight call.
func (c *Client) markDead(err error) {
	c.pmu.Lock()
	already := c.deadErr != nil
	if !already {
		c.deadErr = err
	}
	c.pmu.Unlock()
	if !already {
		close(c.deadCh)
		c.conn.Close()
	}
}

func (c *Client) deadError() error {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if c.deadErr != nil {
		return c.deadErr
	}
	return ErrDisconnected
}

// readLoop dispatches responses to pending calls by seq. Responses with no
// pending entry (duplicates, or answers to calls that gave up) are
// dropped.
func (c *Client) readLoop() {
	sc := wire.NewScanner(c.conn)
	for sc.Scan() {
		resp, err := wire.DecodeResponse(sc.Bytes())
		if err != nil {
			continue // a malformed line is dropped; retransmit recovers
		}
		c.pmu.Lock()
		ch := c.pending[resp.Seq]
		c.pmu.Unlock()
		if ch != nil {
			select {
			case ch <- resp:
			default: // duplicate delivery of the same seq
			}
		}
	}
	err := sc.Err()
	if err == nil {
		err = fmt.Errorf("%w: connection closed", ErrDisconnected)
	} else {
		err = fmt.Errorf("%w: %v", ErrDisconnected, err)
	}
	c.markDead(err)
}

// send writes one request as a single Write call (the framing the chaos
// transport relies on).
func (c *Client) send(req *wire.Request) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	buf, err := wire.Append(c.wbuf[:0], req)
	if err != nil {
		return err
	}
	c.wbuf = buf[:0]
	if _, err := c.conn.Write(buf); err != nil {
		return fmt.Errorf("%w: %v", ErrDisconnected, err)
	}
	return nil
}

// call performs one at-most-once request: it assigns a fresh seq,
// transmits, and retransmits the identical request under backoff until a
// response, the context deadline, or connection death. The server
// deduplicates by seq, so a retransmitted acquire can never double-grant.
func (c *Client) call(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	req.Seq = c.seq.Add(1)
	ch := make(chan *wire.Response, 1)
	c.pmu.Lock()
	if c.deadErr != nil {
		err := c.deadErr
		c.pmu.Unlock()
		return nil, err
	}
	c.pending[req.Seq] = ch
	c.pmu.Unlock()
	defer func() {
		c.pmu.Lock()
		delete(c.pending, req.Seq)
		c.pmu.Unlock()
	}()

	rto := c.opts.RetransmitAfter
	maxRTO := 8 * c.opts.RetransmitAfter
	timer := time.NewTimer(rto)
	defer timer.Stop()
	for {
		if err := c.send(req); err != nil {
			// The write failed; the read loop will observe the dead conn
			// too, but fail fast here.
			c.markDead(err)
			return nil, c.deadError()
		}
		select {
		case resp := <-ch:
			return resp, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-c.deadCh:
			return nil, c.deadError()
		case <-timer.C:
			if rto < maxRTO {
				rto *= 2
			}
			timer.Reset(rto)
		}
	}
}

// heartbeatLoop renews the lease until the client dies or closes.
func (c *Client) heartbeatLoop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-c.hbStop:
			return
		case <-c.deadCh:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), every)
			resp, err := c.call(ctx, &wire.Request{Op: wire.OpHeartbeat})
			cancel()
			if err != nil {
				continue // timeout: keep trying until the lease verdict is in
			}
			if !resp.OK {
				// The lease is gone; every hold was revoked server-side.
				c.markDead(fmt.Errorf("%w: heartbeat rejected: %s", ErrSessionExpired, resp.Err))
				return
			}
		}
	}
}

// Hold is one granted lock passage.
type Hold struct {
	c    *Client
	Key  string
	Mode string
	// Passage is the grant's fencing token: unique and strictly
	// increasing per key for write grants.
	Passage uint64
}

// Acquire requests key in mode, letting the server queue the request up
// to wait (wait <= 0 is tryacquire: fail immediately when the lock is
// busy). Failures are typed: ErrTimeout, ErrShed, ErrDraining,
// ErrRevoked, ErrSessionExpired, ErrDisconnected.
func (c *Client) Acquire(ctx context.Context, key, mode string, wait time.Duration) (*Hold, error) {
	waitMS := wait.Milliseconds()
	if wait > 0 && waitMS == 0 {
		waitMS = 1 // don't let a sub-millisecond wait degrade to tryacquire
	}
	if _, ok := ctx.Deadline(); !ok && wait >= 0 {
		// Budget: the server-side wait plus transport slack.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, wait+5*time.Second)
		defer cancel()
	}
	resp, err := c.call(ctx, &wire.Request{Op: wire.OpAcquire, Key: key, Mode: mode, WaitMS: waitMS})
	if err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("%w: %v", ErrTimeout, err)
		}
		return nil, err
	}
	if !resp.OK {
		return nil, codeErr(resp.Code, resp.Err)
	}
	return &Hold{c: c, Key: key, Mode: mode, Passage: resp.Passage}, nil
}

// TryAcquire is Acquire with no queueing.
func (c *Client) TryAcquire(ctx context.Context, key, mode string) (*Hold, error) {
	return c.Acquire(ctx, key, mode, 0)
}

// Release gives the hold back, quoting its fencing token so a server that
// restarted since the grant answers ErrEpochFenced instead of silently
// mismatching. The zero-deadline default budget is 5s.
func (h *Hold) Release(ctx context.Context) error {
	return h.c.Release(ctx, h.Key, h.Mode, h.Passage)
}

// Release releases key/mode, quoting the grant's fencing token (0 skips
// the epoch check). A token minted before the server's current epoch
// fails with ErrEpochFenced: the hold did not survive the restart and the
// client must surrender it.
func (c *Client) Release(ctx context.Context, key, mode string, passage uint64) error {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
	}
	resp, err := c.call(ctx, &wire.Request{Op: wire.OpRelease, Key: key, Mode: mode, Passage: passage})
	if err != nil {
		return err
	}
	if !resp.OK {
		return codeErr(resp.Code, resp.Err)
	}
	return nil
}

// Stats fetches a server state snapshot.
func (c *Client) Stats(ctx context.Context) (*wire.Stats, error) {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
	}
	resp, err := c.call(ctx, &wire.Request{Op: wire.OpStats})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, codeErr(resp.Code, resp.Err)
	}
	return resp.Stats, nil
}

// Close says goodbye (releasing all holds server-side) and tears the
// connection down.
func (c *Client) Close() {
	c.closeOnce.Do(func() {
		close(c.hbStop)
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_, _ = c.call(ctx, &wire.Request{Op: wire.OpBye})
		cancel()
		c.markDead(fmt.Errorf("%w: closed", ErrDisconnected))
	})
}

// Abandon drops the connection without a goodbye — the client-side
// simulation of kill -9. The session's holds survive server-side until
// the lease expires.
func (c *Client) Abandon() {
	c.closeOnce.Do(func() {
		close(c.hbStop)
		c.markDead(fmt.Errorf("%w: abandoned", ErrDisconnected))
	})
}
