package lockd

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestChaosLeaseExpiryRegrant is the core robustness gate: a client is
// killed (kill -9 style: no release, no heartbeats) while holding the
// write lock mid-passage, and the lock must be re-granted to a live
// waiter once the lease expires — within a small multiple of the TTL.
func TestChaosLeaseExpiryRegrant(t *testing.T) {
	const ttl = 150 * time.Millisecond
	srv := startServer(t, Config{MinTTL: 50 * time.Millisecond, SweepInterval: 10 * time.Millisecond})
	ctx := ctxT(t)

	victim := dialT(t, srv, Options{TTL: ttl})
	vh, err := victim.Acquire(ctx, "regrant", ModeWrite, time.Second)
	if err != nil {
		t.Fatal(err)
	}

	survivor := dialT(t, srv, Options{TTL: 2 * time.Second})
	killed := make(chan time.Time, 1)
	go func() {
		time.Sleep(30 * time.Millisecond) // mid-passage
		victim.Abandon()
		killed <- time.Now()
	}()
	h, err := survivor.Acquire(ctx, "regrant", ModeWrite, 10*time.Second)
	if err != nil {
		t.Fatalf("survivor never got the lock: %v", err)
	}
	since := time.Since(<-killed)
	// The lease must lapse (>= TTL since the last victim request) but the
	// re-grant must land promptly after; 10x TTL is generous slack for a
	// loaded -race CI box while still catching a wedged sweeper.
	if since > 10*ttl {
		t.Fatalf("re-grant took %v after the kill; lease expiry is wedged (ttl %v)", since, ttl)
	}
	if h.Passage <= vh.Passage {
		t.Fatalf("fencing token did not advance: victim %d, survivor %d", vh.Passage, h.Passage)
	}
	if err := h.Release(ctx); err != nil {
		t.Fatal(err)
	}
}

// chaosWorker runs acquire/hold/release cycles against srv through a
// chaos dialer, reconnecting on session loss, and records every write
// grant's fencing token.
type chaosLedger struct {
	mu     sync.Mutex
	tokens map[string]map[uint64]int // key -> token -> observations
	writes int
	reads  int
	dups   int
}

func (l *chaosLedger) recordWrite(key string, token uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.tokens[key] == nil {
		l.tokens[key] = map[uint64]int{}
	}
	l.tokens[key][token]++
	if l.tokens[key][token] > 1 {
		l.dups++
	}
	l.writes++
}

func (l *chaosLedger) recordRead() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.reads++
}

func (l *chaosLedger) uniqueWrites() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, m := range l.tokens {
		n += len(m)
	}
	return n
}

// TestChaosRetryConvergence floods a chaotic transport (drop, duplicate,
// delay, disconnect on both directions) with concurrent clients and
// checks the system converges: passages keep completing, no write passage
// token is ever observed twice (at-most-once), and the final server
// ledger accounts for every write grant as either client-observed or
// lease-revoked.
func TestChaosRetryConvergence(t *testing.T) {
	srv := startServer(t, Config{
		MinTTL:        50 * time.Millisecond,
		SweepInterval: 10 * time.Millisecond,
	})
	addr := srv.Addr().String()

	chaos := ChaosConfig{
		Seed:       42,
		Drop:       0.05,
		Dup:        0.05,
		Delay:      0.10,
		MaxDelay:   15 * time.Millisecond,
		Disconnect: 0.002,
	}

	const (
		workers = 8
		runFor  = 2 * time.Second
	)
	keys := []string{"alpha", "beta", "gamma"}
	ledger := &chaosLedger{tokens: map[string]map[uint64]int{}}
	deadline := time.Now().Add(runFor)

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			dialer := ChaosDialer(chaos, nil) // distinct rng stream per worker is fine: seed is shared, streams diverge by schedule
			var c *Client
			defer func() {
				if c != nil {
					c.Abandon()
				}
			}()
			for time.Now().Before(deadline) {
				if c == nil {
					ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
					nc, err := Dial(ctx, addr, Options{
						TTL:             300 * time.Millisecond,
						RetransmitAfter: 30 * time.Millisecond,
						Dialer:          dialer,
					})
					cancel()
					if err != nil {
						time.Sleep(20 * time.Millisecond)
						continue
					}
					c = nc
				}
				key := keys[(id+ledgerLen(ledger))%len(keys)]
				mode := ModeRead
				if (id+ledgerLen(ledger))%3 == 0 {
					mode = ModeWrite
				}
				ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
				h, err := c.Acquire(ctx, key, mode, 500*time.Millisecond)
				if err == nil {
					if mode == ModeWrite {
						ledger.recordWrite(key, h.Passage)
					} else {
						ledger.recordRead()
					}
					h.Release(ctx) //nolint:errcheck // chaos may eat the ack; lease expiry cleans up
					cancel()
					continue
				}
				cancel()
				switch {
				case errors.Is(err, ErrDisconnected), errors.Is(err, ErrSessionExpired):
					c.Abandon()
					c = nil
					time.Sleep(10 * time.Millisecond)
				case errors.Is(err, ErrTimeout), errors.Is(err, ErrShed), errors.Is(err, ErrRevoked):
					time.Sleep(5 * time.Millisecond)
				default:
					t.Errorf("unexpected acquire error: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	if ledger.dups != 0 {
		t.Fatalf("duplicated write passages: %d (at-most-once violated)", ledger.dups)
	}
	if ledger.writes == 0 || ledger.reads == 0 {
		t.Fatalf("no convergence under chaos: %d writes, %d reads completed", ledger.writes, ledger.reads)
	}

	// Let in-flight revocations settle, then reconcile the ledger over a
	// clean (chaos-free) connection: every server-side write grant must be
	// either client-observed or revoked by lease expiry — zero passages
	// simply lost. (An observed hold whose release ack was eaten is later
	// also revoked, so observed+revoked can exceed grants; it can never
	// fall short.)
	time.Sleep(500 * time.Millisecond)
	ctx := ctxT(t)
	clean, err := Dial(ctx, addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	st, err := clean.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var grants, revokedW uint64
	for _, sh := range st.Shards {
		grants += sh.WriteGrants
		revokedW += sh.RevokedWrite
	}
	observed := uint64(ledger.uniqueWrites())
	if lost := int64(grants) - int64(observed) - int64(revokedW); lost > 0 {
		t.Fatalf("lost write passages: grants=%d observed=%d revoked=%d -> %d unaccounted",
			grants, observed, revokedW, lost)
	}
	t.Logf("chaos converged: %d reads, %d unique write passages, grants=%d revoked=%d",
		ledger.reads, observed, grants, revokedW)
}

func ledgerLen(l *chaosLedger) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writes + l.reads
}

// TestChaosDuplicateTransport checks the dedup layer end to end under a
// duplicate-heavy, otherwise lossless transport: every message delivered
// twice must not double-grant or double-release.
func TestChaosDuplicateTransport(t *testing.T) {
	srv := startServer(t, Config{})
	ctx := ctxT(t)
	dialer := ChaosDialer(ChaosConfig{Seed: 7, Dup: 1.0}, nil)
	c, err := Dial(ctx, srv.Addr().String(), Options{Dialer: dialer, RetransmitAfter: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 20; i++ {
		h, err := c.Acquire(ctx, "dup-heavy", ModeWrite, time.Second)
		if err != nil {
			t.Fatalf("passage %d: %v", i, err)
		}
		if err := h.Release(ctx); err != nil {
			t.Fatalf("release %d: %v", i, err)
		}
	}
	var grants, releases uint64
	for _, sh := range srv.Stats().Shards {
		grants += sh.WriteGrants
		releases += sh.Releases
	}
	if grants != 20 || releases != 20 {
		t.Fatalf("grants/releases = %d/%d under duplication, want 20/20", grants, releases)
	}
}

// TestChaosDropRecovery: a drop-heavy transport still converges because
// the client retransmits with the same seq and the server answers
// retransmits from the response cache.
func TestChaosDropRecovery(t *testing.T) {
	srv := startServer(t, Config{})
	ctx := ctxT(t)
	dialer := ChaosDialer(ChaosConfig{Seed: 11, Drop: 0.25}, nil)
	c, err := Dial(ctx, srv.Addr().String(), Options{
		Dialer:          dialer,
		TTL:             2 * time.Second,
		RetransmitAfter: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Abandon()

	var last uint64
	for i := 0; i < 10; i++ {
		h, err := c.Acquire(ctx, "droppy", ModeWrite, 2*time.Second)
		if err != nil {
			t.Fatalf("passage %d: %v", i, err)
		}
		if h.Passage <= last {
			t.Fatalf("passage %d: token %d not past %d (duplicate grant?)", i, h.Passage, last)
		}
		last = h.Passage
		if err := h.Release(ctx); err != nil {
			t.Fatalf("release %d: %v", i, err)
		}
	}
}

// TestChaosDrainUnderFaults: SIGTERM-style drain completes with zero
// leaked holds even while a chaotic client population is mid-flight,
// because live holders release (or their leases expire) within the drain
// deadline.
func TestChaosDrainUnderFaults(t *testing.T) {
	srv := startServer(t, Config{
		MinTTL:        50 * time.Millisecond,
		SweepInterval: 10 * time.Millisecond,
	})
	addr := srv.Addr().String()
	dialer := ChaosDialer(ChaosConfig{Seed: 3, Drop: 0.05, Dup: 0.05}, nil)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ctx := context.Background()
			c, err := Dial(ctx, addr, Options{TTL: 200 * time.Millisecond, RetransmitAfter: 20 * time.Millisecond, Dialer: dialer})
			if err != nil {
				return
			}
			defer c.Abandon()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("drain-%d", n%3)
				cctx, cancel := context.WithTimeout(ctx, time.Second)
				h, err := c.Acquire(cctx, key, ModeWrite, 200*time.Millisecond)
				if err == nil {
					h.Release(cctx) //nolint:errcheck // lease expiry cleans up lost acks
				}
				cancel()
				if err != nil && (errors.Is(err, ErrDisconnected) || errors.Is(err, ErrSessionExpired)) {
					return
				}
				if err != nil && errors.Is(err, ErrDraining) {
					return
				}
			}
		}(i)
	}

	time.Sleep(300 * time.Millisecond) // let traffic build
	leaked := srv.Drain(5 * time.Second)
	close(stop)
	wg.Wait()
	if len(leaked) != 0 {
		t.Fatalf("drain leaked %d holds under chaos: %+v", len(leaked), leaked)
	}
}
