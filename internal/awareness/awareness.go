// Package awareness implements the knowledge formalism of the paper's
// lower-bound proof (Section 3.2): process awareness sets AW(p, C↪E),
// variable familiarity sets F(v, C↪E), and expanding steps
// (Definitions 1-3), maintained incrementally over a stream of simulator
// trace events.
//
// The sets are defined relative to an execution *fragment*: Reset marks the
// fragment start C, after which AW(p) = {p} for every process and
// F(v) = ∅ for every variable (this fragment-relativity is the paper's
// extension over Attiya-Hendler awareness, needed to argue about knowledge
// collected during the exit section only).
//
// Update rules, from Definitions 1-2:
//
//   - A reading step by p on v (read, await re-check, CAS — successful or
//     not — and FAA) merges F(v) into AW(p).
//   - A non-trivial write by p sets F(v) = AW(p).
//   - A non-trivial CAS (or FAA) by p sets F(v) = AW(p) ∪ F(v); since the
//     reading part already merged F(v) into AW(p), this equals the updated
//     AW(p).
//   - Trivial steps leave familiarity sets unchanged.
//
// A step is expanding if it strictly grows the executing process's
// awareness set. Lemma 1 proves every expanding step incurs an RMR; the
// tracker verifies this on the fly and records violations (there must be
// none — the simulator's coherence accounting satisfies the lemma by
// construction, and the test suite asserts it on random executions).
package awareness

import (
	"repro/internal/bitset"
	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Tracker maintains awareness and familiarity sets for one execution
// fragment. It is not safe for concurrent use; feed it events from the
// simulator's observer callback (which the runner invokes serially).
type Tracker struct {
	nProcs int
	nVars  int

	aw  []*bitset.Set // AW(p), indexed by process
	fam []*bitset.Set // F(v), indexed by variable

	// expanding[p] counts expanding steps executed by p since Reset.
	expanding []int
	// lemma1Violations records steps that were expanding but incurred no
	// RMR (Lemma 1 says this cannot happen).
	lemma1Violations []trace.Event
}

// New returns a tracker for nProcs processes and nVars shared variables,
// with the fragment starting now.
func New(nProcs, nVars int) *Tracker {
	t := &Tracker{
		nProcs:    nProcs,
		nVars:     nVars,
		aw:        make([]*bitset.Set, nProcs),
		fam:       make([]*bitset.Set, nVars),
		expanding: make([]int, nProcs),
	}
	for p := range t.aw {
		t.aw[p] = bitset.New(nProcs)
	}
	for v := range t.fam {
		t.fam[v] = bitset.New(nProcs)
	}
	t.Reset()
	return t
}

// Reset starts a new fragment at the current configuration: AW(p) = {p},
// F(v) = ∅, counters cleared.
func (t *Tracker) Reset() {
	for p, s := range t.aw {
		s.Clear()
		s.Add(p)
	}
	for _, s := range t.fam {
		s.Clear()
	}
	for p := range t.expanding {
		t.expanding[p] = 0
	}
	t.lemma1Violations = nil
}

// Observe applies one executed step to the sets. Section-change
// pseudo-events are ignored.
func (t *Tracker) Observe(e trace.Event) {
	if e.SectionChange {
		return
	}
	p := e.Proc
	v := int(e.Var)

	if e.IsReading() {
		before := t.aw[p].Count()
		t.aw[p].Union(t.fam[v])
		if t.aw[p].Count() > before {
			t.expanding[p]++
			if !e.RMR {
				t.lemma1Violations = append(t.lemma1Violations, e)
			}
		}
	}
	if e.IsWriting() && !e.Trivial {
		switch e.Kind {
		case memmodel.OpWrite:
			// Definition 1 case 1: overwrite familiarity.
			t.fam[v].Clear()
			t.fam[v].Union(t.aw[p])
		default:
			// Definition 1 case 2 (CAS; FAA treated alike): extend
			// familiarity. The reading part above already merged F(v)
			// into AW(p), so F(v) := AW(p) realizes AW ∪ F.
			t.fam[v].Clear()
			t.fam[v].Union(t.aw[p])
		}
	}
}

// AW returns process p's awareness set. The returned set is live; callers
// must not mutate it.
func (t *Tracker) AW(p int) *bitset.Set { return t.aw[p] }

// F returns variable v's familiarity set. The returned set is live.
func (t *Tracker) F(v memmodel.Var) *bitset.Set { return t.fam[v] }

// ExpandingSteps returns how many expanding steps p executed since Reset.
func (t *Tracker) ExpandingSteps(p int) int { return t.expanding[p] }

// Lemma1Violations returns the expanding steps that incurred no RMR; a
// correct coherence model yields none.
func (t *Tracker) Lemma1Violations() []trace.Event { return t.lemma1Violations }

// M returns the paper's M(C↪E): the maximum cardinality over all awareness
// and familiarity sets.
func (t *Tracker) M() int {
	m := 0
	for _, s := range t.aw {
		if c := s.Count(); c > m {
			m = c
		}
	}
	for _, s := range t.fam {
		if c := s.Count(); c > m {
			m = c
		}
	}
	return m
}

// IsExpanding predicts whether executing the pending operation now would be
// an expanding step: a reading step on a variable whose familiarity set is
// not contained in the process's awareness set (for multi-variable awaits,
// any such variable). Writes are never expanding (Fact 1).
func (t *Tracker) IsExpanding(op sched.PendingOp) bool {
	if op.Kind == memmodel.OpWrite {
		return false
	}
	vars := op.Vars
	if vars == nil {
		vars = []memmodel.Var{op.Var}
	}
	for _, v := range vars {
		if !t.fam[v].SubsetOf(t.aw[op.Proc]) {
			return true
		}
	}
	return false
}

// Classify buckets a pending expanding operation for Lemma 2's batch
// ordering: steps that will not change any value first (reads, awaits and
// currently-trivial CASes), then writes, then value-changing CASes. The
// value probe reports whether the op would change v's current value.
type Class uint8

const (
	// ClassNonMutating covers reads, await re-checks and CAS/FAA steps
	// that will not change the variable's current value.
	ClassNonMutating Class = iota + 1
	// ClassWrite covers plain writes.
	ClassWrite
	// ClassMutatingCAS covers CAS/FAA steps that will change the value.
	ClassMutatingCAS
)

// Classify determines op's Lemma-2 bucket given the variable's current
// value.
func Classify(op sched.PendingOp, current uint64) Class {
	switch op.Kind {
	case memmodel.OpRead, memmodel.OpAwait:
		return ClassNonMutating
	case memmodel.OpWrite:
		if op.Arg == current {
			return ClassNonMutating
		}
		return ClassWrite
	case memmodel.OpCAS:
		if op.CASExpected != current || op.Arg == current {
			return ClassNonMutating // will fail or leave the value as is
		}
		return ClassMutatingCAS
	case memmodel.OpFetchAdd:
		if op.Arg == 0 {
			return ClassNonMutating
		}
		return ClassMutatingCAS
	default:
		return ClassNonMutating
	}
}
