package awareness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

func ev(proc int, kind memmodel.OpKind, v memmodel.Var, opts ...func(*trace.Event)) trace.Event {
	e := trace.Event{Proc: proc, Kind: kind, Var: v, RMR: true}
	if kind == memmodel.OpRead || kind == memmodel.OpAwait {
		e.Trivial = true
	}
	for _, o := range opts {
		o(&e)
	}
	return e
}

func swapped(e *trace.Event) { e.Swapped = true }
func trivial(e *trace.Event) { e.Trivial = true }
func noRMR(e *trace.Event)   { e.RMR = false }

func TestInitialSets(t *testing.T) {
	tr := New(3, 2)
	for p := 0; p < 3; p++ {
		if c := tr.AW(p).Count(); c != 1 || !tr.AW(p).Contains(p) {
			t.Errorf("AW(%d) = %v, want {%d}", p, tr.AW(p), p)
		}
	}
	for v := 0; v < 2; v++ {
		if !tr.F(memmodel.Var(v)).Empty() {
			t.Errorf("F(%d) not empty", v)
		}
	}
	if tr.M() != 1 {
		t.Errorf("M = %d, want 1", tr.M())
	}
}

// TestWriteThenReadTransfersAwareness is the base information-flow case:
// p0 writes v, p1 reads v, p1 becomes aware of p0.
func TestWriteThenReadTransfersAwareness(t *testing.T) {
	tr := New(2, 1)
	tr.Observe(ev(0, memmodel.OpWrite, 0))
	if !tr.F(0).Contains(0) {
		t.Fatal("F(v) missing writer after write")
	}
	tr.Observe(ev(1, memmodel.OpRead, 0))
	if !tr.AW(1).Contains(0) {
		t.Fatal("reader not aware of writer")
	}
	if tr.ExpandingSteps(1) != 1 {
		t.Errorf("ExpandingSteps(1) = %d, want 1", tr.ExpandingSteps(1))
	}
	if tr.ExpandingSteps(0) != 0 {
		t.Errorf("write counted as expanding")
	}
}

// TestWriteOverwritesFamiliarity: Definition 1 case 1 — a later write
// replaces F(v) with the new writer's awareness.
func TestWriteOverwritesFamiliarity(t *testing.T) {
	tr := New(3, 1)
	tr.Observe(ev(0, memmodel.OpWrite, 0))
	tr.Observe(ev(1, memmodel.OpWrite, 0)) // p1 unaware of p0: overwrite
	if tr.F(0).Contains(0) {
		t.Fatal("write did not overwrite familiarity")
	}
	if !tr.F(0).Contains(1) {
		t.Fatal("familiarity missing new writer")
	}
}

// TestCASExtendsFamiliarity: Definition 1 case 2 — a successful CAS adds to
// F(v) instead of replacing it.
func TestCASExtendsFamiliarity(t *testing.T) {
	tr := New(3, 1)
	tr.Observe(ev(0, memmodel.OpWrite, 0))
	tr.Observe(ev(1, memmodel.OpCAS, 0, swapped))
	if !tr.F(0).Contains(0) || !tr.F(0).Contains(1) {
		t.Fatalf("F(v) = %v, want {0, 1}", tr.F(0))
	}
	// And the CAS's reading part made p1 aware of p0.
	if !tr.AW(1).Contains(0) {
		t.Fatal("CAS reading part did not expand awareness")
	}
}

// TestFailedCASIsReadOnly: a failed CAS gains awareness but leaves
// familiarity unchanged.
func TestFailedCASIsReadOnly(t *testing.T) {
	tr := New(3, 1)
	tr.Observe(ev(0, memmodel.OpWrite, 0))
	tr.Observe(ev(1, memmodel.OpCAS, 0, trivial)) // failed: Swapped=false, Trivial=true
	if !tr.AW(1).Contains(0) {
		t.Fatal("failed CAS did not expand awareness")
	}
	if tr.F(0).Contains(1) {
		t.Fatal("failed CAS changed familiarity")
	}
}

// TestTrivialWriteLeavesFamiliarity: a trivial write does not update F.
func TestTrivialWriteLeavesFamiliarity(t *testing.T) {
	tr := New(3, 1)
	tr.Observe(ev(0, memmodel.OpWrite, 0))
	tr.Observe(trace.Event{Proc: 1, Kind: memmodel.OpWrite, Var: 0, Trivial: true, RMR: true})
	if !tr.F(0).Contains(0) || tr.F(0).Contains(1) {
		t.Fatalf("trivial write changed F(v) = %v", tr.F(0))
	}
}

// TestTransitiveAwareness: information flows p0 -> p1 -> p2 through two
// variables.
func TestTransitiveAwareness(t *testing.T) {
	tr := New(3, 2)
	tr.Observe(ev(0, memmodel.OpWrite, 0))
	tr.Observe(ev(1, memmodel.OpRead, 0))  // p1 aware of p0
	tr.Observe(ev(1, memmodel.OpWrite, 1)) // F(v1) = AW(p1) = {0,1}
	tr.Observe(ev(2, memmodel.OpRead, 1))
	if !tr.AW(2).Contains(0) || !tr.AW(2).Contains(1) {
		t.Fatalf("AW(2) = %v, want {0,1,2}", tr.AW(2))
	}
	if tr.M() != 3 {
		t.Errorf("M = %d, want 3", tr.M())
	}
}

// TestLemma1Detection: an expanding step without RMR must be recorded as a
// violation.
func TestLemma1Detection(t *testing.T) {
	tr := New(2, 1)
	tr.Observe(ev(0, memmodel.OpWrite, 0))
	tr.Observe(ev(1, memmodel.OpRead, 0, noRMR))
	if len(tr.Lemma1Violations()) != 1 {
		t.Fatalf("violations = %d, want 1", len(tr.Lemma1Violations()))
	}
}

// TestReset restores the fragment-start state.
func TestReset(t *testing.T) {
	tr := New(2, 1)
	tr.Observe(ev(0, memmodel.OpWrite, 0))
	tr.Observe(ev(1, memmodel.OpRead, 0))
	tr.Reset()
	if tr.AW(1).Count() != 1 || !tr.F(0).Empty() || tr.ExpandingSteps(1) != 0 {
		t.Fatal("Reset did not clear fragment state")
	}
}

// TestObservation1Monotone: awareness sets only grow along an execution —
// checked on a real simulated A_f run.
func TestObservation1MonotoneOnRealRun(t *testing.T) {
	const n, m = 4, 1
	alg := core.New(core.FLog)
	var tr *Tracker
	prev := make([]int, n+m)
	r := sim.New(sim.Config{
		Scheduler: sched.NewRandom(5),
		Observer: func(e trace.Event) {
			if tr == nil || e.SectionChange {
				return
			}
			tr.Observe(e)
			for p := 0; p < n+m; p++ {
				if c := tr.AW(p).Count(); c < prev[p] {
					t.Errorf("AW(%d) shrank %d -> %d", p, prev[p], c)
				} else {
					prev[p] = c
				}
			}
		},
	})
	if err := alg.Init(r, n, m); err != nil {
		t.Fatal(err)
	}
	for rid := 0; rid < n; rid++ {
		rid := rid
		r.AddProc(func(p sim.Proc) {
			for i := 0; i < 2; i++ {
				p.Section(memmodel.SecEntry)
				alg.ReaderEnter(p, rid)
				p.Section(memmodel.SecCS)
				p.Section(memmodel.SecExit)
				alg.ReaderExit(p, rid)
				p.Section(memmodel.SecRemainder)
			}
		})
	}
	r.AddProc(func(p sim.Proc) {
		for i := 0; i < 2; i++ {
			p.Section(memmodel.SecEntry)
			alg.WriterEnter(p, 0)
			p.Section(memmodel.SecCS)
			p.Section(memmodel.SecExit)
			alg.WriterExit(p, 0)
			p.Section(memmodel.SecRemainder)
		}
	})
	tr = New(n+m, r.NumVars())
	for p := range prev {
		prev[p] = 1
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	// Lemma 1 must hold on the whole execution.
	if v := tr.Lemma1Violations(); len(v) != 0 {
		t.Errorf("Lemma 1 violated %d times, e.g. %v", len(v), v[0])
	}
}

// TestIsExpandingPredictionMatches wires a predicting scheduler into a real
// run: for the op actually executed, the prediction must equal the observed
// awareness growth.
func TestIsExpandingPredictionMatches(t *testing.T) {
	const n, m = 3, 1
	alg := core.New(core.FOne)
	var tr *Tracker
	var predicted map[int]bool
	inner := sched.NewRandom(11)

	mismatches := 0
	r := sim.New(sim.Config{
		Scheduler: predictingSched{inner: inner, predict: func(ops []sched.PendingOp) {
			predicted = map[int]bool{}
			for _, op := range ops {
				predicted[op.Proc] = tr.IsExpanding(op)
			}
		}},
		Observer: func(e trace.Event) {
			if tr == nil || e.SectionChange {
				return
			}
			before := tr.AW(e.Proc).Count()
			tr.Observe(e)
			actual := tr.AW(e.Proc).Count() > before
			if want, ok := predicted[e.Proc]; ok && want != actual {
				mismatches++
			}
		},
	})
	if err := alg.Init(r, n, m); err != nil {
		t.Fatal(err)
	}
	for rid := 0; rid < n; rid++ {
		rid := rid
		r.AddProc(func(p sim.Proc) {
			p.Section(memmodel.SecEntry)
			alg.ReaderEnter(p, rid)
			p.Section(memmodel.SecCS)
			p.Section(memmodel.SecExit)
			alg.ReaderExit(p, rid)
			p.Section(memmodel.SecRemainder)
		})
	}
	r.AddProc(func(p sim.Proc) {
		p.Section(memmodel.SecEntry)
		alg.WriterEnter(p, 0)
		p.Section(memmodel.SecCS)
		p.Section(memmodel.SecExit)
		alg.WriterExit(p, 0)
		p.Section(memmodel.SecRemainder)
	})
	tr = New(n+m, r.NumVars())
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if mismatches != 0 {
		t.Errorf("%d expanding predictions disagreed with observed expansion", mismatches)
	}
}

// predictingSched snapshots predictions for all poised ops, then delegates.
type predictingSched struct {
	inner   sched.Scheduler
	predict func([]sched.PendingOp)
}

func (s predictingSched) Name() string { return "predicting" }
func (s predictingSched) Next(step int, poised []int) int {
	return s.inner.Next(step, poised)
}
func (s predictingSched) NextOp(step int, poised []sched.PendingOp) int {
	s.predict(poised)
	ids := make([]int, len(poised))
	for i, op := range poised {
		ids[i] = op.Proc
	}
	return s.inner.Next(step, ids)
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name    string
		op      sched.PendingOp
		current uint64
		want    Class
	}{
		{"read", sched.PendingOp{Kind: memmodel.OpRead}, 5, ClassNonMutating},
		{"await", sched.PendingOp{Kind: memmodel.OpAwait}, 5, ClassNonMutating},
		{"write-changing", sched.PendingOp{Kind: memmodel.OpWrite, Arg: 6}, 5, ClassWrite},
		{"write-trivial", sched.PendingOp{Kind: memmodel.OpWrite, Arg: 5}, 5, ClassNonMutating},
		{"cas-will-fail", sched.PendingOp{Kind: memmodel.OpCAS, CASExpected: 4, Arg: 9}, 5, ClassNonMutating},
		{"cas-will-swap", sched.PendingOp{Kind: memmodel.OpCAS, CASExpected: 5, Arg: 9}, 5, ClassMutatingCAS},
		{"cas-same-value", sched.PendingOp{Kind: memmodel.OpCAS, CASExpected: 5, Arg: 5}, 5, ClassNonMutating},
		{"faa", sched.PendingOp{Kind: memmodel.OpFetchAdd, Arg: 1}, 5, ClassMutatingCAS},
		{"faa-zero", sched.PendingOp{Kind: memmodel.OpFetchAdd, Arg: 0}, 5, ClassNonMutating},
	}
	for _, c := range cases {
		if got := Classify(c.op, c.current); got != c.want {
			t.Errorf("%s: Classify = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestIsExpandingWriteNever: Fact 1 — only reading steps expand.
func TestIsExpandingWriteNever(t *testing.T) {
	tr := New(2, 1)
	tr.Observe(ev(0, memmodel.OpWrite, 0))
	op := sched.PendingOp{Proc: 1, Kind: memmodel.OpWrite, Var: 0}
	if tr.IsExpanding(op) {
		t.Error("write classified as expanding")
	}
	op.Kind = memmodel.OpRead
	if !tr.IsExpanding(op) {
		t.Error("read of unfamiliar variable not expanding")
	}
}
