package fairness

import (
	"sync"
	"testing"

	"repro/internal/memmodel"
	"repro/internal/trace"
)

func sectionEvent(proc int, sec memmodel.Section) trace.Event {
	return trace.Event{Proc: proc, Section: sec, SectionChange: true}
}

// TestLockedMatchesUnlockedSequentially: with one goroutine, the locked
// wrapper is observationally identical to the bare monitor.
func TestLockedMatchesUnlockedSequentially(t *testing.T) {
	bare := NewBypassMonitor(4, 2)
	locked := NewLockedBypassMonitor(4, 2)
	script := []trace.Event{
		sectionEvent(0, memmodel.SecEntry),
		sectionEvent(1, memmodel.SecEntry),
		sectionEvent(2, memmodel.SecEntry),
		sectionEvent(2, memmodel.SecCS), // overtakes 0 and 1
		sectionEvent(2, memmodel.SecRemainder),
		sectionEvent(0, memmodel.SecCS), // overtakes 1
		sectionEvent(0, memmodel.SecRemainder),
		sectionEvent(1, memmodel.SecCS),
		sectionEvent(1, memmodel.SecRemainder),
	}
	for _, e := range script {
		bare.Observe(e)
		locked.Observe(e)
	}
	for p := 0; p < 4; p++ {
		if bare.MaxBypass(p) != locked.MaxBypass(p) || bare.TotalBypass(p) != locked.TotalBypass(p) {
			t.Fatalf("proc %d: locked (max %d, total %d) != bare (max %d, total %d)",
				p, locked.MaxBypass(p), locked.TotalBypass(p), bare.MaxBypass(p), bare.TotalBypass(p))
		}
	}
	// Reader 1 was overtaken twice in one wait (by writer 2, then reader
	// 0); neither writer was ever overtaken.
	if locked.MaxReaderBypass() != 2 || locked.MaxWriterBypass() != 0 {
		t.Fatalf("reader/writer worst = %d/%d, want 2/0",
			locked.MaxReaderBypass(), locked.MaxWriterBypass())
	}
}

// TestLockedBypassMonitorRaceStress hammers one locked monitor from many
// goroutines — writers feeding entry/CS/remainder transitions, readers
// polling every query method — under -race. The exact counts depend on
// interleaving; the assertions are the interleaving-independent invariants
// (non-negative counts, per-proc max ≤ total) and race-freedom itself.
func TestLockedBypassMonitorRaceStress(t *testing.T) {
	const (
		nProcs   = 16
		nReaders = 8
		rounds   = 500
	)
	m := NewLockedBypassMonitor(nProcs, nReaders)

	var observers sync.WaitGroup
	for p := 0; p < nProcs; p++ {
		observers.Add(1)
		go func(proc int) {
			defer observers.Done()
			for i := 0; i < rounds; i++ {
				m.Observe(sectionEvent(proc, memmodel.SecEntry))
				m.Observe(sectionEvent(proc, memmodel.SecCS))
				m.Observe(sectionEvent(proc, memmodel.SecRemainder))
			}
		}(p)
	}
	stop := make(chan struct{})
	var pollers sync.WaitGroup
	for g := 0; g < 4; g++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.MaxReaderBypass()
				m.MaxWriterBypass()
				for p := 0; p < nProcs; p++ {
					if m.MaxBypass(p) < 0 || m.TotalBypass(p) < 0 {
						t.Error("negative bypass count")
						return
					}
				}
			}
		}()
	}
	observers.Wait()
	close(stop)
	pollers.Wait()

	for p := 0; p < nProcs; p++ {
		if m.MaxBypass(p) > m.TotalBypass(p) {
			t.Fatalf("proc %d: max bypass %d exceeds total %d", p, m.MaxBypass(p), m.TotalBypass(p))
		}
	}
	if m.MaxReaderBypass() < 0 || m.MaxWriterBypass() < 0 {
		t.Fatal("negative aggregate bypass")
	}
}
