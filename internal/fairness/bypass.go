package fairness

import (
	"repro/internal/memmodel"
	"repro/internal/trace"
)

// BypassMonitor turns reader non-starvation and writer bounded-bypass into
// measured quantities. Observing the simulator's section-transition
// events, it counts — for every process — how many times some *other*
// process entered the critical section while the observed process was
// waiting in its entry section (an "overtake" or "bypass"). A stalled-
// then-resumed process that keeps getting overtaken shows up as a growing
// per-passage bypass count, so fail-slow sweeps can report starvation
// quantitatively per algorithm instead of only pass/fail.
//
// The monitor is backend-agnostic: install Observe as (or inside) a
// sim.Config/spec.Scenario observer. Processes are identified by the spec
// harness numbering (readers 0..nReaders-1, writers above).
//
// Concurrency contract: BypassMonitor is single-threaded. The simulator
// delivers observer events from one goroutine, so Observe and the query
// methods are deliberately unsynchronized — adding a lock here would tax
// every simulated step. Callers with real concurrency (the rwlockd shard
// grant tables, anything outside the single-stepped simulator) must use
// LockedBypassMonitor instead.
type BypassMonitor struct {
	nReaders int
	inEntry  []bool
	current  []int
	max      []int
	total    []int
}

// NewBypassMonitor returns a monitor for nProcs processes of which the
// first nReaders are readers.
func NewBypassMonitor(nProcs, nReaders int) *BypassMonitor {
	return &BypassMonitor{
		nReaders: nReaders,
		inEntry:  make([]bool, nProcs),
		current:  make([]int, nProcs),
		max:      make([]int, nProcs),
		total:    make([]int, nProcs),
	}
}

// Observe consumes one trace event. Only section-transition events matter;
// all others are ignored, so the monitor can share an observer chain with
// step-level checkers.
func (m *BypassMonitor) Observe(e trace.Event) {
	if !e.SectionChange || e.Proc < 0 || e.Proc >= len(m.inEntry) {
		return
	}
	switch e.Section {
	case memmodel.SecEntry:
		m.inEntry[e.Proc] = true
		m.current[e.Proc] = 0
	case memmodel.SecCS:
		// Close the winner's own wait first: entering the CS ends its
		// entry section, and it does not overtake itself.
		m.closeWait(e.Proc)
		for p := range m.inEntry {
			if p != e.Proc && m.inEntry[p] {
				m.current[p]++
				m.total[p]++
			}
		}
	default:
		// Exit, remainder, or recovery: any open entry wait ends here
		// (aborted attempts, recovered passages).
		m.closeWait(e.Proc)
	}
}

func (m *BypassMonitor) closeWait(proc int) {
	if !m.inEntry[proc] {
		return
	}
	m.inEntry[proc] = false
	if m.current[proc] > m.max[proc] {
		m.max[proc] = m.current[proc]
	}
}

// MaxBypass returns the largest number of overtakes proc suffered during a
// single entry-section wait (completed or still open).
func (m *BypassMonitor) MaxBypass(proc int) int {
	return max(m.max[proc], m.current[proc])
}

// TotalBypass returns the total number of overtakes proc suffered across
// all its entry-section waits.
func (m *BypassMonitor) TotalBypass(proc int) int { return m.total[proc] }

// MaxReaderBypass returns the worst single-wait overtake count over all
// readers.
func (m *BypassMonitor) MaxReaderBypass() int {
	worst := 0
	for p := 0; p < m.nReaders && p < len(m.max); p++ {
		worst = max(worst, m.MaxBypass(p))
	}
	return worst
}

// MaxWriterBypass returns the worst single-wait overtake count over all
// writers.
func (m *BypassMonitor) MaxWriterBypass() int {
	worst := 0
	for p := m.nReaders; p < len(m.max); p++ {
		worst = max(worst, m.MaxBypass(p))
	}
	return worst
}
