package fairness_test

import (
	"testing"

	"repro/internal/fairness"
	"repro/internal/memmodel"
	"repro/internal/trace"
)

func sec(proc int, s memmodel.Section) trace.Event {
	return trace.Event{Proc: proc, Section: s, SectionChange: true}
}

// TestBypassCounting: p1 and p2 each complete a CS passage while p0 waits
// in its entry section — two overtakes in one wait.
func TestBypassCounting(t *testing.T) {
	m := fairness.NewBypassMonitor(3, 1)
	m.Observe(sec(0, memmodel.SecEntry))
	for _, p := range []int{1, 2} {
		m.Observe(sec(p, memmodel.SecEntry))
		m.Observe(sec(p, memmodel.SecCS))
		m.Observe(sec(p, memmodel.SecExit))
		m.Observe(sec(p, memmodel.SecRemainder))
	}
	if got := m.MaxBypass(0); got != 2 {
		t.Errorf("MaxBypass(0) = %d, want 2 (wait still open)", got)
	}
	m.Observe(sec(0, memmodel.SecCS))
	m.Observe(sec(0, memmodel.SecRemainder))
	if got := m.MaxBypass(0); got != 2 {
		t.Errorf("MaxBypass(0) = %d after closing, want 2", got)
	}
	if got := m.TotalBypass(0); got != 2 {
		t.Errorf("TotalBypass(0) = %d, want 2", got)
	}
	// The overtakers were never overtaken themselves.
	for _, p := range []int{1, 2} {
		if got := m.MaxBypass(p); got != 0 {
			t.Errorf("MaxBypass(%d) = %d, want 0", p, got)
		}
	}
}

// TestBypassPerWaitMaxVsTotal: two separate waits of one overtake each
// give max 1, total 2.
func TestBypassPerWaitMaxVsTotal(t *testing.T) {
	m := fairness.NewBypassMonitor(2, 1)
	for i := 0; i < 2; i++ {
		m.Observe(sec(0, memmodel.SecEntry))
		m.Observe(sec(1, memmodel.SecEntry))
		m.Observe(sec(1, memmodel.SecCS))
		m.Observe(sec(1, memmodel.SecRemainder))
		m.Observe(sec(0, memmodel.SecCS))
		m.Observe(sec(0, memmodel.SecRemainder))
	}
	if got := m.MaxBypass(0); got != 1 {
		t.Errorf("MaxBypass(0) = %d, want 1", got)
	}
	if got := m.TotalBypass(0); got != 2 {
		t.Errorf("TotalBypass(0) = %d, want 2", got)
	}
}

// TestBypassWinnerClosesOwnWaitFirst: a process entering the CS ends its
// own wait before the overtake is charged, so it never overtakes itself.
func TestBypassWinnerClosesOwnWaitFirst(t *testing.T) {
	m := fairness.NewBypassMonitor(2, 1)
	m.Observe(sec(0, memmodel.SecEntry))
	m.Observe(sec(0, memmodel.SecCS))
	if got := m.MaxBypass(0); got != 0 {
		t.Errorf("MaxBypass(0) = %d, want 0 (no self-overtake)", got)
	}
	if got := m.TotalBypass(0); got != 0 {
		t.Errorf("TotalBypass(0) = %d, want 0", got)
	}
}

// TestBypassClassMaxima: reader/writer split follows the spec numbering.
func TestBypassClassMaxima(t *testing.T) {
	m := fairness.NewBypassMonitor(4, 2) // readers 0,1; writers 2,3
	m.Observe(sec(1, memmodel.SecEntry))
	m.Observe(sec(3, memmodel.SecEntry))
	for i := 0; i < 3; i++ {
		m.Observe(sec(2, memmodel.SecEntry))
		m.Observe(sec(2, memmodel.SecCS))
		m.Observe(sec(2, memmodel.SecRemainder))
	}
	if got := m.MaxReaderBypass(); got != 3 {
		t.Errorf("MaxReaderBypass = %d, want 3", got)
	}
	if got := m.MaxWriterBypass(); got != 3 {
		t.Errorf("MaxWriterBypass = %d, want 3", got)
	}
	if got := m.MaxBypass(0); got != 0 {
		t.Errorf("MaxBypass(0) = %d, want 0 (never waited)", got)
	}
}

// TestBypassAbortedWaitCloses: leaving the entry section without reaching
// the CS (aborted attempt, recovery) still folds the wait into the max.
func TestBypassAbortedWaitCloses(t *testing.T) {
	m := fairness.NewBypassMonitor(2, 1)
	m.Observe(sec(0, memmodel.SecEntry))
	m.Observe(sec(1, memmodel.SecEntry))
	m.Observe(sec(1, memmodel.SecCS))
	m.Observe(sec(1, memmodel.SecRemainder))
	m.Observe(sec(0, memmodel.SecRemainder)) // aborted: never reached the CS
	if got := m.MaxBypass(0); got != 1 {
		t.Errorf("MaxBypass(0) = %d, want 1", got)
	}
	// A later clean wait does not resurrect the aborted one.
	m.Observe(sec(0, memmodel.SecEntry))
	m.Observe(sec(0, memmodel.SecCS))
	if got := m.MaxBypass(0); got != 1 {
		t.Errorf("MaxBypass(0) = %d after clean wait, want 1", got)
	}
}

// TestBypassIgnoresForeignEvents: non-section events and out-of-range proc
// ids are ignored.
func TestBypassIgnoresForeignEvents(t *testing.T) {
	m := fairness.NewBypassMonitor(2, 1)
	m.Observe(trace.Event{Proc: 0, Section: memmodel.SecCS}) // not a SectionChange
	m.Observe(sec(9, memmodel.SecCS))                        // out of range
	m.Observe(sec(-1, memmodel.SecEntry))
	if got := m.MaxBypass(0); got != 0 {
		t.Errorf("MaxBypass(0) = %d, want 0", got)
	}
}
