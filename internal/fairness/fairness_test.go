package fairness_test

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/fairness"
	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/spec"
)

func TestName(t *testing.T) {
	if got := fairness.New(core.New(core.FLog)).Name(); got != "af-log+wpri" {
		t.Errorf("Name = %q", got)
	}
}

// TestWrappedPropertiesGrid: the wrapper must preserve mutual exclusion
// and progress for every inner algorithm across random schedules.
func TestWrappedPropertiesGrid(t *testing.T) {
	inners := []func() memmodel.Algorithm{
		func() memmodel.Algorithm { return core.New(core.FOne) },
		func() memmodel.Algorithm { return core.New(core.FLog) },
		func() memmodel.Algorithm { return core.New(core.FLinear) },
		func() memmodel.Algorithm { return baseline.NewCentralized() },
		func() memmodel.Algorithm { return baseline.NewFlagArray() },
		func() memmodel.Algorithm { return baseline.NewPhaseFair() },
	}
	for _, mk := range inners {
		for _, protocol := range []sim.Protocol{sim.WriteThrough, sim.WriteBack} {
			for _, seed := range []int64{1, 2, 3} {
				alg := fairness.New(mk())
				rep := spec.Run(alg, spec.Scenario{
					NReaders: 4, NWriters: 2,
					ReaderPassages: 3, WriterPassages: 2,
					Protocol:  protocol,
					Scheduler: sched.NewRandom(seed),
					CSReads:   2,
				})
				if !rep.OK() {
					t.Errorf("%s %v seed=%d:\n%s", alg.Name(), protocol, seed, rep.Failures())
				}
			}
		}
	}
}

// TestWrappedExhaustive model-checks the wrapped lock at n=1, m=1.
func TestWrappedExhaustive(t *testing.T) {
	cap := 40_000 // the full tree is ~286k schedules; keep default runs fast
	if testing.Short() {
		cap = 5_000
	}
	res, err := explore.Algorithm(
		func() memmodel.Algorithm { return fairness.New(core.New(core.FOne)) },
		spec.Scenario{NReaders: 1, NWriters: 1, ReaderPassages: 1, WriterPassages: 1},
		explore.Config{MaxRuns: cap})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != "" {
		t.Fatalf("violation on path %v:\n%s", res.ViolationPath, res.Violation)
	}
	t.Logf("af-1+wpri: %d schedules explored, complete=%v", res.Runs, res.Complete)
}

// TestGateCostConstant: the wrapper adds O(1) RMRs per passage on both
// sides (uncontended).
func TestGateCostConstant(t *testing.T) {
	base := spec.Run(core.New(core.FLog), spec.Scenario{
		NReaders: 8, NWriters: 1,
		ReaderPassages: 2, WriterPassages: 2,
		Scheduler: sched.NewSticky(),
	})
	wrapped := spec.Run(fairness.New(core.New(core.FLog)), spec.Scenario{
		NReaders: 8, NWriters: 1,
		ReaderPassages: 2, WriterPassages: 2,
		Scheduler: sched.NewSticky(),
	})
	if !base.OK() || !wrapped.OK() {
		t.Fatalf("runs failed:\n%s%s", base.Failures(), wrapped.Failures())
	}
	if d := wrapped.MaxReaderPassage.RMR() - base.MaxReaderPassage.RMR(); d < 0 || d > 3 {
		t.Errorf("reader gate overhead = %d RMRs, want in [0,3]", d)
	}
	if d := wrapped.MaxWriterPassage.RMR() - base.MaxWriterPassage.RMR(); d < 0 || d > 5 {
		t.Errorf("writer gate overhead = %d RMRs, want in [0,5]", d)
	}
}

// staged drives the wrapped lock under a Controlled scheduler.
type staged struct {
	t    *testing.T
	r    *sim.Runner
	ctrl *sched.Controlled
}

func newStaged(t *testing.T, alg memmodel.Algorithm, readerProgs, writerProgs int) *staged {
	t.Helper()
	ctrl := &sched.Controlled{}
	r := sim.New(sim.Config{Scheduler: ctrl})
	if err := alg.Init(r, readerProgs, writerProgs); err != nil {
		t.Fatal(err)
	}
	for rid := 0; rid < readerProgs; rid++ {
		rid := rid
		r.AddProc(func(p sim.Proc) {
			p.Barrier()
			p.Section(memmodel.SecEntry)
			alg.ReaderEnter(p, rid)
			p.Section(memmodel.SecCS)
			p.Barrier()
			p.Section(memmodel.SecExit)
			alg.ReaderExit(p, rid)
			p.Section(memmodel.SecRemainder)
		})
	}
	for wid := 0; wid < writerProgs; wid++ {
		wid := wid
		r.AddProc(func(p sim.Proc) {
			p.Barrier()
			p.Section(memmodel.SecEntry)
			alg.WriterEnter(p, wid)
			p.Section(memmodel.SecCS)
			p.Barrier()
			p.Section(memmodel.SecExit)
			alg.WriterExit(p, wid)
			p.Section(memmodel.SecRemainder)
		})
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return &staged{t: t, r: r, ctrl: ctrl}
}

func (s *staged) step(id int) {
	s.t.Helper()
	s.ctrl.Target = id
	progressed, err := s.r.Step()
	if err != nil || !progressed {
		s.t.Fatalf("step p%d: progressed=%v err=%v", id, progressed, err)
	}
}

func (s *staged) release(id int) {
	s.t.Helper()
	if err := s.r.ReleaseBarrier(id); err != nil {
		s.t.Fatalf("release p%d: %v", id, err)
	}
}

func (s *staged) atBarrier(id int) bool {
	for _, b := range s.r.AtBarrier() {
		if b == id {
			return true
		}
	}
	return false
}

func (s *staged) isAwaiting(id int) bool {
	for _, a := range s.r.Awaiting() {
		if a == id {
			return true
		}
	}
	return false
}

func (s *staged) driveUntil(id int, what string, cond func() bool) {
	s.t.Helper()
	for i := 0; !cond(); i++ {
		if i > 100_000 {
			s.t.Fatalf("p%d: %s not reached", id, what)
		}
		if _, poised := s.r.PendingOf(id); !poised {
			s.t.Fatalf("p%d blocked before %s", id, what)
		}
		s.step(id)
	}
}

func (s *staged) driveWhilePoised(id int) {
	s.t.Helper()
	for i := 0; i < 100_000; i++ {
		if _, poised := s.r.PendingOf(id); !poised {
			return
		}
		s.step(id)
	}
	s.t.Fatalf("p%d still poised", id)
}

// TestWriterNoLongerStarves replays the reader-churn scenario from
// core/af_starvation_test.go against the wrapped lock: the second reader's
// re-entry attempt now blocks at the gate instead of keeping C above zero,
// the churn dies out, and the writer gets in.
func TestWriterNoLongerStarves(t *testing.T) {
	s := newStaged(t, fairness.New(core.New(core.FOne)), 2, 1)
	const r0, r1, w = 0, 1, 2

	// R0 into the CS.
	s.release(r0)
	s.driveUntil(r0, "R0 in CS", func() bool { return s.atBarrier(r0) })

	// Writer announces at the gate and blocks inside the inner entry
	// (C = 1 from R0).
	s.release(w)
	s.driveWhilePoised(w)
	if !s.isAwaiting(w) {
		t.Fatal("writer should be blocked in the inner entry")
	}

	// R1 tries to start a passage: with the gate closed it must block
	// BEFORE touching the inner lock (C stays 1, no churn possible).
	s.release(r1)
	s.driveWhilePoised(r1)
	if !s.isAwaiting(r1) {
		t.Fatal("R1 should be parked at the writer-priority gate")
	}
	if got := s.r.Account(r1).Section(); got != memmodel.SecEntry {
		t.Fatalf("R1 section = %v, want entry (gated)", got)
	}

	// R0 leaves; its exit drains the group and the writer proceeds into
	// the CS while R1 is still gated: writer priority achieved.
	s.release(r0)
	s.driveWhilePoised(r0) // R0 runs to completion
	s.driveUntil(w, "writer in CS", func() bool { return s.atBarrier(w) })
	if !s.isAwaiting(r1) {
		t.Fatal("R1 should still be gated while the writer is in the CS")
	}

	// Writer exits, clearing the gate; R1 completes.
	s.release(w)
	s.driveWhilePoised(w)
	s.driveUntil(r1, "R1 in CS", func() bool { return s.atBarrier(r1) })
	s.release(r1)
	s.driveWhilePoised(r1)
	if len(s.r.Account(r1).Passages) != 1 {
		t.Fatal("R1 did not complete its passage")
	}
}

// TestReaderCanStarveUnderWriterChurn demonstrates the trade: back-to-back
// writers keep the gate closed, so a reader makes no progress while
// writers keep arriving — reader starvation-freedom is gone (deliberately).
func TestReaderCanStarveUnderWriterChurn(t *testing.T) {
	s := newStaged(t, fairness.New(core.New(core.FOne)), 1, 2)
	const rd, w0, w1 = 0, 1, 2

	// W0 announces and enters the CS.
	s.release(w0)
	s.driveUntil(w0, "w0 in CS", func() bool { return s.atBarrier(w0) })

	// W1 announces (gate count 2) and queues on the inner WL.
	s.release(w1)
	s.driveWhilePoised(w1)
	if !s.isAwaiting(w1) {
		t.Fatal("w1 should queue behind w0")
	}

	// The reader arrives: gated.
	s.release(rd)
	s.driveWhilePoised(rd)
	if !s.isAwaiting(rd) {
		t.Fatal("reader should be gated")
	}

	// W0 completes entirely; the gate count drops to 1 (w1 still pending).
	// The reader wakes for one gate re-check, sees 1, and re-parks while
	// w1 proceeds into the CS.
	s.release(w0)
	s.driveWhilePoised(w0)
	s.driveWhilePoised(rd) // gate re-check: still closed
	s.driveUntil(w1, "w1 in CS", func() bool { return s.atBarrier(w1) })
	s.driveWhilePoised(rd)
	if !s.isAwaiting(rd) {
		t.Fatal("reader should still be gated while writers keep arriving")
	}

	// Only when the last writer leaves does the reader get in.
	s.release(w1)
	s.driveWhilePoised(w1)
	s.driveUntil(rd, "reader in CS", func() bool { return s.atBarrier(rd) })
	s.release(rd)
	s.driveWhilePoised(rd)
	if len(s.r.Account(rd).Passages) != 1 {
		t.Fatal("reader never completed")
	}
}

// TestPropsAdjusted: the wrapper declares the fairness trade.
func TestPropsAdjusted(t *testing.T) {
	props := fairness.New(core.New(core.FLog)).Props()
	if props.ReaderStarvationFree {
		t.Error("wrapper must not claim reader starvation-freedom")
	}
	if !props.ConcurrentEntering {
		t.Error("Concurrent Entering must be preserved (writers in remainder -> gate open)")
	}
}
