// Package fairness addresses the paper's closing open problem: A_f (like
// the baselines) lets writers starve when readers keep arriving
// (Section 6: "Writers, however, may starve if there are always readers
// performing passages"; finding tradeoff-optimal algorithms with better
// fairness is left as future work).
//
// WriterPriority is a *composition*, not a modified protocol: it wraps any
// reader-writer lock with a pre-gate in the reader's path. Writers bump a
// pending count before entering the inner lock and drop it after exiting;
// readers wait (local spin) for the count to reach zero before starting
// the inner entry section. Because the gate executes logically in the
// remainder section — before the inner algorithm's entry begins — it
// cannot affect the inner lock's Mutual Exclusion, Bounded Exit or
// deadlock freedom, and Concurrent Entering is preserved in the only case
// where it is required (all writers in the remainder section implies the
// gate is open). The costs are O(1) extra RMRs per passage for both
// classes.
//
// The trade: writers can no longer starve behind reader churn (the gate
// stalls new readers while a writer is pending), but reader
// starvation-freedom is lost — under perpetual writer arrivals the gate
// may never open. The staged tests demonstrate both directions. Matching
// the paper's tradeoff with *two-sided* fairness remains open, as the
// paper says.
package fairness

import (
	"fmt"

	"repro/internal/memmodel"
)

// WriterPriority wraps an inner reader-writer lock with a writer-pending
// gate. Construct with New.
type WriterPriority struct {
	inner memmodel.Algorithm
	// pend counts writers past the gate but not yet out of their exit
	// section. Writers update it with CAS retry loops (the operation set
	// stays read/write/CAS); retries are bounded by writer concurrency.
	pend memmodel.Var
}

var _ memmodel.Algorithm = (*WriterPriority)(nil)

// New wraps inner with writer priority.
func New(inner memmodel.Algorithm) *WriterPriority {
	return &WriterPriority{inner: inner}
}

// Name implements memmodel.Algorithm.
func (w *WriterPriority) Name() string { return w.inner.Name() + "+wpri" }

// Init implements memmodel.Algorithm.
func (w *WriterPriority) Init(a memmodel.Allocator, nReaders, nWriters int) error {
	if err := w.inner.Init(a, nReaders, nWriters); err != nil {
		return fmt.Errorf("fairness: inner init: %w", err)
	}
	w.pend = a.Alloc("WPEND", 0)
	return nil
}

// ReaderEnter waits at the gate until no writer is pending, then runs the
// inner entry section. A writer arriving after the gate check is handled
// by the inner lock as usual; the gate only prevents *streams* of readers
// from keeping writers out forever.
func (w *WriterPriority) ReaderEnter(p memmodel.Proc, rid int) {
	p.Await(w.pend, func(x uint64) bool { return x == 0 })
	w.inner.ReaderEnter(p, rid)
}

// ReaderExit runs the inner exit section; the gate has no reader-side
// cleanup.
func (w *WriterPriority) ReaderExit(p memmodel.Proc, rid int) {
	w.inner.ReaderExit(p, rid)
}

// WriterEnter announces the writer at the gate, then runs the inner entry
// section.
func (w *WriterPriority) WriterEnter(p memmodel.Proc, wid int) {
	for {
		cur := p.Read(w.pend)
		if _, ok := p.CAS(w.pend, cur, cur+1); ok {
			break
		}
	}
	w.inner.WriterEnter(p, wid)
}

// WriterExit runs the inner exit section, then retracts the announcement
// (re-opening the gate when this was the last pending writer).
func (w *WriterPriority) WriterExit(p memmodel.Proc, wid int) {
	w.inner.WriterExit(p, wid)
	for {
		cur := p.Read(w.pend)
		if _, ok := p.CAS(w.pend, cur, cur-1); ok {
			return
		}
	}
}

// Props implements memmodel.Algorithm: the wrapper keeps the inner lock's
// properties except reader starvation-freedom, which it deliberately
// trades for writer priority.
func (w *WriterPriority) Props() memmodel.Props {
	props := w.inner.Props()
	props.ReaderStarvationFree = false
	props.UsesCAS = true
	return props
}
