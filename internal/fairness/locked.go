package fairness

import (
	"sync"

	"repro/internal/trace"
)

// LockedBypassMonitor is a concurrency-safe wrapper over BypassMonitor for
// callers outside the single-stepped simulator — rwlockd shards feed it
// grant/wait transitions from many connection goroutines and the stats
// endpoint reads it concurrently. Every method takes an internal mutex;
// the embedded monitor's single-threaded contract (see BypassMonitor) is
// never visible to callers.
//
// Under concurrent observers the per-event ordering is whatever the lock
// admits, so exact counts depend on interleaving; the monitor's invariants
// (counts never negative, MaxBypass ≤ TotalBypass per closed wait) hold
// regardless.
type LockedBypassMonitor struct {
	mu sync.Mutex
	m  *BypassMonitor
}

// NewLockedBypassMonitor returns a locked monitor for nProcs processes of
// which the first nReaders are readers.
func NewLockedBypassMonitor(nProcs, nReaders int) *LockedBypassMonitor {
	return &LockedBypassMonitor{m: NewBypassMonitor(nProcs, nReaders)}
}

// Observe consumes one trace event; safe for concurrent use.
func (l *LockedBypassMonitor) Observe(e trace.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.m.Observe(e)
}

// MaxBypass returns the largest single-wait overtake count proc suffered.
func (l *LockedBypassMonitor) MaxBypass(proc int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.m.MaxBypass(proc)
}

// TotalBypass returns proc's total overtake count across all waits.
func (l *LockedBypassMonitor) TotalBypass(proc int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.m.TotalBypass(proc)
}

// MaxReaderBypass returns the worst single-wait overtake count over all
// readers.
func (l *LockedBypassMonitor) MaxReaderBypass() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.m.MaxReaderBypass()
}

// MaxWriterBypass returns the worst single-wait overtake count over all
// writers.
func (l *LockedBypassMonitor) MaxWriterBypass() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.m.MaxWriterBypass()
}
