package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/parwork"
)

// TestHandleSignalsCooperativeThenAbort drives the signal handler through
// an injected channel: the first SIGINT must stop the sweep cooperatively
// (and say so on stderr), a cooperative interruption must surface as exit
// 3 with the resume hint, and a second SIGINT must abort with 130.
func TestHandleSignalsCooperativeThenAbort(t *testing.T) {
	exitCode := make(chan int, 2)
	exit = func(code int) { exitCode <- code }
	defer func() { exit = os.Exit }()

	oldStderr := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	defer func() { os.Stderr = oldStderr }()

	stop := parwork.NewStopper()
	ch := make(chan os.Signal, 2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		handleSignals(ch, stop)
	}()

	if stop.Stopped() {
		t.Fatal("stopper tripped before any signal")
	}
	ch <- syscall.SIGINT
	waitFor(t, "cooperative stop", stop.Stopped)

	// The cooperative path: an interrupted sweep fails with exit 3 and,
	// with a checkpoint in play, advertises -resume.
	resumableHint = true
	defer func() { resumableHint = false }()
	Fail("tool", fmt.Errorf("E15: %w", &parwork.InterruptedError{Done: 1, Total: 4}))
	if code := <-exitCode; code != 3 {
		t.Fatalf("interrupted sweep exited %d, want 3", code)
	}

	// Second signal: abort.
	ch <- syscall.SIGINT
	<-done
	if code := <-exitCode; code != 130 {
		t.Fatalf("second interrupt exited %d, want 130", code)
	}

	w.Close()
	os.Stderr = oldStderr
	buf, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	msg := string(buf)
	if !strings.Contains(msg, "interrupt again to abort") {
		t.Errorf("first-signal guidance missing from stderr: %q", msg)
	}
	if !strings.Contains(msg, "resumable, rerun with -resume") {
		t.Errorf("resume hint missing from stderr: %q", msg)
	}
}

// TestNotifyStopRealSignal sends the process an actual SIGINT and checks
// the installed handler trips the stopper — the full os/signal wiring, in
// process.
func TestNotifyStopRealSignal(t *testing.T) {
	exit = func(code int) {} // a stray second delivery must not kill the test binary
	defer func() { exit = os.Exit }()

	stop := parwork.NewStopper()
	notifyStop(stop)
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stop after real SIGINT", stop.Stopped)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRobustFlagsValidation: -resume without -checkpoint must be rejected
// by apply, not silently ignored. RobustFlags registers on the global flag
// set (once per process), so the flags are flipped via flag.Set.
func TestRobustFlagsValidation(t *testing.T) {
	apply := RobustFlags()
	if err := apply(); err != nil {
		t.Fatalf("no-op apply: %v", err)
	}
	if err := flag.Set("resume", "true"); err != nil {
		t.Fatal(err)
	}
	defer flag.Set("resume", "false") //nolint:errcheck // restoring default
	if err := apply(); err == nil || !strings.Contains(err.Error(), "-checkpoint") {
		t.Fatalf("resume without checkpoint: err = %v, want -checkpoint requirement", err)
	}
}
