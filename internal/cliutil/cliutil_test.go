package cliutil

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"

	"repro/internal/parwork"
	"repro/internal/sim"
)

func TestParseInts(t *testing.T) {
	got, err := ParseInts("8, 64,512")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{8, 64, 512}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
	for _, bad := range []string{"", "a", "0", "-3", ","} {
		if _, err := ParseInts(bad); err == nil {
			t.Errorf("ParseInts(%q) accepted", bad)
		}
	}
}

func TestParseSeeds(t *testing.T) {
	got, err := ParseSeeds("1,-2,3")
	if err != nil || len(got) != 3 || got[1] != -2 {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := ParseSeeds("x"); err == nil {
		t.Error("bad seed accepted")
	}
	if _, err := ParseSeeds(""); err == nil {
		t.Error("empty seeds accepted")
	}
}

func TestParseProtocol(t *testing.T) {
	for _, s := range []string{"wt", "write-through", "WriteThrough"} {
		if p, err := ParseProtocol(s); err != nil || p != sim.WriteThrough {
			t.Errorf("ParseProtocol(%q) = %v, %v", s, p, err)
		}
	}
	for _, s := range []string{"wb", "write-back"} {
		if p, err := ParseProtocol(s); err != nil || p != sim.WriteBack {
			t.Errorf("ParseProtocol(%q) = %v, %v", s, p, err)
		}
	}
	if _, err := ParseProtocol("bogus"); err == nil {
		t.Error("bogus protocol accepted")
	}
}

// TestNoArgs checks the flags-only contract shared by every cmd/ binary:
// positional operands exit with status 2 (matching the flag package's own
// bad-flag exit), clean invocations pass through.
func TestNoArgs(t *testing.T) {
	exitCode := -1
	exit = func(code int) { exitCode = code }
	defer func() { exit = os.Exit }()

	fs := flag.NewFlagSet("toolname", flag.ContinueOnError)
	var usageCalled bool
	fs.Usage = func() { usageCalled = true }
	var out strings.Builder
	fs.SetOutput(&out)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	NoArgs(fs)
	if exitCode != -1 {
		t.Fatalf("NoArgs exited (%d) without positional args", exitCode)
	}

	if err := fs.Parse([]string{"stray"}); err != nil {
		t.Fatal(err)
	}
	NoArgs(fs)
	if exitCode != 2 {
		t.Errorf("exit code = %d, want 2", exitCode)
	}
	if !usageCalled {
		t.Error("usage not printed")
	}
	if msg := out.String(); !strings.Contains(msg, "stray") || !strings.Contains(msg, "toolname") {
		t.Errorf("diagnostic %q does not name the tool and the stray argument", msg)
	}
}

// TestFail checks the sweep exit-status contract: a cooperative
// interruption exits 3 and advertises -resume when a checkpoint is in
// play; everything else exits 1.
func TestFail(t *testing.T) {
	exitCode := -1
	exit = func(code int) { exitCode = code }
	defer func() { exit = os.Exit }()

	captureStderr := func(fn func()) string {
		old := os.Stderr
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stderr = w
		fn()
		w.Close()
		os.Stderr = old
		buf, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(buf)
	}

	msg := captureStderr(func() { Fail("tool", errors.New("boom")) })
	if exitCode != 1 || !strings.Contains(msg, "tool: boom") {
		t.Errorf("plain error: exit %d, msg %q", exitCode, msg)
	}

	interrupted := fmt.Errorf("E15: %w", &parwork.InterruptedError{Done: 2, Total: 5})
	resumableHint = false
	msg = captureStderr(func() { Fail("tool", interrupted) })
	if exitCode != 3 || strings.Contains(msg, "-resume") {
		t.Errorf("interrupted without checkpoint: exit %d, msg %q", exitCode, msg)
	}

	resumableHint = true
	defer func() { resumableHint = false }()
	msg = captureStderr(func() { Fail("tool", interrupted) })
	if exitCode != 3 || !strings.Contains(msg, "resumable, rerun with -resume") {
		t.Errorf("interrupted with checkpoint: exit %d, msg %q", exitCode, msg)
	}
}
