// Profiling flags: the -cpuprofile/-memprofile surface shared by the cmd/
// binaries, for digging into where a sweep or benchmark actually spends
// its time (pprof format, `go tool pprof FILE`). Profiles must be flushed
// before the process exits — os.Exit skips defers — so every exit path in
// a binary that registers these flags must go through Exit (or Fail/
// NoArgs, which route through it).
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// profileFlushes holds the flush actions of the active profiles, run
// (LIFO) by StopProfiles.
var profileFlushes []func()

// ProfileFlags registers the shared -cpuprofile and -memprofile flags.
// The returned apply function must be called after flag.Parse: it starts
// CPU profiling immediately (so the whole run is covered) and arranges
// for the heap profile to be written at exit. Both are flushed by
// StopProfiles, which Exit invokes on every path.
func ProfileFlags() (apply func() error) {
	cpu := flag.String("cpuprofile", "", "write a CPU profile to FILE (pprof format)")
	mem := flag.String("memprofile", "", "write a heap profile to FILE at exit (pprof format)")
	return func() error {
		if *cpu != "" {
			f, err := os.Create(*cpu)
			if err != nil {
				return fmt.Errorf("-cpuprofile: %w", err)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("-cpuprofile: %w", err)
			}
			profileFlushes = append(profileFlushes, func() {
				pprof.StopCPUProfile()
				f.Close()
			})
		}
		if path := *mem; path != "" {
			profileFlushes = append(profileFlushes, func() {
				f, err := os.Create(path)
				if err != nil {
					fmt.Fprintln(os.Stderr, "-memprofile:", err)
					return
				}
				defer f.Close()
				runtime.GC() // report live objects, not garbage awaiting collection
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, "-memprofile:", err)
				}
			})
		}
		return nil
	}
}

// StopProfiles flushes and closes any active profiles. Idempotent; safe
// when ProfileFlags was never registered or no profile flag was set.
func StopProfiles() {
	for i := len(profileFlushes) - 1; i >= 0; i-- {
		profileFlushes[i]()
	}
	profileFlushes = nil
}

// Exit flushes any active profiles and terminates with code. Binaries
// registering ProfileFlags must use this (or Fail) instead of os.Exit,
// which would drop the profile buffers on the floor.
func Exit(code int) {
	StopProfiles()
	exit(code)
}
