// Robust-sweep flags: the -checkpoint/-resume/-keep-going/-row-timeout
// surface shared by rwverify, rwexplore and rwbench. Like ParallelFlag,
// the flags install a process-wide default (spec.SetDefaultRobust) so
// every sweep in the invocation inherits the chosen behaviors.
package cliutil

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/checkpoint"
	"repro/internal/parwork"
	"repro/internal/spec"
)

// resumableHint is set once a checkpoint file is in play, so Fail can tell
// the user an interrupted sweep is resumable.
var resumableHint bool

// RobustFlags registers the shared robust-sweep flags. The returned apply
// function must be called after flag.Parse: it validates the combination,
// opens the checkpoint store, installs the process-wide robust default
// (spec.SetDefaultRobust) and wires SIGINT/SIGTERM to cooperative
// cancellation — the first signal stops workers from claiming new rows
// and flushes a final checkpoint, a second one exits immediately. With no
// robust flag set it is a no-op and sweeps run exactly as before.
func RobustFlags() (apply func() error) {
	ckPath := flag.String("checkpoint", "",
		"checkpoint file: record completed sweep rows so an interrupted run can resume")
	resume := flag.Bool("resume", false,
		"resume from -checkpoint FILE, recomputing only rows it is missing (the file must exist and match the sweep configuration)")
	keepGoing := flag.Bool("keep-going", false,
		"isolate row failures: report a panicking or timed-out sweep row and continue instead of aborting")
	rowTimeout := flag.Duration("row-timeout", 0,
		"wall-clock deadline per sweep row; a row exceeding it is reported as stuck (0 = none)")
	interruptAfter := flag.Int("interrupt-after", 0,
		"stop the sweep after N computed rows as if interrupted (testing hook; 0 = never)")
	return func() error {
		if *resume && *ckPath == "" {
			return errors.New("-resume requires -checkpoint FILE")
		}
		ro := &spec.RobustOptions{KeepGoing: *keepGoing, RowTimeout: *rowTimeout}
		if *ckPath != "" {
			st, err := checkpoint.Open(*ckPath, *resume)
			if err != nil {
				return err
			}
			// Flush immediately: an unwritable path must fail now, not
			// hours into the sweep at the first periodic flush.
			if err := st.Flush(); err != nil {
				return err
			}
			ro.Store = st
			resumableHint = true
		}
		if ro.Store == nil && !ro.KeepGoing && ro.RowTimeout <= 0 && *interruptAfter <= 0 {
			return nil
		}
		ro.Stop = parwork.NewStopper()
		if n := *interruptAfter; n > 0 {
			ro.AfterRow = func(done int) {
				if done >= n {
					ro.Stop.Stop()
				}
			}
		}
		notifyStop(ro.Stop)
		spec.SetDefaultRobust(ro)
		return nil
	}
}

// notifyStop wires SIGINT/SIGTERM to the stopper: first signal cancels
// cooperatively, second aborts the process (130, shell convention for
// death by SIGINT).
func notifyStop(stop *parwork.Stopper) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go handleSignals(ch, stop)
}

// handleSignals is notifyStop's body, split out so tests can drive it
// through an injected channel: the first signal stops the sweep
// cooperatively and tells the user how to abort; the second exits 130.
func handleSignals(ch <-chan os.Signal, stop *parwork.Stopper) {
	<-ch
	stop.Stop()
	fmt.Fprintln(os.Stderr, "interrupt: finishing in-flight rows and flushing the checkpoint (interrupt again to abort)")
	<-ch
	Exit(130)
}

// Fail reports a fatal sweep error and exits: status 3 for a cooperative
// interruption (resumable when a checkpoint file is in play), 1 for
// everything else.
func Fail(tool string, err error) {
	var ie *parwork.InterruptedError
	if errors.As(err, &ie) {
		hint := ""
		if resumableHint {
			hint = " (resumable, rerun with -resume)"
		}
		fmt.Fprintf(os.Stderr, "%s: %v%s\n", tool, err, hint)
		Exit(3)
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	Exit(1)
}
