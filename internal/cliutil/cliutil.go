// Package cliutil holds the small flag-parsing helpers shared by the cmd/
// binaries.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/parwork"
	"repro/internal/sim"
)

// ParallelFlag registers the shared -parallel flag. The returned apply
// function must be called after flag.Parse: it installs the chosen worker
// count as the process-wide sweep default (parwork.SetDefault), so every
// sweep and experiment grid in the invocation fans out across it. 0 (the
// default) selects GOMAXPROCS; 1 forces serial execution. Results are
// byte-identical at every worker count.
func ParallelFlag() (apply func()) {
	n := flag.Int("parallel", 0,
		"sweep worker count (0 = GOMAXPROCS, 1 = serial; results identical either way)")
	return func() { parwork.SetDefault(*n) }
}

// exit is swapped out by tests.
var exit = os.Exit

// NoArgs enforces that a parsed flag set received no positional arguments.
// The cmd/ binaries take configuration through flags only; a stray operand
// is almost always a mistyped flag, so it is reported and the process
// exits with the same status code the flag package uses for bad flags (2).
func NoArgs(fs *flag.FlagSet) {
	if fs.NArg() == 0 {
		return
	}
	fmt.Fprintf(fs.Output(), "%s: unexpected argument %q (flags only)\n", fs.Name(), fs.Arg(0))
	fs.Usage()
	Exit(2)
}

// ParseInts parses a comma-separated list of positive integers ("8,64,512").
func ParseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %w", p, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("value %d must be positive", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list %q", s)
	}
	return out, nil
}

// ParseSeeds parses a comma-separated list of int64 seeds.
func ParseSeeds(s string) ([]int64, error) {
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", p, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty seed list %q", s)
	}
	return out, nil
}

// ParseProtocol maps "wt"/"wb" (or long names) to a protocol.
func ParseProtocol(s string) (sim.Protocol, error) {
	switch strings.ToLower(s) {
	case "wt", "write-through", "writethrough":
		return sim.WriteThrough, nil
	case "wb", "write-back", "writeback":
		return sim.WriteBack, nil
	default:
		return 0, fmt.Errorf("unknown protocol %q (want wt or wb)", s)
	}
}
