// Package fault injects crash-stop failures into simulator executions.
//
// The failure model is crash-stop at shared-memory-step granularity
// (Section 2's model extended the way the recoverable-mutex literature
// does, e.g. Chan & Woelfel, PODC 2017): a crashed process takes no
// further steps, forever, but every step it already took — including
// writes that other processes have observed — remains in effect. There is
// no recovery: the paper's algorithms keep per-process state in shared
// counters and signal words, and a crashed process's contribution is never
// undone. The interesting question, answered by the spec harness's crash
// sweep, is exactly *which* crash points leave the survivors live and
// which wedge them forever (detected deterministically by the simulator's
// no-progress watchdog, never by a step budget).
//
// Drive is the injection driver: it steps a runner to termination,
// killing chosen processes at chosen global step indices. Crash points are
// enumerated exhaustively for tiny scenarios (every step boundary of a
// reference execution) and sampled with seeded randomness for larger ones.
package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/sim"
)

// Point schedules one crash: Victim is killed at the boundary before the
// execution's global step index Step. Step 0 kills the victim before it
// takes any step at all.
type Point struct {
	// Victim is the process id to crash-stop.
	Victim int
	// Step is the global step index before which the victim dies.
	Step int
}

func (p Point) String() string { return fmt.Sprintf("crash p%d @%d", p.Victim, p.Step) }

// Drive steps r until termination, applying every crash point at its step
// boundary. Points whose victim already finished (or already crashed) by
// the time they fire are skipped: crash-stopping a process that takes no
// further steps anyway is a no-op. It returns nil when the execution
// terminates (every process done or crashed), the runner's
// *sim.NoProgressError when the watchdog detects that the survivors are
// wedged, and any other runner error (step budget, scheduler fault)
// verbatim. Barriers are not supported: Drive is for unstaged executions.
func Drive(r *sim.Runner, points []Point) error {
	pts := make([]Point, len(points))
	copy(pts, points)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Step < pts[j].Step })
	next := 0
	for {
		for next < len(pts) && pts[next].Step <= r.StepCount() {
			p := pts[next]
			next++
			if !r.Alive(p.Victim) {
				continue
			}
			if err := r.Crash(p.Victim); err != nil {
				return fmt.Errorf("fault: %s: %w", p, err)
			}
		}
		progressed, err := r.Step()
		if err != nil {
			return err
		}
		if !progressed {
			if r.Terminated() {
				return nil
			}
			return fmt.Errorf("fault: processes %v stalled at barriers under Drive", r.AtBarrier())
		}
	}
}

// ExhaustivePoints enumerates every crash point for victim in an execution
// of totalSteps steps: one Point per step boundary, 0 through totalSteps
// inclusive (the final boundary crashes the victim after the reference
// execution's last step, exercising the everything-done edge). Callers run
// one fresh execution per point.
func ExhaustivePoints(victim, totalSteps int) []Point {
	pts := make([]Point, 0, totalSteps+1)
	for k := 0; k <= totalSteps; k++ {
		pts = append(pts, Point{Victim: victim, Step: k})
	}
	return pts
}

// RandomPoints samples count crash points with a seeded generator: victims
// drawn uniformly from victims, steps uniformly from [0, maxStep). The
// sample is deterministic per seed, so sweeps are reproducible. Duplicates
// are possible and harmless (each point drives its own execution).
func RandomPoints(seed int64, victims []int, maxStep, count int) []Point {
	if len(victims) == 0 || maxStep <= 0 || count <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, 0, count)
	for i := 0; i < count; i++ {
		pts = append(pts, Point{
			Victim: victims[rng.Intn(len(victims))],
			Step:   rng.Intn(maxStep),
		})
	}
	return pts
}
