// Package fault injects failures into simulator executions, under three
// failure models: crash-stop, crash-recovery, and fail-slow (stalls).
//
// Crash-stop (Drive): a crashed process takes no further steps, forever,
// but every step it already took — including writes that other processes
// have observed — remains in effect. The paper's algorithms keep
// per-process state in shared counters and signal words, and a crashed
// process's contribution is never undone; the spec harness's crash sweep
// characterizes exactly *which* crash points leave the survivors live and
// which wedge them forever (detected deterministically by the simulator's
// no-progress watchdog, never by a step budget).
//
// Crash-recovery (DriveRecover): the recoverable-mutual-exclusion model of
// Golab–Ramaraju and Chan & Woelfel (PODC 2017). A crashed process loses
// its local state but is later re-admitted as a fresh incarnation
// (sim.Runner.Restart) running a recovery program that inspects shared
// announcement state and completes or rolls back the interrupted passage.
// A RestartPoint schedules the crash at step k and the restart after a
// delay of d further global steps; a second point against the same victim
// can land inside the recovery section itself, exercising re-crashed
// recovery. A pending restart counts as progress potential: when the
// survivors wedge on a dead process, DriveRecover applies the pending
// restarts immediately instead of reporting the no-progress error.
//
// Fail-slow (DriveStall, DriveMixed): a stalled process is merely delayed —
// finitely or indefinitely — rather than killed. It keeps every step it
// took, resumes exactly where it paused, and the paper's Section-5 liveness
// properties are precisely claims about what survives such delays. The
// stall drivers in stall.go pause a victim at a chosen step boundary; the
// simulator fast-forwards finite stalls that would otherwise wedge the
// execution and reports indefinite-stall wedges through the watchdog's
// stalled/blocked/doomed classification.
//
// Fault points are enumerated exhaustively for tiny scenarios (every step
// boundary of a reference execution) and sampled with seeded randomness
// for larger ones.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/memmodel"
	"repro/internal/sim"
)

// Point schedules one crash: Victim is killed at the boundary before the
// execution's global step index Step. Step 0 kills the victim before it
// takes any step at all.
type Point struct {
	// Victim is the process id to crash-stop.
	Victim int
	// Step is the global step index before which the victim dies.
	Step int
}

func (p Point) String() string { return fmt.Sprintf("crash p%d @%d", p.Victim, p.Step) }

// Drive steps r until termination, applying every crash point at its step
// boundary. Points whose victim already finished (or already crashed) by
// the time they fire are skipped: crash-stopping a process that takes no
// further steps anyway is a no-op. It returns nil when the execution
// terminates (every process done or crashed), the runner's
// *sim.NoProgressError when the watchdog detects that the survivors are
// wedged, and any other runner error (step budget, scheduler fault)
// verbatim. Staged executions are supported: when every schedulable
// process is parked at a barrier, Drive releases them all and continues —
// the same all-at-once policy a staged scenario gets from stepping to idle
// and releasing by hand — so crash sweeps can run the staged lower-bound
// scenarios. Crashed processes never leave a barrier.
func Drive(r *sim.Runner, points []Point) error {
	pts := make([]Point, len(points))
	copy(pts, points)
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].Step < pts[j].Step })
	next := 0
	for {
		for next < len(pts) && pts[next].Step <= r.StepCount() {
			p := pts[next]
			next++
			if !r.Alive(p.Victim) {
				continue
			}
			if err := r.Crash(p.Victim); err != nil {
				return fmt.Errorf("fault: %s: %w", p, err)
			}
		}
		progressed, err := r.Step()
		if err != nil {
			return err
		}
		if !progressed {
			if r.Terminated() {
				return nil
			}
			if err := releaseBarriers(r); err != nil {
				return err
			}
		}
	}
}

// releaseBarriers releases every process parked at a barrier. The runner
// only reports "no progress, no error" when processes are done, crashed or
// barrier-parked, so an empty barrier set here is a driver bug.
func releaseBarriers(r *sim.Runner) error {
	ids := r.AtBarrier()
	if len(ids) == 0 {
		return fmt.Errorf("fault: runner idle but terminated=%v and no process at a barrier", r.Terminated())
	}
	for _, id := range ids {
		if err := r.ReleaseBarrier(id); err != nil {
			return fmt.Errorf("fault: releasing barrier of p%d: %w", id, err)
		}
	}
	return nil
}

// RestartPoint schedules one crash-recovery event: Victim is crashed at
// the boundary before global step index Step, and restarted Delay further
// global steps later (immediately, for Delay 0). Points whose victim is
// already dead when they fire are skipped, so a second point against the
// same victim must use a step index strictly after the first restart to
// take effect (typically Step+Delay+j for small j, landing the second
// crash inside the recovery section).
type RestartPoint struct {
	// Victim is the process id to crash.
	Victim int
	// Step is the global step index before which the victim dies.
	Step int
	// Delay is the number of further global steps before the victim's next
	// incarnation is admitted. If the survivors wedge first, the restart is
	// applied at the wedge point: a pending restart is progress potential,
	// not a hang.
	Delay int
}

func (p RestartPoint) String() string {
	return fmt.Sprintf("crash p%d @%d restart +%d", p.Victim, p.Step, p.Delay)
}

// RecoverEvent reports what one RestartPoint actually did.
type RecoverEvent struct {
	// Point echoes the scheduled point.
	Point RestartPoint
	// Crashed reports whether the crash was applied; false means the
	// victim was already finished or already dead when the point fired.
	Crashed bool
	// CrashStep is the global step index at which the crash landed.
	CrashStep int
	// CrashSection is the passage section the victim occupied when it
	// crashed. A crash during a later incarnation's repair reports
	// SecRecover — the "recovery section itself crashed" configuration.
	CrashSection memmodel.Section
	// Restarted reports whether the matching restart was applied (always
	// true for applied crashes once DriveRecover returns cleanly).
	Restarted bool
	// RestartStep is the global step index at which the new incarnation
	// was admitted.
	RestartStep int
}

// DriveRecover steps r until termination, applying every restart point:
// crash at the point's boundary, restart after its delay with the program
// prog(victim) — typically a recovery section followed by the victim's
// remaining passages. Restarts that come due while the execution is wedged
// or idle are applied immediately. It returns one RecoverEvent per point,
// in the order the points fire (sorted by Step, ties in input order).
// Barrier-parked processes are released all at once, as in Drive.
func DriveRecover(r *sim.Runner, points []RestartPoint, prog func(victim int) sim.Program) ([]RecoverEvent, error) {
	pts := make([]RestartPoint, len(points))
	copy(pts, points)
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].Step < pts[j].Step })
	events := make([]RecoverEvent, len(pts))
	for i := range pts {
		events[i].Point = pts[i]
	}

	type pendingRestart struct {
		victim, due, event int
	}
	var pending []pendingRestart
	// applyRestarts admits every pending incarnation that is due (all of
	// them, when force is set: the execution cannot otherwise advance, so
	// the remaining delay cannot elapse).
	applyRestarts := func(force bool) error {
		kept := pending[:0]
		for _, pr := range pending {
			if !force && pr.due > r.StepCount() {
				kept = append(kept, pr)
				continue
			}
			if err := r.Restart(pr.victim, prog(pr.victim)); err != nil {
				return fmt.Errorf("fault: restarting p%d: %w", pr.victim, err)
			}
			events[pr.event].Restarted = true
			events[pr.event].RestartStep = r.StepCount()
		}
		pending = kept
		return nil
	}

	next := 0
	for {
		for next < len(pts) && pts[next].Step <= r.StepCount() {
			p := pts[next]
			i := next
			next++
			if !r.Alive(p.Victim) {
				continue
			}
			events[i].Crashed = true
			events[i].CrashStep = r.StepCount()
			events[i].CrashSection = r.Account(p.Victim).Section()
			if err := r.Crash(p.Victim); err != nil {
				return events, fmt.Errorf("fault: %s: %w", p, err)
			}
			pending = append(pending, pendingRestart{p.Victim, r.StepCount() + p.Delay, i})
		}
		if err := applyRestarts(false); err != nil {
			return events, err
		}
		progressed, err := r.Step()
		if err != nil {
			var np *sim.NoProgressError
			if errors.As(err, &np) && len(pending) > 0 {
				if err := applyRestarts(true); err != nil {
					return events, err
				}
				continue
			}
			return events, err
		}
		if !progressed {
			if len(pending) > 0 {
				if err := applyRestarts(true); err != nil {
					return events, err
				}
				continue
			}
			if r.Terminated() {
				return events, nil
			}
			if err := releaseBarriers(r); err != nil {
				return events, err
			}
		}
	}
}

// ExhaustivePoints enumerates every crash point for victim in an execution
// of totalSteps steps: one Point per step boundary, 0 through totalSteps
// inclusive (the final boundary crashes the victim after the reference
// execution's last step, exercising the everything-done edge). Callers run
// one fresh execution per point.
func ExhaustivePoints(victim, totalSteps int) []Point {
	pts := make([]Point, 0, totalSteps+1)
	for k := 0; k <= totalSteps; k++ {
		pts = append(pts, Point{Victim: victim, Step: k})
	}
	return pts
}

// RandomPoints samples count distinct crash points with a seeded
// generator: victims drawn uniformly from victims, steps uniformly from
// [0, maxStep). The sample is deterministic per seed, so sweeps are
// reproducible, and duplicate-free at the source: a repeated point would
// re-run the identical execution under a fixed scheduler seed and skew a
// sampled sweep's tallies toward whatever outcome it happens to have. When
// fewer than count distinct points exist, every point is returned (in a
// seeded random order).
func RandomPoints(seed int64, victims []int, maxStep, count int) []Point {
	victims = dedupVictims(victims)
	if len(victims) == 0 || maxStep <= 0 || count <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	total := len(victims) * maxStep
	if count > total {
		count = total
	}
	if 2*count >= total {
		// Dense request: enumerate the whole space and shuffle, which is
		// both cheaper and guaranteed to terminate where rejection sampling
		// degenerates into a coupon-collector walk.
		all := make([]Point, 0, total)
		for _, v := range victims {
			for s := 0; s < maxStep; s++ {
				all = append(all, Point{Victim: v, Step: s})
			}
		}
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		return all[:count]
	}
	seen := make(map[Point]bool, count)
	pts := make([]Point, 0, count)
	for len(pts) < count {
		pt := Point{
			Victim: victims[rng.Intn(len(victims))],
			Step:   rng.Intn(maxStep),
		}
		if seen[pt] {
			continue
		}
		seen[pt] = true
		pts = append(pts, pt)
	}
	return pts
}

// dedupVictims drops duplicate victim ids, preserving first-occurrence
// order, so the sampled point space is not skewed toward repeated entries.
func dedupVictims(victims []int) []int {
	seen := make(map[int]bool, len(victims))
	out := make([]int, 0, len(victims))
	for _, v := range victims {
		if seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}
