package fault

import (
	"errors"
	"testing"

	"repro/internal/memmodel"
	"repro/internal/sim"
)

// TestDriveStallFiniteCompletes: a finite stall of the producer only
// delays the consumer; the drive completes with the write in effect.
func TestDriveStallFiniteCompletes(t *testing.T) {
	r, flag := producerConsumer(t)
	defer r.Close()
	events, err := DriveStall(r, []StallPoint{{Victim: 0, Step: 0, Duration: 7}})
	if err != nil {
		t.Fatalf("finite stall wedged: %v", err)
	}
	if len(events) != 1 || !events[0].Stalled {
		t.Fatalf("events = %+v, want one applied stall", events)
	}
	if events[0].StallStep != 0 {
		t.Errorf("StallStep = %d, want 0", events[0].StallStep)
	}
	if !r.Terminated() {
		t.Error("drive returned nil without termination")
	}
	if got := r.Value(flag); got != 1 {
		t.Errorf("flag = %d, want 1 (stalled producer must still write)", got)
	}
}

// TestDriveStallIndefiniteWedges: stalling the producer forever dooms the
// consumer, and the returned diagnostic attributes the wedge.
func TestDriveStallIndefiniteWedges(t *testing.T) {
	r, _ := producerConsumer(t)
	defer r.Close()
	_, err := DriveStall(r, []StallPoint{{Victim: 0, Step: 0, Duration: Forever}})
	var np *sim.NoProgressError
	if !errors.As(err, &np) {
		t.Fatalf("err = %v, want *sim.NoProgressError", err)
	}
	if len(np.Stalled) != 1 || np.Stalled[0].Proc != 0 || !np.Stalled[0].Indefinite {
		t.Fatalf("Stalled = %+v, want p0 indefinite", np.Stalled)
	}
	if len(np.Stuck) != 1 || np.Stuck[0].Proc != 1 || !np.Stuck[0].Doomed {
		t.Fatalf("Stuck = %+v, want p1 doomed", np.Stuck)
	}
}

// TestDriveStallSkipsMootPoints: points against finished or already
// stalled victims are skipped and reported unapplied.
func TestDriveStallSkipsMootPoints(t *testing.T) {
	r, _ := producerConsumer(t)
	defer r.Close()
	events, err := DriveStall(r, []StallPoint{
		{Victim: 0, Step: 0, Duration: 3},
		{Victim: 0, Step: 1, Duration: 5},     // victim still stalled: moot
		{Victim: 0, Step: 1_000, Duration: 1}, // due only after termination: moot
	})
	if err != nil {
		t.Fatalf("drive: %v", err)
	}
	if !events[0].Stalled {
		t.Error("first point must apply")
	}
	if events[1].Stalled {
		t.Error("second point fired while the victim was still stalled; must be moot")
	}
	if events[2].Stalled {
		t.Error("point far past termination must be moot")
	}
}

// TestDriveMixedCrashSupersedesStall: a crash and a stall due at the same
// boundary against the same victim — the crash wins, the stall is moot,
// and the consumer's wedge is attributed to the crash.
func TestDriveMixedCrashSupersedesStall(t *testing.T) {
	r, _ := producerConsumer(t)
	defer r.Close()
	events, err := DriveMixed(r,
		[]Point{{Victim: 0, Step: 0}},
		[]StallPoint{{Victim: 0, Step: 0, Duration: Forever}})
	var np *sim.NoProgressError
	if !errors.As(err, &np) {
		t.Fatalf("err = %v, want *sim.NoProgressError", err)
	}
	if events[0].Stalled {
		t.Error("stall against a just-crashed victim must be moot")
	}
	if len(np.CrashedProcs) != 1 || np.CrashedProcs[0] != 0 {
		t.Errorf("CrashedProcs = %v, want [0]", np.CrashedProcs)
	}
	if len(np.Stalled) != 0 {
		t.Errorf("Stalled = %+v, want empty (crash superseded)", np.Stalled)
	}
	if len(np.Stuck) != 1 || !np.Stuck[0].Doomed {
		t.Errorf("Stuck = %+v, want the doomed consumer", np.Stuck)
	}
}

// TestDriveStallRecordsSection: the event captures the section the victim
// occupied when it stalled.
func TestDriveStallRecordsSection(t *testing.T) {
	r := sim.New(sim.Config{})
	v := r.Alloc("v", 0)
	r.AddProc(func(p sim.Proc) {
		p.Section(memmodel.SecEntry)
		p.Read(v)
		p.Section(memmodel.SecCS)
		p.Read(v)
		p.Section(memmodel.SecRemainder)
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	events, err := DriveStall(r, []StallPoint{{Victim: 0, Step: 1, Duration: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !events[0].Stalled || events[0].StallSection != memmodel.SecCS {
		t.Errorf("event = %+v, want applied in cs", events[0])
	}
}

// TestExhaustiveStallPoints covers every boundary inclusive of both ends.
func TestExhaustiveStallPoints(t *testing.T) {
	pts := ExhaustiveStallPoints(3, 5, Forever)
	if len(pts) != 6 {
		t.Fatalf("len = %d, want 6", len(pts))
	}
	for k, pt := range pts {
		want := StallPoint{Victim: 3, Step: k, Duration: Forever}
		if pt != want {
			t.Errorf("pts[%d] = %+v, want %+v", k, pt, want)
		}
	}
}

// TestRandomStallPointsDeterministic: the sample is a pure function of the
// seed, locations are distinct, durations are Forever or in [1, max].
func TestRandomStallPointsDeterministic(t *testing.T) {
	a := RandomStallPoints(7, []int{0, 1}, 50, 30, 9)
	b := RandomStallPoints(7, []int{0, 1}, 50, 30, 9)
	if len(a) != 30 || len(b) != 30 {
		t.Fatalf("lengths %d/%d, want 30", len(a), len(b))
	}
	seen := make(map[Point]bool)
	finite, forever := 0, 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, a[i], b[i])
		}
		loc := Point{Victim: a[i].Victim, Step: a[i].Step}
		if seen[loc] {
			t.Errorf("duplicate location %+v", loc)
		}
		seen[loc] = true
		switch {
		case a[i].Indefinite():
			forever++
		case a[i].Duration >= 1 && a[i].Duration <= 9:
			finite++
		default:
			t.Errorf("duration %d out of range", a[i].Duration)
		}
	}
	if finite == 0 || forever == 0 {
		t.Errorf("duration mix finite=%d forever=%d; want both populated", finite, forever)
	}
	if RandomStallPoints(1, nil, 50, 5, 3) != nil {
		t.Error("empty victims must yield nil")
	}
}

// TestStallPointString pins both renderings.
func TestStallPointString(t *testing.T) {
	if got := (StallPoint{Victim: 2, Step: 9, Duration: Forever}).String(); got != "stall p2 @9 forever" {
		t.Errorf("indefinite: %q", got)
	}
	if got := (StallPoint{Victim: 0, Step: 3, Duration: 12}).String(); got != "stall p0 @3 for 12" {
		t.Errorf("finite: %q", got)
	}
}
