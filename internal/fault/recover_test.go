package fault

import (
	"testing"

	"repro/internal/memmodel"
	"repro/internal/sim"
)

// TestDriveReleasesBarriers: Drive now runs staged executions, releasing
// barrier-parked processes when nothing else can step.
func TestDriveReleasesBarriers(t *testing.T) {
	r := sim.New(sim.Config{})
	flag := r.Alloc("flag", 0)
	r.AddProc(func(p sim.Proc) {
		p.Barrier() // released once p1 has parked in its Await
		p.Write(flag, 1)
	})
	r.AddProc(func(p sim.Proc) {
		p.Await(flag, func(x uint64) bool { return x == 1 })
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := Drive(r, nil); err != nil {
		t.Fatalf("Drive: %v", err)
	}
	if !r.Terminated() {
		t.Error("staged execution did not terminate")
	}
}

// TestDriveCrashAtBarrier: a process crashed while barrier-parked stays
// dead; Drive must not try to release it.
func TestDriveCrashAtBarrier(t *testing.T) {
	r := sim.New(sim.Config{})
	v := r.Alloc("v", 0)
	r.AddProc(func(p sim.Proc) {
		p.Barrier()
		p.Write(v, 1)
	})
	r.AddProc(func(p sim.Proc) {
		p.Read(v)
		p.Read(v)
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := Drive(r, []Point{{Victim: 0, Step: 0}}); err != nil {
		t.Fatalf("Drive: %v", err)
	}
	if got := r.Value(v); got != 0 {
		t.Errorf("crashed process's write landed: v = %d", got)
	}
}

// recoverableProducer builds the DriveRecover fixture: p0 must write flag
// before p1's Await can pass. p0's restart program inspects flag (shared
// state survives the crash) and redoes the write only if it is missing.
func recoverableProducer(t *testing.T) (*sim.Runner, func(int) sim.Program, memmodel.Var) {
	t.Helper()
	r := sim.New(sim.Config{})
	flag := r.Alloc("flag", 0)
	scratch := r.Alloc("scratch", 0)
	r.AddProc(func(p sim.Proc) {
		p.Write(flag, 1)
		p.Write(scratch, 1)
	})
	r.AddProc(func(p sim.Proc) {
		p.Await(flag, func(x uint64) bool { return x == 1 })
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	prog := func(victim int) sim.Program {
		return func(p sim.Proc) {
			p.Section(memmodel.SecRecover)
			if p.Read(flag) == 0 {
				p.Write(flag, 1)
			}
			p.Write(scratch, 1)
		}
	}
	return r, prog, flag
}

// TestDriveRecoverUnwedges: the crash point that wedges the consumer under
// crash-stop (kill the producer before its first step) terminates cleanly
// under crash-recovery, because the restarted incarnation redoes the write.
func TestDriveRecoverUnwedges(t *testing.T) {
	for _, delay := range []int{0, 1, 5, 100} {
		r, prog, flag := recoverableProducer(t)
		events, err := DriveRecover(r, []RestartPoint{{Victim: 0, Step: 0, Delay: delay}}, prog)
		if err != nil {
			t.Fatalf("delay=%d: DriveRecover: %v", delay, err)
		}
		if len(events) != 1 || !events[0].Crashed || !events[0].Restarted {
			t.Fatalf("delay=%d: events = %+v", delay, events)
		}
		if !r.Terminated() {
			t.Errorf("delay=%d: not terminated", delay)
		}
		if got := r.Value(flag); got != 1 {
			t.Errorf("delay=%d: flag = %d after recovery", delay, got)
		}
		if got := r.Incarnation(0); got != 1 {
			t.Errorf("delay=%d: incarnation = %d, want 1", delay, got)
		}
		r.Close()
	}
}

// TestDriveRecoverExhaustive crashes the producer at every boundary; every
// configuration must terminate with the flag written.
func TestDriveRecoverExhaustive(t *testing.T) {
	ref, _, _ := recoverableProducer(t)
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	total := ref.StepCount()
	ref.Close()
	for k := 0; k <= total; k++ {
		for _, delay := range []int{0, 2} {
			r, prog, flag := recoverableProducer(t)
			events, err := DriveRecover(r, []RestartPoint{{Victim: 0, Step: k, Delay: delay}}, prog)
			if err != nil {
				t.Fatalf("k=%d delay=%d: %v", k, delay, err)
			}
			if events[0].Crashed && !events[0].Restarted {
				t.Errorf("k=%d delay=%d: crash without restart", k, delay)
			}
			if got := r.Value(flag); got != 1 {
				t.Errorf("k=%d delay=%d: flag = %d", k, delay, got)
			}
			r.Close()
		}
	}
}

// TestDriveRecoverRecrash kills the restarted incarnation inside its
// recovery program; the third incarnation finishes the repair.
func TestDriveRecoverRecrash(t *testing.T) {
	r, prog, flag := recoverableProducer(t)
	defer r.Close()
	pts := []RestartPoint{
		{Victim: 0, Step: 0, Delay: 0},
		{Victim: 0, Step: 1, Delay: 0}, // lands in incarnation 1's recovery
	}
	events, err := DriveRecover(r, pts, prog)
	if err != nil {
		t.Fatalf("DriveRecover: %v", err)
	}
	if !events[0].Crashed || !events[1].Crashed {
		t.Fatalf("events = %+v, want both crashes applied", events)
	}
	if events[1].CrashSection != memmodel.SecRecover {
		t.Errorf("second crash landed in %v, want SecRecover", events[1].CrashSection)
	}
	if got := r.Incarnation(0); got != 2 {
		t.Errorf("incarnation = %d, want 2", got)
	}
	if got := r.Value(flag); got != 1 {
		t.Errorf("flag = %d", got)
	}
	if accts := r.AccountsOf(0); len(accts) != 3 {
		t.Errorf("AccountsOf(0) has %d accounts, want 3", len(accts))
	}
}

// TestDriveRecoverMootPoint: a point firing after the victim finished is
// skipped and reported as neither crashed nor restarted.
func TestDriveRecoverMootPoint(t *testing.T) {
	r, prog, _ := recoverableProducer(t)
	defer r.Close()
	events, err := DriveRecover(r, []RestartPoint{{Victim: 1, Step: 1 << 20, Delay: 0}}, prog)
	if err != nil {
		t.Fatalf("DriveRecover: %v", err)
	}
	if events[0].Crashed || events[0].Restarted {
		t.Errorf("moot point applied: %+v", events[0])
	}
}

// TestDriveRecoverStagedBarrier: DriveRecover releases barrier stages like
// Drive does.
func TestDriveRecoverStagedBarrier(t *testing.T) {
	r := sim.New(sim.Config{})
	flag := r.Alloc("flag", 0)
	r.AddProc(func(p sim.Proc) {
		p.Barrier()
		p.Write(flag, 1)
	})
	r.AddProc(func(p sim.Proc) {
		p.Await(flag, func(x uint64) bool { return x == 1 })
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := DriveRecover(r, nil, nil); err != nil {
		t.Fatalf("DriveRecover: %v", err)
	}
	if !r.Terminated() {
		t.Error("staged execution did not terminate")
	}
}
