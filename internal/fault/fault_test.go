package fault

import (
	"errors"
	"testing"

	"repro/internal/memmodel"
	"repro/internal/sim"
)

// producerConsumer builds the smallest scenario with a crash-sensitive
// dependency: process 0 writes flag then scratch; process 1 awaits
// flag == 1. Killing process 0 before its first step wedges process 1.
func producerConsumer(t *testing.T) (*sim.Runner, memmodel.Var) {
	t.Helper()
	r := sim.New(sim.Config{})
	flag := r.Alloc("flag", 0)
	scratch := r.Alloc("scratch", 0)
	r.AddProc(func(p sim.Proc) {
		p.Write(flag, 1)
		p.Write(scratch, 1)
	})
	r.AddProc(func(p sim.Proc) {
		p.Await(flag, func(x uint64) bool { return x == 1 })
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	return r, flag
}

func TestCrashBeforeWriteWedgesConsumer(t *testing.T) {
	r, flag := producerConsumer(t)
	defer r.Close()
	err := Drive(r, []Point{{Victim: 0, Step: 0}})
	if err == nil {
		t.Fatal("expected no-progress error")
	}
	if !errors.Is(err, sim.ErrNoProgress) || !errors.Is(err, sim.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrNoProgress and ErrDeadlock matches", err)
	}
	var np *sim.NoProgressError
	if !errors.As(err, &np) {
		t.Fatalf("err %T is not *sim.NoProgressError", err)
	}
	if len(np.Stuck) != 1 || np.Stuck[0].Proc != 1 {
		t.Fatalf("Stuck = %+v, want exactly p1", np.Stuck)
	}
	s := np.Stuck[0]
	if len(s.Vars) != 1 || s.Vars[0] != flag || s.VarNames[0] != "flag" || s.Values[0] != 0 {
		t.Errorf("stuck diagnostic = %+v, want flag=0", s)
	}
	if len(np.CrashedProcs) != 1 || np.CrashedProcs[0] != 0 {
		t.Errorf("CrashedProcs = %v, want [0]", np.CrashedProcs)
	}
}

func TestCrashAfterWriteLetsConsumerFinish(t *testing.T) {
	r, _ := producerConsumer(t)
	defer r.Close()
	// Round-robin runs p0's flag write at step 0; killing p0 at step 1
	// leaves its scratch write untaken but p1 unblocked.
	if err := Drive(r, []Point{{Victim: 0, Step: 1}}); err != nil {
		t.Fatalf("Drive: %v", err)
	}
	if !r.Terminated() {
		t.Error("runner not terminated")
	}
	if got := r.Crashed(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Crashed = %v, want [0]", got)
	}
	if r.Done() {
		t.Error("Done must stay false for a crashed process")
	}
}

// TestExhaustiveSweep checks the full crash-point enumeration against the
// hand-derived outcome: only the point before p0's first step hangs p1.
func TestExhaustiveSweep(t *testing.T) {
	ref, _ := producerConsumer(t)
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	total := ref.StepCount()
	ref.Close()
	if total != 3 { // flag write, await satisfaction, scratch write
		t.Fatalf("reference execution took %d steps, want 3", total)
	}
	for _, pt := range ExhaustivePoints(0, total) {
		r, _ := producerConsumer(t)
		err := Drive(r, []Point{pt})
		r.Close()
		if pt.Step == 0 {
			if !errors.Is(err, sim.ErrNoProgress) {
				t.Errorf("%s: err = %v, want no-progress", pt, err)
			}
		} else if err != nil {
			t.Errorf("%s: err = %v, want clean termination", pt, err)
		}
	}
}

func TestDriveSkipsFinishedVictim(t *testing.T) {
	r, _ := producerConsumer(t)
	defer r.Close()
	// p1 finishes at step 1; a later crash point against it is moot.
	if err := Drive(r, []Point{{Victim: 1, Step: 3}}); err != nil {
		t.Fatalf("Drive: %v", err)
	}
	if len(r.Crashed()) != 0 {
		t.Errorf("Crashed = %v, want none", r.Crashed())
	}
}

func TestCrashErrors(t *testing.T) {
	r, _ := producerConsumer(t)
	defer r.Close()
	if err := r.Crash(-1); err == nil {
		t.Error("Crash(-1) accepted")
	}
	if err := r.Crash(2); err == nil {
		t.Error("Crash(2) accepted")
	}
	if err := r.Crash(0); err != nil {
		t.Fatalf("Crash(0): %v", err)
	}
	if err := r.Crash(0); err == nil {
		t.Error("double Crash accepted")
	}
}

func TestCrashFinishedProcessRejected(t *testing.T) {
	r, _ := producerConsumer(t)
	defer r.Close()
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if err := r.Crash(0); err == nil {
		t.Error("Crash on finished process accepted")
	}
}

// TestCrashedProcessNotSchedulable pins the PendingOp-facing behavior the
// injector depends on: a crashed process disappears from Poised and
// PendingOf even though it had a pending operation.
func TestCrashedProcessNotSchedulable(t *testing.T) {
	r, _ := producerConsumer(t)
	defer r.Close()
	if _, ok := r.PendingOf(0); !ok {
		t.Fatal("p0 should be poised before the crash")
	}
	if err := r.Crash(0); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.PendingOf(0); ok {
		t.Error("PendingOf reports a crashed process as poised")
	}
	for _, op := range r.Poised() {
		if op.Proc == 0 {
			t.Error("Poised includes a crashed process")
		}
	}
	if r.Alive(0) {
		t.Error("Alive(0) after crash")
	}
}

// TestCrashAwaitingProcess kills a parked process: the execution must
// terminate cleanly without waking it.
func TestCrashAwaitingProcess(t *testing.T) {
	r2 := sim.New(sim.Config{})
	v := r2.Alloc("v", 0)
	r2.AddProc(func(p sim.Proc) {
		p.Await(v, func(x uint64) bool { return x == 7 })
	})
	r2.AddProc(func(p sim.Proc) {
		p.Write(v, 1) // wakes p0's await check, which fails and re-parks
	})
	if err := r2.Start(); err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if err := Drive(r2, []Point{{Victim: 0, Step: 3}}); err != nil {
		t.Fatalf("Drive: %v", err)
	}
	if !r2.Terminated() {
		t.Error("not terminated after crashing the only blocked process")
	}
}

func TestRandomPointsDeterministic(t *testing.T) {
	a := RandomPoints(42, []int{0, 1, 2}, 100, 50)
	b := RandomPoints(42, []int{0, 1, 2}, 100, 50)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("lengths %d/%d, want 50", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs: %v vs %v", i, a[i], b[i])
		}
		if a[i].Step < 0 || a[i].Step >= 100 || a[i].Victim < 0 || a[i].Victim > 2 {
			t.Errorf("point %v out of bounds", a[i])
		}
	}
	if RandomPoints(1, nil, 100, 5) != nil {
		t.Error("empty victims must yield nil")
	}
}

// TestRandomPointsDistinct is the dedup regression: whatever the density
// of the request, the sample never contains a repeated (victim, step)
// point — a duplicate would re-run the identical execution under a fixed
// scheduler seed and silently skew a sampled sweep's tallies.
func TestRandomPointsDistinct(t *testing.T) {
	cases := []struct {
		name           string
		victims        []int
		maxStep, count int
		wantLen        int
	}{
		{"sparse", []int{0, 1, 2}, 100, 40, 40},
		{"dense", []int{0, 1}, 10, 15, 15},
		{"overfull", []int{0, 1}, 5, 100, 10},
		{"exact", []int{0}, 8, 8, 8},
		{"duplicate victims", []int{0, 0, 1, 1}, 5, 100, 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pts := RandomPoints(99, tc.victims, tc.maxStep, tc.count)
			if len(pts) != tc.wantLen {
				t.Fatalf("len = %d, want %d", len(pts), tc.wantLen)
			}
			seen := make(map[Point]bool, len(pts))
			for _, pt := range pts {
				if seen[pt] {
					t.Errorf("duplicate point %+v", pt)
				}
				seen[pt] = true
				if pt.Step < 0 || pt.Step >= tc.maxStep {
					t.Errorf("point %+v out of step range", pt)
				}
			}
		})
	}
}
