package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/memmodel"
	"repro/internal/sim"
)

// Forever is the StallPoint duration of an indefinite stall: the victim
// never resumes on its own, modeling a fail-slow process whose delay the
// survivors must not depend on.
const Forever = -1

// StallPoint schedules one fail-slow fault: Victim is paused at the
// boundary before the execution's global step index Step, for Duration
// further global steps (Forever for an indefinite stall). Step 0 stalls
// the victim before it takes any step at all.
type StallPoint struct {
	// Victim is the process id to stall.
	Victim int
	// Step is the global step index before which the victim pauses.
	Step int
	// Duration is how many further global steps the victim stays paused.
	// The simulator fast-forwards a finite stall when no other process can
	// step (time passes regardless), so finite durations delay but never
	// wedge. A negative Duration (Forever) never expires.
	Duration int
}

// Indefinite reports whether the stall never expires on its own.
func (p StallPoint) Indefinite() bool { return p.Duration < 0 }

func (p StallPoint) String() string {
	if p.Indefinite() {
		return fmt.Sprintf("stall p%d @%d forever", p.Victim, p.Step)
	}
	return fmt.Sprintf("stall p%d @%d for %d", p.Victim, p.Step, p.Duration)
}

// StallEvent reports what one StallPoint actually did.
type StallEvent struct {
	// Point echoes the scheduled point.
	Point StallPoint
	// Stalled reports whether the stall was applied; false means the
	// victim was already finished, crashed, or still under an earlier
	// stall when the point fired (a moot point).
	Stalled bool
	// StallStep is the global step index at which the stall landed.
	StallStep int
	// StallSection is the passage section the victim occupied when it
	// stalled.
	StallSection memmodel.Section
}

// DriveStall steps r until termination, pausing each point's victim at its
// step boundary. Points whose victim already finished, crashed, or is
// still stalled when they fire are skipped. It returns one StallEvent per
// point in firing order (sorted by Step, ties in input order), plus the
// runner's terminal error: nil when every process completes (finite stalls
// only delay), and a *sim.NoProgressError when an indefinite stall is
// still pending at the end — callers classify that error via its
// Stuck/Stalled fields: empty Stuck means every survivor completed and
// only stalled victims remain (the benign outcome), while a non-empty
// Stuck lists the survivors doomed by the stall. Barrier-parked processes
// are released all at once, as in Drive.
func DriveStall(r *sim.Runner, points []StallPoint) ([]StallEvent, error) {
	return DriveMixed(r, nil, points)
}

// DriveMixed steps r until termination, applying crash-stop points and
// fail-slow points together — the combined fault model in which some peers
// die and others merely go slow. Crash points due at the same boundary as
// stall points are applied first (a crash supersedes a stall). Error
// semantics match DriveStall.
func DriveMixed(r *sim.Runner, crashes []Point, stalls []StallPoint) ([]StallEvent, error) {
	cpts := make([]Point, len(crashes))
	copy(cpts, crashes)
	sort.SliceStable(cpts, func(i, j int) bool { return cpts[i].Step < cpts[j].Step })
	spts := make([]StallPoint, len(stalls))
	copy(spts, stalls)
	sort.SliceStable(spts, func(i, j int) bool { return spts[i].Step < spts[j].Step })
	events := make([]StallEvent, len(spts))
	for i := range spts {
		events[i].Point = spts[i]
	}

	nextCrash, nextStall := 0, 0
	for {
		for nextCrash < len(cpts) && cpts[nextCrash].Step <= r.StepCount() {
			p := cpts[nextCrash]
			nextCrash++
			if !r.Alive(p.Victim) {
				continue
			}
			if err := r.Crash(p.Victim); err != nil {
				return events, fmt.Errorf("fault: %s: %w", p, err)
			}
		}
		for nextStall < len(spts) && spts[nextStall].Step <= r.StepCount() {
			p := spts[nextStall]
			i := nextStall
			nextStall++
			if !r.Alive(p.Victim) || r.IsStalled(p.Victim) {
				continue
			}
			events[i].Stalled = true
			events[i].StallStep = r.StepCount()
			events[i].StallSection = r.Account(p.Victim).Section()
			if err := r.Stall(p.Victim, p.Duration); err != nil {
				return events, fmt.Errorf("fault: %s: %w", p, err)
			}
		}
		progressed, err := r.Step()
		if err != nil {
			return events, err
		}
		if !progressed {
			if r.Terminated() {
				return events, nil
			}
			if err := releaseBarriers(r); err != nil {
				return events, err
			}
		}
	}
}

// ExhaustiveStallPoints enumerates every stall point for victim in an
// execution of totalSteps steps, all with the given duration: one
// StallPoint per step boundary, 0 through totalSteps inclusive. Callers
// run one fresh execution per point.
func ExhaustiveStallPoints(victim, totalSteps, duration int) []StallPoint {
	pts := make([]StallPoint, 0, totalSteps+1)
	for k := 0; k <= totalSteps; k++ {
		pts = append(pts, StallPoint{Victim: victim, Step: k, Duration: duration})
	}
	return pts
}

// RandomStallPoints samples count distinct stall points with a seeded
// generator: victims drawn uniformly from victims, steps uniformly from
// [0, maxStep), and each point indefinite with probability 1/2 or finite
// with a duration in [1, maxDuration]. Distinctness is on (victim, step) —
// the duration is drawn after the location — and the sample is
// deterministic per seed.
func RandomStallPoints(seed int64, victims []int, maxStep, count, maxDuration int) []StallPoint {
	if maxDuration < 1 {
		maxDuration = 1
	}
	locs := RandomPoints(seed, victims, maxStep, count)
	if locs == nil {
		return nil
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
	pts := make([]StallPoint, 0, len(locs))
	for _, l := range locs {
		d := Forever
		if rng.Intn(2) == 1 {
			d = 1 + rng.Intn(maxDuration)
		}
		pts = append(pts, StallPoint{Victim: l.Victim, Step: l.Step, Duration: d})
	}
	return pts
}
