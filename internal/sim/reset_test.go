package sim

import (
	"fmt"
	"testing"

	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/trace"
)

// spinPair is a tiny two-process workload exercising every operation kind:
// writes, reads, CAS, fetch-add, a single-variable await (spin) and a
// multi-variable await. It returns a full fingerprint of the execution so
// two runs can be compared byte-for-byte.
func spinPair(t *testing.T, r *Runner) string {
	t.Helper()
	var events []string
	r.cfg.Observer = func(e trace.Event) {
		events = append(events, fmt.Sprintf("%d p%d %v %s %d->%d rmr=%v",
			e.Step, e.Proc, e.Kind, e.Section, e.Before, e.After, e.RMR))
	}
	flag := r.Alloc("flag", 0)
	ack := r.Alloc("ack", 0)
	count := r.AllocN("count", 2, 0)
	r.AddProc(func(p Proc) {
		p.Write(flag, 1)
		p.FetchAdd(count[0], 3)
		p.Await(ack, func(x uint64) bool { return x == 1 })
		p.CAS(count[1], 0, 7)
	})
	r.AddProc(func(p Proc) {
		p.Await(flag, func(x uint64) bool { return x == 1 })
		p.Write(ack, 1)
		vals := p.AwaitMulti([]memmodel.Var{count[0], count[1]},
			func(vs []uint64) bool { return vs[0] == 3 && vs[1] == 7 })
		if vals[0] != 3 || vals[1] != 7 {
			t.Errorf("AwaitMulti vals = %v, want [3 7]", vals)
		}
	})
	if err := r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := r.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	fp := fmt.Sprintf("steps=%d", r.StepCount())
	for id := 0; id < r.NumProcs(); id++ {
		a := r.Account(id)
		fp += fmt.Sprintf(" p%d{steps=%d rmr=%d}", id, a.TotalSteps, a.TotalRMR)
	}
	for _, e := range events {
		fp += "\n" + e
	}
	return fp
}

// TestResetMatchesFreshRunner pins the Reset contract: an execution on a
// reused (Reset) runner is byte-identical — same trace, steps, RMRs — to
// the same execution on a freshly constructed runner, for every protocol.
func TestResetMatchesFreshRunner(t *testing.T) {
	for _, proto := range []Protocol{WriteThrough, WriteBack, DSM} {
		t.Run(proto.String(), func(t *testing.T) {
			cfg := Config{Protocol: proto, Scheduler: sched.NewRoundRobin()}
			fresh := New(cfg)
			defer fresh.Close()
			want := spinPair(t, fresh)

			reused := New(cfg)
			defer reused.Close()
			for i := 0; i < 3; i++ {
				reused.Reset(Config{Protocol: proto, Scheduler: sched.NewRoundRobin()})
				if got := spinPair(t, reused); got != want {
					t.Fatalf("Reset run %d diverged:\n got: %s\nwant: %s", i, got, want)
				}
			}
		})
	}
}

// TestResetAfterCrash verifies Reset recovers a runner wedged by a
// crash-stopped process: the aborted goroutines are reaped and the next
// execution is clean.
func TestResetAfterCrash(t *testing.T) {
	r := New(Config{})
	defer r.Close()
	v := r.Alloc("v", 0)
	r.AddProc(func(p Proc) {
		p.Write(v, 1)
		p.Await(v, func(x uint64) bool { return x == 2 })
	})
	if err := r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if _, err := r.Step(); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if err := r.Crash(0); err != nil {
		t.Fatalf("Crash: %v", err)
	}

	r.Reset(Config{})
	w := r.Alloc("w", 5)
	r.AddProc(func(p Proc) { p.Write(w, 6) })
	if err := r.Start(); err != nil {
		t.Fatalf("Start after Reset: %v", err)
	}
	if err := r.Run(); err != nil {
		t.Fatalf("Run after Reset: %v", err)
	}
	if got := r.Value(w); got != 6 {
		t.Errorf("value after Reset run = %d, want 6", got)
	}
	if got := r.Account(0).TotalSteps; got != 1 {
		t.Errorf("TotalSteps after Reset = %d, want 1 (stale account state leaked)", got)
	}
}

// TestAwaitMultiValsEscape pins that the values returned by AwaitMulti are
// the caller's to keep: a later multi-await on the same runner must not
// clobber them (the runner evaluates predicates on a reused scratch slice
// and must copy on completion).
func TestAwaitMultiValsEscape(t *testing.T) {
	r := New(Config{})
	defer r.Close()
	a := r.Alloc("a", 1)
	b := r.Alloc("b", 2)
	var first []uint64
	r.AddProc(func(p Proc) {
		first = p.AwaitMulti([]memmodel.Var{a, b}, func(vs []uint64) bool { return true })
		p.Write(a, 100)
		p.Write(b, 200)
		p.AwaitMulti([]memmodel.Var{a, b}, func(vs []uint64) bool { return true })
	})
	if err := r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := r.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if first[0] != 1 || first[1] != 2 {
		t.Errorf("first AwaitMulti vals mutated to %v, want [1 2]", first)
	}
}
