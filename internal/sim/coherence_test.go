package sim

import (
	"testing"

	"repro/internal/memmodel"
)

// TestWriteThroughTransitions checks the write-through accounting quoted in
// the paper's Section 2: reads hit valid copies for free, every write costs
// one RMR and invalidates all other copies.
func TestWriteThroughTransitions(t *testing.T) {
	c := newCoherence(WriteThrough, 3, 1, make([]int32, 1))
	v := memmodel.Var(0)

	if !c.read(0, v) {
		t.Fatal("first read by p0 must incur an RMR")
	}
	if c.read(0, v) {
		t.Fatal("second read by p0 must hit the cache")
	}
	if !c.read(1, v) {
		t.Fatal("first read by p1 must incur an RMR")
	}

	// p2 writes: RMR, invalidates p0 and p1.
	if !c.write(2, v) {
		t.Fatal("write must incur an RMR under write-through")
	}
	if c.read(2, v) {
		t.Fatal("writer retains a valid copy under write-through")
	}
	if !c.read(0, v) || !c.read(1, v) {
		t.Fatal("invalidated readers must re-fetch with an RMR")
	}

	// Write by a process that already has a valid copy still costs an RMR
	// (write-through always goes to memory).
	if !c.write(0, v) {
		t.Fatal("write-through write must always incur an RMR")
	}
	if !c.write(0, v) {
		t.Fatal("repeated write-through writes each incur an RMR")
	}
}

// TestWriteBackTransitions checks the write-back (MSI) accounting: shared
// and exclusive modes, free cached writes, downgrade on remote read.
func TestWriteBackTransitions(t *testing.T) {
	c := newCoherence(WriteBack, 3, 1, make([]int32, 1))
	v := memmodel.Var(0)

	// p0 writes: acquires exclusive with one RMR; subsequent writes free.
	if !c.write(0, v) {
		t.Fatal("first write must incur an RMR")
	}
	if c.write(0, v) {
		t.Fatal("write with exclusive copy must be free")
	}
	if c.read(0, v) {
		t.Fatal("read with exclusive copy must be free")
	}

	// p1 reads: one RMR, downgrades p0 to shared.
	if !c.read(1, v) {
		t.Fatal("remote read must incur an RMR")
	}
	if c.read(0, v) {
		t.Fatal("downgraded owner still holds a shared copy; read is free")
	}

	// p0 writes again: it only holds shared now, so it must upgrade (RMR)
	// and invalidate p1.
	if !c.write(0, v) {
		t.Fatal("upgrade from shared to exclusive must incur an RMR")
	}
	if !c.read(1, v) {
		t.Fatal("p1's copy was invalidated; re-read must incur an RMR")
	}

	// p2 writes over p0's exclusive: RMR, p0 and p1 invalidated.
	if !c.write(2, v) {
		t.Fatal("remote write must incur an RMR")
	}
	if !c.read(0, v) {
		t.Fatal("previous owner was invalidated")
	}
}

// TestWriteBackSharedWriteUpgrades pins the subtle case: being the sole
// sharer is not enough to write for free; exclusivity is required.
func TestWriteBackSharedWriteUpgrades(t *testing.T) {
	c := newCoherence(WriteBack, 2, 1, make([]int32, 1))
	v := memmodel.Var(0)
	if !c.read(0, v) {
		t.Fatal("first read costs an RMR")
	}
	if !c.write(0, v) {
		t.Fatal("sole sharer must still upgrade with an RMR to write")
	}
	if c.write(0, v) {
		t.Fatal("after upgrade, writes are free")
	}
}

func TestHasCopy(t *testing.T) {
	c := newCoherence(WriteBack, 2, 2, make([]int32, 2))
	if c.hasCopy(0, 0) {
		t.Fatal("no copy before any access")
	}
	c.read(0, 0)
	if !c.hasCopy(0, 0) {
		t.Fatal("shared copy after read")
	}
	c.write(1, 0)
	if c.hasCopy(0, 0) {
		t.Fatal("copy must be invalidated by remote write")
	}
	if !c.hasCopy(1, 0) {
		t.Fatal("writer holds exclusive copy")
	}
}

func TestProtocolString(t *testing.T) {
	if WriteThrough.String() != "write-through" || WriteBack.String() != "write-back" {
		t.Fatal("protocol names wrong")
	}
	if Protocol(9).String() != "unknown" {
		t.Fatal("unknown protocol name wrong")
	}
}
