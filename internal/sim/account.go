package sim

import (
	"fmt"

	"repro/internal/memmodel"
)

// Passage records the cost of one completed passage (entry section,
// critical section, exit section) of a process, in both RMRs and steps.
// These are exactly the quantities the paper's theorems bound: Theorem 18
// bounds EntryRMR+ExitRMR per passage, Theorem 5 lower-bounds the writer's
// entry RMRs against the readers' exit RMRs.
type Passage struct {
	// EntryRMR, CSRMR and ExitRMR count remote memory references incurred
	// in the respective section.
	EntryRMR, CSRMR, ExitRMR int
	// EntrySteps, CSSteps and ExitSteps count shared-memory steps
	// (RMR-incurring or not) in the respective section.
	EntrySteps, CSSteps, ExitSteps int
}

// RMR returns the passage's total RMR count across all sections.
func (p Passage) RMR() int { return p.EntryRMR + p.CSRMR + p.ExitRMR }

// Steps returns the passage's total step count across all sections.
func (p Passage) Steps() int { return p.EntrySteps + p.CSSteps + p.ExitSteps }

// Account accumulates per-process cost attribution for one execution.
// Under the crash-recovery failure model each incarnation of a process gets
// its own account (see Runner.Restart); Incarnation tells them apart.
type Account struct {
	// Proc is the process id the account belongs to.
	Proc int
	// Incarnation is the incarnation number the account covers: 0 for the
	// process admitted at Start, incremented by every Restart.
	Incarnation int
	// TotalRMR counts all RMRs the process incurred.
	TotalRMR int
	// TotalSteps counts all shared-memory steps the process took.
	TotalSteps int
	// SectionRMR and SectionSteps break the totals down by section,
	// indexed by memmodel.Section.
	SectionRMR   [memmodel.NumSections]int
	SectionSteps [memmodel.NumSections]int
	// Passages lists every completed passage in order.
	Passages []Passage

	// open tracks the in-progress passage, if any.
	open    Passage
	inPass  bool
	section memmodel.Section
}

func newAccount(proc, incarnation int) *Account {
	return &Account{Proc: proc, Incarnation: incarnation, section: memmodel.SecRemainder}
}

// recordStep attributes one executed step to the current section.
func (a *Account) recordStep(rmr bool) {
	a.TotalSteps++
	a.SectionSteps[a.section]++
	if rmr {
		a.TotalRMR++
		a.SectionRMR[a.section]++
	}
	if !a.inPass {
		return
	}
	switch a.section {
	case memmodel.SecEntry:
		a.open.EntrySteps++
		if rmr {
			a.open.EntryRMR++
		}
	case memmodel.SecCS:
		a.open.CSSteps++
		if rmr {
			a.open.CSRMR++
		}
	case memmodel.SecExit:
		a.open.ExitSteps++
		if rmr {
			a.open.ExitRMR++
		}
	case memmodel.SecRemainder, memmodel.SecRecover:
		// Unreachable with an open passage: transition closes the passage
		// on SecRemainder, and a recovery section belongs to a fresh
		// incarnation whose passage has not opened yet. A step landing
		// here means the section bookkeeping is corrupt — fail loudly
		// rather than misattribute RMRs.
		panic(fmt.Sprintf("sim: step attributed to section %v inside an open passage", a.section))
	default:
		panic(fmt.Sprintf("sim: step in unknown section %v", a.section))
	}
}

// transition moves the process to section s, opening or closing passages
// as needed.
func (a *Account) transition(s memmodel.Section) {
	if s == a.section {
		return
	}
	// A passage normally opens at its entry section. A restarted
	// incarnation whose recovery section completed the interrupted entry
	// transitions straight from SecRecover to SecCS; that resumed passage
	// opens at the CS (with zero entry cost — the recovery section's costs
	// are accounted under SecRecover, not per passage).
	if (s == memmodel.SecEntry || s == memmodel.SecCS) && !a.inPass {
		a.open = Passage{}
		a.inPass = true
	}
	if s == memmodel.SecRemainder && a.inPass {
		a.Passages = append(a.Passages, a.open)
		a.inPass = false
	}
	a.section = s
}

// Section returns the section the process is currently in.
func (a *Account) Section() memmodel.Section { return a.section }

// MaxPassage returns the element-wise maximum over all completed passages
// (the worst-case per-passage costs), or a zero Passage if none completed.
func (a *Account) MaxPassage() Passage {
	var m Passage
	for _, p := range a.Passages {
		m.EntryRMR = max(m.EntryRMR, p.EntryRMR)
		m.CSRMR = max(m.CSRMR, p.CSRMR)
		m.ExitRMR = max(m.ExitRMR, p.ExitRMR)
		m.EntrySteps = max(m.EntrySteps, p.EntrySteps)
		m.CSSteps = max(m.CSSteps, p.CSSteps)
		m.ExitSteps = max(m.ExitSteps, p.ExitSteps)
	}
	return m
}
