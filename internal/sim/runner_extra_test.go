package sim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/trace"
)

func TestMisusePanics(t *testing.T) {
	t.Run("alloc after start", func(t *testing.T) {
		r := New(Config{})
		r.AddProc(func(p Proc) {})
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		defer func() {
			if recover() == nil {
				t.Error("Alloc after Start did not panic")
			}
		}()
		r.Alloc("late", 0)
	})
	t.Run("addproc after start", func(t *testing.T) {
		r := New(Config{})
		r.AddProc(func(p Proc) {})
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		defer func() {
			if recover() == nil {
				t.Error("AddProc after Start did not panic")
			}
		}()
		r.AddProc(func(p Proc) {})
	})
}

func TestStartTwiceErrors(t *testing.T) {
	r := New(Config{})
	r.AddProc(func(p Proc) {})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Start(); err == nil {
		t.Error("second Start did not error")
	}
}

func TestStepBeforeStartErrors(t *testing.T) {
	r := New(Config{})
	if _, err := r.Step(); err == nil {
		t.Error("Step before Start did not error")
	}
}

func TestDeadlockMessageNamesVariables(t *testing.T) {
	r := New(Config{})
	v := r.Alloc("stuck-var", 42)
	r.AddProc(func(p Proc) {
		p.Await(v, func(x uint64) bool { return x == 0 })
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	err := r.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "stuck-var=42") {
		t.Errorf("deadlock diagnostic %q lacks variable name and value", err)
	}
}

// TestWriteBackAwaitAccounting: under write-back a waiter's re-check after
// an invalidation costs one RMR (shared fetch), and the writer's repeated
// writes while holding exclusivity are free.
func TestWriteBackAwaitAccounting(t *testing.T) {
	r := New(Config{Protocol: WriteBack, Scheduler: sched.NewRoundRobin()})
	v := r.Alloc("v", 0)
	r.AddProc(func(p Proc) {
		p.Await(v, func(x uint64) bool { return x >= 3 })
	})
	r.AddProc(func(p Proc) {
		p.Write(v, 1) // RMR: acquire exclusive
		p.Write(v, 2) // free? No: the waiter re-checked after write 1,
		// taking a shared copy and downgrading us; this write re-upgrades.
		p.Write(v, 3)
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	// Waiter: initial check (1 RMR) + up to 3 re-checks (1 RMR each).
	if got := r.Account(0).TotalRMR; got < 2 || got > 4 {
		t.Errorf("waiter RMR = %d, want in [2,4]", got)
	}
	// Writer: every write follows a waiter's shared re-fetch (round-robin
	// interleaves them), so each write re-upgrades: 3 RMRs.
	if got := r.Account(1).TotalRMR; got != 3 {
		t.Errorf("writer RMR = %d, want 3 (upgrade per write after downgrade)", got)
	}
}

// TestWriteBackQuietWriterKeepsExclusive: without a competing reader, a
// writer's stream of writes costs exactly one RMR.
func TestWriteBackQuietWriterKeepsExclusive(t *testing.T) {
	r := New(Config{Protocol: WriteBack})
	v := r.Alloc("v", 0)
	r.AddProc(func(p Proc) {
		for i := 1; i <= 10; i++ {
			p.Write(v, uint64(i))
		}
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.Account(0).TotalRMR; got != 1 {
		t.Errorf("TotalRMR = %d, want 1", got)
	}
}

// TestAwaitImmediatelySatisfied: an await whose predicate already holds
// completes in one step without parking.
func TestAwaitImmediatelySatisfied(t *testing.T) {
	r := New(Config{})
	v := r.Alloc("v", 5)
	r.AddProc(func(p Proc) {
		if got := p.Await(v, func(x uint64) bool { return x == 5 }); got != 5 {
			t.Errorf("Await = %d", got)
		}
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.Account(0).TotalSteps; got != 1 {
		t.Errorf("steps = %d, want 1", got)
	}
}

// TestMixedBarrierAndAwaitDeadlockDetection: barrier-parked processes do
// not mask an await deadlock; Step reports no-progress (barrier case)
// rather than deadlock while a barrier is pending.
func TestMixedBarrierAndAwait(t *testing.T) {
	r := New(Config{})
	v := r.Alloc("v", 0)
	r.AddProc(func(p Proc) {
		p.Await(v, func(x uint64) bool { return x == 1 })
	})
	r.AddProc(func(p Proc) {
		p.Barrier()
		p.Write(v, 1)
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	progressed, err := r.Step()
	// p0's initial await check is poised; run it down.
	for progressed && err == nil {
		progressed, err = r.Step()
	}
	if err != nil {
		t.Fatalf("unexpected error with a barrier pending: %v", err)
	}
	// Release the barrier; the write wakes p0 and everything finishes.
	if err := r.ReleaseBarrier(1); err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatalf("Run after release: %v", err)
	}
	if !r.Done() {
		t.Fatal("not done")
	}
}

// TestSectionEventsCarryNoVar: section transitions are not steps and are
// marked accordingly.
func TestSectionEventsCarryNoVar(t *testing.T) {
	var rec trace.Recorder
	r := New(Config{Observer: rec.Observe})
	r.AddProc(func(p Proc) {
		p.Section(memmodel.SecEntry)
		p.Section(memmodel.SecRemainder)
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if r.StepCount() != 0 {
		t.Errorf("sections counted as steps: %d", r.StepCount())
	}
	for _, e := range rec.Events() {
		if !e.SectionChange || e.Var != memmodel.NoVar {
			t.Errorf("unexpected event %v", e)
		}
	}
}

// TestAccessorsSmoke covers the small introspection surface.
func TestAccessorsSmoke(t *testing.T) {
	r := New(Config{Protocol: WriteBack})
	v := r.Alloc("x", 1)
	r.AddProc(func(p Proc) {
		if p.ID() != 0 {
			t.Errorf("ID = %d", p.ID())
		}
		p.Read(v)
	})
	if r.NumProcs() != 1 || r.NumVars() != 1 || r.VarName(v) != "x" {
		t.Error("accessors wrong")
	}
	if r.Protocol() != WriteBack {
		t.Error("protocol wrong")
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerPanicOnBadPick: a scheduler returning a non-poised process
// is an error, not a hang.
func TestSchedulerBadPick(t *testing.T) {
	bad := badSched{}
	r := New(Config{Scheduler: bad})
	v := r.Alloc("v", 0)
	r.AddProc(func(p Proc) { p.Read(v) })
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Step(); err == nil {
		t.Error("bad scheduler pick not detected")
	}
}

type badSched struct{}

func (badSched) Name() string            { return "bad" }
func (badSched) Next(_ int, _ []int) int { return 99 }
