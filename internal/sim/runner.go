// Package sim is a deterministic simulator of the asynchronous shared
// memory system with cache coherence defined in the paper's Section 2. It
// executes real algorithm code (written against memmodel.Proc) one
// shared-memory step at a time, under a pluggable scheduler, and counts
// remote memory references exactly as the write-through or write-back CC
// model prescribes.
//
// Each simulated process runs as a goroutine that blocks before every
// shared-memory operation; a single runner goroutine owns all memory and
// coherence state, asks the scheduler which poised process steps next,
// applies the operation, and resumes that process. Executions are therefore
// data-race-free by construction and exactly reproducible for a given
// scheduler.
//
// Busy-wait loops are modeled by Await/AwaitMulti: a spinning process holds
// valid cached copies of its spin variables and is not schedulable until
// one of them is invalidated by another process's write, at which point its
// re-check becomes a poised step that is charged the cache-refill RMRs.
// This is the standard local-spin accounting and keeps executions finite.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/trace"
)

// ErrDeadlock is returned when every live process is blocked on an await
// and no step can unblock any of them.
var ErrDeadlock = errors.New("sim: deadlock: all live processes are awaiting")

// ErrNoProgress is the sentinel for the watchdog's structured non-progress
// diagnostic: no step is enabled although not every process has finished.
// Step and Run return a *NoProgressError, which matches both ErrNoProgress
// and (for compatibility with older drivers) ErrDeadlock under errors.Is.
var ErrNoProgress = errors.New("sim: no progress (deadlock): no live process has an enabled step")

// ErrMaxSteps is returned when an execution exceeds the configured step
// budget, which usually indicates livelock or starvation in the algorithm
// under test.
var ErrMaxSteps = errors.New("sim: step budget exceeded")

// errAborted terminates process goroutines when the runner is closed.
var errAborted = errors.New("sim: runner closed")

// Proc is the process handle visible to simulated programs. It extends the
// model interface with Barrier, a scheduling-only pause (not a memory step,
// no RMR, invisible to the awareness machinery) that staged drivers such as
// the Theorem-5 adversary use to stop processes at precise points, e.g.
// inside the critical section between fragments E1 and E2.
type Proc interface {
	memmodel.Proc
	// Barrier blocks the process until the driver calls ReleaseBarrier.
	Barrier()
}

// Program is the code a simulated process runs, from start to completion.
type Program func(p Proc)

// Config parameterizes a Runner.
type Config struct {
	// Protocol is the coherence protocol; default WriteThrough.
	Protocol Protocol
	// Scheduler picks the next process at every step; default round-robin.
	Scheduler sched.Scheduler
	// Observer, if non-nil, receives every trace event as it is emitted.
	Observer func(trace.Event)
	// MaxSteps bounds the execution length; default 5,000,000.
	MaxSteps int
}

type procStatus uint8

const (
	statusPoised procStatus = iota + 1 // has a pending op, schedulable
	statusAwaiting
	statusBarrier
	statusDone
	statusCrashed // crash-stopped by the driver; takes no further steps
)

// request is one message from a process goroutine to the runner.
type request struct {
	kind    memmodel.OpKind // zero for section/barrier pseudo-requests
	section memmodel.Section
	barrier bool

	v memmodel.Var
	// vars lists a multi-await's spin variables (mpred != nil). Every
	// single-variable operation — including single-variable Await — carries
	// only v, keeping the per-step request allocation-free.
	vars  []memmodel.Var
	arg   uint64
	exp   uint64
	pred  memmodel.Pred
	mpred memmodel.MultiPred
}

// response is the runner's reply completing an operation.
type response struct {
	val     uint64
	vals    []uint64
	swapped bool
}

type procState struct {
	id          int
	incarnation int
	prog        Program
	req         chan request
	resp        chan response
	status      procStatus
	pending     request

	// stalled marks a process paused by fault injection (fail-slow model).
	// It is orthogonal to status: the process keeps its pending operation
	// (or its parked await) but is not schedulable until the stall ends.
	stalled   bool
	stalledAt int
	// stallUntil is the global step index at which the stall expires on its
	// own; negative means indefinite (ends only through Resume).
	stallUntil int
}

// Runner owns one simulated execution. It implements memmodel.Allocator
// for the setup phase; allocation after Start panics. All methods must be
// called from a single driver goroutine.
type Runner struct {
	cfg   Config
	mem   []uint64
	names []string
	homes []int32
	coh   *coherence
	procs []*procState
	accts []*Account
	// acctHist[id] holds the accounts of id's dead incarnations, oldest
	// first; accts[id] is always the current incarnation's account.
	acctHist [][]*Account

	started  bool
	steps    int
	nDone    int
	nCrashed int

	quit chan struct{}
	// closed guards against double-closing quit. A plain bool suffices —
	// all Runner methods are confined to the single driver goroutine — and
	// unlike sync.Once it can be rearmed by Reset.
	closed bool
	wg     sync.WaitGroup

	// scratch buffers reused across steps
	poisedIDs []int
	poisedOps []sched.PendingOp
	awaitVals []uint64
}

// New returns a Runner with the given configuration.
func New(cfg Config) *Runner {
	if cfg.Protocol == 0 {
		cfg.Protocol = WriteThrough
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = sched.NewRoundRobin()
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 5_000_000
	}
	return &Runner{cfg: cfg, quit: make(chan struct{})}
}

// Alloc implements memmodel.Allocator. The variable is homed in global
// memory (remote to every process under DSM).
func (r *Runner) Alloc(name string, init uint64) memmodel.Var {
	return r.AllocHome(name, init, -1)
}

// AllocHome implements memmodel.HomeAllocator: the variable resides in
// process home's memory segment under the DSM protocol (home < 0 means
// global memory). The CC protocols ignore homes.
func (r *Runner) AllocHome(name string, init uint64, home int) memmodel.Var {
	if r.started {
		panic("sim: Alloc after Start")
	}
	v := memmodel.Var(len(r.mem))
	r.mem = append(r.mem, init)
	r.names = append(r.names, name)
	r.homes = append(r.homes, int32(home))
	return v
}

// AllocN implements memmodel.Allocator.
func (r *Runner) AllocN(name string, n int, init uint64) []memmodel.Var {
	vs := make([]memmodel.Var, n)
	for i := range vs {
		vs[i] = r.Alloc(name+"["+strconv.Itoa(i)+"]", init)
	}
	return vs
}

// AddProc registers a process with its program and returns its id.
// Processes must be added before Start.
func (r *Runner) AddProc(prog Program) int {
	if r.started {
		panic("sim: AddProc after Start")
	}
	id := len(r.procs)
	r.procs = append(r.procs, &procState{
		id:   id,
		prog: prog,
		req:  make(chan request),
		resp: make(chan response),
	})
	r.accts = append(r.accts, newAccount(id, 0))
	return id
}

// NumProcs returns the number of registered processes.
func (r *Runner) NumProcs() int { return len(r.procs) }

// NumVars returns the number of allocated shared variables.
func (r *Runner) NumVars() int { return len(r.mem) }

// VarName returns the debug name a variable was allocated with.
func (r *Runner) VarName(v memmodel.Var) string { return r.names[v] }

// Value returns the current value of a shared variable, for assertions.
// This is a driver-side peek, not a model step: no RMR, no trace event.
func (r *Runner) Value(v memmodel.Var) uint64 { return r.mem[v] }

// StepCount returns the number of shared-memory steps executed so far.
func (r *Runner) StepCount() int { return r.steps }

// Account returns the cost account of process id's current incarnation.
func (r *Runner) Account(id int) *Account { return r.accts[id] }

// AccountsOf returns every incarnation's account for process id, oldest
// first (the last element is the current incarnation's account). Without
// restarts it is a one-element slice.
func (r *Runner) AccountsOf(id int) []*Account {
	if len(r.acctHist) == 0 || len(r.acctHist[id]) == 0 {
		return []*Account{r.accts[id]}
	}
	out := make([]*Account, 0, len(r.acctHist[id])+1)
	out = append(out, r.acctHist[id]...)
	return append(out, r.accts[id])
}

// Incarnation returns process id's current incarnation number: 0 until the
// first Restart, then incremented per restart.
func (r *Runner) Incarnation(id int) int { return r.procs[id].incarnation }

// Protocol returns the coherence protocol in effect.
func (r *Runner) Protocol() Protocol { return r.cfg.Protocol }

// Start launches all process goroutines and settles each at its first
// operation. It must be called exactly once, after allocation and AddProc.
func (r *Runner) Start() error {
	if r.started {
		return errors.New("sim: Start called twice")
	}
	r.started = true
	if r.coh == nil {
		r.coh = newCoherence(r.cfg.Protocol, len(r.procs), len(r.mem), r.homes)
	} else {
		r.coh.reset(r.cfg.Protocol, len(r.procs), len(r.mem), r.homes)
	}
	if cap(r.acctHist) >= len(r.procs) {
		r.acctHist = r.acctHist[:len(r.procs)]
		for i := range r.acctHist {
			r.acctHist[i] = nil
		}
	} else {
		r.acctHist = make([][]*Account, len(r.procs))
	}
	for _, ps := range r.procs {
		r.launch(ps)
	}
	for _, ps := range r.procs {
		r.settle(ps)
	}
	return nil
}

// launch starts the goroutine running ps's program.
func (r *Runner) launch(ps *procState) {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer close(ps.req)
		defer func() {
			if v := recover(); v != nil && v != errAborted { //nolint:errorlint // sentinel identity
				panic(v)
			}
		}()
		ps.prog(&simProc{r: r, ps: ps})
	}()
}

// Close aborts any still-running process goroutines and waits for them to
// exit. It is safe to call multiple times and after normal completion.
func (r *Runner) Close() {
	if !r.closed {
		r.closed = true
		close(r.quit)
	}
	r.wg.Wait()
}

// Reset returns the Runner to the freshly-constructed state of New(cfg),
// reusing the memory, name, home, process, account-slice, coherence and
// scheduler-scratch buffers of the previous execution. It first Closes the
// current execution (aborting any still-running process goroutines), so a
// sweep can run thousands of short executions on one Runner without
// re-paying their dominant allocations.
//
// What Reset may reuse: every buffer whose contents are fully rebuilt by
// the next setup phase (Alloc/AddProc/Start) — the shared-memory array,
// variable names and homes, the coherence sharer/owner words, the procs
// and accts slices, and the poised/await scratch. What it must NOT reuse:
// Account objects and procState channels, which escape into Reports and
// into process goroutines of the previous execution; those are always
// allocated fresh. Like every Runner method it must be called from the
// single driver goroutine.
func (r *Runner) Reset(cfg Config) {
	r.Close()
	if cfg.Protocol == 0 {
		cfg.Protocol = WriteThrough
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = sched.NewRoundRobin()
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 5_000_000
	}
	r.cfg = cfg
	r.mem = r.mem[:0]
	r.names = r.names[:0]
	r.homes = r.homes[:0]
	r.procs = r.procs[:0]
	r.accts = r.accts[:0]
	r.started = false
	r.steps = 0
	r.nDone = 0
	r.nCrashed = 0
	r.quit = make(chan struct{})
	r.closed = false
	// r.wg is reusable as-is: Close waited for every previous goroutine,
	// so its counter is back to zero. r.coh and r.acctHist are re-prepared
	// by Start, which knows the new process/variable counts.
}

// settle advances process ps until it is poised at a shared-memory op,
// blocked at a barrier, or done, processing section transitions inline.
func (r *Runner) settle(ps *procState) {
	for {
		rq, ok := <-ps.req
		if !ok {
			if ps.status != statusDone {
				ps.status = statusDone
				r.nDone++
			}
			return
		}
		switch {
		case rq.section != 0:
			r.accts[ps.id].transition(rq.section)
			r.emit(trace.Event{
				Step:          r.steps,
				Proc:          ps.id,
				Var:           memmodel.NoVar,
				Section:       rq.section,
				SectionChange: true,
			})
			select {
			case ps.resp <- response{}:
			case <-r.quit:
				return
			}
		case rq.barrier:
			ps.status = statusBarrier
			return
		default:
			ps.pending = rq
			ps.status = statusPoised
			return
		}
	}
}

// Done reports whether every process has completed its program.
func (r *Runner) Done() bool { return r.nDone == len(r.procs) }

// Terminated reports whether the execution can make no further steps for a
// benign reason: every process has either completed its program or been
// crash-stopped by the driver.
func (r *Runner) Terminated() bool { return r.nDone+r.nCrashed == len(r.procs) }

// Crash kills process id: the process takes no further shared-memory
// steps, regardless of its current state (poised, awaiting, or at a
// barrier). Its writes so far remain visible — a crash removes future
// steps only. Crashing a process that already finished, or crashing twice,
// is an error. Under the crash-stop model the process stays dead forever;
// under the crash-recovery model a driver later re-admits it with Restart
// (see DESIGN.md, "Fault model" and "Crash-recovery model").
func (r *Runner) Crash(id int) error {
	if id < 0 || id >= len(r.procs) {
		return fmt.Errorf("sim: Crash(%d): no such process", id)
	}
	ps := r.procs[id]
	switch ps.status {
	case statusDone:
		return fmt.Errorf("sim: Crash(%d): process already finished", id)
	case statusCrashed:
		return fmt.Errorf("sim: Crash(%d): process already crashed", id)
	}
	ps.status = statusCrashed
	ps.stalled = false // a crash supersedes any injected stall
	r.nCrashed++
	return nil
}

// Restart re-admits crashed process id as a fresh incarnation running prog
// (typically a recovery section followed by the process's remaining work).
// The incarnation number increments, a fresh cost account opens (the dead
// incarnation's account moves to AccountsOf history), and the new
// incarnation starts with no cached copies: its first access to every
// variable is a miss, exactly as the crash-recovery model prescribes for a
// process whose local state was lost.
//
// The dead incarnation's goroutine stays parked at its interrupted
// operation until Close; it takes no further steps and its program's
// remaining effects never happen. Restarting a process that is alive or
// finished is an error.
//
// A pending restart is progress potential: after Step returns a
// *NoProgressError (the watchdog's wedge verdict), the runner remains
// usable — a driver holding a scheduled restart applies it and resumes
// stepping, which is how fault.DriveRecover turns crash-stop wedges into
// recovery opportunities.
func (r *Runner) Restart(id int, prog Program) error {
	if !r.started {
		return errors.New("sim: Restart before Start")
	}
	if id < 0 || id >= len(r.procs) {
		return fmt.Errorf("sim: Restart(%d): no such process", id)
	}
	old := r.procs[id]
	if old.status != statusCrashed {
		return fmt.Errorf("sim: Restart(%d): process is not crashed", id)
	}
	ps := &procState{
		id:          id,
		incarnation: old.incarnation + 1,
		prog:        prog,
		req:         make(chan request),
		resp:        make(chan response),
	}
	r.procs[id] = ps
	r.acctHist[id] = append(r.acctHist[id], r.accts[id])
	r.accts[id] = newAccount(id, ps.incarnation)
	r.coh.restart(id)
	r.nCrashed--
	r.launch(ps)
	r.settle(ps)
	return nil
}

// Stall pauses process id under the fail-slow fault model: the process
// keeps its pending operation (or its parked await) but takes no steps
// until the stall ends. duration >= 0 is the number of further global steps
// after which the stall expires on its own; a negative duration is
// indefinite and ends only through Resume. Unlike Crash, a stall removes no
// steps — the process continues exactly where it paused — and unlike a
// barrier it is driver-invisible to the program. When no other process can
// step, finite stalls are fast-forwarded (see Step): in the asynchronous
// model a delayed-but-alive process eventually takes its step, so a finite
// stall can never wedge an execution. Stalling a finished, crashed or
// already-stalled process is an error.
func (r *Runner) Stall(id, duration int) error {
	if id < 0 || id >= len(r.procs) {
		return fmt.Errorf("sim: Stall(%d): no such process", id)
	}
	ps := r.procs[id]
	switch ps.status {
	case statusDone:
		return fmt.Errorf("sim: Stall(%d): process already finished", id)
	case statusCrashed:
		return fmt.Errorf("sim: Stall(%d): process already crashed", id)
	}
	if ps.stalled {
		return fmt.Errorf("sim: Stall(%d): process already stalled", id)
	}
	ps.stalled = true
	ps.stalledAt = r.steps
	if duration < 0 {
		ps.stallUntil = -1
	} else {
		ps.stallUntil = r.steps + duration
	}
	return nil
}

// Resume ends process id's injected stall, making it schedulable again.
func (r *Runner) Resume(id int) error {
	if id < 0 || id >= len(r.procs) {
		return fmt.Errorf("sim: Resume(%d): no such process", id)
	}
	ps := r.procs[id]
	if !ps.stalled {
		return fmt.Errorf("sim: Resume(%d): process is not stalled", id)
	}
	ps.stalled = false
	return nil
}

// IsStalled reports whether process id is currently under an injected
// stall. Crashing a stalled process supersedes the stall.
func (r *Runner) IsStalled(id int) bool {
	ps := r.procs[id]
	return ps.stalled && ps.status != statusCrashed && ps.status != statusDone
}

// Stalled returns descriptors of the currently stalled live processes,
// ascending by process id.
func (r *Runner) Stalled() []StalledProc {
	var out []StalledProc
	for _, ps := range r.procs {
		if !r.IsStalled(ps.id) {
			continue
		}
		out = append(out, StalledProc{
			Proc:       ps.id,
			Section:    r.accts[ps.id].Section(),
			Indefinite: ps.stallUntil < 0,
			Since:      ps.stalledAt,
			ResumeAt:   ps.stallUntil,
		})
	}
	return out
}

// expireStalls clears finite stalls whose deadline has passed.
func (r *Runner) expireStalls() {
	for _, ps := range r.procs {
		if ps.stalled && ps.stallUntil >= 0 && ps.stallUntil <= r.steps {
			ps.stalled = false
		}
	}
}

// fastForwardStalls models the passage of time when no other process can
// step: the finite stalls with the earliest deadline expire immediately —
// only the order of resumptions is observable, and a delayed (non-crashed)
// process eventually steps. Indefinite stalls never fast-forward. Reports
// whether any stall was cleared.
func (r *Runner) fastForwardStalls() bool {
	earliest := -1
	for _, ps := range r.procs {
		if ps.stalled && ps.stallUntil >= 0 && (earliest < 0 || ps.stallUntil < earliest) {
			earliest = ps.stallUntil
		}
	}
	if earliest < 0 {
		return false
	}
	for _, ps := range r.procs {
		if ps.stalled && ps.stallUntil == earliest {
			ps.stalled = false
		}
	}
	return true
}

// Alive reports whether process id has neither finished its program nor
// been crash-stopped. A stalled process is alive: it will step again if
// resumed.
func (r *Runner) Alive(id int) bool {
	st := r.procs[id].status
	return st != statusDone && st != statusCrashed
}

// Crashed returns the ids of crash-stopped processes, ascending.
func (r *Runner) Crashed() []int {
	var out []int
	for _, ps := range r.procs {
		if ps.status == statusCrashed {
			out = append(out, ps.id)
		}
	}
	return out
}

// Poised returns the pending operations of all schedulable processes, in
// ascending process order. Stalled processes are not schedulable and are
// excluded, like crashed ones.
func (r *Runner) Poised() []sched.PendingOp {
	r.poisedOps = r.poisedOps[:0]
	for _, ps := range r.procs {
		if ps.status != statusPoised || ps.stalled {
			continue
		}
		op := sched.PendingOp{
			Proc:        ps.id,
			Kind:        ps.pending.kind,
			Var:         ps.pending.v,
			Arg:         ps.pending.arg,
			CASExpected: ps.pending.exp,
		}
		if ps.pending.mpred != nil {
			op.Var = ps.pending.vars[0]
			op.Vars = ps.pending.vars
		}
		r.poisedOps = append(r.poisedOps, op)
	}
	return r.poisedOps
}

// PendingOf returns the pending operation of process id if it is currently
// poised, without scanning the whole population.
func (r *Runner) PendingOf(id int) (sched.PendingOp, bool) {
	ps := r.procs[id]
	if ps.status != statusPoised || ps.stalled {
		return sched.PendingOp{}, false
	}
	op := sched.PendingOp{
		Proc:        ps.id,
		Kind:        ps.pending.kind,
		Var:         ps.pending.v,
		Arg:         ps.pending.arg,
		CASExpected: ps.pending.exp,
	}
	if ps.pending.mpred != nil {
		op.Var = ps.pending.vars[0]
		op.Vars = ps.pending.vars
	}
	return op, true
}

// Awaiting returns the ids of processes currently parked on an await (not
// schedulable until one of their spin variables is invalidated).
func (r *Runner) Awaiting() []int {
	var out []int
	for _, ps := range r.procs {
		if ps.status == statusAwaiting {
			out = append(out, ps.id)
		}
	}
	return out
}

// AtBarrier returns the ids of processes currently blocked at a Barrier.
func (r *Runner) AtBarrier() []int {
	var out []int
	for _, ps := range r.procs {
		if ps.status == statusBarrier {
			out = append(out, ps.id)
		}
	}
	return out
}

// ReleaseBarrier resumes a process blocked at a Barrier and settles it at
// its next operation.
func (r *Runner) ReleaseBarrier(id int) error {
	if id < 0 || id >= len(r.procs) {
		return fmt.Errorf("sim: ReleaseBarrier(%d): no such process", id)
	}
	ps := r.procs[id]
	if ps.status != statusBarrier {
		return fmt.Errorf("sim: process %d is not at a barrier", id)
	}
	select {
	case ps.resp <- response{}:
	case <-r.quit:
		return errAborted
	}
	r.settle(ps)
	return nil
}

// Step executes one scheduled shared-memory step. It returns progressed ==
// false with a nil error when no step can be taken because every live
// process is done or barrier-blocked (the driver decides what to do next),
// and ErrDeadlock when live processes exist but all are awaiting.
func (r *Runner) Step() (progressed bool, err error) {
	if !r.started {
		return false, errors.New("sim: Step before Start")
	}
	if r.steps >= r.cfg.MaxSteps {
		return false, fmt.Errorf("%w (%d)", ErrMaxSteps, r.cfg.MaxSteps)
	}
	for {
		r.expireStalls()
		r.poisedIDs = r.poisedIDs[:0]
		for _, ps := range r.procs {
			if ps.status == statusPoised && !ps.stalled {
				r.poisedIDs = append(r.poisedIDs, ps.id)
			}
		}
		if len(r.poisedIDs) > 0 {
			break
		}
		if r.Done() || r.Terminated() {
			return false, nil
		}
		atBarrier := false
		for _, ps := range r.procs {
			if ps.status == statusBarrier {
				atBarrier = true
				break
			}
		}
		if atBarrier {
			return false, nil // driver must release barriers
		}
		// Nothing else can step: time passes, so pending finite stalls
		// expire now (each pass clears at least one, so this terminates).
		if r.fastForwardStalls() {
			continue
		}
		return false, r.noProgress()
	}

	var pick int
	if oa, ok := r.cfg.Scheduler.(sched.OpAware); ok {
		pick = oa.NextOp(r.steps, r.Poised())
	} else {
		pick = r.cfg.Scheduler.Next(r.steps, r.poisedIDs)
	}
	if pick < 0 || pick >= len(r.procs) {
		return false, fmt.Errorf("sim: scheduler %q picked nonexistent process %d", r.cfg.Scheduler.Name(), pick)
	}
	ps := r.procs[pick]
	if ps.status != statusPoised {
		return false, fmt.Errorf("sim: scheduler %q picked non-poised process %d", r.cfg.Scheduler.Name(), pick)
	}
	r.execute(ps)
	return true, nil
}

// Run executes steps until all processes complete. It returns an error on
// deadlock, step-budget exhaustion, or a barrier stall (barriers require a
// staging driver that releases them).
func (r *Runner) Run() error {
	for {
		progressed, err := r.Step()
		if err != nil {
			return err
		}
		if !progressed {
			if r.Done() || r.Terminated() {
				return nil
			}
			return fmt.Errorf("sim: processes %v stalled at barriers under Run; use Step/ReleaseBarrier", r.AtBarrier())
		}
	}
}

// execute applies the pending operation of ps, emits its trace event(s),
// wakes awaiters, and settles ps (unless it transitioned to awaiting).
func (r *Runner) execute(ps *procState) {
	rq := ps.pending
	switch rq.kind {
	case memmodel.OpRead:
		rmr := r.coh.read(ps.id, rq.v)
		val := r.mem[rq.v]
		r.record(ps.id, trace.Event{
			Kind: memmodel.OpRead, Var: rq.v,
			Before: val, After: val, Trivial: true, RMR: rmr,
		})
		r.reply(ps, response{val: val})

	case memmodel.OpWrite:
		before := r.mem[rq.v]
		rmr := r.coh.write(ps.id, rq.v)
		r.mem[rq.v] = rq.arg
		r.record(ps.id, trace.Event{
			Kind: memmodel.OpWrite, Var: rq.v, Arg: rq.arg,
			Before: before, After: rq.arg, Trivial: before == rq.arg, RMR: rmr,
		})
		r.wakeAwaiters(ps.id, rq.v)
		r.reply(ps, response{})

	case memmodel.OpCAS:
		before := r.mem[rq.v]
		swapped := before == rq.exp
		trivial := !swapped || rq.arg == before
		var rmr bool
		if swapped && !trivial {
			rmr = r.coh.write(ps.id, rq.v)
			r.mem[rq.v] = rq.arg
		} else {
			rmr = r.coh.read(ps.id, rq.v)
		}
		r.record(ps.id, trace.Event{
			Kind: memmodel.OpCAS, Var: rq.v, Arg: rq.arg, CASExpected: rq.exp,
			Before: before, After: r.mem[rq.v], Swapped: swapped, Trivial: trivial, RMR: rmr,
		})
		if swapped && !trivial {
			r.wakeAwaiters(ps.id, rq.v)
		}
		r.reply(ps, response{val: before, swapped: swapped})

	case memmodel.OpFetchAdd:
		before := r.mem[rq.v]
		after := before + rq.arg
		trivial := rq.arg == 0
		var rmr bool
		if trivial {
			rmr = r.coh.read(ps.id, rq.v)
		} else {
			rmr = r.coh.write(ps.id, rq.v)
			r.mem[rq.v] = after
		}
		r.record(ps.id, trace.Event{
			Kind: memmodel.OpFetchAdd, Var: rq.v, Arg: rq.arg,
			Before: before, After: after, Trivial: trivial, RMR: rmr,
		})
		if !trivial {
			r.wakeAwaiters(ps.id, rq.v)
		}
		r.reply(ps, response{val: before})

	case memmodel.OpAwait:
		r.executeAwait(ps)

	default:
		panic(fmt.Sprintf("sim: unknown op kind %v", rq.kind))
	}
}

// executeAwait performs one await check: it (re-)reads every spin variable
// (charging cache-refill RMRs for invalidated copies), evaluates the
// predicate, and either completes the await or parks the process again.
// Single-variable awaits (the hot path — every spin loop in the algorithm
// packages) run allocation-free; multi-awaits evaluate their predicate on
// a runner-owned scratch slice and copy it only when the await completes,
// because the returned values escape to the awaiting program.
func (r *Runner) executeAwait(ps *procState) {
	rq := ps.pending
	if rq.mpred == nil {
		rmr := r.coh.read(ps.id, rq.v)
		val := r.mem[rq.v]
		r.record(ps.id, trace.Event{
			Kind: memmodel.OpAwait, Var: rq.v,
			Before: val, After: val, Trivial: true, RMR: rmr,
		})
		if rq.pred(val) {
			r.reply(ps, response{val: val})
			return
		}
		ps.status = statusAwaiting
		return
	}
	if cap(r.awaitVals) < len(rq.vars) {
		r.awaitVals = make([]uint64, len(rq.vars))
	}
	vals := r.awaitVals[:len(rq.vars)]
	for i, v := range rq.vars {
		rmr := r.coh.read(ps.id, v)
		vals[i] = r.mem[v]
		r.record(ps.id, trace.Event{
			Kind: memmodel.OpAwait, Var: v,
			Before: vals[i], After: vals[i], Trivial: true, RMR: rmr,
		})
	}
	if rq.mpred(vals) {
		out := make([]uint64, len(vals))
		copy(out, vals)
		r.reply(ps, response{val: out[0], vals: out})
		return
	}
	ps.status = statusAwaiting
}

// wakeAwaiters re-poises every process spinning on v after its cached copy
// was invalidated by writer's step.
func (r *Runner) wakeAwaiters(writer int, v memmodel.Var) {
	for _, q := range r.procs {
		if q.id == writer || q.status != statusAwaiting {
			continue
		}
		if q.pending.mpred == nil {
			if q.pending.v == v {
				q.status = statusPoised
			}
			continue
		}
		for _, av := range q.pending.vars {
			if av == v {
				q.status = statusPoised
				break
			}
		}
	}
}

// record finalizes an event's bookkeeping fields, updates the process
// account, and emits it.
func (r *Runner) record(proc int, e trace.Event) {
	e.Step = r.steps
	e.Proc = proc
	e.Section = r.accts[proc].Section()
	r.steps++
	r.accts[proc].recordStep(e.RMR)
	r.emit(e)
}

func (r *Runner) emit(e trace.Event) {
	if r.cfg.Observer != nil {
		r.cfg.Observer(e)
	}
}

// reply completes ps's pending operation and settles it at its next one.
func (r *Runner) reply(ps *procState, resp response) {
	select {
	case ps.resp <- resp:
	case <-r.quit:
		return
	}
	r.settle(ps)
}

// StuckProc describes one process the watchdog found blocked forever: the
// section it is stuck in and the spin variables (with their current values)
// whose invalidation it is waiting for.
type StuckProc struct {
	// Proc is the process id.
	Proc int
	// Section is the passage section the process is stuck in (the section
	// of its last step).
	Section memmodel.Section
	// Vars are the variables the pending await spins on.
	Vars []memmodel.Var
	// VarNames are the debug names of Vars.
	VarNames []string
	// Values are the variables' values at detection time.
	Values []uint64
	// Doomed marks a wedge attributable to a fault-injected peer: the
	// execution also contains crashed or injected-stalled processes, so the
	// process is blocked behind a victim that will never (or not by itself)
	// take the unblocking step — as opposed to an algorithmic deadlock
	// among live processes.
	Doomed bool
}

func (s StuckProc) String() string {
	var b strings.Builder
	verb := "blocked"
	if s.Doomed {
		verb = "doomed"
	}
	fmt.Fprintf(&b, "p%d %s in %s awaiting", s.Proc, verb, s.Section)
	for i, name := range s.VarNames {
		fmt.Fprintf(&b, " %s=%d", name, s.Values[i])
	}
	return b.String()
}

// StalledProc describes one process paused by fault injection at watchdog
// time (or via Runner.Stalled): where it is paused and how its stall ends.
type StalledProc struct {
	// Proc is the process id.
	Proc int
	// Section is the passage section the process is stalled in (the
	// section of its last step).
	Section memmodel.Section
	// Indefinite reports a stall that never expires on its own.
	Indefinite bool
	// Since is the global step index at which the stall was injected.
	Since int
	// ResumeAt is the global step index at which a finite stall expires;
	// meaningless when Indefinite.
	ResumeAt int
}

func (s StalledProc) String() string {
	if s.Indefinite {
		return fmt.Sprintf("p%d stalled in %s (indefinite, since step %d)", s.Proc, s.Section, s.Since)
	}
	return fmt.Sprintf("p%d stalled in %s (since step %d, resumes at step %d)",
		s.Proc, s.Section, s.Since, s.ResumeAt)
}

// NoProgressError is the watchdog's structured non-progress diagnostic:
// some processes have not finished, none has an enabled step, and no future
// step can unblock any of them (awaiting processes become schedulable only
// through another process's write). The diagnostic distinguishes three
// populations: injected-stalled processes (paused by the fail-slow fault
// driver — Stalled), processes blocked on an await (Stuck, with Doomed set
// when the wedge is attributable to crashed or stalled victims rather than
// an algorithmic deadlock), and crash-stopped processes (CrashedProcs). It
// matches both ErrNoProgress and ErrDeadlock under errors.Is.
//
// An empty Stuck with a non-empty Stalled means every non-victim process
// completed its program: the survivors are done and only indefinitely
// stalled victims remain — the benign outcome a fail-slow sweep accepts.
type NoProgressError struct {
	// Stuck lists the awaiting (non-stalled) processes, ascending by
	// process id.
	Stuck []StuckProc
	// Stalled lists the injected-stalled processes, ascending. Finite
	// stalls are fast-forwarded before the watchdog fires, so entries here
	// are indefinite except in pathological driver interleavings.
	Stalled []StalledProc
	// CrashedProcs lists crash-stopped processes (often the cause of the
	// hang), ascending.
	CrashedProcs []int
}

// Error implements error.
func (e *NoProgressError) Error() string {
	var b strings.Builder
	b.WriteString(ErrNoProgress.Error())
	if len(e.CrashedProcs) > 0 {
		fmt.Fprintf(&b, " (crashed: %v)", e.CrashedProcs)
	}
	for _, s := range e.Stalled {
		b.WriteString("\n  ")
		b.WriteString(s.String())
	}
	for _, s := range e.Stuck {
		b.WriteString("\n  ")
		b.WriteString(s.String())
	}
	return b.String()
}

// Is reports a match for both the new and the legacy sentinel, so existing
// errors.Is(err, ErrDeadlock) callers keep working.
func (e *NoProgressError) Is(target error) bool {
	return target == ErrNoProgress || target == ErrDeadlock //nolint:errorlint // sentinel identity
}

// noProgress builds the structured watchdog diagnostic.
func (r *Runner) noProgress() *NoProgressError {
	e := &NoProgressError{CrashedProcs: r.Crashed(), Stalled: r.Stalled()}
	doomed := len(e.CrashedProcs) > 0 || len(e.Stalled) > 0
	var ids []int
	for _, ps := range r.procs {
		if ps.status == statusAwaiting && !ps.stalled {
			ids = append(ids, ps.id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		ps := r.procs[id]
		s := StuckProc{Proc: id, Section: r.accts[id].Section(), Doomed: doomed}
		spinVars := ps.pending.vars
		if ps.pending.mpred == nil {
			spinVars = []memmodel.Var{ps.pending.v}
		}
		for _, v := range spinVars {
			s.Vars = append(s.Vars, v)
			s.VarNames = append(s.VarNames, r.names[v])
			s.Values = append(s.Values, r.mem[v])
		}
		e.Stuck = append(e.Stuck, s)
	}
	return e
}
