package sim

import (
	"math/bits"

	"repro/internal/memmodel"
)

// Protocol selects the cache-coherence protocol whose RMR accounting the
// simulator applies. The paper's results hold for both; experiment E5
// reruns the tradeoff grid under each to demonstrate it.
type Protocol uint8

const (
	// WriteThrough models the write-through protocol quoted in the paper's
	// Section 2: reads hit a valid cached copy for free and otherwise incur
	// one RMR; every write incurs an RMR and invalidates all other copies.
	WriteThrough Protocol = iota + 1
	// WriteBack models the write-back (MSI-style) protocol: cached copies
	// are held shared or exclusive; reads are free with a copy in either
	// mode; writes are free only with an exclusive copy and otherwise
	// incur one RMR that invalidates all other copies.
	WriteBack
	// DSM models distributed shared memory (no caches): every variable
	// resides in one process's memory segment (its home, declared via
	// memmodel.AllocHome; variables without a home live in global memory
	// and are remote to everyone), and every access to a non-home variable
	// is an RMR. The paper's Section 6 notes a linear DSM lower bound
	// [Danek-Hadzilacos] that does not apply to CC; the DSM protocol
	// exists to exhibit that contrast (experiment E8).
	//
	// Accounting caveat: a process parked on Await over a *remote*
	// variable is charged one RMR per re-check (one per value change),
	// which lower-bounds real DSM spinning (continuous remote reads);
	// local-variable spinning is free, as in real DSM local-spin
	// algorithms.
	DSM
)

// String returns the protocol name.
func (p Protocol) String() string {
	switch p {
	case WriteThrough:
		return "write-through"
	case WriteBack:
		return "write-back"
	case DSM:
		return "dsm"
	default:
		return "unknown"
	}
}

// coherence tracks, for every shared variable, which processes hold cached
// copies and in which mode, and decides whether each access incurs an RMR.
//
// CAS and fetch-and-add steps are classified by effect, following the
// paper's accounting (see DESIGN.md): a step that changes the variable's
// value behaves like a write (requires exclusivity, invalidates other
// copies); a failed or trivial comparison step behaves like a read
// (requires a valid/shared copy). This matches Lemma 17, which charges a
// spinning process one RMR per successful CAS on its spin variable and
// nothing for other processes' failed attempts.
//
// Sharer sets are stored as inline bitsets in one contiguous backing
// array: variable v's set occupies words [v*stride, (v+1)*stride) of
// sharers, stride = ceil(nProcs/64). This keeps the per-step hot path
// (read/write/CAS classification) free of pointer chasing and keeps the
// whole structure reusable across executions via reset — the simulator's
// sweeps run thousands of short executions and the coherence state was
// their dominant per-run allocation.
type coherence struct {
	protocol Protocol
	nProcs   int
	// stride is the number of 64-bit words per variable's sharer set.
	stride int
	// homes[v] is the owning process under DSM, or -1 (global memory).
	homes []int32
	// sharers holds the inline per-variable bitsets of processes with a
	// valid (WT) or shared (WB) copy.
	sharers []uint64
	// owner[v] is the process holding v exclusive under write-back, or -1.
	owner []int32
}

func newCoherence(protocol Protocol, nProcs, nVars int, homes []int32) *coherence {
	c := &coherence{}
	c.reset(protocol, nProcs, nVars, homes)
	return c
}

// reset prepares c for a fresh execution, reusing the backing arrays when
// they are large enough. All sharer sets come out empty and all owners -1,
// exactly as newCoherence would build them.
func (c *coherence) reset(protocol Protocol, nProcs, nVars int, homes []int32) {
	c.protocol = protocol
	c.nProcs = nProcs
	c.stride = (nProcs + 63) / 64
	c.homes = homes
	nWords := nVars * c.stride
	if cap(c.sharers) >= nWords {
		c.sharers = c.sharers[:nWords]
		clear(c.sharers)
	} else {
		c.sharers = make([]uint64, nWords)
	}
	if cap(c.owner) >= nVars {
		c.owner = c.owner[:nVars]
	} else {
		c.owner = make([]int32, nVars)
	}
	for i := range c.owner {
		c.owner[i] = -1
	}
}

// sharerContains reports whether p holds a valid/shared copy of v.
func (c *coherence) sharerContains(v memmodel.Var, p int) bool {
	return c.sharers[int(v)*c.stride+p>>6]&(1<<(uint(p)&63)) != 0
}

// sharerAdd records that p holds a copy of v.
func (c *coherence) sharerAdd(v memmodel.Var, p int) {
	c.sharers[int(v)*c.stride+p>>6] |= 1 << (uint(p) & 63)
}

// sharerClear invalidates every cached copy of v.
func (c *coherence) sharerClear(v memmodel.Var) {
	base := int(v) * c.stride
	for i := base; i < base+c.stride; i++ {
		c.sharers[i] = 0
	}
}

// sharerCount returns the number of processes holding a copy of v.
func (c *coherence) sharerCount(v memmodel.Var) int {
	base := int(v) * c.stride
	n := 0
	for i := base; i < base+c.stride; i++ {
		n += bits.OnesCount64(c.sharers[i])
	}
	return n
}

// hasCopy reports whether process p currently holds a readable copy of v
// without incurring an RMR (under DSM: whether v is local to p).
func (c *coherence) hasCopy(p int, v memmodel.Var) bool {
	if c.protocol == DSM {
		return c.homes[v] == int32(p)
	}
	if c.protocol == WriteBack && c.owner[v] == int32(p) {
		return true
	}
	return c.sharerContains(v, p)
}

// remote reports whether v is remote to p under DSM.
func (c *coherence) remote(p int, v memmodel.Var) bool {
	return c.homes[v] != int32(p)
}

// read applies the coherence transition for a read of v by p and reports
// whether it incurs an RMR.
func (c *coherence) read(p int, v memmodel.Var) bool {
	switch c.protocol {
	case DSM:
		return c.remote(p, v)
	case WriteThrough:
		if c.sharerContains(v, p) {
			return false
		}
		c.sharerAdd(v, p)
		return true
	case WriteBack:
		if c.owner[v] == int32(p) || c.sharerContains(v, p) {
			return false
		}
		// Downgrade any exclusive holder to shared, then take a shared
		// copy.
		if o := c.owner[v]; o >= 0 {
			c.sharerAdd(v, int(o))
			c.owner[v] = -1
		}
		c.sharerAdd(v, p)
		return true
	default:
		panic("sim: unknown protocol")
	}
}

// restart drops every cached copy process p holds, modeling the cold cache
// of a restarted incarnation: its first access to each variable is a miss.
// Values are never lost — the simulator's memory array is always current —
// so demoting a write-back exclusive copy needs no write-back step. No-op
// under DSM, which has no caches.
func (c *coherence) restart(p int) {
	if c.protocol == DSM {
		return
	}
	word, mask := p>>6, uint64(1)<<(uint(p)&63)
	nVars := len(c.owner)
	for v := 0; v < nVars; v++ {
		c.sharers[v*c.stride+word] &^= mask
		if c.owner[v] == int32(p) {
			c.owner[v] = -1
		}
	}
}

// write applies the coherence transition for a value-changing step on v by
// p and reports whether it incurs an RMR. All other cached copies are
// invalidated.
func (c *coherence) write(p int, v memmodel.Var) bool {
	switch c.protocol {
	case DSM:
		return c.remote(p, v)
	case WriteThrough:
		// Write-through always goes to memory: one RMR, all other copies
		// invalidated; the writer retains a valid copy.
		c.sharerClear(v)
		c.sharerAdd(v, p)
		return true
	case WriteBack:
		if c.owner[v] == int32(p) {
			return false // already exclusive: write hits the cache
		}
		c.sharerClear(v)
		c.owner[v] = int32(p)
		return true
	default:
		panic("sim: unknown protocol")
	}
}
