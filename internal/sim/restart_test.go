package sim

import (
	"errors"
	"testing"

	"repro/internal/memmodel"
)

// driveToWedge steps r until it returns a *NoProgressError, failing the test
// on any other outcome.
func driveToWedge(t *testing.T, r *Runner) *NoProgressError {
	t.Helper()
	for {
		progressed, err := r.Step()
		if err != nil {
			var npe *NoProgressError
			if !errors.As(err, &npe) {
				t.Fatalf("Step: %v", err)
			}
			return npe
		}
		if !progressed {
			t.Fatal("execution quiesced without wedging")
		}
	}
}

// TestRestartBasic: a crashed process is re-admitted with a fresh program,
// a bumped incarnation number, and a fresh account; the execution that was
// wedged on the crash completes after the restart.
func TestRestartBasic(t *testing.T) {
	r := New(Config{})
	v := r.Alloc("v", 0)
	r.AddProc(func(p Proc) {
		p.Await(v, func(x uint64) bool { return x == 1 })
	})
	r.AddProc(func(p Proc) {
		p.Read(v) // crashed before the write below ever runs
		p.Barrier()
		p.Write(v, 1)
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Let p1's read execute, then crash it at the barrier.
	for {
		if ids := r.AtBarrier(); len(ids) == 1 {
			break
		}
		if _, err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Crash(1); err != nil {
		t.Fatal(err)
	}
	driveToWedge(t, r)

	if got := r.Incarnation(1); got != 0 {
		t.Errorf("incarnation before restart = %d, want 0", got)
	}
	preRMR := r.Account(1).TotalRMR
	if err := r.Restart(1, func(p Proc) { p.Write(v, 1) }); err != nil {
		t.Fatal(err)
	}
	if got := r.Incarnation(1); got != 1 {
		t.Errorf("incarnation after restart = %d, want 1", got)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if !r.Done() {
		t.Fatal("not done after restart")
	}
	if r.Value(v) != 1 {
		t.Errorf("v = %d, want 1", r.Value(v))
	}
	// Per-incarnation accounts: the dead incarnation's costs are preserved
	// in history, the new incarnation starts from zero.
	accts := r.AccountsOf(1)
	if len(accts) != 2 {
		t.Fatalf("AccountsOf(1) has %d accounts, want 2", len(accts))
	}
	if accts[0].Incarnation != 0 || accts[1].Incarnation != 1 {
		t.Errorf("incarnation tags = %d,%d, want 0,1", accts[0].Incarnation, accts[1].Incarnation)
	}
	if accts[0].TotalRMR != preRMR {
		t.Errorf("dead incarnation RMR = %d, want %d", accts[0].TotalRMR, preRMR)
	}
	if accts[1] != r.Account(1) {
		t.Error("last AccountsOf element is not the current account")
	}
	// A process never restarted has a one-element history.
	if got := len(r.AccountsOf(0)); got != 1 {
		t.Errorf("AccountsOf(0) has %d accounts, want 1", got)
	}
}

// TestRestartColdCache: the new incarnation's first read of a variable its
// dead incarnation had cached is a miss (one RMR).
func TestRestartColdCache(t *testing.T) {
	for _, proto := range []Protocol{WriteThrough, WriteBack} {
		t.Run(proto.String(), func(t *testing.T) {
			r := New(Config{Protocol: proto})
			v := r.Alloc("v", 7)
			r.AddProc(func(p Proc) {
				p.Read(v) // warm the cache
				p.Barrier()
			})
			if err := r.Start(); err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			for len(r.AtBarrier()) == 0 {
				if _, err := r.Step(); err != nil {
					t.Fatal(err)
				}
			}
			if err := r.Crash(0); err != nil {
				t.Fatal(err)
			}
			if err := r.Restart(0, func(p Proc) {
				p.Read(v)
				p.Read(v)
			}); err != nil {
				t.Fatal(err)
			}
			if err := r.Run(); err != nil {
				t.Fatal(err)
			}
			// First read misses (cold cache), second hits.
			if got := r.Account(0).TotalRMR; got != 1 {
				t.Errorf("restarted incarnation RMR = %d, want 1 (cold first read, warm second)", got)
			}
		})
	}
}

// TestRestartErrors: restarting an alive, finished, or nonexistent process
// is an error, as is restarting before Start.
func TestRestartErrors(t *testing.T) {
	t.Run("before start", func(t *testing.T) {
		r := New(Config{})
		r.AddProc(func(p Proc) {})
		if err := r.Restart(0, func(p Proc) {}); err == nil {
			t.Error("Restart before Start did not error")
		}
	})
	t.Run("alive, finished, out of range", func(t *testing.T) {
		r := New(Config{})
		v := r.Alloc("v", 0)
		r.AddProc(func(p Proc) { p.Read(v) })
		r.AddProc(func(p Proc) {
			p.Await(v, func(x uint64) bool { return x == 1 })
		})
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if err := r.Restart(1, func(p Proc) {}); err == nil {
			t.Error("Restart of alive process did not error")
		}
		if err := r.Restart(2, func(p Proc) {}); err == nil {
			t.Error("Restart of nonexistent process did not error")
		}
		// Run p0 to completion (p1 spins forever; crash it to terminate).
		if err := r.Crash(1); err != nil {
			t.Fatal(err)
		}
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
		if err := r.Restart(0, func(p Proc) {}); err == nil {
			t.Error("Restart of finished process did not error")
		}
	})
}

// TestCrashWhileAwaiting: a process crashed while parked in Await stays
// dead — a later write to its spin variable must not wake it.
func TestCrashWhileAwaiting(t *testing.T) {
	r := New(Config{})
	v := r.Alloc("v", 0)
	done := r.Alloc("done", 0)
	r.AddProc(func(p Proc) {
		p.Await(v, func(x uint64) bool { return x == 1 })
		p.Write(done, 1) // must never execute
	})
	r.AddProc(func(p Proc) {
		p.Barrier()
		p.Write(v, 1)
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Drive p0 into its parked await (its initial check is a poised step).
	for len(r.Awaiting()) == 0 {
		if _, err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Crash(0); err != nil {
		t.Fatal(err)
	}
	if err := r.ReleaseBarrier(1); err != nil {
		t.Fatal(err)
	}
	for {
		progressed, err := r.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !progressed {
			break
		}
	}
	if !r.Terminated() {
		t.Fatal("not terminated")
	}
	if r.Value(done) != 0 {
		t.Error("crashed process took a step after the crash")
	}
}

// TestCrashAtBarrier: a process crashed while blocked at a barrier cannot
// be released; restart re-admits it.
func TestCrashAtBarrier(t *testing.T) {
	r := New(Config{})
	v := r.Alloc("v", 0)
	r.AddProc(func(p Proc) {
		p.Barrier()
		p.Write(v, 99) // dead incarnation's tail: must never run
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.AtBarrier(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("AtBarrier = %v", got)
	}
	if err := r.Crash(0); err != nil {
		t.Fatal(err)
	}
	if err := r.ReleaseBarrier(0); err == nil {
		t.Error("ReleaseBarrier on crashed process did not error")
	}
	if got := r.AtBarrier(); len(got) != 0 {
		t.Errorf("crashed process still reported at barrier: %v", got)
	}
	if err := r.Restart(0, func(p Proc) { p.Write(v, 1) }); err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Value(v) != 1 {
		t.Errorf("v = %d, want 1", r.Value(v))
	}
}

// TestDoubleCrash: crashing the same process twice is an error and does not
// corrupt the crashed-process count.
func TestDoubleCrash(t *testing.T) {
	r := New(Config{})
	v := r.Alloc("v", 0)
	r.AddProc(func(p Proc) {
		p.Await(v, func(x uint64) bool { return x == 1 })
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Crash(0); err != nil {
		t.Fatal(err)
	}
	if err := r.Crash(0); err == nil {
		t.Error("double crash did not error")
	}
	if got := r.Crashed(); len(got) != 1 {
		t.Errorf("Crashed = %v, want [0]", got)
	}
	if !r.Terminated() {
		t.Error("Terminated should hold with the only process crashed")
	}
}

// TestCrashRestartCrash: one process can be crashed, restarted, and crashed
// again; each incarnation gets its own account and a second restart works.
func TestCrashRestartCrash(t *testing.T) {
	r := New(Config{})
	v := r.Alloc("v", 0)
	r.AddProc(func(p Proc) {
		for {
			p.Read(v)
		}
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	spin := func(p Proc) {
		for {
			p.Read(v)
		}
	}
	for want := 1; want <= 2; want++ {
		if _, err := r.Step(); err != nil {
			t.Fatal(err)
		}
		if err := r.Crash(0); err != nil {
			t.Fatalf("crash #%d: %v", want, err)
		}
		if err := r.Restart(0, spin); err != nil {
			t.Fatalf("restart #%d: %v", want, err)
		}
		if got := r.Incarnation(0); got != want {
			t.Errorf("incarnation = %d, want %d", got, want)
		}
	}
	accts := r.AccountsOf(0)
	if len(accts) != 3 {
		t.Fatalf("AccountsOf has %d accounts, want 3", len(accts))
	}
	for i, a := range accts {
		if a.Incarnation != i {
			t.Errorf("accts[%d].Incarnation = %d", i, a.Incarnation)
		}
	}
	// Terminate the still-spinning third incarnation.
	if err := r.Crash(0); err != nil {
		t.Fatal(err)
	}
}

// TestRestartAfterWedgeResumesStepping: Step is re-callable after a
// *NoProgressError once a restart supplies the missing progress.
func TestRestartAfterWedgeResumesStepping(t *testing.T) {
	r := New(Config{})
	v := r.Alloc("v", 0)
	r.AddProc(func(p Proc) {
		p.Await(v, func(x uint64) bool { return x == 1 })
	})
	r.AddProc(func(p Proc) {
		p.Read(v)
		p.Barrier() // crash point; the write below never happens
		p.Write(v, 1)
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for len(r.AtBarrier()) == 0 {
		if _, err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Crash(1); err != nil {
		t.Fatal(err)
	}
	npe := driveToWedge(t, r)
	if len(npe.CrashedProcs) != 1 || npe.CrashedProcs[0] != 1 {
		t.Errorf("CrashedProcs = %v, want [1]", npe.CrashedProcs)
	}
	if err := r.Restart(1, func(p Proc) { p.Write(v, 1) }); err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatalf("Run after restart: %v", err)
	}
	if !r.Done() {
		t.Fatal("not done")
	}
}

// TestRestartSectionAccounting: a restarted incarnation's recovery-section
// costs land in SecRecover of its own account, and a passage resumed at the
// CS still closes and is recorded.
func TestRestartSectionAccounting(t *testing.T) {
	r := New(Config{})
	v := r.Alloc("v", 0)
	r.AddProc(func(p Proc) {
		p.Section(memmodel.SecEntry)
		p.Write(v, 1)
		p.Barrier() // crash inside the entry section
		p.Section(memmodel.SecCS)
		p.Section(memmodel.SecExit)
		p.Section(memmodel.SecRemainder)
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for len(r.AtBarrier()) == 0 {
		if _, err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Crash(0); err != nil {
		t.Fatal(err)
	}
	if got := r.Account(0).Section(); got != memmodel.SecEntry {
		t.Fatalf("crash section = %v, want entry", got)
	}
	if err := r.Restart(0, func(p Proc) {
		p.Section(memmodel.SecRecover)
		p.Read(v) // repair step: charged to the recovery section
		p.Section(memmodel.SecCS)
		p.Write(v, 2)
		p.Section(memmodel.SecExit)
		p.Section(memmodel.SecRemainder)
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	a := r.Account(0)
	if a.SectionRMR[memmodel.SecRecover] != 1 {
		t.Errorf("SecRecover RMR = %d, want 1", a.SectionRMR[memmodel.SecRecover])
	}
	if len(a.Passages) != 1 {
		t.Fatalf("restarted incarnation recorded %d passages, want 1", len(a.Passages))
	}
	// The resumed passage opened at the CS: zero entry cost by construction.
	if p := a.Passages[0]; p.EntrySteps != 0 || p.CSSteps != 1 {
		t.Errorf("resumed passage = %+v, want 0 entry steps, 1 CS step", p)
	}
	// The dead incarnation never completed a passage.
	if got := len(r.AccountsOf(0)[0].Passages); got != 0 {
		t.Errorf("dead incarnation recorded %d passages, want 0", got)
	}
}
