package sim

import (
	"errors"
	"testing"

	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/trace"
)

// run builds a runner, adds the programs, runs to completion and returns
// it. It fails the test on any error.
func run(t *testing.T, cfg Config, alloc func(a memmodel.Allocator) interface{}, progs func(shared interface{}) []Program) *Runner {
	t.Helper()
	r := New(cfg)
	shared := alloc(r)
	for _, p := range progs(shared) {
		r.AddProc(p)
	}
	if err := r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(r.Close)
	if err := r.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

func TestSingleProcReadWriteRMRs(t *testing.T) {
	var v memmodel.Var
	r := run(t, Config{Protocol: WriteThrough},
		func(a memmodel.Allocator) interface{} { v = a.Alloc("v", 7); return nil },
		func(interface{}) []Program {
			return []Program{func(p Proc) {
				if got := p.Read(v); got != 7 {
					t.Errorf("Read = %d, want 7", got)
				}
				p.Read(v)     // cached: free
				p.Write(v, 9) // RMR
				p.Write(v, 9) // trivial but still an RMR under write-through
				if got := p.Read(v); got != 9 {
					t.Errorf("Read = %d, want 9", got)
				}
			}}
		})
	acct := r.Account(0)
	if acct.TotalSteps != 5 {
		t.Errorf("TotalSteps = %d, want 5", acct.TotalSteps)
	}
	// read(RMR) + read(free) + write(RMR) + write(RMR) + read(free)
	if acct.TotalRMR != 3 {
		t.Errorf("TotalRMR = %d, want 3", acct.TotalRMR)
	}
	if got := r.Value(v); got != 9 {
		t.Errorf("final value = %d, want 9", got)
	}
}

func TestWriteBackRepeatWritesFree(t *testing.T) {
	var v memmodel.Var
	r := run(t, Config{Protocol: WriteBack},
		func(a memmodel.Allocator) interface{} { v = a.Alloc("v", 0); return nil },
		func(interface{}) []Program {
			return []Program{func(p Proc) {
				p.Write(v, 1) // RMR: acquire exclusive
				p.Write(v, 2) // free
				p.Write(v, 3) // free
				p.Read(v)     // free
			}}
		})
	if got := r.Account(0).TotalRMR; got != 1 {
		t.Errorf("TotalRMR = %d, want 1 (exclusive writes are free)", got)
	}
}

func TestCASSemantics(t *testing.T) {
	var v memmodel.Var
	run(t, Config{},
		func(a memmodel.Allocator) interface{} { v = a.Alloc("v", 5); return nil },
		func(interface{}) []Program {
			return []Program{func(p Proc) {
				prev, ok := p.CAS(v, 4, 10)
				if ok || prev != 5 {
					t.Errorf("failed CAS: prev=%d ok=%v, want 5,false", prev, ok)
				}
				prev, ok = p.CAS(v, 5, 10)
				if !ok || prev != 5 {
					t.Errorf("successful CAS: prev=%d ok=%v, want 5,true", prev, ok)
				}
				if got := p.Read(v); got != 10 {
					t.Errorf("value after CAS = %d, want 10", got)
				}
			}}
		})
}

func TestFetchAddSemantics(t *testing.T) {
	var v memmodel.Var
	r := run(t, Config{},
		func(a memmodel.Allocator) interface{} { v = a.Alloc("v", 10); return nil },
		func(interface{}) []Program {
			return []Program{func(p Proc) {
				if prev := p.FetchAdd(v, 5); prev != 10 {
					t.Errorf("FetchAdd prev = %d, want 10", prev)
				}
				// Negative delta via two's complement.
				if prev := p.FetchAdd(v, ^uint64(0)); prev != 15 {
					t.Errorf("FetchAdd prev = %d, want 15", prev)
				}
			}}
		})
	if got := r.Value(v); got != 14 {
		t.Errorf("final value = %d, want 14", got)
	}
}

// TestAwaitLocalSpinAccounting verifies the local-spin RMR model: a waiter
// is charged one RMR for its initial read and one per invalidation-triggered
// re-check, regardless of how long it spins.
func TestAwaitLocalSpinAccounting(t *testing.T) {
	var flag, other memmodel.Var
	r := run(t, Config{Protocol: WriteThrough, Scheduler: sched.NewRoundRobin()},
		func(a memmodel.Allocator) interface{} {
			flag = a.Alloc("flag", 0)
			other = a.Alloc("other", 0)
			return nil
		},
		func(interface{}) []Program {
			waiter := func(p Proc) {
				got := p.Await(flag, func(x uint64) bool { return x == 3 })
				if got != 3 {
					t.Errorf("Await returned %d, want 3", got)
				}
			}
			writer := func(p Proc) {
				p.Write(other, 1) // unrelated write: must not wake the waiter
				p.Write(flag, 1)  // wakes waiter, pred false
				p.Write(flag, 2)  // wakes waiter, pred false
				p.Write(flag, 3)  // wakes waiter, pred true
			}
			return []Program{waiter, writer}
		})
	// Waiter: initial check (1 RMR) + three re-checks (1 RMR each) = 4.
	if got := r.Account(0).TotalRMR; got != 4 {
		t.Errorf("waiter TotalRMR = %d, want 4", got)
	}
	// The waiter's step count must be bounded by wake-ups, not spin time.
	if got := r.Account(0).TotalSteps; got != 4 {
		t.Errorf("waiter TotalSteps = %d, want 4", got)
	}
}

// TestAwaitCoalescedWrites verifies that multiple writes landing before the
// waiter is rescheduled cost it only one re-check.
func TestAwaitCoalescedWrites(t *testing.T) {
	var flag memmodel.Var
	// lowest-first runs the writer (p0) fully before the waiter (p1)
	// re-checks.
	r := run(t, Config{Scheduler: sched.LowestFirst{}},
		func(a memmodel.Allocator) interface{} { flag = a.Alloc("flag", 0); return nil },
		func(interface{}) []Program {
			writer := func(p Proc) {
				p.Write(flag, 1)
				p.Write(flag, 2)
				p.Write(flag, 3)
			}
			waiter := func(p Proc) {
				p.Await(flag, func(x uint64) bool { return x == 3 })
			}
			return []Program{writer, waiter}
		})
	// With writer first, the waiter's initial check may already see 3:
	// exactly one check, one RMR.
	if got := r.Account(1).TotalRMR; got != 1 {
		t.Errorf("waiter TotalRMR = %d, want 1 (coalesced)", got)
	}
}

func TestAwaitMulti(t *testing.T) {
	var a1, a2 memmodel.Var
	r := run(t, Config{Scheduler: sched.NewRoundRobin()},
		func(a memmodel.Allocator) interface{} {
			a1 = a.Alloc("a1", 0)
			a2 = a.Alloc("a2", 0)
			return nil
		},
		func(interface{}) []Program {
			waiter := func(p Proc) {
				vals := p.AwaitMulti([]memmodel.Var{a1, a2}, func(vs []uint64) bool {
					return vs[0]+vs[1] >= 2
				})
				if vals[0]+vals[1] < 2 {
					t.Errorf("AwaitMulti returned %v before predicate held", vals)
				}
			}
			w1 := func(p Proc) { p.Write(a1, 1) }
			w2 := func(p Proc) { p.Write(a2, 1) }
			return []Program{waiter, w1, w2}
		})
	// Waiter reads both vars on each check; total RMRs bounded by
	// checks * 2.
	if got := r.Account(0).TotalRMR; got < 2 || got > 6 {
		t.Errorf("waiter TotalRMR = %d, want within [2,6]", got)
	}
}

func TestDeadlockDetected(t *testing.T) {
	r := New(Config{})
	v := r.Alloc("never", 0)
	r.AddProc(func(p Proc) {
		p.Await(v, func(x uint64) bool { return x == 1 })
	})
	if err := r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer r.Close()
	err := r.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Run error = %v, want ErrDeadlock", err)
	}
}

func TestMaxStepsEnforced(t *testing.T) {
	r := New(Config{MaxSteps: 10})
	v := r.Alloc("v", 0)
	r.AddProc(func(p Proc) {
		for i := 0; i < 1000; i++ {
			p.Write(v, uint64(i))
		}
	})
	if err := r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer r.Close()
	err := r.Run()
	if !errors.Is(err, ErrMaxSteps) {
		t.Fatalf("Run error = %v, want ErrMaxSteps", err)
	}
}

func TestSectionAttribution(t *testing.T) {
	var v memmodel.Var
	r := run(t, Config{},
		func(a memmodel.Allocator) interface{} { v = a.Alloc("v", 0); return nil },
		func(interface{}) []Program {
			return []Program{func(p Proc) {
				p.Section(memmodel.SecEntry)
				p.Write(v, 1) // entry RMR
				p.Section(memmodel.SecCS)
				p.Read(v) // cs, free (cached)
				p.Section(memmodel.SecExit)
				p.Write(v, 2) // exit RMR
				p.Write(v, 3) // exit RMR
				p.Section(memmodel.SecRemainder)
			}}
		})
	acct := r.Account(0)
	if len(acct.Passages) != 1 {
		t.Fatalf("Passages = %d, want 1", len(acct.Passages))
	}
	pass := acct.Passages[0]
	if pass.EntryRMR != 1 || pass.CSRMR != 0 || pass.ExitRMR != 2 {
		t.Errorf("passage RMRs = %+v, want entry=1 cs=0 exit=2", pass)
	}
	if pass.EntrySteps != 1 || pass.CSSteps != 1 || pass.ExitSteps != 2 {
		t.Errorf("passage steps = %+v", pass)
	}
	if pass.RMR() != 3 || pass.Steps() != 4 {
		t.Errorf("totals RMR=%d steps=%d, want 3, 4", pass.RMR(), pass.Steps())
	}
}

func TestMultiplePassages(t *testing.T) {
	var v memmodel.Var
	r := run(t, Config{},
		func(a memmodel.Allocator) interface{} { v = a.Alloc("v", 0); return nil },
		func(interface{}) []Program {
			return []Program{func(p Proc) {
				for i := 0; i < 3; i++ {
					p.Section(memmodel.SecEntry)
					p.Write(v, uint64(i))
					p.Section(memmodel.SecCS)
					p.Section(memmodel.SecExit)
					p.Read(v)
					p.Section(memmodel.SecRemainder)
				}
			}}
		})
	acct := r.Account(0)
	if len(acct.Passages) != 3 {
		t.Fatalf("Passages = %d, want 3", len(acct.Passages))
	}
	mx := acct.MaxPassage()
	if mx.EntryRMR != 1 {
		t.Errorf("MaxPassage.EntryRMR = %d, want 1", mx.EntryRMR)
	}
}

// TestDeterminism runs the same racy program twice with the same seed and
// requires identical traces, and with different seeds expects divergence to
// be at least possible (weaker check: traces are valid).
func TestDeterminism(t *testing.T) {
	runOnce := func(seed int64) []trace.Event {
		var rec trace.Recorder
		r := New(Config{Scheduler: sched.NewRandom(seed), Observer: rec.Observe})
		v := r.Alloc("v", 0)
		for i := 0; i < 4; i++ {
			i := i
			r.AddProc(func(p Proc) {
				for k := 0; k < 10; k++ {
					p.CAS(v, uint64(i+k), uint64(i+k+1))
					p.Read(v)
				}
			})
		}
		if err := r.Start(); err != nil {
			t.Fatalf("Start: %v", err)
		}
		defer r.Close()
		if err := r.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return append([]trace.Event(nil), rec.Events()...)
	}
	a, b := runOnce(11), runOnce(11)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestBarrierStaging(t *testing.T) {
	r := New(Config{})
	v := r.Alloc("v", 0)
	r.AddProc(func(p Proc) {
		p.Write(v, 1)
		p.Barrier()
		p.Write(v, 2)
	})
	if err := r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer r.Close()

	// Step until the process stalls at the barrier.
	for {
		progressed, err := r.Step()
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if !progressed {
			break
		}
	}
	if got := r.Value(v); got != 1 {
		t.Fatalf("value before barrier release = %d, want 1", got)
	}
	at := r.AtBarrier()
	if len(at) != 1 || at[0] != 0 {
		t.Fatalf("AtBarrier = %v, want [0]", at)
	}
	if err := r.ReleaseBarrier(0); err != nil {
		t.Fatalf("ReleaseBarrier: %v", err)
	}
	if err := r.Run(); err != nil {
		t.Fatalf("Run after release: %v", err)
	}
	if got := r.Value(v); got != 2 {
		t.Fatalf("final value = %d, want 2", got)
	}
}

func TestReleaseBarrierNotAtBarrier(t *testing.T) {
	r := New(Config{})
	r.AddProc(func(p Proc) {})
	if err := r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer r.Close()
	if err := r.ReleaseBarrier(0); err == nil {
		t.Fatal("ReleaseBarrier on non-barrier process must error")
	}
}

func TestRunStallsAtBarrierIsError(t *testing.T) {
	r := New(Config{})
	r.AddProc(func(p Proc) { p.Barrier() })
	if err := r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer r.Close()
	if err := r.Run(); err == nil {
		t.Fatal("Run must error when stalled at a barrier")
	}
}

func TestCloseAbortsBlockedProcs(t *testing.T) {
	r := New(Config{})
	v := r.Alloc("v", 0)
	r.AddProc(func(p Proc) {
		p.Await(v, func(x uint64) bool { return x == 1 })
	})
	if err := r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Close must return (not hang) even with the process parked.
	r.Close()
	r.Close() // double close is safe
}

func TestObserverSeesCASFields(t *testing.T) {
	var rec trace.Recorder
	r := New(Config{Observer: rec.Observe})
	v := r.Alloc("v", 1)
	r.AddProc(func(p Proc) {
		p.CAS(v, 1, 2) // success
		p.CAS(v, 1, 3) // failure
		p.CAS(v, 2, 2) // success but trivial
	})
	if err := r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer r.Close()
	if err := r.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	steps := rec.Steps()
	if len(steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(steps))
	}
	if !steps[0].Swapped || steps[0].Trivial {
		t.Errorf("step 0: %+v, want swapped non-trivial", steps[0])
	}
	if steps[1].Swapped || !steps[1].Trivial {
		t.Errorf("step 1: %+v, want failed (trivial)", steps[1])
	}
	if !steps[2].Swapped || !steps[2].Trivial {
		t.Errorf("step 2: %+v, want swapped trivial", steps[2])
	}
}

// TestTrivialCASIsReadForCoherence pins the accounting convention from
// DESIGN.md: failed CAS steps behave like reads and do not invalidate the
// spinning process's cache.
func TestTrivialCASIsReadForCoherence(t *testing.T) {
	var v, gate memmodel.Var
	r := run(t, Config{Protocol: WriteThrough, Scheduler: sched.LowestFirst{}},
		func(a memmodel.Allocator) interface{} {
			v = a.Alloc("v", 0)
			gate = a.Alloc("gate", 0)
			return nil
		},
		func(interface{}) []Program {
			// p0 reads v (cached), then signals p1, then re-reads v: the
			// re-read must be free because p1's failed CAS didn't
			// invalidate it.
			p0 := func(p Proc) {
				p.Read(v)
				p.Write(gate, 1)
				p.Await(gate, func(x uint64) bool { return x == 2 })
				p.Read(v) // must still be cached
			}
			p1 := func(p Proc) {
				p.Await(gate, func(x uint64) bool { return x == 1 })
				p.CAS(v, 99, 100) // fails; read-like
				p.Write(gate, 2)
			}
			return []Program{p0, p1}
		})
	// p0: read v (1 RMR) + write gate (1) + await initial check (0: gate
	// cached? p0 wrote gate so it holds a valid copy -> free) + one
	// re-check after p1 writes gate=2 (1 RMR) + read v (0, still cached).
	if got := r.Account(0).TotalRMR; got != 3 {
		t.Errorf("p0 TotalRMR = %d, want 3 (failed CAS must not invalidate)", got)
	}
}

func TestAllocN(t *testing.T) {
	r := New(Config{})
	vs := r.AllocN("arr", 4, 9)
	if len(vs) != 4 {
		t.Fatalf("AllocN returned %d vars", len(vs))
	}
	for i, v := range vs {
		if r.Value(v) != 9 {
			t.Errorf("arr[%d] = %d, want 9", i, r.Value(v))
		}
	}
	if r.VarName(vs[2]) != "arr[2]" {
		t.Errorf("VarName = %q", r.VarName(vs[2]))
	}
	if r.NumVars() != 4 {
		t.Errorf("NumVars = %d", r.NumVars())
	}
}

func TestPoisedReflectsPendingOps(t *testing.T) {
	r := New(Config{})
	v := r.Alloc("v", 0)
	r.AddProc(func(p Proc) { p.Write(v, 5) })
	r.AddProc(func(p Proc) { p.CAS(v, 0, 1) })
	if err := r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer r.Close()
	ops := r.Poised()
	if len(ops) != 2 {
		t.Fatalf("Poised = %d ops, want 2", len(ops))
	}
	if ops[0].Kind != memmodel.OpWrite || ops[0].Arg != 5 {
		t.Errorf("op0 = %+v", ops[0])
	}
	if ops[1].Kind != memmodel.OpCAS || ops[1].CASExpected != 0 || ops[1].Arg != 1 {
		t.Errorf("op1 = %+v", ops[1])
	}
	if err := r.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
