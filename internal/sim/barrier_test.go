package sim

import (
	"testing"

	"repro/internal/memmodel"
)

// Error paths of the barrier machinery and PendingOp edge cases the fault
// injector leans on (internal/fault drives executions step by step and
// reads PendingOf/Poised around crashes, barriers and awaits).

func TestReleaseBarrierOutOfRange(t *testing.T) {
	r := New(Config{})
	r.AddProc(func(p Proc) { p.Barrier() })
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.ReleaseBarrier(-1); err == nil {
		t.Error("ReleaseBarrier(-1) accepted")
	}
	if err := r.ReleaseBarrier(1); err == nil {
		t.Error("ReleaseBarrier(1) accepted for a 1-process runner")
	}
}

func TestReleaseBarrierDouble(t *testing.T) {
	r := New(Config{})
	v := r.Alloc("v", 0)
	r.AddProc(func(p Proc) {
		p.Barrier()
		p.Write(v, 1)
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.ReleaseBarrier(0); err != nil {
		t.Fatalf("first release: %v", err)
	}
	// The process is now poised on its write, not at a barrier; a second
	// release must fail without disturbing it.
	if err := r.ReleaseBarrier(0); err == nil {
		t.Fatal("double ReleaseBarrier accepted")
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.Value(v); got != 1 {
		t.Errorf("v = %d, want 1", got)
	}
}

func TestReleaseBarrierCrashedProcess(t *testing.T) {
	r := New(Config{})
	r.AddProc(func(p Proc) { p.Barrier() })
	r.AddProc(func(p Proc) {})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Crash(0); err != nil {
		t.Fatal(err)
	}
	if err := r.ReleaseBarrier(0); err == nil {
		t.Fatal("ReleaseBarrier on a crashed process accepted")
	}
	if err := r.Run(); err != nil {
		t.Fatalf("Run after crashing the barrier process: %v", err)
	}
	if !r.Terminated() {
		t.Error("not terminated")
	}
}

// TestPendingOfAwaitCarriesVars pins that an await's pending op exposes
// every spun-on variable (the fault injector's stuck diagnostics and the
// PCT scheduler both consume Vars).
func TestPendingOfAwaitCarriesVars(t *testing.T) {
	r := New(Config{})
	a := r.Alloc("a", 0)
	b := r.Alloc("b", 0)
	r.AddProc(func(p Proc) {
		p.AwaitMulti([]memmodel.Var{a, b}, func(vs []uint64) bool {
			return vs[0] == 1 && vs[1] == 1
		})
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	op, ok := r.PendingOf(0)
	if !ok {
		t.Fatal("await check not poised at start")
	}
	if op.Kind != memmodel.OpAwait || op.Var != a || len(op.Vars) != 2 || op.Vars[1] != b {
		t.Errorf("pending op = %+v, want await on [a b]", op)
	}
}

// TestPendingOfParkedAwaiterIsNotPoised pins the awaiting/poised split:
// once the initial check fails the process parks and must disappear from
// PendingOf and Poised until an invalidating write wakes it.
func TestPendingOfParkedAwaiterIsNotPoised(t *testing.T) {
	r := New(Config{})
	v := r.Alloc("v", 0)
	r.AddProc(func(p Proc) {
		p.Await(v, func(x uint64) bool { return x == 1 })
	})
	r.AddProc(func(p Proc) {
		p.Barrier()
		p.Write(v, 1)
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Step the failing await check; the process parks.
	if progressed, err := r.Step(); err != nil || !progressed {
		t.Fatalf("Step = (%v, %v)", progressed, err)
	}
	if _, ok := r.PendingOf(0); ok {
		t.Error("parked awaiter reported as poised")
	}
	if got := r.Awaiting(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Awaiting = %v, want [0]", got)
	}
	if err := r.ReleaseBarrier(1); err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
}
