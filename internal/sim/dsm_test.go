package sim

import (
	"testing"

	"repro/internal/memmodel"
	"repro/internal/sched"
)

// TestDSMAccounting pins the DSM rules: local accesses are free, every
// remote access (read or write) costs one RMR, and there is no caching.
func TestDSMAccounting(t *testing.T) {
	r := New(Config{Protocol: DSM, Scheduler: sched.LowestFirst{}})
	local := r.AllocHome("local", 0, 0)   // homed at p0
	remote := r.AllocHome("remote", 0, 1) // homed at p1
	global := r.Alloc("global", 0)        // no home: remote to everyone

	r.AddProc(func(p Proc) {
		p.Read(local)       // free
		p.Write(local, 1)   // free
		p.Read(local)       // free (no cache effects to model)
		p.Read(remote)      // RMR
		p.Read(remote)      // RMR again: DSM has no caches
		p.Write(remote, 2)  // RMR
		p.Read(global)      // RMR
		p.CAS(global, 0, 5) // RMR (successful)
		p.CAS(global, 0, 9) // RMR (failed: still a remote access)
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.Account(0).TotalRMR; got != 6 {
		t.Errorf("TotalRMR = %d, want 6", got)
	}
	if got := r.Account(0).TotalSteps; got != 9 {
		t.Errorf("TotalSteps = %d, want 9", got)
	}
}

// TestDSMLocalSpinFree: spinning on a variable homed at the spinner is
// free regardless of how many times it is rewritten; spinning on a remote
// variable costs one RMR per re-check.
func TestDSMLocalSpinFree(t *testing.T) {
	r := New(Config{Protocol: DSM, Scheduler: sched.NewRoundRobin()})
	mine := r.AllocHome("mine", 0, 0)     // homed at the spinner
	theirs := r.AllocHome("theirs", 0, 1) // homed at the writer

	r.AddProc(func(p Proc) {
		p.Await(mine, func(x uint64) bool { return x == 3 })
		p.Await(theirs, func(x uint64) bool { return x == 3 })
	})
	r.AddProc(func(p Proc) {
		p.Write(mine, 1) // RMR for the writer (remote), wakes spinner
		p.Write(mine, 2)
		p.Write(mine, 3)
		p.Write(theirs, 1) // free for the writer (local)
		p.Write(theirs, 2)
		p.Write(theirs, 3)
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	spinner, writer := r.Account(0), r.Account(1)
	// Spinner: all checks of "mine" free (local); checks of "theirs"
	// remote: initial + up to 3 re-checks.
	if spinner.TotalRMR > 4 || spinner.TotalRMR < 1 {
		t.Errorf("spinner RMR = %d, want in [1,4] (local spin free, remote spin charged)", spinner.TotalRMR)
	}
	// Writer: three remote writes (mine) + three local writes (theirs).
	if writer.TotalRMR != 3 {
		t.Errorf("writer RMR = %d, want 3", writer.TotalRMR)
	}
}

// TestDSMNativeFallback: the native backend ignores homes via the helper.
func TestAllocHomeHelperFallback(t *testing.T) {
	r := New(Config{Protocol: DSM})
	v := memmodel.AllocHome(r, "v", 7, 2)
	if r.Value(v) != 7 {
		t.Error("AllocHome helper did not allocate through HomeAllocator")
	}
	// A plain allocator (no HomeAllocator) must fall back to Alloc.
	pa := plainAlloc{r: New(Config{})}
	v2 := memmodel.AllocHome(pa, "v2", 9, 0)
	if pa.r.Value(v2) != 9 {
		t.Error("AllocHome fallback failed")
	}
}

// plainAlloc hides the runner's HomeAllocator to exercise the fallback.
type plainAlloc struct{ r *Runner }

func (p plainAlloc) Alloc(name string, init uint64) memmodel.Var { return p.r.Alloc(name, init) }
func (p plainAlloc) AllocN(name string, n int, init uint64) []memmodel.Var {
	return p.r.AllocN(name, n, init)
}
