package sim

import (
	"strings"
	"testing"

	"repro/internal/memmodel"
)

// stallFixture builds a producer/consumer pair: p0 awaits v==1, p1 writes
// it after a couple of warm-up reads. Stalling p1 delays or dooms p0.
func stallFixture(t *testing.T) (*Runner, memmodel.Var) {
	t.Helper()
	r := New(Config{})
	v := r.Alloc("v", 0)
	r.AddProc(func(p Proc) {
		p.Await(v, func(x uint64) bool { return x == 1 })
		p.Read(v)
	})
	r.AddProc(func(p Proc) {
		p.Read(v)
		p.Read(v)
		p.Write(v, 1)
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r, v
}

func runToEnd(t *testing.T, r *Runner) error {
	t.Helper()
	for {
		progressed, err := r.Step()
		if err != nil {
			return err
		}
		if !progressed {
			if !r.Terminated() && len(r.AtBarrier()) == 0 {
				t.Fatal("quiesced without terminating and without barriers")
			}
			return nil
		}
	}
}

// TestStallErrors pins Stall/Resume misuse: unknown ids, finished, crashed
// and double-stalled processes all error; Resume of a non-stalled process
// errors.
func TestStallErrors(t *testing.T) {
	r, _ := stallFixture(t)
	if err := r.Stall(-1, Forever); err == nil {
		t.Error("Stall(-1) must error")
	}
	if err := r.Stall(2, 1); err == nil {
		t.Error("Stall of unknown process must error")
	}
	if err := r.Resume(0); err == nil {
		t.Error("Resume of a non-stalled process must error")
	}
	if err := r.Stall(1, Forever); err != nil {
		t.Fatal(err)
	}
	if err := r.Stall(1, 5); err == nil {
		t.Error("double Stall must error")
	}
	if err := r.Crash(1); err != nil {
		t.Fatal(err)
	}
	if r.IsStalled(1) {
		t.Error("crash must supersede the stall")
	}
	if err := r.Stall(1, 1); err == nil {
		t.Error("Stall of a crashed process must error")
	}
}

// Forever mirrors fault.Forever without importing the fault package (which
// would be an upward dependency from sim's tests).
const Forever = -1

// TestStallDelaysCompletion: a finite stall pauses the victim for its
// duration, then the execution completes normally with every step intact.
func TestStallDelaysCompletion(t *testing.T) {
	r, v := stallFixture(t)
	if err := r.Stall(1, 3); err != nil {
		t.Fatal(err)
	}
	if !r.IsStalled(1) {
		t.Fatal("IsStalled(1) = false after Stall")
	}
	if got := len(r.Stalled()); got != 1 {
		t.Fatalf("len(Stalled()) = %d, want 1", got)
	}
	if err := runToEnd(t, r); err != nil {
		t.Fatalf("finite stall must not wedge: %v", err)
	}
	if !r.Terminated() {
		t.Fatal("execution did not terminate")
	}
	if got := r.Value(v); got != 1 {
		t.Errorf("v = %d after completion, want 1", got)
	}
	if r.IsStalled(1) {
		t.Error("stall must have expired")
	}
}

// TestStallFastForward: when the only runnable process is finitely
// stalled, the runner fast-forwards the stall instead of reporting a
// wedge — a delayed-but-alive process eventually takes its step.
func TestStallFastForward(t *testing.T) {
	r, _ := stallFixture(t)
	// A duration far beyond anything the other process can burn stepping.
	if err := r.Stall(1, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if err := runToEnd(t, r); err != nil {
		t.Fatalf("fast-forward must rescue the finite stall: %v", err)
	}
	if r.StepCount() > 100 {
		t.Errorf("termination took %d steps; fast-forward did not kick in", r.StepCount())
	}
}

// TestStallResume: an indefinite stall holds until Resume, after which the
// execution completes.
func TestStallResume(t *testing.T) {
	r, _ := stallFixture(t)
	if err := r.Stall(1, Forever); err != nil {
		t.Fatal(err)
	}
	npe := driveToWedge(t, r)
	if len(npe.Stalled) != 1 || npe.Stalled[0].Proc != 1 {
		t.Fatalf("diagnostic Stalled = %+v, want p1", npe.Stalled)
	}
	if err := r.Resume(1); err != nil {
		t.Fatal(err)
	}
	if r.IsStalled(1) {
		t.Error("IsStalled after Resume")
	}
	if err := runToEnd(t, r); err != nil {
		t.Fatalf("resumed execution must complete: %v", err)
	}
	if !r.Terminated() {
		t.Error("execution did not terminate after Resume")
	}
}

// TestStalledExcludedFromPoised: a stalled process is not schedulable and
// PendingOf does not report it poised.
func TestStalledExcludedFromPoised(t *testing.T) {
	r, _ := stallFixture(t)
	if _, poised := r.PendingOf(1); !poised {
		t.Fatal("p1 must start poised")
	}
	if err := r.Stall(1, Forever); err != nil {
		t.Fatal(err)
	}
	if _, poised := r.PendingOf(1); poised {
		t.Error("stalled p1 still reported poised")
	}
	for _, op := range r.Poised() {
		if op.Proc == 1 {
			t.Error("stalled p1 still in Poised()")
		}
	}
	if !r.Alive(1) {
		t.Error("a stalled process is alive")
	}
}

// TestStallDoomedClassification: survivors blocked behind an indefinitely
// stalled victim are classified doomed, and the formatted diagnostic names
// the three populations (satellite: watchdog diagnostics).
func TestStallDoomedClassification(t *testing.T) {
	r := New(Config{})
	v := r.Alloc("gate", 0)
	w := r.Alloc("other", 0)
	r.AddProc(func(p Proc) { // p0: doomed survivor
		p.Await(v, func(x uint64) bool { return x == 1 })
	})
	r.AddProc(func(p Proc) { // p1: the stall victim, would unblock p0
		p.Read(v)
		p.Write(v, 1)
	})
	r.AddProc(func(p Proc) { // p2: crash victim
		p.Read(w)
		p.Read(w)
		p.Read(w)
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Stall(1, Forever); err != nil {
		t.Fatal(err)
	}
	if err := r.Crash(2); err != nil {
		t.Fatal(err)
	}
	npe := driveToWedge(t, r)
	if len(npe.Stuck) != 1 || npe.Stuck[0].Proc != 0 || !npe.Stuck[0].Doomed {
		t.Fatalf("Stuck = %+v, want p0 doomed", npe.Stuck)
	}
	if len(npe.Stalled) != 1 || npe.Stalled[0].Proc != 1 || !npe.Stalled[0].Indefinite {
		t.Fatalf("Stalled = %+v, want p1 indefinite", npe.Stalled)
	}
	if len(npe.CrashedProcs) != 1 || npe.CrashedProcs[0] != 2 {
		t.Fatalf("CrashedProcs = %v, want [2]", npe.CrashedProcs)
	}
	msg := npe.Error()
	for _, want := range []string{
		"(crashed: [2])",
		"p1 stalled in",
		"(indefinite, since step",
		"p0 doomed in",
		"awaiting gate=0",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, msg)
		}
	}
	if strings.Contains(msg, "p0 blocked") {
		t.Errorf("doomed survivor rendered as merely blocked:\n%s", msg)
	}
}

// TestStallBenignTermination: when every survivor completes and only an
// indefinitely stalled victim remains, the watchdog reports an empty Stuck
// — the benign fail-slow outcome, distinguishable from a doomed wedge.
func TestStallBenignTermination(t *testing.T) {
	r := New(Config{})
	v := r.Alloc("v", 0)
	r.AddProc(func(p Proc) { // survivor, independent of p1
		p.Read(v)
		p.Read(v)
	})
	r.AddProc(func(p Proc) { // victim
		p.Read(v)
		p.Read(v)
		p.Read(v)
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Stall(1, Forever); err != nil {
		t.Fatal(err)
	}
	npe := driveToWedge(t, r)
	if len(npe.Stuck) != 0 {
		t.Fatalf("Stuck = %+v, want empty (survivors all done)", npe.Stuck)
	}
	if len(npe.Stalled) != 1 {
		t.Fatalf("Stalled = %+v, want the victim only", npe.Stalled)
	}
	if !strings.Contains(npe.Error(), "p1 stalled in") {
		t.Errorf("diagnostic: %s", npe.Error())
	}
}

// TestStalledProcString pins both StalledProc renderings.
func TestStalledProcString(t *testing.T) {
	fin := StalledProc{Proc: 3, Section: memmodel.SecEntry, Since: 10, ResumeAt: 17}
	if got := fin.String(); got != "p3 stalled in entry (since step 10, resumes at step 17)" {
		t.Errorf("finite rendering: %q", got)
	}
	inf := StalledProc{Proc: 4, Section: memmodel.SecCS, Indefinite: true, Since: 2}
	if got := inf.String(); got != "p4 stalled in cs (indefinite, since step 2)" {
		t.Errorf("indefinite rendering: %q", got)
	}
}

// TestStuckProcString pins the blocked vs doomed renderings.
func TestStuckProcString(t *testing.T) {
	s := StuckProc{Proc: 1, Section: memmodel.SecEntry,
		VarNames: []string{"x"}, Values: []uint64{7}}
	if got := s.String(); got != "p1 blocked in entry awaiting x=7" {
		t.Errorf("blocked rendering: %q", got)
	}
	s.Doomed = true
	if got := s.String(); got != "p1 doomed in entry awaiting x=7" {
		t.Errorf("doomed rendering: %q", got)
	}
}
