package sim

import "repro/internal/memmodel"

// simProc is the memmodel.Proc / sim.Proc implementation handed to each
// simulated process goroutine. Every operation is a rendezvous with the
// runner: send the request, block until the runner schedules and applies
// it, receive the response.
type simProc struct {
	r  *Runner
	ps *procState
}

var _ Proc = (*simProc)(nil)

// call performs the request/response rendezvous. If the runner is closed
// it panics with errAborted, which the process goroutine's deferred
// recover treats as a clean shutdown.
func (p *simProc) call(rq request) response {
	select {
	case p.ps.req <- rq:
	case <-p.r.quit:
		panic(errAborted)
	}
	select {
	case resp := <-p.ps.resp:
		return resp
	case <-p.r.quit:
		panic(errAborted)
	}
}

// ID implements memmodel.Proc.
func (p *simProc) ID() int { return p.ps.id }

// Read implements memmodel.Proc.
func (p *simProc) Read(v memmodel.Var) uint64 {
	return p.call(request{kind: memmodel.OpRead, v: v}).val
}

// Write implements memmodel.Proc.
func (p *simProc) Write(v memmodel.Var, x uint64) {
	p.call(request{kind: memmodel.OpWrite, v: v, arg: x})
}

// CAS implements memmodel.Proc.
func (p *simProc) CAS(v memmodel.Var, old, newVal uint64) (uint64, bool) {
	resp := p.call(request{kind: memmodel.OpCAS, v: v, exp: old, arg: newVal})
	return resp.val, resp.swapped
}

// FetchAdd implements memmodel.Proc.
func (p *simProc) FetchAdd(v memmodel.Var, delta uint64) uint64 {
	return p.call(request{kind: memmodel.OpFetchAdd, v: v, arg: delta}).val
}

// Await implements memmodel.Proc. Single-variable awaits carry no vars
// slice: the runner keys the single/multi distinction on mpred, so the
// request is allocation-free like the other single-variable operations.
func (p *simProc) Await(v memmodel.Var, pred memmodel.Pred) uint64 {
	return p.call(request{kind: memmodel.OpAwait, v: v, pred: pred}).val
}

// AwaitMulti implements memmodel.Proc.
func (p *simProc) AwaitMulti(vars []memmodel.Var, pred memmodel.MultiPred) []uint64 {
	vs := make([]memmodel.Var, len(vars))
	copy(vs, vars)
	return p.call(request{kind: memmodel.OpAwait, vars: vs, mpred: pred}).vals
}

// Section implements memmodel.Proc.
func (p *simProc) Section(s memmodel.Section) {
	p.call(request{section: s})
}

// Barrier implements sim.Proc.
func (p *simProc) Barrier() {
	p.call(request{barrier: true})
}
