package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddContainsRemove(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Fatalf("fresh set contains %d", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("set missing %d after Add", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("set contains 64 after Remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if got := s.Count(); got != 1 {
		t.Fatalf("Count after double Add = %d, want 1", got)
	}
}

func TestContainsOutsideUniverse(t *testing.T) {
	s := New(10)
	if s.Contains(-1) || s.Contains(10) || s.Contains(1000) {
		t.Fatal("Contains returned true outside universe")
	}
}

func TestAddPanicsOutsideUniverse(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add outside universe did not panic")
		}
	}()
	New(4).Add(4)
}

func TestUnionSubset(t *testing.T) {
	a := New(200)
	b := New(200)
	a.Add(5)
	a.Add(100)
	b.Add(100)
	b.Add(150)
	if a.SubsetOf(b) || b.SubsetOf(a) {
		t.Fatal("unexpected subset relation")
	}
	a.Union(b)
	if !b.SubsetOf(a) {
		t.Fatal("b not subset of a after union")
	}
	want := []int{5, 100, 150}
	got := a.Elements()
	if len(got) != len(want) {
		t.Fatalf("Elements = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elements = %v, want %v", got, want)
		}
	}
}

func TestEmptySubsetOfEverything(t *testing.T) {
	e := New(64)
	full := New(64)
	for i := 0; i < 64; i++ {
		full.Add(i)
	}
	if !e.SubsetOf(full) || !e.SubsetOf(New(64)) {
		t.Fatal("empty set not subset")
	}
	if !e.Empty() {
		t.Fatal("Empty() false for empty set")
	}
	if full.Empty() {
		t.Fatal("Empty() true for full set")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(70)
	a.Add(69)
	c := a.Clone()
	if !c.Equal(a) {
		t.Fatal("clone not equal to original")
	}
	c.Add(1)
	if a.Contains(1) {
		t.Fatal("mutating clone affected original")
	}
	a.Clear()
	if !a.Empty() {
		t.Fatal("Clear did not empty set")
	}
	if !c.Contains(69) {
		t.Fatal("clearing original affected clone")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(100), New(100)
	if !a.Equal(b) {
		t.Fatal("two empty sets not equal")
	}
	a.Add(42)
	if a.Equal(b) {
		t.Fatal("unequal sets reported equal")
	}
	b.Add(42)
	if !a.Equal(b) {
		t.Fatal("equal sets reported unequal")
	}
}

func TestUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Union with mismatched universes did not panic")
		}
	}()
	New(10).Union(New(20))
}

func TestString(t *testing.T) {
	s := New(10)
	if got := s.String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
	s.Add(2)
	s.Add(7)
	if got := s.String(); got != "{2, 7}" {
		t.Errorf("String = %q, want {2, 7}", got)
	}
}

// TestUnionCountProperty checks |A ∪ B| <= |A| + |B| and A, B ⊆ A ∪ B on
// random sets — the containment facts the awareness tracker depends on
// (Observation 1's monotonicity reduces to these).
func TestUnionCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				a.Add(i)
			}
			if rng.Intn(3) == 0 {
				b.Add(i)
			}
		}
		ca, cb := a.Count(), b.Count()
		u := a.Clone()
		u.Union(b)
		return u.Count() <= ca+cb && a.SubsetOf(u) && b.SubsetOf(u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestElementsSortedProperty checks Elements returns a strictly increasing
// sequence consistent with Contains.
func TestElementsSortedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		s := New(n)
		for i := 0; i < n/2; i++ {
			s.Add(rng.Intn(n))
		}
		prev := -1
		for _, e := range s.Elements() {
			if e <= prev || !s.Contains(e) {
				return false
			}
			prev = e
		}
		return len(s.Elements()) == s.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
