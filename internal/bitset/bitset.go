// Package bitset provides a dense, fixed-universe bitset used by the
// awareness/familiarity machinery of the lower-bound proofs (Definitions 1-3
// in the paper). Awareness sets are subsets of the process universe
// {0, ..., n+m-1}, so a packed []uint64 representation is compact and makes
// union and subset tests word-parallel.
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

// Set is a mutable bitset over a fixed universe. The zero value is an empty
// set over an empty universe; use New for a sized universe.
type Set struct {
	words []uint64
	n     int // universe size in bits
}

// New returns an empty set over the universe {0, ..., n-1}.
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the universe size.
func (s *Set) Len() int { return s.n }

// Add inserts i into the set. It panics if i is outside the universe, since
// that always indicates a bug in the caller's process indexing.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Remove deletes i from the set.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Union adds every element of o to s (s |= o). The universes must have the
// same size.
func (s *Set) Union(o *Set) {
	s.sameUniverse(o)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// SubsetOf reports whether every element of s is also in o.
func (s *Set) SubsetOf(o *Set) bool {
	s.sameUniverse(o)
	for i, w := range s.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o contain exactly the same elements.
func (s *Set) Equal(o *Set) bool {
	s.sameUniverse(o)
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// Clear removes all elements.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Elements returns the members of the set in ascending order.
func (s *Set) Elements() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}

// String renders the set as "{a, b, c}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range s.Elements() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strconv.Itoa(e))
	}
	b.WriteByte('}')
	return b.String()
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: element " + strconv.Itoa(i) + " outside universe of size " + strconv.Itoa(s.n))
	}
}

func (s *Set) sameUniverse(o *Set) {
	if s.n != o.n {
		panic("bitset: universe size mismatch: " + strconv.Itoa(s.n) + " vs " + strconv.Itoa(o.n))
	}
}
