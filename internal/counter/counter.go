// Package counter implements the K-process shared counter objects used by
// the paper's A_f algorithm (Section 4). Each readers-group consolidates
// its presence (C[i]) and waiting (W[i]) counts in such a counter.
//
// The primary implementation, FArray, follows Jayanti's f-array
// construction [15], converted from LL/SC to CAS as the paper notes is easy
// [14]: a complete binary tree whose leaves hold per-process partial counts
// and whose internal nodes cache subtree sums. An add updates the caller's
// leaf and propagates along the leaf-to-root path with a double refresh at
// every node — O(log K) steps — while a read just reads the root — O(1)
// steps. Every tree node packs a 32-bit version tag with its 32-bit signed
// sum so the refresh CAS is ABA-safe, which is exactly what the LL/SC to
// CAS conversion requires.
package counter

import (
	"fmt"

	"repro/internal/memmodel"
)

// Counter is a K-process counter object: Add may be called concurrently by
// up to K processes, each owning a distinct slot in [0, K); Read may be
// called by anyone (including non-slot-holders such as the writer in A_f).
type Counter interface {
	// Add atomically adds delta to the counter on behalf of slot.
	Add(p memmodel.Proc, slot int, delta int32)
	// Read returns the counter's current value.
	Read(p memmodel.Proc) int32
}

// FArray is the Jayanti-style tree counter. See the package comment.
type FArray struct {
	k      int
	leaves int
	// nodes is a heap-layout complete binary tree: nodes[0] is the root,
	// node i has children 2i+1 and 2i+2, and slot s's leaf is
	// nodes[leaves-1+s]. Every node holds PackVerSum(version, sum).
	nodes []memmodel.Var
}

var _ Counter = (*FArray)(nil)

// NewFArray allocates an f-array counter for k slots. k must be positive.
func NewFArray(a memmodel.Allocator, name string, k int) *FArray {
	if k <= 0 {
		panic(fmt.Sprintf("counter: k must be positive, got %d", k))
	}
	leaves := 1
	for leaves < k {
		leaves *= 2
	}
	return &FArray{
		k:      k,
		leaves: leaves,
		nodes:  a.AllocN(name, 2*leaves-1, memmodel.PackVerSum(0, 0)),
	}
}

// Slots returns the number of slots the counter was allocated for.
func (c *FArray) Slots() int { return c.k }

// Root returns the root node's variable. The counter's current value is
// the signed sum packed into it; tests and staged drivers use it to
// identify pending operations and inspect quiescent state.
func (c *FArray) Root() memmodel.Var { return c.nodes[0] }

// Add implements Counter. It performs O(log K) shared-memory steps: one
// leaf update plus at most two refreshes per level on the leaf-to-root
// path.
func (c *FArray) Add(p memmodel.Proc, slot int, delta int32) {
	if slot < 0 || slot >= c.k {
		panic(fmt.Sprintf("counter: slot %d out of range [0,%d)", slot, c.k))
	}
	leaf := c.leaves - 1 + slot
	// The leaf is written only by its owning slot, so a plain read-write
	// pair updates it atomically with respect to other adders.
	w := p.Read(c.nodes[leaf])
	ver, sum := memmodel.UnpackVerSum(w)
	p.Write(c.nodes[leaf], memmodel.PackVerSum(ver+1, sum+delta))
	if leaf == 0 {
		return // single-slot tree: the leaf is the root
	}

	for node := (leaf - 1) / 2; ; node = (node - 1) / 2 {
		if !c.refresh(p, node) {
			c.refresh(p, node)
		}
		if node == 0 {
			return
		}
	}
}

// refresh recomputes node's sum from its children and installs it with a
// version-bumping CAS. The double-refresh argument: if both of a
// propagator's CAS attempts at a node fail, two other refreshes succeeded
// during them, and the second must have read the children after the first's
// CAS — hence after the propagator's leaf update — so the leaf update is
// already reflected at the node.
func (c *FArray) refresh(p memmodel.Proc, node int) bool {
	old := p.Read(c.nodes[node])
	oldVer, _ := memmodel.UnpackVerSum(old)
	_, left := memmodel.UnpackVerSum(p.Read(c.nodes[2*node+1]))
	_, right := memmodel.UnpackVerSum(p.Read(c.nodes[2*node+2]))
	_, swapped := p.CAS(c.nodes[node], old, memmodel.PackVerSum(oldVer+1, left+right))
	return swapped
}

// Read implements Counter: a single read of the root.
func (c *FArray) Read(p memmodel.Proc) int32 {
	return memmodel.VerSumSum(p.Read(c.nodes[0]))
}

// Leaf returns slot's leaf variable. Recoverable callers read its version
// tag before an Add so that, after a crash, the recovery section can tell
// whether the interrupted Add's leaf update applied (the version advanced
// to the recorded target) or the crash hit first.
func (c *FArray) Leaf(slot int) memmodel.Var {
	if slot < 0 || slot >= c.k {
		panic(fmt.Sprintf("counter: slot %d out of range [0,%d)", slot, c.k))
	}
	return c.nodes[c.leaves-1+slot]
}

// Repair re-propagates slot's leaf to the root: Add's double-refresh walk
// without the leaf update. A recovery section calls it after a crash
// anywhere inside an Add whose leaf update already applied; the walk pushes
// the orphaned leaf value up exactly as the dead incarnation would have.
// Calling it when nothing is orphaned is harmless (the refreshes recompute
// sums that are already correct). O(log K) steps, no waiting.
func (c *FArray) Repair(p memmodel.Proc, slot int) {
	if slot < 0 || slot >= c.k {
		panic(fmt.Sprintf("counter: slot %d out of range [0,%d)", slot, c.k))
	}
	leaf := c.leaves - 1 + slot
	if leaf == 0 {
		return // single-slot tree: the leaf is the root, nothing to propagate
	}
	for node := (leaf - 1) / 2; ; node = (node - 1) / 2 {
		if !c.refresh(p, node) {
			c.refresh(p, node)
		}
		if node == 0 {
			return
		}
	}
}

// CellArray is the scan counter: one cell per slot, written only by its
// owner. Add is O(1) (a read and a write of the own cell); Read scans all
// K cells — the mirror image of the f-array's cost split, and the reason
// the f-array exists: a writer that must read f(n) group counters pays
// O(K) per read here, i.e. Theta(n) total regardless of f.
//
// Reads are not atomic snapshots (the scan observes each cell at a
// different time), but every cell is single-writer and A_f's proofs only
// need the scan-vs-program-order guarantees the ablation tests check
// empirically.
type CellArray struct {
	k     int
	cells []memmodel.Var
}

var _ Counter = (*CellArray)(nil)

// NewCellArray allocates a scan counter for k slots.
func NewCellArray(a memmodel.Allocator, name string, k int) *CellArray {
	if k <= 0 {
		panic(fmt.Sprintf("counter: k must be positive, got %d", k))
	}
	return &CellArray{k: k, cells: a.AllocN(name, k, memmodel.PackVerSum(0, 0))}
}

// Add implements Counter: an owner-only read-modify-write of slot's cell.
func (c *CellArray) Add(p memmodel.Proc, slot int, delta int32) {
	if slot < 0 || slot >= c.k {
		panic(fmt.Sprintf("counter: slot %d out of range [0,%d)", slot, c.k))
	}
	ver, sum := memmodel.UnpackVerSum(p.Read(c.cells[slot]))
	p.Write(c.cells[slot], memmodel.PackVerSum(ver+1, sum+delta))
}

// Read implements Counter: an O(K) scan.
func (c *CellArray) Read(p memmodel.Proc) int32 {
	var total int32
	for _, cell := range c.cells {
		total += memmodel.VerSumSum(p.Read(cell))
	}
	return total
}

// CASWord is the naive single-word counter: Add is a CAS retry loop on one
// variable. Reads are O(1) and adds are O(1) steps when uncontended, but
// every concurrent add invalidates every other process's cached copy, so
// under contention it exhibits the invalidation storms the tree avoids.
// It exists as an experimental contrast, not as a building block of A_f.
type CASWord struct {
	v memmodel.Var
}

var _ Counter = (*CASWord)(nil)

// NewCASWord allocates a single-word CAS counter.
func NewCASWord(a memmodel.Allocator, name string) *CASWord {
	return &CASWord{v: a.Alloc(name, memmodel.PackVerSum(0, 0))}
}

// Add implements Counter; the slot is ignored.
func (c *CASWord) Add(p memmodel.Proc, _ int, delta int32) {
	for {
		old := p.Read(c.v)
		ver, sum := memmodel.UnpackVerSum(old)
		if _, ok := p.CAS(c.v, old, memmodel.PackVerSum(ver+1, sum+delta)); ok {
			return
		}
	}
}

// Read implements Counter.
func (c *CASWord) Read(p memmodel.Proc) int32 {
	return memmodel.VerSumSum(p.Read(c.v))
}
