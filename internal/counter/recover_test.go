package counter

import (
	"testing"

	"repro/internal/memmodel"
	"repro/internal/sim"
)

// addSteps returns the step count of a solo FArray Add for k slots.
func addSteps(t *testing.T, k int) int {
	t.Helper()
	r := sim.New(sim.Config{})
	c := NewFArray(r, "C", k)
	r.AddProc(func(p sim.Proc) { c.Add(p, 0, 5) })
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	return r.StepCount()
}

// TestFArrayRepairAfterInterruptedAdd crashes an adder at every step of its
// Add and repairs from a fresh incarnation: the leaf version tag decides
// whether the interrupted Add applied (then Repair propagates the orphaned
// leaf) or not (then the Add is redone). A second adder runs after the
// crash to perturb the tree. The final sum must always be exact.
func TestFArrayRepairAfterInterruptedAdd(t *testing.T) {
	const k = 4
	steps := addSteps(t, k)
	if steps < 4 {
		t.Fatalf("solo Add took only %d steps", steps)
	}
	for crash := 0; crash <= steps; crash++ {
		r := sim.New(sim.Config{})
		c := NewFArray(r, "C", k)
		r.AddProc(func(p sim.Proc) { c.Add(p, 0, 5) })
		r.AddProc(func(p sim.Proc) {
			p.Barrier() // held back until after the crash
			c.Add(p, 1, 3)
		})
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < crash; i++ {
			progressed, err := r.Step()
			if err != nil {
				t.Fatal(err)
			}
			if !progressed {
				break
			}
		}
		if !r.Alive(0) {
			// Add finished before the crash point: nothing to test here.
			r.Close()
			continue
		}
		if err := r.Crash(0); err != nil {
			t.Fatal(err)
		}
		if err := r.ReleaseBarrier(1); err != nil {
			t.Fatal(err)
		}
		if err := r.Restart(0, func(p sim.Proc) {
			// The dead incarnation targeted leaf version 1 (the tree was
			// fresh). Version reached 1: the leaf update applied, propagate
			// it. Version still 0: the crash hit first, redo the Add.
			ver, _ := memmodel.UnpackVerSum(p.Read(c.Leaf(0)))
			if ver >= 1 {
				c.Repair(p, 0)
			} else {
				c.Add(p, 0, 5)
			}
		}); err != nil {
			t.Fatal(err)
		}
		if err := r.Run(); err != nil {
			t.Fatalf("crash=%d: %v", crash, err)
		}
		if got := memmodel.VerSumSum(r.Value(c.Root())); got != 8 {
			t.Errorf("crash=%d: counter reads %d, want 8", crash, got)
		}
		r.Close()
	}
}

// TestFArrayRepairNoOrphanHarmless: Repair on a quiescent tree changes
// nothing.
func TestFArrayRepairNoOrphanHarmless(t *testing.T) {
	r := sim.New(sim.Config{})
	c := NewFArray(r, "C", 3)
	r.AddProc(func(p sim.Proc) {
		c.Add(p, 0, 7)
		c.Repair(p, 0)
		c.Repair(p, 2)
		if got := c.Read(p); got != 7 {
			t.Errorf("Read = %d, want 7", got)
		}
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestFArrayRepairSingleSlot: the one-slot tree's leaf is its root; Repair
// is a no-op.
func TestFArrayRepairSingleSlot(t *testing.T) {
	r := sim.New(sim.Config{})
	c := NewFArray(r, "C", 1)
	r.AddProc(func(p sim.Proc) {
		c.Add(p, 0, 2)
		c.Repair(p, 0)
		if got := c.Read(p); got != 2 {
			t.Errorf("Read = %d, want 2", got)
		}
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.Account(0).TotalSteps; got != 3 {
		t.Errorf("steps = %d, want 3 (read+write leaf, read root; Repair free)", got)
	}
}

// TestFArrayLeafPanics: Leaf and Repair check their slot argument.
func TestFArrayLeafPanics(t *testing.T) {
	r := sim.New(sim.Config{})
	c := NewFArray(r, "C", 2)
	for _, f := range []func(){
		func() { c.Leaf(2) },
		func() { c.Leaf(-1) },
		func() { c.Repair(nil, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad slot did not panic")
				}
			}()
			f()
		}()
	}
}
