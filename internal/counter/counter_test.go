package counter

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/sim"
)

// runCounter executes body-programs against a fresh counter in the
// simulator and returns the runner for inspection.
func runCounter(t *testing.T, protocol sim.Protocol, s sched.Scheduler, build func(a memmodel.Allocator) Counter, progs func(c Counter) []sim.Program) *sim.Runner {
	t.Helper()
	r := sim.New(sim.Config{Protocol: protocol, Scheduler: s})
	c := build(r)
	for _, p := range progs(c) {
		r.AddProc(p)
	}
	if err := r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(r.Close)
	if err := r.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

func newFArray(k int) func(a memmodel.Allocator) Counter {
	return func(a memmodel.Allocator) Counter { return NewFArray(a, "C", k) }
}

func newCASWord() func(a memmodel.Allocator) Counter {
	return func(a memmodel.Allocator) Counter { return NewCASWord(a, "C") }
}

func TestFArraySequential(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 7, 8, 16, 33} {
		k := k
		var final int32
		runCounter(t, sim.WriteThrough, sched.LowestFirst{}, newFArray(k),
			func(c Counter) []sim.Program {
				return []sim.Program{func(p sim.Proc) {
					for s := 0; s < k; s++ {
						c.Add(p, s, int32(s+1))
					}
					if got := c.Read(p); got != int32(k*(k+1)/2) {
						t.Errorf("k=%d: Read = %d, want %d", k, got, k*(k+1)/2)
					}
					for s := 0; s < k; s++ {
						c.Add(p, s, -int32(s+1))
					}
					final = c.Read(p)
				}}
			})
		if final != 0 {
			t.Errorf("k=%d: final = %d, want 0", k, final)
		}
	}
}

// TestFArrayConcurrentExactTotal has each adder add a known amount; a
// dedicated observer waits for quiescence and must then read the exact
// total (quiescent accuracy of the tree).
func TestFArrayConcurrentExactTotal(t *testing.T) {
	const k = 6
	for _, seed := range []int64{7, 8, 9} {
		var got int32 = math.MinInt32
		r := sim.New(sim.Config{Protocol: sim.WriteThrough, Scheduler: sched.NewRandom(seed)})
		c := NewFArray(r, "C", k)
		doneV := r.Alloc("done", 0)
		for s := 0; s < k; s++ {
			s := s
			r.AddProc(func(p sim.Proc) {
				for i := 0; i < 4; i++ {
					c.Add(p, s, int32(s+1))
				}
				p.FetchAdd(doneV, 1)
			})
		}
		r.AddProc(func(p sim.Proc) {
			p.Await(doneV, func(x uint64) bool { return x == k })
			got = c.Read(p)
		})
		if err := r.Start(); err != nil {
			t.Fatalf("Start: %v", err)
		}
		if err := r.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		r.Close()
		want := int32(4 * k * (k + 1) / 2)
		if got != want {
			t.Errorf("seed %d: quiescent Read = %d, want %d", seed, got, want)
		}
	}
}

// TestFArrayMonotoneUnderIncrements checks the linearizability-flavoured
// property that when all adds are positive, no process ever observes the
// counter decrease.
func TestFArrayMonotoneUnderIncrements(t *testing.T) {
	const k = 5
	for _, seed := range []int64{1, 13, 99} {
		r := sim.New(sim.Config{Scheduler: sched.NewRandom(seed)})
		c := NewFArray(r, "C", k)
		for s := 0; s < k; s++ {
			s := s
			r.AddProc(func(p sim.Proc) {
				for i := 0; i < 6; i++ {
					c.Add(p, s, 1)
				}
			})
		}
		r.AddProc(func(p sim.Proc) {
			prev := int32(-1)
			for i := 0; i < 60; i++ {
				v := c.Read(p)
				if v < prev {
					t.Errorf("seed %d: observed decrease %d -> %d", seed, prev, v)
				}
				prev = v
			}
		})
		if err := r.Start(); err != nil {
			t.Fatalf("Start: %v", err)
		}
		if err := r.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		r.Close()
	}
}

// TestFArrayNeverNegative checks that with inc-before-dec usage (the A_f
// pattern: C[i].add(1) ... C[i].add(-1)), readers never observe a negative
// count.
func TestFArrayNeverNegative(t *testing.T) {
	const k = 4
	for _, seed := range []int64{3, 17} {
		r := sim.New(sim.Config{Scheduler: sched.NewRandom(seed)})
		c := NewFArray(r, "C", k)
		for s := 0; s < k; s++ {
			s := s
			r.AddProc(func(p sim.Proc) {
				for i := 0; i < 5; i++ {
					c.Add(p, s, 1)
					c.Add(p, s, -1)
				}
			})
		}
		r.AddProc(func(p sim.Proc) {
			for i := 0; i < 80; i++ {
				if v := c.Read(p); v < 0 {
					t.Errorf("seed %d: negative read %d", seed, v)
				}
			}
		})
		if err := r.Start(); err != nil {
			t.Fatalf("Start: %v", err)
		}
		if err := r.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		r.Close()
	}
}

// TestFArrayRMRBounds verifies the complexity claims the paper relies on:
// Add is O(log K) steps and Read is O(1) steps/RMRs.
func TestFArrayRMRBounds(t *testing.T) {
	for _, k := range []int{1, 4, 16, 64, 256} {
		k := k
		r := sim.New(sim.Config{Protocol: sim.WriteThrough, Scheduler: sched.LowestFirst{}})
		c := NewFArray(r, "C", k)
		r.AddProc(func(p sim.Proc) {
			c.Add(p, k-1, 1)
		})
		r.AddProc(func(p sim.Proc) {
			_ = c.Read(p)
		})
		if err := r.Start(); err != nil {
			t.Fatalf("Start: %v", err)
		}
		if err := r.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		levels := 1
		for 1<<levels < k {
			levels++
		}
		// Add: leaf read+write plus <= 2 refreshes x 4 steps per level.
		addSteps := r.Account(0).TotalSteps
		if limit := 2 + 8*(levels+1); addSteps > limit {
			t.Errorf("k=%d: Add took %d steps, want <= %d (O(log K))", k, addSteps, limit)
		}
		readSteps := r.Account(1).TotalSteps
		if readSteps != 1 {
			t.Errorf("k=%d: Read took %d steps, want 1", k, readSteps)
		}
		r.Close()
	}
}

func TestCASWordSequential(t *testing.T) {
	var got int32
	runCounter(t, sim.WriteThrough, sched.LowestFirst{}, newCASWord(),
		func(c Counter) []sim.Program {
			return []sim.Program{func(p sim.Proc) {
				c.Add(p, 0, 5)
				c.Add(p, 0, -2)
				got = c.Read(p)
			}}
		})
	if got != 3 {
		t.Errorf("Read = %d, want 3", got)
	}
}

func TestCASWordConcurrent(t *testing.T) {
	const k = 6
	var got int32 = -1
	r := sim.New(sim.Config{Scheduler: sched.NewRandom(5)})
	c := NewCASWord(r, "C")
	done := r.Alloc("done", 0)
	for s := 0; s < k; s++ {
		r.AddProc(func(p sim.Proc) {
			for i := 0; i < 10; i++ {
				c.Add(p, 0, 1)
			}
			p.FetchAdd(done, 1)
		})
	}
	r.AddProc(func(p sim.Proc) {
		p.Await(done, func(x uint64) bool { return x == k })
		got = c.Read(p)
	})
	if err := r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer r.Close()
	if err := r.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != k*10 {
		t.Errorf("total = %d, want %d", got, k*10)
	}
}

func TestNewFArrayPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFArray(k=0) did not panic")
		}
	}()
	r := sim.New(sim.Config{})
	NewFArray(r, "C", 0)
}

func TestAddPanicsOnBadSlot(t *testing.T) {
	r := sim.New(sim.Config{})
	c := NewFArray(r, "C", 2)
	// The slot check fires before any memory operation, so no Proc is
	// needed to exercise it.
	for _, slot := range []int{-1, 2, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(slot=%d) did not panic", slot)
				}
			}()
			c.Add(nil, slot, 1)
		}()
	}
}

// TestFArraySequentialModelProperty drives a random op sequence against
// both the f-array (in the simulator) and a plain int model, requiring
// identical read results in single-process executions.
func TestFArraySequentialModelProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(9)
		nOps := 1 + rng.Intn(40)
		type op struct {
			slot  int
			delta int32
			read  bool
		}
		ops := make([]op, nOps)
		for i := range ops {
			ops[i] = op{slot: rng.Intn(k), delta: int32(rng.Intn(11) - 5), read: rng.Intn(3) == 0}
		}
		r := sim.New(sim.Config{Scheduler: sched.LowestFirst{}})
		c := NewFArray(r, "C", k)
		okCh := true
		r.AddProc(func(p sim.Proc) {
			var model int32
			for _, o := range ops {
				if o.read {
					if got := c.Read(p); got != model {
						okCh = false
						return
					}
				} else {
					c.Add(p, o.slot, o.delta)
					model += o.delta
				}
			}
			if got := c.Read(p); got != model {
				okCh = false
			}
		})
		if err := r.Start(); err != nil {
			return false
		}
		defer r.Close()
		if err := r.Run(); err != nil {
			return false
		}
		return okCh
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func newCellArray(k int) func(a memmodel.Allocator) Counter {
	return func(a memmodel.Allocator) Counter { return NewCellArray(a, "C", k) }
}

func TestCellArraySequential(t *testing.T) {
	for _, k := range []int{1, 2, 5, 8} {
		k := k
		var final int32 = -1
		runCounter(t, sim.WriteThrough, sched.LowestFirst{}, newCellArray(k),
			func(c Counter) []sim.Program {
				return []sim.Program{func(p sim.Proc) {
					for s := 0; s < k; s++ {
						c.Add(p, s, int32(s+1))
					}
					if got := c.Read(p); got != int32(k*(k+1)/2) {
						t.Errorf("k=%d: Read = %d", k, got)
					}
					for s := 0; s < k; s++ {
						c.Add(p, s, -int32(s+1))
					}
					final = c.Read(p)
				}}
			})
		if final != 0 {
			t.Errorf("k=%d: final = %d", k, final)
		}
	}
}

func TestCellArrayConcurrentExactTotal(t *testing.T) {
	const k = 6
	for _, seed := range []int64{2, 12} {
		var got int32 = -1
		r := sim.New(sim.Config{Scheduler: sched.NewRandom(seed)})
		c := NewCellArray(r, "C", k)
		done := r.Alloc("done", 0)
		for s := 0; s < k; s++ {
			s := s
			r.AddProc(func(p sim.Proc) {
				for i := 0; i < 4; i++ {
					c.Add(p, s, 2)
				}
				p.FetchAdd(done, 1)
			})
		}
		r.AddProc(func(p sim.Proc) {
			p.Await(done, func(x uint64) bool { return x == k })
			got = c.Read(p)
		})
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
		r.Close()
		if got != 8*k {
			t.Errorf("seed %d: total = %d, want %d", seed, got, 8*k)
		}
	}
}

// TestCellArrayCostSplit pins the mirrored complexity: O(1) add, O(K) read.
func TestCellArrayCostSplit(t *testing.T) {
	for _, k := range []int{4, 64, 256} {
		r := sim.New(sim.Config{Protocol: sim.WriteThrough, Scheduler: sched.LowestFirst{}})
		c := NewCellArray(r, "C", k)
		r.AddProc(func(p sim.Proc) { c.Add(p, k-1, 1) })
		r.AddProc(func(p sim.Proc) { _ = c.Read(p) })
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		if err := r.Run(); err != nil {
			t.Fatal(err)
		}
		if got := r.Account(0).TotalSteps; got != 2 {
			t.Errorf("k=%d: Add steps = %d, want 2", k, got)
		}
		if got := r.Account(1).TotalSteps; got != k {
			t.Errorf("k=%d: Read steps = %d, want %d", k, got, k)
		}
		r.Close()
	}
}

func TestCellArrayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCellArray(0) did not panic")
		}
	}()
	r := sim.New(sim.Config{})
	NewCellArray(r, "C", 0)
}

func TestCellArrayAddSlotRange(t *testing.T) {
	r := sim.New(sim.Config{})
	c := NewCellArray(r, "C", 2)
	for _, slot := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(slot=%d) did not panic", slot)
				}
			}()
			c.Add(nil, slot, 1)
		}()
	}
}
