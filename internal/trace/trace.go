// Package trace defines the step-event record emitted by the CC simulator.
// The awareness machinery (Definitions 1-3) and the property checkers
// (Mutual Exclusion, Bounded Exit, ...) both consume these events, either
// streamed through an observer callback or collected in a Recorder.
package trace

import (
	"fmt"

	"repro/internal/memmodel"
)

// Event describes one executed shared-memory step (or a section-transition
// pseudo-event, which is not a step of the model but is recorded so
// checkers can attribute steps to passage sections).
type Event struct {
	// Step is the global step index, starting at 0. Section transitions
	// carry the index of the next real step.
	Step int
	// Proc is the process that took the step.
	Proc int
	// Kind is the operation kind; for section transitions it is 0.
	Kind memmodel.OpKind
	// Var is the variable accessed, or NoVar for section transitions.
	Var memmodel.Var
	// Before and After are the variable's value before and after the step.
	Before, After uint64
	// Arg is the operation argument: the value written, the CAS new value,
	// or the FAA delta. Zero for reads.
	Arg uint64
	// CASExpected is the expected value of a CAS step.
	CASExpected uint64
	// Swapped reports whether a CAS step applied its swap.
	Swapped bool
	// Trivial reports whether the step left the variable's value unchanged
	// (the paper's "trivial step").
	Trivial bool
	// RMR reports whether the step incurred a remote memory reference
	// under the configured coherence protocol.
	RMR bool
	// Section is the section the process was in when it took the step.
	// For section-transition events it is the *new* section.
	Section memmodel.Section
	// SectionChange marks section-transition pseudo-events.
	SectionChange bool
}

// IsReading reports whether the event is a reading step in the paper's
// sense: a read, an await re-check, or a CAS (trivial or not). Section
// transitions are not steps.
func (e Event) IsReading() bool {
	if e.SectionChange {
		return false
	}
	return e.Kind.Reading()
}

// IsWriting reports whether the event is a writing step: a write, a
// value-changing CAS, or a fetch-and-add.
func (e Event) IsWriting() bool {
	if e.SectionChange {
		return false
	}
	switch e.Kind {
	case memmodel.OpWrite, memmodel.OpFetchAdd:
		return true
	case memmodel.OpCAS:
		return e.Swapped
	default:
		return false
	}
}

// String renders the event for debugging output.
func (e Event) String() string {
	if e.SectionChange {
		return fmt.Sprintf("#%d p%d -> %s", e.Step, e.Proc, e.Section)
	}
	rmr := ""
	if e.RMR {
		rmr = " RMR"
	}
	switch e.Kind {
	case memmodel.OpCAS:
		return fmt.Sprintf("#%d p%d cas v%d exp=%d new=%d prev=%d swapped=%t%s [%s]",
			e.Step, e.Proc, e.Var, e.CASExpected, e.Arg, e.Before, e.Swapped, rmr, e.Section)
	case memmodel.OpWrite:
		return fmt.Sprintf("#%d p%d write v%d %d->%d%s [%s]",
			e.Step, e.Proc, e.Var, e.Before, e.Arg, rmr, e.Section)
	default:
		return fmt.Sprintf("#%d p%d %s v%d val=%d%s [%s]",
			e.Step, e.Proc, e.Kind, e.Var, e.Before, rmr, e.Section)
	}
}

// Recorder accumulates events in memory. The zero value is ready to use.
// A nil *Recorder is a valid no-op sink.
type Recorder struct {
	events []Event
}

// Observe appends an event; it implements the simulator's observer hook.
func (r *Recorder) Observe(e Event) {
	if r == nil {
		return
	}
	r.events = append(r.events, e)
}

// Events returns the recorded events in execution order. The returned slice
// is owned by the Recorder; callers must not mutate it.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Reset discards all recorded events, retaining capacity.
func (r *Recorder) Reset() {
	if r != nil {
		r.events = r.events[:0]
	}
}

// Steps returns only the real shared-memory steps (excluding section
// transitions), in order.
func (r *Recorder) Steps() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.events))
	for _, e := range r.events {
		if !e.SectionChange {
			out = append(out, e)
		}
	}
	return out
}
