package trace

import (
	"strings"
	"testing"

	"repro/internal/memmodel"
)

func TestIsReadingWriting(t *testing.T) {
	cases := []struct {
		name    string
		e       Event
		reading bool
		writing bool
	}{
		{"read", Event{Kind: memmodel.OpRead}, true, false},
		{"write", Event{Kind: memmodel.OpWrite}, false, true},
		{"faa", Event{Kind: memmodel.OpFetchAdd}, true, true},
		{"cas-success", Event{Kind: memmodel.OpCAS, Swapped: true}, true, true},
		{"cas-fail", Event{Kind: memmodel.OpCAS, Swapped: false}, true, false},
		{"await", Event{Kind: memmodel.OpAwait}, true, false},
		{"section", Event{SectionChange: true, Kind: memmodel.OpRead}, false, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.e.IsReading(); got != c.reading {
				t.Errorf("IsReading = %v, want %v", got, c.reading)
			}
			if got := c.e.IsWriting(); got != c.writing {
				t.Errorf("IsWriting = %v, want %v", got, c.writing)
			}
		})
	}
}

func TestRecorder(t *testing.T) {
	var r Recorder
	if r.Len() != 0 {
		t.Fatal("fresh recorder not empty")
	}
	r.Observe(Event{Step: 0, Proc: 1, Kind: memmodel.OpRead})
	r.Observe(Event{Step: 1, Proc: 2, SectionChange: true, Section: memmodel.SecCS})
	r.Observe(Event{Step: 1, Proc: 2, Kind: memmodel.OpWrite})
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	steps := r.Steps()
	if len(steps) != 2 {
		t.Fatalf("Steps len = %d, want 2", len(steps))
	}
	if steps[0].Kind != memmodel.OpRead || steps[1].Kind != memmodel.OpWrite {
		t.Fatal("Steps returned wrong events")
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("Reset did not clear recorder")
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Observe(Event{}) // must not panic
	if r.Len() != 0 || r.Events() != nil || r.Steps() != nil {
		t.Fatal("nil recorder returned non-empty data")
	}
	r.Reset() // must not panic
}

func TestEventString(t *testing.T) {
	cases := []struct {
		e    Event
		want []string
	}{
		{
			Event{Step: 3, Proc: 1, Kind: memmodel.OpWrite, Var: 2, Before: 0, Arg: 7, RMR: true, Section: memmodel.SecEntry},
			[]string{"p1", "write", "v2", "0->7", "RMR", "entry"},
		},
		{
			Event{Step: 4, Proc: 0, Kind: memmodel.OpCAS, Var: 5, CASExpected: 1, Arg: 2, Before: 1, Swapped: true, Section: memmodel.SecExit},
			[]string{"cas", "v5", "swapped=true", "exit"},
		},
		{
			Event{Step: 9, Proc: 2, SectionChange: true, Section: memmodel.SecCS},
			[]string{"p2", "cs"},
		},
		{
			Event{Step: 1, Proc: 3, Kind: memmodel.OpRead, Var: 0, Before: 9, Section: memmodel.SecCS},
			[]string{"read", "val=9"},
		},
	}
	for _, c := range cases {
		s := c.e.String()
		for _, w := range c.want {
			if !strings.Contains(s, w) {
				t.Errorf("String() = %q missing %q", s, w)
			}
		}
	}
}
