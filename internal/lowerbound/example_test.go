package lowerbound_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lowerbound"
)

// Example runs the Theorem-5 adversarial construction against A_f with
// f(n) = 1 and n = 27 readers: the iteration count r witnesses the
// Omega(log3(n/f)) lower bound, and the writer ends aware of all readers
// (Lemma 4).
func Example() {
	res, err := lowerbound.Run(core.New(core.FOne), 27, lowerbound.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("iterations r = %d (log3(27/1) = %.0f)\n", res.R, lowerbound.Log3Bound(27, 1))
	fmt.Printf("writer aware of %d/27 readers\n", res.WriterAwareReaders)
	fmt.Printf("Lemma 1 violations: %d\n", res.Lemma1Violations)
	// Output:
	// iterations r = 8 (log3(27/1) = 3)
	// writer aware of 27/27 readers
	// Lemma 1 violations: 0
}
