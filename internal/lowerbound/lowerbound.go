// Package lowerbound implements the adversarial execution construction of
// the paper's Theorem 5 (and its Figure 1) as an executable driver: it runs
// a real reader-writer lock algorithm through the three staged fragments
//
//	E1: all n readers execute their entry sections and stop inside the CS;
//	E2: all readers execute their exit sections, scheduled in iterations —
//	    readers run freely while their next step is non-expanding, and once
//	    every remaining reader is poised at an expanding step the whole
//	    batch is released in Lemma 2's order (value-preserving steps, then
//	    writes, then value-changing CASes);
//	E3: the single writer runs solo through its entry section into the CS.
//
// The driver measures exactly the quantities the proof bounds: the number
// of iterations r (the theorem shows r = Omega(log3(n/f(n)))), the number
// of expanding steps (hence RMRs, by Lemma 1) some reader performs in its
// exit section, the per-round growth of the maximum awareness/familiarity
// cardinality (at most 3x, by Lemma 2), the writer's entry-section RMRs,
// and Lemma 4's conclusion that the writer becomes aware of every reader.
package lowerbound

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/awareness"
	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config parameterizes the adversary.
type Config struct {
	// Protocol is the coherence protocol (default write-through).
	Protocol sim.Protocol
	// StepBudget bounds the total steps across all phases (default
	// 200*n + 100000).
	StepBudget int
	// IterationCap aborts pathological executions (default
	// 8*log2(n) + 64); the theorem predicts Theta(log n) iterations at
	// most, so hitting the cap indicates a broken algorithm.
	IterationCap int
}

// Result reports the measured quantities of one constructed execution.
type Result struct {
	// Algorithm is the algorithm's name; N the number of readers.
	Algorithm string
	N         int
	// R is the number of expanding-batch iterations in E2. Theorem 5:
	// R = Omega(log3(n/f(n))) for any read/write/CAS algorithm whose
	// writer performs O(f(n)) entry RMRs.
	R int
	// MaxReaderExitExpanding is the largest number of expanding steps a
	// single reader executed during its exit section; by Lemma 1 each
	// incurred an RMR.
	MaxReaderExitExpanding int
	// MaxReaderExitRMR / MeanReaderExitRMR summarize the readers' actual
	// exit-section RMR counts.
	MaxReaderExitRMR  int
	MeanReaderExitRMR float64
	// WriterEntryRMR and WriterEntrySteps are the writer's E3 entry costs.
	WriterEntryRMR   int
	WriterEntrySteps int
	// WriterAwareReaders counts the readers in the writer's awareness set
	// after E3; Lemma 4 requires all n.
	WriterAwareReaders int
	// MaxRoundGrowth is the largest per-iteration growth factor of
	// M = max set cardinality; Lemma 2 bounds it by 3.
	MaxRoundGrowth float64
	// Lemma1Violations counts expanding steps that incurred no RMR
	// (must be zero).
	Lemma1Violations int
	// E2Steps is the total number of steps in fragment E2.
	E2Steps int
}

// Log3Bound returns the reference value log3(n/f) the theorem compares R
// against, for a given writer group count f.
func Log3Bound(n, f int) float64 {
	if f < 1 {
		f = 1
	}
	ratio := float64(n) / float64(f)
	if ratio < 1 {
		ratio = 1
	}
	return math.Log(ratio) / math.Log(3)
}

// driver holds the staged execution state.
type driver struct {
	r    *sim.Runner
	ctrl *sched.Controlled
	tr   *awareness.Tracker
	n    int
	cfg  Config
}

// Run constructs the Theorem-5 execution for alg with n readers and one
// writer. The algorithm instance must be fresh. Algorithms whose readers
// cannot all occupy the CS simultaneously (no Concurrent Entering, e.g. a
// mutex-based RW lock) cannot complete fragment E1 and yield an error.
func Run(alg memmodel.Algorithm, n int, cfg Config) (*Result, error) {
	if n < 1 {
		return nil, errors.New("lowerbound: need at least one reader")
	}
	if cfg.Protocol == 0 {
		cfg.Protocol = sim.WriteThrough
	}
	if cfg.StepBudget == 0 {
		cfg.StepBudget = 200*n + 100_000
	}
	if cfg.IterationCap == 0 {
		cfg.IterationCap = 8*int(math.Log2(float64(n)+1)) + 64
	}

	d := &driver{ctrl: &sched.Controlled{}, n: n, cfg: cfg}
	d.r = sim.New(sim.Config{
		Protocol:  cfg.Protocol,
		Scheduler: d.ctrl,
		MaxSteps:  cfg.StepBudget,
		Observer: func(e trace.Event) {
			if d.tr != nil {
				d.tr.Observe(e)
			}
		},
	})
	defer d.r.Close()

	if err := alg.Init(d.r, n, 1); err != nil {
		return nil, fmt.Errorf("lowerbound: init: %w", err)
	}

	for rid := 0; rid < n; rid++ {
		rid := rid
		d.r.AddProc(func(p sim.Proc) {
			p.Section(memmodel.SecEntry)
			alg.ReaderEnter(p, rid)
			p.Section(memmodel.SecCS)
			p.Barrier() // end of E1: hold the CS until E2 starts
			p.Section(memmodel.SecExit)
			alg.ReaderExit(p, rid)
			p.Section(memmodel.SecRemainder)
		})
	}
	writerID := d.r.AddProc(func(p sim.Proc) {
		p.Barrier() // released at the start of E3
		p.Section(memmodel.SecEntry)
		alg.WriterEnter(p, 0)
		p.Section(memmodel.SecCS)
		p.Barrier() // hold the CS: the measurement ends here
		p.Section(memmodel.SecExit)
		alg.WriterExit(p, 0)
		p.Section(memmodel.SecRemainder)
	})

	if err := d.r.Start(); err != nil {
		return nil, err
	}
	// The tracker exists from the start (Observer needs it) but is Reset
	// at the E2 fragment boundary per the paper's fragment-relative sets.
	d.tr = awareness.New(n+1, d.r.NumVars())

	// ---- E1: readers enter the CS one after another. ----
	for rid := 0; rid < n; rid++ {
		if err := d.driveToBarrier(rid); err != nil {
			return nil, fmt.Errorf("lowerbound: E1 reader %d: %w", rid, err)
		}
	}

	// ---- E2: staged exit. ----
	d.tr.Reset()
	e2Start := d.r.StepCount()
	for rid := 0; rid < n; rid++ {
		if err := d.r.ReleaseBarrier(rid); err != nil {
			return nil, fmt.Errorf("lowerbound: releasing reader %d: %w", rid, err)
		}
	}

	res := &Result{Algorithm: alg.Name(), N: n}
	for !d.allReadersDone() {
		// Drain: run every reader while its next step is non-expanding.
		// Repeat passes until a full pass makes no progress (steps by one
		// reader can flip another's classification).
		for {
			progressed := false
			for rid := 0; rid < n; rid++ {
				for {
					op, poised := d.r.PendingOf(rid)
					if !poised || d.tr.IsExpanding(op) {
						break
					}
					if err := d.step(rid); err != nil {
						return nil, fmt.Errorf("lowerbound: E2 drain reader %d: %w", rid, err)
					}
					progressed = true
				}
			}
			if !progressed {
				break
			}
		}
		if d.allReadersDone() {
			break
		}

		// Batch: release all poised expanding steps in Lemma 2's order.
		batch := d.expandingBatch()
		if len(batch) == 0 {
			// Remaining readers are parked on awaits with no writer to
			// wake them: the exit section is not wait-free.
			return nil, errors.New("lowerbound: E2 stalled: readers awaiting in their exit section (Bounded Exit violated)")
		}
		mBefore := d.tr.M()
		for _, rid := range batch {
			if _, poised := d.r.PendingOf(rid); !poised {
				continue
			}
			if err := d.step(rid); err != nil {
				return nil, fmt.Errorf("lowerbound: E2 batch reader %d: %w", rid, err)
			}
		}
		res.R++
		if res.R > d.cfg.IterationCap {
			return nil, fmt.Errorf("lowerbound: iteration cap %d exceeded", d.cfg.IterationCap)
		}
		growth := float64(d.tr.M()) / float64(max(mBefore, 1))
		if growth > res.MaxRoundGrowth {
			res.MaxRoundGrowth = growth
		}
	}
	res.E2Steps = d.r.StepCount() - e2Start

	// ---- E3: the writer runs solo into the CS. ----
	if err := d.r.ReleaseBarrier(writerID); err != nil {
		return nil, fmt.Errorf("lowerbound: releasing writer: %w", err)
	}
	if err := d.driveToBarrier(writerID); err != nil {
		return nil, fmt.Errorf("lowerbound: E3 writer: %w", err)
	}

	// ---- Measurements. ----
	totalExit := 0
	for rid := 0; rid < n; rid++ {
		acct := d.r.Account(rid)
		if len(acct.Passages) != 1 {
			return nil, fmt.Errorf("lowerbound: reader %d completed %d passages", rid, len(acct.Passages))
		}
		exitRMR := acct.Passages[0].ExitRMR
		totalExit += exitRMR
		if exitRMR > res.MaxReaderExitRMR {
			res.MaxReaderExitRMR = exitRMR
		}
		if exp := d.tr.ExpandingSteps(rid); exp > res.MaxReaderExitExpanding {
			res.MaxReaderExitExpanding = exp
		}
	}
	res.MeanReaderExitRMR = float64(totalExit) / float64(n)

	wAcct := d.r.Account(writerID)
	res.WriterEntryRMR = wAcct.SectionRMR[memmodel.SecEntry]
	res.WriterEntrySteps = wAcct.SectionSteps[memmodel.SecEntry]
	for rid := 0; rid < n; rid++ {
		if d.tr.AW(writerID).Contains(rid) {
			res.WriterAwareReaders++
		}
	}
	res.Lemma1Violations = len(d.tr.Lemma1Violations())
	return res, nil
}

// step executes one step of process id.
func (d *driver) step(id int) error {
	d.ctrl.Target = id
	progressed, err := d.r.Step()
	if err != nil {
		return err
	}
	if !progressed {
		return fmt.Errorf("process %d cannot step", id)
	}
	return nil
}

// driveToBarrier runs process id solo until it parks at its barrier.
func (d *driver) driveToBarrier(id int) error {
	for {
		for _, b := range d.r.AtBarrier() {
			if b == id {
				return nil
			}
		}
		if _, poised := d.r.PendingOf(id); !poised {
			return fmt.Errorf("process %d blocked before reaching its barrier (awaiting: %v)", id, d.r.Awaiting())
		}
		if err := d.step(id); err != nil {
			return err
		}
	}
}

// allReadersDone reports whether every reader finished its passage.
func (d *driver) allReadersDone() bool {
	for rid := 0; rid < d.n; rid++ {
		if len(d.r.Account(rid).Passages) == 0 {
			return false
		}
	}
	return true
}

// expandingBatch collects the poised (necessarily expanding, after a
// completed drain) reader steps and orders them per Lemma 2: steps that
// preserve the accessed variable's value first, then writes, then
// value-changing CASes; ties broken by process id for determinism.
func (d *driver) expandingBatch() []int {
	type entry struct {
		rid   int
		class awareness.Class
	}
	var entries []entry
	for rid := 0; rid < d.n; rid++ {
		op, poised := d.r.PendingOf(rid)
		if !poised {
			continue
		}
		entries = append(entries, entry{rid, awareness.Classify(op, d.r.Value(op.Var))})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].class != entries[j].class {
			return entries[i].class < entries[j].class
		}
		return entries[i].rid < entries[j].rid
	})
	out := make([]int, len(entries))
	for i, e := range entries {
		out[i] = e.rid
	}
	return out
}
