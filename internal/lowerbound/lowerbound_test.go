package lowerbound

import (
	"math"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/sim"
)

func TestLog3Bound(t *testing.T) {
	cases := []struct {
		n, f int
		want float64
	}{
		{27, 1, 3},
		{9, 1, 2},
		{81, 3, 3},
		{8, 8, 0},
		{8, 16, 0}, // clamped
		{1, 0, 0},  // f clamped to 1
	}
	for _, c := range cases {
		if got := Log3Bound(c.n, c.f); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Log3Bound(%d,%d) = %v, want %v", c.n, c.f, got, c.want)
		}
	}
}

func TestRunRejectsZeroReaders(t *testing.T) {
	if _, err := Run(core.New(core.FOne), 0, Config{}); err == nil {
		t.Fatal("n=0 accepted")
	}
}

// TestAdversaryOnAFBasics runs the full construction against A_f and
// checks the structural facts the proof relies on.
func TestAdversaryOnAFBasics(t *testing.T) {
	for _, f := range []core.F{core.FOne, core.FLog, core.FLinear} {
		for _, n := range []int{4, 16, 64} {
			res, err := Run(core.New(f), n, Config{})
			if err != nil {
				t.Fatalf("af-%s n=%d: %v", f.Name, n, err)
			}
			if res.Lemma1Violations != 0 {
				t.Errorf("af-%s n=%d: %d Lemma-1 violations", f.Name, n, res.Lemma1Violations)
			}
			// Lemma 4: the writer must become aware of every reader.
			if res.WriterAwareReaders != n {
				t.Errorf("af-%s n=%d: writer aware of %d/%d readers (Lemma 4)",
					f.Name, n, res.WriterAwareReaders, n)
			}
			// Lemma 2: per-round growth of M bounded by 3.
			if res.MaxRoundGrowth > 3.0+1e-9 {
				t.Errorf("af-%s n=%d: round growth %.2f > 3 (Lemma 2)",
					f.Name, n, res.MaxRoundGrowth)
			}
			if res.R < 0 || res.MaxReaderExitRMR < 0 {
				t.Errorf("af-%s n=%d: nonsensical result %+v", f.Name, n, res)
			}
		}
	}
}

// TestTradeoffLowerBoundShape is the quantitative heart of Theorem 5: under
// the adversary, writer entry RMRs times 3^(reader exit RMRs) must be at
// least ~n/const — i.e. at least one side pays. We check the specific
// predictions per parameterization.
func TestTradeoffLowerBoundShape(t *testing.T) {
	const n = 64
	// f = 1: one group. The reader exit must cost Omega(log n) expanding
	// steps under the adversary... for A_f the cost shows up as the
	// counter-tree climb: R should be at least ~log3(K) = log3(64) ~ 3.8.
	res1, err := Run(core.New(core.FOne), n, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if lb := Log3Bound(n, 1); float64(res1.R) < lb-1 {
		t.Errorf("af-1 n=%d: R = %d below log3(n/f) - 1 = %.1f", n, res1.R, lb-1)
	}
	// f = n: singleton groups. The writer pays Theta(n) instead.
	resN, err := Run(core.New(core.FLinear), n, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if resN.WriterEntryRMR < n {
		t.Errorf("af-n n=%d: writer entry RMR = %d, want >= n", n, resN.WriterEntryRMR)
	}
	// And the product-form tradeoff: for every parameterization,
	// writerRMR * 3^maxReaderExitExpanding >= n / 16 (a loose constant).
	for _, f := range core.StandardFs {
		res, err := Run(core.New(f), n, Config{})
		if err != nil {
			t.Fatalf("af-%s: %v", f.Name, err)
		}
		product := float64(res.WriterEntryRMR) * math.Pow(3, float64(res.MaxReaderExitExpanding))
		if product < float64(n)/16 {
			t.Errorf("af-%s n=%d: writer %d RMRs x 3^%d expanding = %.0f < n/16 (tradeoff violated?)",
				f.Name, n, res.WriterEntryRMR, res.MaxReaderExitExpanding, product)
		}
	}
}

// TestIterationsGrowWithN: for the f=1 endpoint, R must grow with n
// (Theta(log n)); between n=9 and n=729 it must increase.
func TestIterationsGrowWithN(t *testing.T) {
	rAt := func(n int) int {
		res, err := Run(core.New(core.FOne), n, Config{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		return res.R
	}
	small, large := rAt(9), rAt(243)
	if large <= small {
		t.Errorf("R did not grow with n: R(9)=%d, R(243)=%d", small, large)
	}
}

// TestAdversaryOnBaselines: the construction also runs on the baselines
// that provide concurrent reading.
func TestAdversaryOnBaselines(t *testing.T) {
	const n = 32
	// flag-array: O(1) reader exits, Theta(n) writer entry.
	resFA, err := Run(baseline.NewFlagArray(), n, Config{})
	if err != nil {
		t.Fatalf("flag-array: %v", err)
	}
	if resFA.WriterEntryRMR < n {
		t.Errorf("flag-array: writer entry RMR = %d, want >= n=%d", resFA.WriterEntryRMR, n)
	}
	if resFA.MaxReaderExitRMR > 3 {
		t.Errorf("flag-array: reader exit RMR = %d, want <= 3", resFA.MaxReaderExitRMR)
	}
	if resFA.WriterAwareReaders != n {
		t.Errorf("flag-array: writer aware of %d/%d readers", resFA.WriterAwareReaders, n)
	}

	// centralized: single word. All exits funnel through one variable.
	resC, err := Run(baseline.NewCentralized(), n, Config{})
	if err != nil {
		t.Fatalf("centralized: %v", err)
	}
	if resC.WriterAwareReaders != n {
		t.Errorf("centralized: writer aware of %d/%d readers", resC.WriterAwareReaders, n)
	}
	if resC.Lemma1Violations != 0 {
		t.Errorf("centralized: %d Lemma-1 violations", resC.Lemma1Violations)
	}

	// faa-phasefair uses FAA: the tradeoff does not apply, and indeed both
	// sides stay constant.
	resPF, err := Run(baseline.NewPhaseFair(), n, Config{})
	if err != nil {
		t.Fatalf("faa-phasefair: %v", err)
	}
	if resPF.MaxReaderExitRMR > 2 || resPF.WriterEntryRMR > 8 {
		t.Errorf("faa-phasefair: exit %d / writer %d, want constants (FAA escapes the tradeoff)",
			resPF.MaxReaderExitRMR, resPF.WriterEntryRMR)
	}
}

// TestMutexRWCannotBuildE1: without Concurrent Entering, fragment E1 is
// infeasible and the driver must fail cleanly.
func TestMutexRWCannotBuildE1(t *testing.T) {
	_, err := Run(baseline.NewMutexRW(), 4, Config{})
	if err == nil {
		t.Fatal("mutex-rw completed E1, which requires concurrent readers")
	}
	if !strings.Contains(err.Error(), "E1") {
		t.Errorf("error %q does not identify the E1 phase", err)
	}
}

// TestWriteBackProtocol: the construction holds under write-back too.
func TestWriteBackProtocol(t *testing.T) {
	res, err := Run(core.New(core.FLog), 32, Config{Protocol: sim.WriteBack})
	if err != nil {
		t.Fatal(err)
	}
	if res.WriterAwareReaders != 32 || res.Lemma1Violations != 0 {
		t.Errorf("write-back: %+v", res)
	}
}

// TestDeterministic: two runs produce identical results.
func TestDeterministic(t *testing.T) {
	a, err := Run(core.New(core.FSqrt), 25, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(core.New(core.FSqrt), 25, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("nondeterministic adversary: %+v vs %+v", a, b)
	}
}

// TestLemma2BoundIsTight: the Courtois reader-preference lock drives the
// per-round awareness growth to exactly 3.0 — Lemma 2's bound is attained,
// not just respected, by real algorithms (its batch mixes value-preserving
// steps, writes and CASes on the shared readcount word).
func TestLemma2BoundIsTight(t *testing.T) {
	res, err := Run(baseline.NewCourtoisR(), 27, Config{
		IterationCap: 200,
		StepBudget:   500_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxRoundGrowth > 3.0+1e-9 {
		t.Fatalf("growth %.2f exceeds Lemma 2's bound", res.MaxRoundGrowth)
	}
	if res.MaxRoundGrowth < 3.0-1e-9 {
		t.Errorf("growth %.2f — expected the Courtois lock to attain the 3.0 bound exactly", res.MaxRoundGrowth)
	}
	if res.Lemma1Violations != 0 || res.WriterAwareReaders != 27 {
		t.Errorf("lemma checks failed: %+v", res)
	}
}

// TestAblationDestroysUpperBoundUnderAdversary: with the CAS-word counter
// ablation, A_f's reader exit is no longer O(log K) worst-case — the
// adversary drives it toward Theta(n), like the centralized lock. The
// paper's f-array is what makes the upper bound schedule-robust.
func TestAblationDestroysUpperBoundUnderAdversary(t *testing.T) {
	const n = 81
	tree, err := Run(core.New(core.FOne), n, Config{})
	if err != nil {
		t.Fatal(err)
	}
	word, err := Run(core.NewWithCounter(core.FOne, core.CounterCASWord), n, Config{
		IterationCap: 4*n + 64,
		StepBudget:   200_000 + 4*n*n,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The word's worst case is Theta(n) — exactly n at this size — while
	// the tree stays ~4*log2(n).
	if word.MaxReaderExitRMR < n {
		t.Errorf("cas-word adversarial exit RMR = %d, want >= n = %d", word.MaxReaderExitRMR, n)
	}
	if word.MaxReaderExitRMR < 2*tree.MaxReaderExitRMR {
		t.Errorf("cas-word adversarial exit RMR (%d) should dwarf the f-array's (%d)",
			word.MaxReaderExitRMR, tree.MaxReaderExitRMR)
	}
	if word.Lemma1Violations != 0 || word.WriterAwareReaders != n {
		t.Errorf("lemma checks failed for the ablation: %+v", word)
	}
}
