package baseline

import (
	"testing"

	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/spec"
)

func classics() []func() memmodel.Algorithm {
	return []func() memmodel.Algorithm{
		func() memmodel.Algorithm { return NewBRLock() },
		func() memmodel.Algorithm { return NewCourtoisR() },
		func() memmodel.Algorithm { return NewCourtoisW() },
	}
}

// TestClassicPropertiesGrid: mutual exclusion and completion for the
// classic baselines across populations, protocols and seeds.
func TestClassicPropertiesGrid(t *testing.T) {
	type popCase struct{ n, m int }
	pops := []popCase{{1, 1}, {2, 1}, {4, 2}, {3, 3}}
	for _, mk := range classics() {
		for _, pop := range pops {
			for _, protocol := range []sim.Protocol{sim.WriteThrough, sim.WriteBack} {
				for _, seed := range []int64{1, 2, 3} {
					alg := mk()
					rep := spec.Run(alg, spec.Scenario{
						NReaders: pop.n, NWriters: pop.m,
						ReaderPassages: 3, WriterPassages: 2,
						Protocol:  protocol,
						Scheduler: sched.NewRandom(seed),
						CSReads:   2,
					})
					if !rep.OK() {
						t.Errorf("%s n=%d m=%d %v seed=%d:\n%s",
							alg.Name(), pop.n, pop.m, protocol, seed, rep.Failures())
					}
				}
			}
		}
	}
}

// TestClassicReadersOverlap: all three allow readers in the CS together.
// The Courtois entry prologue is ~10 steps of lock traffic, so the CS must
// be long enough for a lockstep schedule to overlap passages.
func TestClassicReadersOverlap(t *testing.T) {
	for _, mk := range classics() {
		alg := mk()
		rep := spec.Run(alg, spec.Scenario{
			NReaders: 5, NWriters: 1,
			ReaderPassages: 2, WriterPassages: 0,
			Scheduler: sched.NewRoundRobin(),
			CSReads:   25,
		})
		if !rep.OK() {
			t.Fatalf("%s: %s", alg.Name(), rep.Failures())
		}
		if rep.MaxConcurrentReaders < 2 {
			t.Errorf("%s: MaxConcurrentReaders = %d", alg.Name(), rep.MaxConcurrentReaders)
		}
	}
}

// TestBRLockCostSplit: O(1) readers, Theta(n) writer sweep.
func TestBRLockCostSplit(t *testing.T) {
	cost := func(n int) (reader, writer int) {
		rep := spec.Run(NewBRLock(), spec.Scenario{
			NReaders: n, NWriters: 1,
			ReaderPassages: 1, WriterPassages: 1,
			Scheduler: sched.NewSticky(),
		})
		if !rep.OK() {
			t.Fatalf("n=%d: %s", n, rep.Failures())
		}
		return rep.MaxReaderPassage.RMR(), rep.MaxWriterPassage.RMR()
	}
	r8, w8 := cost(8)
	r128, w128 := cost(128)
	if r128 != r8 {
		t.Errorf("brlock reader RMR grew: %d -> %d", r8, r128)
	}
	if w128 < 10*w8/2 {
		t.Errorf("brlock writer sweep not linear: %d -> %d over 16x n", w8, w128)
	}
}

// TestCourtoisRWriterStarvesUnderReaders: reader preference means a writer
// cannot enter while the readcount never reaches zero. Staged via biased
// scheduling: readers run first and overlap, writer steps only when
// readers block or finish.
func TestCourtoisRReaderPreferenceShape(t *testing.T) {
	// Behavioural check: with heavy reader traffic and one writer, the
	// run still completes (finite passages) — preference is about
	// priority, not deadlock.
	for _, seed := range []int64{3, 7} {
		rep := spec.Run(NewCourtoisR(), spec.Scenario{
			NReaders: 6, NWriters: 1,
			ReaderPassages: 4, WriterPassages: 2,
			Scheduler: sched.NewRandom(seed),
			CSReads:   1,
		})
		if !rep.OK() {
			t.Errorf("seed %d: %s", seed, rep.Failures())
		}
	}
}

// TestCourtoisWWriterPreference: a staged schedule where a writer
// announces itself while a reader holds the CS; a second reader arriving
// afterwards must NOT enter before the writer (it is held at the r gate).
func TestCourtoisWWriterPreference(t *testing.T) {
	ctrl := &sched.Controlled{}
	r := sim.New(sim.Config{Scheduler: ctrl})
	alg := NewCourtoisW()
	if err := alg.Init(r, 2, 1); err != nil {
		t.Fatal(err)
	}
	// r0 holds the CS; w announces and blocks on w-lock; r1 arrives and
	// must block at the gate; r0 leaves; w enters before r1.
	mkReader := func(rid int) sim.Program {
		return func(p sim.Proc) {
			p.Barrier()
			p.Section(memmodel.SecEntry)
			alg.ReaderEnter(p, rid)
			p.Section(memmodel.SecCS)
			p.Barrier()
			p.Section(memmodel.SecExit)
			alg.ReaderExit(p, rid)
			p.Section(memmodel.SecRemainder)
		}
	}
	r.AddProc(mkReader(0))
	r.AddProc(mkReader(1))
	r.AddProc(func(p sim.Proc) {
		p.Barrier()
		p.Section(memmodel.SecEntry)
		alg.WriterEnter(p, 0)
		p.Section(memmodel.SecCS)
		p.Barrier()
		p.Section(memmodel.SecExit)
		alg.WriterExit(p, 0)
		p.Section(memmodel.SecRemainder)
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	step := func(id int) {
		t.Helper()
		ctrl.Target = id
		if ok, err := r.Step(); err != nil || !ok {
			t.Fatalf("step p%d: %v", id, err)
		}
	}
	atBarrier := func(id int) bool {
		for _, b := range r.AtBarrier() {
			if b == id {
				return true
			}
		}
		return false
	}
	drive := func(id int, stopAtBarrier bool) {
		t.Helper()
		for i := 0; i < 100_000; i++ {
			if stopAtBarrier && atBarrier(id) {
				return
			}
			if _, poised := r.PendingOf(id); !poised {
				return
			}
			step(id)
		}
		t.Fatalf("p%d did not settle", id)
	}
	release := func(id int) {
		t.Helper()
		if err := r.ReleaseBarrier(id); err != nil {
			t.Fatal(err)
		}
	}

	release(0)
	drive(0, true) // r0 into the CS
	if !atBarrier(0) {
		t.Fatal("r0 not in CS")
	}
	release(2)
	drive(2, true) // writer announces, blocks on the resource lock
	if atBarrier(2) {
		t.Fatal("writer entered alongside r0")
	}
	release(1)
	drive(1, true) // r1 must be held at the gate
	if atBarrier(1) {
		t.Fatal("writer preference violated: r1 entered after a writer announced")
	}
	release(0)
	drive(0, false) // r0 exits fully
	drive(2, true)  // writer proceeds into the CS
	if !atBarrier(2) {
		t.Fatal("writer did not enter after the last reader left")
	}
	drive(1, true)
	if atBarrier(1) {
		t.Fatal("r1 entered while the writer held the CS")
	}
	// Writer exits; r1 finally enters and completes.
	release(2)
	drive(2, false)
	drive(1, true)
	if !atBarrier(1) {
		t.Fatal("r1 never entered")
	}
	release(1)
	drive(1, false)
}

// TestClassicWritersOnly: all classics degrade to mutexes among writers.
func TestClassicWritersOnly(t *testing.T) {
	for _, mk := range classics() {
		alg := mk()
		rep := spec.Run(alg, spec.Scenario{
			NReaders: 0, NWriters: 3,
			ReaderPassages: 0, WriterPassages: 3,
			Scheduler: sched.NewRandom(5),
		})
		if !rep.OK() {
			t.Errorf("%s: %s", alg.Name(), rep.Failures())
		}
	}
}
