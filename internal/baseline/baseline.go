// Package baseline implements the reader-writer lock algorithms the paper
// positions A_f against (Sections 1 and 6), all on the same abstract memory
// model so the experiments can compare RMR costs directly:
//
//   - Centralized: the folklore single-word lock (reader count + writer
//     bit manipulated with CAS). O(1) solo steps, but concurrent readers
//     CAS the same word, so contention produces invalidation storms and
//     unbounded retries (it is lock-free, not wait-free, for readers).
//   - FlagArray: one flag per reader plus a writer gate - the DSM-style
//     design at the f(n)=n endpoint done naively: O(1) readers,
//     Theta(n)-RMR writers that scan every flag.
//   - PhaseFair: a fetch-and-add ticket lock in the style of Brandenburg &
//     Anderson's PF-T, standing in for the Bhatt-Jayanti constant-RMR FAA
//     lock the paper cites: once FAA is allowed, the read/write/CAS
//     tradeoff of Theorem 5 no longer applies.
//   - MutexRW: the degenerate baseline where readers also take the mutex.
//     It forfeits Concurrent Entering, which the spec tests use as a
//     negative control for the property checker.
package baseline

import (
	"fmt"
	"math"

	"repro/internal/memmodel"
	"repro/internal/mutex"
)

// Centralized is the single-word CAS reader-writer lock. Bit 63 marks a
// writer holding (or acquiring) the lock; the low bits count readers in
// their passage.
type Centralized struct {
	state memmodel.Var
}

var (
	_ memmodel.Algorithm    = (*Centralized)(nil)
	_ memmodel.TryAlgorithm = (*Centralized)(nil)
)

const centralWriterBit = uint64(1) << 63

// NewCentralized returns an uninitialized centralized lock.
func NewCentralized() *Centralized { return &Centralized{} }

// Name implements memmodel.Algorithm.
func (c *Centralized) Name() string { return "centralized" }

// Init implements memmodel.Algorithm.
func (c *Centralized) Init(a memmodel.Allocator, _, _ int) error {
	c.state = a.Alloc("state", 0)
	return nil
}

// ReaderEnter spins until no writer is present, then registers with a CAS.
func (c *Centralized) ReaderEnter(p memmodel.Proc, _ int) {
	for {
		s := p.Await(c.state, func(x uint64) bool { return x&centralWriterBit == 0 })
		if _, ok := p.CAS(c.state, s, s+1); ok {
			return
		}
	}
}

// ReaderExit deregisters with a CAS retry loop.
func (c *Centralized) ReaderExit(p memmodel.Proc, _ int) {
	for {
		s := p.Read(c.state)
		if _, ok := p.CAS(c.state, s, s-1); ok {
			return
		}
	}
}

// WriterEnter claims the writer bit, then waits for readers to drain.
func (c *Centralized) WriterEnter(p memmodel.Proc, _ int) {
	for {
		s := p.Await(c.state, func(x uint64) bool { return x&centralWriterBit == 0 })
		if _, ok := p.CAS(c.state, s, s|centralWriterBit); ok {
			break
		}
	}
	p.Await(c.state, func(x uint64) bool { return x == centralWriterBit })
}

// WriterExit releases the lock with a single write (reader count is zero
// and rival writers only CAS from writer-bit-clear states).
func (c *Centralized) WriterExit(p memmodel.Proc, _ int) {
	p.Write(c.state, 0)
}

// ReaderTryEnter implements memmodel.TryAlgorithm: one registration
// attempt. It fails if a writer is present or if the single CAS loses a
// race (honest try semantics — callers retry under backoff). The abandon
// path is empty: a failed CAS changes nothing, so the whole failed attempt
// costs at most two steps.
func (c *Centralized) ReaderTryEnter(p memmodel.Proc, _ int) bool {
	s := p.Read(c.state)
	if s&centralWriterBit != 0 {
		return false
	}
	_, ok := p.CAS(c.state, s, s+1)
	return ok
}

// WriterTryEnter implements memmodel.TryAlgorithm: it succeeds only from
// the completely free state with a single CAS (claiming the writer bit
// while readers are draining would block them, so the try variant never
// does it). One step, zero rollback.
func (c *Centralized) WriterTryEnter(p memmodel.Proc, _ int) bool {
	_, ok := p.CAS(c.state, 0, centralWriterBit)
	return ok
}

// Props implements memmodel.Algorithm.
func (c *Centralized) Props() memmodel.Props {
	return memmodel.Props{
		UsesCAS: true,
		// Readers retry CAS against each other: no bounded-step entry.
		ConcurrentEntering:   false,
		ReaderStarvationFree: false,
		PredictedReaderRMR:   func(n, _ int) float64 { return float64(n) }, // contention worst case
		PredictedWriterRMR:   func(n, _ int) float64 { return float64(n) },
	}
}

// FlagArray is the per-reader-flag lock: the writer scans all n flags.
type FlagArray struct {
	flags []memmodel.Var
	gate  memmodel.Var
	wl    *mutex.Tournament
}

var _ memmodel.Algorithm = (*FlagArray)(nil)

// NewFlagArray returns an uninitialized flag-array lock.
func NewFlagArray() *FlagArray { return &FlagArray{} }

// Name implements memmodel.Algorithm.
func (f *FlagArray) Name() string { return "flag-array" }

// Init implements memmodel.Algorithm. Each reader's flag is homed at that
// reader (process id rid, per the harness numbering convention), making the
// reader side fully local under the DSM model — this is the classic
// DSM-style design the paper's Section 6 contrasts with CC algorithms.
func (f *FlagArray) Init(a memmodel.Allocator, nReaders, nWriters int) error {
	f.flags = make([]memmodel.Var, nReaders)
	for rid := range f.flags {
		f.flags[rid] = memmodel.AllocHome(a, fmt.Sprintf("flag[%d]", rid), 0, rid)
	}
	f.gate = a.Alloc("gate", 0)
	f.wl = mutex.NewTournament(a, "WL", max(nWriters, 1))
	return nil
}

// ReaderEnter raises the reader's flag and double-checks the gate,
// retreating while a writer holds it (Dekker-style handshake).
func (f *FlagArray) ReaderEnter(p memmodel.Proc, rid int) {
	for {
		p.Write(f.flags[rid], 1)
		if p.Read(f.gate) == 0 {
			return
		}
		p.Write(f.flags[rid], 0)
		p.Await(f.gate, func(x uint64) bool { return x == 0 })
	}
}

// ReaderExit lowers the flag: a single write.
func (f *FlagArray) ReaderExit(p memmodel.Proc, rid int) {
	p.Write(f.flags[rid], 0)
}

// WriterEnter closes the gate and scans all n flags, waiting on raised
// ones: Theta(n) RMRs.
func (f *FlagArray) WriterEnter(p memmodel.Proc, wid int) {
	f.wl.Enter(p, wid)
	p.Write(f.gate, 1)
	for _, flag := range f.flags {
		if p.Read(flag) != 0 {
			p.Await(flag, func(x uint64) bool { return x == 0 })
		}
	}
}

// WriterExit opens the gate.
func (f *FlagArray) WriterExit(p memmodel.Proc, wid int) {
	p.Write(f.gate, 0)
	f.wl.Exit(p, wid)
}

// Props implements memmodel.Algorithm.
func (f *FlagArray) Props() memmodel.Props {
	return memmodel.Props{
		UsesCAS:              false,
		ConcurrentEntering:   true,
		ReaderStarvationFree: false, // writer churn can livelock the retreat loop
		PredictedReaderRMR:   func(_, _ int) float64 { return 3 },
		PredictedWriterRMR:   func(n, m int) float64 { return float64(n) + math.Log2(float64(max(m, 2))) },
	}
}

// PhaseFair is the FAA ticket reader-writer lock (PF-T style). Packed
// fields in rin: bit 0 (PRES) marks a writer present, bit 1 (PHID) is the
// writer phase id; reader arrivals add 4 (rinc).
type PhaseFair struct {
	rin, rout memmodel.Var
	win, wout memmodel.Var
	// wlocal[wid] carries the writer's presence bits from enter to exit.
	wlocal []uint64
}

var _ memmodel.Algorithm = (*PhaseFair)(nil)

const (
	pfPres = uint64(1)
	pfPhid = uint64(2)
	pfWmsk = pfPres | pfPhid
	pfRinc = uint64(4)
)

// NewPhaseFair returns an uninitialized phase-fair FAA lock.
func NewPhaseFair() *PhaseFair { return &PhaseFair{} }

// Name implements memmodel.Algorithm.
func (pf *PhaseFair) Name() string { return "faa-phasefair" }

// Init implements memmodel.Algorithm.
func (pf *PhaseFair) Init(a memmodel.Allocator, _, nWriters int) error {
	pf.rin = a.Alloc("rin", 0)
	pf.rout = a.Alloc("rout", 0)
	pf.win = a.Alloc("win", 0)
	pf.wout = a.Alloc("wout", 0)
	pf.wlocal = make([]uint64, max(nWriters, 1))
	return nil
}

// ReaderEnter registers with one FAA; if a writer is present, the reader
// waits for the writer bits to change (the writer leaving or a new phase).
func (pf *PhaseFair) ReaderEnter(p memmodel.Proc, _ int) {
	w := p.FetchAdd(pf.rin, pfRinc) & pfWmsk
	if w&pfPres != 0 {
		p.Await(pf.rin, func(x uint64) bool { return x&pfWmsk != w })
	}
}

// ReaderExit deregisters with one FAA.
func (pf *PhaseFair) ReaderExit(p memmodel.Proc, _ int) {
	p.FetchAdd(pf.rout, pfRinc)
}

// WriterEnter takes a ticket, waits for predecessor writers, sets the
// presence bits, and waits for all earlier readers to exit.
func (pf *PhaseFair) WriterEnter(p memmodel.Proc, wid int) {
	t := p.FetchAdd(pf.win, 1)
	p.Await(pf.wout, func(x uint64) bool { return x == t })
	w := pfPres | ((t & 1) << 1) // presence bit + ticket-parity phase id
	//rwlint:ignore memdiscipline wlocal[wid] is writer wid's private scratch carrying its presence word to its own exit section; never read cross-process
	pf.wlocal[wid] = w
	r := p.FetchAdd(pf.rin, w) &^ pfWmsk
	p.Await(pf.rout, func(x uint64) bool { return x == r })
}

// WriterExit clears the presence bits (releasing blocked readers) and
// passes the writer baton.
func (pf *PhaseFair) WriterExit(p memmodel.Proc, wid int) {
	p.FetchAdd(pf.rin, ^pf.wlocal[wid]+1) // subtract the presence bits
	p.FetchAdd(pf.wout, 1)
}

// Props implements memmodel.Algorithm.
func (pf *PhaseFair) Props() memmodel.Props {
	return memmodel.Props{
		UsesFAA:              true,
		ConcurrentEntering:   true,
		ReaderStarvationFree: true,
		PredictedReaderRMR:   func(_, _ int) float64 { return 2 },
		PredictedWriterRMR:   func(_, _ int) float64 { return 4 },
	}
}

// MutexRW degrades the reader-writer lock to a plain mutex over all n+m
// processes: correct, but readers exclude each other, so Concurrent
// Entering fails. The spec tests rely on it as a negative control.
type MutexRW struct {
	nReaders int
	l        *mutex.Tournament
}

var _ memmodel.Algorithm = (*MutexRW)(nil)

// NewMutexRW returns an uninitialized mutex-based RW lock.
func NewMutexRW() *MutexRW { return &MutexRW{} }

// Name implements memmodel.Algorithm.
func (mr *MutexRW) Name() string { return "mutex-rw" }

// Init implements memmodel.Algorithm.
func (mr *MutexRW) Init(a memmodel.Allocator, nReaders, nWriters int) error {
	if nReaders < 0 || nWriters < 0 {
		return fmt.Errorf("baseline: negative population %d/%d", nReaders, nWriters)
	}
	mr.nReaders = nReaders
	mr.l = mutex.NewTournament(a, "L", max(nReaders+nWriters, 1))
	return nil
}

// ReaderEnter implements memmodel.Algorithm.
func (mr *MutexRW) ReaderEnter(p memmodel.Proc, rid int) { mr.l.Enter(p, rid) }

// ReaderExit implements memmodel.Algorithm.
func (mr *MutexRW) ReaderExit(p memmodel.Proc, rid int) { mr.l.Exit(p, rid) }

// WriterEnter implements memmodel.Algorithm.
func (mr *MutexRW) WriterEnter(p memmodel.Proc, wid int) { mr.l.Enter(p, mr.nReaders+wid) }

// WriterExit implements memmodel.Algorithm.
func (mr *MutexRW) WriterExit(p memmodel.Proc, wid int) { mr.l.Exit(p, mr.nReaders+wid) }

// Props implements memmodel.Algorithm.
func (mr *MutexRW) Props() memmodel.Props {
	lg := func(n, m int) float64 { return math.Log2(float64(max(n+m, 2))) }
	return memmodel.Props{
		ConcurrentEntering:   false,
		ReaderStarvationFree: true,
		PredictedReaderRMR:   lg,
		PredictedWriterRMR:   lg,
	}
}
