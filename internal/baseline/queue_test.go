package baseline

import (
	"testing"

	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/spec"
)

// TestQueueRWPropertiesGrid: the full correctness matrix.
func TestQueueRWPropertiesGrid(t *testing.T) {
	type popCase struct{ n, m int }
	pops := []popCase{{1, 1}, {2, 1}, {4, 2}, {3, 3}, {6, 2}}
	for _, pop := range pops {
		for _, protocol := range []sim.Protocol{sim.WriteThrough, sim.WriteBack} {
			for _, seed := range []int64{1, 2, 3, 4} {
				rep := spec.Run(NewQueueRW(), spec.Scenario{
					NReaders: pop.n, NWriters: pop.m,
					ReaderPassages: 4, WriterPassages: 3,
					Protocol:  protocol,
					Scheduler: sched.NewRandom(seed),
					CSReads:   2,
				})
				if !rep.OK() {
					t.Errorf("n=%d m=%d %v seed=%d:\n%s",
						pop.n, pop.m, protocol, seed, rep.Failures())
				}
			}
		}
	}
}

// TestQueueRWUnderPCT: deeper interleavings.
func TestQueueRWUnderPCT(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rep := spec.Run(NewQueueRW(), spec.Scenario{
			NReaders: 4, NWriters: 2,
			ReaderPassages: 3, WriterPassages: 2,
			Scheduler: sched.NewPCT(seed, 6, 10_000),
			CSReads:   2,
			MaxSteps:  500_000,
		})
		if !rep.OK() {
			t.Errorf("PCT seed=%d:\n%s", seed, rep.Failures())
		}
	}
}

// TestQueueRWExhaustive model-checks every schedule at n=1, m=1 and caps
// a 2-reader+1-writer exploration.
func TestQueueRWExhaustive(t *testing.T) {
	res, err := explore.Algorithm(
		func() memmodel.Algorithm { return NewQueueRW() },
		spec.Scenario{NReaders: 1, NWriters: 1, ReaderPassages: 1, WriterPassages: 1},
		explore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != "" {
		t.Fatalf("violation on path %v:\n%s", res.ViolationPath, res.Violation)
	}
	if !res.Complete {
		t.Fatalf("tiny tree not exhausted in %d runs", res.Runs)
	}
	t.Logf("queue-rw (1,1): exhausted %d schedules", res.Runs)

	capRuns := 40_000
	if testing.Short() {
		capRuns = 5_000
	}
	res, err = explore.Algorithm(
		func() memmodel.Algorithm { return NewQueueRW() },
		spec.Scenario{NReaders: 2, NWriters: 1, ReaderPassages: 1, WriterPassages: 1},
		explore.Config{MaxRuns: capRuns})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != "" {
		t.Fatalf("(2,1) violation on path %v:\n%s", res.ViolationPath, res.Violation)
	}
	t.Logf("queue-rw (2,1): %d schedules, complete=%v", res.Runs, res.Complete)
}

// TestQueueRWReadersBatch: adjacent readers share the CS.
func TestQueueRWReadersBatch(t *testing.T) {
	rep := spec.Run(NewQueueRW(), spec.Scenario{
		NReaders: 5, NWriters: 1,
		ReaderPassages: 2, WriterPassages: 0,
		Scheduler: sched.NewRoundRobin(),
		CSReads:   10,
	})
	if !rep.OK() {
		t.Fatalf("%s", rep.Failures())
	}
	if rep.MaxConcurrentReaders < 2 {
		t.Errorf("MaxConcurrentReaders = %d: early read handoff not batching", rep.MaxConcurrentReaders)
	}
}

// TestQueueRWTaskFair stages the FIFO property in both directions: a
// reader that arrives after a waiting writer must not overtake it, and a
// writer must wait for the whole reader batch admitted before it.
func TestQueueRWTaskFair(t *testing.T) {
	ctrl := &sched.Controlled{}
	r := sim.New(sim.Config{Scheduler: ctrl})
	alg := NewQueueRW()
	if err := alg.Init(r, 2, 1); err != nil {
		t.Fatal(err)
	}
	mk := func(reader bool, id int) sim.Program {
		return func(p sim.Proc) {
			p.Barrier()
			p.Section(memmodel.SecEntry)
			if reader {
				alg.ReaderEnter(p, id)
			} else {
				alg.WriterEnter(p, id)
			}
			p.Section(memmodel.SecCS)
			p.Barrier()
			p.Section(memmodel.SecExit)
			if reader {
				alg.ReaderExit(p, id)
			} else {
				alg.WriterExit(p, id)
			}
			p.Section(memmodel.SecRemainder)
		}
	}
	r.AddProc(mk(true, 0))  // r0
	r.AddProc(mk(true, 1))  // r1
	r.AddProc(mk(false, 0)) // w (proc 2)
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	step := func(id int) {
		t.Helper()
		ctrl.Target = id
		if ok, err := r.Step(); err != nil || !ok {
			t.Fatalf("step p%d: %v", id, err)
		}
	}
	atBarrier := func(id int) bool {
		for _, b := range r.AtBarrier() {
			if b == id {
				return true
			}
		}
		return false
	}
	drive := func(id int) {
		t.Helper()
		for i := 0; i < 100_000; i++ {
			if atBarrier(id) {
				return
			}
			if _, poised := r.PendingOf(id); !poised {
				return // parked
			}
			step(id)
		}
		t.Fatalf("p%d did not settle", id)
	}
	release := func(id int) {
		t.Helper()
		if err := r.ReleaseBarrier(id); err != nil {
			t.Fatal(err)
		}
	}

	// r0 enters the CS (head of chain).
	release(0)
	drive(0)
	if !atBarrier(0) {
		t.Fatal("r0 not in CS")
	}
	// The writer queues behind r0's batch and parks on S.
	release(2)
	drive(2)
	if atBarrier(2) {
		t.Fatal("writer entered alongside r0")
	}
	// r1 arrives after the writer: it must park on the writer's chain
	// node, NOT join r0's batch.
	release(1)
	drive(1)
	if atBarrier(1) {
		t.Fatal("task fairness violated: r1 overtook a queued writer")
	}
	// r0 exits -> the writer (not r1) gets in.
	release(0)
	drive(0)
	drive(2)
	if !atBarrier(2) {
		t.Fatal("writer did not enter after the batch drained")
	}
	if atBarrier(1) {
		t.Fatal("r1 entered while the writer held the CS")
	}
	// Writer exits -> r1 finally enters.
	release(2)
	drive(2)
	drive(1)
	if !atBarrier(1) {
		t.Fatal("r1 never entered")
	}
	release(1)
	drive(1)
	if len(r.Account(1).Passages) != 1 {
		t.Fatal("r1 passage incomplete")
	}
}

// TestQueueRWCostShape: readers O(1)-ish solo; the sweep structure means a
// writer wakes once per exiting batch reader.
func TestQueueRWCostShape(t *testing.T) {
	cost := func(n int) int {
		rep := spec.Run(NewQueueRW(), spec.Scenario{
			NReaders: n, NWriters: 1,
			ReaderPassages: 1, WriterPassages: 0,
			Scheduler: sched.NewSticky(),
		})
		if !rep.OK() {
			t.Fatalf("n=%d: %s", n, rep.Failures())
		}
		return rep.MaxReaderPassage.RMR()
	}
	if a, b := cost(4), cost(128); b > a {
		t.Errorf("solo reader RMR grew with n: %d -> %d", a, b)
	}
}
