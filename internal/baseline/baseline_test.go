package baseline

import (
	"testing"

	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/spec"
)

// all returns fresh instances of every baseline.
func all() []memmodel.Algorithm {
	return []memmodel.Algorithm{NewCentralized(), NewFlagArray(), NewPhaseFair(), NewMutexRW()}
}

func TestNames(t *testing.T) {
	want := map[string]bool{"centralized": true, "flag-array": true, "faa-phasefair": true, "mutex-rw": true}
	for _, a := range all() {
		if !want[a.Name()] {
			t.Errorf("unexpected name %q", a.Name())
		}
	}
}

// TestBaselinePropertiesGrid checks mutual exclusion and completion for all
// baselines across populations, protocols and seeds.
func TestBaselinePropertiesGrid(t *testing.T) {
	type popCase struct{ n, m int }
	pops := []popCase{{1, 1}, {2, 1}, {4, 2}, {3, 3}, {6, 2}}
	mks := []func() memmodel.Algorithm{
		func() memmodel.Algorithm { return NewCentralized() },
		func() memmodel.Algorithm { return NewFlagArray() },
		func() memmodel.Algorithm { return NewPhaseFair() },
		func() memmodel.Algorithm { return NewMutexRW() },
	}
	for _, mk := range mks {
		for _, pop := range pops {
			for _, protocol := range []sim.Protocol{sim.WriteThrough, sim.WriteBack} {
				for _, seed := range []int64{1, 2, 3} {
					alg := mk()
					rep := spec.Run(alg, spec.Scenario{
						NReaders: pop.n, NWriters: pop.m,
						ReaderPassages: 3, WriterPassages: 2,
						Protocol:  protocol,
						Scheduler: sched.NewRandom(seed),
						CSReads:   2,
					})
					if !rep.OK() {
						t.Errorf("%s n=%d m=%d %v seed=%d:\n%s",
							alg.Name(), pop.n, pop.m, protocol, seed, rep.Failures())
					}
				}
			}
		}
	}
}

// TestReadersOverlapExceptMutexRW: algorithms claiming Concurrent Entering
// (and the centralized lock, which allows overlap even if not wait-free)
// must let readers share the CS; mutex-rw must not.
func TestReadersOverlapExceptMutexRW(t *testing.T) {
	for _, alg := range all() {
		rep := spec.Run(alg, spec.Scenario{
			NReaders: 5, NWriters: 1,
			ReaderPassages: 2, WriterPassages: 0,
			Scheduler: sched.NewRoundRobin(),
			CSReads:   3,
		})
		if !rep.OK() {
			t.Fatalf("%s: %s", alg.Name(), rep.Failures())
		}
		if alg.Name() == "mutex-rw" {
			if rep.MaxConcurrentReaders != 1 {
				t.Errorf("mutex-rw: MaxConcurrentReaders = %d, want 1", rep.MaxConcurrentReaders)
			}
			continue
		}
		if rep.MaxConcurrentReaders < 2 {
			t.Errorf("%s: MaxConcurrentReaders = %d, want >= 2", alg.Name(), rep.MaxConcurrentReaders)
		}
	}
}

// TestFlagArrayWriterScansLinear pins the Theta(n) writer cost of the
// flag-array design: writer entry RMRs grow linearly in n.
func TestFlagArrayWriterScansLinear(t *testing.T) {
	cost := func(n int) int {
		rep := spec.Run(NewFlagArray(), spec.Scenario{
			NReaders: n, NWriters: 1,
			ReaderPassages: 0, WriterPassages: 1,
			Scheduler: sched.LowestFirst{},
		})
		if !rep.OK() {
			t.Fatalf("n=%d: %s", n, rep.Failures())
		}
		return rep.MaxWriterPassage.EntryRMR
	}
	c16, c64, c256 := cost(16), cost(64), cost(256)
	if c64 < 3*c16 || c256 < 3*c64 {
		t.Errorf("writer scan not linear: n=16:%d n=64:%d n=256:%d", c16, c64, c256)
	}
}

// TestFlagArrayReaderConstant pins the O(1) reader cost.
func TestFlagArrayReaderConstant(t *testing.T) {
	cost := func(n int) int {
		rep := spec.Run(NewFlagArray(), spec.Scenario{
			NReaders: n, NWriters: 0,
			ReaderPassages: 1, WriterPassages: 0,
			Scheduler: sched.NewSticky(),
		})
		if !rep.OK() {
			t.Fatalf("n=%d: %s", n, rep.Failures())
		}
		return rep.MaxReaderPassage.RMR()
	}
	if a, b := cost(4), cost(256); b > a {
		t.Errorf("flag-array reader RMR grew with n: %d -> %d", a, b)
	}
}

// TestPhaseFairConstantRMRSolo pins the FAA lock's O(1) solo costs for
// both classes — the Bhatt-Jayanti comparison point: FAA circumvents the
// Theorem 5 tradeoff.
func TestPhaseFairConstantRMRSolo(t *testing.T) {
	for _, n := range []int{4, 64, 512} {
		rep := spec.Run(NewPhaseFair(), spec.Scenario{
			NReaders: n, NWriters: 1,
			ReaderPassages: 1, WriterPassages: 1,
			Scheduler: sched.NewSticky(),
		})
		if !rep.OK() {
			t.Fatalf("n=%d: %s", n, rep.Failures())
		}
		if got := rep.MaxReaderPassage.RMR(); got > 4 {
			t.Errorf("n=%d: reader RMR = %d, want <= 4 (constant)", n, got)
		}
		if got := rep.MaxWriterPassage.RMR(); got > 8 {
			t.Errorf("n=%d: writer RMR = %d, want <= 8 (constant)", n, got)
		}
	}
}

// TestPhaseFairAlternation checks the phase-fair property in a targeted
// scenario: readers arriving while a writer holds the lock get in before a
// second writer when both are waiting (reader phase between writer phases).
func TestPhaseFairPhases(t *testing.T) {
	for _, seed := range []int64{5, 9, 21} {
		rep := spec.Run(NewPhaseFair(), spec.Scenario{
			NReaders: 4, NWriters: 2,
			ReaderPassages: 4, WriterPassages: 4,
			Scheduler: sched.NewRandom(seed),
			CSReads:   2,
		})
		if !rep.OK() {
			t.Errorf("seed=%d: %s", seed, rep.Failures())
		}
	}
}

// TestCentralizedWriterDrainsReaders: a writer entering while readers hold
// the lock must wait for all of them.
func TestCentralizedWriterDrains(t *testing.T) {
	for _, seed := range []int64{2, 7, 13} {
		rep := spec.Run(NewCentralized(), spec.Scenario{
			NReaders: 5, NWriters: 2,
			ReaderPassages: 4, WriterPassages: 3,
			Scheduler: sched.NewRandom(seed),
			CSReads:   2,
		})
		if !rep.OK() {
			t.Errorf("seed=%d: %s", seed, rep.Failures())
		}
	}
}

// TestPropsDeclarations sanity-checks the metadata the experiments rely on.
func TestPropsDeclarations(t *testing.T) {
	if !NewPhaseFair().Props().UsesFAA {
		t.Error("phasefair must declare FAA")
	}
	if NewFlagArray().Props().UsesCAS {
		t.Error("flag-array is read/write only")
	}
	if NewMutexRW().Props().ConcurrentEntering {
		t.Error("mutex-rw must not claim Concurrent Entering")
	}
	if !NewFlagArray().Props().ConcurrentEntering {
		t.Error("flag-array provides Concurrent Entering")
	}
}

// TestWritersOnlyDegenerate: with no readers, every baseline behaves as a
// mutual exclusion lock among writers.
func TestWritersOnlyDegenerate(t *testing.T) {
	for _, alg := range all() {
		rep := spec.Run(alg, spec.Scenario{
			NReaders: 0, NWriters: 3,
			ReaderPassages: 0, WriterPassages: 3,
			Scheduler: sched.NewRandom(3),
		})
		if !rep.OK() {
			t.Errorf("%s writers-only: %s", alg.Name(), rep.Failures())
		}
	}
}
