package baseline

import (
	"fmt"

	"repro/internal/memmodel"
)

// QueueRW is a task-fair (FIFO) reader-writer lock in the spirit of the
// queue-based locks of Mellor-Crummey & Scott: all arrivals — readers and
// writers alike — join one CLH-style chain, so no class can starve the
// other. Two ideas make it a *reader-writer* lock rather than a mutex:
//
//   - Early read handoff: a reader passes the chain baton to its successor
//     immediately after it is admitted (not when it exits), so a run of
//     adjacent readers enters the critical section together.
//   - An active-reader word S tracks admissions: S = 2*activeReaders +
//     writerBit. A writer that reaches the head of the chain waits for
//     S == 0 (all batched readers gone), then sets the writer bit; it
//     passes the baton only at exit, so everything behind it waits.
//
// Mutual exclusion argument: the baton makes "await S, then update S on
// the acquire side" single-threaded — exactly one process (the head) ever
// adds admissions, so a writer's S == 0 check cannot be invalidated before
// its S = 1 write, and a reader's S += 2 CAS contends only with exiting
// readers' decrements. Readers behind a waiting writer spin on the
// writer's unpassed chain node, so they cannot overtake it (task
// fairness), and a writer behind a reader batch is admitted by the last
// exiting reader's decrement waking its S spin.
//
// Cost: readers are O(1) RMR plus the chain enqueue (a CAS-emulated swap;
// with hardware swap the enqueue is a single RMR); a writer pays one RMR
// per reader of the batch it waits out (its S spin is re-checked per
// decrement).
type QueueRW struct {
	n int
	// nodes[i] holds 0 while the owner of node i retains the baton and 1
	// once passed; n+m+1 nodes, recycled CLH-style.
	nodes []memmodel.Var
	// tail holds the node index of the most recent arrival.
	tail memmodel.Var
	// s is the admission word: 2*activeReaders + writerBit.
	s memmodel.Var
	// mine[slot] / pred[slot] are per-process local node indices; readers
	// use slots [0,n), writers [n, n+m).
	mine []int
	pred []int
}

var _ memmodel.Algorithm = (*QueueRW)(nil)

// NewQueueRW returns an uninitialized task-fair queue RW lock.
func NewQueueRW() *QueueRW { return &QueueRW{} }

// Name implements memmodel.Algorithm.
func (q *QueueRW) Name() string { return "queue-rw" }

// Init implements memmodel.Algorithm.
func (q *QueueRW) Init(a memmodel.Allocator, nReaders, nWriters int) error {
	if nReaders < 0 || nWriters < 0 {
		return fmt.Errorf("baseline: negative population %d/%d", nReaders, nWriters)
	}
	q.n = nReaders
	total := nReaders + nWriters
	q.nodes = a.AllocN("node", total, 0)
	// The sentinel node starts passed (1); it enters the normal recycling
	// rotation after the first acquisition adopts it.
	q.nodes = append(q.nodes, a.Alloc("node.sentinel", 1))
	q.tail = a.Alloc("tail", uint64(total))
	q.s = a.Alloc("S", 0)
	q.mine = make([]int, total)
	q.pred = make([]int, total)
	for slot := range q.mine {
		q.mine[slot] = slot
	}
	return nil
}

// enqueue joins the chain and waits for the predecessor's baton.
func (q *QueueRW) enqueue(p memmodel.Proc, slot int) {
	my := q.mine[slot]
	p.Write(q.nodes[my], 0)
	var predIdx uint64
	for {
		cur := p.Read(q.tail)
		if _, ok := p.CAS(q.tail, cur, uint64(my)); ok {
			predIdx = cur
			break
		}
	}
	//rwlint:ignore memdiscipline pred[slot] is slot's private node-recycling bookkeeping (classic CLH local state); only slot's owner touches it
	q.pred[slot] = int(predIdx)
	p.Await(q.nodes[predIdx], func(x uint64) bool { return x == 1 })
}

// adopt recycles the predecessor's node for the next passage.
func (q *QueueRW) adopt(slot int) {
	//rwlint:ignore memdiscipline mine[slot] is slot's private node-recycling bookkeeping; only slot's owner touches it
	q.mine[slot] = q.pred[slot]
}

// ReaderEnter: join the chain, wait for the baton, register in S, and pass
// the baton immediately (early read handoff).
func (q *QueueRW) ReaderEnter(p memmodel.Proc, rid int) {
	q.enqueue(p, rid)
	// Admitted: no writer can hold or take S's writer bit while we hold
	// the baton (writers set it only as head). Register before passing.
	p.Await(q.s, func(x uint64) bool { return x&1 == 0 })
	for {
		cur := p.Read(q.s)
		if _, ok := p.CAS(q.s, cur, cur+2); ok {
			break
		}
	}
	p.Write(q.nodes[q.mine[rid]], 1) // pass the baton: readers batch
	q.adopt(rid)
}

// ReaderExit deregisters from S; the last reader of a batch wakes the
// waiting head writer, if any.
func (q *QueueRW) ReaderExit(p memmodel.Proc, rid int) {
	for {
		cur := p.Read(q.s)
		if _, ok := p.CAS(q.s, cur, cur-2); ok {
			return
		}
	}
}

// WriterEnter: join the chain, wait for the baton, then drain the reader
// batch and take exclusive ownership. The baton is NOT passed until exit.
func (q *QueueRW) WriterEnter(p memmodel.Proc, wid int) {
	q.enqueue(p, q.n+wid)
	p.Await(q.s, func(x uint64) bool { return x == 0 })
	// Safe as a plain write: we hold the baton, so no reader can be
	// admitted, and S == 0 says none are active.
	p.Write(q.s, 1)
}

// WriterExit releases exclusivity and passes the baton.
func (q *QueueRW) WriterExit(p memmodel.Proc, wid int) {
	p.Write(q.s, 0)
	slot := q.n + wid
	p.Write(q.nodes[q.mine[slot]], 1)
	q.adopt(slot)
}

// Props implements memmodel.Algorithm.
func (q *QueueRW) Props() memmodel.Props {
	return memmodel.Props{
		UsesCAS: true,
		// Task-fair: FIFO admission means a reader behind a writer waits,
		// so entry is not bounded when writers are absent *from the
		// remainder of the chain* — but Concurrent Entering only requires
		// boundedness when ALL writers are in the remainder section, and
		// then the chain is all-readers and every baton passes in O(1)
		// steps. The CAS-emulated swap in enqueue is the one unbounded
		// piece (lock-free, not wait-free), as for the centralized lock.
		ConcurrentEntering:   false,
		ReaderStarvationFree: true, // FIFO
		PredictedReaderRMR:   func(_, _ int) float64 { return 6 },
		PredictedWriterRMR:   func(n, _ int) float64 { return float64(n) },
	}
}
