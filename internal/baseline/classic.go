package baseline

import (
	"fmt"
	"math"

	"repro/internal/memmodel"
	"repro/internal/mutex"
)

// BRLock is the "big-reader" lock (the classic per-CPU reader-lock pattern
// from the Linux kernel): every reader owns a private two-party mutex with
// the writer side; a reader passage takes only its own mutex (O(1) RMR,
// fully uncontended between readers), while a writer first serializes on
// WL and then sweeps all n per-reader mutexes — Theta(n), like the
// flag-array, but built from blocking sub-locks rather than a handshake.
type BRLock struct {
	n int
	// perReader[rid] is a 2-slot Peterson instance: slot 0 = the reader,
	// slot 1 = whichever writer holds WL.
	perReader []*mutex.Tournament
	wl        *mutex.Tournament
}

var _ memmodel.Algorithm = (*BRLock)(nil)

// NewBRLock returns an uninitialized big-reader lock.
func NewBRLock() *BRLock { return &BRLock{} }

// Name implements memmodel.Algorithm.
func (b *BRLock) Name() string { return "brlock" }

// Init implements memmodel.Algorithm.
func (b *BRLock) Init(a memmodel.Allocator, nReaders, nWriters int) error {
	b.n = nReaders
	b.perReader = make([]*mutex.Tournament, nReaders)
	for rid := range b.perReader {
		b.perReader[rid] = mutex.NewTournament(a, fmt.Sprintf("R[%d]", rid), 2)
	}
	b.wl = mutex.NewTournament(a, "WL", max(nWriters, 1))
	return nil
}

// ReaderEnter takes the reader's own two-party mutex: O(1) RMRs.
func (b *BRLock) ReaderEnter(p memmodel.Proc, rid int) { b.perReader[rid].Enter(p, 0) }

// ReaderExit releases it.
func (b *BRLock) ReaderExit(p memmodel.Proc, rid int) { b.perReader[rid].Exit(p, 0) }

// WriterEnter serializes on WL, then sweeps every per-reader mutex.
func (b *BRLock) WriterEnter(p memmodel.Proc, wid int) {
	b.wl.Enter(p, wid)
	for rid := 0; rid < b.n; rid++ {
		b.perReader[rid].Enter(p, 1)
	}
}

// WriterExit releases the sweep in reverse, then WL.
func (b *BRLock) WriterExit(p memmodel.Proc, wid int) {
	for rid := b.n - 1; rid >= 0; rid-- {
		b.perReader[rid].Exit(p, 1)
	}
	b.wl.Exit(p, wid)
}

// Props implements memmodel.Algorithm.
func (b *BRLock) Props() memmodel.Props {
	return memmodel.Props{
		// Peterson instances: reads/writes only.
		ConcurrentEntering:   true,
		ReaderStarvationFree: true, // each Peterson pair is starvation-free
		PredictedReaderRMR:   func(_, _ int) float64 { return 3 },
		PredictedWriterRMR: func(n, m int) float64 {
			return float64(n) + math.Log2(float64(max(m, 2)))
		},
	}
}

// CourtoisR is the reader-preference lock of Courtois, Heymans & Parnas
// (CACM 1971, "Problem 1"), the original readers-writers solution,
// transliterated from semaphores to test-and-set locks (TAS release is
// ownerless, which the hand-off of `w` from the first to the last reader
// requires). Readers serialize briefly on rcMutex to maintain readcount;
// the first reader in locks out writers, the last reader out releases
// them. Writers starve under continuous readers — the behaviour the
// paper's Section 6 describes for A_f, here in its original habitat.
type CourtoisR struct {
	rcMutex   *mutex.TAS
	w         *mutex.TAS
	readcount memmodel.Var
}

var _ memmodel.Algorithm = (*CourtoisR)(nil)

// NewCourtoisR returns an uninitialized reader-preference Courtois lock.
func NewCourtoisR() *CourtoisR { return &CourtoisR{} }

// Name implements memmodel.Algorithm.
func (c *CourtoisR) Name() string { return "courtois-r" }

// Init implements memmodel.Algorithm.
func (c *CourtoisR) Init(a memmodel.Allocator, _, _ int) error {
	c.rcMutex = mutex.NewTAS(a, "rcMutex")
	c.w = mutex.NewTAS(a, "w")
	c.readcount = a.Alloc("readcount", 0)
	return nil
}

// ReaderEnter implements the classic prologue.
func (c *CourtoisR) ReaderEnter(p memmodel.Proc, _ int) {
	c.rcMutex.Enter(p, 0)
	rc := p.Read(c.readcount)
	p.Write(c.readcount, rc+1)
	if rc == 0 {
		c.w.Enter(p, 0) // first reader locks out writers
	}
	c.rcMutex.Exit(p, 0)
}

// ReaderExit implements the classic epilogue.
func (c *CourtoisR) ReaderExit(p memmodel.Proc, _ int) {
	c.rcMutex.Enter(p, 0)
	rc := p.Read(c.readcount)
	p.Write(c.readcount, rc-1)
	if rc == 1 {
		c.w.Exit(p, 0) // last reader readmits writers
	}
	c.rcMutex.Exit(p, 0)
}

// WriterEnter takes the resource lock directly.
func (c *CourtoisR) WriterEnter(p memmodel.Proc, _ int) { c.w.Enter(p, 0) }

// WriterExit releases it.
func (c *CourtoisR) WriterExit(p memmodel.Proc, _ int) { c.w.Exit(p, 0) }

// Props implements memmodel.Algorithm.
func (c *CourtoisR) Props() memmodel.Props {
	return memmodel.Props{
		UsesCAS: true, // TAS locks
		// Readers serialize on rcMutex (TAS, unfair): no bounded entry.
		ConcurrentEntering:   false,
		ReaderStarvationFree: false,
		PredictedReaderRMR:   func(_, _ int) float64 { return 8 },
		PredictedWriterRMR:   func(_, _ int) float64 { return 4 },
	}
}

// CourtoisW is the writer-preference lock of the same paper ("Problem 2"):
// once a writer announces itself, arriving readers are held at the `r`
// gate until all writers drain — the mirror-image fairness trade of
// fairness.WriterPriority, built forty years earlier from five semaphores.
type CourtoisW struct {
	rcMutex    *mutex.TAS // protects readcount
	wcMutex    *mutex.TAS // protects writecount
	entryMutex *mutex.TAS // serializes readers at the gate (mutex3)
	r          *mutex.TAS // reader gate, held collectively by writers
	w          *mutex.TAS // resource lock
	readcount  memmodel.Var
	writecount memmodel.Var
}

var _ memmodel.Algorithm = (*CourtoisW)(nil)

// NewCourtoisW returns an uninitialized writer-preference Courtois lock.
func NewCourtoisW() *CourtoisW { return &CourtoisW{} }

// Name implements memmodel.Algorithm.
func (c *CourtoisW) Name() string { return "courtois-w" }

// Init implements memmodel.Algorithm.
func (c *CourtoisW) Init(a memmodel.Allocator, _, _ int) error {
	c.rcMutex = mutex.NewTAS(a, "rcMutex")
	c.wcMutex = mutex.NewTAS(a, "wcMutex")
	c.entryMutex = mutex.NewTAS(a, "entryMutex")
	c.r = mutex.NewTAS(a, "r")
	c.w = mutex.NewTAS(a, "w")
	c.readcount = a.Alloc("readcount", 0)
	c.writecount = a.Alloc("writecount", 0)
	return nil
}

// ReaderEnter passes the writer-preference gate, then registers.
func (c *CourtoisW) ReaderEnter(p memmodel.Proc, _ int) {
	c.entryMutex.Enter(p, 0) // at most one reader queues on r
	c.r.Enter(p, 0)
	c.rcMutex.Enter(p, 0)
	rc := p.Read(c.readcount)
	p.Write(c.readcount, rc+1)
	if rc == 0 {
		c.w.Enter(p, 0)
	}
	c.rcMutex.Exit(p, 0)
	c.r.Exit(p, 0)
	c.entryMutex.Exit(p, 0)
}

// ReaderExit deregisters.
func (c *CourtoisW) ReaderExit(p memmodel.Proc, _ int) {
	c.rcMutex.Enter(p, 0)
	rc := p.Read(c.readcount)
	p.Write(c.readcount, rc-1)
	if rc == 1 {
		c.w.Exit(p, 0)
	}
	c.rcMutex.Exit(p, 0)
}

// WriterEnter announces (first writer closes the reader gate), then takes
// the resource.
func (c *CourtoisW) WriterEnter(p memmodel.Proc, _ int) {
	c.wcMutex.Enter(p, 0)
	wc := p.Read(c.writecount)
	p.Write(c.writecount, wc+1)
	if wc == 0 {
		c.r.Enter(p, 0) // first writer closes the reader gate
	}
	c.wcMutex.Exit(p, 0)
	c.w.Enter(p, 0)
}

// WriterExit releases the resource and (as the last writer) the gate.
func (c *CourtoisW) WriterExit(p memmodel.Proc, _ int) {
	c.w.Exit(p, 0)
	c.wcMutex.Enter(p, 0)
	wc := p.Read(c.writecount)
	p.Write(c.writecount, wc-1)
	if wc == 1 {
		c.r.Exit(p, 0) // last writer reopens the reader gate
	}
	c.wcMutex.Exit(p, 0)
}

// Props implements memmodel.Algorithm.
func (c *CourtoisW) Props() memmodel.Props {
	return memmodel.Props{
		UsesCAS:              true,
		ConcurrentEntering:   false, // readers serialize at the gate
		ReaderStarvationFree: false, // writer preference
		PredictedReaderRMR:   func(_, _ int) float64 { return 12 },
		PredictedWriterRMR:   func(_, _ int) float64 { return 8 },
	}
}
