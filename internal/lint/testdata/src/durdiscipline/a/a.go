// Package a is the durdiscipline fixture: a miniature of the durable
// layer — RecordType, shadow state, Store, wal — with protocol
// violations seeded for each rule, plus a cross-package write into the
// real durable state types.
package a

import "repro/internal/lockd/durable"

type RecordType string

const (
	RecAlpha RecordType = "alpha"
	RecBeta  RecordType = "beta"
	RecGamma RecordType = "gamma"
)

type Record struct {
	Type RecordType
	N    uint64
}

type Counters struct {
	Grants uint64
}

type ShardState struct {
	Words    []uint64
	Counters Counters
}

type State struct {
	Epoch  uint64
	Shards []*ShardState
}

// NewState builds an empty state (constructor exemption).
func NewState() *State {
	st := &State{}
	st.Epoch = 0 // ok: construction before publication
	return st
}

func (st *State) Apply(rec *Record) {
	switch rec.Type { // want `switch over RecordType drops record kinds RecGamma`
	case RecAlpha:
		st.Epoch = rec.N // ok: the apply path
	case RecBeta:
		st.bump(rec.N)
	}
}

func (st *State) bump(n uint64) {
	st.Epoch += n // ok: helper reachable only from Apply
}

func Defaulted(rec *Record) int {
	switch rec.Type { // ok: explicit default catches future kinds
	case RecAlpha:
		return 1
	default:
		return 0
	}
}

func Rogue(st *State) {
	st.Epoch++ // want `Rogue mutates durable state field Epoch outside the apply path`
}

func RogueDeep(st *State) {
	st.Shards[0].Counters.Grants = 9 // want `RogueDeep mutates durable state field Grants outside the apply path`
}

func CrossPackage(st *durable.State) {
	st.Epoch = 99 // want `CrossPackage mutates durable state field Epoch outside the apply path`
}

func FreshOK() *State {
	var st State
	st.Epoch = 7 // ok: freshly built local
	return &st
}

func Hatch(st *State) {
	//rwlint:ignore durdiscipline test harness rewinds epochs deliberately
	st.Epoch = 0
}

type wal struct{ n int }

func (w *wal) reset() {}

func writeSnapshot(st *State) error {
	_ = st
	return nil
}

type Store struct {
	w  *wal
	st *State
}

func (s *Store) rotate() error {
	if err := writeSnapshot(s.st); err != nil { // ok: Store method sequences the pair
		return err
	}
	s.w.reset() // ok
	return nil
}

func Sneaky(w *wal, st *State) {
	writeSnapshot(st) // want `Sneaky calls writeSnapshot directly`
	w.reset()         // want `Sneaky calls reset directly`
}
