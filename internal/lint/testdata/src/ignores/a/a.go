// Package a is the rwlint:ignore directive fixture: one well-formed
// suppression, one missing its mandatory justification, and one naming
// an analyzer that does not exist. The driver must honor only the first
// and report the other two as findings of its own.
package a

import "repro/internal/memmodel"

// L is an algorithm-shaped struct.
type L struct{ v memmodel.Var }

// Spin carries three identical violations under three directives.
func (l *L) Spin(p memmodel.Proc) {
	//rwlint:ignore spinloop calibration loop: measures raw coherence traffic on purpose
	for p.Read(l.v) == 0 {
	}

	//rwlint:ignore spinloop
	for p.Read(l.v) == 1 {
	}

	//rwlint:ignore nosuchanalyzer because reasons
	for p.Read(l.v) == 2 {
	}
}
