// Package a is the errdiscipline fixture: identity comparisons against
// sentinels (own and stdlib), error switches, message-text matching,
// the Is-method exemption, the ignore hatch, and doc-comment rules.
package a

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

// ErrStall is the documented sentinel (doc-rule negative case).
var ErrStall = errors.New("stall")

var ErrNaked = errors.New("naked") // want `exported sentinel ErrNaked has no doc comment`

var errLocal = errors.New("local")

// DecodeError is documented (doc-rule negative case).
type DecodeError struct{ Offset int }

func (e *DecodeError) Error() string { return fmt.Sprintf("decode at %d", e.Offset) }

type FrameError struct{} // want `exported error type FrameError has no doc comment`

func (e *FrameError) Error() string { return "frame" }

func Compare(err error) bool {
	if err == ErrStall { // want `error compared to sentinel ErrStall with ==`
		return true
	}
	if err != errLocal { // want `error compared to sentinel errLocal with !=`
		return false
	}
	if err == io.EOF { // want `error compared to sentinel EOF with ==`
		return true
	}
	return errors.Is(err, ErrStall) // ok
}

func Switches(err error) int {
	switch err {
	case ErrStall: // want `switch over an error matches sentinel ErrStall by identity`
		return 1
	case nil:
		return 0
	}
	switch {
	case errors.Is(err, ErrStall): // ok
		return 2
	}
	return 3
}

func Texts(err error) bool {
	if err.Error() == "stall" { // want `error message text compared with ==`
		return true
	}
	return strings.Contains(err.Error(), "stall") // want `strings\.Contains over err\.Error\(\) text`
}

type probe struct{ sealed bool }

// Is is the errors.Is hook: identity comparison is exactly its job.
func (p *probe) Is(target error) bool {
	return target == ErrStall || target == errLocal // ok: inside Is(error) bool
}

func PanicIdentity() {
	defer func() {
		if v := recover(); v != nil && v != ErrStall { // ok: panic-value identity, not error matching
			panic(v)
		}
	}()
}

func Hatch(err error) bool {
	//rwlint:ignore errdiscipline sealed singleton; wrapping is impossible on this path
	return err == ErrStall
}
