// Package a is the lockguard fixture: annotated guarded fields accessed
// with and without their mutex, RLock/Lock grading, holds-contracts,
// construction exemptions, closure leaks, the ignore hatch, and
// malformed directives.
package a

import "sync"

type counterStore struct {
	mu    sync.Mutex
	count int //rwguard:mu
	gauge int //rwguard:mu
	name  string
}

type table struct {
	mu   sync.RWMutex
	rows map[string]int //rwguard:mu
}

// entry rides in a table; its dirty bit is guarded by the owning
// table's lock (type-qualified guard).
type entry struct {
	dirty bool //rwguard:table.mu
}

func (c *counterStore) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.count++ // ok: exclusive hold via defer
	return c.count
}

func (c *counterStore) bad() int {
	c.count++      // want `write to count without holding counterStore\.mu`
	return c.gauge // want `read of gauge without holding counterStore\.mu`
}

func (c *counterStore) earlyReturn(flag bool) int {
	c.mu.Lock()
	if flag {
		n := c.count // ok: still held on this path
		c.mu.Unlock()
		return n
	}
	c.mu.Unlock()
	return c.count // want `read of count without holding counterStore\.mu`
}

func (t *table) reads(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[k] // ok: shared hold covers reads
}

func (t *table) writeUnderRLock(k string) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.rows[k] = 1 // want `write to rows \(guarded by table\.mu\) holding only the read lock`
}

func (t *table) del(k string) {
	t.mu.Lock()
	delete(t.rows, k) // ok: exclusive
	t.mu.Unlock()
	delete(t.rows, k) // want `write to rows without holding table\.mu`
}

// sizeLocked's contract is that the caller already holds the lock.
//
//rwguard:holds mu
func (t *table) sizeLocked() int {
	return len(t.rows) // ok: seeded by the holds contract
}

func (t *table) callSites() int {
	t.mu.Lock()
	n := t.sizeLocked() // ok: held at the call
	t.mu.Unlock()
	n += t.sizeLocked() // want `call to sizeLocked requires table\.mu held \(//rwguard:holds\)`
	t.mu.RLock()
	n += t.sizeLocked() // want `call to sizeLocked requires table\.mu held exclusively`
	t.mu.RUnlock()
	return n
}

// scanLocked is a plain function with a type-qualified holds contract.
//
//rwguard:holds table.mu
func scanLocked(e *entry) bool {
	return e.dirty // ok
}

func fresh() *counterStore {
	c := &counterStore{name: "x"}
	c.count = 1 // ok: local under construction, not yet published
	return c
}

func closureLeak(c *counterStore) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.count++ // want `write to count without holding counterStore\.mu`
	}()
}

func ignored(c *counterStore) int {
	//rwlint:ignore lockguard monitoring snapshot; staleness is acceptable here
	return c.count
}

type badAnnotations struct {
	mu sync.Mutex
	a  int //rwguard:nope // want `no sync\.Mutex/sync\.RWMutex field named "nope"`
	b  int //rwguard:holds mu // want `//rwguard:holds belongs on a func declaration`
}

func misplaced(e *entry) bool {
	//rwguard:table.mu // want `misplaced //rwguard directive`
	return e.dirty // want `read of dirty without holding table\.mu`
}
