// Package a is the verdictswitch fixture: switches over
// memmodel.Section and memmodel.Recovery in exhaustive, defaulted and
// holey variants, plus an unguarded type the analyzer must ignore.
package a

import "repro/internal/memmodel"

// Classify exercises the exhaustiveness rules.
func Classify(s memmodel.Section, r memmodel.Recovery) string {
	switch s { // want `switch over memmodel\.Section is not exhaustive: missing memmodel\.SecExit, memmodel\.SecRecover`
	case memmodel.SecRemainder, memmodel.SecEntry, memmodel.SecCS:
		return "early"
	}

	switch s { // ok: explicit default catches future sections
	case memmodel.SecEntry:
		return "entry"
	default:
		return "other"
	}
}

// Verdicts exercises the Recovery side.
func Verdicts(r memmodel.Recovery) int {
	switch r { // ok: all three verdicts covered
	case memmodel.RecoverAbort, memmodel.RecoverCS, memmodel.RecoverDone:
		return 1
	}

	switch r { // want `switch over memmodel\.Recovery is not exhaustive: missing memmodel\.RecoverDone`
	case memmodel.RecoverAbort:
		return 2
	case memmodel.RecoverCS:
		return 3
	}

	switch x := 3; x { // ok: not a guarded enum
	case 3:
		return x
	}
	return 0
}
