// Package a is the spinloop fixture: raw Proc.Read polling loops (the
// busy-waits that inflate RMR counts and dodge the watchdog) alongside
// the accepted loop shapes — CAS retries, bounded scans, Await.
package a

import "repro/internal/memmodel"

// L is an algorithm-shaped struct with two shared words.
type L struct {
	v    memmodel.Var
	tail memmodel.Var
}

// Enter exercises the loop rules.
func (l *L) Enter(p memmodel.Proc) {
	for p.Read(l.v) != 0 { // want `busy-wait loop polls with Proc\.Read`
	}

	for { // want `busy-wait loop polls with Proc\.Read`
		if p.Read(l.v) == 0 {
			break
		}
	}

	// ok: a CAS retry loop makes writing steps; retries are bounded by
	// concurrent arrivals, not by another process's exit.
	for {
		cur := p.Read(l.tail)
		if _, ok := p.CAS(l.tail, cur, cur+1); ok {
			break
		}
	}

	// ok: the sanctioned local spin.
	p.Await(l.v, func(x uint64) bool { return x == 0 })

	// ok: bounded scan, the condition never consults shared memory.
	sum := uint64(0)
	for i := 0; i < 4; i++ {
		sum += p.Read(l.v)
	}
	_ = sum

	//rwlint:ignore spinloop deliberate raw poll: the coherence experiment measures exactly this traffic inflation
	for p.Read(l.v) != 1 {
	}
}
