// Package a is the purepred fixture: Await/AwaitMulti predicates
// covering the pure idioms (value-only tests, captured scalar reads,
// conversions) and every impurity class the analyzer flags.
package a

import "repro/internal/memmodel"

// W holds a signal variable plus captured-state bait.
type W struct {
	sig    memmodel.Var
	target uint64
	slots  []uint64
}

func helper(x uint64) bool { return x == 1 }

// Wait exercises the predicate rules.
func (w *W) Wait(p memmodel.Proc, seq uint64, k int) {
	p.Await(w.sig, func(x uint64) bool { return x == seq })                                             // ok: captured scalar, read-only
	p.Await(w.sig, func(x uint64) bool { return x>>1 == uint64(k) })                                    // ok: conversion
	p.AwaitMulti([]memmodel.Var{w.sig}, func(vs []uint64) bool { return vs[0] == seq && len(vs) == 1 }) // ok: indexing the argument

	var count uint64
	p.Await(w.sig, func(x uint64) bool { count++; return x > count }) // want `Await predicate mutates captured variable count`
	_ = count

	p.Await(w.sig, func(x uint64) bool { return helper(x) })          // want `Await predicate calls helper`
	p.Await(w.sig, func(x uint64) bool { return x == p.Read(w.sig) }) // want `Await predicate performs a shared-memory step p\.Read`
	p.Await(w.sig, func(x uint64) bool { return x == w.target })      // want `Await predicate reads captured state w\.target`
	p.Await(w.sig, func(x uint64) bool { return x == w.slots[0] })    // want `Await predicate reads captured state w\.slots`

	local := []uint64{1}
	p.Await(w.sig, func(x uint64) bool { return x == local[0] }) // want `Await predicate indexes captured local`

	p.Await(w.sig, helper) // want `Await predicate helper is not a func literal`

	//rwlint:ignore purepred reviewed: helper is a pure table lookup, inlining it would duplicate the table
	p.Await(w.sig, func(x uint64) bool { return helper(x) })
}
