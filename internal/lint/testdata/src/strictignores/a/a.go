// Package a is the strict-ignores fixture: one live suppression (it
// covers a real spinloop finding) and one dead one (nothing to suppress
// on its line), so -strict-ignores can be tested to keep the first and
// flag the second.
package a

import "repro/internal/memmodel"

type probe struct{ flag memmodel.Var }

func (p *probe) spinLive(pr memmodel.Proc) {
	//rwlint:ignore spinloop calibration probe needs the raw poll
	for pr.Read(p.flag) == 0 {
	}
}

//rwlint:ignore spinloop this guarded a loop that was rewritten away
func (p *probe) settled(pr memmodel.Proc) uint64 {
	return pr.Read(p.flag)
}
