// Package a is the memdiscipline fixture: one algorithm-shaped type
// exercising every rule — banned imports, post-Init shared mutation,
// goroutines and channels — next to the accepted idioms (Init and
// constructor wiring, locals, Proc steps, annotated scratch).
package a

import (
	"sync"        // want `import of "sync" in an algorithm package`
	"sync/atomic" // want `import of "sync/atomic" in an algorithm package`

	"repro/internal/memmodel"
)

// Lock is an algorithm-shaped struct with both model state and raw
// Go-heap state.
type Lock struct {
	state   memmodel.Var
	mu      sync.Mutex
	raw     uint64
	scratch []int
	seen    map[int]bool
}

// NewLock wires Go-side state before any process runs: allowed.
func NewLock(a memmodel.Allocator) *Lock {
	l := &Lock{}
	l.state = a.Alloc("state", 0)
	l.seen = map[int]bool{}
	return l
}

// Init is the Algorithm setup hook: field writes here are allowed.
func (l *Lock) Init(a memmodel.Allocator, nReaders, nWriters int) error {
	l.scratch = make([]int, nReaders)
	return nil
}

// Enter is passage-time code: every raw mutation below escapes RMR
// accounting and the coherence model.
func (l *Lock) Enter(p memmodel.Proc, slot int) {
	l.raw = 1           // want `write to struct field l\.raw outside Init/constructor`
	l.raw++             // want `write to struct field l\.raw outside Init/constructor`
	l.scratch[slot] = 7 // want `write to element of shared field l\.scratch\[slot\] outside Init/constructor`
	l.seen[slot] = true // want `write to element of shared field l\.seen\[slot\] outside Init/constructor`
	l.mu.Lock()         // the sync import is the finding; the call itself is not re-flagged
	l.mu.Unlock()
	_ = atomic.LoadUint64(&l.raw) // likewise for sync/atomic

	local := 0 // plain locals are fine
	local = slot
	p.Write(l.state, uint64(local)) // the sanctioned write path

	go func() { _ = slot }() // want `go statement in an algorithm package`
	ch := make(chan int, 1)
	ch <- 1 // want `channel send in an algorithm package`
	<-ch    // want `channel receive in an algorithm package`

	l.scratch[slot] = 9 //rwlint:ignore memdiscipline per-process scratch slot indexed by the caller's own id, never read cross-process
}
