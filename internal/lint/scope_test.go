package lint_test

import (
	"sort"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

// TestAlgorithmPackageScope pins the memdiscipline/spinloop boundary: the
// algorithm-only analyzers cover exactly the five packages written against
// memmodel.Proc, and in particular do NOT cover internal/parwork — the
// parallel sweep engine deliberately lives outside the simulated
// shared-memory discipline (it coordinates whole simulator executions with
// real goroutines and sync). Widening the scope map to include a harness
// package, or dropping an algorithm package from it, is a deliberate
// decision this test forces into review.
func TestAlgorithmPackageScope(t *testing.T) {
	want := []string{
		"repro/internal/baseline",
		"repro/internal/core",
		"repro/internal/counter",
		"repro/internal/mutex",
		"repro/internal/recoverable",
	}
	var got []string
	for p := range lint.AlgorithmPackages {
		got = append(got, p)
	}
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("AlgorithmPackages = %v, want exactly %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AlgorithmPackages = %v, want exactly %v", got, want)
		}
	}

	harness := []string{
		// parwork now also carries the work-stealing scheduler's sync/atomic
		// stats counters (steals, claims, idle probes) — real host atomics,
		// intentionally outside the simulated memory discipline.
		"repro/internal/parwork",
		"repro/internal/sim",
		"repro/internal/spec",
		"repro/internal/explore",
		// The lock service is real concurrency by design: goroutines, sync,
		// TCP. Its native.Backend use (per-shard passage counters) happens
		// under a conventional mutex, not the simulated discipline.
		"repro/internal/lockd",
		"repro/internal/lockd/wire",
		// Durability layer: WAL framing, snapshots, fsync goroutines — all
		// host I/O and real sync, never simulated memory.
		"repro/internal/lockd/durable",
	}
	for _, pkg := range harness {
		if lint.DefaultScope(lint.MemDiscipline, pkg) {
			t.Errorf("memdiscipline covers harness package %s; it must stay out of scope", pkg)
		}
		if lint.DefaultScope(lint.SpinLoop, pkg) {
			t.Errorf("spinloop covers harness package %s; it must stay out of scope", pkg)
		}
	}
	for pkg := range lint.AlgorithmPackages {
		if !lint.DefaultScope(lint.MemDiscipline, pkg) {
			t.Errorf("memdiscipline does not cover algorithm package %s", pkg)
		}
	}
	// The repo-wide analyzers still see everything, parwork included.
	if !lint.DefaultScope(lint.PurePred, "repro/internal/parwork") {
		t.Error("purepred must remain repo-wide")
	}
	// The service-layer analyzers DO cover lockd and the durability
	// layer — that is their reason to exist — while memdiscipline stays
	// out (asserted above). They are module-wide, so a rogue durable
	// state write or sentinel == in any package is visible.
	for _, a := range []*analysis.Analyzer{lint.LockGuard, lint.DurDiscipline, lint.ErrDiscipline} {
		for _, pkg := range []string{"repro/internal/lockd", "repro/internal/lockd/durable", "repro/internal/lockd/wire"} {
			if !lint.DefaultScope(a, pkg) {
				t.Errorf("%s does not cover service package %s", a.Name, pkg)
			}
		}
	}
}
