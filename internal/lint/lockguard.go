package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// LockGuard enforces annotation-declared mutex guarding: a struct field
// carrying a //rwguard:<mu> directive may only be read or written while
// <mu> is held. The directive names either a sibling sync.Mutex or
// sync.RWMutex field of the same struct (`//rwguard:mu`) or, for state
// owned by another struct in the same package, a type-qualified guard
// (`//rwguard:shard.mu` — the mu field of type shard). Functions whose
// contract is "caller must hold the lock" declare it with
// `//rwguard:holds <mu>` on the declaration; the analyzer then seeds
// the function body with the lock held and checks every call site.
//
// The checker is a per-function abstract interpreter over the held-lock
// set: Lock/RLock add a hold (exclusive/shared), Unlock/RUnlock remove
// it, and `defer mu.Unlock()` leaves the hold in place to the end of
// the function. Branches that terminate (return/panic) do not merge
// back; surviving branches merge by intersection, so a guard counts as
// held after a conditional only if every live path holds it. Writes
// require the exclusive lock; reads accept a shared (RLock) hold.
//
// Holds are matched per mutex *field* (type-based), not per instance:
// locking a.mu satisfies accesses through b when a and b are the same
// struct type. That imprecision is deliberate — instance aliasing is
// undecidable statically, and in practice a method touches the one
// instance it locked. Two escapes exist for the honest exceptions:
// locals freshly built from a composite literal (construction before
// publication needs no lock), and //rwlint:ignore lockguard with a
// reason.
var LockGuard = &analysis.Analyzer{
	Name: "lockguard",
	Doc:  "reads/writes of //rwguard-annotated fields must hold the declared mutex",
	Run:  runLockGuard,
}

// holdShared and holdExclusive grade a held guard: RLock grants shared
// (reads only), Lock grants exclusive.
const (
	holdShared    = 1
	holdExclusive = 2
)

// guardInfo is the annotation table collected from one package's syntax.
type guardInfo struct {
	// guards maps a guarded struct field to the mutex field protecting it.
	guards map[*types.Var]*types.Var
	// holds maps a function to the mutexes its callers must hold.
	holds map[*types.Func][]*types.Var
	// names renders a mutex field for diagnostics ("shard.mu").
	names map[*types.Var]string
}

func (gi *guardInfo) name(mu *types.Var) string {
	if n, ok := gi.names[mu]; ok {
		return n
	}
	return mu.Name()
}

func runLockGuard(pass *analysis.Pass) (any, error) {
	gi := collectGuards(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c := &lgChecker{pass: pass, gi: gi, reported: make(map[token.Pos]bool)}
			st := holdSet{}
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				for _, mu := range gi.holds[obj] {
					st[mu] = holdExclusive
				}
			}
			c.checkFunc(fn.Body, st)
		}
	}
	return nil, nil
}

// collectGuards parses every //rwguard directive in the package:
// field guards, function holds-contracts, and (reported as diagnostics)
// malformed or misplaced ones.
func collectGuards(pass *analysis.Pass) *guardInfo {
	gi := &guardInfo{
		guards: make(map[*types.Var]*types.Var),
		holds:  make(map[*types.Func][]*types.Var),
		names:  make(map[*types.Var]string),
	}
	consumed := make(map[*ast.Comment]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					collectFieldGuards(pass, gi, ts, st, consumed)
				}
			case *ast.FuncDecl:
				collectHolds(pass, gi, d, consumed)
			}
		}
		// Any rwguard comment not consumed above is attached to nothing
		// the analyzer understands — likely a typo in placement.
		for _, group := range file.Comments {
			for _, c := range group.List {
				if strings.HasPrefix(c.Text, "//rwguard:") && !consumed[c] {
					pass.Report(analysis.Diagnostic{Pos: c.Pos(), Message: "misplaced //rwguard directive: attach //rwguard:<mu> to a struct field and //rwguard:holds <mu> to a func declaration"})
				}
			}
		}
	}
	return gi
}

// collectFieldGuards records //rwguard:<mu> directives on the fields of
// one struct type.
func collectFieldGuards(pass *analysis.Pass, gi *guardInfo, ts *ast.TypeSpec, st *ast.StructType, consumed map[*ast.Comment]bool) {
	structType := structOf(pass, ts)
	for _, field := range st.Fields.List {
		for _, group := range []*ast.CommentGroup{field.Doc, field.Comment} {
			if group == nil {
				continue
			}
			for _, c := range group.List {
				rest, ok := strings.CutPrefix(c.Text, "//rwguard:")
				if !ok {
					continue
				}
				consumed[c] = true
				// The reference is the first token; anything after it is
				// prose ("//rwguard:mu also covers the queue links").
				parts := strings.Fields(rest)
				if len(parts) == 0 {
					pass.Report(analysis.Diagnostic{Pos: c.Pos(), Message: "empty //rwguard directive: name the guarding mutex field, //rwguard:<mu>"})
					continue
				}
				ref := parts[0]
				if ref == "holds" {
					pass.Report(analysis.Diagnostic{Pos: c.Pos(), Message: "//rwguard:holds belongs on a func declaration, not a struct field; a field takes //rwguard:<mu>"})
					continue
				}
				mu, display, err := resolveGuardRef(pass, ref, structType, ts.Name.Name)
				if err != "" {
					pass.Report(analysis.Diagnostic{Pos: c.Pos(), Message: err})
					continue
				}
				gi.names[mu] = display
				if len(field.Names) == 0 {
					pass.Report(analysis.Diagnostic{Pos: c.Pos(), Message: "//rwguard on an embedded field is not supported; name the field"})
					continue
				}
				for _, name := range field.Names {
					if fv, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						gi.guards[fv] = mu
					}
				}
			}
		}
	}
}

// collectHolds records a //rwguard:holds <mu> contract from a func
// declaration's doc comment.
func collectHolds(pass *analysis.Pass, gi *guardInfo, fn *ast.FuncDecl, consumed map[*ast.Comment]bool) {
	if fn.Doc == nil {
		return
	}
	for _, c := range fn.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//rwguard:")
		if !ok {
			continue
		}
		consumed[c] = true
		fields := strings.Fields(rest)
		if len(fields) < 2 || fields[0] != "holds" {
			pass.Report(analysis.Diagnostic{Pos: c.Pos(), Message: "malformed //rwguard directive on a func: use //rwguard:holds <mu> (one guard per directive line)"})
			continue
		}
		obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
		if !ok {
			continue
		}
		var recvStruct *types.Struct
		var recvName string
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			if named, ok := derefNamed(sig.Recv().Type()); ok {
				recvName = named.Obj().Name()
				recvStruct, _ = named.Underlying().(*types.Struct)
			}
		}
		mu, display, err := resolveGuardRef(pass, fields[1], recvStruct, recvName)
		if err != "" {
			pass.Report(analysis.Diagnostic{Pos: c.Pos(), Message: err})
			continue
		}
		gi.names[mu] = display
		gi.holds[obj] = append(gi.holds[obj], mu)
	}
}

// resolveGuardRef resolves a guard reference — "mu" against the
// enclosing struct, or "Type.mu" against a struct type in the package
// scope — to the mutex field it names plus a display name. The third
// result is a non-empty diagnostic message on failure.
func resolveGuardRef(pass *analysis.Pass, ref string, enclosing *types.Struct, enclosingName string) (*types.Var, string, string) {
	typeName, fieldName, qualified := strings.Cut(ref, ".")
	if !qualified {
		fieldName = ref
		if enclosing == nil {
			return nil, "", fmt.Sprintf("//rwguard:%s cannot resolve a bare guard name here; qualify it as Type.%s", ref, ref)
		}
		if mu := mutexField(enclosing, fieldName); mu != nil {
			return mu, enclosingName + "." + fieldName, ""
		}
		return nil, "", fmt.Sprintf("//rwguard:%s: struct %s has no sync.Mutex/sync.RWMutex field named %q", ref, enclosingName, fieldName)
	}
	obj := pass.Pkg.Scope().Lookup(typeName)
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil, "", fmt.Sprintf("//rwguard:%s: no type %q in package %s", ref, typeName, pass.Pkg.Name())
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, "", fmt.Sprintf("//rwguard:%s: %s is not a struct type", ref, typeName)
	}
	if mu := mutexField(st, fieldName); mu != nil {
		return mu, ref, ""
	}
	return nil, "", fmt.Sprintf("//rwguard:%s: struct %s has no sync.Mutex/sync.RWMutex field named %q", ref, typeName, fieldName)
}

// mutexField returns the named field of st if it exists and has mutex
// type.
func mutexField(st *types.Struct, name string) *types.Var {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == name && mutexKind(f.Type()) != 0 {
			return f
		}
	}
	return nil
}

// mutexKind classifies t: 0 not a mutex, holdShared-capable RWMutex, or
// plain Mutex (exclusive-only). Both map to "lockable"; the distinction
// only matters for which methods exist.
func mutexKind(t types.Type) int {
	named, ok := t.(*types.Named)
	if !ok {
		return 0
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return 0
	}
	switch obj.Name() {
	case "Mutex":
		return 1
	case "RWMutex":
		return 2
	}
	return 0
}

// structOf resolves a TypeSpec to its *types.Struct, also registering
// display names for its mutex fields.
func structOf(pass *analysis.Pass, ts *ast.TypeSpec) *types.Struct {
	tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return nil
	}
	st, _ := tn.Type().Underlying().(*types.Struct)
	return st
}

// derefNamed unwraps pointers to a named type.
func derefNamed(t types.Type) (*types.Named, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return n, ok
}

// holdSet maps held mutex fields to the strength of the hold.
type holdSet map[*types.Var]int

func (h holdSet) clone() holdSet {
	out := make(holdSet, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// intersectHolds keeps a guard only if both paths hold it, at the
// weaker of the two strengths.
func intersectHolds(a, b holdSet) holdSet {
	out := holdSet{}
	for k, va := range a {
		if vb, ok := b[k]; ok {
			if vb < va {
				out[k] = vb
			} else {
				out[k] = va
			}
		}
	}
	return out
}

// lgChecker runs the abstract interpretation for one function body.
type lgChecker struct {
	pass     *analysis.Pass
	gi       *guardInfo
	fresh    map[types.Object]bool
	silent   bool
	reported map[token.Pos]bool
}

// checkFunc interprets one function (or function literal) body with the
// given entry hold set. Each body gets its own fresh-local table:
// a local that escaped into a closure is no longer provably private.
func (c *lgChecker) checkFunc(body *ast.BlockStmt, st holdSet) {
	savedFresh := c.fresh
	c.fresh = make(map[types.Object]bool)
	c.stmts(body.List, st)
	c.fresh = savedFresh
}

func (c *lgChecker) report(pos token.Pos, format string, args ...any) {
	if c.silent || c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Report(analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// stmts interprets a statement list, returning the exit hold set and
// whether every path through the list terminates (return/panic).
func (c *lgChecker) stmts(list []ast.Stmt, st holdSet) (holdSet, bool) {
	for _, s := range list {
		var term bool
		st, term = c.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (c *lgChecker) stmt(s ast.Stmt, st holdSet) (holdSet, bool) {
	switch s := s.(type) {
	case nil:
		return st, false
	case *ast.ExprStmt:
		c.scanExpr(s.X, st, false)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return st, true
			}
		}
		return st, false
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			c.scanExpr(rhs, st, false)
		}
		if s.Tok == token.DEFINE && len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && isFreshInit(s.Rhs[i]) {
					if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
						c.fresh[obj] = true
					}
				}
			}
		}
		for _, lhs := range s.Lhs {
			if _, ok := lhs.(*ast.Ident); ok && s.Tok == token.DEFINE {
				continue
			}
			c.scanExpr(lhs, st, true)
		}
		return st, false
	case *ast.IncDecStmt:
		c.scanExpr(s.X, st, true)
		return st, false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					c.scanExpr(v, st, false)
				}
				// `var x T` (zero value) and `var x = T{...}` both
				// construct privately.
				for i, name := range vs.Names {
					freshDecl := len(vs.Values) == 0 || (i < len(vs.Values) && isFreshInit(vs.Values[i]))
					if freshDecl {
						if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
							c.fresh[obj] = true
						}
					}
				}
			}
		}
		return st, false
	case *ast.SendStmt:
		c.scanExpr(s.Chan, st, false)
		c.scanExpr(s.Value, st, false)
		return st, false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.scanExpr(r, st, false)
		}
		return st, true
	case *ast.BranchStmt:
		// break/continue/goto leave the linear flow; treating them as
		// terminating keeps their (possibly lock-holding) state out of
		// the merge. Conservative: a break-carried hold is dropped.
		return st, true
	case *ast.DeferStmt:
		c.deferOrGo(s.Call, st, true)
		return st, false
	case *ast.GoStmt:
		c.deferOrGo(s.Call, st, false)
		return st, false
	case *ast.BlockStmt:
		return c.stmts(s.List, st)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st)
		}
		c.scanExpr(s.Cond, st, false)
		thenSt, thenTerm := c.stmts(s.Body.List, st.clone())
		elseSt, elseTerm := st.clone(), false
		if s.Else != nil {
			elseSt, elseTerm = c.stmt(s.Else, st.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return intersectHolds(thenSt, elseSt), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st)
		}
		merged := c.loopFixpoint(st, func(entry holdSet) holdSet {
			if s.Cond != nil {
				c.scanExpr(s.Cond, entry, false)
			}
			out, _ := c.stmts(s.Body.List, entry)
			if s.Post != nil {
				out, _ = c.stmt(s.Post, out)
			}
			return out
		})
		if s.Cond != nil {
			c.scanExpr(s.Cond, merged, false)
		}
		exit, _ := c.stmts(s.Body.List, merged.clone())
		if s.Post != nil {
			exit, _ = c.stmt(s.Post, exit)
		}
		return intersectHolds(merged, exit), false
	case *ast.RangeStmt:
		c.scanExpr(s.X, st, false)
		if s.Tok == token.ASSIGN {
			if s.Key != nil {
				c.scanExpr(s.Key, st, true)
			}
			if s.Value != nil {
				c.scanExpr(s.Value, st, true)
			}
		}
		merged := c.loopFixpoint(st, func(entry holdSet) holdSet {
			out, _ := c.stmts(s.Body.List, entry)
			return out
		})
		exit, _ := c.stmts(s.Body.List, merged.clone())
		return intersectHolds(merged, exit), false
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st)
		}
		if s.Tag != nil {
			c.scanExpr(s.Tag, st, false)
		}
		return c.clauses(s.Body.List, st, false)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st)
		}
		st, _ = c.stmt(s.Assign, st)
		return c.clauses(s.Body.List, st, false)
	case *ast.SelectStmt:
		return c.clauses(s.Body.List, st, true)
	default:
		return st, false
	}
}

// loopFixpoint computes a hold set valid at the top of every loop
// iteration: the intersection of the entry state with the body's exit
// state, iterated (silently) to a fixed point. Holds only shrink, so
// this converges in at most len(entry) rounds; three passes cover every
// real body in this module with margin.
func (c *lgChecker) loopFixpoint(entry holdSet, body func(holdSet) holdSet) holdSet {
	saved := c.silent
	c.silent = true
	merged := entry.clone()
	for i := 0; i < 3; i++ {
		exit := body(merged.clone())
		next := intersectHolds(merged, exit)
		if len(next) == len(merged) {
			merged = next
			break
		}
		merged = next
	}
	c.silent = saved
	return merged
}

// clauses interprets switch/select clause bodies from a common entry
// state and merges the survivors. isSelect: every select clause is a
// CommClause whose comm statement runs before its body; a switch with
// no default can fall through untouched.
func (c *lgChecker) clauses(list []ast.Stmt, st holdSet, isSelect bool) (holdSet, bool) {
	var exits []holdSet
	hasDefault := false
	anyClause := false
	for _, cl := range list {
		anyClause = true
		var body []ast.Stmt
		entry := st.clone()
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				c.scanExpr(e, entry, false)
			}
			body = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				entry, _ = c.stmt(cl.Comm, entry)
			}
			body = cl.Body
		}
		exit, term := c.stmts(body, entry)
		if !term {
			exits = append(exits, exit)
		}
	}
	exhaustive := isSelect || hasDefault
	if !exhaustive {
		exits = append(exits, st)
	}
	if len(exits) == 0 {
		// Every clause terminated and the statement always takes one.
		return st, anyClause && exhaustive
	}
	merged := exits[0]
	for _, e := range exits[1:] {
		merged = intersectHolds(merged, e)
	}
	return merged, false
}

// deferOrGo handles `defer call` / `go call`. A deferred Unlock keeps
// the hold live to function end (the dominant idiom), so it is a
// no-op on the state; a function literal runs later in an unknown lock
// context, so its body is checked from an empty hold set.
func (c *lgChecker) deferOrGo(call *ast.CallExpr, st holdSet, isDefer bool) {
	if mu, _, ok := c.mutexEvent(call); ok && mu != nil {
		return // defer mu.Unlock() — hold persists; defer mu.Lock() is nonsense we leave alone
	}
	if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
		c.checkFunc(lit.Body, holdSet{})
		for _, a := range call.Args {
			c.scanExpr(a, st, false)
		}
		return
	}
	for _, a := range call.Args {
		c.scanExpr(a, st, false)
	}
	c.scanExpr(call.Fun, st, false)
}

// mutexEvent recognizes base.mu.Lock()/Unlock()/RLock()/RUnlock()
// where mu is a struct mutex field, returning the field and the method
// name.
func (c *lgChecker) mutexEvent(call *ast.CallExpr) (*types.Var, string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, "", false
	}
	inner, ok := unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	fs, ok := c.pass.TypesInfo.Selections[inner]
	if !ok || fs.Kind() != types.FieldVal {
		return nil, "", false
	}
	fv, ok := fs.Obj().(*types.Var)
	if !ok || mutexKind(fv.Type()) == 0 {
		return nil, "", false
	}
	return fv, sel.Sel.Name, true
}

// scanExpr walks an expression, applying lock events, checking guarded
// field accesses (wr marks a write context that propagates down
// selector/index/star chains), enforcing holds-contracts at call
// sites, and descending into function literals with a fresh context.
func (c *lgChecker) scanExpr(e ast.Expr, st holdSet, wr bool) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.ParenExpr:
		c.scanExpr(e.X, st, wr)
	case *ast.Ident:
		return
	case *ast.SelectorExpr:
		c.checkAccess(e, st, wr)
		c.scanExpr(e.X, st, wr)
	case *ast.IndexExpr:
		c.scanExpr(e.X, st, wr)
		c.scanExpr(e.Index, st, false)
	case *ast.SliceExpr:
		c.scanExpr(e.X, st, wr)
		c.scanExpr(e.Low, st, false)
		c.scanExpr(e.High, st, false)
		c.scanExpr(e.Max, st, false)
	case *ast.StarExpr:
		c.scanExpr(e.X, st, wr)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			// Taking the address lets the value escape the lock's
			// protection; require the write-grade hold.
			c.scanExpr(e.X, st, true)
			return
		}
		c.scanExpr(e.X, st, false)
	case *ast.BinaryExpr:
		c.scanExpr(e.X, st, false)
		c.scanExpr(e.Y, st, false)
	case *ast.KeyValueExpr:
		c.scanExpr(e.Key, st, false)
		c.scanExpr(e.Value, st, false)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			c.scanExpr(el, st, false)
		}
	case *ast.TypeAssertExpr:
		c.scanExpr(e.X, st, false)
	case *ast.FuncLit:
		c.checkFunc(e.Body, holdSet{})
	case *ast.CallExpr:
		if mu, method, ok := c.mutexEvent(e); ok {
			switch method {
			case "Lock":
				st[mu] = holdExclusive
			case "RLock":
				st[mu] = holdShared
			case "Unlock", "RUnlock":
				delete(st, mu)
			}
			return
		}
		if id, ok := unparen(e.Fun).(*ast.Ident); ok && id.Name == "delete" {
			if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(e.Args) == 2 {
				c.scanExpr(e.Args[0], st, true)
				c.scanExpr(e.Args[1], st, false)
				return
			}
		}
		c.checkHoldsCall(e, st)
		c.scanExpr(e.Fun, st, false)
		for _, a := range e.Args {
			c.scanExpr(a, st, false)
		}
	default:
		return
	}
}

// checkHoldsCall enforces //rwguard:holds contracts: the caller must
// hold the declared mutexes exclusively at the call site.
func (c *lgChecker) checkHoldsCall(call *ast.CallExpr, st holdSet) {
	var obj *types.Func
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj, _ = c.pass.TypesInfo.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		obj, _ = c.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	}
	if obj == nil {
		return
	}
	for _, mu := range c.gi.holds[obj] {
		switch st[mu] {
		case holdExclusive:
		case holdShared:
			c.report(call.Pos(), "call to %s requires %s held exclusively (//rwguard:holds), but the caller holds only the read lock", obj.Name(), c.gi.name(mu))
		default:
			c.report(call.Pos(), "call to %s requires %s held (//rwguard:holds), but the caller does not hold it", obj.Name(), c.gi.name(mu))
		}
	}
}

// checkAccess reports guarded-field accesses made without the declared
// mutex held.
func (c *lgChecker) checkAccess(sel *ast.SelectorExpr, st holdSet, wr bool) {
	fs, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || fs.Kind() != types.FieldVal {
		return
	}
	fv, ok := fs.Obj().(*types.Var)
	if !ok {
		return
	}
	mu, guarded := c.gi.guards[fv]
	if !guarded || c.rootIsFresh(sel) {
		return
	}
	switch {
	case st[mu] == holdExclusive:
	case st[mu] == holdShared && !wr:
	case st[mu] == holdShared && wr:
		c.report(sel.Sel.Pos(), "write to %s (guarded by %s) holding only the read lock; writes need %s.Lock()", fv.Name(), c.gi.name(mu), c.gi.name(mu))
	default:
		verb := "read of"
		if wr {
			verb = "write to"
		}
		c.report(sel.Sel.Pos(), "%s %s without holding %s (declared //rwguard:%s); lock it, add a //rwguard:holds contract, or //rwlint:ignore with a reason", verb, fv.Name(), c.gi.name(mu), c.gi.name(mu))
	}
}

// rootIsFresh reports whether the selector chain is rooted at a local
// this function built from a composite literal (or zero-value var):
// state under construction is private until published, so it needs no
// lock.
func (c *lgChecker) rootIsFresh(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			obj := c.pass.TypesInfo.Uses[x]
			return obj != nil && c.fresh[obj]
		default:
			return false
		}
	}
}

// isFreshInit reports whether an initializer expression builds a brand
// new value: T{...}, &T{...}, or new(T).
func isFreshInit(e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, ok := unparen(e.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		id, ok := unparen(e.Fun).(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}
