package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestVerdictSwitch(t *testing.T) {
	findings := analysistest.Run(t, lint.VerdictSwitch, "testdata/src/verdictswitch/a")
	if len(findings) != 2 {
		t.Fatalf("findings = %d, want 2: %v", len(findings), findings)
	}

	// Each hole comes with the panicking-default suggested fix.
	for _, f := range findings {
		if len(f.Diagnostic.SuggestedFixes) != 1 {
			t.Errorf("%s: no suggested fix", f)
			continue
		}
		text := string(f.Diagnostic.SuggestedFixes[0].TextEdits[0].NewText)
		if !strings.Contains(text, "default:") || !strings.Contains(text, "panic(") {
			t.Errorf("suggested fix %q is not a panicking default", text)
		}
	}
}
