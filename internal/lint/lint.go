// Package lint is the rwlint analyzer suite: static checks that enforce
// the simulated shared-memory discipline every result in this repo
// depends on. Algorithm code must touch shared state exclusively through
// memmodel.Proc steps (Read/Write/CAS/FetchAdd/Await) — one raw field
// write or impure Await predicate silently corrupts RMR accounting, the
// write-through/write-back coherence model, and the crash/stall fault
// sweeps, without failing a single functional test.
//
// Seven analyzers guard the invariants. Four cover the simulator side:
//
//   - memdiscipline: algorithm packages may not mutate Go-heap state
//     shared across simulated processes (struct fields, field-held
//     slices/maps) after Init, nor use sync, sync/atomic, goroutines or
//     channels.
//   - purepred: predicates passed to Await/AwaitMulti must be pure
//     functions of the spun-on value.
//   - spinloop: hand-rolled busy-wait loops over Proc.Read must be
//     Proc.Await, or local-spin vs RMR classification is distorted.
//   - verdictswitch: switches over memmodel.Recovery and
//     memmodel.Section must be exhaustive.
//
// Three cover the lock service (internal/lockd and its durability
// layer), whose crash-recovery guarantees are exactly as strong as the
// discipline of its mutex-guarded state transitions and WAL protocol:
//
//   - lockguard: struct fields annotated //rwguard:<mu> may only be
//     read or written while their mutex is held (or under a declared
//     //rwguard:holds caller-holds contract).
//   - durdiscipline: every WAL record kind is handled by State.Apply,
//     durable shadow state mutates only under Apply, and the
//     snapshot/truncate ordering helpers stay inside the Store.
//   - errdiscipline: typed sentinel errors are compared with
//     errors.Is/As (never == or string matching), and every exported
//     Err*/​*Error declaration carries a doc comment.
//
// Deliberate exceptions are annotated in the source:
//
//	//rwlint:ignore <analyzer>[,<analyzer>] <reason>
//
// placed on the offending line or the line above. The reason is
// mandatory; a bare ignore is itself a diagnostic.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// memmodelPath is the import path of the abstract machine model package.
const memmodelPath = "repro/internal/memmodel"

// AlgorithmPackages are the packages holding algorithm implementations
// written against memmodel.Proc; memdiscipline and spinloop apply only
// here (harness and backend packages legitimately use Go concurrency).
// In particular internal/parwork — the parallel sweep engine — is out of
// scope BY DESIGN: it coordinates whole simulator executions with real
// goroutines, sync and sync/atomic, one abstraction level above the
// simulated shared-memory steps the discipline governs. The boundary is
// pinned by TestAlgorithmPackageScope.
var AlgorithmPackages = map[string]bool{
	"repro/internal/core":        true,
	"repro/internal/baseline":    true,
	"repro/internal/mutex":       true,
	"repro/internal/recoverable": true,
	"repro/internal/counter":     true,
}

// Analyzers returns the full rwlint suite.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		MemDiscipline, PurePred, SpinLoop, VerdictSwitch,
		LockGuard, DurDiscipline, ErrDiscipline,
	}
}

// DefaultScope reports whether analyzer a applies to the package at
// pkgPath: algorithm-only analyzers are restricted to AlgorithmPackages
// (and lint fixtures); the rest run everywhere.
func DefaultScope(a *analysis.Analyzer, pkgPath string) bool {
	switch a {
	case MemDiscipline, SpinLoop:
		return AlgorithmPackages[pkgPath] || strings.Contains(pkgPath, "/lint/testdata/")
	default:
		return true
	}
}

// Finding is one diagnostic located in a package, after suppression
// processing.
type Finding struct {
	// Analyzer is the reporting analyzer's name ("rwlint" for directive
	// syntax problems found by the driver itself).
	Analyzer string
	// Pos is the resolved source position.
	Pos token.Position
	// Diagnostic is the underlying report.
	Diagnostic analysis.Diagnostic
	// Suppressed reports whether a well-formed rwlint:ignore directive
	// covers this finding.
	Suppressed bool
	// Reason is the justification from the suppressing directive.
	Reason string
}

// String formats the finding in file:line:col: [analyzer] message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Diagnostic.Message)
}

// Options configures a Run beyond the analyzer list and scope.
type Options struct {
	// Scope decides which analyzers apply to which package path; nil runs
	// everything everywhere (what fixture tests want).
	Scope func(*analysis.Analyzer, string) bool
	// StrictIgnores reports every well-formed rwlint:ignore directive
	// that suppressed nothing, provided at least one analyzer it names
	// actually ran on the package — a dead suppression is a latent
	// review bypass waiting for the code around it to change.
	StrictIgnores bool
}

// Run applies the analyzers to every package, using scope to decide
// which analyzers apply where (nil runs everything everywhere, which is
// what fixture tests want). Suppressed findings are returned too, marked,
// so callers can count them; directive syntax errors surface as findings
// attributed to the pseudo-analyzer "rwlint".
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer, scope func(*analysis.Analyzer, string) bool) ([]Finding, error) {
	return RunOpts(pkgs, analyzers, Options{Scope: scope})
}

// RunOpts is Run with full Options.
func RunOpts(pkgs []*load.Package, analyzers []*analysis.Analyzer, opts Options) ([]Finding, error) {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	scope := opts.Scope
	var findings []Finding
	for _, pkg := range pkgs {
		dirs, bad := collectDirectives(pkg, known)
		findings = append(findings, bad...)
		ran := make(map[string]bool)
		for _, a := range analyzers {
			if scope != nil && !scope(a, pkg.PkgPath) {
				continue
			}
			ran[a.Name] = true
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				f := Finding{Analyzer: a.Name, Pos: pos, Diagnostic: d}
				if dir, ok := dirs.match(a.Name, pos); ok {
					f.Suppressed = true
					f.Reason = dir.reason
				}
				findings = append(findings, f)
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
		if opts.StrictIgnores {
			findings = append(findings, dirs.unused(ran)...)
		}
	}
	sort.SliceStable(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings, nil
}

// directive is one parsed, well-formed rwlint:ignore comment.
type directive struct {
	analyzers map[string]bool
	reason    string
	pos       token.Position
	used      bool
}

// directiveIndex locates directives by file and line.
type directiveIndex map[string]map[int]*directive

// match reports whether a directive for analyzer covers a diagnostic at
// pos: same line, or the line immediately above. Matching marks the
// directive used for -strict-ignores accounting.
func (idx directiveIndex) match(analyzer string, pos token.Position) (*directive, bool) {
	lines := idx[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if d, ok := lines[line]; ok && d.analyzers[analyzer] {
			d.used = true
			return d, true
		}
	}
	return nil, false
}

// unused returns a finding for every directive that suppressed nothing,
// restricted to directives naming at least one analyzer that actually
// ran on the package (ran is the set of in-scope analyzer names) — a
// directive for an out-of-scope analyzer is not evidence of staleness.
func (idx directiveIndex) unused(ran map[string]bool) []Finding {
	var out []Finding
	for _, lines := range idx {
		for _, d := range lines {
			if d.used {
				continue
			}
			relevant := false
			for n := range d.analyzers {
				if ran[n] {
					relevant = true
					break
				}
			}
			if !relevant {
				continue
			}
			out = append(out, Finding{
				Analyzer: "rwlint",
				Pos:      d.pos,
				Diagnostic: analysis.Diagnostic{Message: fmt.Sprintf(
					"rwlint:ignore directive suppresses nothing (analyzers %s reported no finding here): delete it or re-justify it",
					strings.Join(sortedNames(d.analyzers), ", "))},
			})
		}
	}
	return out
}

// collectDirectives scans a package's comments for rwlint:ignore
// directives, returning the index of well-formed ones plus a finding for
// every malformed one (missing reason, unknown analyzer name).
func collectDirectives(pkg *load.Package, known map[string]bool) (directiveIndex, []Finding) {
	idx := make(directiveIndex)
	var bad []Finding
	report := func(pos token.Pos, format string, args ...any) {
		bad = append(bad, Finding{
			Analyzer:   "rwlint",
			Pos:        pkg.Fset.Position(pos),
			Diagnostic: analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)},
		})
	}
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				rest, ok := strings.CutPrefix(c.Text, "//rwlint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "rwlint:ignore needs an analyzer list and a reason: //rwlint:ignore <analyzer>[,<analyzer>] <reason>")
					continue
				}
				names := strings.Split(fields[0], ",")
				d := &directive{analyzers: make(map[string]bool), reason: strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))}
				valid := true
				for _, n := range names {
					if !known[n] {
						report(c.Pos(), "rwlint:ignore names unknown analyzer %q (have %s)", n, strings.Join(knownNames(known), ", "))
						valid = false
						break
					}
					d.analyzers[n] = true
				}
				if !valid {
					continue
				}
				if d.reason == "" {
					report(c.Pos(), "rwlint:ignore requires a justification after the analyzer list; an unexplained suppression is a review bypass")
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d.pos = pos
				if idx[pos.Filename] == nil {
					idx[pos.Filename] = make(map[int]*directive)
				}
				idx[pos.Filename][pos.Line] = d
			}
		}
	}
	return idx, bad
}

// knownNames returns the sorted analyzer names for error messages.
func knownNames(known map[string]bool) []string {
	return sortedNames(known)
}

// sortedNames returns a set's keys in sorted order.
func sortedNames(set map[string]bool) []string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
