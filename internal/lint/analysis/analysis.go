// Package analysis is a self-contained, dependency-free subset of the
// golang.org/x/tools/go/analysis API: an Analyzer is a named check with a
// Run function that inspects one type-checked package through a Pass and
// reports Diagnostics.
//
// The repo builds offline (no module proxy, no vendored third-party code),
// so the real x/tools framework is unavailable; this package mirrors its
// shapes exactly so the rwlint analyzers can migrate to a stock
// multichecker by swapping one import if the dependency ever lands.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// rwlint:ignore directives. It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph documentation shown by rwlint -help.
	Doc string

	// Run applies the analyzer to one package and returns an optional
	// result (unused by the rwlint driver, kept for API fidelity).
	Run func(*Pass) (any, error)
}

// Pass provides one package's syntax and type information to an
// Analyzer's Run function, plus the Report sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a source position. End and Category are
// optional; SuggestedFixes carry mechanical rewrites when the analyzer
// can compute one.
type Diagnostic struct {
	Pos            token.Pos
	End            token.Pos
	Category       string
	Message        string
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is a mechanically applicable rewrite: a message plus the
// text edits that implement it.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces the source range [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}
