package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestPurePred(t *testing.T) {
	findings := analysistest.Run(t, lint.PurePred, "testdata/src/purepred/a")
	if len(findings) == 0 {
		t.Fatal("fixture produced no findings")
	}
}

func TestPurePredEscapeHatch(t *testing.T) {
	sup := analysistest.Suppressed(t, lint.PurePred, "testdata/src/purepred/a")
	if len(sup) != 1 {
		t.Fatalf("suppressed findings = %d, want 1: %v", len(sup), sup)
	}
}
