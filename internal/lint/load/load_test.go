package load_test

import (
	"testing"

	"repro/internal/lint/load"
)

// TestLoadModulePackage checks the from-source loader produces a fully
// typed package with syntax, comments and type info.
func TestLoadModulePackage(t *testing.T) {
	loader, err := load.NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	if loader.ModPath != "repro" {
		t.Fatalf("module path = %q, want repro", loader.ModPath)
	}
	pkgs, err := loader.Load("../../memmodel")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.PkgPath != "repro/internal/memmodel" {
		t.Errorf("pkg path = %q", pkg.PkgPath)
	}
	if pkg.Types == nil || pkg.Types.Scope().Lookup("Proc") == nil {
		t.Error("memmodel.Proc not in scope after load")
	}
	if len(pkg.Info.Defs) == 0 || len(pkg.Info.Uses) == 0 {
		t.Error("type info not populated")
	}
}

// TestLoadRecursive checks pattern expansion skips testdata but loads
// sibling packages, and that explicit testdata paths still work.
func TestLoadRecursive(t *testing.T) {
	loader, err := load.NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("../../lint/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if p.PkgPath == "repro/internal/lint/testdata/src/spinloop/a" {
			t.Errorf("recursive walk descended into testdata: %s", p.PkgPath)
		}
	}
	fix, err := loader.Load("../testdata/src/spinloop/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(fix) != 1 || fix[0].Types == nil {
		t.Fatalf("explicit testdata load failed: %v", fix)
	}
}
