// Package load type-checks packages of this module from source using only
// the standard library, for consumption by the rwlint analyzers.
//
// The container this repo builds in has no module proxy and no GOPATH
// cache, so golang.org/x/tools/go/packages is not available. The module
// also has zero external dependencies, which makes a from-source loader
// small: an import path resolves either into this module (repro/... maps
// onto the module root) or into GOROOT/src. Dependencies are type-checked
// with IgnoreFuncBodies (only their package-level API matters to the
// analyzers); the packages named by the load patterns get a full check
// with a populated types.Info.
package load

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully type-checked target package.
type Package struct {
	// PkgPath is the import path ("repro/internal/core").
	PkgPath string
	// Dir is the directory holding the package's sources.
	Dir string
	// Fset is the loader-wide file set all positions resolve through.
	Fset *token.FileSet
	// Files is the parsed syntax of the package's non-test Go files,
	// with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checking facts for Files.
	Info *types.Info
	// Errs collects type errors encountered in this package. Load fails
	// on any, but they are kept for diagnostics.
	Errs []error
}

// Loader resolves and type-checks packages. It caches dependency checks,
// so loading many overlapping targets through one Loader is cheap.
type Loader struct {
	// ModRoot is the absolute path of the module root directory.
	ModRoot string
	// ModPath is the module path from go.mod ("repro").
	ModPath string

	fset    *token.FileSet
	shallow map[string]*types.Package // deps, bodies ignored
	loading map[string]bool           // import-cycle guard
}

// NewLoader locates the enclosing module by walking up from dir (or the
// working directory if dir is empty) to the nearest go.mod.
func NewLoader(dir string) (*Loader, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return nil, err
		}
		dir = wd
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("load: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{
		ModRoot: root,
		ModPath: modPath,
		fset:    token.NewFileSet(),
		shallow: make(map[string]*types.Package),
		loading: make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("load: no module directive in %s", gomod)
}

// Load expands the patterns and returns one fully checked Package per
// matched directory, in pattern order. Supported patterns: "./..." and
// "dir/..." recursive walks (testdata, vendor and dot/underscore
// directories are skipped), plus explicit relative or absolute
// directories, which may point anywhere in the module including testdata.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.check(dir)
		if err != nil {
			if errors.As(err, new(*build.NoGoError)) {
				continue // directory with no non-test Go files
			}
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// expand turns patterns into a deduplicated list of package directories.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = l.ModRoot
			}
		}
		if !filepath.IsAbs(pat) {
			abs, err := filepath.Abs(pat)
			if err != nil {
				return nil, err
			}
			pat = abs
		}
		if !strings.HasPrefix(pat, l.ModRoot) {
			return nil, fmt.Errorf("load: pattern %s is outside module %s", pat, l.ModRoot)
		}
		if !recursive {
			add(pat)
			continue
		}
		err := filepath.WalkDir(pat, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != pat && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			glob, _ := filepath.Glob(filepath.Join(path, "*.go"))
			for _, g := range glob {
				if !strings.HasSuffix(g, "_test.go") {
					add(path)
					break
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// importPathFor maps a module-internal directory to its import path.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

// dirFor resolves an import path to a source directory: module-internal
// paths map onto the module root, everything else must be in GOROOT/src.
func (l *Loader) dirFor(path string) (string, error) {
	if path == l.ModPath {
		return l.ModRoot, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModRoot, filepath.FromSlash(rest)), nil
	}
	dir := filepath.Join(build.Default.GOROOT, "src", filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		return dir, nil
	}
	return "", fmt.Errorf("load: cannot resolve import %q (module has no external dependencies)", path)
}

// Import implements types.Importer over the shallow dependency cache.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.shallow[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load: %s: %w", path, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{
		Importer:         l,
		IgnoreFuncBodies: true,
		FakeImportC:      true,
		// Dependencies only contribute their package-level API; tolerate
		// soft errors (e.g. build-tag oddities in GOROOT sources).
		Error: func(error) {},
	}
	pkg, err := conf.Check(path, l.fset, files, nil)
	if pkg == nil {
		return nil, fmt.Errorf("load: checking %s: %w", path, err)
	}
	l.shallow[path] = pkg
	return pkg, nil
}

// check fully type-checks the package in dir, including function bodies
// and a populated types.Info.
func (l *Loader) check(dir string) (*Package, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg := &Package{
		PkgPath: l.importPathFor(dir),
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		},
	}
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			pkg.Errs = append(pkg.Errs, err)
		},
	}
	tpkg, err := conf.Check(pkg.PkgPath, l.fset, files, pkg.Info)
	if len(pkg.Errs) > 0 {
		return nil, fmt.Errorf("load: type errors in %s: %v", pkg.PkgPath, errors.Join(pkg.Errs...))
	}
	if err != nil {
		return nil, fmt.Errorf("load: checking %s: %w", pkg.PkgPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
