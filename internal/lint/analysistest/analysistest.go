// Package analysistest runs a lint analyzer over fixture packages under
// testdata/src and checks its diagnostics against // want comments, in
// the style of golang.org/x/tools/go/analysis/analysistest (which is not
// available offline).
//
// A fixture line that should trigger diagnostics carries a comment
//
//	code // want "regexp" "another regexp"
//
// with one double- or back-quoted regexp per expected diagnostic on that
// line. Every unsuppressed diagnostic must be matched by a want on its
// line and every want must match a diagnostic. rwlint:ignore directives
// are honored exactly as the rwlint driver honors them, so fixtures can
// demonstrate the escape hatch: a line with a well-formed ignore and no
// want asserts the suppression works; a malformed ignore is asserted via
// a want matching the driver's own diagnostic.
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// wantRE extracts the quoted expectation strings from a want comment.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads each fixture directory (relative paths resolve against the
// test's working directory, conventionally "testdata/src/<analyzer>/<pkg>"),
// applies the analyzer with driver-level ignore processing, and reports
// mismatches through t. It returns the unsuppressed findings so callers
// can make extra assertions (e.g. on suggested fixes).
func Run(t *testing.T, a *analysis.Analyzer, dirs ...string) []lint.Finding {
	t.Helper()
	loader, err := load.NewLoader("")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkgs, err := loader.Load(dirs...)
	if err != nil {
		t.Fatalf("analysistest: loading fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("analysistest: no fixture packages in %v", dirs)
	}
	findings, err := lint.Run(pkgs, []*analysis.Analyzer{a}, nil)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	// Collect want expectations per file:line.
	type wantKey struct {
		file string
		line int
	}
	type want struct {
		re      *regexp.Regexp
		raw     string
		matched bool
	}
	wants := make(map[wantKey][]*want)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					idx := indexWant(c.Text)
					if idx < 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := wantKey{pos.Filename, pos.Line}
					for _, q := range wantRE.FindAllString(c.Text[idx:], -1) {
						pat := q[1 : len(q)-1]
						if q[0] == '"' {
							if u, err := strconv.Unquote(q); err == nil {
								pat = u
							}
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Errorf("%s: bad want regexp %s: %v", pos, q, err)
							continue
						}
						wants[key] = append(wants[key], &want{re: re, raw: q})
					}
				}
			}
		}
	}

	var unsuppressed []lint.Finding
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		unsuppressed = append(unsuppressed, f)
		key := wantKey{f.Pos.Filename, f.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if w.re.MatchString(f.Diagnostic.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", f.Pos, f.Analyzer, f.Diagnostic.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matched want %s", key.file, key.line, w.raw)
			}
		}
	}
	return unsuppressed
}

// indexWant finds the start of the expectations in a "// want" comment,
// returning -1 if the comment is not a want comment.
func indexWant(text string) int {
	for _, prefix := range []string{"// want ", "//want "} {
		if idx := strings.Index(text, prefix); idx >= 0 {
			return idx + len(prefix)
		}
	}
	return -1
}

// Suppressed is a convenience for asserting that a fixture produced a
// specific number of suppressed findings (escape-hatch coverage).
func Suppressed(t *testing.T, a *analysis.Analyzer, dir string) []lint.Finding {
	t.Helper()
	loader, err := load.NewLoader("")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkgs, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("analysistest: loading fixtures: %v", err)
	}
	findings, err := lint.Run(pkgs, []*analysis.Analyzer{a}, nil)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var sup []lint.Finding
	for _, f := range findings {
		if f.Suppressed {
			sup = append(sup, f)
		}
	}
	return sup
}
