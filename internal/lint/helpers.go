package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// isProcType reports whether t is the memmodel.Proc interface (possibly
// behind an alias). Algorithm code always declares the process handle as
// memmodel.Proc, so an identity test on the named type suffices.
func isProcType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == memmodelPath && obj.Name() == "Proc"
}

// procCall reports whether call is a method call on a memmodel.Proc
// value, returning the method name and the receiver expression.
func procCall(info *types.Info, call *ast.CallExpr) (method string, recv ast.Expr, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", nil, false
	}
	tv, have := info.Types[sel.X]
	if !have || !isProcType(tv.Type) {
		return "", nil, false
	}
	return sel.Sel.Name, sel.X, true
}

// isPureCall reports whether call is allowed inside a pure context: a
// conversion, or one of the value-only builtins.
func isPureCall(info *types.Info, call *ast.CallExpr) bool {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return true // conversion
	}
	ident, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[ident].(*types.Builtin); ok {
		switch b.Name() {
		case "len", "cap", "min", "max":
			return true
		}
	}
	return false
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// exprString renders an expression back to source text for messages.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "<expr>"
	}
	return buf.String()
}

// declaredWithin reports whether obj's declaration lies inside node's
// source range — the free-variable test for closures.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() != token.NoPos && node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}
