package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestLockGuard(t *testing.T) {
	findings := analysistest.Run(t, lint.LockGuard, "testdata/src/lockguard/a")
	if want := 12; len(findings) != want {
		t.Fatalf("findings = %d, want %d: %v", len(findings), want, findings)
	}
}

func TestLockGuardIgnoreHatch(t *testing.T) {
	sup := analysistest.Suppressed(t, lint.LockGuard, "testdata/src/lockguard/a")
	if len(sup) != 1 {
		t.Fatalf("suppressed = %d, want 1: %v", len(sup), sup)
	}
	if sup[0].Reason == "" {
		t.Fatalf("suppressed finding lost its reason: %+v", sup[0])
	}
}
