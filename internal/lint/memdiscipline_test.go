package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestMemDiscipline(t *testing.T) {
	findings := analysistest.Run(t, lint.MemDiscipline, "testdata/src/memdiscipline/a")
	if len(findings) == 0 {
		t.Fatal("fixture produced no findings")
	}
}

// TestMemDisciplineEscapeHatch asserts the annotated scratch write is
// suppressed rather than dropped: the finding still exists, marked, with
// the justification attached.
func TestMemDisciplineEscapeHatch(t *testing.T) {
	sup := analysistest.Suppressed(t, lint.MemDiscipline, "testdata/src/memdiscipline/a")
	if len(sup) != 1 {
		t.Fatalf("suppressed findings = %d, want 1: %v", len(sup), sup)
	}
	if sup[0].Reason == "" {
		t.Error("suppressed finding lost its justification")
	}
}
