package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestDurDiscipline(t *testing.T) {
	findings := analysistest.Run(t, lint.DurDiscipline, "testdata/src/durdiscipline/a")
	if want := 6; len(findings) != want {
		t.Fatalf("findings = %d, want %d: %v", len(findings), want, findings)
	}

	// The holey Apply switch carries the panicking-default suggested fix.
	sawFix := false
	for _, f := range findings {
		if strings.Contains(f.Diagnostic.Message, "drops record kinds") {
			if len(f.Diagnostic.SuggestedFixes) != 1 {
				t.Errorf("%s: no suggested fix", f)
				continue
			}
			sawFix = true
			text := string(f.Diagnostic.SuggestedFixes[0].TextEdits[0].NewText)
			if !strings.Contains(text, "default:") || !strings.Contains(text, "panic(") {
				t.Errorf("suggested fix is not a panicking default: %q", text)
			}
		}
	}
	if !sawFix {
		t.Fatalf("no exhaustiveness finding with a fix in %v", findings)
	}
}

func TestDurDisciplineIgnoreHatch(t *testing.T) {
	sup := analysistest.Suppressed(t, lint.DurDiscipline, "testdata/src/durdiscipline/a")
	if len(sup) != 1 {
		t.Fatalf("suppressed = %d, want 1: %v", len(sup), sup)
	}
}
