package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// TestIgnoreDirectives drives the driver itself over the ignores
// fixture: three identical spinloop violations, one under a well-formed
// directive (suppressed), one under a reasonless directive (kept, plus a
// driver finding), one under an unknown-analyzer directive (kept, plus a
// driver finding).
func TestIgnoreDirectives(t *testing.T) {
	loader, err := load.NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("testdata/src/ignores/a")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.Run(pkgs, []*analysis.Analyzer{lint.SpinLoop}, nil)
	if err != nil {
		t.Fatal(err)
	}

	var spinKept, spinSuppressed, driver int
	for _, f := range findings {
		switch {
		case f.Analyzer == "rwlint":
			driver++
		case f.Suppressed:
			spinSuppressed++
			if !strings.Contains(f.Reason, "calibration") {
				t.Errorf("wrong justification carried: %q", f.Reason)
			}
		default:
			spinKept++
		}
	}
	if spinSuppressed != 1 || spinKept != 2 || driver != 2 {
		t.Errorf("suppressed=%d kept=%d driver=%d, want 1/2/2\nall: %v",
			spinSuppressed, spinKept, driver, findings)
	}
}

// TestStrictIgnores drives RunOpts over the strictignores fixture: the
// live directive keeps suppressing, the dead one becomes a driver
// finding — but only when StrictIgnores is on, and only because spinloop
// (the analyzer it names) actually ran there.
func TestStrictIgnores(t *testing.T) {
	loader, err := load.NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("testdata/src/strictignores/a")
	if err != nil {
		t.Fatal(err)
	}

	findings, err := lint.RunOpts(pkgs, []*analysis.Analyzer{lint.SpinLoop},
		lint.Options{StrictIgnores: true})
	if err != nil {
		t.Fatal(err)
	}
	var dead, suppressed int
	for _, f := range findings {
		switch {
		case f.Analyzer == "rwlint" && strings.Contains(f.Diagnostic.Message, "suppresses nothing"):
			dead++
			if !strings.Contains(f.Diagnostic.Message, "spinloop") {
				t.Errorf("dead-directive finding does not name its analyzer: %v", f)
			}
		case f.Suppressed:
			suppressed++
		}
	}
	if dead != 1 || suppressed != 1 {
		t.Errorf("dead=%d suppressed=%d, want 1/1\nall: %v", dead, suppressed, findings)
	}

	// A directive is only dead relative to analyzers that ran: scope the
	// run so spinloop is excluded and both directives must go unflagged.
	findings, err = lint.RunOpts(pkgs, []*analysis.Analyzer{lint.PurePred},
		lint.Options{StrictIgnores: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Analyzer == "rwlint" {
			t.Errorf("directive flagged although spinloop never ran: %v", f)
		}
	}
}

// TestDefaultScope pins which analyzers run where.
func TestDefaultScope(t *testing.T) {
	cases := []struct {
		a    *analysis.Analyzer
		path string
		want bool
	}{
		{lint.MemDiscipline, "repro/internal/core", true},
		{lint.MemDiscipline, "repro/internal/sim", false},
		{lint.MemDiscipline, "repro/internal/lint/testdata/src/memdiscipline/a", true},
		{lint.SpinLoop, "repro/internal/mutex", true},
		{lint.SpinLoop, "repro/internal/spec", false},
		{lint.PurePred, "repro/internal/sim", true},
		{lint.VerdictSwitch, "repro/internal/experiments", true},
		// The service-layer analyzers are module-wide: the annotations and
		// durable state types localize them naturally, and helper misuse
		// from ANY package must be visible.
		{lint.LockGuard, "repro/internal/lockd", true},
		{lint.LockGuard, "repro/internal/lockd/durable", true},
		{lint.DurDiscipline, "repro/internal/lockd/durable", true},
		{lint.DurDiscipline, "repro/internal/lockd", true},
		{lint.ErrDiscipline, "repro/internal/lockd", true},
		{lint.ErrDiscipline, "repro/internal/sim", true},
	}
	for _, c := range cases {
		if got := lint.DefaultScope(c.a, c.path); got != c.want {
			t.Errorf("DefaultScope(%s, %s) = %v, want %v", c.a.Name, c.path, got, c.want)
		}
	}
}

// TestSuiteRegistry pins the suite composition rwlint:ignore directives
// validate against.
func TestSuiteRegistry(t *testing.T) {
	var names []string
	for _, a := range lint.Analyzers() {
		names = append(names, a.Name)
	}
	want := []string{
		"memdiscipline", "purepred", "spinloop", "verdictswitch",
		"lockguard", "durdiscipline", "errdiscipline",
	}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Errorf("suite = %v, want %v", names, want)
	}
}
