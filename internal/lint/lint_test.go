package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// TestIgnoreDirectives drives the driver itself over the ignores
// fixture: three identical spinloop violations, one under a well-formed
// directive (suppressed), one under a reasonless directive (kept, plus a
// driver finding), one under an unknown-analyzer directive (kept, plus a
// driver finding).
func TestIgnoreDirectives(t *testing.T) {
	loader, err := load.NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("testdata/src/ignores/a")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.Run(pkgs, []*analysis.Analyzer{lint.SpinLoop}, nil)
	if err != nil {
		t.Fatal(err)
	}

	var spinKept, spinSuppressed, driver int
	for _, f := range findings {
		switch {
		case f.Analyzer == "rwlint":
			driver++
		case f.Suppressed:
			spinSuppressed++
			if !strings.Contains(f.Reason, "calibration") {
				t.Errorf("wrong justification carried: %q", f.Reason)
			}
		default:
			spinKept++
		}
	}
	if spinSuppressed != 1 || spinKept != 2 || driver != 2 {
		t.Errorf("suppressed=%d kept=%d driver=%d, want 1/2/2\nall: %v",
			spinSuppressed, spinKept, driver, findings)
	}
}

// TestDefaultScope pins which analyzers run where.
func TestDefaultScope(t *testing.T) {
	cases := []struct {
		a    *analysis.Analyzer
		path string
		want bool
	}{
		{lint.MemDiscipline, "repro/internal/core", true},
		{lint.MemDiscipline, "repro/internal/sim", false},
		{lint.MemDiscipline, "repro/internal/lint/testdata/src/memdiscipline/a", true},
		{lint.SpinLoop, "repro/internal/mutex", true},
		{lint.SpinLoop, "repro/internal/spec", false},
		{lint.PurePred, "repro/internal/sim", true},
		{lint.VerdictSwitch, "repro/internal/experiments", true},
	}
	for _, c := range cases {
		if got := lint.DefaultScope(c.a, c.path); got != c.want {
			t.Errorf("DefaultScope(%s, %s) = %v, want %v", c.a.Name, c.path, got, c.want)
		}
	}
}

// TestSuiteRegistry pins the suite composition rwlint:ignore directives
// validate against.
func TestSuiteRegistry(t *testing.T) {
	var names []string
	for _, a := range lint.Analyzers() {
		names = append(names, a.Name)
	}
	want := []string{"memdiscipline", "purepred", "spinloop", "verdictswitch"}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Errorf("suite = %v, want %v", names, want)
	}
}
