package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// durablePath is the import path of the WAL+snapshot durability layer.
const durablePath = "repro/internal/lockd/durable"

// DurDiscipline enforces the WAL protocol that the durability layer's
// zero-dup/zero-lost guarantee rests on:
//
//  1. Every switch over durable.RecordType covers every declared record
//     kind (or carries an explicit default). State.Apply is the single
//     apply function shared by the live shadow and crash replay; a
//     record kind it silently drops diverges the two without failing a
//     test.
//  2. Durable shadow state (State, SessionState, ShardState, Counters)
//     mutates only on the apply path: inside State.Apply and the
//     helpers reachable only from it, in constructors (New*, Clone),
//     or on freshly built locals that have not been published. Any
//     other write bypasses the WAL — it changes state that a crash
//     replay will not reproduce.
//  3. The snapshot/truncate ordering helpers (writeSnapshot, wal.reset)
//     are called only from Store methods: the crash-window argument
//     (snapshot rename before WAL truncate, replay skipping
//     LSN <= LastLSN) is made once, in the Store, and holds only if
//     nobody else can reorder the pair.
//
// Rules 1 and 2 run module-wide (other packages must not mutate durable
// state either — the server installs from a Clone and appends records);
// rule 3 is scoped to the durable package, where the helpers live.
var DurDiscipline = &analysis.Analyzer{
	Name: "durdiscipline",
	Doc:  "WAL record kinds fully applied; durable state mutates only via Apply; snapshot ordering stays in the Store",
	Run:  runDurDiscipline,
}

// durableStateTypes are the shadow-state type names rule 2 protects.
var durableStateTypes = map[string]bool{
	"State": true, "SessionState": true, "ShardState": true, "Counters": true,
}

// inDurableScope reports whether a package path is the durability layer
// itself or a lint fixture standing in for it.
func inDurableScope(pkgPath string) bool {
	return pkgPath == durablePath || strings.Contains(pkgPath, "/lint/testdata/")
}

func runDurDiscipline(pass *analysis.Pass) (any, error) {
	allowed := applyReachable(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkDurFunc(pass, fn, allowed)
		}
		// Rule 1 applies to switches anywhere, including init exprs and
		// function literals the decl walk above does not reach directly.
		ast.Inspect(file, func(n ast.Node) bool {
			if sw, ok := n.(*ast.SwitchStmt); ok && sw.Tag != nil {
				checkRecordSwitch(pass, sw)
			}
			return true
		})
	}
	return nil, nil
}

// checkRecordSwitch enforces rule 1 on a switch whose tag is a
// durable.RecordType.
func checkRecordSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok {
		return
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != "RecordType" || !inDurableScope(obj.Pkg().Path()) {
		return
	}

	scope := obj.Pkg().Scope()
	var consts []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(types.Unalias(c.Type()), named) {
			continue
		}
		consts = append(consts, c)
	}
	sort.Slice(consts, func(i, j int) bool { return consts[i].Pos() < consts[j].Pos() })

	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			return // explicit default: unhandled kinds cannot fall through silently
		}
		for _, expr := range clause.List {
			if ctv, ok := pass.TypesInfo.Types[expr]; ok && ctv.Value != nil {
				covered[ctv.Value.ExactString()] = true
			}
		}
	}

	var missing []string
	for _, c := range consts {
		if !covered[c.Val().ExactString()] {
			missing = append(missing, qualify(pass, obj, c.Name()))
		}
	}
	if len(missing) == 0 {
		return
	}
	d := analysis.Diagnostic{
		Pos: sw.Pos(),
		End: sw.End(),
		Message: fmt.Sprintf("switch over %s drops record kinds %s: replay and the live shadow must agree on every kind — add the cases or an explicit default",
			qualify(pass, obj, obj.Name()), strings.Join(missing, ", ")),
	}
	if fix, ok := defaultFix(pass, sw, obj); ok {
		d.SuggestedFixes = append(d.SuggestedFixes, fix)
	}
	pass.Report(d)
}

// applyReachable computes the functions allowed to mutate durable state
// in this package: State.Apply, constructors (New*, Clone), plus the
// fixed point of package functions whose in-package callers are all
// themselves allowed (Apply's private helpers). A function with no
// in-package callers is not granted anything — it may be called from
// anywhere.
func applyReachable(pass *analysis.Pass) map[*types.Func]bool {
	if !inDurableScope(pass.Pkg.Path()) {
		return nil
	}
	allowed := make(map[*types.Func]bool)
	callers := make(map[*types.Func]map[*types.Func]bool)
	var fns []*types.Func
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			fns = append(fns, obj)
			if durAllowedByName(obj) {
				allowed[obj] = true
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				var callee *types.Func
				switch e := n.(type) {
				case *ast.Ident:
					callee, _ = pass.TypesInfo.Uses[e].(*types.Func)
				case *ast.SelectorExpr:
					callee, _ = pass.TypesInfo.Uses[e.Sel].(*types.Func)
					// the walk visits e.Sel as an Ident too; counting it
					// here once is enough, duplicates are harmless in a set
				}
				if callee != nil && callee.Pkg() == pass.Pkg {
					if callers[callee] == nil {
						callers[callee] = make(map[*types.Func]bool)
					}
					callers[callee][obj] = true
				}
				return true
			})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if allowed[fn] || len(callers[fn]) == 0 {
				continue
			}
			all := true
			for caller := range callers[fn] {
				if !allowed[caller] && caller != fn {
					all = false
					break
				}
			}
			if all {
				allowed[fn] = true
				changed = true
			}
		}
	}
	return allowed
}

// durAllowedByName grants the base allowed set: the apply function
// itself and constructors that build state before publication.
func durAllowedByName(fn *types.Func) bool {
	name := fn.Name()
	if strings.HasPrefix(name, "New") || name == "Clone" {
		return true
	}
	if name != "Apply" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named, ok := derefNamed(sig.Recv().Type())
	return ok && named.Obj().Name() == "State"
}

// checkDurFunc enforces rules 2 and 3 inside one function body.
func checkDurFunc(pass *analysis.Pass, fn *ast.FuncDecl, allowed map[*types.Func]bool) {
	obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	fnAllowed := obj != nil && (allowed[obj] || durAllowedByName(obj))
	fresh := freshLocals(pass, fn.Body)
	storeMethod := isMethodOf(obj, "Store")

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if !fnAllowed {
				for _, lhs := range n.Lhs {
					checkDurWrite(pass, lhs, fresh, fn.Name.Name)
				}
			}
		case *ast.IncDecStmt:
			if !fnAllowed {
				checkDurWrite(pass, n.X, fresh, fn.Name.Name)
			}
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" && !fnAllowed {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) == 2 {
					checkDurWrite(pass, n.Args[0], fresh, fn.Name.Name)
				}
			}
			if inDurableScope(pass.Pkg.Path()) && !storeMethod {
				checkOrderingHelperCall(pass, n, fn.Name.Name)
			}
		}
		return true
	})
}

// checkDurWrite reports a rule-2 violation if expr writes through a
// field of a durable state type from a disallowed context.
func checkDurWrite(pass *analysis.Pass, expr ast.Expr, fresh map[types.Object]bool, fnName string) {
	sel := writtenStateField(pass, expr)
	if sel == nil {
		return
	}
	if rootFreshLocal(pass, sel, fresh) {
		return
	}
	pass.Report(analysis.Diagnostic{
		Pos: sel.Sel.Pos(),
		Message: fmt.Sprintf("%s mutates durable state field %s outside the apply path: shadow state changes only inside State.Apply (append a WAL record and let Apply fold it in), so crash replay reproduces it",
			fnName, sel.Sel.Name),
	})
}

// writtenStateField descends the write target (through index, deref,
// parens) to the outermost selector naming a field owned by a durable
// state type.
func writtenStateField(pass *analysis.Pass, expr ast.Expr) *ast.SelectorExpr {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if fs, ok := pass.TypesInfo.Selections[e]; ok && fs.Kind() == types.FieldVal {
				if named, ok := derefNamed(fs.Recv()); ok {
					tn := named.Obj()
					if tn.Pkg() != nil && durableStateTypes[tn.Name()] && inDurableScope(tn.Pkg().Path()) {
						return e
					}
				}
			}
			expr = e.X
		default:
			return nil
		}
	}
}

// checkOrderingHelperCall reports a rule-3 violation: writeSnapshot and
// (*wal).reset implement the two halves of the crash-safe rotation and
// may only be sequenced by Store methods.
func checkOrderingHelperCall(pass *analysis.Pass, call *ast.CallExpr, fnName string) {
	var callee *types.Func
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		callee, _ = pass.TypesInfo.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	}
	if callee == nil || callee.Pkg() != pass.Pkg {
		return
	}
	restricted := false
	switch callee.Name() {
	case "writeSnapshot":
		sig, _ := callee.Type().(*types.Signature)
		restricted = sig != nil && sig.Recv() == nil
	case "reset":
		restricted = isMethodOf(callee, "wal")
	}
	if !restricted {
		return
	}
	pass.Report(analysis.Diagnostic{
		Pos: call.Pos(),
		Message: fmt.Sprintf("%s calls %s directly: snapshot/WAL-truncate ordering is the Store's crash-safety argument — only Store methods may sequence it",
			fnName, callee.Name()),
	})
}

// isMethodOf reports whether fn is a method whose receiver's named type
// is typeName.
func isMethodOf(fn *types.Func, typeName string) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named, ok := derefNamed(sig.Recv().Type())
	return ok && named.Obj().Name() == typeName
}

// freshLocals collects locals a function builds privately: declared by
// := or var with a composite-literal (or &composite / new) initializer,
// or a zero-valued var declaration. Writes through them are
// construction, not shared-state mutation. This is a heuristic — a
// zero-valued var later assigned a shared pointer slips through — but
// it errs only toward silence, never false findings.
func freshLocals(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && isFreshInit(n.Rhs[i]) {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						fresh[obj] = true
					}
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if len(vs.Values) == 0 || (i < len(vs.Values) && isFreshInit(vs.Values[i])) {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							fresh[obj] = true
						}
					}
				}
			}
		}
		return true
	})
	return fresh
}

// rootFreshLocal reports whether the selector chain roots at a fresh
// local.
func rootFreshLocal(pass *analysis.Pass, e ast.Expr, fresh map[types.Object]bool) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			return obj != nil && fresh[obj]
		default:
			return false
		}
	}
}
