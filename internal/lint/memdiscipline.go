package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
)

// MemDiscipline flags cross-process shared state in algorithm packages
// that bypasses memmodel.Proc. In the simulated machine every shared
// variable is a memmodel.Var and every access is a counted step; a raw
// Go-heap mutation (struct field write, shared slice/map element write)
// after Init is invisible to RMR accounting and to the write-through/
// write-back coherence protocols, so it corrupts exactly the quantities
// the experiments measure. sync, sync/atomic, goroutines and channels
// are banned outright: the simulator owns scheduling.
//
// Init methods and New* constructors are exempt — they run before any
// process takes steps, which is when Go-side wiring is legitimate.
// Per-process local scratch (slots indexed by the caller's own id, never
// read cross-process) is the known benign pattern; it must be annotated
// with //rwlint:ignore memdiscipline <reason>.
var MemDiscipline = &analysis.Analyzer{
	Name: "memdiscipline",
	Doc:  "flag shared-state access in algorithm packages that bypasses memmodel.Proc",
	Run:  runMemDiscipline,
}

func runMemDiscipline(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "sync" || path == "sync/atomic" {
				pass.Reportf(imp.Pos(), "import of %q in an algorithm package: shared-memory steps must go through memmodel.Proc so they are RMR-accounted and coherence-modeled", path)
			}
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if setupFunc(fn) {
				continue
			}
			checkDisciplineBody(pass, fn.Body)
		}
	}
	return nil, nil
}

// setupFunc reports whether fn runs before processes take steps:
// Algorithm.Init, New* constructors, With* functional options (applied
// inside New), and package init functions.
func setupFunc(fn *ast.FuncDecl) bool {
	name := fn.Name.Name
	return name == "Init" || name == "init" ||
		strings.HasPrefix(name, "New") || strings.HasPrefix(name, "With")
}

// checkDisciplineBody walks one passage-time function body.
func checkDisciplineBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWriteTarget(pass, lhs)
			}
		case *ast.IncDecStmt:
			checkWriteTarget(pass, n.X)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in an algorithm package: the simulator owns scheduling; concurrency must be expressed as simulated processes")
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send in an algorithm package escapes the shared-memory model; communicate through memmodel.Var state")
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				pass.Reportf(n.Pos(), "channel receive in an algorithm package escapes the shared-memory model; communicate through memmodel.Var state")
			}
		}
		return true
	})
}

// checkWriteTarget reports lhs when it mutates state reachable from a
// struct field: the field itself, or an element of a field-held slice,
// array or map. Plain local variables are fine.
func checkWriteTarget(pass *analysis.Pass, lhs ast.Expr) {
	e := unparen(lhs)
	if star, ok := e.(*ast.StarExpr); ok {
		e = unparen(star.X)
	}
	// Descend through element writes (x.f[i], x.f[i][j]) to the base.
	elem := false
	for {
		idx, ok := unparen(e).(*ast.IndexExpr)
		if !ok {
			break
		}
		elem = true
		e = idx.X
	}
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok {
		return
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	what := "struct field"
	if elem {
		what = "element of shared field"
	}
	pass.Report(analysis.Diagnostic{
		Pos: lhs.Pos(),
		End: lhs.End(),
		Message: fmt.Sprintf(
			"write to %s %s outside Init/constructor bypasses memmodel.Proc and RMR accounting; use Proc.Write/CAS on a memmodel.Var, or annotate per-process-local scratch with //rwlint:ignore memdiscipline <reason>",
			what, exprString(pass.Fset, lhs)),
	})
}
