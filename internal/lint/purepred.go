package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// PurePred verifies that predicates passed to Proc.Await and
// Proc.AwaitMulti are pure functions of the spun-on value(s). The
// simulator re-evaluates a predicate on every invalidation of the
// spun-on variable, at points the algorithm does not control; a
// predicate with side effects, or one that reads state other than its
// argument, gives the spin loop a meaning the local-spin RMR charging
// rule (one RMR per invalidation-triggered re-read) no longer matches.
//
// Capturing enclosing scalars read-only (thresholds, sequence numbers
// fixed before the Await) is allowed — the value is frozen while the
// process blocks. Flagged: mutating any captured variable, calling
// anything but len/cap/min/max or a conversion, performing Proc steps,
// and reading captured composite state through selectors or indexing.
var PurePred = &analysis.Analyzer{
	Name: "purepred",
	Doc:  "require Await/AwaitMulti predicates to be pure functions of their argument",
	Run:  runPurePred,
}

func runPurePred(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			method, _, ok := procCall(pass.TypesInfo, call)
			if !ok || (method != "Await" && method != "AwaitMulti") || len(call.Args) < 2 {
				return true
			}
			pred := unparen(call.Args[len(call.Args)-1])
			lit, ok := pred.(*ast.FuncLit)
			if !ok {
				pass.Reportf(pred.Pos(), "%s predicate %s is not a func literal; rwlint cannot verify its purity — inline it as func(...) bool { ... }", method, exprString(pass.Fset, pred))
				return true
			}
			checkPredicate(pass, method, lit)
			return true
		})
	}
	return nil, nil
}

// checkPredicate walks one predicate literal's body for impurities.
func checkPredicate(pass *analysis.Pass, method string, lit *ast.FuncLit) {
	// free reports whether ident resolves to a variable declared outside
	// the literal (a capture). Constants, types and functions are not
	// variables; mutating or dereferencing them is impossible or flagged
	// through the call rules.
	free := func(ident *ast.Ident) (*types.Var, bool) {
		obj, ok := pass.TypesInfo.Uses[ident]
		if !ok {
			return nil, false
		}
		v, ok := obj.(*types.Var)
		if !ok || declaredWithin(v, lit) {
			return nil, false
		}
		return v, true
	}
	reportMutation := func(target ast.Expr) {
		switch e := unparen(target).(type) {
		case *ast.Ident:
			if v, ok := free(e); ok {
				pass.Reportf(target.Pos(), "%s predicate mutates captured variable %s; predicates must be pure — the simulator re-evaluates them at arbitrary invalidation points", method, v.Name())
			}
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			pass.Reportf(target.Pos(), "%s predicate mutates %s; predicates must be pure — the simulator re-evaluates them at arbitrary invalidation points", method, exprString(pass.Fset, target))
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok.String() == ":=" {
				return true // new locals are fine
			}
			for _, lhs := range n.Lhs {
				reportMutation(lhs)
			}
		case *ast.IncDecStmt:
			reportMutation(n.X)
		case *ast.CallExpr:
			if isPureCall(pass.TypesInfo, n) {
				return true
			}
			if m, recv, ok := procCall(pass.TypesInfo, n); ok {
				pass.Reportf(n.Pos(), "%s predicate performs a shared-memory step %s.%s; the spun-on value is the predicate's only legitimate input", method, exprString(pass.Fset, recv), m)
			} else {
				pass.Reportf(n.Pos(), "%s predicate calls %s; predicates must be pure functions of their argument (only len/cap/min/max and conversions are allowed)", method, exprString(pass.Fset, n.Fun))
			}
			return false // one finding per impure call; skip its operands
		case *ast.SelectorExpr:
			if base, ok := unparen(n.X).(*ast.Ident); ok {
				if _, isFree := free(base); isFree {
					if s, ok := pass.TypesInfo.Selections[n]; ok && s.Kind() == types.FieldVal {
						pass.Reportf(n.Pos(), "%s predicate reads captured state %s; hoist it into a local before the Await so the captured value is visibly frozen", method, exprString(pass.Fset, n))
					}
				}
			}
		case *ast.IndexExpr:
			if base, ok := unparen(n.X).(*ast.Ident); ok {
				if v, isFree := free(base); isFree {
					pass.Reportf(n.Pos(), "%s predicate indexes captured %s; hoist the element into a local before the Await", method, v.Name())
				}
			}
		case *ast.GoStmt, *ast.SendStmt, *ast.DeferStmt:
			pass.Reportf(n.Pos(), "%s predicate contains a concurrency construct; predicates must be pure", method)
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				pass.Reportf(n.Pos(), "%s predicate contains a channel receive; predicates must be pure", method)
			}
		}
		return true
	})
}
