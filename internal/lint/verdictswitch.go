package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// VerdictSwitch requires switches over memmodel.Recovery and
// memmodel.Section to be exhaustive: every declared constant of the type
// covered by a case, or an explicit default clause. Both enums grow with
// the failure models (SecRecover arrived with crash-recovery); a switch
// written against the old constant set silently drops the new arm —
// recovery verdicts get ignored, section RMRs land in the wrong bucket —
// without any test failing. The analyzer pins the constant set at lint
// time and suggests a panicking default where one is missing.
var VerdictSwitch = &analysis.Analyzer{
	Name: "verdictswitch",
	Doc:  "require switches over memmodel.Recovery/Section to be exhaustive",
	Run:  runVerdictSwitch,
}

// verdictTypes names the guarded enum types in memmodel.
var verdictTypes = map[string]bool{"Recovery": true, "Section": true}

func runVerdictSwitch(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil, nil
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok {
		return
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != memmodelPath || !verdictTypes[obj.Name()] {
		return
	}

	// Every declared constant of the enum type, in declaration order.
	type enumConst struct {
		name string
		val  string
	}
	var all []enumConst
	scope := obj.Pkg().Scope()
	var consts []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(types.Unalias(c.Type()), named) {
			continue
		}
		consts = append(consts, c)
	}
	sort.Slice(consts, func(i, j int) bool { return consts[i].Pos() < consts[j].Pos() })
	for _, c := range consts {
		all = append(all, enumConst{name: c.Name(), val: c.Val().ExactString()})
	}

	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			return // explicit default: new values cannot be silently ignored
		}
		for _, expr := range clause.List {
			if ctv, ok := pass.TypesInfo.Types[expr]; ok && ctv.Value != nil {
				covered[ctv.Value.ExactString()] = true
			}
		}
	}

	var missing []string
	for _, c := range all {
		if !covered[c.val] {
			missing = append(missing, qualify(pass, obj, c.name))
		}
	}
	if len(missing) == 0 {
		return
	}
	d := analysis.Diagnostic{
		Pos: sw.Pos(),
		End: sw.End(),
		Message: fmt.Sprintf("switch over %s is not exhaustive: missing %s — add the cases or an explicit default (panic on unhandled values rather than silently ignoring them)",
			qualify(pass, obj, obj.Name()), strings.Join(missing, ", ")),
	}
	if fix, ok := defaultFix(pass, sw, obj); ok {
		d.SuggestedFixes = append(d.SuggestedFixes, fix)
	}
	pass.Report(d)
}

// qualify renders name with the memmodel package qualifier unless the
// switch lives in memmodel itself.
func qualify(pass *analysis.Pass, obj *types.TypeName, name string) string {
	if pass.Pkg != nil && pass.Pkg.Path() == obj.Pkg().Path() {
		return name
	}
	return obj.Pkg().Name() + "." + name
}

// defaultFix suggests inserting a panicking default clause before the
// switch's closing brace, when the tag is a simple expression that can
// be repeated safely.
func defaultFix(pass *analysis.Pass, sw *ast.SwitchStmt, obj *types.TypeName) (analysis.SuggestedFix, bool) {
	switch unparen(sw.Tag).(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return analysis.SuggestedFix{}, false
	}
	text := fmt.Sprintf("default:\n\t\tpanic(fmt.Sprintf(\"unhandled %s %%v\", %s))\n\t",
		qualify(pass, obj, obj.Name()), exprString(pass.Fset, sw.Tag))
	return analysis.SuggestedFix{
		Message: "add a panicking default clause",
		TextEdits: []analysis.TextEdit{{
			Pos:     sw.Body.Rbrace,
			End:     sw.Body.Rbrace,
			NewText: []byte(text),
		}},
	}, true
}
