package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestSpinLoop(t *testing.T) {
	findings := analysistest.Run(t, lint.SpinLoop, "testdata/src/spinloop/a")
	if len(findings) == 0 {
		t.Fatal("fixture produced no findings")
	}

	// The bare `for p.Read(l.v) != 0 {}` poll must come with the
	// mechanical Await rewrite.
	var fixes []string
	for _, f := range findings {
		for _, fix := range f.Diagnostic.SuggestedFixes {
			for _, e := range fix.TextEdits {
				fixes = append(fixes, string(e.NewText))
			}
		}
	}
	want := "p.Await(l.v, func(x uint64) bool { return !(x != 0) })"
	found := false
	for _, fx := range fixes {
		if fx == want {
			found = true
		}
	}
	if !found {
		t.Errorf("suggested fixes %q missing the Await rewrite %q", fixes, want)
	}
}

func TestSpinLoopEscapeHatch(t *testing.T) {
	sup := analysistest.Suppressed(t, lint.SpinLoop, "testdata/src/spinloop/a")
	if len(sup) != 1 {
		t.Fatalf("suppressed findings = %d, want 1: %v", len(sup), sup)
	}
	if !strings.Contains(sup[0].Reason, "coherence") {
		t.Errorf("justification not carried through: %q", sup[0].Reason)
	}
}
