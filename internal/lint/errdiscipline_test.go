package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestErrDiscipline(t *testing.T) {
	findings := analysistest.Run(t, lint.ErrDiscipline, "testdata/src/errdiscipline/a")
	if want := 8; len(findings) != want {
		t.Fatalf("findings = %d, want %d: %v", len(findings), want, findings)
	}
}

func TestErrDisciplineIgnoreHatch(t *testing.T) {
	sup := analysistest.Suppressed(t, lint.ErrDiscipline, "testdata/src/errdiscipline/a")
	if len(sup) != 1 {
		t.Fatalf("suppressed = %d, want 1: %v", len(sup), sup)
	}
}
