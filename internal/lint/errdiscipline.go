package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// ErrDiscipline enforces the module's error-handling contract. The
// service layer signals every protocol condition with a typed sentinel
// (ErrTimeout, ErrEpochFenced, ErrRecovering, …) that crosses the wire
// as a code and is rehydrated client-side; that round trip — and any
// future wrapping with fmt.Errorf("%w") — only works if callers match
// errors with errors.Is/errors.As, never identity or string forms:
//
//   - no == or != against a package-level error sentinel (any
//     package's, including stdlib ones like io.EOF);
//   - no switch over an error value with sentinel cases;
//   - no matching on err.Error() text (comparison or strings.Contains
//     and friends) — messages are documentation, not API;
//   - every exported Err* variable and *Error type carries a doc
//     comment, because a sentinel's meaning is its contract.
//
// The one legitimate home for identity comparison is inside an
// `Is(error) bool` method — that is the hook errors.Is itself calls —
// so those bodies are exempt.
var ErrDiscipline = &analysis.Analyzer{
	Name: "errdiscipline",
	Doc:  "sentinel errors are matched with errors.Is/As and documented, never compared by identity or message text",
	Run:  runErrDiscipline,
}

func runErrDiscipline(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				checkErrDocs(pass, d)
			case *ast.FuncDecl:
				if d.Body == nil || isErrorsIsMethod(pass, d) {
					continue
				}
				checkErrBody(pass, d.Body)
			}
		}
	}
	return nil, nil
}

// isErrorsIsMethod reports whether fn is the errors.Is protocol hook:
// a method named Is with signature func(error) bool.
func isErrorsIsMethod(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if fn.Name.Name != "Is" || fn.Recv == nil {
		return false
	}
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	return isErrorType(sig.Params().At(0).Type()) &&
		types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool])
}

// checkErrBody walks one function body for identity comparisons,
// error-valued switches, and message-text matching.
func checkErrBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			for i, side := range []ast.Expr{n.X, n.Y} {
				v := sentinelVar(pass, side)
				if v == nil {
					continue
				}
				// Only error-against-error comparison is error *matching*;
				// comparing a recover()'d any to a sentinel is panic-value
				// identity, a different (and legitimate) protocol.
				other := n.Y
				if i == 1 {
					other = n.X
				}
				if tv, ok := pass.TypesInfo.Types[other]; !ok || !(isErrorType(tv.Type) || implementsError(tv.Type)) {
					continue
				}
				pass.Report(analysis.Diagnostic{
					Pos: n.Pos(),
					Message: fmt.Sprintf("error compared to sentinel %s with %s: use errors.Is(err, %s) so wrapped errors still match",
						v.Name(), n.Op, v.Name()),
				})
				return true
			}
			if errorCallExpr(pass, n.X) || errorCallExpr(pass, n.Y) {
				pass.Report(analysis.Diagnostic{
					Pos:     n.Pos(),
					Message: "error message text compared with " + n.Op.String() + ": messages are not API — match the typed sentinel with errors.Is/errors.As",
				})
			}
		case *ast.SwitchStmt:
			checkErrSwitch(pass, n)
		case *ast.CallExpr:
			checkStringsMatch(pass, n)
		}
		return true
	})
}

// checkErrSwitch flags `switch err { case ErrFoo: }` — identity
// matching in switch clothing.
func checkErrSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok || !isErrorType(tv.Type) {
		return
	}
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range clause.List {
			if v := sentinelVar(pass, expr); v != nil {
				pass.Report(analysis.Diagnostic{
					Pos: expr.Pos(),
					Message: fmt.Sprintf("switch over an error matches sentinel %s by identity: rewrite as if/else with errors.Is so wrapped errors still match",
						v.Name()),
				})
			}
		}
	}
}

// checkStringsMatch flags strings.Contains/HasPrefix/... fed from
// err.Error().
func checkStringsMatch(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkgID, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
	if !ok || pn.Imported().Path() != "strings" {
		return
	}
	switch sel.Sel.Name {
	case "Contains", "HasPrefix", "HasSuffix", "Index", "EqualFold":
	default:
		return
	}
	for _, arg := range call.Args {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok && errorCallExpr(pass, e) {
				found = true
				return false
			}
			return true
		})
		if found {
			pass.Report(analysis.Diagnostic{
				Pos: call.Pos(),
				Message: fmt.Sprintf("strings.%s over err.Error() text: messages are not API — match the typed sentinel with errors.Is/errors.As",
					sel.Sel.Name),
			})
			return
		}
	}
}

// sentinelVar resolves an expression to a package-level error variable
// (a sentinel), or nil.
func sentinelVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	var obj types.Object
	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[e.Sel]
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if isErrorType(v.Type()) || (implementsError(v.Type()) && strings.HasPrefix(v.Name(), "Err")) {
		return v
	}
	return nil
}

// errorCallExpr reports whether e is a call of an Error() string method
// (the error interface's method, on any implementing type).
func errorCallExpr(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && sig.Params().Len() == 0 &&
		sig.Results().Len() == 1 && types.Identical(sig.Results().At(0).Type(), types.Typ[types.String])
}

// isErrorType reports whether t is exactly the error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// implementsError reports whether t (or *t) satisfies the error
// interface.
func implementsError(t types.Type) bool {
	iface, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if iface == nil {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	return types.Implements(types.NewPointer(t), iface)
}

// checkErrDocs enforces the doc-comment rule on exported sentinels and
// error types.
func checkErrDocs(pass *analysis.Pass, decl *ast.GenDecl) {
	switch decl.Tok {
	case token.VAR:
		for _, spec := range decl.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			// Only a preceding doc comment counts (the godoc convention);
			// a trailing remark is not where a contract lives.
			if vs.Doc != nil || (len(decl.Specs) == 1 && decl.Doc != nil) {
				continue
			}
			for _, name := range vs.Names {
				if !name.IsExported() || !strings.HasPrefix(name.Name, "Err") {
					continue
				}
				if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok && (isErrorType(v.Type()) || implementsError(v.Type())) {
					pass.Report(analysis.Diagnostic{
						Pos:     name.Pos(),
						Message: fmt.Sprintf("exported sentinel %s has no doc comment: a sentinel's meaning is its contract — say when callers will see it", name.Name),
					})
				}
			}
		}
	case token.TYPE:
		for _, spec := range decl.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			if !ts.Name.IsExported() || !strings.HasSuffix(ts.Name.Name, "Error") {
				continue
			}
			if ts.Doc == nil && (len(decl.Specs) != 1 || decl.Doc == nil) {
				pass.Report(analysis.Diagnostic{
					Pos:     ts.Name.Pos(),
					Message: fmt.Sprintf("exported error type %s has no doc comment: say what condition it reports and what fields carry", ts.Name.Name),
				})
			}
		}
	}
}
