package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"

	"repro/internal/lint/analysis"
)

// SpinLoop flags hand-rolled busy-wait loops in algorithm code: a for
// loop that makes no progress other than re-issuing Proc.Read until some
// value appears. In the paper's model such a loop is charged one RMR per
// Read — every iteration — while the sanctioned Proc.Await spins on a
// cached copy and is charged one RMR per invalidation. A raw polling
// loop therefore inflates RMR counts, distorts the local-spin vs remote
// classification the CC/DSM separation rests on, and (because it never
// blocks in the runner) can spin forever without tripping the
// no-progress watchdog's blocked-process accounting.
//
// A loop is a busy-wait if its condition performs a Proc.Read, or if it
// is an infinite for whose body's only Proc activity is reading (CAS
// retry loops and loops that Await inside are fine: they either make
// writing steps or already spin locally). Where the loop is a bare
// `for p.Read(v) <cond> {}` the analyzer suggests the mechanical Await
// rewrite.
var SpinLoop = &analysis.Analyzer{
	Name: "spinloop",
	Doc:  "flag busy-wait Proc.Read polling loops that should be Proc.Await",
	Run:  runSpinLoop,
}

func runSpinLoop(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			checkLoop(pass, loop)
			return true
		})
	}
	return nil, nil
}

// loopProfile counts the kinds of calls appearing under a node.
type loopProfile struct {
	reads    int           // Proc.Read calls
	progress int           // Proc.Write/CAS/FetchAdd/Await/AwaitMulti/Section
	opaque   int           // any other non-pure call (could hide progress)
	readCall *ast.CallExpr // a representative Read call
}

func profile(pass *analysis.Pass, nodes ...ast.Node) loopProfile {
	var p loopProfile
	for _, node := range nodes {
		if node == nil {
			continue
		}
		ast.Inspect(node, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if method, _, ok := procCall(pass.TypesInfo, call); ok {
				switch method {
				case "Read":
					p.reads++
					if p.readCall == nil {
						p.readCall = call
					}
				case "Write", "CAS", "FetchAdd", "Await", "AwaitMulti", "Section":
					p.progress++
				default:
					p.opaque++ // ID() etc: harmless, but be conservative
				}
				return true
			}
			if !isPureCall(pass.TypesInfo, call) {
				p.opaque++
			}
			return true
		})
	}
	return p
}

func checkLoop(pass *analysis.Pass, loop *ast.ForStmt) {
	cond := profile(pass, loop.Cond)
	body := profile(pass, loop.Body, loop.Init, loop.Post)
	busy := cond.reads > 0 ||
		(loop.Cond == nil && body.reads > 0 && body.progress == 0 && body.opaque == 0)
	if !busy {
		return
	}
	d := analysis.Diagnostic{
		Pos:     loop.Pos(),
		End:     loop.End(),
		Message: "busy-wait loop polls with Proc.Read: each iteration is a charged RMR and the loop never blocks in the runner; use Proc.Await, which spins locally on a cached copy and is charged per invalidation",
	}
	if fix, ok := awaitRewrite(pass, loop, cond); ok {
		d.SuggestedFixes = append(d.SuggestedFixes, fix)
	}
	pass.Report(d)
}

// awaitRewrite builds the mechanical fix for the `for p.Read(v) <op> k {}`
// shape: an empty-bodied loop whose condition contains exactly one Read.
// The rewrite is p.Await(v, func(x uint64) bool { return !(cond) }) with
// the Read call replaced by the predicate argument.
func awaitRewrite(pass *analysis.Pass, loop *ast.ForStmt, cond loopProfile) (analysis.SuggestedFix, bool) {
	if loop.Cond == nil || cond.reads != 1 || cond.progress != 0 || cond.opaque != 0 ||
		loop.Init != nil || loop.Post != nil || len(loop.Body.List) != 0 {
		return analysis.SuggestedFix{}, false
	}
	read := cond.readCall
	if len(read.Args) != 1 {
		return analysis.SuggestedFix{}, false
	}
	src, err := sourceRange(pass, loop.Cond.Pos(), loop.Cond.End())
	if err != nil {
		return analysis.SuggestedFix{}, false
	}
	// Splice "x" over the Read call inside the condition text.
	condStart := pass.Fset.Position(loop.Cond.Pos()).Offset
	rs := pass.Fset.Position(read.Pos()).Offset - condStart
	re := pass.Fset.Position(read.End()).Offset - condStart
	if rs < 0 || re > len(src) || rs > re {
		return analysis.SuggestedFix{}, false
	}
	predCond := src[:rs] + "x" + src[re:]
	_, recv, _ := procCall(pass.TypesInfo, read)
	newText := fmt.Sprintf("%s.Await(%s, func(x uint64) bool { return !(%s) })",
		exprString(pass.Fset, recv), exprString(pass.Fset, read.Args[0]), predCond)
	return analysis.SuggestedFix{
		Message: "replace the polling loop with a local-spin Await",
		TextEdits: []analysis.TextEdit{{
			Pos:     loop.Pos(),
			End:     loop.End(),
			NewText: []byte(newText),
		}},
	}, true
}

// sourceRange reads the raw source text between two positions.
func sourceRange(pass *analysis.Pass, from, to token.Pos) (string, error) {
	f := pass.Fset.Position(from)
	t := pass.Fset.Position(to)
	data, err := os.ReadFile(f.Filename)
	if err != nil {
		return "", err
	}
	if f.Offset < 0 || t.Offset > len(data) || f.Offset > t.Offset {
		return "", fmt.Errorf("bad range")
	}
	return string(data[f.Offset:t.Offset]), nil
}
