// Package sched provides the scheduling policies that drive the CC
// simulator. The simulator is step-granular: at every step it presents the
// set of processes poised to take a shared-memory step and the scheduler
// picks one. The paper's adversary (Theorem 5) is implemented as a
// Scheduler in internal/lowerbound; this package holds the generic
// policies used by tests, the spec harness and the experiments.
package sched

import (
	"math/rand"

	"repro/internal/memmodel"
)

// PendingOp describes the shared-memory step a poised process is about to
// take. Op-aware schedulers (the lower-bound adversary) use it to classify
// steps before choosing.
type PendingOp struct {
	// Proc is the process id.
	Proc int
	// Kind is the operation about to be performed. Await re-checks appear
	// as OpAwait.
	Kind memmodel.OpKind
	// Var is the variable the operation accesses. For a multi-variable
	// await it is the first variable; Vars carries the full list.
	Var memmodel.Var
	// Vars lists every variable a pending await re-check will read; nil
	// for single-variable operations.
	Vars []memmodel.Var
	// Arg is the value to be written (write), added (FAA) or stored (CAS
	// new value); zero for reads and awaits.
	Arg uint64
	// CASExpected is the expected value of a pending CAS.
	CASExpected uint64
}

// Scheduler selects which poised process takes the next step. The poised
// slice is non-empty and sorted by ascending process id; Next must return
// one of its elements.
type Scheduler interface {
	// Name identifies the policy in experiment tables.
	Name() string
	// Next picks a process id from poised for global step index step.
	Next(step int, poised []int) int
}

// OpAware is an optional extension: if a Scheduler also implements OpAware,
// the simulator calls NextOp (with full pending-op information) instead of
// Next.
type OpAware interface {
	NextOp(step int, poised []PendingOp) int
}

// RoundRobin cycles through processes fairly: it picks the lowest-id poised
// process strictly greater than the last scheduled one, wrapping around.
// The zero value is ready to use.
type RoundRobin struct {
	last int
	init bool
}

// NewRoundRobin returns a fair cyclic scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Scheduler.
func (r *RoundRobin) Name() string { return "round-robin" }

// Next implements Scheduler.
func (r *RoundRobin) Next(_ int, poised []int) int {
	if !r.init {
		r.init = true
		r.last = poised[0]
		return poised[0]
	}
	for _, p := range poised {
		if p > r.last {
			r.last = p
			return p
		}
	}
	r.last = poised[0]
	return poised[0]
}

// Controlled is driven from outside the simulator: the owner sets Target
// before every Step call. Staged drivers (the Theorem-5 adversary, the
// HelpWCS regression test) use it to dictate exact interleavings. Next
// panics if the target is not poised, which always indicates a staging bug.
type Controlled struct {
	// Target is the process that must take the next step.
	Target int
}

// Name implements Scheduler.
func (c *Controlled) Name() string { return "controlled" }

// Next implements Scheduler.
func (c *Controlled) Next(_ int, poised []int) int {
	for _, p := range poised {
		if p == c.Target {
			return p
		}
	}
	panic("sched: Controlled target not poised")
}

// Random picks uniformly among poised processes using a seeded source, so
// executions are reproducible per seed. Used by the spec harness to explore
// interleavings.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a seeded uniform scheduler.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Scheduler.
func (r *Random) Name() string { return "random" }

// Next implements Scheduler.
func (r *Random) Next(_ int, poised []int) int {
	return poised[r.rng.Intn(len(poised))]
}

// LowestFirst always runs the lowest-id poised process. Combined with the
// simulator's run-until-blocked process loop this yields an almost
// sequential execution: process 0 runs until it blocks or finishes, then
// process 1, and so on (a process that unblocks re-enters at its priority).
type LowestFirst struct{}

// Name implements Scheduler.
func (LowestFirst) Name() string { return "lowest-first" }

// Next implements Scheduler.
func (LowestFirst) Next(_ int, poised []int) int { return poised[0] }

// HighestFirst always runs the highest-id poised process; with writers
// numbered after readers this biases schedules toward writer progress,
// exercising the reader-wait paths.
type HighestFirst struct{}

// Name implements Scheduler.
func (HighestFirst) Name() string { return "highest-first" }

// Next implements Scheduler.
func (HighestFirst) Next(_ int, poised []int) int { return poised[len(poised)-1] }

// Sticky keeps scheduling the same process while it remains poised (letting
// it complete whole passages uninterrupted when possible), switching only
// when it blocks or finishes. The switch target rotates round-robin. This
// produces low-contention executions, which is where per-passage RMR counts
// match the paper's solo bounds most tightly.
type Sticky struct {
	current int
	init    bool
}

// NewSticky returns a run-until-blocked scheduler.
func NewSticky() *Sticky { return &Sticky{} }

// Name implements Scheduler.
func (s *Sticky) Name() string { return "sticky" }

// Next implements Scheduler.
func (s *Sticky) Next(_ int, poised []int) int {
	if s.init {
		for _, p := range poised {
			if p == s.current {
				return p
			}
		}
		// Current blocked or done: rotate to the next higher id.
		for _, p := range poised {
			if p > s.current {
				s.current = p
				return p
			}
		}
	}
	s.init = true
	s.current = poised[0]
	return poised[0]
}
