package sched

import "math/rand"

// PCT is a probabilistic concurrency testing scheduler in the style of
// Burckhardt et al. (ASPLOS 2010): every process gets a random distinct
// priority, the highest-priority poised process always runs, and at d
// randomly pre-chosen step indices the currently running process is demoted
// below everyone else. For a bug that requires d specific ordering points,
// one PCT run finds it with probability >= 1/(n * k^(d-1)) (k = steps), so
// modest seed sweeps give real coverage guarantees — unlike uniform random
// walks, which squander probability on uninteresting interleavings.
//
// The spec tests use PCT seeds alongside uniform Random schedules; it is
// also what rediscovers the HelpWCS order bug without staging (see
// TestPCTFindsHelpWCSOrderBug).
type PCT struct {
	rng    *rand.Rand
	depth  int
	maxK   int
	prio   map[int]int
	change map[int]bool
	floor  int // decreasing counter for demotions
	next   int // increasing counter for initial priorities
}

// NewPCT returns a PCT scheduler with the given seed, number of priority
// change points (bug depth - 1), and expected maximum step count.
func NewPCT(seed int64, depth, maxSteps int) *PCT {
	p := &PCT{
		rng:    rand.New(rand.NewSource(seed)),
		depth:  depth,
		maxK:   maxSteps,
		prio:   make(map[int]int),
		change: make(map[int]bool),
		floor:  -1,
	}
	for i := 0; i < depth; i++ {
		p.change[p.rng.Intn(maxSteps)] = true
	}
	return p
}

// Name implements Scheduler.
func (p *PCT) Name() string { return "pct" }

// Next implements Scheduler.
func (p *PCT) Next(step int, poised []int) int {
	best := poised[0]
	bestPrio := p.priority(best)
	for _, q := range poised[1:] {
		if pr := p.priority(q); pr > bestPrio {
			best, bestPrio = q, pr
		}
	}
	if p.change[step] {
		// Demote the chosen process below everyone and re-pick.
		p.prio[best] = p.floor
		p.floor--
		return p.Next(step+p.maxK, poised) // recurse without re-triggering
	}
	return best
}

// priority returns q's priority, assigning a random-ish distinct one on
// first sight.
func (p *PCT) priority(q int) int {
	if pr, ok := p.prio[q]; ok {
		return pr
	}
	// Random insertion order: draw a large random priority; collisions are
	// broken by the poised scan order and are harmless.
	pr := p.rng.Intn(1 << 30)
	p.prio[q] = pr
	return pr
}
