package sched

import (
	"testing"
)

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func TestRoundRobinFairCycle(t *testing.T) {
	rr := NewRoundRobin()
	poised := []int{0, 1, 2, 3}
	var got []int
	for i := 0; i < 8; i++ {
		got = append(got, rr.Next(i, poised))
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence %v, want %v", got, want)
		}
	}
}

func TestRoundRobinSkipsMissing(t *testing.T) {
	rr := NewRoundRobin()
	if p := rr.Next(0, []int{1, 3}); p != 1 {
		t.Fatalf("first pick %d, want 1", p)
	}
	if p := rr.Next(1, []int{1, 3}); p != 3 {
		t.Fatalf("second pick %d, want 3", p)
	}
	// 5 vanished from poised; wraps to lowest.
	if p := rr.Next(2, []int{0, 1}); p != 0 {
		t.Fatalf("wrap pick %d, want 0", p)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	poised := []int{0, 1, 2, 3, 4}
	a, b := NewRandom(7), NewRandom(7)
	for i := 0; i < 100; i++ {
		pa, pb := a.Next(i, poised), b.Next(i, poised)
		if pa != pb {
			t.Fatalf("step %d: same seed diverged: %d vs %d", i, pa, pb)
		}
		if !contains(poised, pa) {
			t.Fatalf("picked %d not in poised", pa)
		}
	}
}

func TestRandomDifferentSeedsDiverge(t *testing.T) {
	poised := []int{0, 1, 2, 3, 4, 5, 6, 7}
	a, b := NewRandom(1), NewRandom(2)
	same := true
	for i := 0; i < 50; i++ {
		if a.Next(i, poised) != b.Next(i, poised) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical 50-step schedules")
	}
}

func TestRandomCoversAll(t *testing.T) {
	poised := []int{0, 1, 2}
	r := NewRandom(42)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[r.Next(i, poised)] = true
	}
	for _, p := range poised {
		if !seen[p] {
			t.Fatalf("process %d never scheduled in 200 uniform picks", p)
		}
	}
}

func TestLowestHighestFirst(t *testing.T) {
	poised := []int{2, 5, 9}
	if p := (LowestFirst{}).Next(0, poised); p != 2 {
		t.Errorf("LowestFirst picked %d, want 2", p)
	}
	if p := (HighestFirst{}).Next(0, poised); p != 9 {
		t.Errorf("HighestFirst picked %d, want 9", p)
	}
}

func TestStickyStaysThenRotates(t *testing.T) {
	s := NewSticky()
	if p := s.Next(0, []int{1, 2, 3}); p != 1 {
		t.Fatalf("initial pick %d, want 1", p)
	}
	// 1 still poised: stay.
	if p := s.Next(1, []int{1, 2, 3}); p != 1 {
		t.Fatalf("second pick %d, want 1", p)
	}
	// 1 blocked: rotate to 2.
	if p := s.Next(2, []int{2, 3}); p != 2 {
		t.Fatalf("rotate pick %d, want 2", p)
	}
	// 2 gone, 1 back: higher-than-2 preferred => 3.
	if p := s.Next(3, []int{1, 3}); p != 3 {
		t.Fatalf("rotate pick %d, want 3", p)
	}
	// Nothing above 3: wrap to lowest.
	if p := s.Next(4, []int{1}); p != 1 {
		t.Fatalf("wrap pick %d, want 1", p)
	}
}

func TestNames(t *testing.T) {
	cases := []struct {
		s    Scheduler
		want string
	}{
		{NewRoundRobin(), "round-robin"},
		{NewRandom(1), "random"},
		{LowestFirst{}, "lowest-first"},
		{HighestFirst{}, "highest-first"},
		{NewSticky(), "sticky"},
	}
	for _, c := range cases {
		if got := c.s.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}
