package sched

import "testing"

func TestPCTPicksFromPoised(t *testing.T) {
	p := NewPCT(1, 3, 1000)
	poised := []int{0, 1, 2, 3}
	for step := 0; step < 500; step++ {
		got := p.Next(step, poised)
		if got < 0 || got > 3 {
			t.Fatalf("step %d: picked %d", step, got)
		}
	}
}

func TestPCTDeterministicPerSeed(t *testing.T) {
	a, b := NewPCT(42, 2, 1000), NewPCT(42, 2, 1000)
	poised := []int{0, 1, 2}
	for step := 0; step < 300; step++ {
		if x, y := a.Next(step, poised), b.Next(step, poised); x != y {
			t.Fatalf("step %d: same seed diverged (%d vs %d)", step, x, y)
		}
	}
}

func TestPCTStickyBetweenChangePoints(t *testing.T) {
	// With depth 0 there are no demotions: the same highest-priority
	// process runs forever while poised.
	p := NewPCT(7, 0, 1000)
	poised := []int{0, 1, 2, 3}
	first := p.Next(0, poised)
	for step := 1; step < 200; step++ {
		if got := p.Next(step, poised); got != first {
			t.Fatalf("depth-0 PCT switched process at step %d (%d -> %d)", step, first, got)
		}
	}
}

func TestPCTDemotionsChangeLeader(t *testing.T) {
	// With enough change points, the leader must change at least once
	// across seeds.
	changed := false
	for seed := int64(0); seed < 10 && !changed; seed++ {
		p := NewPCT(seed, 5, 100)
		poised := []int{0, 1, 2, 3}
		first := p.Next(0, poised)
		for step := 1; step < 100; step++ {
			if p.Next(step, poised) != first {
				changed = true
				break
			}
		}
	}
	if !changed {
		t.Fatal("PCT never changed leader despite demotion points")
	}
}

func TestPCTName(t *testing.T) {
	if NewPCT(1, 1, 10).Name() != "pct" {
		t.Fatal("wrong name")
	}
}
