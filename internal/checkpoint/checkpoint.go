// Package checkpoint makes long-running sweeps crash-safe: it persists
// completed result slots to a versioned on-disk store so an interrupted or
// killed sweep restarts where it stopped instead of from zero.
//
// A Store holds one section per sweep invocation. Each section records the
// sweep's row count, a fingerprint of its configuration (algorithm name,
// scenario, victim/seed/grid sets — everything that determines the results,
// and nothing that doesn't, so the fingerprint is worker-count-independent)
// and the encoded payload of every completed row. On resume, a section
// whose stored fingerprint does not match the current configuration is
// rejected with a typed *MismatchError — a stale checkpoint (changed
// scenario, changed seed set, changed algorithm implementation) must never
// be silently merged into fresh results. An unreadable or truncated file is
// rejected with a typed *CorruptError.
//
// Writes are atomic: Flush marshals the whole store to a temp file in the
// destination directory and renames it over the target, so a crash during
// a flush leaves either the previous checkpoint or the new one, never a
// torn file.
//
// Within one process, sections are identified by a human-readable name plus
// a per-name call counter: the k-th Section call for a name binds to slot
// "name#k". Sweeps run in deterministic order inside the cmd binaries, so a
// resumed process asks for the same slots in the same order and each slot's
// fingerprint check compares like with like.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
)

// Version is the checkpoint file format version. Files written by a
// different version are rejected with a *MismatchError rather than
// reinterpreted.
const Version = 1

// Fingerprint condenses the parts that determine a sweep's results into a
// fixed-length key. Callers pass every input that shapes the result slots
// (sweep kind, algorithm name, scenario, victims, seeds, reference step
// counts) and nothing execution-dependent (worker counts, timestamps).
func Fingerprint(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		// Length-prefix each part so ("ab","c") and ("a","bc") differ.
		fmt.Fprintf(h, "%d:%s", len(p), p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// MismatchError reports a checkpoint that exists but was written for a
// different configuration (or format version) than the one resuming.
type MismatchError struct {
	// Path is the checkpoint file.
	Path string
	// Section is the section slot in conflict ("" for file-level
	// mismatches such as the format version).
	Section string
	// Field names the mismatched property: "version", "fingerprint" or
	// "rows".
	Field string
	// Want and Got are the expected (current-run) and stored values.
	Want, Got string
}

func (e *MismatchError) Error() string {
	where := e.Path
	if e.Section != "" {
		where += " section " + e.Section
	}
	return fmt.Sprintf("checkpoint: %s was written for a different configuration: %s is %s, current run needs %s (delete the file or rerun without -resume to start over)",
		where, e.Field, e.Got, e.Want)
}

// CorruptError reports a checkpoint file that could not be parsed —
// truncated by a crash mid-rename-window, hand-edited, or not a checkpoint
// at all.
type CorruptError struct {
	Path string
	Err  error
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("checkpoint: %s is unreadable: %v (delete the file or rerun without -resume to start over)", e.Path, e.Err)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// fileFormat is the on-disk JSON schema.
type fileFormat struct {
	Version  int                       `json:"version"`
	Sections map[string]*sectionFormat `json:"sections"`
}

type sectionFormat struct {
	Fingerprint string                     `json:"fingerprint"`
	Total       int                        `json:"total"`
	Done        map[string]json.RawMessage `json:"done"`
}

// Store is an on-disk collection of per-sweep checkpoints. It is safe for
// concurrent use by the sweep workers recording into its sections.
type Store struct {
	path string

	mu       sync.Mutex
	sections map[string]*sectionFormat
	calls    map[string]int // per-name Section call counter
}

// Open opens the checkpoint store at path. With resume false it starts
// empty, ignoring any file already there (the first Flush overwrites it).
// With resume true it loads the existing file, returning an error wrapping
// os.ErrNotExist when there is nothing to resume, a *CorruptError when the
// file cannot be parsed, and a *MismatchError when it was written by a
// different format version.
func Open(path string, resume bool) (*Store, error) {
	s := &Store{path: path, sections: map[string]*sectionFormat{}, calls: map[string]int{}}
	if !resume {
		return s, nil
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("checkpoint: nothing to resume: %w", err)
		}
		return nil, &CorruptError{Path: path, Err: err}
	}
	var f fileFormat
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, &CorruptError{Path: path, Err: err}
	}
	if f.Version != Version {
		return nil, &MismatchError{Path: path, Field: "version",
			Want: strconv.Itoa(Version), Got: strconv.Itoa(f.Version)}
	}
	if f.Sections != nil {
		s.sections = f.Sections
	}
	for _, sec := range s.sections {
		if sec.Done == nil {
			sec.Done = map[string]json.RawMessage{}
		}
	}
	return s, nil
}

// Path returns the store's file path.
func (s *Store) Path() string { return s.path }

// Section binds the next call slot for name to a checkpoint section with
// the given fingerprint and row count. A fresh slot starts empty; a slot
// restored from a resumed file must carry the same fingerprint and total or
// the call fails with a *MismatchError — resuming under a changed
// configuration is an error, never a silent merge.
func (s *Store) Section(name, fingerprint string, total int) (*Section, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls[name]++
	key := fmt.Sprintf("%s#%d", name, s.calls[name])
	sec, ok := s.sections[key]
	if !ok {
		sec = &sectionFormat{Fingerprint: fingerprint, Total: total, Done: map[string]json.RawMessage{}}
		s.sections[key] = sec
		return &Section{store: s, key: key, sec: sec}, nil
	}
	if sec.Fingerprint != fingerprint {
		return nil, &MismatchError{Path: s.path, Section: key, Field: "fingerprint",
			Want: fingerprint, Got: sec.Fingerprint}
	}
	if sec.Total != total {
		return nil, &MismatchError{Path: s.path, Section: key, Field: "rows",
			Want: strconv.Itoa(total), Got: strconv.Itoa(sec.Total)}
	}
	return &Section{store: s, key: key, sec: sec}, nil
}

// WriteAtomic writes data to path atomically: marshal into a temp file in
// the destination directory, fsync it, and rename it over the target, so a
// crash mid-write leaves either the previous file or the new one, never a
// torn hybrid. It is the write primitive under Store.Flush and is exported
// for other crash-safe writers (the lockd durable snapshot store reuses
// it).
func WriteAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("write %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("sync %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("close %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("rename: %w", err)
	}
	return nil
}

// Flush atomically persists the whole store: marshal to a temp file in the
// destination directory, fsync, rename over the target.
func (s *Store) Flush() error {
	s.mu.Lock()
	// Compact on purpose: row payloads are stored verbatim, and an
	// indenting marshal would reformat them, breaking the byte-for-byte
	// Record/Restore round trip the resume determinism contract rests on.
	buf, err := json.Marshal(&fileFormat{Version: Version, Sections: s.sections})
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("checkpoint: marshal: %w", err)
	}
	buf = append(buf, '\n')
	if err := WriteAtomic(s.path, buf); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Section is one sweep's slot view of a Store. It satisfies the sweep
// engine's sink contract (see internal/parwork.Sink): Restore hands back
// payloads recorded by a previous run, Record stores newly completed rows,
// Flush persists the whole store. Safe for concurrent use.
type Section struct {
	store *Store
	key   string
	sec   *sectionFormat
}

// Name returns the section's slot key within the store.
func (c *Section) Name() string { return c.key }

// Done returns the number of recorded rows.
func (c *Section) Done() int {
	c.store.mu.Lock()
	defer c.store.mu.Unlock()
	return len(c.sec.Done)
}

// Restore returns the payload recorded for row i, if any.
func (c *Section) Restore(i int) ([]byte, bool) {
	c.store.mu.Lock()
	defer c.store.mu.Unlock()
	p, ok := c.sec.Done[strconv.Itoa(i)]
	return p, ok
}

// Record stores the payload of newly completed row i. The payload must be
// valid JSON; it is compacted before storage so that Restore returns the
// same bytes before and after a file round trip.
func (c *Section) Record(i int, payload []byte) error {
	if i < 0 || i >= c.sec.Total {
		return fmt.Errorf("checkpoint: row %d out of range [0,%d)", i, c.sec.Total)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, payload); err != nil {
		return fmt.Errorf("checkpoint: row %d payload is not valid JSON: %w", i, err)
	}
	c.store.mu.Lock()
	defer c.store.mu.Unlock()
	c.sec.Done[strconv.Itoa(i)] = json.RawMessage(compact.Bytes())
	return nil
}

// Flush persists the owning store.
func (c *Section) Flush() error { return c.store.Flush() }
