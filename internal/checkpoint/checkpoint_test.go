package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestFingerprintDistinguishesParts(t *testing.T) {
	if Fingerprint("ab", "c") == Fingerprint("a", "bc") {
		t.Error("concatenation-ambiguous parts produced the same fingerprint")
	}
	if Fingerprint("x") == Fingerprint("x", "") {
		t.Error("trailing empty part produced the same fingerprint")
	}
	if Fingerprint("x", "y") != Fingerprint("x", "y") {
		t.Error("identical parts produced different fingerprints")
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	fp := Fingerprint("sweep", "alg", "scenario")

	s, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	sec, err := s.Section("crash/FLog", fp, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := sec.Record(0, []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := sec.Record(3, []byte(`{"x":4}`)); err != nil {
		t.Fatal(err)
	}
	if err := sec.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	rsec, err := r.Section("crash/FLog", fp, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := rsec.Done(); got != 2 {
		t.Fatalf("Done() = %d, want 2", got)
	}
	if p, ok := rsec.Restore(0); !ok || string(p) != `{"x":1}` {
		t.Errorf("Restore(0) = %q, %v", p, ok)
	}
	if p, ok := rsec.Restore(3); !ok || string(p) != `{"x":4}` {
		t.Errorf("Restore(3) = %q, %v", p, ok)
	}
	if _, ok := rsec.Restore(1); ok {
		t.Error("Restore(1) reported a row that was never recorded")
	}
}

func TestSectionCallCounterDisambiguates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	s, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	// Two sweeps with the same name but different configurations — e.g.
	// E15's stall sweep running the same algorithm on two scenarios.
	a, err := s.Section("stall/AFLog", Fingerprint("sc1"), 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Section("stall/AFLog", Fingerprint("sc2"), 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() == b.Name() {
		t.Fatalf("both sections bound to slot %q", a.Name())
	}
	if err := a.Record(1, []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// A resumed process asks in the same order and must see the same slots.
	r, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := r.Section("stall/AFLog", Fingerprint("sc1"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ra.Restore(1); !ok {
		t.Error("first slot lost its recorded row across a round trip")
	}
	if _, err := r.Section("stall/AFLog", Fingerprint("sc2"), 7); err != nil {
		t.Errorf("second slot rejected on resume: %v", err)
	}
}

func TestResumeMissingFile(t *testing.T) {
	_, err := Open(filepath.Join(t.TempDir(), "absent.json"), true)
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Open(resume) on a missing file: %v, want os.ErrNotExist", err)
	}
}

func TestFingerprintMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	s, _ := Open(path, false)
	if _, err := s.Section("crash/FLog", Fingerprint("seeds=1,2"), 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	// Changed seed set → different fingerprint → typed rejection.
	_, err = r.Section("crash/FLog", Fingerprint("seeds=1,2,3"), 4)
	var mm *MismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("changed fingerprint: %v, want *MismatchError", err)
	}
	if mm.Field != "fingerprint" {
		t.Errorf("Field = %q, want fingerprint", mm.Field)
	}
	if !strings.Contains(mm.Error(), "-resume") {
		t.Errorf("error message should tell the user how to start over: %q", mm.Error())
	}
}

func TestTotalMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	s, _ := Open(path, false)
	fp := Fingerprint("cfg")
	if _, err := s.Section("stall", fp, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Section("stall", fp, 9)
	var mm *MismatchError
	if !errors.As(err, &mm) || mm.Field != "rows" {
		t.Fatalf("changed total: %v, want *MismatchError{Field: rows}", err)
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := os.WriteFile(path, []byte(`{"version":99,"sections":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(path, true)
	var mm *MismatchError
	if !errors.As(err, &mm) || mm.Field != "version" {
		t.Fatalf("future-version file: %v, want *MismatchError{Field: version}", err)
	}
}

func TestCorruptFileRejected(t *testing.T) {
	for name, content := range map[string]string{
		"truncated": `{"version":1,"sections":{"a#1":{"fingerpr`,
		"garbage":   "not json at all\n",
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "ck.json")
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := Open(path, true)
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("Open = %v, want *CorruptError", err)
			}
		})
	}
}

func TestFlushIsAtomic(t *testing.T) {
	// A flush over an existing checkpoint must not leave a torn file:
	// the temp file lives in the same directory and is renamed over the
	// target, so the directory never holds a partially written ck.json.
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	s, _ := Open(path, false)
	fp := Fingerprint("cfg")
	sec, err := s.Section("a", fp, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := sec.Record(i, []byte(`{"i":1}`)); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
			// Every observable state of the file parses.
			if _, err := Open(path, true); err != nil {
				t.Fatalf("after flush %d: %v", i, err)
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "ck.json" {
		t.Errorf("directory left with stray files: %v", entries)
	}
}

func TestRecordValidation(t *testing.T) {
	s, _ := Open(filepath.Join(t.TempDir(), "ck.json"), false)
	sec, err := s.Section("a", Fingerprint("cfg"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sec.Record(2, []byte(`1`)); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := sec.Record(-1, []byte(`1`)); err == nil {
		t.Error("negative index accepted")
	}
	if err := sec.Record(0, []byte(`{"truncated`)); err == nil {
		t.Error("invalid JSON payload accepted")
	}
}

func TestConcurrentRecord(t *testing.T) {
	// Workers record into one section concurrently; run under -race in CI.
	s, _ := Open(filepath.Join(t.TempDir(), "ck.json"), false)
	const n = 200
	sec, err := s.Section("a", Fingerprint("cfg"), n)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < n; i += 8 {
				if err := sec.Record(i, []byte(`{"i":1}`)); err != nil {
					t.Error(err)
					return
				}
				if i%16 == 0 {
					if err := sec.Flush(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := sec.Done(); got != n {
		t.Fatalf("Done() = %d, want %d", got, n)
	}
}
