package core

import "testing"

func TestGroupsClamped(t *testing.T) {
	cases := []struct {
		f    F
		n    int
		want int
	}{
		{FOne, 100, 1},
		{FOne, 1, 1},
		{FLinear, 8, 8},
		{FLinear, 1, 1},
		{FHalf, 8, 4},
		{FHalf, 1, 1},
		{FLog, 2, 1},
		{FLog, 1024, 10},
		{FSqrt, 16, 4},
		{FSqrt, 17, 5},
		{FSqrt, 1, 1},
	}
	for _, c := range cases {
		if got := c.f.Groups(c.n); got != c.want {
			t.Errorf("%s.Groups(%d) = %d, want %d", c.f.Name, c.n, got, c.want)
		}
	}
}

func TestGroupSizeCoversAllReaders(t *testing.T) {
	// Every reader id in [0,n) must map to a group index < Groups(n).
	for _, f := range StandardFs {
		for n := 1; n <= 200; n++ {
			g, k := f.Groups(n), f.GroupSize(n)
			if k < 1 {
				t.Fatalf("%s: GroupSize(%d) = %d", f.Name, n, k)
			}
			if maxGroup := (n - 1) / k; maxGroup >= g {
				t.Fatalf("%s n=%d: reader %d maps to group %d but only %d groups",
					f.Name, n, n-1, maxGroup, g)
			}
		}
	}
}

func TestGroupSizeTimesGroupsCoverN(t *testing.T) {
	for _, f := range StandardFs {
		for _, n := range []int{1, 2, 3, 7, 8, 100, 1000} {
			if g, k := f.Groups(n), f.GroupSize(n); g*k < n {
				t.Errorf("%s n=%d: groups(%d) * K(%d) < n", f.Name, n, g, k)
			}
		}
	}
}

func TestFByName(t *testing.T) {
	for _, f := range StandardFs {
		got, err := FByName(f.Name)
		if err != nil || got.Name != f.Name {
			t.Errorf("FByName(%q) = %v, %v", f.Name, got.Name, err)
		}
	}
	if _, err := FByName("bogus"); err == nil {
		t.Error("FByName(bogus) did not error")
	}
}

func TestGroupSizeZeroReaders(t *testing.T) {
	for _, f := range StandardFs {
		if got := f.GroupSize(0); got != 1 {
			t.Errorf("%s.GroupSize(0) = %d, want 1", f.Name, got)
		}
		if got := f.Groups(0); got != 1 {
			t.Errorf("%s.Groups(0) = %d, want 1", f.Name, got)
		}
	}
}
