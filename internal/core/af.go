package core

import (
	"fmt"
	"math"

	"repro/internal/counter"
	"repro/internal/memmodel"
	"repro/internal/mutex"
)

// RSIG opcodes (writer -> readers), paper Section 4.
const (
	opNOP      = 0 // no writer holds WL
	opPreentry = 1 // writer verifying no readers are waiting (lines 12-17)
	opWait     = 2 // readers must wait for the current writer passage
)

// WSIG opcodes (group-i readers -> writer).
const (
	wsBottom  = 0 // initial state for the current passage (line 8)
	wsProceed = 1 // group drained during PREENTRY; writer may continue (line 45)
	wsWait    = 2 // writer armed the group and is about to scan it (line 16)
	wsCS      = 3 // group quiescent or waiting; writer may enter the CS (line 52)
)

// CounterKind selects the group-counter implementation, as an ablation of
// the paper's key ingredient: the f-array's O(log K)-add / O(1)-read tree
// is what caps the reader's RMR cost, and replacing it with a naive
// single-word CAS counter (CounterCASWord) re-introduces the invalidation
// storms the tree exists to avoid (experiment E9).
type CounterKind uint8

const (
	// CounterFArray is the paper's Jayanti-style tree counter (default).
	CounterFArray CounterKind = iota + 1
	// CounterCASWord is the naive single-word CAS counter (ablation).
	CounterCASWord
	// CounterCellArray is the per-slot scan counter: O(1) adds but O(K)
	// reads, which shifts the cost onto whoever reads the counter — the
	// writer's group scan and the helping paths (ablation).
	CounterCellArray
)

// MutexKind selects the writers' mutex WL, as a substrate ablation. The
// paper requires an O(log m)-RMR starvation-free mutex with Bounded Exit
// ([21]); the tournament tree satisfies that. CLH (queue lock, O(1) RMR
// with hardware swap, CAS-emulated here) and the FAA ticket lock are
// alternative substrates with different constants and operation sets
// (experiment E10).
type MutexKind uint8

const (
	// MutexTournament is the Peterson arbitration tree (default; the
	// paper's WL).
	MutexTournament MutexKind = iota + 1
	// MutexCLH is the CLH queue lock.
	MutexCLH
	// MutexTicket is the FAA ticket lock (leaves the read/write/CAS
	// operation set).
	MutexTicket
)

// Option configures an AF instance at construction time.
type Option func(*AF)

// WithCounter selects the group-counter implementation.
func WithCounter(kind CounterKind) Option {
	return func(a *AF) { a.kind = kind }
}

// WithWriterMutex selects the WL substrate.
func WithWriterMutex(kind MutexKind) Option {
	return func(a *AF) { a.mutexKind = kind }
}

// AF is one member of the A_f family, bound to a parameterization F.
// Construct with New, then Init for a concrete population.
//
// Implementation note (deviation from the extended abstract): HelpWCS as
// printed reads C[i] and then W[i] (line 51). With two separate counter
// reads that order admits a mutual-exclusion violation: between the two
// reads an entering reader can increment both counters such that its
// C-increment is missed but its W-increment is observed, making the counts
// match while an earlier reader is still inside the CS. Reading W[i] first
// is safe: every reader counted in W read <seq, WAIT> from RSIG and cannot
// leave its passage before the writer exits, so it is necessarily counted
// by the later C[i] read, and a reader in the CS makes C's read strictly
// larger. See TestHelpWCSPaperOrderUnsafe for a schedule exhibiting the
// violation.
type AF struct {
	f         F
	kind      CounterKind
	mutexKind MutexKind

	n, m   int
	groups int
	k      int

	c    []counter.Counter // C[i]: group-i readers in a passage
	w    []counter.Counter // W[i]: group-i readers waiting
	wl   mutex.Lock        // WL: writers' mutex
	wseq memmodel.Var      // WSEQ: writer passage sequence number
	wsig []memmodel.Var    // WSIG[i]: <seq, opcode> from group i to the writer
	rsig memmodel.Var      // RSIG: <seq, opcode> from the writer to readers

	// wlocal[wid] carries the writer's passage sequence number from
	// WriterEnter to WriterExit.
	wlocal []uint64

	// helpWCSCFirst selects the extended abstract's literal (unsafe)
	// HelpWCS read order; test-only. See helpWCS.
	helpWCSCFirst bool

	inited bool
}

var (
	_ memmodel.Algorithm    = (*AF)(nil)
	_ memmodel.TryAlgorithm = (*AF)(nil)
)

// New returns an uninitialized A_f instance for parameterization f, using
// the paper's substrates (f-array counters, tournament WL) unless options
// say otherwise.
func New(f F, opts ...Option) *AF {
	a := &AF{f: f, kind: CounterFArray, mutexKind: MutexTournament}
	for _, opt := range opts {
		opt(a)
	}
	return a
}

// NewWithCounter returns an A_f instance with an explicit group-counter
// implementation (ablation studies). Equivalent to New(f, WithCounter(kind)).
func NewWithCounter(f F, kind CounterKind) *AF { return New(f, WithCounter(kind)) }

// Name implements memmodel.Algorithm.
func (a *AF) Name() string {
	name := "af-" + a.f.Name
	switch a.kind {
	case CounterCASWord:
		name += "+casword"
	case CounterCellArray:
		name += "+cellarray"
	}
	switch a.mutexKind {
	case MutexCLH:
		name += "+clhwl"
	case MutexTicket:
		name += "+ticketwl"
	}
	return name
}

// Groups returns f(n), the number of reader groups, after Init.
func (a *AF) Groups() int { return a.groups }

// GroupSize returns K, the per-group population, after Init.
func (a *AF) GroupSize() int { return a.k }

// Init implements memmodel.Algorithm: it allocates the shared variables of
// Algorithm 1 (lines 1-4).
func (a *AF) Init(alloc memmodel.Allocator, nReaders, nWriters int) error {
	if a.inited {
		return fmt.Errorf("core: %s: Init called twice", a.Name())
	}
	if nReaders < 0 || nWriters < 0 {
		return fmt.Errorf("core: negative population %d/%d", nReaders, nWriters)
	}
	a.inited = true
	a.n, a.m = nReaders, nWriters
	a.groups = a.f.Groups(nReaders)
	a.k = a.f.GroupSize(nReaders)

	a.c = make([]counter.Counter, a.groups)
	a.w = make([]counter.Counter, a.groups)
	for i := 0; i < a.groups; i++ {
		switch a.kind {
		case CounterCASWord:
			a.c[i] = counter.NewCASWord(alloc, fmt.Sprintf("C[%d]", i))
			a.w[i] = counter.NewCASWord(alloc, fmt.Sprintf("W[%d]", i))
		case CounterCellArray:
			a.c[i] = counter.NewCellArray(alloc, fmt.Sprintf("C[%d]", i), a.k)
			a.w[i] = counter.NewCellArray(alloc, fmt.Sprintf("W[%d]", i), a.k)
		default:
			a.c[i] = counter.NewFArray(alloc, fmt.Sprintf("C[%d]", i), a.k)
			a.w[i] = counter.NewFArray(alloc, fmt.Sprintf("W[%d]", i), a.k)
		}
	}
	switch a.mutexKind {
	case MutexCLH:
		a.wl = mutex.NewCLH(alloc, "WL", max(nWriters, 1))
	case MutexTicket:
		a.wl = mutex.NewTicket(alloc, "WL")
	default:
		a.wl = mutex.NewTournament(alloc, "WL", max(nWriters, 1))
	}
	a.wseq = alloc.Alloc("WSEQ", 0)
	a.wsig = alloc.AllocN("WSIG", a.groups, memmodel.PackSig(0, wsBottom))
	a.rsig = alloc.Alloc("RSIG", memmodel.PackSig(0, opNOP))
	a.wlocal = make([]uint64, max(nWriters, 1))
	return nil
}

// group returns reader rid's group index and in-group counter slot.
func (a *AF) group(rid int) (int, int) {
	return rid / a.k, rid % a.k
}

// ReaderEnter implements lines 31-38 of Algorithm 1.
func (a *AF) ReaderEnter(p memmodel.Proc, rid int) {
	i, slot := a.group(rid)
	a.c[i].Add(p, slot, 1)                        // line 31
	seq, op := memmodel.UnpackSig(p.Read(a.rsig)) // line 32
	if op == opWait {                             // line 33
		a.w[i].Add(p, slot, 1) // line 34
		a.helpWCS(p, i, seq)   // line 35
		waitWord := memmodel.PackSig(seq, opWait)
		p.Await(a.rsig, func(x uint64) bool { return x != waitWord }) // line 36
		a.w[i].Add(p, slot, -1)                                       // line 37
	}
}

// ReaderExit implements lines 40-48 of Algorithm 1.
func (a *AF) ReaderExit(p memmodel.Proc, rid int) {
	i, slot := a.group(rid)
	a.c[i].Add(p, slot, -1)                       // line 40
	seq, op := memmodel.UnpackSig(p.Read(a.rsig)) // line 41
	switch op {
	case opPreentry: // line 42
		if a.c[i].Read(p) == 0 { // line 43
			// line 45: exactly one exiting reader wins this CAS per
			// writer passage (the expected value embeds seq).
			p.CAS(a.wsig[i], memmodel.PackSig(seq, wsBottom), memmodel.PackSig(seq, wsProceed))
		}
	case opWait: // line 47
		a.helpWCS(p, i, seq) // line 48
	}
}

// helpWCS implements lines 50-54: if every group-i reader currently in a
// passage is waiting, signal the writer that group i is clear.
//
// W[i] is read before C[i]; see the type comment for why this order is
// load-bearing. The helpWCSCFirst flag restores the extended abstract's
// literal C-then-W order; it exists only so the regression test can
// demonstrate the resulting mutual-exclusion violation.
func (a *AF) helpWCS(p memmodel.Proc, i int, seq uint64) {
	var waiting, inPassage int32
	if a.helpWCSCFirst {
		inPassage = a.c[i].Read(p)
		waiting = a.w[i].Read(p)
	} else {
		waiting = a.w[i].Read(p)
		inPassage = a.c[i].Read(p)
	}
	if waiting == inPassage { // line 51
		// line 52
		p.CAS(a.wsig[i], memmodel.PackSig(seq, wsWait), memmodel.PackSig(seq, wsCS))
	}
}

// WriterEnter implements lines 6-23 of Algorithm 1.
func (a *AF) WriterEnter(p memmodel.Proc, wid int) {
	a.wl.Enter(p, wid)    // line 6
	seq := p.Read(a.wseq) // the passage's sequence number
	//rwlint:ignore memdiscipline wlocal[wid] is writer wid's private scratch (the paper's process-local seq register); only wid reads it, in its own exit section
	a.wlocal[wid] = seq

	for i := 0; i < a.groups; i++ { // lines 7-9
		p.Write(a.wsig[i], memmodel.PackSig(seq, wsBottom))
	}
	p.Write(a.rsig, memmodel.PackSig(seq, opPreentry)) // line 11

	// Lines 12-17: verify no readers are still waiting for an earlier
	// passage before instructing readers to wait for this one.
	for i := 0; i < a.groups; i++ {
		if a.c[i].Read(p) > 0 { // line 13
			proceed := memmodel.PackSig(seq, wsProceed)
			p.Await(a.wsig[i], func(x uint64) bool { return x == proceed }) // line 14
		}
		p.Write(a.wsig[i], memmodel.PackSig(seq, wsWait)) // line 16
	}

	p.Write(a.rsig, memmodel.PackSig(seq, opWait)) // line 18

	// Lines 19-23: wait until every group is clear of readers that did
	// not observe the WAIT signal.
	for i := 0; i < a.groups; i++ {
		if a.c[i].Read(p) > 0 { // line 20
			cs := memmodel.PackSig(seq, wsCS)
			p.Await(a.wsig[i], func(x uint64) bool { return x == cs }) // line 21
		}
	}
}

// WriterExit implements lines 25-27 of Algorithm 1.
func (a *AF) WriterExit(p memmodel.Proc, wid int) {
	seq := a.wlocal[wid]
	p.Write(a.wseq, seq+1)                          // line 25
	p.Write(a.rsig, memmodel.PackSig(seq+1, opNOP)) // line 26
	a.wl.Exit(p, wid)                               // line 27
}

// ReaderTryEnter implements memmodel.TryAlgorithm. The reader entry
// section has exactly one unbounded wait — the await on RSIG while a
// writer holds the lock (line 36) — so the try variant registers in C[i],
// checks RSIG once, and on <seq, WAIT> abandons by running the ordinary
// exit section: an aborted attempt is indistinguishable from an
// instantaneous empty passage, so every safety and signaling invariant of
// Algorithm 1 carries over verbatim (including the helpWCS handshake the
// waiting writer may depend on). The failed attempt costs two counter
// updates plus O(1) signal steps: O(log(n/f(n))) RMRs, constant in n at
// the f(n)=n endpoint.
func (a *AF) ReaderTryEnter(p memmodel.Proc, rid int) bool {
	i, slot := a.group(rid)
	a.c[i].Add(p, slot, 1)                      // line 31
	_, op := memmodel.UnpackSig(p.Read(a.rsig)) // line 32
	if op != opWait {
		return true
	}
	a.ReaderExit(p, rid) // abandon: C[i] decrement + exit signaling
	return false
}

// WriterTryEnter implements memmodel.TryAlgorithm. Writers have three
// blocking points: WL itself and the two group scans (lines 14 and 21).
// The try variant (1) acquires WL through the substrate's bounded
// abortable entry (mutex.TryEnterer — O(log m) for the tournament tree,
// failure rolls the arbitration path back without waiting); (2) runs the
// entry handshake with each await replaced by a single check; and (3)
// abandons by running the ordinary WriterExit: advancing WSEQ and
// publishing <seq+1, NOP> invalidates every signal of the aborted round
// (readers parked on <seq, WAIT> wake and proceed) and releases WL — the
// same jump-to-exit rollback used by abortable-mutex constructions. A
// failed attempt costs O(f(n) + log m) RMRs, constant in n at the f(n)=1
// endpoint.
//
// WL substrates without bounded try-entry (CLH, ticket) have no way to
// abandon a queue position without waiting, so under those ablations the
// attempt is refused outright.
func (a *AF) WriterTryEnter(p memmodel.Proc, wid int) bool {
	tl, ok := a.wl.(mutex.TryEnterer)
	if !ok {
		return false
	}
	if !tl.TryEnter(p, wid) {
		return false
	}
	seq := p.Read(a.wseq)
	//rwlint:ignore memdiscipline wlocal[wid] is writer wid's private scratch (the paper's process-local seq register); only wid reads it, in its own exit section
	a.wlocal[wid] = seq

	for i := 0; i < a.groups; i++ { // lines 7-9
		p.Write(a.wsig[i], memmodel.PackSig(seq, wsBottom))
	}
	p.Write(a.rsig, memmodel.PackSig(seq, opPreentry)) // line 11

	for i := 0; i < a.groups; i++ { // lines 12-17, await -> single check
		if a.c[i].Read(p) > 0 &&
			p.Read(a.wsig[i]) != memmodel.PackSig(seq, wsProceed) {
			a.WriterExit(p, wid)
			return false
		}
		p.Write(a.wsig[i], memmodel.PackSig(seq, wsWait)) // line 16
	}

	p.Write(a.rsig, memmodel.PackSig(seq, opWait)) // line 18

	for i := 0; i < a.groups; i++ { // lines 19-23, await -> single check
		if a.c[i].Read(p) > 0 &&
			p.Read(a.wsig[i]) != memmodel.PackSig(seq, wsCS) {
			a.WriterExit(p, wid)
			return false
		}
	}
	return true
}

// Props implements memmodel.Algorithm.
func (a *AF) Props() memmodel.Props {
	f := a.f
	return memmodel.Props{
		UsesCAS:              true,
		UsesFAA:              a.mutexKind == MutexTicket,
		ConcurrentEntering:   true,
		ReaderStarvationFree: true,
		PredictedReaderRMR: func(n, _ int) float64 {
			return math.Log2(float64(f.GroupSize(n))) + 1
		},
		PredictedWriterRMR: func(n, m int) float64 {
			return float64(f.Groups(n)) + math.Log2(float64(max(m, 2)))
		},
	}
}
