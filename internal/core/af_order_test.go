package core

// This file contains the staged regression test for the HelpWCS read-order
// deviation documented on the AF type: the extended abstract's line 51
// compares C[i].read() = W[i].read() with C read first, which admits a
// mutual-exclusion violation when implemented as two separate counter
// reads. The test constructs the violating schedule deterministically:
//
//   1. Writer w finishes its PREENTRY scan (group empty) and is poised to
//      write RSIG = <seq, WAIT> (line 18).
//   2. Reader R0 enters: increments C, reads RSIG = PREENTRY, and enters
//      the CS (legal: no WAIT was published yet). It parks inside the CS.
//   3. w publishes WAIT and blocks at line 21 awaiting WSIG = <seq, CS>
//      (it saw C > 0).
//   4. Reader R1 enters, sees WAIT, increments W (W=1), starts HelpWCS and
//      performs its first read. Under the paper's order that read is
//      C = 2 (R0 + R1). R1 is paused before its second read.
//   5. Reader R2 enters, sees WAIT, increments C (C=3) and W (W=2); its
//      own HelpWCS sees C=3 != W=2 and does nothing; R2 parks on RSIG.
//   6. R1 resumes and performs its second read: W = 2, which equals its
//      stale C read. It wrongly CASes WSIG to <seq, CS>.
//   7. w wakes and enters the CS while R0 is still inside it.
//
// With the implementation's W-before-C order, step 4 reads W=1 and step 6
// reads C=3, the counts differ, and w keeps waiting until R0 actually
// leaves - the safe behaviour the companion test verifies.

import (
	"testing"

	"repro/internal/counter"
	"repro/internal/memmodel"
	"repro/internal/sim"
)

// manualSched lets the test choose every scheduling decision. The target
// process must be poised when Step is called.
type manualSched struct {
	target int
}

func (m *manualSched) Name() string { return "manual" }

func (m *manualSched) Next(_ int, poised []int) int {
	for _, p := range poised {
		if p == m.target {
			return p
		}
	}
	panic("manualSched: target not poised")
}

// afStage wires a 3-reader, 1-writer A_f instance (single group, K=3) into
// a runner under manual scheduling.
type afStage struct {
	t   *testing.T
	r   *sim.Runner
	s   *manualSched
	alg *AF
}

const (
	stR0 = 0
	stR1 = 1
	stR2 = 2
	stW  = 3
)

func newAFStage(t *testing.T, cFirst bool) *afStage {
	t.Helper()
	s := &manualSched{}
	r := sim.New(sim.Config{Scheduler: s})
	alg := New(FOne)
	alg.helpWCSCFirst = cFirst
	if err := alg.Init(r, 3, 1); err != nil {
		t.Fatalf("Init: %v", err)
	}

	reader := func(rid int, startBarrier bool) sim.Program {
		return func(p sim.Proc) {
			if startBarrier {
				p.Barrier()
			}
			p.Section(memmodel.SecEntry)
			alg.ReaderEnter(p, rid)
			p.Section(memmodel.SecCS)
			if rid == stR0 {
				p.Barrier() // R0 parks inside the CS
			}
			p.Section(memmodel.SecExit)
			alg.ReaderExit(p, rid)
			p.Section(memmodel.SecRemainder)
		}
	}
	r.AddProc(reader(stR0, false))
	r.AddProc(reader(stR1, true))
	r.AddProc(reader(stR2, true))
	r.AddProc(func(p sim.Proc) {
		p.Section(memmodel.SecEntry)
		alg.WriterEnter(p, 0)
		p.Section(memmodel.SecCS)
		p.Barrier() // writer parks inside the CS
		p.Section(memmodel.SecExit)
		alg.WriterExit(p, 0)
		p.Section(memmodel.SecRemainder)
	})
	if err := r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(r.Close)
	return &afStage{t: t, r: r, s: s, alg: alg}
}

func (st *afStage) pending(id int) (sched0 struct {
	kind memmodel.OpKind
	v    memmodel.Var
	arg  uint64
}, ok bool) {
	for _, op := range st.r.Poised() {
		if op.Proc == id {
			sched0.kind = op.Kind
			sched0.v = op.Var
			sched0.arg = op.Arg
			return sched0, true
		}
	}
	return sched0, false
}

// step runs exactly one step of process id.
func (st *afStage) step(id int) {
	st.t.Helper()
	st.s.target = id
	progressed, err := st.r.Step()
	if err != nil || !progressed {
		st.t.Fatalf("step p%d: progressed=%v err=%v", id, progressed, err)
	}
}

// stepUntil drives process id until cond holds, with a step budget.
func (st *afStage) stepUntil(id int, what string, cond func() bool) {
	st.t.Helper()
	for i := 0; i < 10_000; i++ {
		if cond() {
			return
		}
		st.step(id)
	}
	st.t.Fatalf("p%d: condition %q not reached", id, what)
}

func (st *afStage) atBarrier(id int) bool {
	for _, b := range st.r.AtBarrier() {
		if b == id {
			return true
		}
	}
	return false
}

func (st *afStage) isAwaiting(id int) bool {
	for _, a := range st.r.Awaiting() {
		if a == id {
			return true
		}
	}
	return false
}

func (st *afStage) inCS(id int) bool {
	return st.r.Account(id).Section() == memmodel.SecCS
}

// runStagedSchedule drives the adversarial schedule from the file comment
// up to R1's HelpWCS signal attempt, then lets the writer run. It returns
// whether the writer managed to enter the CS while R0 was still inside.
func runStagedSchedule(t *testing.T, cFirst bool) bool {
	t.Helper()
	st := newAFStage(t, cFirst)
	a := st.alg
	cRoot := a.c[0].(*counter.FArray).Root()
	wRoot := a.w[0].(*counter.FArray).Root()

	// Phase 1: writer up to (but not including) line 18's RSIG=WAIT write.
	st.stepUntil(stW, "writer poised at line 18", func() bool {
		op, ok := st.pending(stW)
		return ok && op.kind == memmodel.OpWrite && op.v == a.rsig &&
			memmodel.SigOp(op.arg) == opWait
	})

	// Phase 2: R0 enters the CS and parks (reads RSIG = PREENTRY).
	st.stepUntil(stR0, "R0 inside CS", func() bool { return st.atBarrier(stR0) })
	if !st.inCS(stR0) {
		t.Fatal("staging: R0 not in CS")
	}

	// Phase 3: writer publishes WAIT and blocks at line 21.
	st.step(stW) // line 18
	st.stepUntil(stW, "writer awaiting WSIG=CS", func() bool { return st.isAwaiting(stW) })

	// Phase 4: R1 through W.add(1); pause inside HelpWCS after its first
	// counter read.
	if err := st.r.ReleaseBarrier(stR1); err != nil {
		t.Fatalf("release R1: %v", err)
	}
	firstRead := wRoot // W-first (safe) order
	if cFirst {
		firstRead = cRoot // paper order
	}
	st.stepUntil(stR1, "R1 poised at HelpWCS first read", func() bool {
		if memmodel.VerSumSum(st.r.Value(wRoot)) != 1 {
			return false // W.add(1) not finished yet
		}
		op, ok := st.pending(stR1)
		return ok && op.kind == memmodel.OpRead && op.v == firstRead
	})
	st.step(stR1) // execute the first HelpWCS read; second read now pending

	// Phase 5: R2 runs its whole entry and parks on RSIG.
	if err := st.r.ReleaseBarrier(stR2); err != nil {
		t.Fatalf("release R2: %v", err)
	}
	st.stepUntil(stR2, "R2 parked on RSIG", func() bool { return st.isAwaiting(stR2) })

	// Phase 6: R1 finishes HelpWCS (second read, possibly the wrongful
	// CAS) and parks on RSIG.
	st.stepUntil(stR1, "R1 parked on RSIG", func() bool { return st.isAwaiting(stR1) })

	// Phase 7: if the writer was signalled it is now poised; drive it as
	// far as it can go and see whether it reaches its in-CS barrier.
	for i := 0; i < 10_000; i++ {
		if st.atBarrier(stW) || st.isAwaiting(stW) {
			break
		}
		st.step(stW)
	}
	return st.atBarrier(stW) && st.inCS(stW) && st.inCS(stR0)
}

// TestHelpWCSPaperOrderUnsafe demonstrates the mutual-exclusion violation
// that the extended abstract's literal C-then-W HelpWCS order admits.
func TestHelpWCSPaperOrderUnsafe(t *testing.T) {
	if !runStagedSchedule(t, true) {
		t.Fatal("expected the staged schedule to violate mutual exclusion under the paper's C-then-W HelpWCS order; it did not (staging broke?)")
	}
}

// TestHelpWCSImplementedOrderSafe runs the identical adversarial schedule
// against the W-then-C order this package implements and verifies the
// writer keeps waiting while R0 occupies the CS.
func TestHelpWCSImplementedOrderSafe(t *testing.T) {
	if runStagedSchedule(t, false) {
		t.Fatal("W-then-C HelpWCS order let the writer into an occupied CS")
	}
}
