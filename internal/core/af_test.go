package core

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/spec"
)

func TestAFName(t *testing.T) {
	if got := New(FLog).Name(); got != "af-log" {
		t.Errorf("Name = %q", got)
	}
}

func TestAFInitTwiceFails(t *testing.T) {
	r := sim.New(sim.Config{})
	a := New(FOne)
	if err := a.Init(r, 2, 1); err != nil {
		t.Fatalf("first Init: %v", err)
	}
	if err := a.Init(r, 2, 1); err == nil {
		t.Fatal("second Init did not fail")
	}
}

func TestAFInitNegativePopulation(t *testing.T) {
	r := sim.New(sim.Config{})
	if err := New(FOne).Init(r, -1, 0); err == nil {
		t.Fatal("negative population accepted")
	}
}

// TestAFSequentialSmoke: one reader, one writer, strictly sequential
// scheduling.
func TestAFSequentialSmoke(t *testing.T) {
	for _, f := range StandardFs {
		rep := spec.Run(New(f), spec.Scenario{
			NReaders: 1, NWriters: 1,
			ReaderPassages: 3, WriterPassages: 3,
			Scheduler: sched.NewSticky(),
		})
		if !rep.OK() {
			t.Errorf("af-%s sequential: %s", f.Name, rep.Failures())
		}
	}
}

// TestAFPropertiesGrid is the main correctness matrix: every
// parameterization, multiple populations, protocols, schedulers and seeds.
// Completion proves deadlock freedom and non-starvation for the finite
// workload; the monitor proves mutual exclusion.
func TestAFPropertiesGrid(t *testing.T) {
	type popCase struct{ n, m int }
	pops := []popCase{{1, 1}, {2, 1}, {4, 1}, {3, 2}, {8, 2}, {5, 3}}
	for _, f := range StandardFs {
		for _, pop := range pops {
			for _, protocol := range []sim.Protocol{sim.WriteThrough, sim.WriteBack} {
				for _, seed := range []int64{1, 2, 3} {
					rep := spec.Run(New(f), spec.Scenario{
						NReaders: pop.n, NWriters: pop.m,
						ReaderPassages: 3, WriterPassages: 2,
						Protocol:  protocol,
						Scheduler: sched.NewRandom(seed),
						CSReads:   2,
					})
					if !rep.OK() {
						t.Errorf("af-%s n=%d m=%d %v seed=%d:\n%s",
							f.Name, pop.n, pop.m, protocol, seed, rep.Failures())
					}
				}
			}
		}
	}
}

// TestAFManySchedulers exercises biased schedulers that starve or favor
// particular processes within the fairness limits of finite runs.
func TestAFManySchedulers(t *testing.T) {
	scheds := []func() sched.Scheduler{
		func() sched.Scheduler { return sched.NewRoundRobin() },
		func() sched.Scheduler { return sched.NewSticky() },
		func() sched.Scheduler { return sched.HighestFirst{} },
	}
	for _, f := range []F{FOne, FLog, FLinear} {
		for _, mk := range scheds {
			rep := spec.Run(New(f), spec.Scenario{
				NReaders: 4, NWriters: 2,
				ReaderPassages: 2, WriterPassages: 2,
				Scheduler: mk(),
			})
			if !rep.OK() {
				t.Errorf("af-%s %s:\n%s", f.Name, rep.Scenario, rep.Failures())
			}
		}
	}
}

// TestAFConcurrentEntering checks the Concurrent Entering property: with
// all writers in the remainder section, readers overlap in the CS and each
// completes its entry within a bound independent of scheduling.
func TestAFConcurrentEntering(t *testing.T) {
	for _, f := range StandardFs {
		rep := spec.Run(New(f), spec.Scenario{
			NReaders: 6, NWriters: 1,
			ReaderPassages: 2, WriterPassages: 0, // writer never leaves remainder
			Scheduler: sched.NewRoundRobin(),
			CSReads:   3,
		})
		if !rep.OK() {
			t.Fatalf("af-%s: %s", f.Name, rep.Failures())
		}
		if rep.MaxConcurrentReaders < 2 {
			t.Errorf("af-%s: MaxConcurrentReaders = %d, want >= 2 (readers must overlap)",
				f.Name, rep.MaxConcurrentReaders)
		}
		// Entry must be wait-free here: no Await re-checks, so entry steps
		// stay within the O(log K) counter add plus a constant.
		k := f.GroupSize(6)
		logK := math.Log2(float64(k)) + 1
		if limit := int(10*logK) + 12; rep.MaxReaderPassage.EntrySteps > limit {
			t.Errorf("af-%s: entry steps %d exceed no-writer bound %d",
				f.Name, rep.MaxReaderPassage.EntrySteps, limit)
		}
	}
}

// TestAFBoundedExit: exit sections never wait, so their step counts are
// bounded by the O(log K) counter add plus helping constants for readers,
// and by a constant plus O(log m) for writers.
func TestAFBoundedExit(t *testing.T) {
	for _, f := range StandardFs {
		for _, seed := range []int64{4, 5} {
			n, m := 8, 2
			rep := spec.Run(New(f), spec.Scenario{
				NReaders: n, NWriters: m,
				ReaderPassages: 3, WriterPassages: 3,
				Scheduler: sched.NewRandom(seed),
			})
			if !rep.OK() {
				t.Fatalf("af-%s: %s", f.Name, rep.Failures())
			}
			k := f.GroupSize(n)
			logK := math.Log2(float64(k)) + 1
			// Reader exit: counter add (<=8 steps/level x ~logK levels) +
			// RSIG read + helpWCS (2 counter reads + CAS).
			readerLimit := int(16*logK) + 16
			if got := rep.MaxReaderPassage.ExitSteps; got > readerLimit {
				t.Errorf("af-%s seed=%d: reader exit steps %d > %d", f.Name, seed, got, readerLimit)
			}
			// Writer exit: 2 writes + tournament exit (log m writes).
			writerLimit := 2 + 8
			if got := rep.MaxWriterPassage.ExitSteps; got > writerLimit {
				t.Errorf("af-%s seed=%d: writer exit steps %d > %d", f.Name, seed, got, writerLimit)
			}
		}
	}
}

// TestAFTradeoffShape is the heart of Theorem 18: across the f sweep, the
// writer's entry RMRs grow with f(n) while the reader's per-passage RMRs
// shrink with log(n/f(n)). Low-contention scheduling isolates the
// algorithmic cost from waiting cost.
func TestAFTradeoffShape(t *testing.T) {
	const n, m = 16, 1
	type point struct {
		name              string
		writerRMR, reader int
	}
	var pts []point
	for _, f := range StandardFs {
		rep := spec.Run(New(f), spec.Scenario{
			NReaders: n, NWriters: m,
			ReaderPassages: 2, WriterPassages: 2,
			Scheduler: sched.NewSticky(), // near-sequential: isolates solo cost
		})
		if !rep.OK() {
			t.Fatalf("af-%s: %s", f.Name, rep.Failures())
		}
		pts = append(pts, point{f.Name, rep.MaxWriterPassage.EntryRMR, rep.MaxReaderPassage.RMR()})
	}
	// Writer entry RMR must grow monotonically (weakly) from f=1 to f=n,
	// and spread by at least 4x end to end for n=16.
	if pts[0].writerRMR > pts[len(pts)-1].writerRMR {
		t.Errorf("writer entry RMR not increasing across f sweep: %+v", pts)
	}
	if pts[len(pts)-1].writerRMR < 2*pts[0].writerRMR {
		t.Errorf("writer entry RMR spread too small: %+v", pts)
	}
	// Reader per-passage RMR must shrink (weakly) from f=1 to f=n.
	if pts[0].reader < pts[len(pts)-1].reader {
		t.Errorf("reader RMR not decreasing across f sweep: %+v", pts)
	}
}

// TestAFWriterRMRLinearInGroups pins the Theta(f(n)) writer bound: under
// quiescent readers, the writer's entry cost scales with the group count.
func TestAFWriterRMRLinearInGroups(t *testing.T) {
	for _, n := range []int{4, 16, 64} {
		for _, f := range []F{FOne, FSqrt, FLinear} {
			rep := spec.Run(New(f), spec.Scenario{
				NReaders: n, NWriters: 1,
				ReaderPassages: 0, WriterPassages: 1, // readers quiescent
				Scheduler: sched.LowestFirst{},
			})
			if !rep.OK() {
				t.Fatalf("af-%s n=%d: %s", f.Name, n, rep.Failures())
			}
			g := f.Groups(n)
			got := rep.MaxWriterPassage.EntryRMR
			// Entry: 1 wsig write + 1 C read + 1 wsig write per group,
			// plus RSIG writes and WSEQ read; no mutex contention (m=1,
			// empty tournament).
			lo, hi := g, 4*g+6
			if got < lo || got > hi {
				t.Errorf("af-%s n=%d: writer entry RMR = %d, want in [%d,%d]", f.Name, n, got, lo, hi)
			}
		}
	}
}

// TestAFReaderRMRLogInGroupSize pins the Theta(log(n/f(n))) reader bound
// for solo passages.
func TestAFReaderRMRLogInGroupSize(t *testing.T) {
	for _, n := range []int{4, 16, 64, 256} {
		for _, f := range []F{FOne, FSqrt, FLinear} {
			rep := spec.Run(New(f), spec.Scenario{
				NReaders: n, NWriters: 1,
				ReaderPassages: 1, WriterPassages: 0,
				Scheduler: sched.NewSticky(),
			})
			if !rep.OK() {
				t.Fatalf("af-%s n=%d: %s", f.Name, n, rep.Failures())
			}
			k := f.GroupSize(n)
			logK := math.Log2(float64(k)) + 1
			got := rep.MaxReaderPassage.RMR()
			if limit := int(16*logK) + 10; got > limit {
				t.Errorf("af-%s n=%d (K=%d): reader RMR = %d, want <= %d",
					f.Name, n, k, got, limit)
			}
		}
	}
	// And the f=n endpoint must give O(1) readers: compare n=4 vs n=256.
	costAt := func(n int) int {
		rep := spec.Run(New(FLinear), spec.Scenario{
			NReaders: n, NWriters: 1,
			ReaderPassages: 1, WriterPassages: 0,
			Scheduler: sched.NewSticky(),
		})
		if !rep.OK() {
			t.Fatalf("af-n n=%d: %s", n, rep.Failures())
		}
		return rep.MaxReaderPassage.RMR()
	}
	if a, b := costAt(4), costAt(256); b > a {
		t.Errorf("af-n reader RMR grew with n: %d -> %d (must be constant)", a, b)
	}
}

// TestAFZeroPopulations: degenerate populations must not crash.
func TestAFZeroPopulations(t *testing.T) {
	rep := spec.Run(New(FLog), spec.Scenario{
		NReaders: 0, NWriters: 2,
		ReaderPassages: 0, WriterPassages: 3,
		Scheduler: sched.NewRandom(1),
	})
	if !rep.OK() {
		t.Errorf("writers-only: %s", rep.Failures())
	}
	rep = spec.Run(New(FLog), spec.Scenario{
		NReaders: 4, NWriters: 0,
		ReaderPassages: 3, WriterPassages: 0,
		Scheduler: sched.NewRandom(1),
	})
	if !rep.OK() {
		t.Errorf("readers-only: %s", rep.Failures())
	}
}

// TestAFHeavyContention floods a small lock with passages under several
// seeds, a stress test for the handshake's corner cases.
func TestAFHeavyContention(t *testing.T) {
	for _, seed := range []int64{11, 22, 33, 44} {
		rep := spec.Run(New(FLog), spec.Scenario{
			NReaders: 6, NWriters: 3,
			ReaderPassages: 5, WriterPassages: 4,
			Scheduler: sched.NewRandom(seed),
			CSReads:   1,
		})
		if !rep.OK() {
			t.Errorf("seed %d: %s", seed, rep.Failures())
		}
	}
}

// TestAFProps sanity-checks the declared metadata.
func TestAFProps(t *testing.T) {
	a := New(FLog)
	props := a.Props()
	if !props.UsesCAS || props.UsesFAA {
		t.Error("A_f must use CAS and not FAA")
	}
	if !props.ConcurrentEntering || !props.ReaderStarvationFree {
		t.Error("A_f claims Concurrent Entering and reader starvation freedom")
	}
	if props.PredictedReaderRMR(1024, 1) <= 0 || props.PredictedWriterRMR(1024, 4) <= 0 {
		t.Error("predicted bounds must be positive")
	}
}

// TestAFCASWordAblationCorrect: the ablated variant must still satisfy all
// properties (the counter swap changes cost, not correctness).
func TestAFCASWordAblationCorrect(t *testing.T) {
	if got := NewWithCounter(FLog, CounterCASWord).Name(); got != "af-log+casword" {
		t.Errorf("Name = %q", got)
	}
	for _, seed := range []int64{1, 2, 3} {
		rep := spec.Run(NewWithCounter(FLog, CounterCASWord), spec.Scenario{
			NReaders: 5, NWriters: 2,
			ReaderPassages: 3, WriterPassages: 2,
			Scheduler: sched.NewRandom(seed),
			CSReads:   2,
		})
		if !rep.OK() {
			t.Errorf("seed %d: %s", seed, rep.Failures())
		}
	}
}

// TestAFUnderPCTSchedules exercises A_f under probabilistic concurrency
// testing schedules (priority-based with random demotion points), which
// reach orderings uniform random walks rarely produce.
func TestAFUnderPCTSchedules(t *testing.T) {
	for _, f := range []F{FOne, FLog, FLinear} {
		for seed := int64(0); seed < 8; seed++ {
			rep := spec.Run(New(f), spec.Scenario{
				NReaders: 4, NWriters: 2,
				ReaderPassages: 3, WriterPassages: 2,
				Scheduler: sched.NewPCT(seed, 5, 5000),
				CSReads:   2,
				MaxSteps:  500000,
			})
			if !rep.OK() {
				t.Errorf("af-%s PCT seed=%d:\n%s", f.Name, seed, rep.Failures())
			}
		}
	}
}

// TestAFCellArrayAblationCorrect: the scan-counter variant must also
// satisfy all properties.
func TestAFCellArrayAblationCorrect(t *testing.T) {
	if got := NewWithCounter(FLog, CounterCellArray).Name(); got != "af-log+cellarray" {
		t.Errorf("Name = %q", got)
	}
	for _, seed := range []int64{1, 2, 3} {
		rep := spec.Run(NewWithCounter(FLog, CounterCellArray), spec.Scenario{
			NReaders: 5, NWriters: 2,
			ReaderPassages: 3, WriterPassages: 2,
			Scheduler: sched.NewRandom(seed),
			CSReads:   2,
		})
		if !rep.OK() {
			t.Errorf("seed %d: %s", seed, rep.Failures())
		}
	}
}

// TestAFRandomParameterizations: A_f must be correct for ANY f, not just
// the presets — the family is parameterized on an arbitrary function.
// Random group-count tables stand in for arbitrary f.
func TestAFRandomParameterizations(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		groups := 1 + rng.Intn(9)
		f := F{
			Name: "rand" + strconv.Itoa(trial),
			Fn:   func(int) int { return groups },
		}
		n := 1 + rng.Intn(8)
		m := 1 + rng.Intn(3)
		rep := spec.Run(New(f), spec.Scenario{
			NReaders: n, NWriters: m,
			ReaderPassages: 2, WriterPassages: 2,
			Scheduler: sched.NewRandom(rng.Int63()),
			CSReads:   rng.Intn(3),
		})
		if !rep.OK() {
			t.Errorf("trial %d (groups=%d n=%d m=%d): %s", trial, groups, n, m, rep.Failures())
		}
	}
}
