// Package core implements the paper's primary contribution: the family A_f
// of reader-writer lock algorithms (Algorithm 1, Section 4), parameterized
// by f — the writer's RMR budget. For every f, writers incur Theta(f(n))
// RMRs per passage (plus the O(log m) cost of the writers' mutex WL) and
// readers incur Theta(log(n/f(n))) RMRs per passage, matching the
// lower-bound tradeoff of Theorem 5 at every point.
//
// Readers are statically partitioned into f(n) groups of K = ceil(n/f(n))
// processes. Each group i consolidates its state in two K-process f-array
// counters: C[i], the number of group-i readers currently in a passage, and
// W[i], the number of group-i readers waiting for the current writer.
// Writers serialize on WL (a tournament mutex) and handshake with readers
// through the signal words RSIG (writer -> readers) and WSIG[i] (group-i
// readers -> writer), each holding a packed <sequence number, opcode> pair.
package core

import (
	"fmt"
	"math"
)

// F is the tradeoff parameter of the A_f family: Fn(n) is the number of
// reader groups, which equals the writer's per-passage RMR budget (up to
// constants). The paper's tradeoff says the reader's cost is then
// Theta(log(n / Fn(n))).
type F struct {
	// Name labels the parameterization in algorithm names and tables
	// (e.g. "af-log").
	Name string
	// Fn maps the number of readers to the number of groups. Values are
	// clamped to [1, n] at Init time.
	Fn func(n int) int
}

// Groups returns Fn(n) clamped to the valid range [1, max(n,1)].
func (f F) Groups(n int) int {
	g := f.Fn(n)
	if g < 1 {
		g = 1
	}
	if n >= 1 && g > n {
		g = n
	}
	return g
}

// GroupSize returns K = ceil(n / groups), the per-group population, always
// at least 1.
func (f F) GroupSize(n int) int {
	g := f.Groups(n)
	if n <= 0 {
		return 1
	}
	return (n + g - 1) / g
}

// Predefined tradeoff points. FOne minimizes writer cost (readers pay
// log n); FLinear minimizes reader cost (the writer pays Theta(n),
// recovering the flag-per-reader shape); the others interpolate.
var (
	// FOne is f(n) = 1: a single reader group.
	FOne = F{Name: "1", Fn: func(int) int { return 1 }}

	// FLog is f(n) = ceil(log2 n): the balanced point where readers and
	// writers both pay Theta(log n).
	FLog = F{Name: "log", Fn: func(n int) int {
		if n <= 2 {
			return 1
		}
		return int(math.Ceil(math.Log2(float64(n))))
	}}

	// FSqrt is f(n) = ceil(sqrt n).
	FSqrt = F{Name: "sqrt", Fn: func(n int) int {
		if n <= 1 {
			return 1
		}
		return int(math.Ceil(math.Sqrt(float64(n))))
	}}

	// FHalf is f(n) = n/2: groups of two readers.
	FHalf = F{Name: "half", Fn: func(n int) int { return (n + 1) / 2 }}

	// FLinear is f(n) = n: singleton groups, constant reader RMRs.
	FLinear = F{Name: "n", Fn: func(n int) int { return n }}
)

// StandardFs lists the predefined tradeoff points in increasing writer-cost
// order; experiments sweep over it.
var StandardFs = []F{FOne, FLog, FSqrt, FHalf, FLinear}

// FByName returns the predefined parameterization with the given name.
func FByName(name string) (F, error) {
	for _, f := range StandardFs {
		if f.Name == name {
			return f, nil
		}
	}
	return F{}, fmt.Errorf("core: unknown f %q (want one of 1, log, sqrt, half, n)", name)
}
