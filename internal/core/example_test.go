package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/memmodel"
	"repro/internal/sim"
)

// Example runs one reader and one writer passage of A_f inside the CC
// simulator and prints the RMR bill, the quantity the paper's theorems
// bound.
func Example() {
	alg := core.New(core.FLog)
	r := sim.New(sim.Config{Protocol: sim.WriteThrough})
	if err := alg.Init(r, 1, 1); err != nil {
		panic(err)
	}
	r.AddProc(func(p sim.Proc) {
		p.Section(memmodel.SecEntry)
		alg.ReaderEnter(p, 0)
		p.Section(memmodel.SecCS)
		p.Section(memmodel.SecExit)
		alg.ReaderExit(p, 0)
		p.Section(memmodel.SecRemainder)
	})
	r.AddProc(func(p sim.Proc) {
		p.Section(memmodel.SecEntry)
		alg.WriterEnter(p, 0)
		p.Section(memmodel.SecCS)
		p.Section(memmodel.SecExit)
		alg.WriterExit(p, 0)
		p.Section(memmodel.SecRemainder)
	})
	if err := r.Start(); err != nil {
		panic(err)
	}
	defer r.Close()
	if err := r.Run(); err != nil {
		panic(err)
	}
	reader := r.Account(0).MaxPassage()
	writer := r.Account(1).MaxPassage()
	fmt.Printf("reader passage: %d RMRs\n", reader.EntryRMR+reader.CSRMR+reader.ExitRMR)
	fmt.Printf("writer passage: %d RMRs\n", writer.EntryRMR+writer.CSRMR+writer.ExitRMR)
	// The default round-robin schedule interleaves the two passages, so
	// both pay a little contention on top of their solo costs.
	// Output:
	// reader passage: 6 RMRs
	// writer passage: 10 RMRs
}

// ExampleF_Groups shows how a parameterization maps reader counts to
// group counts (the writer's RMR budget).
func ExampleF_Groups() {
	for _, f := range []core.F{core.FOne, core.FLog, core.FSqrt, core.FLinear} {
		fmt.Printf("%-5s n=64 -> %d groups of %d\n", f.Name, f.Groups(64), f.GroupSize(64))
	}
	// Output:
	// 1     n=64 -> 1 groups of 64
	// log   n=64 -> 6 groups of 11
	// sqrt  n=64 -> 8 groups of 8
	// n     n=64 -> 64 groups of 1
}
