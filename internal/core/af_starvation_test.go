package core

// Staged fairness tests.
//
// TestWriterStarvationUnderReaderChurn demonstrates the limitation the
// paper acknowledges in Section 6: "Writers, however, may starve if there
// are always readers performing passages." The schedule keeps at least one
// reader inside a passage at every reader exit, so no exiting reader ever
// observes C[i] = 0 and the writer waits at line 14 forever.
//
// TestReaderNotStarvedByBackToBackWriters pins Lemma 16's no-reader-
// starvation guarantee in the adversarial spot: a reader parked on writer
// A's <seq, WAIT> whose wake-up re-check is delayed until after writer B
// has already begun its entry. Because the parked reader is counted in
// C[i], writer B blocks in its PREENTRY scan, the reader's re-check sees a
// changed RSIG pair and the reader overtakes B into the CS; B completes
// only after the reader's exit signals PROCEED.

import (
	"testing"

	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/sim"
)

// stagedAF wires an A_f instance under a Controlled scheduler. Reader
// programs carry two barriers per passage: one before the entry section
// (start barrier) and one inside the CS, giving the driver exact control
// over passage phases. Writers carry a start barrier and an in-CS barrier.
type stagedAF struct {
	t    *testing.T
	r    *sim.Runner
	ctrl *sched.Controlled
	alg  *AF
}

func newStagedAF(t *testing.T, f F, nReaders, readerPassages, nWriters int) *stagedAF {
	t.Helper()
	ctrl := &sched.Controlled{}
	r := sim.New(sim.Config{Scheduler: ctrl})
	alg := New(f)
	if err := alg.Init(r, nReaders, nWriters); err != nil {
		t.Fatalf("Init: %v", err)
	}
	for rid := 0; rid < nReaders; rid++ {
		rid := rid
		r.AddProc(func(p sim.Proc) {
			for i := 0; i < readerPassages; i++ {
				p.Barrier() // start of passage
				p.Section(memmodel.SecEntry)
				alg.ReaderEnter(p, rid)
				p.Section(memmodel.SecCS)
				p.Barrier() // inside the CS
				p.Section(memmodel.SecExit)
				alg.ReaderExit(p, rid)
				p.Section(memmodel.SecRemainder)
			}
		})
	}
	for wid := 0; wid < nWriters; wid++ {
		wid := wid
		r.AddProc(func(p sim.Proc) {
			p.Barrier() // start
			p.Section(memmodel.SecEntry)
			alg.WriterEnter(p, wid)
			p.Section(memmodel.SecCS)
			p.Barrier() // inside the CS
			p.Section(memmodel.SecExit)
			alg.WriterExit(p, wid)
			p.Section(memmodel.SecRemainder)
		})
	}
	if err := r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(r.Close)
	return &stagedAF{t: t, r: r, ctrl: ctrl, alg: alg}
}

func (s *stagedAF) at(id int, where func() []int) bool {
	for _, b := range where() {
		if b == id {
			return true
		}
	}
	return false
}

func (s *stagedAF) atBarrier(id int) bool  { return s.at(id, s.r.AtBarrier) }
func (s *stagedAF) isAwaiting(id int) bool { return s.at(id, s.r.Awaiting) }

func (s *stagedAF) step(id int) {
	s.t.Helper()
	s.ctrl.Target = id
	progressed, err := s.r.Step()
	if err != nil || !progressed {
		s.t.Fatalf("step p%d: progressed=%v err=%v", id, progressed, err)
	}
}

func (s *stagedAF) release(id int) {
	s.t.Helper()
	if err := s.r.ReleaseBarrier(id); err != nil {
		s.t.Fatalf("release p%d: %v", id, err)
	}
}

// driveToBarrier runs id solo until it parks at its next barrier.
func (s *stagedAF) driveToBarrier(id int, what string) {
	s.t.Helper()
	for i := 0; !s.atBarrier(id); i++ {
		if i > 100_000 {
			s.t.Fatalf("p%d never reached barrier (%s)", id, what)
		}
		if _, poised := s.r.PendingOf(id); !poised {
			s.t.Fatalf("p%d blocked before barrier (%s)", id, what)
		}
		s.step(id)
	}
}

// driveWhilePoised runs id until it blocks or finishes.
func (s *stagedAF) driveWhilePoised(id int) {
	s.t.Helper()
	for i := 0; i < 100_000; i++ {
		if _, poised := s.r.PendingOf(id); !poised {
			return
		}
		s.step(id)
	}
	s.t.Fatalf("p%d still poised after budget", id)
}

// enterCS releases id's start barrier and drives it into the CS (to its
// in-CS barrier).
func (s *stagedAF) enterCS(id int) {
	s.t.Helper()
	s.release(id)
	s.driveToBarrier(id, "in-CS")
}

// finishPassage releases id's in-CS barrier and drives it through the exit
// to its next start barrier (or to completion).
func (s *stagedAF) finishPassage(id int) {
	s.t.Helper()
	s.release(id)
	for i := 0; i < 100_000; i++ {
		if s.atBarrier(id) {
			return // next passage's start barrier
		}
		if _, poised := s.r.PendingOf(id); !poised {
			if s.isAwaiting(id) {
				s.t.Fatalf("p%d awaiting during exit (Bounded Exit violated)", id)
			}
			return // done
		}
		s.step(id)
	}
	s.t.Fatalf("p%d exit did not finish", id)
}

func TestWriterStarvationUnderReaderChurn(t *testing.T) {
	const rounds = 10
	// Two readers in one group (FOne); one writer.
	s := newStagedAF(t, FOne, 2, rounds+2, 1)
	const r0, r1, w = 0, 1, 2

	// R0 enters the CS and holds it.
	s.enterCS(r0)

	// The writer begins its entry; with C[0] = 1 it blocks at line 14
	// waiting for a PROCEED that only an exiting reader seeing C[0] = 0
	// can send.
	s.release(w)
	for i := 0; !s.isAwaiting(w); i++ {
		if i > 100_000 {
			t.Fatal("writer did not reach its await")
		}
		s.step(w)
	}

	// Churn: the idle reader enters the CS (overlap), then the active one
	// exits and immediately re-enters. C[0] never reaches 0 at any exit
	// check, so the writer stays blocked while readers complete passage
	// after passage.
	inCS, next := r0, r1
	for round := 0; round < rounds; round++ {
		s.enterCS(next)       // both readers now in the CS
		s.finishPassage(inCS) // one leaves: C[0] drops 2 -> 1, not 0
		inCS, next = next, inCS
	}

	if !s.isAwaiting(w) {
		t.Fatal("writer progressed despite perpetual reader churn")
	}
	completed := len(s.r.Account(r0).Passages) + len(s.r.Account(r1).Passages)
	if completed < rounds {
		t.Fatalf("readers completed only %d passages during the churn", completed)
	}

	// Quiesce: the last reader exits with no replacement; its exit sees
	// C[0] = 0, CASes PROCEED, and the writer finally advances into the
	// CS (deadlock freedom).
	s.finishPassage(inCS)
	s.driveToBarrier(w, "writer CS")
	if s.r.Account(w).Section() != memmodel.SecCS {
		t.Fatal("writer barrier reached outside the CS")
	}
}

func TestReaderNotStarvedByBackToBackWriters(t *testing.T) {
	// One reader, two writers, back to back.
	s := newStagedAF(t, FOne, 1, 1, 2)
	const rd, w0, w1 = 0, 1, 2

	// Writer 0 enters the CS (no readers yet).
	s.enterCS(w0)

	// The reader arrives, reads <0, WAIT>, registers in W[0], helps, and
	// parks on RSIG.
	s.release(rd)
	for i := 0; !s.isAwaiting(rd); i++ {
		if i > 100_000 {
			t.Fatal("reader did not park")
		}
		s.step(rd)
	}

	// Writer 1 queues on WL behind w0.
	s.release(w1)
	for i := 0; !s.isAwaiting(w1); i++ {
		if i > 100_000 {
			t.Fatal("w1 did not queue on WL")
		}
		s.step(w1)
	}

	// w0 exits (WSEQ -> 1, RSIG -> <1, NOP>, WL released). The reader is
	// woken but we deliberately delay scheduling it.
	s.finishPassage(w0)

	// w1 takes WL and runs as far as it can. Crucially, the parked reader
	// is still counted in C[0], so w1 blocks in its PREENTRY scan
	// (line 14) and never publishes a new WAIT over the reader's head.
	s.driveWhilePoised(w1)
	if !s.isAwaiting(w1) {
		t.Fatal("w1 should block in PREENTRY while the reader is mid-passage")
	}

	// The delayed reader finally re-checks RSIG: the pair changed (new
	// sequence number), so it proceeds into the CS ahead of w1 — no
	// reader starvation.
	s.driveToBarrier(rd, "reader CS")
	if s.r.Account(rd).Section() != memmodel.SecCS {
		t.Fatal("reader not in CS")
	}
	if !s.isAwaiting(w1) {
		t.Fatal("w1 entered alongside the reader")
	}

	// The reader's exit observes C[0] = 0 under <1, PREENTRY> and CASes
	// PROCEED, releasing w1 to complete its passage (helping chain).
	s.finishPassage(rd)
	s.driveToBarrier(w1, "w1 CS")
	if s.r.Account(w1).Section() != memmodel.SecCS {
		t.Fatal("w1 never entered the CS after the reader left")
	}
	s.finishPassage(w1)
	if len(s.r.Account(w1).Passages) != 1 {
		t.Fatal("w1 passage not completed")
	}
}
