// Package linearize checks counter histories for linearizability
// (Wing-Gong style search with memoization). A_f's correctness proofs
// treat C[i] and W[i] as atomic counters; the paper's f-array construction
// is designed to be linearizable, and this checker validates that claim on
// concurrent histories collected from the simulator — and, conversely,
// exhibits the *non*-linearizable behaviour of the cell-array ablation's
// scan reads.
//
// A history is a set of operations with real-time windows [Start, End]:
// operation A happens before B iff A.End < B.Start. A history is
// linearizable iff there is a total order extending happens-before in
// which every Read returns the sum of the Adds ordered before it.
package linearize

import (
	"fmt"
	"math/bits"
	"sort"
)

// Op is one completed counter operation with its observation window.
// Windows may be over-approximations (earlier Start, later End): widening
// windows only admits more linearizations, so a verdict of "not
// linearizable" remains sound.
type Op struct {
	// Proc identifies the calling process (diagnostics only).
	Proc int
	// Start and End delimit the operation's real-time window; End >= Start.
	Start, End int
	// IsRead distinguishes reads from adds.
	IsRead bool
	// Delta is the amount added (adds only).
	Delta int32
	// Result is the value returned (reads only).
	Result int32
}

func (o Op) String() string {
	if o.IsRead {
		return fmt.Sprintf("p%d Read()=%d @[%d,%d]", o.Proc, o.Result, o.Start, o.End)
	}
	return fmt.Sprintf("p%d Add(%d) @[%d,%d]", o.Proc, o.Delta, o.Start, o.End)
}

// MaxOps bounds the history size the checker accepts (the memoized search
// is exponential in the worst case; 24 ops keeps it comfortably fast).
const MaxOps = 24

// CheckCounter reports whether the history is linearizable with respect to
// a sequential counter starting at zero. It returns a witness order (op
// indices into the input) when linearizable.
func CheckCounter(ops []Op) (bool, []int, error) {
	if len(ops) > MaxOps {
		return false, nil, fmt.Errorf("linearize: history of %d ops exceeds limit %d", len(ops), MaxOps)
	}
	for i, o := range ops {
		if o.End < o.Start {
			return false, nil, fmt.Errorf("linearize: op %d has End < Start", i)
		}
	}
	if len(ops) == 0 {
		return true, nil, nil
	}

	// Sort by Start for a stable exploration order; keep original indices.
	idx := make([]int, len(ops))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return ops[idx[a]].Start < ops[idx[b]].Start })

	full := uint32(1)<<len(ops) - 1
	// visited memoizes "remaining set is not linearizable from here": the
	// running sum is a function of the applied add set, so the bitmask
	// alone identifies the search state.
	visited := make(map[uint32]bool)

	var order []int
	var dfs func(remaining uint32, sum int32) bool
	dfs = func(remaining uint32, sum int32) bool {
		if remaining == 0 {
			return true
		}
		if visited[remaining] {
			return false
		}
		// An op is a candidate next linearization point iff no other
		// remaining op finished before it started.
		minEnd := int(^uint(0) >> 1)
		for r := remaining; r != 0; r &= r - 1 {
			i := idx[bits.TrailingZeros32(r)]
			if ops[i].End < minEnd {
				minEnd = ops[i].End
			}
		}
		for r := remaining; r != 0; r &= r - 1 {
			bit := uint32(1) << bits.TrailingZeros32(r)
			i := idx[bits.TrailingZeros32(r)]
			if ops[i].Start > minEnd {
				continue // some remaining op happens strictly before it
			}
			if ops[i].IsRead {
				if ops[i].Result != sum {
					continue
				}
				order = append(order, i)
				if dfs(remaining&^bit, sum) {
					return true
				}
				order = order[:len(order)-1]
			} else {
				order = append(order, i)
				if dfs(remaining&^bit, sum+ops[i].Delta) {
					return true
				}
				order = order[:len(order)-1]
			}
		}
		visited[remaining] = true
		return false
	}

	if dfs(full, 0) {
		witness := append([]int(nil), order...)
		return true, witness, nil
	}
	return false, nil, nil
}
