package linearize

import (
	"testing"
)

func TestEmptyAndSequential(t *testing.T) {
	ok, _, err := CheckCounter(nil)
	if err != nil || !ok {
		t.Fatalf("empty history: ok=%v err=%v", ok, err)
	}
	ops := []Op{
		{Proc: 0, Start: 0, End: 1, Delta: 5},
		{Proc: 0, Start: 2, End: 3, IsRead: true, Result: 5},
		{Proc: 0, Start: 4, End: 5, Delta: -2},
		{Proc: 0, Start: 6, End: 7, IsRead: true, Result: 3},
	}
	ok, witness, err := CheckCounter(ops)
	if err != nil || !ok {
		t.Fatalf("sequential history rejected: %v", err)
	}
	if len(witness) != len(ops) {
		t.Fatalf("witness length %d", len(witness))
	}
}

func TestOverlappingReadMaySeeEither(t *testing.T) {
	// A read overlapping an add may return the value before or after it.
	for _, result := range []int32{0, 7} {
		ops := []Op{
			{Proc: 0, Start: 0, End: 10, Delta: 7},
			{Proc: 1, Start: 0, End: 10, IsRead: true, Result: result},
		}
		if ok, _, err := CheckCounter(ops); err != nil || !ok {
			t.Errorf("result %d rejected: err=%v", result, err)
		}
	}
	// But not an unrelated value.
	ops := []Op{
		{Proc: 0, Start: 0, End: 10, Delta: 7},
		{Proc: 1, Start: 0, End: 10, IsRead: true, Result: 3},
	}
	if ok, _, _ := CheckCounter(ops); ok {
		t.Error("impossible read value accepted")
	}
}

func TestStaleReadRejected(t *testing.T) {
	// With only positive adds, a later read cannot observe less than an
	// earlier read (both sequential).
	ops := []Op{
		{Proc: 0, Start: 0, End: 1, Delta: 1},
		{Proc: 1, Start: 2, End: 3, IsRead: true, Result: 1},
		{Proc: 1, Start: 4, End: 5, IsRead: true, Result: 0},
	}
	if ok, _, _ := CheckCounter(ops); ok {
		t.Error("decreasing sequential reads accepted")
	}
}

func TestMissedMiddleAddRejected(t *testing.T) {
	// Add(1) completes strictly before Add(2) starts; a concurrent read
	// returning 2 (the second add without the first) is the classic
	// non-linearizable scan anomaly.
	ops := []Op{
		{Proc: 0, Start: 2, End: 3, Delta: 1},
		{Proc: 1, Start: 5, End: 6, Delta: 2},
		{Proc: 2, Start: 0, End: 10, IsRead: true, Result: 2},
	}
	if ok, _, _ := CheckCounter(ops); ok {
		t.Error("scan anomaly accepted (read saw the second add but not the first)")
	}
	// Whereas 0, 1 and 3 are all legitimate.
	for _, result := range []int32{0, 1, 3} {
		ops[2].Result = result
		if ok, _, _ := CheckCounter(ops); !ok {
			t.Errorf("legitimate result %d rejected", result)
		}
	}
}

func TestRealTimeOrderRespected(t *testing.T) {
	// Two sequential adds then a sequential read must see both.
	ops := []Op{
		{Proc: 0, Start: 0, End: 1, Delta: 1},
		{Proc: 0, Start: 2, End: 3, Delta: 1},
		{Proc: 1, Start: 4, End: 5, IsRead: true, Result: 1},
	}
	if ok, _, _ := CheckCounter(ops); ok {
		t.Error("read missing a completed add accepted")
	}
}

func TestWitnessIsValid(t *testing.T) {
	ops := []Op{
		{Proc: 0, Start: 0, End: 4, Delta: 2},
		{Proc: 1, Start: 1, End: 5, IsRead: true, Result: 2},
		{Proc: 2, Start: 2, End: 6, Delta: 3},
		{Proc: 1, Start: 7, End: 8, IsRead: true, Result: 5},
	}
	ok, witness, err := CheckCounter(ops)
	if err != nil || !ok {
		t.Fatalf("history rejected: %v", err)
	}
	// Replay the witness sequentially.
	var sum int32
	seen := map[int]bool{}
	for _, i := range witness {
		if seen[i] {
			t.Fatal("witness repeats an op")
		}
		seen[i] = true
		if ops[i].IsRead {
			if ops[i].Result != sum {
				t.Fatalf("witness invalid: read %d at sum %d", ops[i].Result, sum)
			}
		} else {
			sum += ops[i].Delta
		}
	}
	if len(seen) != len(ops) {
		t.Fatal("witness incomplete")
	}
}

func TestErrors(t *testing.T) {
	if _, _, err := CheckCounter(make([]Op, MaxOps+1)); err == nil {
		t.Error("oversized history accepted")
	}
	if _, _, err := CheckCounter([]Op{{Start: 5, End: 2}}); err == nil {
		t.Error("inverted window accepted")
	}
}
