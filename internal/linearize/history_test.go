package linearize

// History-collection harness: run counter implementations inside the CC
// simulator, record each operation's observation window via an atomic step
// clock maintained by the trace observer, and feed the history to the
// checker. The windows are over-approximations (clock read just before /
// just after the operation), which only widens the set of admissible
// linearizations — so "not linearizable" verdicts remain sound.

import (
	"sync/atomic"
	"testing"

	"repro/internal/counter"
	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// collect runs adders and readers against a fresh counter and returns the
// merged operation history.
func collect(t *testing.T, build func(a memmodel.Allocator) counter.Counter,
	s sched.Scheduler, adders, addsEach, readers, readsEach int, deltas []int32) []Op {
	t.Helper()
	var clock atomic.Int64
	r := sim.New(sim.Config{
		Scheduler: s,
		Observer: func(e trace.Event) {
			if !e.SectionChange {
				clock.Add(1)
			}
		},
	})
	c := build(r)

	perProc := make([][]Op, adders+readers)
	for a := 0; a < adders; a++ {
		a := a
		r.AddProc(func(p sim.Proc) {
			for i := 0; i < addsEach; i++ {
				delta := deltas[(a*addsEach+i)%len(deltas)]
				start := clock.Load()
				c.Add(p, a, delta)
				perProc[a] = append(perProc[a], Op{
					Proc: a, Start: int(start), End: int(clock.Load()), Delta: delta,
				})
			}
		})
	}
	for rd := 0; rd < readers; rd++ {
		rd := rd
		r.AddProc(func(p sim.Proc) {
			for i := 0; i < readsEach; i++ {
				start := clock.Load()
				got := c.Read(p)
				perProc[adders+rd] = append(perProc[adders+rd], Op{
					Proc: adders + rd, Start: int(start), End: int(clock.Load()),
					IsRead: true, Result: got,
				})
			}
		})
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	var ops []Op
	for _, procOps := range perProc {
		ops = append(ops, procOps...)
	}
	return ops
}

// TestFArrayLinearizable: the paper's counter yields linearizable
// histories across many seeds and shapes.
func TestFArrayLinearizable(t *testing.T) {
	deltas := []int32{1, 2, -1, 3}
	for _, seed := range []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		ops := collect(t,
			func(a memmodel.Allocator) counter.Counter { return counter.NewFArray(a, "C", 3) },
			sched.NewRandom(seed), 3, 3, 2, 4, deltas)
		ok, _, err := CheckCounter(ops)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("seed %d: f-array history not linearizable:", seed)
			for _, o := range ops {
				t.Logf("  %v", o)
			}
		}
	}
}

// TestFArrayLinearizableUnderPCT: adversarial-ish PCT schedules too.
func TestFArrayLinearizableUnderPCT(t *testing.T) {
	deltas := []int32{5, -3, 2}
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		ops := collect(t,
			func(a memmodel.Allocator) counter.Counter { return counter.NewFArray(a, "C", 3) },
			sched.NewPCT(seed, 6, 5000), 3, 2, 2, 3, deltas)
		if ok, _, err := CheckCounter(ops); err != nil || !ok {
			t.Errorf("seed %d: not linearizable (err=%v)", seed, err)
		}
	}
}

// TestCASWordLinearizable: the single-word counter is trivially atomic.
func TestCASWordLinearizable(t *testing.T) {
	deltas := []int32{1, -2, 4}
	for _, seed := range []int64{11, 12, 13} {
		ops := collect(t,
			func(a memmodel.Allocator) counter.Counter { return counter.NewCASWord(a, "C") },
			sched.NewRandom(seed), 3, 3, 2, 3, deltas)
		if ok, _, err := CheckCounter(ops); err != nil || !ok {
			t.Errorf("seed %d: not linearizable (err=%v)", seed, err)
		}
	}
}

// TestCellArrayScanAnomaly constructs the classic non-linearizable scan:
// the reader's scan passes cell 0 before Add(1) lands there, then reads
// cell 1 after a *later* Add(2) lands — observing the second add without
// the first, which no linearization of a counter admits. This is the
// precise sense in which the cell-array ablation is weaker than the
// paper's f-array (whose single-root reads are atomic).
func TestCellArrayScanAnomaly(t *testing.T) {
	ctrl := &sched.Controlled{}
	var clock atomic.Int64
	r := sim.New(sim.Config{
		Scheduler: ctrl,
		Observer: func(e trace.Event) {
			if !e.SectionChange {
				clock.Add(1)
			}
		},
	})
	c := counter.NewCellArray(r, "C", 2)

	var ops [3]Op
	gate := r.Alloc("gate", 0) // staging only; not part of the counter
	// p0: the scanning reader.
	r.AddProc(func(p sim.Proc) {
		start := clock.Load()
		got := c.Read(p)
		ops[0] = Op{Proc: 0, Start: int(start), End: int(clock.Load()), IsRead: true, Result: got}
	})
	// p1: Add(1) to slot 0.
	r.AddProc(func(p sim.Proc) {
		start := clock.Load()
		c.Add(p, 0, 1)
		ops[1] = Op{Proc: 1, Start: int(start), End: int(clock.Load()), Delta: 1}
		p.Write(gate, 1)
	})
	// p2: Add(2) to slot 1, strictly after p1 (gate).
	r.AddProc(func(p sim.Proc) {
		p.Await(gate, func(x uint64) bool { return x == 1 })
		start := clock.Load()
		c.Add(p, 1, 2)
		ops[2] = Op{Proc: 2, Start: int(start), End: int(clock.Load()), Delta: 2}
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	step := func(id int) {
		t.Helper()
		ctrl.Target = id
		if ok, err := r.Step(); err != nil || !ok {
			t.Fatalf("step p%d: %v", id, err)
		}
	}
	// Reader scans cell 0 (sees 0).
	step(0)
	// p1 completes Add(1) to cell 0 and opens the gate.
	for i := 0; i < 100; i++ {
		if _, poised := r.PendingOf(1); !poised {
			break
		}
		step(1)
	}
	// p2 wakes, completes Add(2) to cell 1.
	for i := 0; i < 100; i++ {
		if _, poised := r.PendingOf(2); !poised {
			break
		}
		step(2)
	}
	// Reader scans cell 1 (sees 2) and returns 0 + 2 = 2.
	for i := 0; i < 100; i++ {
		if _, poised := r.PendingOf(0); !poised {
			break
		}
		step(0)
	}
	if !r.Done() {
		t.Fatal("staging incomplete")
	}

	if ops[0].Result != 2 {
		t.Fatalf("staging failed: reader returned %d, want 2", ops[0].Result)
	}
	ok, _, err := CheckCounter(ops[:])
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("scan anomaly accepted as linearizable")
	}
}
