package experiments

import (
	"math"

	"repro/internal/parwork"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/tablefmt"
)

// E6Row is one algorithm's property verdicts across the E6 scenario set.
type E6Row struct {
	Alg string
	// MutualExclusion: no CS overlap violations across all runs.
	MutualExclusion bool
	// Progress: every run completed all passages (deadlock freedom and
	// non-starvation for finite workloads).
	Progress bool
	// ReaderOverlap: readers shared the CS in the writers-idle scenario.
	ReaderOverlap bool
	// ExpectOverlap is the algorithm's claim (mutex-rw expects false).
	ExpectOverlap bool
	// BoundedExit: worst exit-section step count stayed within the
	// generic O(log population) bound.
	BoundedExit bool
	// MaxExitSteps is the observed worst exit-section step count.
	MaxExitSteps int
}

// E6Properties checks the Section-5 properties for every algorithm —
// including the ablation variants and the writer-priority composition —
// across random schedules.
func E6Properties(seeds []int64) ([]E6Row, *tablefmt.Table, error) {
	const n, m = 6, 2
	exitBound := int(24*math.Log2(n+m)) + 32
	facs := ExtendedFactories()
	rows := parwork.Do(0, len(facs), func(fi int) E6Row {
		fac := facs[fi]
		row := E6Row{
			Alg:             fac.Name,
			MutualExclusion: true,
			Progress:        true,
			BoundedExit:     true,
			// Every lock here shares the CS among readers except the
			// degenerate mutex baseline. (Concurrent Entering proper —
			// bounded entry steps — is a stronger claim carried in
			// Props; overlap is the observable this column checks.)
			ExpectOverlap: fac.Name != "mutex-rw",
		}
		for _, seed := range seeds {
			rep := spec.Run(fac.New(), spec.Scenario{
				NReaders: n, NWriters: m,
				ReaderPassages: 3, WriterPassages: 3,
				Scheduler: sched.NewRandom(seed),
				CSReads:   2,
			})
			if rep.Err != nil {
				row.Progress = false
			}
			for _, v := range rep.Violations {
				_ = v
				row.MutualExclusion = false
			}
			exitSteps := max(rep.MaxReaderPassage.ExitSteps, rep.MaxWriterPassage.ExitSteps)
			if exitSteps > row.MaxExitSteps {
				row.MaxExitSteps = exitSteps
			}
		}
		if row.MaxExitSteps > exitBound {
			row.BoundedExit = false
		}
		// Writers-idle scenario for reader overlap. The CS must outlast
		// the longest entry prologue (the Courtois locks take ~25 steps
		// of lock traffic to get in) for lockstep schedules to overlap.
		rep := spec.Run(fac.New(), spec.Scenario{
			NReaders: n, NWriters: 1,
			ReaderPassages: 3, WriterPassages: 0,
			Scheduler: sched.NewRoundRobin(),
			CSReads:   30,
		})
		if !rep.OK() {
			row.Progress = false
		}
		row.ReaderOverlap = rep.MaxConcurrentReaders >= 2
		return row
	})
	return rows, e6Table(rows), nil
}

func e6Table(rows []E6Row) *tablefmt.Table {
	t := tablefmt.New("algorithm", "mutual exclusion", "progress",
		"reader overlap", "overlap expected", "bounded exit", "max exit steps")
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "NO"
	}
	for _, r := range rows {
		t.AddRow(r.Alg, yn(r.MutualExclusion), yn(r.Progress),
			yn(r.ReaderOverlap), yn(r.ExpectOverlap), yn(r.BoundedExit),
			tablefmt.Itoa(r.MaxExitSteps))
	}
	return t
}
