package experiments

import (
	"math"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tablefmt"
)

// E12Row summarizes least-squares shape fits over the E1 grid: the
// Theta-claims of Theorem 18 become measurable slopes. For each
// parameterization we fit
//
//	reader passage RMR ~ a + b * log2(K)     (predicted b > 0, constant)
//	writer entry  RMR ~ a + b * f(n)         (predicted b ~ 3: the three
//	                                          per-group RMRs of the scans)
//
// and report the fitted slopes plus the residual relative error, turning
// "looks logarithmic" into a number.
type E12Row struct {
	FName string
	// ReaderSlope/ReaderIntercept fit reader RMR against log2(K).
	ReaderSlope, ReaderIntercept float64
	// WriterSlope/WriterIntercept fit writer entry RMR against f(n).
	WriterSlope, WriterIntercept float64
	// MaxRelErr is the largest relative deviation of a measured point
	// from its fitted value, across both fits.
	MaxRelErr float64
}

// E12ShapeFits runs the E1 grid and fits the asymptotic shapes.
func E12ShapeFits(ns []int, protocol sim.Protocol) ([]E12Row, *tablefmt.Table, error) {
	rows, _, err := E1Tradeoff(ns, protocol)
	if err != nil {
		return nil, nil, err
	}
	byF := map[string][]E1Row{}
	order := []string{}
	for _, r := range rows {
		if _, seen := byF[r.FName]; !seen {
			order = append(order, r.FName)
		}
		byF[r.FName] = append(byF[r.FName], r)
	}

	var out []E12Row
	for _, fname := range order {
		grid := byF[fname]
		var logK, readerRMR, fn, writerRMR []float64
		for _, g := range grid {
			logK = append(logK, math.Log2(float64(g.K))+1)
			readerRMR = append(readerRMR, float64(g.ReaderPassRMR))
			fn = append(fn, float64(g.Groups))
			writerRMR = append(writerRMR, float64(g.WriterEntryRMR))
		}
		ra, rb := stats.LinFit(logK, readerRMR)
		wa, wb := stats.LinFit(fn, writerRMR)

		maxRel := 0.0
		rel := func(measured, fitted float64) {
			if measured == 0 {
				return
			}
			if e := math.Abs(measured-fitted) / measured; e > maxRel {
				maxRel = e
			}
		}
		for i := range grid {
			rel(readerRMR[i], ra+rb*logK[i])
			rel(writerRMR[i], wa+wb*fn[i])
		}
		out = append(out, E12Row{
			FName:       fname,
			ReaderSlope: rb, ReaderIntercept: ra,
			WriterSlope: wb, WriterIntercept: wa,
			MaxRelErr: maxRel,
		})
	}
	return out, e12Table(out), nil
}

func e12Table(rows []E12Row) *tablefmt.Table {
	t := tablefmt.New("f", "reader RMR ~ a + b*log2K: b", "a",
		"writer RMR ~ a + b*f(n): b", "a ", "max rel err")
	for _, r := range rows {
		t.AddRow("af-"+r.FName,
			tablefmt.F2(r.ReaderSlope), tablefmt.F2(r.ReaderIntercept),
			tablefmt.F2(r.WriterSlope), tablefmt.F2(r.WriterIntercept),
			tablefmt.F2(r.MaxRelErr))
	}
	return t
}
