package experiments

import (
	"fmt"

	"repro/internal/lowerbound"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/tablefmt"
)

// E11Row quantifies the adversary's power: for the same single-passage
// workload (n readers, one writer), the worst reader exit-section RMR
// count under the Theorem-5 adversarial schedule versus the worst observed
// across a sweep of uniform random schedules. The lower-bound proof is a
// statement about worst-case schedules; this experiment shows the gap the
// construction buys over naive sampling of the schedule space.
type E11Row struct {
	Alg string
	N   int
	// AdversaryExitRMR is the worst reader exit RMR under the staged
	// construction.
	AdversaryExitRMR int
	// RandomExitRMR is the worst reader exit RMR across the random seeds.
	RandomExitRMR int
	// Seeds is the number of random schedules sampled.
	Seeds int
}

// E11AdversaryValue compares adversarial and random worst cases for the
// read/write/CAS algorithms.
func E11AdversaryValue(ns []int, seeds []int64) ([]E11Row, *tablefmt.Table, error) {
	facs := []Factory{}
	for _, fac := range AFFactories() {
		if fac.Name == "af-1" || fac.Name == "af-log" {
			facs = append(facs, fac)
		}
	}
	for _, fac := range BaselineFactories() {
		if fac.Name == "centralized" {
			facs = append(facs, fac)
		}
	}

	// Same known step-budget shape as E2's grid: the adversary cell over n
	// processes is budgeted 200_000 + 4n^2 steps.
	cellCost := func(_ Factory, n int) int64 { return 200_000 + 4*int64(n)*int64(n) }
	rows, err := gridRows(facs, ns, cellCost, func(fac Factory, n int) (E11Row, error) {
		adv, err := lowerbound.Run(fac.New(), n, lowerbound.Config{
			IterationCap: 4*n + 64,
			StepBudget:   200_000 + 4*n*n,
		})
		if err != nil {
			return E11Row{}, fmt.Errorf("E11 %s n=%d: %w", fac.Name, n, err)
		}
		worstRandom := 0
		for _, seed := range seeds {
			rep := spec.Run(fac.New(), spec.Scenario{
				NReaders: n, NWriters: 1,
				ReaderPassages: 1, WriterPassages: 1,
				Protocol:  sim.WriteThrough,
				Scheduler: sched.NewRandom(seed),
				MaxSteps:  20_000_000,
			})
			if !rep.OK() {
				return E11Row{}, &RunError{Exp: "E11r", Alg: fac.Name, N: n, Detail: rep.Failures()}
			}
			if got := rep.MaxReaderPassage.ExitRMR; got > worstRandom {
				worstRandom = got
			}
		}
		return E11Row{
			Alg: fac.Name, N: n,
			AdversaryExitRMR: adv.MaxReaderExitRMR,
			RandomExitRMR:    worstRandom,
			Seeds:            len(seeds),
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return rows, e11Table(rows), nil
}

func e11Table(rows []E11Row) *tablefmt.Table {
	t := tablefmt.New("algorithm", "n",
		"worst reader exit RMR (adversary)", "worst over random seeds", "seeds")
	last := ""
	for _, r := range rows {
		if last != "" && r.Alg != last {
			t.AddRule()
		}
		last = r.Alg
		t.AddRow(r.Alg, tablefmt.Itoa(r.N),
			tablefmt.Itoa(r.AdversaryExitRMR), tablefmt.Itoa(r.RandomExitRMR), tablefmt.Itoa(r.Seeds))
	}
	return t
}
