package experiments

import (
	"repro/internal/sim"
	"repro/internal/tablefmt"
)

// E5Row pairs the E1 measurements under both coherence protocols for one
// grid point. The paper's Section 2 states its results apply to both
// write-through and write-back; the asymptotic shapes must match, with
// write-back typically cheaper by a constant (repeated writes by the same
// process are free there).
type E5Row struct {
	FName string
	N     int
	// WTWriter/WTReader are write-through worst per-passage RMRs;
	// WBWriter/WBReader the write-back ones.
	WTWriter, WTReader int
	WBWriter, WBReader int
}

// E5Protocols reruns the E1 grid under both protocols and pairs the
// results.
func E5Protocols(ns []int) ([]E5Row, *tablefmt.Table, error) {
	wt, _, err := E1Tradeoff(ns, sim.WriteThrough)
	if err != nil {
		return nil, nil, err
	}
	wb, _, err := E1Tradeoff(ns, sim.WriteBack)
	if err != nil {
		return nil, nil, err
	}
	if len(wt) != len(wb) {
		return nil, nil, &RunError{Exp: "E5", Alg: "grid", Detail: "grid size mismatch"}
	}
	rows := make([]E5Row, len(wt))
	for i := range wt {
		rows[i] = E5Row{
			FName:    wt[i].FName,
			N:        wt[i].N,
			WTWriter: wt[i].WriterEntryRMR,
			WTReader: wt[i].ReaderPassRMR,
			WBWriter: wb[i].WriterEntryRMR,
			WBReader: wb[i].ReaderPassRMR,
		}
	}
	return rows, e5Table(rows), nil
}

func e5Table(rows []E5Row) *tablefmt.Table {
	t := tablefmt.New("f", "n",
		"writer RMR (WT)", "writer RMR (WB)", "reader RMR (WT)", "reader RMR (WB)")
	last := ""
	for _, r := range rows {
		if last != "" && r.FName != last {
			t.AddRule()
		}
		last = r.FName
		t.AddRow("af-"+r.FName, tablefmt.Itoa(r.N),
			tablefmt.Itoa(r.WTWriter), tablefmt.Itoa(r.WBWriter),
			tablefmt.Itoa(r.WTReader), tablefmt.Itoa(r.WBReader))
	}
	return t
}
