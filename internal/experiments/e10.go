package experiments

import (
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/tablefmt"
)

// E10Row compares WL substrates inside A_f: the Peterson tournament the
// paper prescribes (O(log m) RMR, read/write only), the CLH queue lock
// (O(1) with hardware swap; our CAS-emulated enqueue retries under
// simultaneous arrivals), and the FAA ticket lock (O(1) steps but each
// release wakes every waiter). Writers-only contention isolates WL.
type E10Row struct {
	Mutex string
	M     int
	// SoloRMR is the uncontended writer passage cost (n=1 reader idle).
	SoloRMR int
	// ContendedMeanRMR is the mean writer passage RMR with all m writers
	// arriving together under round-robin.
	ContendedMeanRMR float64
	// ContendedMaxRMR is the worst passage.
	ContendedMaxRMR int
}

var e10Kinds = []struct {
	name string
	kind core.MutexKind
}{
	{"tournament", core.MutexTournament},
	{"clh", core.MutexCLH},
	{"ticket", core.MutexTicket},
}

// E10MutexSubstrates measures A_f writer costs across WL substrates and
// writer counts.
func E10MutexSubstrates(ms []int) ([]E10Row, *tablefmt.Table, error) {
	rows, err := gridRows(e10Kinds, ms, nSquaredCost, func(k struct {
		name string
		kind core.MutexKind
	}, m int) (E10Row, error) {
		solo := spec.Run(core.New(core.FOne, core.WithWriterMutex(k.kind)), spec.Scenario{
			NReaders: 1, NWriters: m,
			ReaderPassages: 0, WriterPassages: 2,
			Scheduler: sched.NewSticky(),
			Protocol:  sim.WriteThrough,
			MaxSteps:  20_000_000,
		})
		if !solo.OK() {
			return E10Row{}, &RunError{Exp: "E10", Alg: k.name, N: m, Detail: solo.Failures()}
		}
		contended := spec.Run(core.New(core.FOne, core.WithWriterMutex(k.kind)), spec.Scenario{
			NReaders: 1, NWriters: m,
			ReaderPassages: 0, WriterPassages: 2,
			Scheduler: sched.NewRoundRobin(),
			Protocol:  sim.WriteThrough,
			MaxSteps:  20_000_000,
		})
		if !contended.OK() {
			return E10Row{}, &RunError{Exp: "E10c", Alg: k.name, N: m, Detail: contended.Failures()}
		}
		var all []float64
		for _, acct := range contended.WriterAccounts {
			for _, pass := range acct.Passages {
				all = append(all, float64(pass.RMR()))
			}
		}
		return E10Row{
			Mutex:            k.name,
			M:                m,
			SoloRMR:          solo.MaxWriterPassage.RMR(),
			ContendedMeanRMR: stats.Summarize(all).Mean,
			ContendedMaxRMR:  contended.MaxWriterPassage.RMR(),
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return rows, e10Table(rows), nil
}

func e10Table(rows []E10Row) *tablefmt.Table {
	t := tablefmt.New("WL substrate", "m",
		"solo writer RMR", "contended mean", "contended max")
	last := ""
	for _, r := range rows {
		if last != "" && r.Mutex != last {
			t.AddRule()
		}
		last = r.Mutex
		t.AddRow(r.Mutex, tablefmt.Itoa(r.M),
			tablefmt.Itoa(r.SoloRMR), tablefmt.F1(r.ContendedMeanRMR), tablefmt.Itoa(r.ContendedMaxRMR))
	}
	return t
}
